(* Differential tests for the hashed state-space engine against the
   retained tree-based reference ({!Nfc_mcheck.Reference}), plus the
   determinism guarantees of the domain-parallel paths: same statistics,
   same verdicts, same boundness reports, same lint output and same fuzz
   findings at every job count. *)
open Nfc_mcheck

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let registry () = Nfc_protocol.Registry.defaults ()

let name_of proto =
  let module P = (val proto : Nfc_protocol.Spec.S) in
  P.name

(* Modest budget: full spaces for the finite protocols, real truncation
   for the flooding one — both regimes must agree. *)
let bounds =
  {
    Explore.capacity_tr = 2;
    capacity_rt = 2;
    submit_budget = 3;
    max_nodes = 8_000;
    allow_drop = true;
  }

let probe = { Boundness.max_nodes = 1_000; max_cost = 100 }

(* ------------------------------------------------ reach differential *)

let test_reach_stats_agree () =
  List.iter
    (fun proto ->
      let module P = (val proto : Nfc_protocol.Spec.S) in
      let module E = Explore.Make (P) in
      let r = E.reachable_set bounds in
      let ref_stats, ref_truncated = Reference.reachable_set_stats proto bounds in
      let n = P.name in
      checki (n ^ " nodes") ref_stats.Explore.nodes r.E.reach_stats.Explore.nodes;
      checki (n ^ " k_t") ref_stats.Explore.sender_states
        r.E.reach_stats.Explore.sender_states;
      checki (n ^ " k_r") ref_stats.Explore.receiver_states
        r.E.reach_stats.Explore.receiver_states;
      checki (n ^ " max_depth") ref_stats.Explore.max_depth
        r.E.reach_stats.Explore.max_depth;
      checkb (n ^ " truncated") ref_truncated r.E.truncated;
      checki (n ^ " |configs| = nodes") r.E.reach_stats.Explore.nodes
        (List.length r.E.configs))
    (registry ())

(* ---------------------------------------------- verdict differential *)

let verdict = function
  | Explore.Violation t -> `Violation (List.length t)
  | Explore.No_violation _ -> `No_violation
  | Explore.Node_budget _ -> `Node_budget

let test_phantom_verdicts_agree () =
  List.iter
    (fun proto ->
      let got = verdict (Explore.find_phantom proto bounds) in
      let want = verdict (Reference.find_phantom proto bounds) in
      checkb
        (name_of proto ^ " verdict (incl. trace length)")
        true (got = want))
    (registry ())

(* The reach sweep's phantom scan must reproduce [search]'s trichotomy:
   the linter's T1 rule is derived from it instead of a second pass. *)
let test_reach_phantom_scan_matches_search () =
  List.iter
    (fun proto ->
      let module P = (val proto : Nfc_protocol.Spec.S) in
      let module E = Explore.Make (P) in
      let r = E.reachable_set bounds in
      let n = P.name in
      match E.search ~stop_at_phantom:true bounds with
      | Explore.Violation trace ->
          checkb (n ^ " scan in budget") true r.E.phantom_in_budget;
          checki (n ^ " scan trace length") (List.length trace)
            (match r.E.first_phantom with Some l -> l | None -> -1)
      | Explore.No_violation _ ->
          checkb (n ^ " scan found nothing in budget") true
            (r.E.first_phantom = None || not r.E.phantom_in_budget);
          checkb (n ^ " search exhausted the space") true
            (r.E.reach_stats.Explore.nodes < bounds.Explore.max_nodes)
      | Explore.Node_budget _ ->
          checkb (n ^ " budget-invisible phantom") true
            (r.E.first_phantom = None || not r.E.phantom_in_budget))
    (registry ())

(* -------------------------------------------- boundness differential *)

let test_boundness_reports_agree () =
  List.iter
    (fun proto ->
      let got = Boundness.measure ~max_probes:100 proto ~explore:bounds ~probe in
      let want = Reference.measure_boundness ~max_probes:100 proto ~explore:bounds ~probe in
      checkb (name_of proto ^ " boundness report") true (got = want))
    (registry ())

(* The linter's one-pass path: a phantom-free ungated reach handed to
   [measure] must yield the identical report the gated pass computes. *)
let test_boundness_reach_reuse () =
  List.iter
    (fun proto ->
      let module P = (val proto : Nfc_protocol.Spec.S) in
      let module B = Boundness.Make (P) in
      let reach = B.E.reachable_set bounds in
      let with_hint =
        B.measure ~max_probes:100 ~reach ~explore:bounds ~probe_bounds:probe ()
      in
      let without =
        B.measure ~max_probes:100 ~explore:bounds ~probe_bounds:probe ()
      in
      checkb (P.name ^ " reach reuse") true (with_hint = without))
    (registry ())

(* ------------------------------------------- parallel lint determinism *)

let test_lint_jobs_deterministic () =
  let cfg =
    {
      Nfc_lint.Checks.default_config with
      Nfc_lint.Checks.bounds =
        { Nfc_lint.Checks.default_config.Nfc_lint.Checks.bounds with
          Explore.max_nodes = 4_000 };
    }
  in
  let seq = Nfc_lint.Engine.run_registry ~jobs:1 cfg in
  let par = Nfc_lint.Engine.run_registry ~jobs:4 cfg in
  checki "registry size" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Nfc_lint.Engine.result) (b : Nfc_lint.Engine.result) ->
      checkb (a.Nfc_lint.Engine.protocol ^ " lint result identical") true (a = b))
    seq par

(* --------------------------------------------- fuzz batch determinism *)

let strip_elapsed (r : Nfc_fuzz.Campaign.result) = { r with Nfc_fuzz.Campaign.elapsed = 0. }

let test_fuzz_batches_job_independent () =
  let cfg =
    {
      Nfc_fuzz.Campaign.default_cfg with
      Nfc_fuzz.Campaign.iterations = 6_000;
      seed = 7;
      batches = 3;
      shrink = true;
    }
  in
  let proto = Nfc_protocol.Alternating_bit.make () in
  let r1 = strip_elapsed (Nfc_fuzz.Campaign.run ~jobs:1 proto cfg) in
  let r3 = strip_elapsed (Nfc_fuzz.Campaign.run ~jobs:3 proto cfg) in
  checkb "batched result independent of jobs" true (r1 = r3);
  (* The altbit phantom is in reach of this budget; the finding must be
     reproducible from its (seed, batch) coordinates alone. *)
  match r1.Nfc_fuzz.Campaign.finding with
  | None -> Alcotest.fail "expected a violation under batched fuzzing"
  | Some f ->
      checkb "batch index recorded" true (f.Nfc_fuzz.Campaign.batch >= 0);
      let again = strip_elapsed (Nfc_fuzz.Campaign.run ~jobs:2 proto cfg) in
      checkb "rerun reproduces the same finding" true
        (match again.Nfc_fuzz.Campaign.finding with
        | Some g ->
            g.Nfc_fuzz.Campaign.batch = f.Nfc_fuzz.Campaign.batch
            && g.Nfc_fuzz.Campaign.found_at = f.Nfc_fuzz.Campaign.found_at
            && g.Nfc_fuzz.Campaign.schedule = f.Nfc_fuzz.Campaign.schedule
        | None -> false)

(* ----------------------------------------- boundness jobs determinism *)

let test_boundness_jobs_deterministic () =
  List.iter
    (fun proto ->
      let r1 = Boundness.measure ~max_probes:100 ~jobs:1 proto ~explore:bounds ~probe in
      let r4 = Boundness.measure ~max_probes:100 ~jobs:4 proto ~explore:bounds ~probe in
      checkb (name_of proto ^ " probe fan-out deterministic") true (r1 = r4))
    (registry ())

let suite =
  [
    ("reach stats agree with tree reference", `Quick, test_reach_stats_agree);
    ("phantom verdicts agree with tree reference", `Quick, test_phantom_verdicts_agree);
    ("reach phantom scan matches search", `Quick, test_reach_phantom_scan_matches_search);
    ("boundness reports agree with tree reference", `Quick, test_boundness_reports_agree);
    ("boundness reuses a phantom-free reach", `Quick, test_boundness_reach_reuse);
    ("lint registry identical at jobs=1 and jobs=4", `Quick, test_lint_jobs_deterministic);
    ("fuzz batches independent of job count", `Quick, test_fuzz_batches_job_independent);
    ("boundness probes identical at jobs=1 and jobs=4", `Quick, test_boundness_jobs_deterministic);
  ]
