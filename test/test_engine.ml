(* Differential tests for the hashed state-space engine against the
   retained tree-based reference ({!Nfc_mcheck.Reference}), plus the
   determinism guarantees of the domain-parallel paths: same statistics,
   same verdicts, same boundness reports, same lint output and same fuzz
   findings at every job count. *)
open Nfc_mcheck

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let registry () = Nfc_protocol.Registry.defaults ()

let name_of proto =
  let module P = (val proto : Nfc_protocol.Spec.S) in
  P.name

(* Modest budget: full spaces for the finite protocols, real truncation
   for the flooding one — both regimes must agree. *)
let bounds =
  {
    Explore.capacity_tr = 2;
    capacity_rt = 2;
    submit_budget = 3;
    max_nodes = 8_000;
    allow_drop = true;
    por = false;
  }

let probe = { Boundness.max_nodes = 1_000; max_cost = 100 }

(* ------------------------------------------------ reach differential *)

let test_reach_stats_agree () =
  List.iter
    (fun proto ->
      let module P = (val proto : Nfc_protocol.Spec.S) in
      let module E = Explore.Make (P) in
      let r = E.reachable_set bounds in
      let ref_stats, ref_truncated = Reference.reachable_set_stats proto bounds in
      let n = P.name in
      checki (n ^ " nodes") ref_stats.Explore.nodes r.E.reach_stats.Explore.nodes;
      checki (n ^ " k_t") ref_stats.Explore.sender_states
        r.E.reach_stats.Explore.sender_states;
      checki (n ^ " k_r") ref_stats.Explore.receiver_states
        r.E.reach_stats.Explore.receiver_states;
      checki (n ^ " max_depth") ref_stats.Explore.max_depth
        r.E.reach_stats.Explore.max_depth;
      checkb (n ^ " truncated") ref_truncated r.E.truncated;
      checki (n ^ " |configs| = nodes") r.E.reach_stats.Explore.nodes
        (List.length r.E.configs))
    (registry ())

(* ---------------------------------------------- verdict differential *)

let verdict = function
  | Explore.Violation t -> `Violation (List.length t)
  | Explore.No_violation _ -> `No_violation
  | Explore.Node_budget _ -> `Node_budget

let test_phantom_verdicts_agree () =
  List.iter
    (fun proto ->
      let got = verdict (Explore.find_phantom proto bounds) in
      let want = verdict (Reference.find_phantom proto bounds) in
      checkb
        (name_of proto ^ " verdict (incl. trace length)")
        true (got = want))
    (registry ())

(* The reach sweep's phantom scan must reproduce [search]'s trichotomy:
   the linter's T1 rule is derived from it instead of a second pass. *)
let test_reach_phantom_scan_matches_search () =
  List.iter
    (fun proto ->
      let module P = (val proto : Nfc_protocol.Spec.S) in
      let module E = Explore.Make (P) in
      let r = E.reachable_set bounds in
      let n = P.name in
      match E.search ~stop_at_phantom:true bounds with
      | Explore.Violation trace ->
          checkb (n ^ " scan in budget") true r.E.phantom_in_budget;
          checki (n ^ " scan trace length") (List.length trace)
            (match r.E.first_phantom with Some l -> l | None -> -1)
      | Explore.No_violation _ ->
          checkb (n ^ " scan found nothing in budget") true
            (r.E.first_phantom = None || not r.E.phantom_in_budget);
          checkb (n ^ " search exhausted the space") true
            (r.E.reach_stats.Explore.nodes < bounds.Explore.max_nodes)
      | Explore.Node_budget _ ->
          checkb (n ^ " budget-invisible phantom") true
            (r.E.first_phantom = None || not r.E.phantom_in_budget))
    (registry ())

(* -------------------------------------------- boundness differential *)

let test_boundness_reports_agree () =
  List.iter
    (fun proto ->
      let got = Boundness.measure ~max_probes:100 proto ~explore:bounds ~probe in
      let want = Reference.measure_boundness ~max_probes:100 proto ~explore:bounds ~probe in
      checkb (name_of proto ^ " boundness report") true (got = want))
    (registry ())

(* The linter's one-pass path: a phantom-free ungated reach handed to
   [measure] must yield the identical report the gated pass computes. *)
let test_boundness_reach_reuse () =
  List.iter
    (fun proto ->
      let module P = (val proto : Nfc_protocol.Spec.S) in
      let module B = Boundness.Make (P) in
      let reach = B.E.reachable_set bounds in
      let with_hint =
        B.measure ~max_probes:100 ~reach ~explore:bounds ~probe_bounds:probe ()
      in
      let without =
        B.measure ~max_probes:100 ~explore:bounds ~probe_bounds:probe ()
      in
      checkb (P.name ^ " reach reuse") true (with_hint = without))
    (registry ())

(* ------------------------------------------- parallel lint determinism *)

let test_lint_jobs_deterministic () =
  let cfg =
    {
      Nfc_lint.Checks.default_config with
      Nfc_lint.Checks.bounds =
        { Nfc_lint.Checks.default_config.Nfc_lint.Checks.bounds with
          Explore.max_nodes = 4_000 };
    }
  in
  let seq = Nfc_lint.Engine.run_registry ~jobs:1 cfg in
  let par = Nfc_lint.Engine.run_registry ~jobs:4 cfg in
  checki "registry size" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Nfc_lint.Engine.result) (b : Nfc_lint.Engine.result) ->
      checkb (a.Nfc_lint.Engine.protocol ^ " lint result identical") true (a = b))
    seq par

(* --------------------------------------------- fuzz batch determinism *)

let strip_elapsed (r : Nfc_fuzz.Campaign.result) = { r with Nfc_fuzz.Campaign.elapsed = 0. }

let test_fuzz_batches_job_independent () =
  let cfg =
    {
      Nfc_fuzz.Campaign.default_cfg with
      Nfc_fuzz.Campaign.iterations = 6_000;
      seed = 7;
      batches = 3;
      shrink = true;
    }
  in
  let proto = Nfc_protocol.Alternating_bit.make () in
  let r1 = strip_elapsed (Nfc_fuzz.Campaign.run ~jobs:1 proto cfg) in
  let r3 = strip_elapsed (Nfc_fuzz.Campaign.run ~jobs:3 proto cfg) in
  checkb "batched result independent of jobs" true (r1 = r3);
  (* The altbit phantom is in reach of this budget; the finding must be
     reproducible from its (seed, batch) coordinates alone. *)
  match r1.Nfc_fuzz.Campaign.finding with
  | None -> Alcotest.fail "expected a violation under batched fuzzing"
  | Some f ->
      checkb "batch index recorded" true (f.Nfc_fuzz.Campaign.batch >= 0);
      let again = strip_elapsed (Nfc_fuzz.Campaign.run ~jobs:2 proto cfg) in
      checkb "rerun reproduces the same finding" true
        (match again.Nfc_fuzz.Campaign.finding with
        | Some g ->
            g.Nfc_fuzz.Campaign.batch = f.Nfc_fuzz.Campaign.batch
            && g.Nfc_fuzz.Campaign.found_at = f.Nfc_fuzz.Campaign.found_at
            && g.Nfc_fuzz.Campaign.schedule = f.Nfc_fuzz.Campaign.schedule
        | None -> false)

(* ----------------------------------------- boundness jobs determinism *)

let test_boundness_jobs_deterministic () =
  List.iter
    (fun proto ->
      let r1 = Boundness.measure ~max_probes:100 ~jobs:1 proto ~explore:bounds ~probe in
      let r4 = Boundness.measure ~max_probes:100 ~jobs:4 proto ~explore:bounds ~probe in
      checkb (name_of proto ^ " probe fan-out deterministic") true (r1 = r4))
    (registry ())

(* --------------------------------------- intra-search determinism -----

   The parallel BFS guarantees byte-identical results at every domain
   count: same configuration list in the same BFS order, same stats,
   same truncation flag, same first-phantom rank.  Checked over the whole
   registry AND the compiled example specs (the PDL path exercises
   boxed-vs-packed key selection differently), with POR both off and on. *)

let example_specs () =
  let find file =
    (* `dune runtest` runs from _build/default/test (specs one level up);
       `dune exec` runs from the project root.  Accept either. *)
    let candidates = [ "../examples/specs/" ^ file; "examples/specs/" ^ file ] in
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.fail ("cannot locate example spec " ^ file)
  in
  List.map
    (fun f ->
      match Nfc_pdl.Pdl.load_file (find f) with
      | Ok c -> c.Nfc_pdl.Pdl.spec
      | Error m -> Alcotest.fail m)
    [ "stop_and_wait.nfc"; "alternating_bit.nfc"; "bounded_counter.nfc" ]

let all_protocols () = registry () @ example_specs ()

(* Smaller budget than [bounds]: this test runs 6 sweeps per protocol. *)
let dbounds = { bounds with Explore.max_nodes = 4_000 }

let test_reach_domains_deterministic () =
  List.iter
    (fun proto ->
      let module P = (val proto : Nfc_protocol.Spec.S) in
      let module E = Explore.Make (P) in
      List.iter
        (fun por ->
          let b = { dbounds with Explore.por } in
          let base = E.reachable_set ~domains:1 b in
          List.iter
            (fun domains ->
              let r = E.reachable_set ~domains b in
              let tag = Printf.sprintf "%s por=%b domains=%d" P.name por domains in
              checkb (tag ^ " stats") true (r.E.reach_stats = base.E.reach_stats);
              checkb (tag ^ " truncated") true (r.E.truncated = base.E.truncated);
              checkb (tag ^ " first_phantom") true
                (r.E.first_phantom = base.E.first_phantom);
              checkb (tag ^ " phantom_in_budget") true
                (r.E.phantom_in_budget = base.E.phantom_in_budget);
              checki (tag ^ " |configs|") (List.length base.E.configs)
                (List.length r.E.configs);
              checkb (tag ^ " configs identical in BFS order") true
                (List.for_all2
                   (fun a c -> E.compare_config a c = 0)
                   base.E.configs r.E.configs))
            [ 2; 4 ])
        [ false; true ])
    (all_protocols ())

let test_search_domains_deterministic () =
  List.iter
    (fun proto ->
      List.iter
        (fun por ->
          let b = { dbounds with Explore.por } in
          let base = Explore.find_phantom ~domains:1 proto b in
          List.iter
            (fun domains ->
              let r = Explore.find_phantom ~domains proto b in
              checkb
                (Printf.sprintf "%s por=%b domains=%d search outcome" (name_of proto)
                   por domains)
                true (r = base))
            [ 2; 4 ])
        [ false; true ])
    (all_protocols ())

let test_from_configs_domains_deterministic () =
  List.iter
    (fun proto ->
      let module P = (val proto : Nfc_protocol.Spec.S) in
      let module E = Explore.Make (P) in
      let b = { dbounds with Explore.max_nodes = 2_000 } in
      let seeds =
        (* Recovery-style corrupted seeds: the reached set in reverse with
           the counters zeroed — exercises the seeds-at-depth-0-in-caller-
           order contract, not just the initial-config path. *)
        let r = E.reachable_set ~domains:1 b in
        List.rev_map (fun c -> { c with E.submitted = 0; delivered = 0 }) r.E.configs
      in
      let rb = { b with Explore.submit_budget = 0 } in
      let base = E.from_configs ~domains:1 ~seeds rb in
      List.iter
        (fun domains ->
          let r = E.from_configs ~domains ~seeds rb in
          let tag = Printf.sprintf "%s domains=%d from_configs" P.name domains in
          checkb (tag ^ " stats") true (r.E.reach_stats = base.E.reach_stats);
          checkb (tag ^ " truncated") true (r.E.truncated = base.E.truncated);
          checki (tag ^ " |configs|") (List.length base.E.configs)
            (List.length r.E.configs);
          checkb (tag ^ " configs identical in sweep order") true
            (List.for_all2
               (fun a c -> E.compare_config a c = 0)
               base.E.configs r.E.configs))
        [ 2; 4 ])
    (registry ())

(* QCheck: the domain-count invariance must hold at ANY bounds, not just
   the hand-picked ones above — random capacities, budgets, node caps,
   drop and POR settings over random registry protocols. *)
let qcheck_domain_invariance =
  let gen =
    QCheck.Gen.(
      let* cap = 1 -- 2 in
      let* sub = 1 -- 3 in
      let* nodes = 50 -- 2_500 in
      let* drop = bool in
      let* por = bool in
      let* pidx = 0 -- (List.length (registry ()) - 1) in
      return (cap, sub, nodes, drop, por, pidx))
  in
  let print (cap, sub, nodes, drop, por, pidx) =
    Printf.sprintf "cap=%d sub=%d nodes=%d drop=%b por=%b proto=%s" cap sub nodes drop
      por
      (name_of (List.nth (registry ()) pidx))
  in
  QCheck.Test.make ~name:"reach invariant under domain count (random bounds)"
    ~count:25 (QCheck.make ~print gen)
    (fun (cap, sub, nodes, drop, por, pidx) ->
      let proto = List.nth (registry ()) pidx in
      let module P = (val proto : Nfc_protocol.Spec.S) in
      let module E = Explore.Make (P) in
      let b =
        {
          Explore.capacity_tr = cap;
          capacity_rt = cap;
          submit_budget = sub;
          max_nodes = nodes;
          allow_drop = drop;
          por;
        }
      in
      let a = E.reachable_set ~domains:1 b in
      let c = E.reachable_set ~domains:3 b in
      a.E.reach_stats = c.E.reach_stats
      && a.E.truncated = c.E.truncated
      && a.E.first_phantom = c.E.first_phantom
      && a.E.phantom_in_budget = c.E.phantom_in_budget
      && List.length a.E.configs = List.length c.E.configs
      && List.for_all2 (fun x y -> E.compare_config x y = 0) a.E.configs c.E.configs)

(* ----------------------------------------------- POR preservation -----

   Lazy-drop POR may only SHRINK the explored set; on un-truncated
   explorations it must preserve exactly what the verdicts are built
   from: phantom existence, station-state projections (k_t, k_r) and the
   packet alphabet.  (Node counts and depths legitimately differ — that
   is the reduction.) *)

let alphabet (type c) (packets : c -> (int * int) list) configs =
  List.sort_uniq compare (List.concat_map (fun c -> List.map fst (packets c)) configs)

let test_por_preserves_projections () =
  let comparable = ref 0 in
  List.iter
    (fun proto ->
      let module P = (val proto : Nfc_protocol.Spec.S) in
      let module E = Explore.Make (P) in
      let full = E.reachable_set { bounds with Explore.por = false } in
      let red = E.reachable_set { bounds with Explore.por = true } in
      let n = P.name in
      if not (full.E.truncated || red.E.truncated) then begin
        incr comparable;
        checkb (n ^ " por explores no more") true
          (red.E.reach_stats.Explore.nodes <= full.E.reach_stats.Explore.nodes);
        checki (n ^ " k_t preserved") full.E.reach_stats.Explore.sender_states
          red.E.reach_stats.Explore.sender_states;
        checki (n ^ " k_r preserved") full.E.reach_stats.Explore.receiver_states
          red.E.reach_stats.Explore.receiver_states;
        checkb (n ^ " phantom existence preserved") true
          ((full.E.first_phantom = None) = (red.E.first_phantom = None));
        checkb (n ^ " t->r alphabet preserved") true
          (alphabet E.packets_tr full.E.configs = alphabet E.packets_tr red.E.configs);
        checkb (n ^ " r->t alphabet preserved") true
          (alphabet E.packets_rt full.E.configs = alphabet E.packets_rt red.E.configs)
      end)
    (all_protocols ());
  (* Most registry spaces exceed any practical budget at these bounds;
     the preservation claims are only testable on the ones that finish.
     Guard against the assertions above silently never firing. *)
  checkb "at least one protocol comparable" true (!comparable >= 1)

(* POR under the hashed engine vs POR under the tree-based reference:
   the reduced graphs themselves must agree, not just their projections. *)
let test_por_reach_agrees_with_reference () =
  let b = { bounds with Explore.por = true } in
  List.iter
    (fun proto ->
      let module P = (val proto : Nfc_protocol.Spec.S) in
      let module E = Explore.Make (P) in
      let r = E.reachable_set b in
      let ref_stats, ref_truncated = Reference.reachable_set_stats proto b in
      let n = P.name ^ " (por)" in
      checki (n ^ " nodes") ref_stats.Explore.nodes r.E.reach_stats.Explore.nodes;
      checki (n ^ " k_t") ref_stats.Explore.sender_states
        r.E.reach_stats.Explore.sender_states;
      checki (n ^ " k_r") ref_stats.Explore.receiver_states
        r.E.reach_stats.Explore.receiver_states;
      checki (n ^ " max_depth") ref_stats.Explore.max_depth
        r.E.reach_stats.Explore.max_depth;
      checkb (n ^ " truncated") ref_truncated r.E.truncated;
      let got = verdict (Explore.find_phantom proto b) in
      let want = verdict (Reference.find_phantom proto b) in
      checkb (n ^ " phantom verdict") true (got = want))
    (registry ())

(* Boundness is computed from semi-valid configurations POR also visits:
   with an unlimited probe sample the measured value must not move. *)
let test_por_preserves_boundness () =
  let comparable = ref 0 in
  List.iter
    (fun proto ->
      let module P = (val proto : Nfc_protocol.Spec.S) in
      let module B = Boundness.Make (P) in
      let full_reach = B.E.reachable_set { bounds with Explore.por = false } in
      let red_reach = B.E.reachable_set { bounds with Explore.por = true } in
      let full =
        B.measure ~max_probes:max_int ~reach:full_reach
          ~explore:{ bounds with Explore.por = false }
          ~probe_bounds:probe ()
      in
      let red =
        B.measure ~max_probes:max_int ~reach:red_reach
          ~explore:{ bounds with Explore.por = true }
          ~probe_bounds:probe ()
      in
      if (not full_reach.B.E.truncated) && not red_reach.B.E.truncated then begin
        incr comparable;
        checki (P.name ^ " k_t") full.Boundness.k_t red.Boundness.k_t;
        checki (P.name ^ " k_r") full.Boundness.k_r red.Boundness.k_r;
        (* The measured value itself is only claim-preserving when no
           probe ran out of budget (an exhausted probe reports [None]
           from wherever it happened to stand). *)
        if full.Boundness.probes_exhausted = 0 && red.Boundness.probes_exhausted = 0
        then
          checkb (P.name ^ " boundness preserved") true
            (full.Boundness.boundness = red.Boundness.boundness)
      end)
    (registry ());
  checkb "at least one protocol comparable" true (!comparable >= 1)

let suite =
  [
    ("reach stats agree with tree reference", `Quick, test_reach_stats_agree);
    ("phantom verdicts agree with tree reference", `Quick, test_phantom_verdicts_agree);
    ("reach phantom scan matches search", `Quick, test_reach_phantom_scan_matches_search);
    ("boundness reports agree with tree reference", `Quick, test_boundness_reports_agree);
    ("boundness reuses a phantom-free reach", `Quick, test_boundness_reach_reuse);
    ("lint registry identical at jobs=1 and jobs=4", `Quick, test_lint_jobs_deterministic);
    ("fuzz batches independent of job count", `Quick, test_fuzz_batches_job_independent);
    ("boundness probes identical at jobs=1 and jobs=4", `Quick, test_boundness_jobs_deterministic);
    ("reach identical at 1/2/4 engine domains", `Quick, test_reach_domains_deterministic);
    ("search identical at 1/2/4 engine domains", `Quick, test_search_domains_deterministic);
    ( "corrupted-start sweep identical at 1/2/4 engine domains",
      `Quick,
      test_from_configs_domains_deterministic );
    ("por preserves projections and phantoms", `Quick, test_por_preserves_projections);
    ("por reach agrees with tree reference", `Quick, test_por_reach_agrees_with_reference);
    ("por preserves measured boundness", `Quick, test_por_preserves_boundness);
  ]
  @ [ QCheck_alcotest.to_alcotest qcheck_domain_invariance ]
