(* Tests for Nfc_fuzz: schedules, generation, mutation, coverage corpus,
   shrinking, campaigns. *)
open Nfc_fuzz
open Nfc_automata

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let altbit () = Nfc_protocol.Alternating_bit.make ()

(* The classic replay attack against the alternating bit protocol
   (timeout 4), written out by hand: two copies of the bit-0 data packet
   accumulate, the protocol completes both real messages, then the stale
   copy arrives when bit 0 is expected again — a phantom third delivery. *)
let attack =
  Schedule.of_list
    [
      Schedule.Submit;
      Schedule.Submit;
      Schedule.Sender_poll (* send data-0, copy A *);
      Schedule.Sender_poll;
      Schedule.Sender_poll;
      Schedule.Sender_poll;
      Schedule.Sender_poll (* timeout: send data-0, copy B *);
      Schedule.Deliver (Action.T_to_r, 0) (* copy A reaches the receiver *);
      Schedule.Receiver_poll (* deliver message 0 *);
      Schedule.Receiver_poll (* send ack-0 *);
      Schedule.Deliver (Action.R_to_t, 0) (* sender flips to bit 1 *);
      Schedule.Sender_poll (* send data-1 *);
      Schedule.Deliver (Action.T_to_r, 1) (* fresh data-1 reaches the receiver *);
      Schedule.Receiver_poll (* deliver message 1; bit 0 expected again *);
      Schedule.Receiver_poll (* send ack-1 *);
      Schedule.Deliver (Action.R_to_t, 0);
      Schedule.Deliver (Action.T_to_r, 0) (* stale copy B masquerades as message 3 *);
      Schedule.Receiver_poll (* phantom delivery *);
    ]

(* ------------------------------------------------------------- schedule *)

let test_schedule_roundtrip () =
  match Schedule.parse (Schedule.render attack) with
  | Ok s -> checkb "round trip" true (Schedule.equal s attack)
  | Error e -> Alcotest.fail e

let test_schedule_parse_rejects () =
  checkb "bad verb" true (Result.is_error (Schedule.parse "jump tr 0"));
  checkb "bad dir" true (Result.is_error (Schedule.parse "deliver sideways 0"));
  checkb "negative index" true (Result.is_error (Schedule.parse "deliver tr -1"));
  match Schedule.parse "# comment\n\nsubmit\n" with
  | Ok s -> checki "comments skipped" 1 (Schedule.length s)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ gen *)

let test_gen_deterministic () =
  let gen seed = Gen.schedule (Nfc_util.Rng.of_int seed) Gen.default_cfg in
  checkb "same seed, same schedule" true (Schedule.equal (gen 9) (gen 9));
  checkb "different seeds differ" true (not (Schedule.equal (gen 9) (gen 10)))

let test_gen_respects_budgets () =
  let cfg = { Gen.default_cfg with steps = 40; submits = 3 } in
  for seed = 0 to 19 do
    let s = Gen.schedule (Nfc_util.Rng.of_int seed) cfg in
    checki "length" 40 (Schedule.length s);
    checkb "submit budget" true (Schedule.submits s <= 3)
  done

(* --------------------------------------------------------------- interp *)

let test_interp_replayable () =
  let a = Interp.run (altbit ()) attack in
  let b = Interp.run (altbit ()) attack in
  checkb "same trace" true (a.Interp.trace = b.Interp.trace);
  checkb "violation found" true (a.Interp.violation <> None);
  checki "two submissions" 2 a.Interp.submitted;
  checki "three deliveries" 3 a.Interp.delivered;
  (* The execution is a genuine phantom with a legal physical layer. *)
  checkb "phantom confirmed" true (Props.invalid_phantom a.Interp.trace <> None);
  checkb "PL1 t->r" true (Props.pl1 Action.T_to_r a.Interp.trace = None);
  checkb "PL1 r->t" true (Props.pl1 Action.R_to_t a.Interp.trace = None)

let test_interp_noop_steps () =
  (* Deliveries on empty channels and disabled polls are no-ops: any step
     sequence is a valid schedule. *)
  let s =
    Schedule.of_list
      [
        Schedule.Deliver (Action.T_to_r, 5);
        Schedule.Drop (Action.R_to_t, 2);
        Schedule.Receiver_poll;
        Schedule.Sender_poll;
      ]
  in
  let out = Interp.run (Nfc_protocol.Stenning.make ()) s in
  checkb "nothing recorded" true (out.Interp.trace = []);
  checki "all executed" 4 out.Interp.executed

(* --------------------------------------------------------------- mutate *)

let test_mutate_validity () =
  (* Every operator on every generated schedule yields a schedule that
     serializes, parses back identically, and interprets cleanly (the
     channel stays PL1-legal throughout). *)
  let proto = Nfc_protocol.Stop_and_wait.make () in
  let rng = Nfc_util.Rng.of_int 123 in
  for seed = 0 to 14 do
    let s = Gen.schedule (Nfc_util.Rng.of_int seed) { Gen.default_cfg with steps = 30 } in
    List.iter
      (fun op ->
        let m = Mutate.apply rng op s in
        (match Schedule.parse (Schedule.render m) with
        | Ok m' ->
            checkb (Mutate.op_name op ^ " round trips") true (Schedule.equal m m')
        | Error e -> Alcotest.fail (Mutate.op_name op ^ ": " ^ e));
        let out = Interp.run proto m in
        checkb
          (Mutate.op_name op ^ " PL1 legal")
          true
          (Props.pl1 Action.T_to_r out.Interp.trace = None
          && Props.pl1 Action.R_to_t out.Interp.trace = None))
      Mutate.all_ops
  done

let test_mutate_deterministic () =
  let s = Gen.schedule (Nfc_util.Rng.of_int 3) Gen.default_cfg in
  let m1 = Mutate.mutate (Nfc_util.Rng.of_int 7) s in
  let m2 = Mutate.mutate (Nfc_util.Rng.of_int 7) s in
  checkb "same rng state, same mutant" true (Schedule.equal m1 m2)

(* --------------------------------------------------------------- corpus *)

let test_corpus_growth () =
  let c = Corpus.create () in
  let s = attack in
  checki "two new keys" 2 (Corpus.observe c s ~coverage:[ "a"; "b" ]);
  checki "kept" 1 (Corpus.size c);
  checki "one new key" 1 (Corpus.observe c s ~coverage:[ "b"; "c" ]);
  checki "nothing new" 0 (Corpus.observe c s ~coverage:[ "a"; "c" ]);
  checki "redundant run not kept" 2 (Corpus.size c);
  checki "coverage total" 3 (Corpus.coverage_size c);
  match Corpus.pick (Nfc_util.Rng.of_int 1) c with
  | Some _ -> ()
  | None -> Alcotest.fail "pick from non-empty corpus"

let test_corpus_real_coverage () =
  (* Interpreting a schedule reports enough distinct configurations for
     coverage to grow, and re-observing the same run adds nothing. *)
  let c = Corpus.create () in
  let out = Interp.run (altbit ()) attack in
  checkb "coverage reported" true (List.length out.Interp.coverage > 5);
  checkb "first run is new" true (Corpus.observe c attack ~coverage:out.Interp.coverage > 0);
  checki "second run is not" 0 (Corpus.observe c attack ~coverage:out.Interp.coverage)

(* --------------------------------------------------------------- shrink *)

let test_shrink_minimizes () =
  let proto = altbit () in
  (* Pad the attack with noise the shrinker must strip. *)
  let noisy =
    Schedule.of_list
      (Schedule.to_list attack
      @ [ Schedule.Sender_poll; Schedule.Receiver_poll; Schedule.Submit ])
  in
  let rng = Nfc_util.Rng.of_int 5 in
  let noisy = Mutate.apply rng Mutate.Insert_polls noisy in
  checkb "still violates" true (Interp.violates proto noisy);
  let minimal, trace = Shrink.minimize proto noisy in
  checkb "minimal violates" true (Interp.violates proto minimal);
  checkb "shrunk" true (Schedule.length minimal < Schedule.length noisy);
  checkb "<= 25 steps" true (Schedule.length minimal <= 25);
  checkb "trace is a phantom" true (Props.invalid_phantom trace <> None)

let test_shrink_idempotent () =
  let proto = altbit () in
  let once = Shrink.shrink proto attack in
  let twice = Shrink.shrink proto once in
  checkb "fixpoint" true (Schedule.equal once twice)

let test_shrink_rejects_clean () =
  Alcotest.check_raises "non-violating input"
    (Invalid_argument "Shrink.shrink: schedule does not violate") (fun () ->
      ignore (Shrink.shrink (altbit ()) (Schedule.of_list [ Schedule.Submit ])))

(* ------------------------------------------------------------- campaign *)

let test_campaign_finds_altbit () =
  let cfg = { Campaign.default_cfg with iterations = 5_000; seed = 1; shrink = true } in
  let r = Campaign.run (altbit ()) cfg in
  match r.Campaign.finding with
  | None -> Alcotest.fail "campaign missed the alternating-bit violation"
  | Some f ->
      checkb "coverage grew" true (r.Campaign.coverage > 0);
      (match f.Campaign.shrunk with
      | None -> Alcotest.fail "shrinking was requested"
      | Some s ->
          checkb "shrunk <= 25 steps" true (Schedule.length s <= 25);
          checkb "shrunk still violates" true (Interp.violates (altbit ()) s));
      checkb "trace is a phantom" true (Props.invalid_phantom f.Campaign.trace <> None);
      (* Determinism: an iteration-budgeted campaign is a pure function of
         its seed. *)
      let r' = Campaign.run (altbit ()) cfg in
      (match r'.Campaign.finding with
      | Some f' ->
          checki "same run finds it" f.Campaign.found_at f'.Campaign.found_at;
          checkb "same schedule" true (Schedule.equal f.Campaign.schedule f'.Campaign.schedule)
      | None -> Alcotest.fail "second campaign missed")

let test_campaign_stenning_survives () =
  (* Stenning pays unbounded headers and is safe on any channel: a modest
     campaign must not report a violation. *)
  let cfg = { Campaign.default_cfg with iterations = 300; seed = 2 } in
  let r = Campaign.run (Nfc_protocol.Stenning.make ()) cfg in
  checkb "no violation" true (r.Campaign.finding = None);
  checki "full budget used" 300 r.Campaign.runs;
  checkb "coverage accumulates" true (r.Campaign.coverage > 100);
  checkb "corpus keeps coverage-increasing runs" true (r.Campaign.corpus > 0)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_campaign_json () =
  let cfg = { Campaign.default_cfg with iterations = 200; seed = 3 } in
  let r = Campaign.run (altbit ()) cfg in
  let json = Campaign.to_json r in
  checkb "object" true (String.length json > 0 && json.[0] = '{');
  checkb "names protocol" true (contains json "\"protocol\":\"alternating-bit\"")

let suite =
  [
    ("schedule round trip", `Quick, test_schedule_roundtrip);
    ("schedule parse errors", `Quick, test_schedule_parse_rejects);
    ("gen deterministic", `Quick, test_gen_deterministic);
    ("gen budgets", `Quick, test_gen_respects_budgets);
    ("interp replayable attack", `Quick, test_interp_replayable);
    ("interp no-op steps", `Quick, test_interp_noop_steps);
    ("mutate validity", `Quick, test_mutate_validity);
    ("mutate deterministic", `Quick, test_mutate_deterministic);
    ("corpus growth", `Quick, test_corpus_growth);
    ("corpus real coverage", `Quick, test_corpus_real_coverage);
    ("shrink minimizes", `Quick, test_shrink_minimizes);
    ("shrink idempotent", `Quick, test_shrink_idempotent);
    ("shrink rejects clean input", `Quick, test_shrink_rejects_clean);
    ("campaign finds altbit", `Slow, test_campaign_finds_altbit);
    ("campaign stenning survives", `Quick, test_campaign_stenning_survives);
    ("campaign json", `Quick, test_campaign_json);
  ]
