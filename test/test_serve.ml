(* Tests for Nfc_serve: queue/jobs/router/http units, then end-to-end
   runs against an in-process server on an ephemeral port — including
   the byte-identity contract (served results = CLI output) and the
   backpressure contract (every request ends terminal or 429). *)

module S = Nfc_serve
module J = Nfc_util.Json

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkstr = Alcotest.(check string)

(* ---------------------------------------------------------------- queue *)

let test_queue_bounded_fifo () =
  let q = S.Queue.create ~capacity:2 in
  checkb "push 1" true (S.Queue.try_push q 1);
  checkb "push 2" true (S.Queue.try_push q 2);
  checkb "push to full queue refused" false (S.Queue.try_push q 3);
  checki "depth" 2 (S.Queue.depth q);
  checkb "fifo pop" true (S.Queue.pop q = Some 1);
  checkb "slot freed" true (S.Queue.try_push q 3);
  checkb "pop 2" true (S.Queue.pop q = Some 2);
  checkb "pop 3" true (S.Queue.pop q = Some 3)

let test_queue_filter_and_close () =
  let q = S.Queue.create ~capacity:8 in
  List.iter (fun i -> ignore (S.Queue.try_push q i)) [ 1; 2; 3; 4 ];
  S.Queue.filter q (fun i -> i mod 2 = 0);
  checki "filtered depth" 2 (S.Queue.depth q);
  checkb "pop 2" true (S.Queue.pop q = Some 2);
  S.Queue.close q;
  checkb "push after close refused" false (S.Queue.try_push q 9);
  checkb "drain after close" true (S.Queue.pop q = Some 4);
  checkb "pop after drain is None" true (S.Queue.pop q = None)

let test_queue_pop_blocks_until_push () =
  let q = S.Queue.create ~capacity:2 in
  let got = ref None in
  let th = Thread.create (fun () -> got := S.Queue.pop q) () in
  Thread.delay 0.05;
  checkb "still blocked" true (!got = None);
  ignore (S.Queue.try_push q 42);
  Thread.join th;
  checkb "woke with the element" true (!got = Some 42)

(* ----------------------------------------------------------------- jobs *)

let dummy_compute ~cancelled:_ = "{}"

let test_jobs_lifecycle () =
  let t = S.Jobs.create ~ttl:60.0 () in
  let j = S.Jobs.submit t ~kind:"lint" ~protocol:"p" ~compute:dummy_compute in
  checkb "found by id" true
    (match S.Jobs.find t j.S.Jobs.id with
    | Some j' -> j' == j
    | None -> false);
  checkb "starts queued" true (j.S.Jobs.state = S.Jobs.Queued);
  checkb "running accepted" true (S.Jobs.mark_running t j);
  checkb "done" true (S.Jobs.mark_done t j "{\"ok\":true}" = S.Jobs.Done);
  let st, result, _ = S.Jobs.peek t j in
  checkb "terminal" true (S.Jobs.terminal st);
  checkb "result stored" true (result = Some "{\"ok\":true}");
  let rendered = J.to_string (S.Jobs.json t j) in
  checkb "snapshot splices the result document" true
    (let sub = {|"result":{"ok":true}|} in
     let n = String.length rendered and m = String.length sub in
     let rec go i = i + m <= n && (String.sub rendered i m = sub || go (i + 1)) in
     go 0)

let test_jobs_cancel_queued () =
  let t = S.Jobs.create ~ttl:60.0 () in
  let j = S.Jobs.submit t ~kind:"x" ~protocol:"p" ~compute:dummy_compute in
  checkb "cancel while queued" true
    (S.Jobs.request_cancel t j.S.Jobs.id = S.Jobs.Cancelled_queued);
  checkb "worker refuses it" false (S.Jobs.mark_running t j);
  let st, _, _ = S.Jobs.peek t j in
  checkb "cancelled" true (st = S.Jobs.Cancelled);
  checkb "second cancel is terminal" true
    (S.Jobs.request_cancel t j.S.Jobs.id = S.Jobs.Already_terminal)

let test_jobs_ttl_eviction () =
  let clock = ref 0.0 in
  let t = S.Jobs.create ~now:(fun () -> !clock) ~ttl:10.0 () in
  let j = S.Jobs.submit t ~kind:"x" ~protocol:"p" ~compute:dummy_compute in
  ignore (S.Jobs.mark_running t j);
  ignore (S.Jobs.mark_done t j "{}");
  clock := 5.0;
  checki "young results stay" 0 (S.Jobs.sweep t);
  clock := 20.1;
  checki "expired results evicted" 1 (S.Jobs.sweep t);
  checkb "gone" true (S.Jobs.find t j.S.Jobs.id = None)

let test_jobs_remove_undoes_registration () =
  let t = S.Jobs.create ~ttl:60.0 () in
  let j = S.Jobs.submit t ~kind:"x" ~protocol:"p" ~compute:dummy_compute in
  S.Jobs.remove t j;
  checkb "removed" true (S.Jobs.find t j.S.Jobs.id = None)

(* --------------------------------------------------------------- router *)

let mk_request ?(meth = "GET") ?(body = "") target =
  let path = match String.index_opt target '?' with
    | Some i -> String.sub target 0 i
    | None -> target
  in
  { S.Http.meth; target; path; headers = []; body }

let test_router_dispatch () =
  let routes =
    [
      S.Router.route "GET" "/v1/jobs/:id" (fun ~params _req ->
          S.Http.response ~status:200 (List.assoc "id" params));
      S.Router.route "POST" "/v1/lint" (fun ~params:_ _req ->
          S.Http.response ~status:202 "ok");
      S.Router.route "GET" "/boom" (fun ~params:_ _req -> failwith "handler bug");
    ]
  in
  let resp = S.Router.dispatch routes (mk_request "/v1/jobs/j17") in
  checki "param route" 200 resp.S.Http.status;
  checkstr "param bound" "j17" resp.S.Http.body;
  checki "404 unknown path" 404 (S.Router.dispatch routes (mk_request "/nope")).S.Http.status;
  let r405 = S.Router.dispatch routes (mk_request "/v1/lint") in
  checki "405 wrong method" 405 r405.S.Http.status;
  checkb "allow header present" true
    (S.Http.header "allow" r405.S.Http.headers = Some "POST");
  checki "500 on escaping handler" 500 (S.Router.dispatch routes (mk_request "/boom")).S.Http.status

(* ----------------------------------------------------------------- http *)

let test_http_framing_keep_alive () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      (* Two pipelined requests in one write: the conn buffer must carry
         the second across the first read. *)
      let raw =
        "POST /v1/lint HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello"
        ^ "GET /healthz?x=1 HTTP/1.1\r\nConnection: close\r\n\r\n"
      in
      let _ = Unix.write_substring a raw 0 (String.length raw) in
      let c = S.Http.conn b in
      (match S.Http.read_request c with
      | Ok r ->
          checkstr "meth" "POST" r.S.Http.meth;
          checkstr "path" "/v1/lint" r.S.Http.path;
          checkstr "body" "hello" r.S.Http.body;
          checkb "keep-alive default" true (S.Http.wants_keep_alive r)
      | Error _ -> Alcotest.fail "first request did not parse");
      match S.Http.read_request c with
      | Ok r ->
          checkstr "second path strips query" "/healthz" r.S.Http.path;
          checkstr "target keeps query" "/healthz?x=1" r.S.Http.target;
          checkb "connection: close honoured" false (S.Http.wants_keep_alive r)
      | Error _ -> Alcotest.fail "second request did not parse")

(* ----------------------------------------------------- end-to-end server *)

let with_server ?(jobs = 2) ?(queue_depth = 16) f =
  let t =
    S.Server.start
      { S.Server.host = "127.0.0.1"; port = 0; jobs; queue_depth; result_ttl = 60.0 }
  in
  Fun.protect ~finally:(fun () -> S.Server.stop t) (fun () -> f (S.Server.port t))

(* One request on a fresh connection. *)
let request ~port ~meth ~target ?body () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      match S.Http.call (S.Http.conn fd) ~meth ~target ?body () with
      | Ok r -> r
      | Error msg -> Alcotest.failf "%s %s: %s" meth target msg)

let state_of body =
  match J.of_string body with
  | Ok j -> (match J.member "state" j with Some (J.String s) -> s | _ -> "?")
  | Error _ -> "?"

let id_of body =
  match J.of_string body with
  | Ok j -> (match J.member "id" j with Some (J.String s) -> s | _ -> Alcotest.fail "no id")
  | Error e -> Alcotest.fail e

let poll_terminal ~port id =
  let deadline = Unix.gettimeofday () +. 60.0 in
  let rec go () =
    let status, _, body = request ~port ~meth:"GET" ~target:("/v1/jobs/" ^ id) () in
    checki "poll status" 200 status;
    let st = state_of body in
    if st = "done" || st = "failed" || st = "cancelled" then st
    else if Unix.gettimeofday () > deadline then Alcotest.failf "job %s never finished" id
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let submit_ok ~port endpoint body =
  let status, _, resp = request ~port ~meth:"POST" ~target:("/v1/" ^ endpoint) ~body () in
  checki (endpoint ^ " accepted") 202 status;
  id_of resp

(* Served lint verdict = the CLI's JSONL line, byte for byte. *)
let test_e2e_lint_byte_identity () =
  with_server (fun port ->
      let id = submit_ok ~port "lint" {|{"protocol":"stop-and-wait","nodes":20000}|} in
      checkstr "terminal state" "done" (poll_terminal ~port id);
      let status, _, served =
        request ~port ~meth:"GET" ~target:("/v1/jobs/" ^ id ^ "/result") ()
      in
      checki "result status" 200 status;
      let proto = Result.get_ok (Nfc_protocol.Registry.parse "stop-and-wait") in
      let cfg =
        {
          Nfc_lint.Checks.default_config with
          Nfc_lint.Checks.bounds =
            {
              Nfc_mcheck.Explore.capacity_tr = 2;
              capacity_rt = 2;
              submit_budget = 3;
              max_nodes = 20000;
              allow_drop = true;
              por = false;
            };
        }
      in
      let expected = Nfc_lint.Report.jsonl [ Nfc_lint.Engine.run cfg proto ] in
      checkstr "byte-identical to the CLI line" expected served)

(* Served simulate metrics = `nfc simulate --json` at the same knobs. *)
let test_e2e_simulate_byte_identity () =
  with_server (fun port ->
      let id =
        submit_ok ~port "simulate" {|{"protocol":"stenning","seed":5,"messages":8}|}
      in
      checkstr "terminal state" "done" (poll_terminal ~port id);
      let status, _, served =
        request ~port ~meth:"GET" ~target:("/v1/jobs/" ^ id ^ "/result") ()
      in
      checki "result status" 200 status;
      let proto = Result.get_ok (Nfc_protocol.Registry.parse "stenning") in
      let factory =
        Result.get_ok (Nfc_channel.Policy.parse_factory "reorder:0.8:0.05")
      in
      let result =
        Nfc_sim.Harness.run proto
          {
            Nfc_sim.Harness.default_config with
            policy_tr = factory ();
            policy_rt = factory ();
            n_messages = 8;
            submit_every = 3;
            seed = 5;
            record_trace = false;
            max_rounds = 500_000;
            stall_rounds = Some 100_000;
          }
      in
      checkstr "byte-identical to the CLI line"
        (Nfc_sim.Metrics.to_json result.Nfc_sim.Harness.metrics ^ "\n")
        served)

let test_e2e_bad_requests () =
  with_server (fun port ->
      let status, _, _ =
        request ~port ~meth:"POST" ~target:"/v1/lint" ~body:"{nope" ()
      in
      checki "invalid JSON is 400" 400 status;
      let status, _, _ =
        request ~port ~meth:"POST" ~target:"/v1/lint" ~body:{|{"protocol":"zzz"}|} ()
      in
      checki "unknown protocol is 400" 400 status;
      let status, _, _ = request ~port ~meth:"POST" ~target:"/v1/lint" ~body:"{}" () in
      checki "missing protocol is 400" 400 status;
      let status, _, _ = request ~port ~meth:"GET" ~target:"/v1/jobs/j999" () in
      checki "unknown job is 404" 404 status;
      let status, _, _ = request ~port ~meth:"GET" ~target:"/v1/lint" () in
      checki "wrong method is 405" 405 status;
      let status, _, _ = request ~port ~meth:"GET" ~target:"/nope" () in
      checki "unknown path is 404" 404 status)

let test_e2e_health_and_metrics () =
  with_server (fun port ->
      let status, _, body = request ~port ~meth:"GET" ~target:"/healthz" () in
      checki "healthz" 200 status;
      (match J.of_string body with
      | Ok j ->
          checkstr "status ok"
            "ok"
            (Result.get_ok (J.get_string "status" j));
          checki "workers" 2 (Result.get_ok (J.get_int "workers" j))
      | Error e -> Alcotest.fail e);
      let id = submit_ok ~port "simulate" {|{"protocol":"stenning","messages":2}|} in
      ignore (poll_terminal ~port id);
      let status, _, metrics = request ~port ~meth:"GET" ~target:"/metrics" () in
      checki "metrics" 200 status;
      let contains sub =
        let n = String.length metrics and m = String.length sub in
        let rec go i = i + m <= n && (String.sub metrics i m = sub || go (i + 1)) in
        go 0
      in
      List.iter
        (fun series -> checkb ("exposes " ^ series) true (contains series))
        [
          "nfc_queue_depth";
          "nfc_queue_capacity";
          "nfc_jobs_running";
          "nfc_uptime_seconds";
          "nfc_http_request_seconds_bucket";
          "nfc_jobs_submitted_total{kind=\"simulate\"}";
          "nfc_job_run_seconds";
          {|path="/v1/jobs/:id"|};
        ])

(* Tiny queue + slow jobs: the overflow answers 429 + Retry-After, every
   accepted job still reaches a terminal state. *)
let test_e2e_backpressure_429 () =
  with_server ~jobs:1 ~queue_depth:1 (fun port ->
      let accepted = ref [] and rejected = ref 0 in
      for i = 1 to 20 do
        let status, headers, body =
          request ~port ~meth:"POST" ~target:"/v1/fuzz"
            ~body:
              (Printf.sprintf
                 {|{"protocol":"altbit","iterations":20000,"seed":%d}|} i)
            ()
        in
        match status with
        | 202 -> accepted := id_of body :: !accepted
        | 429 ->
            incr rejected;
            checkb "429 carries retry-after" true
              (S.Http.header "retry-after" headers <> None)
        | s -> Alcotest.failf "unexpected submit status %d" s
      done;
      checkb "some requests were accepted" true (!accepted <> []);
      checkb "queue overflow produced 429s" true (!rejected > 0);
      checki "every request accounted for" 20 (List.length !accepted + !rejected);
      List.iter
        (fun id ->
          let st = poll_terminal ~port id in
          checkb ("job " ^ id ^ " terminal") true
            (st = "done" || st = "failed" || st = "cancelled"))
        !accepted)

(* The acceptance storm: 500 sessions in flight at once against 4 worker
   domains; zero dropped — every request terminal or 429 — and nothing
   fails. *)
let test_e2e_storm_500_concurrent () =
  with_server ~jobs:4 ~queue_depth:512 (fun port ->
      let stats =
        S.Loadgen.run
          {
            S.Loadgen.default_cfg with
            S.Loadgen.port;
            requests = 500;
            concurrency = 500;
            body = {|{"protocol":"stop-and-wait","nodes":3000}|};
          }
      in
      checkb "zero dropped (terminal or 429)" true (S.Loadgen.check stats);
      checki "no failed jobs" 0 stats.S.Loadgen.failed;
      checki "queue deep enough: nothing rejected" 0 stats.S.Loadgen.rejected;
      checki "all 500 completed" 500 stats.S.Loadgen.completed)

let test_e2e_cancel_queued_job () =
  with_server ~jobs:1 ~queue_depth:8 (fun port ->
      (* Pin the single worker with a slow fuzz job, then cancel a queued
         one behind it. *)
      let slow =
        submit_ok ~port "fuzz" {|{"protocol":"altbit","iterations":100000}|}
      in
      let victim =
        submit_ok ~port "fuzz" {|{"protocol":"altbit","iterations":100000,"seed":2}|}
      in
      let status, _, body =
        request ~port ~meth:"DELETE" ~target:("/v1/jobs/" ^ victim) ()
      in
      checkb "cancel acknowledged" true (status = 200 || status = 202);
      checkb "cancelled or cancelling" true
        (let s = state_of body in
         s = "cancelled" || s = "cancelling");
      checkstr "victim ends cancelled" "cancelled" (poll_terminal ~port victim);
      ignore (poll_terminal ~port slow))

(* --------------------------------------------- user-submitted protocols *)

(* Deliberately *named* like a builtin: the cache keys submitted specs by
   content digest, so this one-packet impostor must neither poison nor
   reuse the builtin "stop-and-wait" resident context. *)
let impostor_spec =
  {|protocol "stop-and-wait" {
  describe "single self-acking packet (not the builtin)"
  packets { ping }
  sender {
    counter pending = 0
    on submit { pending += 1 }
    poll when pending > 0 -> send ping { pending -= 1 }
  }
  receiver {
    counter due = 0 saturate budget + 2
    on ping { due += 1 }
    poll when due > 0 -> deliver { due -= 1 }
  }
}
|}

let str_contains hay sub =
  let n = String.length hay and m = String.length sub in
  let rec go i = i + m <= n && (String.sub hay i m = sub || go (i + 1)) in
  m = 0 || go 0

let get_str key body =
  match J.of_string body with
  | Ok j -> (
      match J.member key j with
      | Some (J.String s) -> s
      | _ -> Alcotest.failf "no %S in %s" key body)
  | Error e -> Alcotest.fail e

let lint_cfg_20k =
  {
    Nfc_lint.Checks.default_config with
    Nfc_lint.Checks.bounds =
      {
        Nfc_mcheck.Explore.capacity_tr = 2;
        capacity_rt = 2;
        submit_budget = 3;
        max_nodes = 20000;
        allow_drop = true;
        por = false;
      };
  }

let test_e2e_protocol_submission () =
  with_server (fun port ->
      (* Raw .nfc source -> 201 created, digest handle. *)
      let status, _, body =
        request ~port ~meth:"POST" ~target:"/v1/protocols" ~body:impostor_spec ()
      in
      checki "created" 201 status;
      let handle = get_str "handle" body in
      checkb "digest handle" true
        (String.length handle = 4 + 32 && String.sub handle 0 4 = "pdl:");
      checkstr "declared name" "stop-and-wait" (get_str "protocol" body);
      (* The compile-time static gate attaches its symbolic report. *)
      checkb "static report attached" true (str_contains body {|"static":|});
      checkb "static verdicts present" true
        (str_contains body {|"rule":"H1","verdict":"pass"|});
      (* Idempotent resubmission -> 200 cached, same handle. *)
      let status2, _, body2 =
        request ~port ~meth:"POST" ~target:"/v1/protocols" ~body:impostor_spec ()
      in
      checki "cached" 200 status2;
      checkstr "same handle" handle (get_str "handle" body2);
      (* The JSON envelope lands on the same source digest. *)
      let envelope = J.to_string (J.Obj [ ("spec", J.String impostor_spec) ]) in
      let status3, _, body3 =
        request ~port ~meth:"POST" ~target:"/v1/protocols" ~body:envelope ()
      in
      checki "envelope cached" 200 status3;
      checkstr "envelope handle" handle (get_str "handle" body3);
      (* GET lists builtins and the submitted handle. *)
      let lstatus, _, listing = request ~port ~meth:"GET" ~target:"/v1/protocols" () in
      checki "listing" 200 lstatus;
      checkb "lists the handle" true (str_contains listing handle);
      checkb "lists builtins" true (str_contains listing "stenning");
      (* Lint through the handle = Engine.run on the compiled spec, byte
         for byte — and distinct from the builtin's verdict even though
         the submitted spec names itself "stop-and-wait". *)
      let lint_body proto = Printf.sprintf {|{"protocol":%S,"nodes":20000}|} proto in
      let id = submit_ok ~port "lint" (lint_body handle) in
      checkstr "terminal state" "done" (poll_terminal ~port id);
      let _, _, served =
        request ~port ~meth:"GET" ~target:("/v1/jobs/" ^ id ^ "/result") ()
      in
      let compiled =
        match Nfc_pdl.Pdl.compile_string impostor_spec with
        | Ok c -> c.Nfc_pdl.Pdl.spec
        | Error _ -> Alcotest.fail "the impostor spec must compile"
      in
      let expected = Nfc_lint.Report.jsonl [ Nfc_lint.Engine.run lint_cfg_20k compiled ] in
      checkstr "byte-identical to the compiled spec's verdict" expected served;
      let id2 = submit_ok ~port "lint" (lint_body "stop-and-wait") in
      checkstr "terminal state" "done" (poll_terminal ~port id2);
      let _, _, builtin =
        request ~port ~meth:"GET" ~target:("/v1/jobs/" ^ id2 ^ "/result") ()
      in
      checkb "does not shadow the builtin" true (builtin <> served);
      (* Submission telemetry. *)
      let _, _, metrics = request ~port ~meth:"GET" ~target:"/metrics" () in
      checkb "created counter" true
        (str_contains metrics {|nfc_protocol_submissions_total{outcome="created"} 1|});
      checkb "cached counter" true
        (str_contains metrics {|nfc_protocol_submissions_total{outcome="cached"} 2|});
      checkb "resident gauge" true (str_contains metrics "nfc_protocols_resident 1"))

let test_e2e_protocol_submission_errors () =
  with_server (fun port ->
      (* Uncompilable spec -> 400 with located diagnostics. *)
      let status, _, body =
        request ~port ~meth:"POST" ~target:"/v1/protocols" ~body:"protocol \"x\" {" ()
      in
      checki "compile error" 400 status;
      (match J.of_string body with
      | Ok j -> (
          match J.member "diagnostics" j with
          | Some (J.List (d :: _)) ->
              checkb "line present" true (J.member "line" d <> None);
              checkb "col present" true (J.member "col" d <> None)
          | _ -> Alcotest.fail "expected a non-empty diagnostics array")
      | Error e -> Alcotest.fail e);
      (* Oversized source -> 413, counted as too_large. *)
      let status, _, _ =
        request ~port ~meth:"POST" ~target:"/v1/protocols"
          ~body:(String.make (70 * 1024) 'x') ()
      in
      checki "too large" 413 status;
      (* Unknown handle in a job submission -> 400 with a pointer at the
         submission endpoint. *)
      let status, _, body =
        request ~port ~meth:"POST" ~target:"/v1/lint"
          ~body:{|{"protocol":"pdl:deadbeefdeadbeefdeadbeefdeadbeef"}|} ()
      in
      checki "unknown handle" 400 status;
      checkb "explains the handle" true
        (str_contains body "submit the spec via POST /v1/protocols");
      (* file: sources are a CLI affordance, not a service one. *)
      let status, _, body =
        request ~port ~meth:"POST" ~target:"/v1/boundness"
          ~body:{|{"protocol":"file:/etc/passwd"}|} ()
      in
      checki "file refused" 400 status;
      checkb "explains the refusal" true (str_contains body "not served");
      let _, _, metrics = request ~port ~meth:"GET" ~target:"/metrics" () in
      checkb "too_large counter" true
        (str_contains metrics {|nfc_protocol_submissions_total{outcome="too_large"} 1|}))

let test_e2e_did_you_mean_400 () =
  with_server (fun port ->
      (* A near-miss builtin name comes back as a 400 whose body carries
         the registry's Levenshtein suggestion. *)
      let status, _, body =
        request ~port ~meth:"POST" ~target:"/v1/lint"
          ~body:{|{"protocol":"stop-and-wiat"}|} ()
      in
      checki "near-miss name is 400" 400 status;
      checkb "body suggests a correction" true (str_contains body "did you mean");
      checkb "body names the builtin" true (str_contains body "stop-and-wait");
      (* So does a typo'd file: scheme — "file" sits in the suggestion
         pool even though the service refuses real file: sources. *)
      let status, _, body =
        request ~port ~meth:"POST" ~target:"/v1/lint"
          ~body:{|{"protocol":"fiel:spec.nfc"}|} ()
      in
      checki "scheme typo is 400" 400 status;
      checkb "body suggests file" true (str_contains body {|did you mean \"file\"|}))

let suite =
  [
    ("queue bounded fifo", `Quick, test_queue_bounded_fifo);
    ("queue filter and close", `Quick, test_queue_filter_and_close);
    ("queue pop blocks", `Quick, test_queue_pop_blocks_until_push);
    ("jobs lifecycle", `Quick, test_jobs_lifecycle);
    ("jobs cancel queued", `Quick, test_jobs_cancel_queued);
    ("jobs ttl eviction", `Quick, test_jobs_ttl_eviction);
    ("jobs remove", `Quick, test_jobs_remove_undoes_registration);
    ("router dispatch", `Quick, test_router_dispatch);
    ("http framing keep-alive", `Quick, test_http_framing_keep_alive);
    ("e2e lint byte identity", `Quick, test_e2e_lint_byte_identity);
    ("e2e simulate byte identity", `Quick, test_e2e_simulate_byte_identity);
    ("e2e bad requests", `Quick, test_e2e_bad_requests);
    ("e2e health and metrics", `Quick, test_e2e_health_and_metrics);
    ("e2e backpressure 429", `Quick, test_e2e_backpressure_429);
    ("e2e storm 500 concurrent", `Slow, test_e2e_storm_500_concurrent);
    ("e2e cancel queued job", `Quick, test_e2e_cancel_queued_job);
    ("e2e protocol submission", `Quick, test_e2e_protocol_submission);
    ("e2e protocol submission errors", `Quick, test_e2e_protocol_submission_errors);
    ("e2e did-you-mean 400", `Quick, test_e2e_did_you_mean_400);
  ]
