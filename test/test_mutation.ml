(* Failure injection: the checkers must reject corrupted executions.

   Valid executions are recorded from real runs, then mutated in ways that
   model specific physical/logical faults; every mutation class must be
   flagged by the corresponding checker (declarative and online), and
   valid traces must never be flagged (no false positives). *)
open Nfc_automata

let checkb = Alcotest.(check bool)

(* A recorded valid execution to mutate. *)
let base_trace seed =
  let result =
    Nfc_sim.Harness.run (Nfc_protocol.Stenning.make ())
      {
        Nfc_sim.Harness.default_config with
        policy_tr = Nfc_channel.Policy.uniform_reorder ~deliver:0.7 ~drop:0.1;
        policy_rt = Nfc_channel.Policy.uniform_reorder ~deliver:0.7 ~drop:0.1;
        n_messages = 8;
        seed;
        record_trace = true;
      }
  in
  match result.Nfc_sim.Harness.trace with
  | Some t -> t
  | None -> Alcotest.fail "no trace recorded"

let insert_at i x l =
  let rec go j acc = function
    | rest when j = i -> List.rev_append acc (x :: rest)
    | [] -> List.rev (x :: acc)
    | a :: rest -> go (j + 1) (a :: acc) rest
  in
  go 0 [] l

let online_dl_flags trace =
  let c = Nfc_sim.Dl_check.create () in
  List.exists (fun a -> Nfc_sim.Dl_check.on_action c a <> None) trace

let online_pl_flags trace =
  let c = Nfc_channel.Pl_check.create () in
  List.exists (fun a -> Nfc_channel.Pl_check.on_action c a <> None) trace

let test_no_false_positives () =
  for seed = 1 to 5 do
    let t = base_trace seed in
    checkb "dl1 clean" true (Props.dl1 t = None);
    checkb "dl2 clean" true (Props.dl2 t = None);
    checkb "pl1 tr clean" true (Props.pl1 Action.T_to_r t = None);
    checkb "pl1 rt clean" true (Props.pl1 Action.R_to_t t = None);
    checkb "online dl clean" false (online_dl_flags t);
    checkb "online pl clean" false (online_pl_flags t)
  done

(* Fault: the channel duplicates a packet (hardware echo). *)
let test_inject_duplicate_packet_receive () =
  let t = base_trace 1 in
  (* Find a Receive_pkt and replay it immediately after itself. *)
  let rec dup acc = function
    | [] -> None
    | (Action.Receive_pkt _ as a) :: rest -> Some (List.rev_append acc (a :: a :: rest))
    | a :: rest -> dup (a :: acc) rest
  in
  match dup [] t with
  | None -> Alcotest.fail "no receive in trace"
  | Some mutated ->
      let dir_flagged =
        Props.pl1 Action.T_to_r mutated <> None || Props.pl1 Action.R_to_t mutated <> None
      in
      checkb "declarative PL1 flags duplication" true dir_flagged;
      checkb "online PL1 flags duplication" true (online_pl_flags mutated)

(* Fault: a packet materialises out of thin air (corruption). *)
let test_inject_phantom_packet () =
  let t = base_trace 2 in
  let mutated = insert_at 0 (Action.Receive_pkt (Action.T_to_r, 999)) t in
  checkb "declarative PL1 flags phantom packet" true (Props.pl1 Action.T_to_r mutated <> None);
  checkb "online PL1 flags phantom packet" true (online_pl_flags mutated)

(* Fault: the receiver hallucinates a delivery. *)
let test_inject_phantom_delivery () =
  let t = base_trace 3 in
  let mutated = t @ [ Action.Receive_msg 99 ] in
  checkb "DL1 flags hallucinated delivery" true (Props.dl1 mutated <> None);
  checkb "online flags it" true (online_dl_flags mutated)

(* Fault: duplicated delivery of a real message. *)
let test_inject_duplicate_delivery () =
  let t = base_trace 4 in
  let mutated = t @ [ Action.Receive_msg 0 ] in
  checkb "DL1 flags duplicate" true (Props.dl1 mutated <> None);
  checkb "online flags it" true (online_dl_flags mutated)

(* Fault: deliveries swapped (FIFO broken). *)
let test_swap_deliveries () =
  let t = base_trace 5 in
  let rec swap acc = function
    | [] -> None
    | Action.Receive_msg a :: rest -> (
        let rec swap2 acc2 = function
          | [] -> None
          | Action.Receive_msg b :: rest2 ->
              Some
                (List.rev_append acc
                   (Action.Receive_msg b
                   :: List.rev_append acc2 (Action.Receive_msg a :: rest2)))
          | x :: rest2 -> swap2 (x :: acc2) rest2
        in
        match swap2 [] rest with
        | Some mutated -> Some mutated
        | None -> None)
    | x :: rest -> swap (x :: acc) rest
  in
  match swap [] t with
  | None -> Alcotest.fail "needs two deliveries"
  | Some mutated ->
      checkb "DL2 flags out-of-order" true (Props.dl2 mutated <> None);
      checkb "online flags it" true (online_dl_flags mutated)

(* Fault: a drop recorded for a packet that is not in transit. *)
let test_inject_bogus_drop () =
  let t = base_trace 6 in
  let mutated = insert_at 0 (Action.Drop_pkt (Action.R_to_t, 123)) t in
  checkb "PL1 flags bogus drop" true (Props.pl1 Action.R_to_t mutated <> None)

(* Property: random single-action corruption of Receive_msg ids is always
   caught by DL1/DL2 (ids are a permutation-free chain). *)
let prop_random_delivery_corruption =
  QCheck.Test.make ~name:"random delivery-id corruption is caught" ~count:100
    QCheck.(pair (int_bound 10_000) (int_bound 1_000))
    (fun (seed, salt) ->
      let t = base_trace (1 + (seed mod 50)) in
      let deliveries = List.length (List.filter (function Action.Receive_msg _ -> true | _ -> false) t) in
      QCheck.assume (deliveries > 0);
      let target = salt mod deliveries in
      let idx = ref (-1) in
      let mutated =
        List.map
          (fun a ->
            match a with
            | Action.Receive_msg m ->
                incr idx;
                if !idx = target then Action.Receive_msg (m + 1 + (salt mod 3)) else a
            | a -> a)
          t
      in
      Props.dl1 mutated <> None || Props.dl2 mutated <> None)

(* Round-trip: serialisation preserves traces exactly, and judge reports
   the phantom on mutated ones. *)
let test_trace_io_roundtrip () =
  for seed = 1 to 5 do
    let t = base_trace seed in
    match Nfc_sim.Trace_io.parse (Nfc_sim.Trace_io.render t) with
    | Ok t' -> checkb "roundtrip" true (t = t')
    | Error msg -> Alcotest.fail msg
  done

let test_trace_io_rejects_garbage () =
  (match Nfc_sim.Trace_io.parse "send_msg 0\nfly_me_to_the_moon 3\n" with
  | Error msg -> checkb "names the line" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Nfc_sim.Trace_io.parse "send_pkt xx 3\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad direction accepted"

let test_trace_io_comments_and_blanks () =
  match Nfc_sim.Trace_io.parse "# a counterexample\n\nsend_msg 0\n\nreceive_msg 0\n" with
  | Ok [ Action.Send_msg 0; Action.Receive_msg 0 ] -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error msg -> Alcotest.fail msg

let test_trace_io_judge_mentions_phantom () =
  let report =
    Nfc_sim.Trace_io.judge [ Action.Send_msg 0; Action.Receive_msg 0; Action.Receive_msg 1 ]
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  checkb "mentions phantom" true (contains report "phantom delivery: YES")

let prop_trace_io_roundtrip_random =
  let action_gen =
    QCheck.Gen.(
      oneof
        [
          map (fun i -> Action.Send_msg i) (int_bound 100);
          map (fun i -> Action.Receive_msg i) (int_bound 100);
          map2
            (fun d p -> Action.Send_pkt ((if d then Action.T_to_r else Action.R_to_t), p))
            bool (int_bound 100);
          map2
            (fun d p -> Action.Receive_pkt ((if d then Action.T_to_r else Action.R_to_t), p))
            bool (int_bound 100);
          map2
            (fun d p -> Action.Drop_pkt ((if d then Action.T_to_r else Action.R_to_t), p))
            bool (int_bound 100);
        ])
  in
  QCheck.Test.make ~name:"trace_io roundtrips arbitrary action lists" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 50) action_gen))
    (fun t -> Nfc_sim.Trace_io.parse (Nfc_sim.Trace_io.render t) = Ok t)

(* ---------------------------------------------------------- Conformance *)

let test_conformance_accepts_real_traces () =
  (* Every harness-recorded trace is a genuine execution of its protocol. *)
  List.iter
    (fun (entry : Nfc_protocol.Registry.entry) ->
      let proto = entry.Nfc_protocol.Registry.default () in
      let res =
        Nfc_sim.Harness.run proto
          {
            Nfc_sim.Harness.default_config with
            policy_tr = Nfc_channel.Policy.uniform_reorder ~deliver:0.7 ~drop:0.05;
            policy_rt = Nfc_channel.Policy.uniform_reorder ~deliver:0.7 ~drop:0.05;
            n_messages = 5;
            seed = 4;
            record_trace = true;
            max_rounds = 60_000;
            stall_rounds = Some 20_000;
          }
      in
      match res.Nfc_sim.Harness.trace with
      | None -> Alcotest.fail "no trace"
      | Some t -> (
          let fresh = entry.Nfc_protocol.Registry.default () in
          match Nfc_sim.Conformance.check fresh t with
          | Nfc_sim.Conformance.Conformant -> ()
          | v ->
              Alcotest.failf "%s: %s"
                (Nfc_protocol.Spec.name proto)
                (Format.asprintf "%a" Nfc_sim.Conformance.pp_verdict v)))
    Nfc_protocol.Registry.all

let test_conformance_accepts_mcheck_counterexample () =
  match
    Nfc_mcheck.Explore.find_phantom
      (Nfc_protocol.Alternating_bit.make ~timeout:2 ())
      {
        Nfc_mcheck.Explore.capacity_tr = 2;
        capacity_rt = 2;
        submit_budget = 3;
        max_nodes = 200_000;
        allow_drop = false;
        por = false;
      }
  with
  | Nfc_mcheck.Explore.Violation trace -> (
      match Nfc_sim.Conformance.check (Nfc_protocol.Alternating_bit.make ~timeout:2 ()) trace with
      | Nfc_sim.Conformance.Conformant -> ()
      | v -> Alcotest.failf "counterexample not conformant: %s"
               (Format.asprintf "%a" Nfc_sim.Conformance.pp_verdict v))
  | _ -> Alcotest.fail "expected a counterexample"

let test_conformance_accepts_adversary_execution () =
  match Nfc_core.Adversary_m.attack ~max_messages:6 (Nfc_protocol.Flood.make ~base:1 ~ratio:2.0 ()) with
  | Nfc_core.Adversary_m.Violation v -> (
      match
        Nfc_sim.Conformance.check (Nfc_protocol.Flood.make ~base:1 ~ratio:2.0 ()) v.execution
      with
      | Nfc_sim.Conformance.Conformant -> ()
      | verdict -> Alcotest.failf "adversary execution not conformant: %s"
                     (Format.asprintf "%a" Nfc_sim.Conformance.pp_verdict verdict))
  | _ -> Alcotest.fail "expected a violation"

let test_conformance_rejects_wrong_packet () =
  let open Nfc_automata in
  (* A sender that was never asked to send packet 9. *)
  let t = [ Action.Send_msg 0; Action.Send_pkt (Action.T_to_r, 9) ] in
  match Nfc_sim.Conformance.check (Nfc_protocol.Stenning.make ()) t with
  | Nfc_sim.Conformance.Deviation d ->
      Alcotest.(check int) "at the send" 1 d.index
  | Nfc_sim.Conformance.Conformant -> Alcotest.fail "wrong packet accepted"

let test_conformance_rejects_unearned_delivery () =
  let open Nfc_automata in
  (* No data ever reached the receiver: it cannot deliver. *)
  let t = [ Action.Send_msg 0; Action.Receive_msg 0 ] in
  match Nfc_sim.Conformance.check (Nfc_protocol.Stenning.make ()) t with
  | Nfc_sim.Conformance.Deviation _ -> ()
  | Nfc_sim.Conformance.Conformant -> Alcotest.fail "unearned delivery accepted"

let test_conformance_rejects_foreign_trace () =
  let open Nfc_automata in
  (* An alternating-bit exchange is not a stenning execution: stenning's
     first data packet is 0 but its ack is 1, not 2. *)
  let t =
    [
      Action.Send_msg 0;
      Action.Send_pkt (Action.T_to_r, 0);
      Action.Receive_pkt (Action.T_to_r, 0);
      Action.Receive_msg 0;
      Action.Send_pkt (Action.R_to_t, 2);
    ]
  in
  match Nfc_sim.Conformance.check (Nfc_protocol.Stenning.make ()) t with
  | Nfc_sim.Conformance.Deviation d -> Alcotest.(check int) "at the ack" 4 d.index
  | Nfc_sim.Conformance.Conformant -> Alcotest.fail "foreign trace accepted"

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_random_delivery_corruption; prop_trace_io_roundtrip_random ]

let suite =
  [
    ("no false positives", `Quick, test_no_false_positives);
    ("inject duplicate packet", `Quick, test_inject_duplicate_packet_receive);
    ("inject phantom packet", `Quick, test_inject_phantom_packet);
    ("inject phantom delivery", `Quick, test_inject_phantom_delivery);
    ("inject duplicate delivery", `Quick, test_inject_duplicate_delivery);
    ("swap deliveries", `Quick, test_swap_deliveries);
    ("inject bogus drop", `Quick, test_inject_bogus_drop);
    ("trace_io roundtrip", `Quick, test_trace_io_roundtrip);
    ("trace_io rejects garbage", `Quick, test_trace_io_rejects_garbage);
    ("trace_io comments/blanks", `Quick, test_trace_io_comments_and_blanks);
    ("trace_io judge phantom", `Quick, test_trace_io_judge_mentions_phantom);
    ("conformance accepts real traces", `Quick, test_conformance_accepts_real_traces);
    ("conformance accepts mcheck cex", `Quick, test_conformance_accepts_mcheck_counterexample);
    ("conformance accepts adversary exec", `Quick, test_conformance_accepts_adversary_execution);
    ("conformance rejects wrong packet", `Quick, test_conformance_rejects_wrong_packet);
    ("conformance rejects unearned delivery", `Quick, test_conformance_rejects_unearned_delivery);
    ("conformance rejects foreign trace", `Quick, test_conformance_rejects_foreign_trace);
  ]
  @ qsuite
