(* Tests for Nfc_absint: Opvec order/join/acceleration laws (QCheck over
   small count arrays), cover-vs-explore differential agreement, and the
   complete-certification tier over the registry. *)
open Nfc_absint
module Explore = Nfc_mcheck.Explore
module Spec = Nfc_protocol.Spec

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------- Opvec laws *)

(* Counts drawn from {0,1,2,3,ω} over up to 5 coordinates — small enough
   to exercise trimming, ω absorption, and every le/join case. *)
let opvec_gen =
  QCheck.Gen.(
    map
      (fun l ->
        Opvec.of_array
          (Array.of_list (List.map (fun c -> if c >= 4 then Opvec.omega else c) l)))
      (list_size (int_bound 5) (int_bound 4)))

let opvec_arb =
  QCheck.make ~print:(fun v -> Format.asprintf "%a" (Opvec.pp ?packet:None) v) opvec_gen

let prop_le_refl =
  QCheck.Test.make ~name:"le is reflexive" ~count:200 opvec_arb (fun v -> Opvec.le v v)

let prop_le_antisym =
  QCheck.Test.make ~name:"le is antisymmetric" ~count:500
    (QCheck.pair opvec_arb opvec_arb)
    (fun (a, b) -> (not (Opvec.le a b && Opvec.le b a)) || Opvec.equal a b)

let prop_le_trans =
  QCheck.Test.make ~name:"le is transitive" ~count:500
    (QCheck.triple opvec_arb opvec_arb opvec_arb)
    (fun (a, b, c) -> (not (Opvec.le a b && Opvec.le b c)) || Opvec.le a c)

let prop_join_lub =
  QCheck.Test.make ~name:"join is the least upper bound" ~count:500
    (QCheck.triple opvec_arb opvec_arb opvec_arb)
    (fun (a, b, c) ->
      let j = Opvec.join a b in
      Opvec.le a j && Opvec.le b j
      && ((not (Opvec.le a c && Opvec.le b c)) || Opvec.le j c))

let prop_accelerate =
  QCheck.Test.make ~name:"accelerate dominates and pumps strict growth to ω" ~count:500
    (QCheck.pair opvec_arb opvec_arb)
    (fun (a, b) ->
      (* Use the join to manufacture a guaranteed prev <= t pair. *)
      let prev = a and t = Opvec.join a b in
      let acc = Opvec.accelerate ~prev t in
      Opvec.le t acc
      && List.for_all
           (fun id ->
             if Opvec.count t id > Opvec.count prev id && not (Opvec.is_omega t id) then
               Opvec.is_omega acc id
             else Opvec.count acc id = Opvec.count t id)
           (Opvec.support acc))

let prop_add_remove =
  QCheck.Test.make ~name:"remove_one inverts add (ω absorbs)" ~count:500
    (QCheck.pair opvec_arb (QCheck.int_bound 5))
    (fun (v, id) ->
      let v' = Opvec.add v id in
      if Opvec.is_omega v id then Opvec.equal v' v && Opvec.remove_one v' id = Some v'
      else
        Opvec.count v' id = Opvec.count v id + 1
        && match Opvec.remove_one v' id with
           | Some v'' -> Opvec.equal v'' v
           | None -> false)

let test_of_pvec_consistent () =
  (* A concrete Pvec and its Opvec injection agree on every count. *)
  let pv = List.fold_left Nfc_mcheck.Pvec.add Nfc_mcheck.Pvec.empty [ 0; 0; 2; 3; 3; 3 ] in
  let ov = Opvec.of_pvec pv in
  List.iter
    (fun id ->
      checki (Printf.sprintf "count at %d" id) (Nfc_mcheck.Pvec.count pv id)
        (Opvec.count ov id))
    [ 0; 1; 2; 3; 4 ];
  checkb "no ω in an injected Pvec" true (Opvec.omega_count ov = 0)

let test_omega_order () =
  let fin = Opvec.of_array [| 3; 1 |] in
  let om = Opvec.set_omega fin 0 in
  checkb "finite below ω" true (Opvec.le fin om);
  checkb "ω not below finite" false (Opvec.le om fin);
  checkb "ω survives remove_one" true (Opvec.remove_one om 0 = Some om)

(* ------------------------------------- cover/explore differential *)

let bounds =
  {
    Explore.capacity_tr = 2;
    capacity_rt = 2;
    submit_budget = 3;
    max_nodes = 15_000;
    allow_drop = true;
    por = false;
  }

let cover_of proto =
  let module P = (val proto : Spec.S) in
  let module E = Explore.Make (P) in
  let module C = Cover.Make (P) (E) in
  let reach = E.reachable_set bounds in
  (P.name, reach.E.first_phantom <> None, C.run ~submit_budget:bounds.Explore.submit_budget ())

let test_differential_phantom_agreement () =
  (* Where both analyses are exact — the cover converged — the budget-free
     phantom answer must agree with the bounded search's.  (The bounded
     side may be truncated; a found phantom is still a found phantom, and
     on this registry no phantom lies beyond the truncation: the cover
     corroborates exactly that.) *)
  let ran = ref 0 in
  List.iter
    (fun proto ->
      let name, bounded_phantom, (st : Cover.stats) = cover_of proto in
      if st.Cover.converged then begin
        incr ran;
        if String.starts_with ~prefix:"stab-arq" name then
          (* The stabilizing ARQ's phantom is capacity-gated (Theorem 3.1):
             unreachable at its design capacity, reachable once the channel
             holds more.  The capacity-unbounded cover must report it — a
             sound over-approximation, not a disagreement. *)
          checkb (name ^ ": cover sees the capacity-gated phantom") true
            st.Cover.phantom_coverable
        else
          checkb
            (name ^ ": cover and explore agree on the phantom")
            bounded_phantom st.Cover.phantom_coverable
      end)
    (Nfc_protocol.Registry.defaults ());
  checkb "differential exercised most of the registry" true (!ran >= 5)

let test_cover_shares_interned_state () =
  (* The cover reuses the bounded engine's interners/memos: running it
     after a bounded sweep must not disturb the engine's answers. *)
  let module P = (val Nfc_protocol.Alternating_bit.make ~timeout:2 () : Spec.S) in
  let module E = Explore.Make (P) in
  let module C = Cover.Make (P) (E) in
  let before = (E.reachable_set bounds).E.reach_stats.Explore.nodes in
  let st = C.run ~submit_budget:3 () in
  let after = (E.reachable_set bounds).E.reach_stats.Explore.nodes in
  checkb "cover converges on the alternating bit" true st.Cover.converged;
  checki "bounded reach unchanged by the cover run" before after

(* ------------------------------------- complete certification tier *)

let complete_results =
  lazy
    (Nfc_lint.Engine.run_registry
       { Nfc_lint.Checks.default_config with Nfc_lint.Checks.complete = true })

let bounded_results = lazy (Nfc_lint.Engine.run_registry Nfc_lint.Checks.default_config)

let is_complete (r : Nfc_lint.Engine.result) =
  r.Nfc_lint.Engine.certificate.Nfc_lint.Certificate.strength = Nfc_lint.Certificate.Complete

let test_registry_mostly_complete () =
  let results = Lazy.force complete_results in
  let n = List.length (List.filter is_complete results) in
  checkb (Printf.sprintf "at least 5 of %d protocols certify complete (got %d)"
            (List.length results) n)
    true (n >= 5);
  (* Every complete certificate upgraded all three upgradable rules. *)
  List.iter
    (fun (r : Nfc_lint.Engine.result) ->
      if is_complete r then
        List.iter
          (fun (rule, s) ->
            checkb
              (r.Nfc_lint.Engine.protocol ^ ": " ^ rule ^ " is complete")
              true
              (s = Nfc_lint.Certificate.Complete))
          r.Nfc_lint.Engine.certificate.Nfc_lint.Certificate.rule_strengths)
    results

let test_flooding_protocols_downgrade () =
  (* The hook-less, genuinely counter-unbounded protocols must diverge —
     and say so out loud (the C1 downgrade diagnostic). *)
  let results = Lazy.force complete_results in
  List.iter
    (fun (r : Nfc_lint.Engine.result) ->
      if not (is_complete r) then begin
        checkb (r.Nfc_lint.Engine.protocol ^ ": divergence is diagnosed") true
          (List.exists
             (fun (d : Nfc_lint.Diagnostic.t) -> d.Nfc_lint.Diagnostic.rule = "C1")
             r.Nfc_lint.Engine.diagnostics);
        match r.Nfc_lint.Engine.certificate.Nfc_lint.Certificate.cover with
        | Some cv ->
            if String.starts_with ~prefix:"stab-arq" r.Nfc_lint.Engine.protocol then
              (* The capacity-gated case: the cover converges but cannot
                 corroborate the capacity-relative T1 verdict, so the
                 strength stays bounded with the contradiction diagnosed. *)
              checkb "capacity-gated cover converges without corroborating" true
                cv.Nfc_lint.Certificate.cover_converged
            else
              checkb "cover summary records divergence" false
                cv.Nfc_lint.Certificate.cover_converged
        | None -> Alcotest.fail "complete run must attach a cover summary"
      end)
    results;
  checki "exactly three protocols stay bounded" 3
    (List.length (List.filter (fun r -> not (is_complete r)) results))

let test_verdicts_identical_to_bounded_run () =
  (* --complete only adds C1 lines and strength labels; every H1/E1/B1/
     T1/Q1/S1 verdict is the bounded run's, verbatim. *)
  let strip (r : Nfc_lint.Engine.result) =
    List.filter
      (fun (d : Nfc_lint.Diagnostic.t) -> d.Nfc_lint.Diagnostic.rule <> "C1")
      r.Nfc_lint.Engine.diagnostics
  in
  List.iter2
    (fun c b ->
      checkb
        (c.Nfc_lint.Engine.protocol ^ ": verdicts unchanged by the cover tier")
        true
        (strip c = strip b))
    (Lazy.force complete_results) (Lazy.force bounded_results)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_le_refl;
      prop_le_antisym;
      prop_le_trans;
      prop_join_lub;
      prop_accelerate;
      prop_add_remove;
    ]

let suite =
  [
    ("of_pvec counts agree", `Quick, test_of_pvec_consistent);
    ("ω ordering and absorption", `Quick, test_omega_order);
    ("cover/explore phantom differential", `Slow, test_differential_phantom_agreement);
    ("cover reuses the engine state soundly", `Quick, test_cover_shares_interned_state);
    ("registry certifies mostly complete", `Slow, test_registry_mostly_complete);
    ("flooding protocols downgrade loudly", `Slow, test_flooding_protocols_downgrade);
    ("verdicts identical to the bounded run", `Slow, test_verdicts_identical_to_bounded_run);
  ]
  @ qsuite
