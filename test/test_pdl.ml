(* Tests for Nfc_pdl: located diagnostics end to end, checker rejections
   and warnings, QCheck robustness (the compiler never raises, every
   failure carries a line/column span, print . parse . print is the
   identity on printed specs), the registry's did-you-mean suggestions
   and [file:PATH] loader, and the differential guarantee: the compiled
   example specs are byte-identical to the hand-written modules under
   both the bounded linter and the complete (cover) tier, and under the
   boundness prober. *)

module Pdl = Nfc_pdl.Pdl
module Diag = Nfc_pdl.Diag
module Ast = Nfc_pdl.Ast
module Parser = Nfc_pdl.Parser
module Registry = Nfc_protocol.Registry
module J = Nfc_util.Json

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let assert_contains what hay needle =
  if not (contains hay needle) then
    Alcotest.fail (Printf.sprintf "%s: expected %S inside %S" what needle hay)

(* ------------------------------------------------------------- helpers *)

let compile_ok src =
  match Pdl.compile_string src with
  | Ok c -> c
  | Error ds ->
      Alcotest.fail
        ("expected the spec to compile: "
        ^ String.concat "; " (List.map (Diag.to_string ?file:None) ds))

let compile_errs src =
  match Pdl.compile_string src with
  | Error ds -> ds
  | Ok _ -> Alcotest.fail "expected the spec to be rejected"

let well_spanned ds =
  List.for_all
    (fun d ->
      d.Diag.span.Diag.first.Diag.line >= 1 && d.Diag.span.Diag.first.Diag.col >= 1)
    ds

(* A minimal valid protocol used as the template for error injection. *)
let valid_src =
  {|protocol "pdl-unit" {
  packets { ping }
  sender {
    counter pending = 0
    on submit { pending += 1 }
    poll when pending > 0 -> send ping { pending -= 1 }
  }
  receiver {
    counter due = 0 saturate budget + 1
    on ping { due += 1 }
    poll when due > 0 -> deliver { due -= 1 }
  }
}
|}

(* ---------------------------------------------------------- unit tests *)

let test_compile_valid () =
  let c = compile_ok valid_src in
  checks "protocol name" "pdl-unit" (Nfc_protocol.Spec.name c.Pdl.spec);
  checki "no warnings" 0 (List.length c.Pdl.warnings);
  let c2 = compile_ok valid_src in
  checks "digest is deterministic" c.Pdl.digest c2.Pdl.digest;
  let c3 = compile_ok (valid_src ^ "// trailing comment\n") in
  checkb "digest covers the raw source text" true (c.Pdl.digest <> c3.Pdl.digest)

let test_lexer_error_span () =
  match Pdl.compile_string "protocol \"x\" { @ }" with
  | Ok _ -> Alcotest.fail "lexing '@' must fail"
  | Error [ d ] ->
      checki "line" 1 d.Diag.span.Diag.first.Diag.line;
      checki "col" 16 d.Diag.span.Diag.first.Diag.col;
      checkb "severity" true (d.Diag.severity = Diag.Error)
  | Error _ -> Alcotest.fail "lexing stops at the first bad character"

let test_parse_error_span () =
  match Pdl.compile_string "protocol \"p\" {\n  sender { }\n}\n" with
  | Ok _ -> Alcotest.fail "a spec without a receiver must fail"
  | Error [ d ] ->
      assert_contains "message" d.Diag.message "missing receiver section";
      checki "line" 3 d.Diag.span.Diag.first.Diag.line
  | Error _ -> Alcotest.fail "the parser reports exactly one error"

let test_checker_unknown_ident () =
  let src =
    {|protocol "p" {
  packets { ping }
  sender {
    counter pending = 0
    on submit { pending += 1 }
    poll when ghost > 0 -> send ping { pending -= 1 }
  }
  receiver { on ping }
}
|}
  in
  let ds = compile_errs src in
  checkb "all located" true (well_spanned ds);
  assert_contains "message" (String.concat "; " (List.map Diag.(to_string ?file:None) ds))
    "unknown identifier \"ghost\""

let test_checker_counter_negativity () =
  (* [due -= 1] without a [due > 0] guard: the interval analysis cannot
     prove non-negativity and must say how to fix it. *)
  let src =
    {|protocol "p" {
  packets { ping }
  sender {
    counter pending = 0
    on submit { pending += 1 }
    poll when pending > 0 -> send ping { pending -= 1 }
  }
  receiver {
    counter due = 0 saturate budget + 1
    on ping { due += 1 }
    poll -> deliver { due -= 1 }
  }
}
|}
  in
  let msg = String.concat "; " (List.map Diag.(to_string ?file:None) (compile_errs src)) in
  assert_contains "message" msg "stays non-negative";
  assert_contains "suggests a guard" msg "when due > 0"

let test_checker_range_violation () =
  let src =
    {|protocol "p" {
  packets { ping }
  sender {
    var t : 0 .. 3 = 0
    on submit { t += 1 }
    poll -> send ping
  }
  receiver { on ping }
}
|}
  in
  let msg = String.concat "; " (List.map Diag.(to_string ?file:None) (compile_errs src)) in
  assert_contains "message" msg "cannot prove \"t\" stays within its declared range 0 .. 3"

let test_checker_duplicate_decl () =
  let src =
    {|protocol "p" {
  packets { ping }
  sender {
    counter pending = 0
    counter pending = 0
    poll -> send ping
  }
  receiver { on ping }
}
|}
  in
  let msg = String.concat "; " (List.map Diag.(to_string ?file:None) (compile_errs src)) in
  assert_contains "message" msg "duplicate declaration of \"pending\" in the sender"

let test_checker_warnings () =
  let src =
    {|protocol "p" {
  packets { ping }
  sender {
    counter pending = 0
    on submit { pending += 1 }
    on ping when 1 > 2 { pending += 1 }
    poll when pending > 0 -> send ping { pending -= 1 }
  }
  receiver {
    counter due = 0 saturate budget + 1
    on ping { due += 1 }
    on ping { due += 1 }
    poll when due > 0 -> deliver { due -= 1 }
  }
}
|}
  in
  let c = compile_ok src in
  let msgs = String.concat "; " (List.map Diag.(to_string ?file:None) c.Pdl.warnings) in
  checkb "warnings are located" true (well_spanned c.Pdl.warnings);
  checkb "warnings are warnings" true
    (List.for_all (fun d -> d.Diag.severity = Diag.Warning) c.Pdl.warnings);
  assert_contains "unsatisfiable guard" msgs "clause can never fire";
  assert_contains "shadowed clause" msgs "shadowed by an earlier clause"

(* ------------------------------------------------- registry integration *)

let test_registry_suggestion () =
  (match Registry.parse "stennig" with
  | Ok _ -> Alcotest.fail "misspelt name must not resolve"
  | Error msg ->
      checks "did-you-mean message" "unknown protocol \"stennig\" (did you mean \"stenning\"?)"
        msg);
  checkb "suggest over aliases" true (Registry.suggest "altbti" = Some "altbit");
  checkb "no far-fetched suggestions" true (Registry.suggest "zzzzzzzz" = None)

(* `dune runtest` runs the binary from _build/default/test (the deps in
   test/dune place the specs one level up); `dune exec` runs it from the
   project root.  Accept either. *)
let example file =
  let candidates = [ "../examples/specs/" ^ file; "examples/specs/" ^ file ] in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail ("cannot locate example spec " ^ file)

let sw_path () = example "stop_and_wait.nfc"
let ab_path () = example "alternating_bit.nfc"

let test_file_loader () =
  Pdl.install_loader ();
  (match Registry.parse ("file:" ^ sw_path ()) with
  | Ok spec -> checks "loaded name" "stop-and-wait" (Nfc_protocol.Spec.name spec)
  | Error m -> Alcotest.fail m);
  (match Registry.parse "file:" with
  | Ok _ -> Alcotest.fail "file: without a path must fail"
  | Error m -> assert_contains "empty path" m "needs a path");
  (match Registry.parse "file:/nonexistent/spec.nfc" with
  | Ok _ -> Alcotest.fail "a missing file must fail"
  | Error _ -> ())

(* ---------------------------------------------------- differential tests *)

let compile_example path =
  match Pdl.compile_file path with
  | Ok c ->
      checki (path ^ " has no warnings") 0 (List.length c.Pdl.warnings);
      c.Pdl.spec
  | Error (`File m) -> Alcotest.fail m
  | Error (`Diags ds) ->
      Alcotest.fail (String.concat "\n" (List.map (Diag.to_string ~file:path) ds))

let lint_line cfg proto = Nfc_lint.Report.jsonl [ Nfc_lint.Engine.run cfg proto ]

(* The PDL re-expressions of stop-and-wait and the alternating-bit
   protocol must be observationally identical to the hand-written
   modules: same lint verdicts (same witnesses, same certificate), byte
   for byte, at both tiers. *)
let test_differential_lint_bounded () =
  let cfg = Nfc_lint.Checks.default_config in
  checks "stop-and-wait bounded lint"
    (lint_line cfg (Nfc_protocol.Stop_and_wait.make ()))
    (lint_line cfg (compile_example (sw_path ())));
  checks "alternating-bit bounded lint"
    (lint_line cfg (Nfc_protocol.Alternating_bit.make ()))
    (lint_line cfg (compile_example (ab_path ())))

let test_differential_lint_complete () =
  let cfg = { Nfc_lint.Checks.default_config with complete = true } in
  checks "stop-and-wait complete lint"
    (lint_line cfg (Nfc_protocol.Stop_and_wait.make ()))
    (lint_line cfg (compile_example (sw_path ())));
  checks "alternating-bit complete lint"
    (lint_line cfg (Nfc_protocol.Alternating_bit.make ()))
    (lint_line cfg (compile_example (ab_path ())))

let bound_json proto =
  let report =
    Nfc_mcheck.Boundness.measure proto ~explore:Nfc_mcheck.Explore.default_bounds
      ~probe:Nfc_mcheck.Boundness.default_probe_bounds
  in
  J.to_string (Nfc_mcheck.Boundness.to_json report)

let test_differential_boundness () =
  checks "stop-and-wait boundness"
    (bound_json (Nfc_protocol.Stop_and_wait.make ()))
    (bound_json (compile_example (sw_path ())));
  checks "alternating-bit boundness"
    (bound_json (Nfc_protocol.Alternating_bit.make ()))
    (bound_json (compile_example (ab_path ())))

(* ------------------------------------------------------ QCheck suites *)

module Gen = QCheck.Gen

(* Spans never influence printing, so the generators use a dummy. *)
let sp = Diag.point (Diag.pos ~line:1 ~col:1)

(* Name pools avoid keywords: a printed keyword in an identifier position
   would be a (correct) parse error and ruin the fixpoint property.
   "budget" is special — legal in expressions only, so only the
   expression pool includes it. *)
let decl_names = [ "x"; "y"; "pending"; "timer"; "limit"; "cnt" ]
let expr_idents = decl_names @ [ "budget" ]
let family_names = [ "data"; "ackp"; "nak" ]
let queue_names = [ "outq"; "acks" ]

let gen_expr : Ast.expr Gen.t =
  let base =
    Gen.oneof
      [
        Gen.map (fun i -> Ast.Int (i, sp)) (Gen.int_bound 20);
        Gen.map (fun b -> Ast.Bool (b, sp)) Gen.bool;
        Gen.map (fun x -> Ast.Ident (x, sp)) (Gen.oneofl expr_idents);
      ]
  in
  Gen.sized
    (Gen.fix (fun self n ->
         if n <= 0 then base
         else
           Gen.frequency
             [
               (2, base);
               ( 1,
                 Gen.map2
                   (fun op e -> Ast.Unop (op, e, sp))
                   (Gen.oneofl [ Ast.Neg; Ast.Not ])
                   (self (n / 2)) );
               ( 3,
                 Gen.map3
                   (fun op a b -> Ast.Binop (op, a, b, sp))
                   (Gen.oneofl
                      [
                        Ast.Add; Ast.Sub; Ast.Mul; Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt;
                        Ast.Ge; Ast.And; Ast.Or;
                      ])
                   (self (n / 2)) (self (n / 2)) );
             ]))

let gen_small_expr = gen_expr

let gen_ty =
  Gen.oneof
    [
      Gen.return (Ast.Tbool sp);
      Gen.map2 (fun lo hi -> Ast.Trange (lo, hi, sp)) gen_small_expr gen_small_expr;
    ]

let gen_decl =
  Gen.oneof
    [
      Gen.map3
        (fun name ty init -> Ast.Dvar { name; ty; init; span = sp })
        (Gen.oneofl decl_names) gen_ty gen_expr;
      Gen.map3
        (fun name init saturate -> Ast.Dcounter { name; init; saturate; span = sp })
        (Gen.oneofl decl_names) gen_expr (Gen.opt gen_expr);
      Gen.map2
        (fun name saturate -> Ast.Dqueue { name; saturate; span = sp })
        (Gen.oneofl queue_names) (Gen.opt gen_expr);
    ]

let gen_trigger =
  Gen.oneof
    [
      Gen.return (Ast.Tsubmit sp);
      Gen.map2
        (fun family binder -> Ast.Tpacket { family; binder; span = sp })
        (Gen.oneofl family_names)
        (Gen.opt (Gen.oneofl [ "b"; "k" ]));
    ]

let gen_action =
  Gen.oneof
    [
      Gen.map3
        (fun target op value -> Ast.Aset { target; op; value; span = sp })
        (Gen.oneofl decl_names)
        (Gen.oneofl [ `Assign; `Add; `Sub ])
        gen_expr;
      Gen.map3
        (fun queue family arg -> Ast.Apush { queue; family; arg; span = sp })
        (Gen.oneofl queue_names) (Gen.oneofl family_names) (Gen.opt gen_expr);
    ]

let gen_emit =
  Gen.oneof
    [
      Gen.map2
        (fun family arg -> Ast.Esend { family; arg; span = sp })
        (Gen.oneofl family_names) (Gen.opt gen_expr);
      Gen.map (fun queue -> Ast.Esend_from { queue; span = sp }) (Gen.oneofl queue_names);
      Gen.return (Ast.Edeliver sp);
    ]

let gen_clause =
  let actions = Gen.list_size (Gen.int_bound 3) gen_action in
  Gen.oneof
    [
      Gen.map3
        (fun trigger guard actions -> Ast.Con { trigger; guard; actions; span = sp })
        gen_trigger (Gen.opt gen_expr) actions;
      Gen.map3
        (fun guard emit actions -> Ast.Cpoll { guard; emit; actions; span = sp })
        (Gen.opt gen_expr) (Gen.opt gen_emit) actions;
    ]

let gen_station =
  Gen.map2
    (fun decls clauses -> { Ast.decls; clauses; sspan = sp })
    (Gen.list_size (Gen.int_bound 4) gen_decl)
    (Gen.list_size (Gen.int_bound 5) gen_clause)

let gen_name = Gen.string_size ~gen:Gen.printable (Gen.int_range 1 16)

let gen_family =
  Gen.map2
    (fun fname param -> { Ast.fname; param; fspan = sp })
    (Gen.oneofl family_names)
    (Gen.opt
       (Gen.map2 (fun lo hi -> ("b", lo, hi)) gen_small_expr gen_small_expr))

let gen_spec : Ast.spec Gen.t =
  let open Gen in
  gen_name >>= fun name ->
  opt gen_name >>= fun describe ->
  list_size (int_bound 2)
    (map2 (fun n e -> (n, e, sp)) (oneofl [ "c1"; "c2" ]) gen_expr)
  >>= fun consts ->
  list_size (int_bound 3) gen_family >>= fun families ->
  gen_station >>= fun sender ->
  gen_station >>= fun receiver ->
  return { Ast.name; describe; consts; families; sender; receiver; span = sp }

let arb_spec = QCheck.make ~print:Ast.print gen_spec

(* Mutation harness: a handful of byte-level edits drawn from the
   characters most likely to confuse a lexer or parser. *)
let mutation_chars = "{}()\"<>=+-!&|;:., \n0123456789abz"

let mutate txt (pos_seed, op, chr_seed) =
  let n = String.length txt in
  if n = 0 then txt
  else
    let pos = pos_seed mod n in
    let c = mutation_chars.[chr_seed mod String.length mutation_chars] in
    match op mod 4 with
    | 0 -> String.sub txt 0 pos ^ String.sub txt (pos + 1) (n - pos - 1)
    | 1 -> String.sub txt 0 pos ^ String.make 1 c ^ String.sub txt pos (n - pos)
    | 2 -> String.mapi (fun i x -> if i = pos then c else x) txt
    | _ -> String.sub txt 0 pos

let prop_print_parse_fixpoint =
  QCheck.Test.make ~name:"print . parse is the identity on printed specs" ~count:300 arb_spec
    (fun spec ->
      let txt = Ast.print spec in
      match Parser.parse txt with
      | Error d ->
          QCheck.Test.fail_reportf "printed spec failed to reparse: %s"
            (Diag.to_string ?file:None d)
      | Ok ast2 -> Ast.print ast2 = txt)

let prop_checker_total =
  QCheck.Test.make ~name:"compile_string is total with located diagnostics" ~count:300
    arb_spec (fun spec ->
      match Pdl.compile_string (Ast.print spec) with
      | Ok _ -> true
      | Error ds -> ds <> [] && well_spanned ds
      | exception e ->
          QCheck.Test.fail_reportf "compile_string raised %s" (Printexc.to_string e))

let prop_mutation_robust =
  QCheck.Test.make ~name:"compile_string survives mutated sources" ~count:400
    (QCheck.pair arb_spec
       (QCheck.list_of_size (Gen.int_range 1 4)
          (QCheck.triple QCheck.small_nat QCheck.small_nat QCheck.small_nat)))
    (fun (spec, muts) ->
      let txt = List.fold_left mutate (Ast.print spec) muts in
      match Pdl.compile_string txt with
      | Ok _ -> true
      | Error ds -> ds <> [] && well_spanned ds
      | exception e ->
          QCheck.Test.fail_reportf "compile_string raised %s on %S"
            (Printexc.to_string e) txt)

let qcheck_suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_print_parse_fixpoint; prop_checker_total; prop_mutation_robust ]

let suite =
  [
    ("compile a valid spec", `Quick, test_compile_valid);
    ("lexer errors are located", `Quick, test_lexer_error_span);
    ("parser errors are located", `Quick, test_parse_error_span);
    ("checker: unknown identifier", `Quick, test_checker_unknown_ident);
    ("checker: counter negativity", `Quick, test_checker_counter_negativity);
    ("checker: range violation", `Quick, test_checker_range_violation);
    ("checker: duplicate declaration", `Quick, test_checker_duplicate_decl);
    ("checker: exhaustiveness warnings", `Quick, test_checker_warnings);
    ("registry: did-you-mean suggestions", `Quick, test_registry_suggestion);
    ("registry: file loader", `Quick, test_file_loader);
    ("differential: bounded lint is byte-identical", `Quick, test_differential_lint_bounded);
    ("differential: complete lint is byte-identical", `Slow, test_differential_lint_complete);
    ("differential: boundness is byte-identical", `Quick, test_differential_boundness);
  ]
  @ qcheck_suite
