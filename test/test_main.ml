(* Aggregates all suites; one alcotest binary for `dune runtest`. *)
let () =
  Alcotest.run "nonfifo"
    [
      ("util", Test_util.suite);
      ("stats", Test_stats.suite);
      ("automata", Test_automata.suite);
      ("channel", Test_channel.suite);
      ("protocol", Test_protocol.suite);
      ("sim", Test_sim.suite);
      ("mcheck", Test_mcheck.suite);
      ("engine", Test_engine.suite);
      ("fuzz", Test_fuzz.suite);
      ("core", Test_core.suite);
      ("transport", Test_transport.suite);
      ("mutation", Test_mutation.suite);
      ("lint", Test_lint.suite);
      ("absint", Test_absint.suite);
      ("boundness-def", Test_boundness_def.suite);
      ("serve", Test_serve.suite);
      ("pdl", Test_pdl.suite);
      ("specint", Test_specint.suite);
      ("refine", Test_refine.suite);
      ("matrix", Test_matrix.suite);
      ("edge", Test_edge.suite);
    ]
