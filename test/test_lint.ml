(* Tests for Nfc_lint: the honest registry is error-free, a lying spec is
   flagged, certificates respect Theorem 2.1, JSON and exit codes. *)
open Nfc_lint
module Spec = Nfc_protocol.Spec

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* The registry run is shared across tests (it is the expensive part). *)
let registry_results = lazy (Engine.run_registry Checks.default_config)

(* A deliberately broken protocol: declares two headers but emits four
   distinct forward packets plus a reverse ack, and its receiver refuses
   packet 2 — so H1 (header budget) and E1 (input-enabledness) must both
   fire as errors. *)
module Broken = struct
  let name = "broken-lint-spec"
  let describe = "lies about its header bound and rejects packet 2"
  let header_bound = Some 2

  type sender = int (* next forward packet, cycling mod 4 *)
  type receiver = int (* acks pending *)

  let sender_init = 0
  let receiver_init = 0
  let on_submit s = s
  let on_ack s _ = s
  let sender_poll s = (Some s, (s + 1) mod 4)
  let on_data r p = if p = 2 then failwith "cannot handle packet 2" else r + 1
  let receiver_poll r = if r > 0 then (Some (Spec.Rsend 9), r - 1) else (None, r)
  let compare_sender = Int.compare
  let compare_receiver = Int.compare

  (* One hook present, one absent: the lint run exercises both the hashed
     and the comparator-keyed intern paths of the engine. *)
  let hash_sender = Some Spec.structural_hash
  let hash_receiver = None
  let cover_norm_sender = None
  let cover_norm_receiver = None
  let pp_sender = Format.pp_print_int
  let pp_receiver = Format.pp_print_int
  let sender_space_bits = Spec.bits_for_int
  let receiver_space_bits = Spec.bits_for_int
end

(* A spec whose hash hook is incoherent with its comparator: the
   receiver is a two-list batched queue compared on its canonical form
   (front @ rev back) but hashed on the raw structure, so the two
   representations of the same logical queue hash apart — exactly the
   defect that makes a hash-bucketed interner split one state into
   several ids.  S1 must flag it. *)
module Incoherent = struct
  let name = "incoherent-hash-spec"
  let describe = "batched-queue receiver hashed on the raw representation"
  let header_bound = Some 1

  type sender = unit
  type receiver = { front : int list; back : int list }

  let sender_init = ()
  let receiver_init = { front = []; back = [] }
  let on_submit s = s
  let on_ack s _ = s
  let sender_poll s = (None, s)
  let on_data r p = { r with back = p :: r.back }

  let receiver_poll r =
    match r.front with
    | _ :: front -> (None, { r with front })
    | [] -> (
        match List.rev r.back with
        | _ :: front -> (None, { front; back = [] })
        | [] -> (None, r))

  let canon r = r.front @ List.rev r.back
  let compare_sender = compare
  let compare_receiver a b = compare (canon a) (canon b)
  let hash_sender = None

  (* The bug: hashes the representation, not the normal form. *)
  let hash_receiver = Some Spec.structural_hash
  let cover_norm_sender = None
  let cover_norm_receiver = None
  let pp_sender ppf () = Format.pp_print_string ppf "()"

  let pp_receiver ppf r =
    Format.fprintf ppf "{front=[%s];back=[%s]}"
      (String.concat ";" (List.map string_of_int r.front))
      (String.concat ";" (List.map string_of_int r.back))

  let sender_space_bits _ = 1
  let receiver_space_bits _ = 8
end

(* Small bounds: the broken spec's defects are visible within a few
   hundred configurations, no need for the default budgets. *)
let small_cfg =
  {
    Checks.default_config with
    Checks.bounds =
      { (Checks.default_config.Checks.bounds) with Nfc_mcheck.Explore.max_nodes = 2_000 };
    probe = { Nfc_mcheck.Boundness.max_nodes = 300; max_cost = 30 };
    max_probes = 50;
  }

let broken_result = lazy (Engine.run small_cfg (module Broken : Spec.S))
let incoherent_result = lazy (Engine.run small_cfg (module Incoherent : Spec.S))

let has ~rule ~severity (r : Engine.result) =
  List.exists
    (fun (d : Diagnostic.t) -> d.Diagnostic.rule = rule && d.Diagnostic.severity = severity)
    r.Engine.diagnostics

let test_registry_clean () =
  let results = Lazy.force registry_results in
  checki "all registry protocols linted" (List.length (Nfc_protocol.Registry.defaults ()))
    (List.length results);
  checki "no errors on honest protocols" 0 (Report.n_errors results)

let test_registry_certificates_sound () =
  (* Theorem 2.1: measured boundness never exceeds k_t * k_r on the same
     bounds.  [None] (probe budget exhausted) makes no claim. *)
  List.iter
    (fun (r : Engine.result) ->
      match r.Engine.certificate.Certificate.measured_boundness with
      | Some b ->
          checkb
            (r.Engine.protocol ^ ": boundness <= state product")
            true
            (b <= r.Engine.certificate.Certificate.state_product)
      | None -> ())
    (Lazy.force registry_results)

let test_registry_header_budgets_certified () =
  (* Every declared bound in the registry is honest: the observed
     alphabet fits. *)
  List.iter
    (fun (r : Engine.result) ->
      match r.Engine.certificate.Certificate.declared_header_bound with
      | Some k ->
          checkb
            (r.Engine.protocol ^ ": alphabet within declared bound")
            true
            (Certificate.alphabet_size r.Engine.certificate <= k)
      | None -> ())
    (Lazy.force registry_results)

let test_broken_flags_h1_and_e1 () =
  let r = Lazy.force broken_result in
  checkb "H1 error (lying header bound)" true (has ~rule:"H1" ~severity:Diagnostic.Error r);
  checkb "E1 error (partial on_data)" true (has ~rule:"E1" ~severity:Diagnostic.Error r);
  checkb "alphabet overflows the declared bound" true
    (Certificate.alphabet_size r.Engine.certificate > 2)

let test_broken_witnesses_name_the_defect () =
  let r = Lazy.force broken_result in
  let e1 =
    List.find
      (fun (d : Diagnostic.t) -> d.Diagnostic.rule = "E1")
      r.Engine.diagnostics
  in
  match e1.Diagnostic.witness with
  | Some w ->
      (* The witness names the offending operation and packet. *)
      checkb "witness mentions on_data" true
        (String.length w >= 7 && String.sub w 0 7 = "on_data")
  | None -> Alcotest.fail "E1 must carry a witness"

let test_s1_flags_incoherent_hash () =
  let r = Lazy.force incoherent_result in
  checkb "S1 error (hash incoherent with comparator)" true
    (has ~rule:"S1" ~severity:Diagnostic.Error r);
  let s1 =
    List.find (fun (d : Diagnostic.t) -> d.Diagnostic.rule = "S1") r.Engine.diagnostics
  in
  checkb "S1 names the hash defect" true
    (let msg = s1.Diagnostic.message in
     String.length msg >= 6 && String.sub msg 0 6 = "[hash-");
  checkb "S1 carries the colliding states as witness" true (s1.Diagnostic.witness <> None)

let test_s1_clean_on_honest_and_broken_specs () =
  (* Partiality (Broken's on_data) is E1's finding; S1 must not double
     report it — and the honest registry passes the contract checks
     (already implied by the zero-error assertion above, stated here
     directly). *)
  checkb "no S1 on the merely partial spec" false
    (List.exists
       (fun (d : Diagnostic.t) -> d.Diagnostic.rule = "S1")
       (Lazy.force broken_result).Engine.diagnostics);
  List.iter
    (fun (r : Engine.result) ->
      checkb (r.Engine.protocol ^ ": no S1 findings") false
        (List.exists
           (fun (d : Diagnostic.t) -> d.Diagnostic.rule = "S1")
           r.Engine.diagnostics))
    (Lazy.force registry_results)

let test_bounded_strength_without_complete () =
  (* Without --complete every certificate is budget-relative, and the
     JSONL says so in every record. *)
  List.iter
    (fun (r : Engine.result) ->
      match r.Engine.certificate.Certificate.strength with
      | Certificate.Bounded n ->
          checki (r.Engine.protocol ^ ": budget is the node bound")
            Checks.default_config.Checks.bounds.Nfc_mcheck.Explore.max_nodes n
      | Certificate.Complete | Certificate.Static ->
          Alcotest.fail
            (r.Engine.protocol ^ ": upgraded strength without the cover/static tier"))
    (Lazy.force registry_results);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun line ->
      checkb "record carries a strength" true (contains line {|"strength":"bounded"|});
      checkb "record carries its budget" true (contains line {|"budget":|}))
    (String.split_on_char '\n' (String.trim (Report.jsonl (Lazy.force registry_results))))

let test_sarif_shape () =
  let results = [ Lazy.force broken_result ] in
  let s = Sarif.to_string results in
  let contains needle =
    let nh = String.length s and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
    go 0
  in
  checkb "declares SARIF 2.1.0" true (contains {|"version":"2.1.0"|});
  checkb "rules catalogue embedded" true (contains {|"id":"H1"|});
  checkb "errors map to level error" true (contains {|"level":"error"|});
  checkb "protocol is a logical location" true
    (contains {|"name":"broken-lint-spec","kind":"module"|})

let test_jsonl_one_object_per_protocol () =
  let results = Lazy.force registry_results in
  let lines =
    String.split_on_char '\n' (String.trim (Report.jsonl results))
  in
  checki "one JSON line per protocol" (List.length results) (List.length lines);
  List.iter
    (fun l ->
      checkb "line is a protocol object" true
        (String.length l > 12 && String.sub l 0 12 = {|{"protocol":|}))
    lines

let test_exit_codes () =
  let results = Lazy.force registry_results in
  checki "clean registry exits 0" 0 (Report.exit_code ~strict:false results);
  (* The alternating bit's stuck configuration is a warning; strict mode
     escalates it. *)
  checki "strict escalates warnings" 1 (Report.exit_code ~strict:true results);
  let broken = [ Lazy.force broken_result ] in
  checki "errors exit 1" 1 (Report.exit_code ~strict:false broken)

let suite =
  [
    ("registry lints clean", `Quick, test_registry_clean);
    ("certificates respect Theorem 2.1", `Quick, test_registry_certificates_sound);
    ("declared header budgets certified", `Quick, test_registry_header_budgets_certified);
    ("broken spec flags H1+E1", `Quick, test_broken_flags_h1_and_e1);
    ("S1 flags the incoherent hash hook", `Quick, test_s1_flags_incoherent_hash);
    ("S1 silent on honest and merely partial specs", `Quick, test_s1_clean_on_honest_and_broken_specs);
    ("bounded strength without --complete", `Quick, test_bounded_strength_without_complete);
    ("sarif shape", `Quick, test_sarif_shape);
    ("E1 witness names the defect", `Quick, test_broken_witnesses_name_the_defect);
    ("jsonl shape", `Quick, test_jsonl_one_object_per_protocol);
    ("exit codes", `Quick, test_exit_codes);
  ]
