(* Tests for Nfc_protocol: per-protocol unit behaviour and cross-protocol
   safety/liveness properties driven through the simulation harness. *)
open Nfc_protocol

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------ unit: spec misc *)

let test_bits_for_int () =
  checki "0" 1 (Spec.bits_for_int 0);
  checki "1" 1 (Spec.bits_for_int 1);
  checki "2" 2 (Spec.bits_for_int 2);
  checki "255" 8 (Spec.bits_for_int 255);
  checki "256" 9 (Spec.bits_for_int 256);
  Alcotest.check_raises "negative" (Invalid_argument "Spec.bits_for_int: negative")
    (fun () -> ignore (Spec.bits_for_int (-1)))

let test_registry_names () =
  checkb "s&w" true (Spec.name (Stop_and_wait.make ()) = "stop-and-wait");
  checkb "altbit bound" true (Spec.header_bound (Alternating_bit.make ()) = Some 4);
  checkb "stenning unbounded" true (Spec.header_bound (Stenning.make ()) = None);
  checkb "flood bound" true (Spec.header_bound (Flood.make ()) = Some 4);
  checkb "afek3 bound" true (Spec.header_bound (Afek3.make ()) = Some 6)

let test_make_validation () =
  Alcotest.check_raises "bad timeout"
    (Invalid_argument "Stenning.make: timeout must be >= 1") (fun () ->
      ignore (Stenning.make ~timeout:0 ()));
  Alcotest.check_raises "bad ratio" (Invalid_argument "Flood.make: ratio must be >= 1.0")
    (fun () -> ignore (Flood.make ~ratio:0.5 ()));
  Alcotest.check_raises "bad base" (Invalid_argument "Flood.make: base must be >= 1")
    (fun () -> ignore (Flood.make ~base:0 ()));
  Alcotest.check_raises "bad retransmit"
    (Invalid_argument "Afek3.make: retransmit must be >= 1") (fun () ->
      ignore (Afek3.make ~retransmit:0 ()))

(* --------------------------------------- unit: hand-driven step machines *)

(* Drive a protocol module by hand through a perfect one-message exchange;
   returns the data packet used, or None if it stalls. *)
let hand_drive (module P : Spec.S) =
  let s = P.on_submit P.sender_init in
  match P.sender_poll s with
  | Some pkt, _ -> (
      let r = P.on_data P.receiver_init pkt in
      match P.receiver_poll r with Some Spec.Rdeliver, _ -> Some pkt | _ -> None)
  | None, _ -> None

let test_stop_and_wait_hand () =
  match hand_drive (Stop_and_wait.make ()) with
  | Some pkt -> checki "data packet is 0" 0 pkt
  | None -> Alcotest.fail "one-step delivery failed"

let test_alternating_bit_bits () =
  let (module P) = (Alternating_bit.make () : Spec.t) in
  (* First message uses bit 0, second bit 1 after the matching ack. *)
  let s = P.on_submit (P.on_submit P.sender_init) in
  match P.sender_poll s with
  | Some p0, s ->
      checki "first data bit 0" 0 p0;
      let s = P.on_ack s 2 in
      (* ack for bit 0 *)
      (match P.sender_poll s with
      | Some p1, _ -> checki "second data bit 1" 1 p1
      | None, _ -> Alcotest.fail "sender idle after ack")
  | None, _ -> Alcotest.fail "sender idle"

let test_alternating_bit_wrong_ack_ignored () =
  let (module P) = (Alternating_bit.make () : Spec.t) in
  let s = P.on_submit P.sender_init in
  match P.sender_poll s with
  | Some _, s -> (
      let s = P.on_ack s 3 in
      (* ack for bit 1: wrong, must keep retransmitting bit 0 *)
      let rec drain s n =
        if n = 0 then Alcotest.fail "no retransmission"
        else
          match P.sender_poll s with
          | Some p, _ -> checki "still bit 0" 0 p
          | None, s -> drain s (n - 1)
      in
      drain s 10)
  | None, _ -> Alcotest.fail "sender idle"

let test_alternating_bit_duplicate_data_not_redelivered () =
  let (module P) = (Alternating_bit.make () : Spec.t) in
  let r = P.on_data P.receiver_init 0 in
  let r = match P.receiver_poll r with Some Spec.Rdeliver, r -> r | _ -> Alcotest.fail "no delivery" in
  (* A duplicate of bit 0 must be re-acked, not re-delivered. *)
  let r = P.on_data r 0 in
  match P.receiver_poll r with
  | Some (Spec.Rsend a), _ -> checki "re-ack bit 0" 2 a
  | _ -> Alcotest.fail "expected re-ack, got delivery or silence"

let test_stenning_sequence_numbers () =
  let (module P) = (Stenning.make () : Spec.t) in
  let s = P.on_submit (P.on_submit P.sender_init) in
  (match P.sender_poll s with
  | Some p, _ -> checki "message 0 uses packet 0" 0 p
  | None, _ -> Alcotest.fail "idle");
  let s = match P.sender_poll s with Some _, s -> P.on_ack s 1 | _ -> assert false in
  match P.sender_poll s with
  | Some p, _ -> checki "message 1 uses packet 2" 2 p
  | None, _ -> Alcotest.fail "idle after ack"

let test_stenning_out_of_order_ignored () =
  let (module P) = (Stenning.make () : Spec.t) in
  (* Packet for message 3 arrives first: no delivery, no ack. *)
  let r = P.on_data P.receiver_init 6 in
  (match P.receiver_poll r with
  | None, _ -> ()
  | Some _, _ -> Alcotest.fail "future packet must be ignored");
  (* Stale packet (already delivered) re-acked but not re-delivered. *)
  let r = P.on_data P.receiver_init 0 in
  let r = match P.receiver_poll r with Some Spec.Rdeliver, r -> r | _ -> Alcotest.fail "deliver" in
  let r = P.on_data r 0 in
  match P.receiver_poll r with
  | Some (Spec.Rsend 1), _ -> ()
  | _ -> Alcotest.fail "expected re-ack of message 0"

let test_flood_thresholds_grow () =
  (* With base 2, ratio 2: message 0 needs 2 copies, message 1 needs 4. *)
  let (module P) = (Flood.make ~base:2 ~ratio:2.0 () : Spec.t) in
  let r = P.on_data P.receiver_init 0 in
  (match P.receiver_poll r with
  | None, _ -> ()
  | Some _, _ -> Alcotest.fail "one copy must not deliver with threshold 2");
  let r = P.on_data r 0 in
  (match P.receiver_poll r with
  | Some Spec.Rdeliver, _ -> ()
  | _ -> Alcotest.fail "two copies must deliver");
  (* Stale copies of the wrong bit are ignored. *)
  let r2 = P.on_data P.receiver_init 1 in
  match P.receiver_poll r2 with
  | None, _ -> ()
  | Some _, _ -> Alcotest.fail "wrong bit must not count"

let test_flood_sender_needs_threshold_acks () =
  let (module P) = (Flood.make ~base:2 ~ratio:2.0 () : Spec.t) in
  let s = P.on_submit P.sender_init in
  let s = match P.sender_poll s with Some 0, s -> s | _ -> Alcotest.fail "expected D0" in
  let s = P.on_ack s 2 in
  (* One ack: epoch still open, sender keeps flooding D0. *)
  let s =
    match P.sender_poll s with Some 0, s -> s | _ -> Alcotest.fail "epoch must stay open"
  in
  let s = P.on_ack s 2 in
  (* Second ack: epoch closed; sender idle without new submission. *)
  match P.sender_poll s with
  | None, _ -> ()
  | Some _, _ -> Alcotest.fail "epoch must close after threshold acks"

let test_afek3_colours_cycle () =
  let (module P) = (Afek3.make ~retransmit:1 () : Spec.t) in
  let s = P.on_submit (P.on_submit (P.on_submit P.sender_init)) in
  let s = match P.sender_poll s with Some 0, s -> s | _ -> Alcotest.fail "colour 0" in
  (* Receiver delivers on first colour-0 packet and echoes it. *)
  let r = P.on_data P.receiver_init 0 in
  let r = match P.receiver_poll r with Some Spec.Rdeliver, r -> r | _ -> Alcotest.fail "deliver" in
  (match P.receiver_poll r with
  | Some (Spec.Rsend 3), _ -> ()
  | _ -> Alcotest.fail "echo of colour 0 expected");
  (* Sender sees the echo, completes, then sends colour 1. *)
  let s = P.on_ack s 3 in
  let s = match P.sender_poll s with None, s -> s | _ -> Alcotest.fail "completion turn" in
  match P.sender_poll s with
  | Some 1, _ -> ()
  | _ -> Alcotest.fail "colour 1 expected"

let test_afek3_stale_colour_not_delivered () =
  let (module P) = (Afek3.make () : Spec.t) in
  (* Receiver expecting colour 0; colour 2 arrives: echoed, not delivered. *)
  let r = P.on_data P.receiver_init 2 in
  match P.receiver_poll r with
  | Some (Spec.Rsend 5), r -> (
      match P.receiver_poll r with
      | None, _ -> ()
      | Some _, _ -> Alcotest.fail "no delivery for wrong colour")
  | _ -> Alcotest.fail "echo expected first"

let test_afek3_flush_blocks_colour_reuse () =
  (* If a colour-0 copy is never echoed, the sender must not start epoch 2
     (which is when the receiver would begin trusting colour 2... epoch
     blocked is the one reusing the unechoed colour's slot: epoch 2 needs
     colour (2+1) mod 3 = 0 drained). *)
  let (module P) = (Afek3.make ~retransmit:1 ~ping_every:1 () : Spec.t) in
  let s = List.fold_left (fun s _ -> P.on_submit s) P.sender_init [ 1; 2; 3 ] in
  (* Epoch 0: two copies of colour 0 sent, only one echoed. *)
  let s = match P.sender_poll s with Some 0, s -> s | _ -> Alcotest.fail "D0" in
  let s = match P.sender_poll s with Some 0, s -> s | _ -> Alcotest.fail "D0 again" in
  let s = P.on_ack s 3 in
  (* completes epoch 0 *)
  let s = match P.sender_poll s with None, s -> s | _ -> Alcotest.fail "complete" in
  (* Epoch 1 (colour 1) proceeds: flush target is colour 2, clean. *)
  let s = match P.sender_poll s with Some 1, s -> s | _ -> Alcotest.fail "D1" in
  let s = P.on_ack s 4 in
  let s = match P.sender_poll s with None, s -> s | _ -> Alcotest.fail "complete 1" in
  (* Epoch 2 (colour 2) must BLOCK: colour 0 has 2 sent, 1 echoed. *)
  (match P.sender_poll s with
  | Some p, _ -> checkb "only pings of previous colour allowed" true (p = 1)
  | None, _ -> ());
  (* Echo the second colour-0 copy: now epoch 2 opens. *)
  let s = P.on_ack s 3 in
  let rec find_d2 s n =
    if n = 0 then Alcotest.fail "epoch 2 never opened"
    else
      match P.sender_poll s with
      | Some 2, _ -> ()
      | _, s -> find_d2 s (n - 1)
  in
  find_d2 s 5

(* --------------------------------------- integration: harness scenarios *)

let run ?(n = 12) ?(seed = 1) ?(submit_every = 3) ?(max_rounds = 300_000) proto tr rt =
  Nfc_sim.Harness.run proto
    {
      Nfc_sim.Harness.default_config with
      policy_tr = tr;
      policy_rt = rt;
      n_messages = n;
      submit_every;
      seed;
      max_rounds;
    }

let assert_complete name res =
  let m = res.Nfc_sim.Harness.metrics in
  checkb (name ^ ": no DL violation") true (m.Nfc_sim.Metrics.dl_violation = None);
  checkb (name ^ ": no PL violation") true (m.Nfc_sim.Metrics.pl_violation = None);
  checkb (name ^ ": completed") true m.Nfc_sim.Metrics.completed

let assert_safe name res =
  let m = res.Nfc_sim.Harness.metrics in
  checkb (name ^ ": no DL violation") true (m.Nfc_sim.Metrics.dl_violation = None);
  checkb (name ^ ": no PL violation") true (m.Nfc_sim.Metrics.pl_violation = None)

let test_all_protocols_on_reliable_fifo () =
  List.iter
    (fun proto ->
      assert_complete (Spec.name proto)
        (run proto Nfc_channel.Policy.fifo_reliable Nfc_channel.Policy.fifo_reliable))
    [
      Stop_and_wait.make ();
      Alternating_bit.make ();
      Stenning.make ();
      Flood.make ();
      Afek3.make ();
    ]

let test_alternating_bit_on_lossy_fifo () =
  for seed = 1 to 5 do
    assert_complete "altbit lossy"
      (run ~seed (Alternating_bit.make ())
         (Nfc_channel.Policy.fifo_lossy ~loss:0.3)
         (Nfc_channel.Policy.fifo_lossy ~loss:0.3))
  done

let test_stop_and_wait_breaks_on_loss () =
  (* The header-free protocol must eventually duplicate a delivery. *)
  let violated = ref false in
  for seed = 1 to 10 do
    let res =
      run ~seed (Stop_and_wait.make ())
        (Nfc_channel.Policy.fifo_lossy ~loss:0.3)
        (Nfc_channel.Policy.fifo_lossy ~loss:0.3)
    in
    if res.Nfc_sim.Harness.metrics.Nfc_sim.Metrics.dl_violation <> None then violated := true
  done;
  checkb "DL1 violated on some seed" true !violated

let test_alternating_bit_breaks_on_reorder () =
  let violated = ref false in
  for seed = 1 to 10 do
    let res =
      run ~seed ~n:30 ~submit_every:2 (Alternating_bit.make ())
        (Nfc_channel.Policy.uniform_reorder ~deliver:0.3 ~drop:0.0)
        (Nfc_channel.Policy.uniform_reorder ~deliver:0.3 ~drop:0.0)
    in
    if res.Nfc_sim.Harness.metrics.Nfc_sim.Metrics.dl_violation <> None then violated := true
  done;
  checkb "DL1 violated under reordering" true !violated

let test_stenning_safe_and_live_everywhere () =
  let channels =
    [
      Nfc_channel.Policy.fifo_lossy ~loss:0.3;
      Nfc_channel.Policy.uniform_reorder ~deliver:0.6 ~drop:0.1;
      Nfc_channel.Policy.probabilistic ~q:0.4 ();
    ]
  in
  List.iter
    (fun ch ->
      for seed = 1 to 3 do
        assert_complete "stenning" (run ~seed (Stenning.make ()) ch ch)
      done)
    channels

let test_afek3_safe_and_live_on_delay_channels () =
  let channels =
    [
      Nfc_channel.Policy.uniform_reorder ~deliver:0.6 ~drop:0.0;
      Nfc_channel.Policy.probabilistic ~q:0.4 ();
    ]
  in
  List.iter
    (fun ch ->
      for seed = 1 to 3 do
        assert_complete "afek3" (run ~seed (Afek3.make ()) ch ch)
      done)
    channels

let test_afek3_safe_under_loss () =
  (* Under loss Afek3 may block (flush never completes) but must stay
     safe. *)
  for seed = 1 to 5 do
    let res =
      run ~seed ~max_rounds:20_000 (Afek3.make ())
        (Nfc_channel.Policy.uniform_reorder ~deliver:0.5 ~drop:0.2)
        (Nfc_channel.Policy.uniform_reorder ~deliver:0.5 ~drop:0.2)
    in
    assert_safe "afek3 lossy" res
  done

let test_flood_safe_and_live_on_probabilistic () =
  for seed = 1 to 3 do
    assert_complete "flood"
      (run ~seed ~n:8 (Flood.make ())
         (Nfc_channel.Policy.probabilistic ~q:0.3 ())
         (Nfc_channel.Policy.probabilistic ~q:0.3 ()))
  done

let test_flood_packets_exponential () =
  (* Delivering n messages costs at least sum of thresholds = 2^n - 1
     forward packets, even on a perfect channel. *)
  let res = run ~n:8 ~submit_every:0 (Flood.make ~base:1 ~ratio:2.0 ())
      Nfc_channel.Policy.fifo_reliable Nfc_channel.Policy.fifo_reliable
  in
  let m = res.Nfc_sim.Harness.metrics in
  checkb "completed" true m.Nfc_sim.Metrics.completed;
  checkb "at least 2^8-1 data packets" true (m.Nfc_sim.Metrics.pkts_tr_sent >= 255)

let test_stenning_headers_grow_flood_headers_bounded () =
  let res_s = run ~n:20 (Stenning.make ()) Nfc_channel.Policy.fifo_reliable
      Nfc_channel.Policy.fifo_reliable
  in
  let res_f = run ~n:8 (Flood.make ()) Nfc_channel.Policy.fifo_reliable
      Nfc_channel.Policy.fifo_reliable
  in
  let hs = Nfc_sim.Metrics.total_headers res_s.Nfc_sim.Harness.metrics in
  let hf = Nfc_sim.Metrics.total_headers res_f.Nfc_sim.Harness.metrics in
  checkb "stenning headers ~ 2n" true (hs >= 20);
  checkb "flood headers <= 4" true (hf <= 4)

let test_go_back_n_basics () =
  let (module P) = (Go_back_n.make ~window:3 () : Spec.t) in
  (* Three submissions fill the window in order 0, 2, 4 (data packets). *)
  let s = List.fold_left (fun s _ -> P.on_submit s) P.sender_init [ (); (); (); () ] in
  let s = match P.sender_poll s with Some 0, s -> s | _ -> Alcotest.fail "data 0" in
  let s = match P.sender_poll s with Some 2, s -> s | _ -> Alcotest.fail "data 1" in
  let s = match P.sender_poll s with Some 4, s -> s | _ -> Alcotest.fail "data 2" in
  (* Window full: fourth message must wait. *)
  (match P.sender_poll s with
  | None, _ -> ()
  | Some _, _ -> Alcotest.fail "window must be closed");
  (* Cumulative ack for message 1 opens two slots. *)
  let s = P.on_ack s 3 in
  match P.sender_poll s with
  | Some 6, _ -> ()
  | _ -> Alcotest.fail "window should slide to message 3"

let test_go_back_n_receiver_gap () =
  let (module P) = (Go_back_n.make () : Spec.t) in
  (* Message 1 before message 0: ignored (gap). *)
  let r = P.on_data P.receiver_init 2 in
  (match P.receiver_poll r with
  | None, _ -> ()
  | Some _, _ -> Alcotest.fail "gap must not deliver or ack");
  (* Stale data gets a cumulative re-ack. *)
  let r = P.on_data P.receiver_init 0 in
  let r = match P.receiver_poll r with Some Spec.Rdeliver, r -> r | _ -> Alcotest.fail "deliver" in
  let r = match P.receiver_poll r with Some (Spec.Rsend 1), r -> r | _ -> Alcotest.fail "ack 0" in
  let r = P.on_data r 0 in
  match P.receiver_poll r with
  | Some (Spec.Rsend 1), _ -> ()
  | _ -> Alcotest.fail "stale data must be re-acked cumulatively"

let test_go_back_n_safe_and_live () =
  let channels =
    [
      Nfc_channel.Policy.fifo_lossy ~loss:0.3;
      Nfc_channel.Policy.uniform_reorder ~deliver:0.6 ~drop:0.1;
      Nfc_channel.Policy.probabilistic ~q:0.4 ();
    ]
  in
  List.iter
    (fun ch ->
      for seed = 1 to 3 do
        assert_complete "go-back-n" (run ~seed ~n:15 (Go_back_n.make ()) ch ch)
      done)
    channels

let test_go_back_n_faster_than_stenning () =
  (* Pipelining: over a channel with real propagation delay, go-back-n
     finishes the same workload in far fewer rounds than one-at-a-time
     Stenning.  (Under pure reordering GBN is actually worse — its
     cumulative retransmission storms — which is the classic reason
     selective repeat exists.) *)
  let slow () = Nfc_channel.Policy.fifo_delayed ~latency:10 ~loss:0.1 () in
  let rounds proto seed =
    (run ~seed ~n:30 ~submit_every:0 proto (slow ()) (slow ())).Nfc_sim.Harness.metrics
      .Nfc_sim.Metrics.rounds
  in
  let wins = ref 0 in
  for seed = 1 to 5 do
    if
      rounds (Go_back_n.make ~window:8 ~timeout:30 ()) seed
      < rounds (Stenning.make ~timeout:30 ()) seed
    then incr wins
  done;
  checkb "windowing wins every seed" true (!wins = 5)

let test_selective_repeat_buffers_out_of_order () =
  let (module P) = (Selective_repeat.make ~window:4 () : Spec.t) in
  (* Message 2 arrives before 0 and 1: buffered, acked, not delivered. *)
  let r = P.on_data P.receiver_init 4 in
  let r = match P.receiver_poll r with
    | Some (Spec.Rsend 5), r -> r
    | _ -> Alcotest.fail "selective ack for 2 expected" in
  (match P.receiver_poll r with
  | None, _ -> ()
  | Some _, _ -> Alcotest.fail "nothing to deliver yet");
  (* Message 0 arrives: deliver 0; then 1 arrives: deliver 1 and 2. *)
  let r = P.on_data r 0 in
  let r = match P.receiver_poll r with Some Spec.Rdeliver, r -> r | _ -> Alcotest.fail "deliver 0" in
  let r = match P.receiver_poll r with Some (Spec.Rsend 1), r -> r | _ -> Alcotest.fail "ack 0" in
  let r = P.on_data r 2 in
  let r = match P.receiver_poll r with Some Spec.Rdeliver, r -> r | _ -> Alcotest.fail "deliver 1" in
  (match P.receiver_poll r with
  | Some Spec.Rdeliver, _ -> ()
  | _ -> Alcotest.fail "buffered message 2 must drain")

let test_selective_repeat_retransmits_only_missing () =
  let (module P) = (Selective_repeat.make ~window:3 ~timeout:1 () : Spec.t) in
  let s = List.fold_left (fun s _ -> P.on_submit s) P.sender_init [ (); (); () ] in
  let s = match P.sender_poll s with Some 0, s -> s | _ -> Alcotest.fail "d0" in
  let s = match P.sender_poll s with Some 2, s -> s | _ -> Alcotest.fail "d1" in
  let s = match P.sender_poll s with Some 4, s -> s | _ -> Alcotest.fail "d2" in
  (* Ack the middle message only; the sweep must resend 0 and 2, not 1. *)
  let s = P.on_ack s 3 in
  let sent = ref [] in
  let rec drain s n =
    if n = 0 then ()
    else
      match P.sender_poll s with
      | Some p, s -> sent := p :: !sent; drain s (n - 1)
      | None, s -> drain s (n - 1)
  in
  drain s 6;
  checkb "resends 0" true (List.mem 0 !sent);
  checkb "resends 2 (msg 2)" true (List.mem 4 !sent);
  checkb "never resends acked msg 1" false (List.mem 2 !sent)

let test_selective_repeat_safe_and_live () =
  let channels =
    [
      Nfc_channel.Policy.fifo_lossy ~loss:0.3;
      Nfc_channel.Policy.uniform_reorder ~deliver:0.6 ~drop:0.1;
      Nfc_channel.Policy.probabilistic ~q:0.4 ();
    ]
  in
  List.iter
    (fun ch ->
      for seed = 1 to 3 do
        assert_complete "selective-repeat" (run ~seed ~n:15 (Selective_repeat.make ()) ch ch)
      done)
    channels

let test_selective_repeat_beats_gbn_under_reorder () =
  (* The reason selective repeat exists: under reordering it avoids
     Go-Back-N's cumulative retransmission storms. *)
  let reorder () = Nfc_channel.Policy.uniform_reorder ~deliver:0.5 ~drop:0.0 in
  let packets proto seed =
    let m = (run ~seed ~n:30 ~submit_every:0 proto (reorder ()) (reorder ())).Nfc_sim.Harness.metrics in
    Nfc_sim.Metrics.total_packets m
  in
  let wins = ref 0 in
  for seed = 1 to 5 do
    if packets (Selective_repeat.make ~window:8 ()) seed
       < packets (Go_back_n.make ~window:8 ()) seed
    then incr wins
  done;
  checkb "selective repeat cheaper most seeds" true (!wins >= 4)

let test_registry_parse () =
  checkb "stenning" true (Result.is_ok (Registry.parse "stenning"));
  checkb "alias sw" true (Result.is_ok (Registry.parse "sw"));
  checkb "flood with params" true (Result.is_ok (Registry.parse "flood:2:1.5"));
  checkb "sr with window" true (Result.is_ok (Registry.parse "sr:16"));
  checkb "unknown rejected" true (Result.is_error (Registry.parse "tcp"));
  checkb "bad params rejected" true (Result.is_error (Registry.parse "flood:0:0.5"));
  checkb "extra params rejected" true (Result.is_error (Registry.parse "stenning:3"))

let test_registry_covers_all_protocols () =
  checki "eight entries" 8 (List.length Registry.all);
  let names = List.map Spec.name (Registry.defaults ()) in
  checki "no duplicate defaults" (List.length names)
    (List.length (List.sort_uniq compare names));
  (* Every key and alias resolves to its own entry (compare by key;
     entries contain closures). *)
  let resolves_to key name =
    match Registry.find name with
    | Some e -> e.Registry.key = key
    | None -> false
  in
  List.iter
    (fun (e : Registry.entry) ->
      checkb (e.key ^ " resolves") true (resolves_to e.key e.key);
      List.iter (fun a -> checkb (a ^ " resolves") true (resolves_to e.key a)) e.aliases)
    Registry.all

let test_space_instrumentation () =
  let res = run ~n:16 (Stenning.make ()) Nfc_channel.Policy.fifo_reliable
      Nfc_channel.Policy.fifo_reliable
  in
  let m = res.Nfc_sim.Harness.metrics in
  checkb "sender space grows past initial" true (m.Nfc_sim.Metrics.max_sender_space_bits > 4);
  checkb "receiver space positive" true (m.Nfc_sim.Metrics.max_receiver_space_bits > 0)

(* --------------------------------------------------- qcheck: random seeds *)

let safe_protocols =
  [
    ("stenning", fun () -> Stenning.make ());
    ("afek3", fun () -> Afek3.make ());
  ]

let prop_safety_under_random_delay_channels =
  (* No safe protocol ever violates DL1/DL2/PL1 under randomized reordering
     delay-only channels, regardless of seed. *)
  QCheck.Test.make ~name:"stenning/afek3 safety under random reorder" ~count:60
    QCheck.(pair (int_bound 10_000) (int_range 0 1))
    (fun (seed, which) ->
      let name, mk = List.nth safe_protocols which in
      ignore name;
      let ch () = Nfc_channel.Policy.uniform_reorder ~deliver:0.5 ~drop:0.0 in
      let res = run ~seed ~n:8 ~max_rounds:30_000 (mk ()) (ch ()) (ch ()) in
      let m = res.Nfc_sim.Harness.metrics in
      m.Nfc_sim.Metrics.dl_violation = None && m.Nfc_sim.Metrics.pl_violation = None)

let prop_stenning_liveness_random_loss =
  QCheck.Test.make ~name:"stenning completes under random loss" ~count:40
    QCheck.(int_bound 10_000)
    (fun seed ->
      let ch () = Nfc_channel.Policy.fifo_lossy ~loss:0.4 in
      let res = run ~seed ~n:6 (Stenning.make ()) (ch ()) (ch ()) in
      res.Nfc_sim.Harness.metrics.Nfc_sim.Metrics.completed)

let prop_flood_safety_with_margin =
  (* Flood with a healthy ratio stays safe on the probabilistic channel. *)
  QCheck.Test.make ~name:"flood(r=2) safety on probabilistic q=0.3" ~count:30
    QCheck.(int_bound 10_000)
    (fun seed ->
      let ch () = Nfc_channel.Policy.probabilistic ~q:0.3 () in
      let res = run ~seed ~n:6 ~max_rounds:100_000 (Flood.make ()) (ch ()) (ch ()) in
      res.Nfc_sim.Harness.metrics.Nfc_sim.Metrics.dl_violation = None)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_safety_under_random_delay_channels;
      prop_stenning_liveness_random_loss;
      prop_flood_safety_with_margin;
    ]

let suite =
  [
    ("bits_for_int", `Quick, test_bits_for_int);
    ("names and bounds", `Quick, test_registry_names);
    ("constructor validation", `Quick, test_make_validation);
    ("stop-and-wait hand drive", `Quick, test_stop_and_wait_hand);
    ("alternating bit flips", `Quick, test_alternating_bit_bits);
    ("alternating bit wrong ack", `Quick, test_alternating_bit_wrong_ack_ignored);
    ("alternating bit duplicate data", `Quick, test_alternating_bit_duplicate_data_not_redelivered);
    ("stenning sequence numbers", `Quick, test_stenning_sequence_numbers);
    ("stenning out of order", `Quick, test_stenning_out_of_order_ignored);
    ("flood thresholds grow", `Quick, test_flood_thresholds_grow);
    ("flood sender ack threshold", `Quick, test_flood_sender_needs_threshold_acks);
    ("afek3 colours cycle", `Quick, test_afek3_colours_cycle);
    ("afek3 stale colour ignored", `Quick, test_afek3_stale_colour_not_delivered);
    ("afek3 flush blocks reuse", `Quick, test_afek3_flush_blocks_colour_reuse);
    ("all protocols on reliable fifo", `Quick, test_all_protocols_on_reliable_fifo);
    ("altbit on lossy fifo", `Quick, test_alternating_bit_on_lossy_fifo);
    ("stop-and-wait breaks on loss", `Quick, test_stop_and_wait_breaks_on_loss);
    ("altbit breaks on reorder", `Quick, test_alternating_bit_breaks_on_reorder);
    ("stenning safe+live everywhere", `Quick, test_stenning_safe_and_live_everywhere);
    ("afek3 safe+live on delay", `Quick, test_afek3_safe_and_live_on_delay_channels);
    ("afek3 safe under loss", `Quick, test_afek3_safe_under_loss);
    ("flood safe+live probabilistic", `Quick, test_flood_safe_and_live_on_probabilistic);
    ("go-back-n basics", `Quick, test_go_back_n_basics);
    ("go-back-n receiver gap", `Quick, test_go_back_n_receiver_gap);
    ("go-back-n safe+live", `Quick, test_go_back_n_safe_and_live);
    ("go-back-n pipelining wins", `Quick, test_go_back_n_faster_than_stenning);
    ("selective repeat buffering", `Quick, test_selective_repeat_buffers_out_of_order);
    ("selective repeat selective resend", `Quick, test_selective_repeat_retransmits_only_missing);
    ("selective repeat safe+live", `Quick, test_selective_repeat_safe_and_live);
    ("selective repeat beats gbn", `Quick, test_selective_repeat_beats_gbn_under_reorder);
    ("registry parse", `Quick, test_registry_parse);
    ("registry coverage", `Quick, test_registry_covers_all_protocols);
    ("flood packets exponential", `Quick, test_flood_packets_exponential);
    ("header census", `Quick, test_stenning_headers_grow_flood_headers_bounded);
    ("space instrumentation", `Quick, test_space_instrumentation);
  ]
  @ qsuite
