(* Tests for Nfc_specint, the spec-level abstract interpreter: exact
   symbolic alphabets and state products on the example specs, located
   dead-clause findings, the Static certificate upgrade and its
   cross-validation against the exploration-backed linter, the registry's
   extended did-you-mean pool, and the QCheck agreement property — on
   random valid specs the static tier must agree with (or stay unknown
   against) a 15k-node exploration, never contradict it. *)

module Pdl = Nfc_pdl.Pdl
module Check = Nfc_pdl.Check
module Registry = Nfc_protocol.Registry
module Specint = Nfc_specint.Specint
module Lint = Nfc_lint

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let contains = Test_pdl.contains
let assert_contains = Test_pdl.assert_contains

let analyze_file file =
  let path = Test_pdl.example file in
  match Pdl.compile_file path with
  | Ok c -> (c, Specint.analyze c.Pdl.checked)
  | Error (`File m) -> Alcotest.fail m
  | Error (`Diags ds) ->
      Alcotest.fail
        (String.concat "\n"
           (List.map (Nfc_pdl.Diag.to_string ~file:path) ds))

(* Summaries precede located findings, so the first match is the
   top-level verdict. *)
let find_verdict (rep : Specint.report) rule =
  match
    List.find_opt
      (fun (f : Specint.finding) -> f.Specint.rule = rule)
      rep.Specint.findings
  with
  | Some f -> f
  | None -> Alcotest.fail ("no top-level " ^ rule ^ " finding")

(* ------------------------------------------------- example-spec verdicts *)

let test_stop_and_wait_static () =
  let _, rep = analyze_file "stop_and_wait.nfc" in
  checkb "converged" true rep.Specint.converged;
  Alcotest.(check (list int)) "t->r alphabet" [ 0 ] rep.Specint.alphabet_tr;
  Alcotest.(check (list int)) "r->t alphabet" [ 1 ] rep.Specint.alphabet_rt;
  checks "H1 passes" "pass"
    (Specint.verdict_name (find_verdict rep "H1").Specint.verdict);
  checks "E1 passes" "pass"
    (Specint.verdict_name (find_verdict rep "E1").Specint.verdict);
  checks "B1 passes" "pass"
    (Specint.verdict_name (find_verdict rep "B1").Specint.verdict);
  (* The saturating counters are unbounded at the spec level, so the
     product is ω-parametric and says so. *)
  checkb "product is omega" true (rep.Specint.product = Nfc_specint.Dom.omega);
  checkb "pending is an omega slot" true
    (List.mem "pending" rep.Specint.sender.Specint.omega_slots)

let test_alternating_bit_static () =
  let _, rep = analyze_file "alternating_bit.nfc" in
  checkb "converged" true rep.Specint.converged;
  Alcotest.(check (list int)) "t->r alphabet" [ 0; 1 ] rep.Specint.alphabet_tr;
  Alcotest.(check (list int)) "r->t alphabet" [ 2; 3 ] rep.Specint.alphabet_rt;
  checki "declared headers" 4 rep.Specint.declared_headers;
  checks "H1 passes" "pass"
    (Specint.verdict_name (find_verdict rep "H1").Specint.verdict)

let test_bounded_counter_finite_product () =
  (* Every counter is guard-bounded, so the fixpoint settles to exact
     finite intervals with NO widening to ω: pending in [0,3] and
     inflight give k_t <= 8, the two dues in [0,2] give k_r <= 9. *)
  let _, rep = analyze_file "bounded_counter.nfc" in
  checkb "converged" true rep.Specint.converged;
  checki "k_t" 8 rep.Specint.sender.Specint.state_bound;
  checki "k_r" 9 rep.Specint.receiver.Specint.state_bound;
  checki "product" 72 rep.Specint.product;
  Alcotest.(check (list string)) "no omega slots" []
    (rep.Specint.sender.Specint.omega_slots
    @ rep.Specint.receiver.Specint.omega_slots);
  assert_contains "B1 names the concrete product"
    (find_verdict rep "B1").Specint.message "8*9 = 72"

(* ------------------------------------------------------- dead clauses *)

let dead_clause_src =
  {|protocol "dead-clause" {
  packets { ping }
  sender {
    counter pending = 0
    var never : bool = false
    on submit { pending += 1 }
    poll when never -> send ping { pending += 1 }
    poll when pending > 0 -> send ping { pending -= 1 }
  }
  receiver {
    counter due = 0
    on ping { due += 1 }
    poll when due > 0 -> deliver { due -= 1 }
  }
}|}

let test_dead_clause_located () =
  let c = Test_pdl.compile_ok dead_clause_src in
  let rep = Specint.analyze c.Pdl.checked in
  checkb "converged" true rep.Specint.converged;
  checki "one dead sender clause" 1
    (List.length rep.Specint.sender.Specint.dead_clauses);
  checki "no dead receiver clauses" 0
    (List.length rep.Specint.receiver.Specint.dead_clauses);
  (* The located Q1 finding points at the dead poll clause (line 7). *)
  let located =
    List.filter
      (fun (f : Specint.finding) ->
        f.Specint.rule = "Q1" && f.Specint.span <> None)
      rep.Specint.findings
  in
  checki "one located Q1 finding" 1 (List.length located);
  match (List.hd located).Specint.span with
  | Some sp -> checki "span on the dead clause" 7 sp.Nfc_pdl.Diag.first.Nfc_pdl.Diag.line
  | None -> assert false

(* ------------------------------------- Static upgrade / cross-validation *)

let test_apply_to_lint_upgrades () =
  let c, rep = analyze_file "bounded_counter.nfc" in
  let r = Lint.Engine.run Lint.Checks.default_config c.Pdl.spec in
  let r' = Specint.apply_to_lint rep r in
  let strengths = r'.Lint.Engine.certificate.Lint.Certificate.rule_strengths in
  List.iter
    (fun rule ->
      match List.assoc_opt rule strengths with
      | Some Lint.Certificate.Static -> ()
      | Some _ -> Alcotest.fail (rule ^ " not upgraded to static")
      | None -> Alcotest.fail (rule ^ " missing from rule_strengths"))
    [ "H1"; "B1"; "E1" ];
  (* T1/Q1 stay exploration-bound, so the overall strength does not
     jump tiers. *)
  (match r'.Lint.Engine.certificate.Lint.Certificate.strength with
  | Lint.Certificate.Bounded _ -> ()
  | _ -> Alcotest.fail "overall strength must stay bounded");
  checkb "A1 audit info present" true
    (List.exists
       (fun (d : Lint.Diagnostic.t) ->
         d.Lint.Diagnostic.rule = "A1"
         && d.Lint.Diagnostic.severity = Lint.Diagnostic.Info
         && contains d.Lint.Diagnostic.message "static certification")
       r'.Lint.Engine.diagnostics);
  checkb "no contradiction warnings" false
    (List.exists
       (fun (d : Lint.Diagnostic.t) ->
         d.Lint.Diagnostic.rule = "A1"
         && d.Lint.Diagnostic.severity = Lint.Diagnostic.Warning)
       r'.Lint.Engine.diagnostics);
  (* The untouched result is unchanged — apply_to_lint is pure. *)
  checkb "original strengths untouched" true
    (List.assoc_opt "E1" r.Lint.Engine.certificate.Lint.Certificate.rule_strengths
    = None)

let test_examples_agree_with_exploration () =
  List.iter
    (fun file ->
      let c, rep = analyze_file file in
      let r = Lint.Engine.run Lint.Checks.default_config c.Pdl.spec in
      let cert = r.Lint.Engine.certificate in
      let static_alpha =
        List.sort_uniq compare (rep.Specint.alphabet_tr @ rep.Specint.alphabet_rt)
      in
      let observed =
        List.sort_uniq compare
          (cert.Lint.Certificate.alphabet_tr @ cert.Lint.Certificate.alphabet_rt)
      in
      checkb (file ^ ": explored alphabet inside the symbolic one") true
        (List.for_all (fun p -> List.mem p static_alpha) observed);
      checkb (file ^ ": explored product inside the symbolic bound") true
        (rep.Specint.product = Nfc_specint.Dom.omega
        || cert.Lint.Certificate.k_t * cert.Lint.Certificate.k_r
           <= rep.Specint.product))
    [ "stop_and_wait.nfc"; "alternating_bit.nfc"; "bounded_counter.nfc" ]

(* --------------------------------------------------- registry did-you-mean *)

let test_registry_suggestions () =
  (* Near-miss builtin names. *)
  (match Registry.parse "stennig" with
  | Ok _ -> Alcotest.fail "stennig must not parse"
  | Error m ->
      assert_contains "suggests stenning" m {|did you mean "stenning"|});
  (match Registry.parse "altbat" with
  | Ok _ -> Alcotest.fail "altbat must not parse"
  | Error m -> assert_contains "suggests altbit" m {|did you mean "altbit"|});
  (* A typo'd file: scheme lands on the pseudo-entry. *)
  (match Registry.parse "fiel:examples/specs/stop_and_wait.nfc" with
  | Ok _ -> Alcotest.fail "fiel: must not parse"
  | Error m -> assert_contains "suggests file" m {|did you mean "file"|});
  checkb "suggest exposes file" true (Registry.suggest "flie" = Some "file")

(* ------------------------------------------------------ QCheck property *)

(* Agreement-or-unknown on random valid specs: compile a generated AST,
   run the abstract interpreter and a 15k-node exploration, and require
   (a) every explored packet lies in the symbolic alphabet, (b) the
   explored state product respects the symbolic Theorem 2.1 bound, and
   (c) apply_to_lint never reports a contradiction.  Mutated sources that
   no longer compile are vacuously fine (the checker owns that case). *)
let lint_cfg_15k =
  {
    Lint.Checks.default_config with
    Lint.Checks.bounds =
      {
        Nfc_mcheck.Explore.capacity_tr = 2;
        capacity_rt = 2;
        submit_budget = 3;
        max_nodes = 15_000;
        allow_drop = true;
        por = false;
      };
  }

let agreement_or_unknown src =
  match Pdl.compile_string src with
  | Error _ -> true
  | Ok c -> (
      let rep = Specint.analyze c.Pdl.checked in
      let r = Lint.Engine.run lint_cfg_15k c.Pdl.spec in
      let cert = r.Lint.Engine.certificate in
      let static_alpha =
        rep.Specint.alphabet_tr @ rep.Specint.alphabet_rt
      in
      let observed =
        cert.Lint.Certificate.alphabet_tr @ cert.Lint.Certificate.alphabet_rt
      in
      let alpha_ok =
        (not rep.Specint.converged)
        || List.for_all (fun p -> List.mem p static_alpha) observed
      in
      let product_ok =
        (not rep.Specint.converged)
        || rep.Specint.product = Nfc_specint.Dom.omega
        || cert.Lint.Certificate.k_t * cert.Lint.Certificate.k_r
           <= rep.Specint.product
      in
      let r' = Specint.apply_to_lint rep r in
      let no_contradiction =
        not
          (List.exists
             (fun (d : Lint.Diagnostic.t) ->
               d.Lint.Diagnostic.rule = "A1"
               && d.Lint.Diagnostic.severity = Lint.Diagnostic.Warning)
             r'.Lint.Engine.diagnostics)
      in
      match (alpha_ok, product_ok, no_contradiction) with
      | true, true, true -> true
      | _ ->
          QCheck.Test.fail_reportf
            "static/bounded disagreement on:\n%s\nalpha_ok=%b product_ok=%b \
             no_contradiction=%b"
            src alpha_ok product_ok no_contradiction)

let prop_agreement =
  QCheck.Test.make ~name:"static verdicts agree with 15k-node exploration"
    ~count:20 Test_pdl.arb_spec (fun spec ->
      agreement_or_unknown (Nfc_pdl.Ast.print spec))

let prop_agreement_mutated =
  (* Byte-level mutations of printed specs: most stop compiling (vacuous),
     the survivors must still agree. *)
  QCheck.Test.make ~name:"static verdicts agree on mutated specs" ~count:30
    (QCheck.pair Test_pdl.arb_spec
       (QCheck.triple QCheck.small_nat QCheck.small_nat QCheck.small_nat))
    (fun (spec, mut) ->
      agreement_or_unknown (Test_pdl.mutate (Nfc_pdl.Ast.print spec) mut))

let suite =
  [
    ("stop-and-wait static verdicts", `Quick, test_stop_and_wait_static);
    ("alternating-bit static verdicts", `Quick, test_alternating_bit_static);
    ("bounded-counter finite product", `Quick, test_bounded_counter_finite_product);
    ("dead clause located", `Quick, test_dead_clause_located);
    ("apply_to_lint upgrades H1/B1/E1", `Quick, test_apply_to_lint_upgrades);
    ("examples agree with exploration", `Quick, test_examples_agree_with_exploration);
    ("registry did-you-mean pool", `Quick, test_registry_suggestions);
    QCheck_alcotest.to_alcotest prop_agreement;
    QCheck_alcotest.to_alcotest prop_agreement_mutated;
  ]
