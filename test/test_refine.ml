(* Tests for Nfc_refine, the CEGAR layer over the spec-level abstract
   interpreter: the promotion pin (flooding_counter's ω-parametric B1
   becomes a concrete product under refinement), the refutation pin
   (pumped_counter's only candidate invariant is concretely refuted and
   surfaces as a located R1 fail), domain-arithmetic laws the split
   machinery leans on (saturation at the ω ceiling, accelerate
   idempotence, split/join round-trips), certificate provenance
   (refine_rounds), and the per-round soundness property: every report
   in the refinement history — not just the final one — must agree with
   (or stay unknown against) a bounded exploration, on arbitrary and
   byte-mutated specs. *)

module Pdl = Nfc_pdl.Pdl
module Dom = Nfc_specint.Dom
module Opvec = Nfc_absint.Opvec
module Specint = Nfc_specint.Specint
module Refine = Nfc_refine.Refine
module Lint = Nfc_lint

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let contains = Test_pdl.contains
let assert_contains = Test_pdl.assert_contains

let refine_file ?(rounds = 3) file =
  let path = Test_pdl.example file in
  match Pdl.compile_file path with
  | Ok c -> (c, Refine.run ~rounds c.Pdl.checked)
  | Error (`File m) -> Alcotest.fail m
  | Error (`Diags ds) ->
      Alcotest.fail
        (String.concat "\n" (List.map (Nfc_pdl.Diag.to_string ~file:path) ds))

let find_verdict (rep : Specint.report) rule =
  match
    List.find_opt
      (fun (f : Specint.finding) -> f.Specint.rule = rule)
      rep.Specint.findings
  with
  | Some f -> f
  | None -> Alcotest.fail ("no top-level " ^ rule ^ " finding")

(* ------------------------------------------------------ promotion pin *)

let test_flooding_promoted () =
  let _, res = refine_file "flooding_counter.nfc" in
  (* One-shot: the submit-guarded credit counter widens to ω. *)
  checkb "base product is omega" true
    (res.Refine.base.Specint.product = Dom.omega);
  checkb "base B1 carries why-provenance" true
    (match (find_verdict res.Refine.base "B1").Specint.why with
    | Some w -> contains w "widened slot" && contains w "credit"
    | None -> false);
  (* Refined: candidate 40 (guard constant 39 + unit step) survives the
     replay, the split target reconverges to credit in [0,40]. *)
  checkb "promoted" true res.Refine.promoted;
  checki "one round" 1 res.Refine.rounds_used;
  checki "concrete product" 738 res.Refine.report.Specint.product;
  checkb "refined report converged" true res.Refine.report.Specint.converged;
  assert_contains "B1 names the concrete product"
    (find_verdict res.Refine.report "B1").Specint.message "82*9 = 738";
  checkb "no refutations" true (res.Refine.refuted = []);
  (match res.Refine.rounds with
  | [ { Refine.action = Refine.Promoted 40; station = "sender"; slot_name = "credit"; _ } ] -> ()
  | _ -> Alcotest.fail "round log must be a single sender.credit promotion at 40");
  (* History: base first, refined second, both sound fixpoints. *)
  checki "history length" 2 (List.length res.Refine.history)

let test_flooding_requires_refinement () =
  (* The promotion is real work: the one-shot analysis of the same file
     stays ω-parametric. *)
  let path = Test_pdl.example "flooding_counter.nfc" in
  match Pdl.compile_file path with
  | Ok c ->
      let rep = Specint.analyze c.Pdl.checked in
      checkb "one-shot product is omega" true (rep.Specint.product = Dom.omega)
  | Error _ -> Alcotest.fail "flooding_counter.nfc must compile"

(* ----------------------------------------------------- refutation pin *)

let test_pumped_refuted () =
  let _, res = refine_file "pumped_counter.nfc" in
  checkb "not promoted" false res.Refine.promoted;
  checkb "product still omega" true
    (res.Refine.report.Specint.product = Dom.omega);
  (match res.Refine.refuted with
  | [ r ] ->
      Alcotest.(check string) "refuted slot" "pending" r.Refine.rslot;
      checki "refuted bound" 11 r.Refine.rbound;
      checkb "witness trace is non-trivial" true (r.Refine.rtrace_len > 0)
  | _ -> Alcotest.fail "exactly one refutation expected");
  (* The located R1 fail finding rides in the final report. *)
  let r1 = find_verdict res.Refine.report "R1" in
  checkb "R1 fails" true (r1.Specint.verdict = Specint.Fail);
  assert_contains "R1 names the refuted invariant" r1.Specint.message
    "pending <= 11";
  (match r1.Specint.span with
  | Some sp ->
      (* Anchored at the pumping clause (`on ack { pending += 4 }`). *)
      checki "R1 span line" 22 sp.Nfc_pdl.Diag.first.Nfc_pdl.Diag.line
  | None -> Alcotest.fail "R1 must carry a span");
  (* B1 itself is untouched: the slot really is unbounded, so the
     ω-parametric Pass stands — refinement located a fact, it did not
     flip a verdict. *)
  checkb "B1 still passes ω-parametrically" true
    ((find_verdict res.Refine.report "B1").Specint.verdict = Specint.Pass)

let test_bounded_counter_zero_rounds () =
  (* Nothing to refine: the one-shot product is already concrete, so the
     loop exits before burning a round and the report is the base. *)
  let _, res = refine_file "bounded_counter.nfc" in
  checki "zero rounds" 0 res.Refine.rounds_used;
  checkb "not promoted (nothing to promote)" false res.Refine.promoted;
  checki "product" 72 res.Refine.report.Specint.product

(* ----------------------------------------- certificate provenance *)

let test_refine_rounds_in_certificate () =
  let c, res = refine_file "flooding_counter.nfc" in
  let r = Lint.Engine.run Test_specint.lint_cfg_15k c.Pdl.spec in
  let r' =
    Specint.apply_to_lint ~refine_rounds:res.Refine.rounds_used
      ~refine_notes:(Refine.notes res) res.Refine.report r
  in
  checkb "refine_rounds recorded" true
    (r'.Lint.Engine.certificate.Lint.Certificate.refine_rounds = Some 1);
  (* The notes land as A1 Info diagnostics after the upgrade summary. *)
  checkb "refinement note present" true
    (List.exists
       (fun (d : Lint.Diagnostic.t) ->
         d.Lint.Diagnostic.rule = "A1"
         && d.Lint.Diagnostic.severity = Lint.Diagnostic.Info
         && contains d.Lint.Diagnostic.message "refinement:")
       r'.Lint.Engine.diagnostics);
  (* Unrefined runs keep the JSONL byte-stable: refine_rounds is null. *)
  let plain = Specint.apply_to_lint res.Refine.base r in
  checkb "unrefined certificate has no refine_rounds" true
    (plain.Lint.Engine.certificate.Lint.Certificate.refine_rounds = None);
  assert_contains "JSONL spells null"
    (Nfc_util.Json.to_string
       (Lint.Certificate.to_json plain.Lint.Engine.certificate))
    "\"refine_rounds\":null"

(* ---------------------------------------------- domain-arithmetic laws *)

let test_saturation_at_omega () =
  let w = Opvec.omega in
  checki "add saturates" w (Opvec.sat_add w 1);
  checki "add saturates symmetrically" w (Opvec.sat_add 1 w);
  checki "mul saturates" w (Opvec.sat_mul w 2);
  checki "mul absorbs zero" 0 (Opvec.sat_mul w 0);
  (* Finite overflow rounds up to ω, never wraps negative. *)
  checki "add overflow is omega" w (Opvec.sat_add (w - 1) (w - 1));
  checki "mul overflow is omega" w (Opvec.sat_mul (w / 2) 3)

let prop_saturation =
  QCheck.Test.make ~name:"sat_add/sat_mul stay in [0,ω] and are monotone"
    ~count:300
    QCheck.(quad small_nat small_nat small_nat small_nat)
    (fun (a, b, c, d) ->
      let w = Opvec.omega in
      let vals = [ a; b; w - c; w ] in
      List.for_all
        (fun x ->
          List.for_all
            (fun y ->
              let s = Opvec.sat_add x y and m = Opvec.sat_mul x y in
              s >= 0 && s <= w && m >= 0 && m <= w
              && s >= min w (max x y)
              && (d = 0 || Opvec.sat_add x (min y d) <= s))
            vals)
        vals)

let opvec_gen =
  QCheck.Gen.(
    map
      (fun l ->
        Opvec.of_array
          (Array.of_list (List.map (fun c -> if c >= 4 then Opvec.omega else c) l)))
      (list_size (int_bound 5) (int_bound 5)))

let opvec_arb =
  QCheck.make ~print:(fun v -> Format.asprintf "%a" (Opvec.pp ?packet:None) v) opvec_gen

let prop_accelerate_idempotent =
  (* Accelerating twice against the same prev adds nothing: the first
     pass already pumped every strictly-growing coordinate to ω. *)
  QCheck.Test.make ~name:"accelerate is idempotent" ~count:300
    (QCheck.pair opvec_arb opvec_arb)
    (fun (a, b) ->
      let prev = a and t = Opvec.join a b in
      let once = Opvec.accelerate ~prev t in
      Opvec.equal (Opvec.accelerate ~prev once) once)

let itv_arb =
  QCheck.make
    ~print:(fun (lo, hi, c) -> Printf.sprintf "[%d,%d] @ %d" lo hi c)
    QCheck.Gen.(
      map
        (fun (a, b, c) -> (min a b, max a b, c))
        (triple (int_range (-5) 20) (int_range (-5) 20) (int_range (-8) 25)))

let prop_split_join_roundtrip =
  QCheck.Test.make ~name:"itv_split halves partition and join restores" ~count:500
    itv_arb
    (fun (lo, hi, c) ->
      let iv = { Dom.lo; hi } in
      match Dom.itv_split iv c with
      | None -> c < lo || c >= hi (* only degenerate cuts are refused *)
      | Some (a, b) ->
          a.Dom.lo = lo && b.Dom.hi = hi
          && a.Dom.hi = c
          && b.Dom.lo = c + 1
          && Dom.itv_join a b = iv
          && Dom.itv_meet a b = None
          && Dom.itv_size iv
             = Opvec.sat_add (Dom.itv_size a) (Dom.itv_size b))

(* ------------------------------------------ per-round soundness property *)

(* Small replay bounds keep the property fast; the concrete replay is a
   falsification probe, so shrinking it can only make refinement MORE
   conservative, never unsound. *)
let small_replay =
  {
    Nfc_mcheck.Explore.capacity_tr = 2;
    capacity_rt = 2;
    submit_budget = 2;
    max_nodes = 2_000;
    allow_drop = true;
    por = false;
  }

(* Every report the refinement loop ever accepted — the base run and each
   reconverged re-run — must individually agree with (or abstain against)
   one bounded exploration, and applying the FINAL report to the lint
   result must not produce an A1 contradiction.  This is the
   agree-or-abstain contract of the one-shot tier, quantified over
   rounds: refinement may tighten bounds, never cross the exploration. *)
let refined_agreement src =
  match Pdl.compile_string src with
  | Error _ -> true
  | Ok c -> (
      let res = Refine.run ~rounds:2 ~replay_bounds:small_replay c.Pdl.checked in
      let r = Lint.Engine.run Test_specint.lint_cfg_15k c.Pdl.spec in
      let cert = r.Lint.Engine.certificate in
      let observed =
        cert.Lint.Certificate.alphabet_tr @ cert.Lint.Certificate.alphabet_rt
      in
      let round_ok (rep : Specint.report) =
        let static_alpha = rep.Specint.alphabet_tr @ rep.Specint.alphabet_rt in
        let alpha_ok =
          (not rep.Specint.converged)
          || List.for_all (fun p -> List.mem p static_alpha) observed
        in
        let product_ok =
          (not rep.Specint.converged)
          || rep.Specint.product = Dom.omega
          || cert.Lint.Certificate.k_t * cert.Lint.Certificate.k_r
             <= rep.Specint.product
        in
        alpha_ok && product_ok
      in
      let bad = List.filter (fun rep -> not (round_ok rep)) res.Refine.history in
      let r' =
        Specint.apply_to_lint ~refine_rounds:res.Refine.rounds_used
          ~refine_notes:(Refine.notes res) res.Refine.report r
      in
      let no_contradiction =
        not
          (List.exists
             (fun (d : Lint.Diagnostic.t) ->
               d.Lint.Diagnostic.rule = "A1"
               && d.Lint.Diagnostic.severity = Lint.Diagnostic.Warning)
             r'.Lint.Engine.diagnostics)
      in
      match (bad, no_contradiction) with
      | [], true -> true
      | _ ->
          QCheck.Test.fail_reportf
            "refinement/bounded disagreement on:\n%s\nbad_rounds=%d \
             no_contradiction=%b rounds_used=%d"
            src (List.length bad) no_contradiction res.Refine.rounds_used)

let prop_refined_agreement =
  QCheck.Test.make
    ~name:"refined verdicts agree-or-abstain at every round" ~count:15
    Test_pdl.arb_spec
    (fun spec -> refined_agreement (Nfc_pdl.Ast.print spec))

let prop_refined_agreement_mutated =
  QCheck.Test.make
    ~name:"refined verdicts agree-or-abstain on mutated specs" ~count:20
    (QCheck.pair Test_pdl.arb_spec
       (QCheck.triple QCheck.small_nat QCheck.small_nat QCheck.small_nat))
    (fun (spec, mut) ->
      refined_agreement (Test_pdl.mutate (Nfc_pdl.Ast.print spec) mut))

let suite =
  [
    ("flooding-counter promoted to concrete B1", `Quick, test_flooding_promoted);
    ("flooding-counter needs refinement", `Quick, test_flooding_requires_refinement);
    ("pumped-counter refuted with located R1", `Quick, test_pumped_refuted);
    ("bounded-counter needs zero rounds", `Quick, test_bounded_counter_zero_rounds);
    ("refine_rounds certificate provenance", `Quick, test_refine_rounds_in_certificate);
    ("saturation at the ω ceiling", `Quick, test_saturation_at_omega);
    QCheck_alcotest.to_alcotest prop_saturation;
    QCheck_alcotest.to_alcotest prop_accelerate_idempotent;
    QCheck_alcotest.to_alcotest prop_split_join_roundtrip;
    QCheck_alcotest.to_alcotest prop_refined_agreement;
    QCheck_alcotest.to_alcotest prop_refined_agreement_mutated;
  ]
