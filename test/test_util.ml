(* Tests for Nfc_util: Rng, Multiset, Deque, Table, Fit. *)
open Nfc_util

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ Rng *)

let test_rng_deterministic () =
  let a = Rng.of_int 42 and b = Rng.of_int 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_copy_independent () =
  let a = Rng.of_int 7 in
  let _ = Rng.next_int64 a in
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b)

let test_rng_split_differs () =
  let a = Rng.of_int 7 in
  let b = Rng.split a in
  checkb "split stream differs" false (Rng.next_int64 a = Rng.next_int64 b)

let test_rng_int_bounds () =
  let r = Rng.of_int 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    checkb "0 <= v < 7" true (v >= 0 && v < 7)
  done

let test_rng_int_rejects_nonpositive () =
  let r = Rng.of_int 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_bounds () =
  let r = Rng.of_int 5 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    checkb "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_rng_uniformity () =
  (* Coarse chi-square-free sanity: each of 8 buckets gets 10-40% of mass. *)
  let r = Rng.of_int 11 in
  let counts = Array.make 8 0 in
  let n = 8000 in
  for _ = 1 to n do
    let v = Rng.int r 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter (fun c -> checkb "bucket roughly uniform" true (c > n / 16 && c < n / 4)) counts

let test_rng_bool_extremes () =
  let r = Rng.of_int 13 in
  checkb "p=0 is false" false (Rng.bool r 0.0);
  checkb "p=1 is true" true (Rng.bool r 1.0)

let test_rng_bool_rate () =
  let r = Rng.of_int 17 in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bool r 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  checkb "bernoulli rate near 0.3" true (rate > 0.25 && rate < 0.35)

let test_rng_pick () =
  let r = Rng.of_int 23 in
  checkb "pick [] = None" true (Rng.pick r [] = None);
  for _ = 1 to 50 do
    match Rng.pick r [ 1; 2; 3 ] with
    | Some v -> checkb "picked member" true (List.mem v [ 1; 2; 3 ])
    | None -> Alcotest.fail "pick of non-empty returned None"
  done

let test_rng_pick_weighted () =
  let r = Rng.of_int 29 in
  checkb "no positive weight" true (Rng.pick_weighted r [ (0.0, `A); (-1.0, `B) ] = None);
  let a = ref 0 in
  for _ = 1 to 1000 do
    match Rng.pick_weighted r [ (9.0, `A); (1.0, `B) ] with
    | Some `A -> incr a
    | Some `B -> ()
    | None -> Alcotest.fail "weighted pick failed"
  done;
  checkb "A dominates 9:1" true (!a > 800)

let test_rng_shuffle_permutes () =
  let r = Rng.of_int 31 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "same elements" (Array.init 20 Fun.id) sorted

(* ------------------------------------------------------------- Multiset *)

module MS = Multiset.Int

let test_ms_empty () =
  checkb "empty" true (MS.is_empty MS.empty);
  checki "cardinal 0" 0 (MS.cardinal MS.empty);
  checki "distinct 0" 0 (MS.distinct MS.empty)

let test_ms_add_count () =
  let m = MS.add ~count:3 5 (MS.add 2 MS.empty) in
  checki "count 5" 3 (MS.count 5 m);
  checki "count 2" 1 (MS.count 2 m);
  checki "count absent" 0 (MS.count 9 m);
  checki "cardinal" 4 (MS.cardinal m);
  checki "distinct" 2 (MS.distinct m)

let test_ms_add_zero_noop () =
  let m = MS.add ~count:0 5 MS.empty in
  checkb "still empty" true (MS.is_empty m)

let test_ms_add_negative_rejected () =
  Alcotest.check_raises "negative count" (Invalid_argument "Multiset.add: negative count")
    (fun () -> ignore (MS.add ~count:(-1) 5 MS.empty))

let test_ms_remove_one () =
  let m = MS.add ~count:2 1 MS.empty in
  (match MS.remove_one 1 m with
  | Some m' -> checki "one left" 1 (MS.count 1 m')
  | None -> Alcotest.fail "remove_one failed");
  checkb "remove absent" true (MS.remove_one 9 m = None)

let test_ms_remove_last_copy_drops_key () =
  let m = MS.add 1 MS.empty in
  match MS.remove_one 1 m with
  | Some m' ->
      checkb "empty again" true (MS.is_empty m');
      checki "distinct 0" 0 (MS.distinct m')
  | None -> Alcotest.fail "remove_one failed"

let test_ms_union_diff () =
  let a = MS.of_list [ 1; 1; 2 ] and b = MS.of_list [ 1; 3 ] in
  let u = MS.union a b in
  checki "union count 1" 3 (MS.count 1 u);
  checki "union card" 5 (MS.cardinal u);
  let d = MS.diff u b in
  checkb "diff returns a" true (MS.equal d a);
  let d2 = MS.diff a (MS.of_list [ 1; 1; 1; 2; 9 ]) in
  checkb "diff floors at zero" true (MS.is_empty d2)

let test_ms_subset () =
  let a = MS.of_list [ 1; 2 ] and b = MS.of_list [ 1; 1; 2; 3 ] in
  checkb "a <= b" true (MS.subset a b);
  checkb "b <= a false" false (MS.subset b a);
  checkb "empty <= a" true (MS.subset MS.empty a)

let test_ms_to_list_sorted () =
  let m = MS.of_list [ 3; 1; 2; 1 ] in
  check Alcotest.(list int) "sorted with copies" [ 1; 1; 2; 3 ] (MS.to_list m);
  check Alcotest.(list int) "support" [ 1; 2; 3 ] (MS.support m)

let test_ms_max_multiplicity () =
  let m = MS.of_list [ 1; 2; 2; 2; 3 ] in
  checkb "max mult" true (MS.max_multiplicity m = Some (2, 3));
  checkb "empty none" true (MS.max_multiplicity MS.empty = None)

let test_ms_nth () =
  let m = MS.of_list [ 5; 3; 5 ] in
  checki "nth 0" 3 (MS.nth m 0);
  checki "nth 1" 5 (MS.nth m 1);
  checki "nth 2" 5 (MS.nth m 2);
  Alcotest.check_raises "out of bounds" (Invalid_argument "Multiset.nth: out of bounds")
    (fun () -> ignore (MS.nth m 3))

(* qcheck properties *)

let ms_of_small_list = QCheck.(small_list (int_bound 10))

let prop_ms_cardinal_is_length =
  QCheck.Test.make ~name:"multiset cardinal = list length" ms_of_small_list (fun l ->
      MS.cardinal (MS.of_list l) = List.length l)

let prop_ms_roundtrip =
  QCheck.Test.make ~name:"multiset of_list/to_list is sorting" ms_of_small_list (fun l ->
      MS.to_list (MS.of_list l) = List.sort compare l)

let prop_ms_union_commutative =
  QCheck.Test.make ~name:"multiset union commutes"
    QCheck.(pair ms_of_small_list ms_of_small_list)
    (fun (a, b) -> MS.equal (MS.union (MS.of_list a) (MS.of_list b))
        (MS.union (MS.of_list b) (MS.of_list a)))

let prop_ms_diff_union_inverse =
  QCheck.Test.make ~name:"(a u b) \\ b = a"
    QCheck.(pair ms_of_small_list ms_of_small_list)
    (fun (a, b) ->
      let ma = MS.of_list a and mb = MS.of_list b in
      MS.equal (MS.diff (MS.union ma mb) mb) ma)

(* ---------------------------------------------------------------- Deque *)

let test_deque_fifo () =
  let d = Deque.(push_back 3 (push_back 2 (push_back 1 empty))) in
  check Alcotest.(list int) "order" [ 1; 2; 3 ] (Deque.to_list d);
  match Deque.pop_front d with
  | Some (1, d') -> checki "rest length" 2 (Deque.length d')
  | _ -> Alcotest.fail "pop_front"

let test_deque_lifo_back () =
  let d = Deque.of_list [ 1; 2; 3 ] in
  match Deque.pop_back d with
  | Some (3, d') -> check Alcotest.(list int) "rest" [ 1; 2 ] (Deque.to_list d')
  | _ -> Alcotest.fail "pop_back"

let test_deque_push_front () =
  let d = Deque.push_front 0 (Deque.of_list [ 1; 2 ]) in
  check Alcotest.(list int) "front push" [ 0; 1; 2 ] (Deque.to_list d)

let test_deque_peeks () =
  let d = Deque.of_list [ 1; 2; 3 ] in
  checkb "peek front" true (Deque.peek_front d = Some 1);
  checkb "peek back" true (Deque.peek_back d = Some 3);
  checkb "peek empty" true (Deque.peek_front Deque.empty = None)

let test_deque_remove_first () =
  let d = Deque.of_list [ 1; 2; 3; 2 ] in
  match Deque.remove_first (fun x -> x = 2) d with
  | Some (2, d') -> check Alcotest.(list int) "first 2 removed" [ 1; 3; 2 ] (Deque.to_list d')
  | _ -> Alcotest.fail "remove_first"

let test_deque_filter_fold () =
  let d = Deque.of_list [ 1; 2; 3; 4 ] in
  check Alcotest.(list int) "filter evens" [ 2; 4 ] (Deque.to_list (Deque.filter (fun x -> x mod 2 = 0) d));
  checki "fold sum" 10 (Deque.fold ( + ) 0 d);
  checkb "exists" true (Deque.exists (fun x -> x = 3) d)

let prop_deque_mixed_ops =
  (* A deque fed by pushes at both ends agrees with a reference list. *)
  QCheck.Test.make ~name:"deque matches reference list"
    QCheck.(small_list (pair bool (int_bound 100)))
    (fun ops ->
      let d, l =
        List.fold_left
          (fun (d, l) (front, x) ->
            if front then (Deque.push_front x d, x :: l)
            else (Deque.push_back x d, l @ [ x ]))
          (Deque.empty, []) ops
      in
      Deque.to_list d = l && Deque.length d = List.length l)

(* ---------------------------------------------------------------- Table *)

let test_table_render () =
  let t = Table.create ~title:"T" ~columns:[ ("a", Table.Left); ("bb", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "long"; "22" ];
  let s = Table.render t in
  checkb "has title" true (String.length s > 0 && String.sub s 0 1 = "T");
  checkb "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "| long | 22 |"))

let test_table_row_mismatch () =
  let t = Table.create ~title:"" ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_csv () =
  let t = Table.create ~title:"t" ~columns:[ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x,y"; "2" ];
  check Alcotest.string "csv escaped" "a,b\n\"x,y\",2" (Table.to_csv t)

let test_table_cells () =
  check Alcotest.string "int" "42" (Table.cell_int 42);
  check Alcotest.string "float" "3.14" (Table.cell_float ~decimals:2 3.14159);
  check Alcotest.string "sci" "1.23e+09" (Table.cell_sci 1.234e9)

(* ------------------------------------------------------------------ Fit *)

let test_fit_linear_exact () =
  let f = Fit.linear [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  check Alcotest.(float 1e-9) "slope" 2.0 f.slope;
  check Alcotest.(float 1e-9) "intercept" 1.0 f.intercept;
  check Alcotest.(float 1e-9) "r2" 1.0 f.r2

let test_fit_linear_rejects_degenerate () =
  Alcotest.check_raises "one point" (Invalid_argument "Fit.linear: need at least two points")
    (fun () -> ignore (Fit.linear [ (1.0, 1.0) ]));
  Alcotest.check_raises "same x" (Invalid_argument "Fit.linear: all x equal") (fun () ->
      ignore (Fit.linear [ (1.0, 1.0); (1.0, 2.0) ]))

let test_fit_exponential_exact () =
  let points = List.init 6 (fun i -> (float_of_int i, 3.0 *. (2.0 ** float_of_int i))) in
  let g = Fit.exponential points in
  check Alcotest.(float 1e-6) "rate" 2.0 g.rate;
  check Alcotest.(float 1e-6) "scale" 3.0 g.scale;
  check Alcotest.(float 1e-6) "r2" 1.0 g.log_r2

let test_fit_exponential_drops_nonpositive () =
  let g = Fit.exponential [ (0.0, 1.0); (1.0, 2.0); (2.0, 0.0); (3.0, 8.0) ] in
  check Alcotest.(float 1e-6) "rate ignoring zero point" 2.0 g.rate

let test_fit_means () =
  check Alcotest.(float 1e-9) "mean" 2.0 (Fit.mean [ 1.0; 2.0; 3.0 ]);
  check Alcotest.(float 1e-9) "geometric mean" 2.0 (Fit.geometric_mean [ 1.0; 4.0 ])

(* ----------------------------------------------------------------- Pool *)

let test_pool_map_reraises () =
  Alcotest.check_raises "original exception surfaces" (Failure "boom") (fun () ->
      ignore (Pool.map ~jobs:2 (fun x -> if x = 3 then failwith "boom" else x) [ 1; 2; 3; 4 ]))

let test_pool_map_first_in_input_order () =
  (* Two failing jobs: the caller sees the one that comes first in input
     order, regardless of which worker hit its failure first. *)
  Alcotest.check_raises "earliest input-order failure" (Failure "first") (fun () ->
      ignore
        (Pool.map ~jobs:2
           (fun x ->
             if x = 1 then failwith "first" else if x = 4 then failwith "second" else x)
           [ 1; 2; 3; 4 ]))

let test_pool_map_keeps_backtrace () =
  (* The re-raise must carry the worker's backtrace, not an empty one:
     the raise site inside the job must be visible to the caller. *)
  Printexc.record_backtrace true;
  let saw = ref "" in
  (try ignore (Pool.map ~jobs:2 (fun _ -> failwith "traced") [ 1; 2 ])
   with Failure _ -> saw := Printexc.get_backtrace ());
  checkb "backtrace is non-empty" true (String.length !saw > 0)

let test_pool_group_reraises () =
  Alcotest.check_raises "group failure surfaces at join" (Failure "worker boom")
    (fun () ->
      let g =
        Pool.spawn_group ~jobs:2 (fun i -> if i = 0 then failwith "worker boom")
      in
      Pool.join_group g)

let test_pool_group_joins_all () =
  let hits = Atomic.make 0 in
  let g = Pool.spawn_group ~jobs:3 (fun _ -> Atomic.incr hits) in
  Pool.join_group g;
  checki "every worker body ran" 3 (Atomic.get hits)

(* ----------------------------------------------------------------- Json *)

let checkstr = Alcotest.(check string)

let test_json_escapes_control_chars () =
  checkstr "short and long escapes"
    {|"a\nb\tc\u0001\b\f\\\" end"|}
    (Json.to_string (Json.String "a\nb\tc\x01\b\012\\\" end"))

let test_json_nonfinite_floats_are_null () =
  checkstr "nan" "null" (Json.to_string (Json.Float Float.nan));
  checkstr "inf" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_parse_unicode_escapes () =
  match Json.of_string {|"A😀"|} with
  | Ok (Json.String s) -> checkstr "BMP + surrogate pair to UTF-8" "A\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.fail e

let test_json_parse_rejects_garbage () =
  checkb "trailing garbage" true (Result.is_error (Json.of_string "{} x"));
  checkb "unterminated" true (Result.is_error (Json.of_string {|{"a": 1|}));
  checkb "deep nesting" true
    (Result.is_error (Json.of_string (String.make 600 '[')))

let test_json_accessors () =
  let j = Result.get_ok (Json.of_string {|{"n": 3, "s": "hi", "b": true}|}) in
  checki "present int" 3 (Result.get_ok (Json.get_int "n" j));
  checki "absent int takes default" 7 (Result.get_ok (Json.get_int ~default:7 "m" j));
  checkb "wrong type is an error, default or not" true
    (Result.is_error (Json.get_int ~default:7 "s" j));
  checkstr "string" "hi" (Result.get_ok (Json.get_string "s" j));
  checkb "bool" true (Result.get_ok (Json.get_bool "b" j));
  checkb "missing without default is an error" true
    (Result.is_error (Json.get_string "zzz" j))

let test_json_roundtrip_handcrafted () =
  let t =
    Json.Obj
      [
        ("null", Json.Null);
        ("ints", Json.List [ Json.Int 0; Json.Int (-42); Json.Int max_int ]);
        ("floats", Json.List [ Json.Float 1.0; Json.Float 3.14159; Json.Float (-0.5) ]);
        ("ctl", Json.String "line\nfeed\x00\x1fbyte\xffhigh");
        ("nested", Json.Obj [ ("k", Json.List [ Json.Bool false; Json.String "" ]) ]);
      ]
  in
  checkb "of_string (to_string t) = Ok t" true (Json.of_string (Json.to_string t) = Ok t)

(* Arbitrary finite-float, Raw-free trees: the decoder must invert the
   encoder on all of them. *)
let json_arb =
  let open QCheck.Gen in
  let any_string = string_size ~gen:(map Char.chr (int_range 0 255)) (int_bound 12) in
  let leaf =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        map (fun f -> Json.Float f) (float_range (-1e9) 1e9);
        map (fun s -> Json.String s) any_string;
      ]
  in
  let tree =
    sized
    @@ fix (fun self n ->
           if n = 0 then leaf
           else
             frequency
               [
                 (2, leaf);
                 (1, map (fun l -> Json.List l) (list_size (int_bound 4) (self (n / 2))));
                 ( 1,
                   map
                     (fun l -> Json.Obj l)
                     (list_size (int_bound 4) (pair any_string (self (n / 2)))) );
               ])
  in
  QCheck.make ~print:Json.to_string tree

let prop_json_roundtrip =
  QCheck.Test.make ~name:"json encode/decode round-trips" json_arb (fun t ->
      Json.of_string (Json.to_string t) = Ok t)

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_ms_cardinal_is_length; prop_ms_roundtrip; prop_ms_union_commutative;
      prop_ms_diff_union_inverse; prop_deque_mixed_ops; prop_json_roundtrip ]

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng copy independent", `Quick, test_rng_copy_independent);
    ("rng split differs", `Quick, test_rng_split_differs);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng int rejects nonpositive", `Quick, test_rng_int_rejects_nonpositive);
    ("rng float bounds", `Quick, test_rng_float_bounds);
    ("rng uniformity", `Quick, test_rng_uniformity);
    ("rng bool extremes", `Quick, test_rng_bool_extremes);
    ("rng bool rate", `Quick, test_rng_bool_rate);
    ("rng pick", `Quick, test_rng_pick);
    ("rng pick weighted", `Quick, test_rng_pick_weighted);
    ("rng shuffle permutes", `Quick, test_rng_shuffle_permutes);
    ("multiset empty", `Quick, test_ms_empty);
    ("multiset add with count", `Quick, test_ms_add_count);
    ("multiset add zero noop", `Quick, test_ms_add_zero_noop);
    ("multiset add negative rejected", `Quick, test_ms_add_negative_rejected);
    ("multiset remove one", `Quick, test_ms_remove_one);
    ("multiset remove last copy", `Quick, test_ms_remove_last_copy_drops_key);
    ("multiset union diff", `Quick, test_ms_union_diff);
    ("multiset subset", `Quick, test_ms_subset);
    ("multiset to_list sorted", `Quick, test_ms_to_list_sorted);
    ("multiset max multiplicity", `Quick, test_ms_max_multiplicity);
    ("multiset nth", `Quick, test_ms_nth);
    ("deque fifo", `Quick, test_deque_fifo);
    ("deque pop back", `Quick, test_deque_lifo_back);
    ("deque push front", `Quick, test_deque_push_front);
    ("deque peeks", `Quick, test_deque_peeks);
    ("deque remove first", `Quick, test_deque_remove_first);
    ("deque filter fold", `Quick, test_deque_filter_fold);
    ("table render", `Quick, test_table_render);
    ("table row mismatch", `Quick, test_table_row_mismatch);
    ("table csv", `Quick, test_table_csv);
    ("table cells", `Quick, test_table_cells);
    ("fit linear exact", `Quick, test_fit_linear_exact);
    ("fit linear degenerate", `Quick, test_fit_linear_rejects_degenerate);
    ("fit exponential exact", `Quick, test_fit_exponential_exact);
    ("fit exponential drops nonpositive", `Quick, test_fit_exponential_drops_nonpositive);
    ("fit means", `Quick, test_fit_means);
    ("pool map re-raises", `Quick, test_pool_map_reraises);
    ("pool map earliest failure wins", `Quick, test_pool_map_first_in_input_order);
    ("pool map keeps worker backtrace", `Quick, test_pool_map_keeps_backtrace);
    ("pool group re-raises at join", `Quick, test_pool_group_reraises);
    ("pool group joins all workers", `Quick, test_pool_group_joins_all);
    ("json escapes control chars", `Quick, test_json_escapes_control_chars);
    ("json non-finite floats null", `Quick, test_json_nonfinite_floats_are_null);
    ("json unicode escapes decode", `Quick, test_json_parse_unicode_escapes);
    ("json parser rejects garbage", `Quick, test_json_parse_rejects_garbage);
    ("json accessors", `Quick, test_json_accessors);
    ("json round-trip handcrafted", `Quick, test_json_roundtrip_handcrafted);
  ]
  @ qsuite
