(* Tests for Nfc_mcheck: phantom search, reachability stats, boundness. *)
open Nfc_mcheck

let checkb = Alcotest.(check bool)

let small_bounds =
  {
    Explore.capacity_tr = 2;
    capacity_rt = 2;
    submit_budget = 3;
    max_nodes = 300_000;
    allow_drop = true;
    por = false;
  }

let test_stop_and_wait_violation_found () =
  match Explore.find_phantom (Nfc_protocol.Stop_and_wait.make ~timeout:2 ()) small_bounds with
  | Explore.Violation trace ->
      (* The counterexample is an execution the declarative checker also
         indicts, with a legal physical layer. *)
      checkb "phantom confirmed" true (Nfc_automata.Props.invalid_phantom trace <> None);
      checkb "PL1 tr holds" true (Nfc_automata.Props.pl1 Nfc_automata.Action.T_to_r trace = None);
      checkb "PL1 rt holds" true (Nfc_automata.Props.pl1 Nfc_automata.Action.R_to_t trace = None)
  | _ -> Alcotest.fail "stop-and-wait must be violated"

let test_alternating_bit_violation_found () =
  match Explore.find_phantom (Nfc_protocol.Alternating_bit.make ~timeout:2 ()) small_bounds with
  | Explore.Violation trace ->
      checkb "phantom confirmed" true (Nfc_automata.Props.invalid_phantom trace <> None);
      (* The classic counterexample needs at least two delivered messages
         before the stale duplicate strikes. *)
      checkb "at least 2 submissions" true (Nfc_automata.Execution.sm trace >= 2)
  | _ -> Alcotest.fail "alternating bit must be violated on a non-FIFO channel"

let test_alternating_bit_without_drop_still_violated () =
  (* Reordering alone (no loss) already breaks the alternating bit. *)
  match
    Explore.find_phantom
      (Nfc_protocol.Alternating_bit.make ~timeout:2 ())
      { small_bounds with allow_drop = false }
  with
  | Explore.Violation _ -> ()
  | _ -> Alcotest.fail "reordering alone should break alternating bit"

let test_counterexample_is_minimal_for_sw () =
  match Explore.find_phantom (Nfc_protocol.Stop_and_wait.make ~timeout:1 ()) small_bounds with
  | Explore.Violation trace ->
      (* BFS returns a shortest counterexample: submit, two sends, two
         receives, two deliveries = 7 actions. *)
      checkb "short counterexample" true (List.length trace <= 8)
  | _ -> Alcotest.fail "expected violation"

let test_stenning_survives_budget () =
  match
    Explore.find_phantom (Nfc_protocol.Stenning.make ~timeout:2 ())
      { small_bounds with max_nodes = 30_000 }
  with
  | Explore.Violation _ -> Alcotest.fail "stenning must not be violated"
  | Explore.Node_budget s | Explore.No_violation s -> checkb "explored" true (s.Explore.nodes > 0)

let test_afek3_survives_budget () =
  match
    Explore.find_phantom
      (Nfc_protocol.Afek3.make ~retransmit:1 ~ping_every:2 ())
      { small_bounds with max_nodes = 30_000 }
  with
  | Explore.Violation _ -> Alcotest.fail "afek3 must not be violated"
  | Explore.Node_budget _ | Explore.No_violation _ -> ()

let test_reachable_stats_sane () =
  let s =
    Explore.reachable (Nfc_protocol.Stop_and_wait.make ~timeout:2 ())
      { small_bounds with submit_budget = 2; max_nodes = 50_000 }
  in
  checkb "nodes positive" true (s.Explore.nodes > 10);
  checkb "senders at least 2" true (s.Explore.sender_states >= 2);
  checkb "receivers at least 2" true (s.Explore.receiver_states >= 2);
  checkb "depth positive" true (s.Explore.max_depth > 0)

let test_node_budget_enforced () =
  (* Unbounded counters make the full space infinite (retransmissions keep
     growing the receiver's owed-ack counter); the node budget must cut the
     search off at exactly its limit. *)
  let s =
    Explore.reachable (Nfc_protocol.Stop_and_wait.make ~timeout:1 ())
      { small_bounds with submit_budget = 2; max_nodes = 5_000 }
  in
  checkb "hit the budget" true (s.Explore.nodes >= 5_000);
  checkb "did not overrun it much" true (s.Explore.nodes <= 5_200)

let test_wedge_altbit_with_loss () =
  (* Loss + bit confusion permanently wedges the alternating bit; the
     backward fixpoint finds a witness execution. *)
  match
    Explore.find_wedge
      (Nfc_protocol.Alternating_bit.make ~timeout:1 ())
      { small_bounds with max_nodes = 250_000 }
  with
  | Explore.Wedged (trace, _) ->
      (* The witness ends with a message pending... *)
      checkb "pending message" true
        (Nfc_automata.Execution.sm trace > Nfc_automata.Execution.rm trace);
      (* ...and is a genuine execution of the protocol over a legal channel. *)
      checkb "PL1 tr" true (Nfc_automata.Props.pl1 Nfc_automata.Action.T_to_r trace = None);
      checkb "PL1 rt" true (Nfc_automata.Props.pl1 Nfc_automata.Action.R_to_t trace = None);
      (match
         Nfc_sim.Conformance.check (Nfc_protocol.Alternating_bit.make ~timeout:1 ()) trace
       with
      | Nfc_sim.Conformance.Conformant -> ()
      | v ->
          Alcotest.failf "witness not conformant: %s"
            (Format.asprintf "%a" Nfc_sim.Conformance.pp_verdict v))
  | Explore.No_wedge _ -> Alcotest.fail "alternating bit with loss must wedge"

let test_wedge_sequence_protocols_never () =
  List.iter
    (fun proto ->
      match
        Explore.find_wedge proto
          { small_bounds with submit_budget = 2; max_nodes = 60_000 }
      with
      | Explore.No_wedge _ -> ()
      | Explore.Wedged _ ->
          Alcotest.failf "%s must never wedge" (Nfc_protocol.Spec.name proto))
    [
      Nfc_protocol.Stenning.make ~timeout:1 ();
      Nfc_protocol.Stop_and_wait.make ~timeout:1 ();
    ]

let test_boundness_within_theorem_bound () =
  (* Theorem 2.1: measured boundness <= k_t * k_r. *)
  List.iter
    (fun proto ->
      let r =
        Boundness.measure proto
          ~explore:
            {
              Explore.capacity_tr = 2;
              capacity_rt = 2;
              submit_budget = 2;
              max_nodes = 20_000;
              allow_drop = true;
              por = false;
            }
          ~probe:Boundness.default_probe_bounds
      in
      match r.Boundness.boundness with
      | Some b ->
          checkb (r.Boundness.protocol ^ " within product") true (b <= r.state_product);
          checkb (r.Boundness.protocol ^ " at least 1") true (b >= 1)
      | None -> Alcotest.fail (r.Boundness.protocol ^ ": probe exhausted"))
    [
      Nfc_protocol.Stop_and_wait.make ~timeout:2 ();
      Nfc_protocol.Alternating_bit.make ~timeout:2 ();
      Nfc_protocol.Stenning.make ~timeout:2 ();
    ]

let test_boundness_semi_valid_exist () =
  let r =
    Boundness.measure (Nfc_protocol.Alternating_bit.make ~timeout:2 ())
      ~explore:
        {
          Explore.capacity_tr = 2;
          capacity_rt = 2;
          submit_budget = 2;
          max_nodes = 20_000;
          allow_drop = true;
          por = false;
        }
      ~probe:Boundness.default_probe_bounds
  in
  checkb "found semi-valid configs" true (r.Boundness.semi_valid_configs > 0);
  checkb "k_t at least 2" true (r.Boundness.k_t >= 2)

let test_mcheck_counterexample_replays_in_props () =
  (* Cross-validation: every action of the model checker's counterexample
     passes the online checkers until the final phantom. *)
  match Explore.find_phantom (Nfc_protocol.Alternating_bit.make ~timeout:2 ()) small_bounds with
  | Explore.Violation trace ->
      let dl = Nfc_sim.Dl_check.create () in
      let violations =
        List.filter_map (fun a -> Nfc_sim.Dl_check.on_action dl a) trace
      in
      (* The online checker flags exactly the final phantom. *)
      checkb "online checker flags it too" true (violations <> [])
  | _ -> Alcotest.fail "expected violation"

let suite =
  [
    ("s&w violation found", `Quick, test_stop_and_wait_violation_found);
    ("altbit violation found", `Quick, test_alternating_bit_violation_found);
    ("altbit broken by pure reorder", `Quick, test_alternating_bit_without_drop_still_violated);
    ("s&w counterexample minimal", `Quick, test_counterexample_is_minimal_for_sw);
    ("stenning survives", `Quick, test_stenning_survives_budget);
    ("afek3 survives", `Quick, test_afek3_survives_budget);
    ("reachable stats", `Quick, test_reachable_stats_sane);
    ("node budget enforced", `Quick, test_node_budget_enforced);
    ("wedge: altbit with loss", `Quick, test_wedge_altbit_with_loss);
    ("wedge: seq protocols never", `Quick, test_wedge_sequence_protocols_never);
    ("boundness within k_t*k_r", `Quick, test_boundness_within_theorem_bound);
    ("boundness semi-valid configs", `Quick, test_boundness_semi_valid_exist);
    ("counterexample cross-validated", `Quick, test_mcheck_counterexample_replays_in_props);
  ]
