(* Tests for Nfc_channel: Transit, Policy, Pl_check. *)
open Nfc_channel

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* -------------------------------------------------------------- Transit *)

let test_transit_send_counts () =
  let t = Transit.create () in
  let tag0 = Transit.send t 5 in
  let tag1 = Transit.send t 5 in
  let tag2 = Transit.send t 7 in
  checki "tags consecutive" 1 (tag1 - tag0);
  checki "tag2" 2 tag2;
  checki "in transit" 3 (Transit.in_transit t);
  checki "count 5" 2 (Transit.count t 5);
  checki "sent total" 3 (Transit.sent_total t);
  checki "distinct sent" 2 (Transit.distinct_sent t);
  Alcotest.(check (list int)) "support" [ 5; 7 ] (Transit.support t)

let test_transit_deliver_oldest_fifo () =
  let t = Transit.create () in
  ignore (Transit.send t 1);
  ignore (Transit.send t 2);
  ignore (Transit.send t 3);
  (match Transit.deliver_oldest t with
  | Some (_, 1) -> ()
  | _ -> Alcotest.fail "expected packet 1 first");
  (match Transit.deliver_oldest t with
  | Some (_, 2) -> ()
  | _ -> Alcotest.fail "expected packet 2 second");
  checki "delivered" 2 (Transit.delivered_total t);
  checki "left" 1 (Transit.in_transit t)

let test_transit_deliver_pkt_oldest_copy () =
  let t = Transit.create () in
  let tag0 = Transit.send t 9 in
  let _tag1 = Transit.send t 9 in
  (match Transit.deliver_pkt t 9 with
  | Some tag -> checki "oldest copy first" tag0 tag
  | None -> Alcotest.fail "deliver_pkt failed");
  checkb "absent pkt" true (Transit.deliver_pkt t 1 = None)

let test_transit_deliver_tag () =
  let t = Transit.create () in
  let tag = Transit.send t 4 in
  checkb "tag delivered" true (Transit.deliver_tag t tag = Some 4);
  checkb "tag consumed" true (Transit.deliver_tag t tag = None);
  checki "empty" 0 (Transit.in_transit t)

let test_transit_no_duplication () =
  (* PL1: a copy can be consumed exactly once, through any access path. *)
  let t = Transit.create () in
  let tag = Transit.send t 2 in
  checkb "first consume ok" true (Transit.deliver_pkt t 2 <> None);
  checkb "tag gone" true (Transit.deliver_tag t tag = None);
  checkb "pkt gone" true (Transit.deliver_pkt t 2 = None);
  checkb "oldest gone" true (Transit.deliver_oldest t = None)

let test_transit_drop () =
  let t = Transit.create () in
  ignore (Transit.send t 1);
  ignore (Transit.send t 2);
  (match Transit.drop_pkt t 1 with Some _ -> () | None -> Alcotest.fail "drop failed");
  checki "dropped total" 1 (Transit.dropped_total t);
  checki "in transit" 1 (Transit.in_transit t);
  checki "delivered stays 0" 0 (Transit.delivered_total t)

let test_transit_random_ops () =
  let t = Transit.create () in
  let rng = Nfc_util.Rng.of_int 5 in
  for i = 1 to 50 do
    ignore (Transit.send t (i mod 3))
  done;
  let seen = ref 0 in
  for _ = 1 to 50 do
    match Transit.deliver_random t rng with
    | Some (_, p) ->
        incr seen;
        checkb "valid packet" true (p >= 0 && p < 3)
    | None -> Alcotest.fail "random delivery failed"
  done;
  checki "all delivered" 50 !seen;
  checkb "empty now" true (Transit.deliver_random t rng = None)

let test_transit_snapshot () =
  let t = Transit.create () in
  ignore (Transit.send t 1);
  ignore (Transit.send t 1);
  ignore (Transit.send t 2);
  let m = Transit.snapshot t in
  checki "snapshot count 1" 2 (Nfc_util.Multiset.Int.count 1 m);
  checki "snapshot cardinal" 3 (Nfc_util.Multiset.Int.cardinal m)

let test_transit_per_pkt_counters () =
  let t = Transit.create () in
  ignore (Transit.send t 3);
  ignore (Transit.send t 3);
  ignore (Transit.deliver_pkt t 3);
  checki "sent per pkt" 2 (Transit.sent_count t 3);
  checki "delivered per pkt" 1 (Transit.delivered_count t 3);
  Alcotest.(check (list int)) "sent support" [ 3 ] (Transit.sent_support t)

(* Property: conservation — sent = delivered + dropped + in_transit under
   arbitrary op sequences. *)
let prop_transit_conservation =
  QCheck.Test.make ~name:"transit conserves copies" ~count:200
    QCheck.(small_list (int_bound 5))
    (fun ops ->
      let t = Transit.create () in
      let rng = Nfc_util.Rng.of_int 77 in
      List.iter
        (fun op ->
          match op with
          | 0 | 1 -> ignore (Transit.send t op)
          | 2 -> ignore (Transit.deliver_oldest t)
          | 3 -> ignore (Transit.deliver_random t rng)
          | 4 -> ignore (Transit.drop_oldest t)
          | _ -> ignore (Transit.drop_random t rng))
        ops;
      Transit.sent_total t
      = Transit.delivered_total t + Transit.dropped_total t + Transit.in_transit t)

(* --------------------------------------------------------------- Policy *)

let run_policy policy n =
  (* Send n packets through the policy, then poll n times; return
     (delivered, dropped, left). *)
  let t = Transit.create () in
  let rng = Nfc_util.Rng.of_int 42 in
  let delivered = ref 0 and dropped = ref 0 in
  let count events =
    List.iter
      (function Policy.Delivered _ -> incr delivered | Policy.Dropped _ -> incr dropped)
      events
  in
  for i = 0 to n - 1 do
    let pkt = i mod 4 in
    let tag = Transit.send t pkt in
    count (policy.Policy.on_send rng t ~tag ~pkt)
  done;
  for _ = 1 to n do
    count (policy.Policy.on_poll rng t)
  done;
  (!delivered, !dropped, Transit.in_transit t)

let test_policy_fifo_reliable () =
  let d, x, left = run_policy Policy.fifo_reliable 50 in
  checki "all delivered" 50 d;
  checki "none dropped" 0 x;
  checki "none left" 0 left

let test_policy_fifo_reliable_in_order () =
  let t = Transit.create () in
  let rng = Nfc_util.Rng.of_int 1 in
  let order = ref [] in
  for i = 0 to 9 do
    let tag = Transit.send t i in
    List.iter
      (function Policy.Delivered (_, p) -> order := p :: !order | Policy.Dropped _ -> ())
      (Policy.fifo_reliable.Policy.on_send rng t ~tag ~pkt:i)
  done;
  Alcotest.(check (list int)) "in order" (List.init 10 Fun.id) (List.rev !order)

let test_policy_fifo_lossy () =
  let d, x, left = run_policy (Policy.fifo_lossy ~loss:0.5) 400 in
  checki "nothing lingers" 0 left;
  checkb "some delivered" true (d > 100);
  checkb "some dropped" true (x > 100);
  checki "conservation" 400 (d + x)

let test_policy_fifo_lossy_zero_loss () =
  let d, x, _ = run_policy (Policy.fifo_lossy ~loss:0.0) 50 in
  checki "all delivered" 50 d;
  checki "none dropped" 0 x

let test_policy_uniform_reorder () =
  let d, x, left = run_policy (Policy.uniform_reorder ~deliver:1.0 ~drop:0.0) 50 in
  checki "one per poll" 50 d;
  checki "no drops" 0 x;
  checki "none left" 0 left

let test_policy_probabilistic_delay_only () =
  let d, x, left = run_policy (Policy.probabilistic ~q:0.4 ()) 300 in
  checki "no loss in delay mode" 0 x;
  checki "conservation" 300 (d + left);
  (* Roughly 60% delivered immediately, plus some released. *)
  checkb "most delivered" true (d > 150)

let test_policy_probabilistic_lossy () =
  let d, x, left = run_policy (Policy.probabilistic ~q:0.4 ~lose:true ()) 300 in
  checki "nothing lingers when losing" 0 left;
  checki "conservation" 300 (d + x);
  checkb "drops near q" true (x > 60 && x < 180)

let test_policy_fifo_delayed () =
  (* Exactly [latency] polls pass before each delivery, in order. *)
  let policy = Nfc_channel.Policy.fifo_delayed ~latency:3 () in
  let t = Transit.create () in
  let rng = Nfc_util.Rng.of_int 1 in
  let tag = Transit.send t 7 in
  Alcotest.(check (list int)) "nothing at send" []
    (List.filter_map
       (function Policy.Delivered (_, p) -> Some p | Policy.Dropped _ -> None)
       (policy.Policy.on_send rng t ~tag ~pkt:7));
  checkb "poll 1 empty" true (policy.Policy.on_poll rng t = []);
  checkb "poll 2 empty" true (policy.Policy.on_poll rng t = []);
  (match policy.Policy.on_poll rng t with
  | [ Policy.Delivered (_, 7) ] -> ()
  | _ -> Alcotest.fail "expected delivery on poll 3");
  (* Order preserved across a batch. *)
  let tags = List.map (fun p -> (Transit.send t p, p)) [ 1; 2; 3 ] in
  List.iter (fun (tag, pkt) -> ignore (policy.Policy.on_send rng t ~tag ~pkt)) tags;
  let order = ref [] in
  for _ = 1 to 5 do
    List.iter
      (function Policy.Delivered (_, p) -> order := p :: !order | Policy.Dropped _ -> ())
      (policy.Policy.on_poll rng t)
  done;
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (List.rev !order)

let test_policy_fifo_delayed_zero_latency () =
  (* latency 0 still means "on the next poll", never at send time. *)
  let policy = Policy.fifo_delayed ~latency:0 () in
  let t = Transit.create () in
  let rng = Nfc_util.Rng.of_int 1 in
  let tag = Transit.send t 5 in
  checkb "nothing at send" true (policy.Policy.on_send rng t ~tag ~pkt:5 = []);
  (match policy.Policy.on_poll rng t with
  | [ Policy.Delivered (_, 5) ] -> ()
  | _ -> Alcotest.fail "expected delivery on the first poll")

let test_policy_fifo_delayed_drop_accounting () =
  (* Losses happen at send time (Dropped events only from on_send); the
     survivors are Delivered exactly [latency] polls later, and the transit
     books balance throughout. *)
  let policy = Policy.fifo_delayed ~latency:2 ~loss:0.5 () in
  let t = Transit.create () in
  let rng = Nfc_util.Rng.of_int 11 in
  let send_events = ref [] and poll_events = ref [] in
  for i = 0 to 199 do
    let tag = Transit.send t i in
    send_events := policy.Policy.on_send rng t ~tag ~pkt:i @ !send_events
  done;
  for _ = 1 to 3 do
    poll_events := policy.Policy.on_poll rng t @ !poll_events
  done;
  checkb "sends only drop" true
    (List.for_all (function Policy.Dropped _ -> true | _ -> false) !send_events);
  checkb "polls only deliver" true
    (List.for_all (function Policy.Delivered _ -> true | _ -> false) !poll_events);
  let dropped = List.length !send_events and delivered = List.length !poll_events in
  checki "transit dropped counter agrees" dropped (Transit.dropped_total t);
  checki "transit delivered counter agrees" delivered (Transit.delivered_total t);
  checki "conservation" 200 (dropped + delivered + Transit.in_transit t);
  checki "all survivors released after latency polls" 0 (Transit.in_transit t);
  checkb "loss near 0.5" true (dropped > 60 && dropped < 140)

let test_policy_fifo_delayed_loss () =
  let d, x, left = run_policy (Nfc_channel.Policy.fifo_delayed ~latency:0 ~loss:0.4 ()) 300 in
  checkb "some dropped" true (x > 60);
  checki "conservation" 300 (d + x + left)

let test_policy_gilbert_elliott () =
  let d, x, left = run_policy (Policy.gilbert_elliott ()) 500 in
  checki "nothing lingers" 0 left;
  checki "conservation" 500 (d + x);
  (* Default params: long-run loss between the good and bad rates. *)
  checkb "some loss" true (x > 5);
  checkb "mostly delivered" true (d > 250)

let test_policy_gilbert_elliott_bursty () =
  (* Loss must arrive in bursts: the variance of per-window loss counts is
     higher than an independent-loss channel with the same mean would give.
     We check the cruder signature: at least one long loss-free stretch AND
    one dense-loss stretch. *)
  let policy = Policy.gilbert_elliott ~good_loss:0.0 ~bad_loss:0.9 ~p_gb:0.02 ~p_bg:0.1 () in
  let t = Transit.create () in
  let rng = Nfc_util.Rng.of_int 7 in
  let outcomes = Array.make 2000 false in
  for i = 0 to 1999 do
    let tag = Transit.send t 0 in
    let events = policy.Policy.on_send rng t ~tag ~pkt:0 in
    outcomes.(i) <- List.exists (function Policy.Dropped _ -> true | _ -> false) events
  done;
  let max_run value =
    let best = ref 0 and cur = ref 0 in
    Array.iter (fun b ->
        if b = value then begin incr cur; best := max !best !cur end else cur := 0)
      outcomes;
    !best
  in
  checkb "a long clean stretch exists" true (max_run false >= 50);
  checkb "a loss burst exists" true (max_run true >= 3)

let test_policy_gilbert_elliott_forced_alternation () =
  (* p_gb = p_bg = 1 makes the burst chain deterministic: the state flips on
     every send, so packets alternate good-state and bad-state loss rates.
     With good_loss = 0 every even-numbered send (bad -> good transition
     first) survives, pinning the loss rate to bad_loss / 2. *)
  let policy = Policy.gilbert_elliott ~good_loss:0.0 ~bad_loss:0.99 ~p_gb:1.0 ~p_bg:1.0 () in
  let t = Transit.create () in
  let rng = Nfc_util.Rng.of_int 3 in
  let n = 400 in
  let dropped = ref 0 in
  let delivered_order = ref [] in
  for i = 0 to n - 1 do
    let tag = Transit.send t i in
    List.iter
      (function
        | Policy.Dropped _ -> incr dropped
        | Policy.Delivered (_, p) -> delivered_order := p :: !delivered_order)
      (policy.Policy.on_send rng t ~tag ~pkt:i)
  done;
  (* Good-state sends are lossless: at least half the packets survive. *)
  checkb "good-state sends survive" true (List.length !delivered_order >= n / 2);
  checkb "bad-state sends mostly drop" true (!dropped > (n / 2) - 40);
  checki "drop accounting" !dropped (Transit.dropped_total t);
  (* Survivors still come out in FIFO order. *)
  let order = List.rev !delivered_order in
  checkb "fifo among survivors" true (List.sort compare order = order)

let test_policy_gilbert_elliott_validation () =
  Alcotest.check_raises "bad bad_loss"
    (Invalid_argument "Policy.gilbert_elliott: bad_loss must lie in [0,0.99]") (fun () ->
      ignore (Policy.gilbert_elliott ~bad_loss:1.5 ()))

let test_policy_silent () =
  let d, x, left = run_policy Policy.silent 20 in
  checki "no deliveries" 0 d;
  checki "no drops" 0 x;
  checki "everything held" 20 left

let test_policy_validation () =
  Alcotest.check_raises "bad loss" (Invalid_argument "Policy.fifo_lossy: loss must lie in [0,1)")
    (fun () -> ignore (Policy.fifo_lossy ~loss:1.0));
  Alcotest.check_raises "bad q" (Invalid_argument "Policy.probabilistic: q must lie in [0,1]")
    (fun () -> ignore (Policy.probabilistic ~q:1.5 ()))

(* ------------------------------------------------------------- Pl_check *)

let test_pl_check_clean () =
  let open Nfc_automata in
  let c = Pl_check.create () in
  checkb "send ok" true (Pl_check.on_action c (Action.Send_pkt (Action.T_to_r, 1)) = None);
  checkb "receive ok" true
    (Pl_check.on_action c (Action.Receive_pkt (Action.T_to_r, 1)) = None);
  checkb "no violation" true (Pl_check.violated c = None)

let test_pl_check_duplication () =
  let open Nfc_automata in
  let c = Pl_check.create () in
  ignore (Pl_check.on_action c (Action.Send_pkt (Action.T_to_r, 1)));
  ignore (Pl_check.on_action c (Action.Receive_pkt (Action.T_to_r, 1)));
  checkb "second receive flagged" true
    (Pl_check.on_action c (Action.Receive_pkt (Action.T_to_r, 1)) <> None);
  checkb "sticky" true (Pl_check.violated c <> None)

let test_pl_check_directions_independent () =
  let open Nfc_automata in
  let c = Pl_check.create () in
  ignore (Pl_check.on_action c (Action.Send_pkt (Action.T_to_r, 1)));
  checkb "other direction has no copy" true
    (Pl_check.on_action c (Action.Receive_pkt (Action.R_to_t, 1)) <> None)

let test_pl_check_matches_declarative () =
  (* The online checker agrees with Props.pl1 on a random policy-driven
     execution assembled action by action. *)
  let open Nfc_automata in
  let rng = Nfc_util.Rng.of_int 9 in
  let t = Transit.create () in
  let actions = ref [] in
  for i = 0 to 199 do
    let pkt = i mod 5 in
    ignore (Transit.send t pkt);
    actions := Action.Send_pkt (Action.T_to_r, pkt) :: !actions;
    if Nfc_util.Rng.bool rng 0.5 then
      match Transit.deliver_random t rng with
      | Some (_, p) -> actions := Action.Receive_pkt (Action.T_to_r, p) :: !actions
      | None -> ()
  done;
  let trace = List.rev !actions in
  let c = Pl_check.create () in
  List.iter (fun a -> ignore (Pl_check.on_action c a)) trace;
  checkb "both accept" true
    (Pl_check.violated c = None && Props.pl1 Action.T_to_r trace = None)

(* Property: the capacity fault wrapper never lets transit exceed cap and
   keeps the conservation books (overwrites are recorded drops). *)
let prop_capacity_bound_clamps =
  QCheck.Test.make ~name:"capacity_bound clamps transit and conserves" ~count:200
    QCheck.(pair (int_range 1 4) (small_list (int_bound 5)))
    (fun (cap, ops) ->
      let policy = Policy.capacity_bound ~cap (Policy.uniform_reorder ~deliver:0.5 ~drop:0.1) in
      let t = Transit.create () in
      let rng = Nfc_util.Rng.of_int 13 in
      List.for_all
        (fun op ->
          (if op <= 3 then
             let tag = Transit.send t op in
             ignore (policy.Policy.on_send rng t ~tag ~pkt:op)
           else ignore (policy.Policy.on_poll rng t));
          Transit.in_transit t <= cap
          && Transit.sent_total t
             = Transit.delivered_total t + Transit.dropped_total t + Transit.in_transit t)
        ops)

(* Property: every delivery of a duplicating channel — duplicates
   included — matches an in-transit (sent-minus-dropped) copy: the PL1'
   obligation, as judged by the relaxed online checker. *)
let prop_duplicating_pl1_relaxed =
  QCheck.Test.make ~name:"duplicating deliveries match in-transit copies (PL1')" ~count:200
    QCheck.(small_list (int_bound 4))
    (fun ops ->
      let open Nfc_automata in
      let policy = Policy.duplicating ~dup:0.6 (Policy.uniform_reorder ~deliver:0.5 ~drop:0.2) in
      let t = Transit.create () in
      let rng = Nfc_util.Rng.of_int 21 in
      let c = Pl_check.create ~mode:Pl_check.Relaxed () in
      let feed =
        List.iter (fun ev ->
            let a =
              match ev with
              | Policy.Delivered (_, p) -> Action.Receive_pkt (Action.T_to_r, p)
              | Policy.Dropped (_, p) -> Action.Drop_pkt (Action.T_to_r, p)
            in
            ignore (Pl_check.on_action c a))
      in
      List.iter
        (fun op ->
          if op <= 2 then begin
            let tag = Transit.send t op in
            ignore (Pl_check.on_action c (Action.Send_pkt (Action.T_to_r, op)));
            feed (policy.Policy.on_send rng t ~tag ~pkt:op)
          end
          else feed (policy.Policy.on_poll rng t))
        ops;
      Pl_check.violated c = None)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_transit_conservation; prop_capacity_bound_clamps; prop_duplicating_pl1_relaxed ]

let suite =
  [
    ("transit send counts", `Quick, test_transit_send_counts);
    ("transit fifo delivery", `Quick, test_transit_deliver_oldest_fifo);
    ("transit deliver pkt oldest", `Quick, test_transit_deliver_pkt_oldest_copy);
    ("transit deliver tag", `Quick, test_transit_deliver_tag);
    ("transit no duplication", `Quick, test_transit_no_duplication);
    ("transit drop", `Quick, test_transit_drop);
    ("transit random ops", `Quick, test_transit_random_ops);
    ("transit snapshot", `Quick, test_transit_snapshot);
    ("transit per-pkt counters", `Quick, test_transit_per_pkt_counters);
    ("policy fifo reliable", `Quick, test_policy_fifo_reliable);
    ("policy fifo order", `Quick, test_policy_fifo_reliable_in_order);
    ("policy fifo lossy", `Quick, test_policy_fifo_lossy);
    ("policy fifo lossless", `Quick, test_policy_fifo_lossy_zero_loss);
    ("policy uniform reorder", `Quick, test_policy_uniform_reorder);
    ("policy probabilistic delay", `Quick, test_policy_probabilistic_delay_only);
    ("policy probabilistic lossy", `Quick, test_policy_probabilistic_lossy);
    ("policy fifo delayed", `Quick, test_policy_fifo_delayed);
    ("policy fifo delayed zero latency", `Quick, test_policy_fifo_delayed_zero_latency);
    ("policy fifo delayed drop accounting", `Quick, test_policy_fifo_delayed_drop_accounting);
    ("policy fifo delayed loss", `Quick, test_policy_fifo_delayed_loss);
    ("policy gilbert-elliott", `Quick, test_policy_gilbert_elliott);
    ("policy gilbert-elliott bursty", `Quick, test_policy_gilbert_elliott_bursty);
    ( "policy gilbert-elliott forced alternation",
      `Quick,
      test_policy_gilbert_elliott_forced_alternation );
    ("policy gilbert-elliott validation", `Quick, test_policy_gilbert_elliott_validation);
    ("policy silent", `Quick, test_policy_silent);
    ("policy validation", `Quick, test_policy_validation);
    ("pl_check clean", `Quick, test_pl_check_clean);
    ("pl_check duplication", `Quick, test_pl_check_duplication);
    ("pl_check directions", `Quick, test_pl_check_directions_independent);
    ("pl_check matches declarative", `Quick, test_pl_check_matches_declarative);
  ]
  @ qsuite
