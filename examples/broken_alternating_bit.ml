(* The alternating-bit protocol is correct over lossy FIFO channels and
   *unsafe* over non-FIFO channels — the observation that motivates the
   whole paper.  This example:

   1. shows the protocol working over a lossy FIFO channel;
   2. lets the explicit-state model checker search the protocol composed
      with a non-FIFO channel and print the shortest execution in which
      the receiver delivers a message that was never sent (a DL1
      violation);
   3. replays the counterexample through the independent declarative
      checkers to confirm the verdict;
   4. finds the same bug a second way — the coverage-guided schedule
      fuzzer — and delta-debugs its finding down to a minimal schedule.

   Run with:  dune exec examples/broken_alternating_bit.exe *)

let () =
  (* 1. Healthy over FIFO-with-loss. *)
  let protocol = Nfc_protocol.Alternating_bit.make () in
  let fifo () = Nfc_channel.Policy.fifo_lossy ~loss:0.3 in
  let result =
    Nfc_sim.Harness.run protocol
      {
        Nfc_sim.Harness.default_config with
        policy_tr = fifo ();
        policy_rt = fifo ();
        n_messages = 20;
        submit_every = 2;
        seed = 7;
      }
  in
  Format.printf "Over a lossy FIFO channel: %d/%d delivered, violations: %s@.@."
    result.Nfc_sim.Harness.metrics.Nfc_sim.Metrics.delivered
    result.Nfc_sim.Harness.metrics.Nfc_sim.Metrics.submitted
    (match result.Nfc_sim.Harness.metrics.Nfc_sim.Metrics.dl_violation with
    | None -> "none"
    | Some v -> v);

  (* 2. Model-check it over a non-FIFO channel. *)
  print_endline "Model checking the same protocol over a non-FIFO channel...";
  let bounds =
    {
      Nfc_mcheck.Explore.capacity_tr = 2;
      capacity_rt = 2;
      submit_budget = 3;
      max_nodes = 200_000;
      allow_drop = false (* reordering alone is enough *);
      por = false;
    }
  in
  match Nfc_mcheck.Explore.find_phantom protocol bounds with
  | Nfc_mcheck.Explore.Violation trace ->
      Format.printf
        "Shortest counterexample (%d actions) — the stale bit-0 packet from message 0 \
         is mistaken for a third message:@."
        (List.length trace);
      List.iteri (fun i a -> Format.printf "  %2d. %a@." i Nfc_automata.Action.pp a) trace;
      (* 3. Independent confirmation. *)
      (match Nfc_automata.Props.invalid_phantom trace with
      | Some v ->
          Format.printf "@.Declarative checker agrees: %a@." Nfc_automata.Props.pp_violation v
      | None -> failwith "checkers disagree — bug!");
      assert (Nfc_automata.Props.pl1 Nfc_automata.Action.T_to_r trace = None);
      assert (Nfc_automata.Props.pl1 Nfc_automata.Action.R_to_t trace = None);
      print_endline
        "\nThe physical layer acted legally throughout (PL1 holds): pure reordering\n\
         defeats the alternating bit, exactly as Section 1 of the paper says —\n\
         and Theorem 3.1 shows no bounded-header protocol can do better."
  | outcome ->
      Format.printf "Unexpected: %a@." Nfc_mcheck.Explore.pp_outcome outcome

(* 4. The schedule fuzzer reaches the same verdict without enumerating the
   state space: random adversary schedules, coverage feedback, then
   delta-debugging the finding to a minimal replayable schedule. *)
let () =
  print_endline "\nFuzzing the same protocol (coverage-guided adversary schedules)...";
  let open Nfc_fuzz in
  let r =
    Campaign.run
      (Nfc_protocol.Alternating_bit.make ())
      { Campaign.default_cfg with iterations = 10_000; shrink = true }
  in
  match r.Campaign.finding with
  | None -> failwith "fuzzer missed the known violation — bug!"
  | Some f ->
      Format.printf "Found at run %d (%d configurations covered): %s@." f.Campaign.found_at
        r.Campaign.coverage f.Campaign.violation;
      let minimal = Option.get f.Campaign.shrunk in
      Format.printf "@.Minimal schedule (%d steps):@.%a@." (Schedule.length minimal)
        Schedule.pp minimal;
      assert (Nfc_automata.Props.invalid_phantom f.Campaign.trace <> None);
      print_endline
        "\nSame phantom delivery, found by fuzzing and shrunk to a schedule you can\n\
         save and replay deterministically (nfc fuzz --shrink --save-trace FILE)."
