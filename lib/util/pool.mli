(** Multi-core fan-out over independent jobs (stdlib [Domain] + [Mutex]).

    The engines and campaign drivers hand whole independent jobs — one
    protocol's lint analysis, one boundness probe, one fuzz batch — to a
    small pool of domains.  Jobs must not share mutable state: every
    engine instance (interners, visited tables) is created inside its own
    job.  Results are returned in input order, so printing them in list
    order is deterministic for any job count. *)

(** [Domain.recommended_domain_count ()] — the default worker count when
    callers pass [jobs = 0]. *)
val recommended : unit -> int

(** [map ~jobs f items] applies [f] to every item, fanning out across at
    most [jobs] domains ([0] means one per core, [1] means plain
    sequential [List.map] on the calling domain — no domain is spawned).
    Output order matches input order.  If any job raises, every worker
    still drains the remaining items, and the first exception in input
    order is then re-raised in the caller {e with the raising worker's
    backtrace} ([Printexc.raise_with_backtrace]) — a raising task never
    wedges the pool or loses its traceback. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** {1 Persistent worker groups}

    Long-running services ({!Nfc_serve.Workers}) need domains that outlive
    any one work list: [spawn_group ~jobs body] starts [jobs] domains
    ([0] = one per core), each running [body i] (with [i] the worker
    index) until it returns — the body owns its own job source, typically
    a blocking queue it drains until closed. *)
type group

val spawn_group : jobs:int -> (int -> unit) -> group

(** Wait for every domain in the group.  If any body escaped with an
    exception, the earliest-captured one is re-raised here with the
    worker's backtrace — after all domains have been joined, so a raising
    worker never leaves the group half-running. *)
val join_group : group -> unit
