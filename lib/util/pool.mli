(** Multi-core fan-out over independent jobs (stdlib [Domain] + [Mutex]).

    The engines and campaign drivers hand whole independent jobs — one
    protocol's lint analysis, one boundness probe, one fuzz batch — to a
    small pool of domains.  Jobs must not share mutable state: every
    engine instance (interners, visited tables) is created inside its own
    job.  Results are returned in input order, so printing them in list
    order is deterministic for any job count. *)

(** [Domain.recommended_domain_count ()] — the default worker count when
    callers pass [jobs = 0]. *)
val recommended : unit -> int

(** [map ~jobs f items] applies [f] to every item, fanning out across at
    most [jobs] domains ([0] means one per core, [1] means plain
    sequential [List.map] on the calling domain — no domain is spawned).
    Output order matches input order.  If any job raises, the first
    exception in input order is re-raised after all workers have
    drained. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
