(** Minimal JSON for machine-readable reports and service payloads.

    The emitter backs [--json] everywhere (metrics, fuzz campaigns, lint
    JSONL, SARIF); the parser fronts the [nfc serve] HTTP API, where job
    payloads and results travel as JSON POST bodies.  Both sides treat
    strings as byte sequences: bytes [>= 0x80] pass through verbatim, so
    UTF-8 text survives and [of_string (to_string t) = Ok t] for every
    [Raw]-free, finite-float tree (control characters in strings are
    escaped on the way out and unescaped on the way in). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string
      (** Pre-rendered {e trusted} JSON, emitted verbatim — the splice
          point for already-serialized documents (a stored job result
          inside a job-status envelope).  Emission only: {!of_string}
          never produces it, and an ill-formed [Raw] yields an ill-formed
          document. *)

(** Compact (single-line) rendering.  Strings escape the quote, the
    backslash and all control characters U+0000–U+001F (short forms
    [\b \f \n \r \t], [\uXXXX] otherwise); non-finite floats render as
    [null] (JSON has no nan/infinity literals). *)
val to_string : t -> string

(** [opt f o] is [Null] for [None] and [f v] for [Some v]. *)
val opt : ('a -> t) -> 'a option -> t

(** Parse one complete JSON document (trailing whitespace allowed,
    trailing garbage is an error).  Numbers parse as [Int] when written
    integrally within native range, [Float] otherwise; [\uXXXX] escapes
    (including surrogate pairs) decode to UTF-8 bytes.  Nesting beyond
    512 levels is rejected — the parser fronts a network service and must
    not stack-overflow on hostile bodies. *)
val of_string : string -> (t, string) result

(** {1 Accessors} — shallow field access for request decoding. *)

(** [member k j] is the field [k] of object [j], [None] for missing
    fields and non-objects. *)
val member : string -> t -> t option

val to_int_opt : t -> int option

(** [Int] widens to float; everything else is [None]. *)
val to_float_opt : t -> float option

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option

(** [get_int ?default k j]: the integer field [k]; [default] applies only
    when the field is {e absent} — a present field of the wrong type is an
    error naming the field, so clients get a usable 400 message. *)
val get_int : ?default:int -> string -> t -> (int, string) result

val get_bool : ?default:bool -> string -> t -> (bool, string) result
val get_string : ?default:string -> string -> t -> (string, string) result
