(** Minimal JSON emitter for machine-readable reports (metrics `--json`,
    fuzz campaign JSONL).  Emission only — the repo never parses JSON, so
    there is no reader and no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering with full string escaping. *)
val to_string : t -> string

(** [opt f o] is [Null] for [None] and [f v] for [Some v]. *)
val opt : ('a -> t) -> 'a option -> t
