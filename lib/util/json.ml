type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no nan/infinity literals; [null] is the least-wrong
         rendering and keeps every emitted document parseable. *)
      if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
        Buffer.add_string buf "null"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'
  | Raw s -> Buffer.add_string buf s

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

let opt f = function None -> Null | Some v -> f v

(* ---------------------------------------------------------------- parse *)

(* Recursive-descent parser for the documents the service exchanges: job
   payloads in POST bodies and round-tripped reports.  Arbitrary bytes
   >= 0x80 pass through verbatim (the emitter does the same), so
   [of_string (to_string t) = Ok t] for every [Raw]-free, finite-float
   tree.  A depth cap keeps hostile bodies ("[[[[…") from overflowing the
   stack — this parser fronts a network service. *)

exception Parse_error of string

let max_depth = 512

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "truncated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' ->
               advance ();
               let cp = hex4 () in
               (* Surrogate pair: a high surrogate must combine with the
                  immediately following \u-escaped low surrogate. *)
               if cp >= 0xD800 && cp <= 0xDBFF then begin
                 if !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
                   pos := !pos + 2;
                   let lo = hex4 () in
                   if lo >= 0xDC00 && lo <= 0xDFFF then
                     add_utf8 buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                   else fail "unpaired surrogate"
                 end
                 else fail "unpaired surrogate"
               end
               else add_utf8 buf cp
           | _ -> fail "bad escape");
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
      advance ()
    done;
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
          advance ()
        done
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "bad number";
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Integer literal past native range: keep the value, lose the
             integrality — matches every other 53-bit-limited parser. *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value (depth + 1) ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value (depth + 1) :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------ accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_float_opt = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None

let get_int ?default key j =
  match Option.bind (member key j) to_int_opt with
  | Some i -> Ok i
  | None -> (
      match (member key j, default) with
      | None, Some d -> Ok d
      | _ -> Error (Printf.sprintf "field %S: expected an integer" key))

let get_bool ?default key j =
  match Option.bind (member key j) to_bool_opt with
  | Some b -> Ok b
  | None -> (
      match (member key j, default) with
      | None, Some d -> Ok d
      | _ -> Error (Printf.sprintf "field %S: expected a boolean" key))

let get_string ?default key j =
  match Option.bind (member key j) to_string_opt with
  | Some s -> Ok s
  | None -> (
      match (member key j, default) with
      | None, Some d -> Ok d
      | _ -> Error (Printf.sprintf "field %S: expected a string" key))
