(* Work distributor over OCaml 5 domains: stdlib [Domain] + [Mutex] only.

   Jobs are pulled from a shared index behind a mutex (work stealing at
   item granularity), results land in a preallocated slot per item, so the
   output order always matches the input order regardless of worker
   interleaving — callers that print results in list order are therefore
   deterministic for any job count. *)

let recommended () = Domain.recommended_domain_count ()

(* An explicit job count is honoured even past the hardware parallelism
   (oversubscription is the caller's choice, and it is how the
   determinism-under-parallelism tests exercise real multi-domain runs on
   small machines); only [jobs = 0] defers to the hardware.  Never more
   workers than items. *)
let clamp_jobs jobs n_items =
  let j = if jobs <= 0 then recommended () else jobs in
  max 1 (min j n_items)

let map ?(jobs = 1) f items =
  match items with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs = 1 -> List.map f items
  | _ ->
      let arr = Array.of_list items in
      let n = Array.length arr in
      let results = Array.make n None in
      let next = ref 0 in
      let m = Mutex.create () in
      let take () =
        Mutex.lock m;
        let i = !next in
        if i < n then incr next;
        Mutex.unlock m;
        if i < n then Some i else None
      in
      let worker () =
        let rec go () =
          match take () with
          | None -> ()
          | Some i ->
              (results.(i) <-
                 (match f arr.(i) with
                 | v -> Some (Ok v)
                 | exception e -> Some (Error e)));
              go ()
        in
        go ()
      in
      let n_workers = clamp_jobs jobs n in
      let domains = List.init (n_workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains;
      Array.to_list results
      |> List.map (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
