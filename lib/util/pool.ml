(* Work distributor over OCaml 5 domains: stdlib [Domain] + [Mutex] only.

   Jobs are pulled from a shared index behind a mutex (work stealing at
   item granularity), results land in a preallocated slot per item, so the
   output order always matches the input order regardless of worker
   interleaving — callers that print results in list order are therefore
   deterministic for any job count. *)

let recommended () = Domain.recommended_domain_count ()

(* An explicit job count is honoured even past the hardware parallelism
   (oversubscription is the caller's choice, and it is how the
   determinism-under-parallelism tests exercise real multi-domain runs on
   small machines); only [jobs = 0] defers to the hardware.  Never more
   workers than items. *)
let clamp_jobs jobs n_items =
  let j = if jobs <= 0 then recommended () else jobs in
  max 1 (min j n_items)

(* A worker exception crosses a domain boundary, where its backtrace
   would otherwise be lost: the trace belongs to the worker domain and is
   gone by the time the caller re-raises.  Capture it in the worker,
   re-raise with [Printexc.raise_with_backtrace] in the caller. *)
let map ?(jobs = 1) f items =
  match items with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs = 1 -> List.map f items
  | _ ->
      let arr = Array.of_list items in
      let n = Array.length arr in
      let results = Array.make n None in
      let next = ref 0 in
      let m = Mutex.create () in
      let take () =
        Mutex.lock m;
        let i = !next in
        if i < n then incr next;
        Mutex.unlock m;
        if i < n then Some i else None
      in
      let worker () =
        let rec go () =
          match take () with
          | None -> ()
          | Some i ->
              (results.(i) <-
                 (match f arr.(i) with
                 | v -> Some (Ok v)
                 | exception e -> Some (Error (e, Printexc.get_raw_backtrace ()))));
              go ()
        in
        go ()
      in
      let n_workers = clamp_jobs jobs n in
      let domains = List.init (n_workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains;
      Array.to_list results
      |> List.map (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)

(* ---------------------------------------------------------------- group *)

(* Persistent worker groups for long-running services: [n] domains all
   running the same loop until it returns.  Unlike [map] there is no work
   list — the loop body owns its own job source (typically a blocking
   queue) — but the exception discipline is the same: a raising worker
   must neither wedge the group nor lose its traceback. *)
type group = {
  domains : unit Domain.t list;
  failures : (exn * Printexc.raw_backtrace) list ref;
  fail_mutex : Mutex.t;
}

let spawn_group ~jobs body =
  let n = if jobs <= 0 then recommended () else jobs in
  let failures = ref [] in
  let fail_mutex = Mutex.create () in
  let worker i () =
    try body i
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      Mutex.lock fail_mutex;
      failures := (e, bt) :: !failures;
      Mutex.unlock fail_mutex
  in
  let domains = List.init n (fun i -> Domain.spawn (worker i)) in
  { domains; failures; fail_mutex }

let join_group g =
  List.iter Domain.join g.domains;
  (* All domains are joined: no further mutation, read without the lock. *)
  match List.rev !(g.failures) with
  | [] -> ()
  | (e, bt) :: _ -> Printexc.raise_with_backtrace e bt
