(** Resource accounting for one simulation run — the paper's three
    efficiency parameters (packets, headers, space) plus channel and
    progress counters. *)

type t = {
  submitted : int;
  delivered : int;
  rounds : int;
  pkts_tr_sent : int;  (** sp^{t->r} *)
  pkts_tr_received : int;  (** rp^{t->r} *)
  pkts_tr_dropped : int;
  pkts_rt_sent : int;  (** sp^{r->t} *)
  pkts_rt_received : int;  (** rp^{r->t} *)
  pkts_rt_dropped : int;
  headers_tr : int;  (** distinct packet values sent t->r *)
  headers_rt : int;  (** distinct packet values sent r->t *)
  max_in_transit_tr : int;
  max_in_transit_rt : int;
  max_sender_space_bits : int;
  max_receiver_space_bits : int;
  completed : bool;  (** all submitted messages delivered, no violation *)
  dl_violation : string option;
  pl_violation : string option;
  latencies : int array;
      (** per delivered message, rounds from its [send_msg] to its
          [receive_msg], in delivery order *)
}

(** Total packets sent, both directions — the quantity Theorem 5.1
    bounds. *)
val total_packets : t -> int

(** Total distinct headers, both directions. *)
val total_headers : t -> int

(** (median, p95, max) delivery latency in rounds; [None] if nothing was
    delivered. *)
val latency_percentiles : t -> (float * float * int) option

(** The metrics as a JSON value — the payload behind [nfc simulate
    --json], the campaign/bench tooling and the [/v1/simulate] service
    endpoint. *)
val json : t -> Nfc_util.Json.t

(** [Nfc_util.Json.to_string (json t)] — single-line rendering. *)
val to_json : t -> string

val pp : Format.formatter -> t -> unit
