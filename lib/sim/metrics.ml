type t = {
  submitted : int;
  delivered : int;
  rounds : int;
  pkts_tr_sent : int;
  pkts_tr_received : int;
  pkts_tr_dropped : int;
  pkts_rt_sent : int;
  pkts_rt_received : int;
  pkts_rt_dropped : int;
  headers_tr : int;
  headers_rt : int;
  max_in_transit_tr : int;
  max_in_transit_rt : int;
  max_sender_space_bits : int;
  max_receiver_space_bits : int;
  completed : bool;
  dl_violation : string option;
  pl_violation : string option;
  latencies : int array;
}

let total_packets t = t.pkts_tr_sent + t.pkts_rt_sent
let total_headers t = t.headers_tr + t.headers_rt

let latency_percentiles t =
  if Array.length t.latencies = 0 then None
  else begin
    let sorted = Array.copy t.latencies in
    Array.sort compare sorted;
    let n = Array.length sorted in
    let at p =
      let rank = p *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = min (n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      (float_of_int sorted.(lo) *. (1.0 -. frac)) +. (float_of_int sorted.(hi) *. frac)
    in
    Some (at 0.5, at 0.95, sorted.(n - 1))
  end

let json t =
  let module J = Nfc_util.Json in
  let latency =
    match latency_percentiles t with
    | None -> J.Null
    | Some (p50, p95, worst) ->
        J.Obj [ ("p50", J.Float p50); ("p95", J.Float p95); ("max", J.Int worst) ]
  in
  J.Obj
    [
         ("submitted", J.Int t.submitted);
         ("delivered", J.Int t.delivered);
         ("rounds", J.Int t.rounds);
         ("completed", J.Bool t.completed);
         ( "tr",
           J.Obj
             [
               ("sent", J.Int t.pkts_tr_sent);
               ("received", J.Int t.pkts_tr_received);
               ("dropped", J.Int t.pkts_tr_dropped);
               ("headers", J.Int t.headers_tr);
               ("max_in_transit", J.Int t.max_in_transit_tr);
             ] );
         ( "rt",
           J.Obj
             [
               ("sent", J.Int t.pkts_rt_sent);
               ("received", J.Int t.pkts_rt_received);
               ("dropped", J.Int t.pkts_rt_dropped);
               ("headers", J.Int t.headers_rt);
               ("max_in_transit", J.Int t.max_in_transit_rt);
             ] );
         ("max_sender_space_bits", J.Int t.max_sender_space_bits);
         ("max_receiver_space_bits", J.Int t.max_receiver_space_bits);
         ("latency_rounds", latency);
         ("dl_violation", J.opt (fun v -> J.String v) t.dl_violation);
         ("pl_violation", J.opt (fun v -> J.String v) t.pl_violation);
       ]

let to_json t = Nfc_util.Json.to_string (json t)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>messages: %d submitted, %d delivered (%s) in %d rounds@,\
     packets t->r: %d sent, %d received, %d dropped (headers %d, max transit %d)@,\
     packets r->t: %d sent, %d received, %d dropped (headers %d, max transit %d)@,\
     space bits: sender <= %d, receiver <= %d%a%a%a@]"
    t.submitted t.delivered
    (if t.completed then "complete" else "incomplete")
    t.rounds t.pkts_tr_sent t.pkts_tr_received t.pkts_tr_dropped t.headers_tr
    t.max_in_transit_tr t.pkts_rt_sent t.pkts_rt_received t.pkts_rt_dropped t.headers_rt
    t.max_in_transit_rt t.max_sender_space_bits t.max_receiver_space_bits
    (fun ppf m ->
      match latency_percentiles m with
      | None -> ()
      | Some (p50, p95, worst) ->
          Format.fprintf ppf "@,latency rounds: p50=%.0f p95=%.0f max=%d" p50 p95 worst)
    t
    (fun ppf -> function
      | None -> ()
      | Some v -> Format.fprintf ppf "@,DL VIOLATION: %s" v)
    t.dl_violation
    (fun ppf -> function
      | None -> ()
      | Some v -> Format.fprintf ppf "@,PL VIOLATION: %s" v)
    t.pl_violation
