open Nfc_automata
module Transit = Nfc_channel.Transit
module Policy = Nfc_channel.Policy
module Pl_check = Nfc_channel.Pl_check
module Spec = Nfc_protocol.Spec

type config = {
  policy_tr : Policy.t;
  policy_rt : Policy.t;
  n_messages : int;
  submit_every : int;
  max_rounds : int;
  seed : int;
  record_trace : bool;
  sender_polls : int;
  receiver_polls : int;
  stop_when_delivered : bool;
  grace_rounds : int;
  stall_rounds : int option;
}

let default_config =
  {
    policy_tr = Policy.uniform_reorder ~deliver:0.9 ~drop:0.0;
    policy_rt = Policy.uniform_reorder ~deliver:0.9 ~drop:0.0;
    n_messages = 10;
    submit_every = 0;
    max_rounds = 100_000;
    seed = 1;
    record_trace = false;
    sender_polls = 1;
    receiver_polls = 2;
    stop_when_delivered = true;
    grace_rounds = 50;
    stall_rounds = None;
  }

type result = { metrics : Metrics.t; trace : Execution.t option }

let run (module P : Spec.S) cfg =
  if cfg.n_messages < 0 then invalid_arg "Harness.run: n_messages must be >= 0";
  if cfg.max_rounds < 1 then invalid_arg "Harness.run: max_rounds must be >= 1";
  let rng = Nfc_util.Rng.of_int cfg.seed in
  let rng_tr = Nfc_util.Rng.split rng in
  let rng_rt = Nfc_util.Rng.split rng in
  let sender = ref P.sender_init in
  let receiver = ref P.receiver_init in
  let tr = Transit.create () in
  let rt = Transit.create () in
  let dl = Dl_check.create () in
  (* A duplicating channel intentionally breaks strict PL1 (two receives of
     one send); hold such runs to the relaxed PL1' obligation instead. *)
  let pl_mode =
    if cfg.policy_tr.Policy.duplicative || cfg.policy_rt.Policy.duplicative then
      Pl_check.Relaxed
    else Pl_check.Strict
  in
  let pl = Pl_check.create ~mode:pl_mode () in
  let trace = ref [] in
  let record a =
    if cfg.record_trace then trace := a :: !trace;
    ignore (Dl_check.on_action dl a);
    ignore (Pl_check.on_action pl a)
  in
  let submitted = ref 0 in
  let delivered = ref 0 in
  let rounds = ref 0 in
  let last_progress = ref 0 in
  let submit_round : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let latencies = ref [] in
  let max_transit_tr = ref 0 in
  let max_transit_rt = ref 0 in
  let max_sender_space = ref (P.sender_space_bits !sender) in
  let max_receiver_space = ref (P.receiver_space_bits !receiver) in
  let process_tr_events events =
    List.iter
      (fun ev ->
        match ev with
        | Policy.Delivered (_, pkt) ->
            record (Action.Receive_pkt (Action.T_to_r, pkt));
            receiver := P.on_data !receiver pkt
        | Policy.Dropped (_, pkt) -> record (Action.Drop_pkt (Action.T_to_r, pkt)))
      events
  in
  let process_rt_events events =
    List.iter
      (fun ev ->
        match ev with
        | Policy.Delivered (_, pkt) ->
            record (Action.Receive_pkt (Action.R_to_t, pkt));
            sender := P.on_ack !sender pkt
        | Policy.Dropped (_, pkt) -> record (Action.Drop_pkt (Action.R_to_t, pkt)))
      events
  in
  let submit () =
    record (Action.Send_msg !submitted);
    Hashtbl.replace submit_round !submitted !rounds;
    incr submitted;
    sender := P.on_submit !sender
  in
  let sender_turn () =
    match P.sender_poll !sender with
    | None, s -> sender := s
    | Some pkt, s ->
        sender := s;
        record (Action.Send_pkt (Action.T_to_r, pkt));
        let tag = Transit.send tr pkt in
        process_tr_events (cfg.policy_tr.Policy.on_send rng_tr tr ~tag ~pkt)
  in
  let receiver_turn () =
    match P.receiver_poll !receiver with
    | None, r -> receiver := r
    | Some Spec.Rdeliver, r ->
        receiver := r;
        record (Action.Receive_msg !delivered);
        (match Hashtbl.find_opt submit_round !delivered with
        | Some r0 -> latencies := (!rounds - r0) :: !latencies
        | None -> () (* phantom: no submission to measure against *));
        incr delivered;
        last_progress := !rounds
    | Some (Spec.Rsend pkt), r ->
        receiver := r;
        record (Action.Send_pkt (Action.R_to_t, pkt));
        let tag = Transit.send rt pkt in
        process_rt_events (cfg.policy_rt.Policy.on_send rng_rt rt ~tag ~pkt)
  in
  (* After all messages are delivered, keep simulating for [grace_rounds] so
     that delayed stale packets still in transit get a chance to cause the
     phantom (n+1)-th delivery a faulty protocol would produce. *)
  let grace_started_at = ref None in
  let stalled () =
    match cfg.stall_rounds with
    | None -> false
    | Some s -> !rounds - !last_progress >= s
  in
  let finished () =
    Dl_check.violated dl <> None
    || Pl_check.violated pl <> None
    || stalled ()
    ||
    if cfg.stop_when_delivered && !delivered >= cfg.n_messages && !submitted >= cfg.n_messages
    then begin
      match !grace_started_at with
      | None ->
          grace_started_at := Some !rounds;
          cfg.grace_rounds <= 0
      | Some r0 -> !rounds - r0 >= cfg.grace_rounds
    end
    else false
  in
  while (not (finished ())) && !rounds < cfg.max_rounds do
    let round = !rounds in
    if cfg.submit_every = 0 then begin
      if round = 0 then
        for _ = 1 to cfg.n_messages do
          submit ()
        done
    end
    else if !submitted < cfg.n_messages && round mod cfg.submit_every = 0 then submit ();
    for _ = 1 to cfg.sender_polls do
      sender_turn ()
    done;
    process_tr_events (cfg.policy_tr.Policy.on_poll rng_tr tr);
    for _ = 1 to cfg.receiver_polls do
      receiver_turn ()
    done;
    process_rt_events (cfg.policy_rt.Policy.on_poll rng_rt rt);
    max_transit_tr := max !max_transit_tr (Transit.in_transit tr);
    max_transit_rt := max !max_transit_rt (Transit.in_transit rt);
    max_sender_space := max !max_sender_space (P.sender_space_bits !sender);
    max_receiver_space := max !max_receiver_space (P.receiver_space_bits !receiver);
    incr rounds
  done;
  let metrics =
    {
      Metrics.submitted = !submitted;
      delivered = !delivered;
      rounds = !rounds;
      pkts_tr_sent = Transit.sent_total tr;
      pkts_tr_received = Transit.delivered_total tr;
      pkts_tr_dropped = Transit.dropped_total tr;
      pkts_rt_sent = Transit.sent_total rt;
      pkts_rt_received = Transit.delivered_total rt;
      pkts_rt_dropped = Transit.dropped_total rt;
      headers_tr = Transit.distinct_sent tr;
      headers_rt = Transit.distinct_sent rt;
      max_in_transit_tr = !max_transit_tr;
      max_in_transit_rt = !max_transit_rt;
      max_sender_space_bits = !max_sender_space;
      max_receiver_space_bits = !max_receiver_space;
      completed =
        Dl_check.violated dl = None
        && Pl_check.violated pl = None
        && !delivered = cfg.n_messages
        && !submitted = cfg.n_messages;
      dl_violation = Dl_check.violated dl;
      pl_violation = Pl_check.violated pl;
      latencies = Array.of_list (List.rev !latencies);
    }
  in
  { metrics; trace = (if cfg.record_trace then Some (List.rev !trace) else None) }
