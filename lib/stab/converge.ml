(** Self-stabilization analysis: legitimate set, corrupted-start
    convergence distances, and the SS1/SS2 obligations (DESIGN 5.15).

    The legitimate set L is the reachable set of the bounded system (the
    closure obligation is discharged by construction when the sweep
    completes: L is a reachable fixpoint, and recovery moves — everything
    but user submissions — are a subset of the moves L was closed
    under).  Corruption follows the transient-fault model of Dolev-style
    self-stabilization (arXiv 2006.05901), restricted to the protocol's
    own state space: a corrupted start is any product of an observed
    sender state, an observed receiver state, and arbitrary channel
    multisets over the observed packet alphabet within the capacity
    bounds.  Convergence is autonomous — the recovery relation has a
    zero submission budget, so the system must re-enter L without fresh
    user input.

    Every sweep runs POR-off: the lazy-drop reduction preserves verdicts
    but not the exact configuration set, and legitimacy is membership in
    that set.

    Determinism contract: every field of {!report} — including witness
    traces and configuration prints — is byte-identical at any [domains]
    count.  Station states and the packet alphabet are read off the
    (deterministic) configuration lists, never off the interner, whose
    id assignment order is racy under parallel exploration. *)

module Explore = Nfc_mcheck.Explore
module Pvec = Nfc_mcheck.Pvec
module Spec = Nfc_protocol.Spec
module Action = Nfc_automata.Action
module Json = Nfc_util.Json

type cfg = {
  bounds : Explore.bounds;
      (** legitimate-set sweep bounds; [por] is forced off and
          [submit_budget] zeroed for the recovery sweeps *)
  state_cap : int;  (** per-side clamp on station states entering products *)
  max_starts : int;  (** clamp on enumerated corrupted starts *)
  recovery_nodes : int;  (** node budget for each recovery sweep *)
}

let default_cfg =
  {
    bounds =
      {
        Explore.capacity_tr = 1;
        capacity_rt = 1;
        submit_budget = 2;
        max_nodes = 100_000;
        allow_drop = true;
        por = false;
      };
    state_cap = 48;
    max_starts = 60_000;
    recovery_nodes = 300_000;
  }

type verdict = Pass | Fail | Unknown

let verdict_to_string = function Pass -> "pass" | Fail -> "fail" | Unknown -> "unknown"

(** Result of one multi-seed convergence measurement (shared by the SS1
    corrupted-start analysis and the SS2 duplication-exit analysis). *)
type convergence = {
  seeds_analyzed : int;
  explored : int;  (** recovery sweep size (seeds + their closure) *)
  sweep_truncated : bool;
  converged : int;
  divergent : int;  (** seeds with no path into L within the budget *)
  bound : int;  (** max distance-to-L over converged seeds (0 if none) *)
  witness_start : string option;  (** the max-distance seed, printed *)
  witness : string list;  (** a distance-decreasing move sequence into L *)
  divergent_start : string option;  (** first divergent seed, printed *)
  divergent_stuck : bool;  (** that seed has no recovery moves at all *)
}

type report = {
  protocol : string;
  capacity_tr : int;
  capacity_rt : int;
  submit_budget : int;
  legit_budget : int;
  recovery_budget : int;
  legit_configs : int;
  legit_closed : bool;  (** the legitimate sweep completed (not truncated) *)
  sender_states : int;
  receiver_states : int;
  states_clamped : bool;
  alphabet : int list;  (** packet values observable in legitimate channels *)
  starts_enumerated : int;  (** full corrupted product size *)
  starts_truncated : bool;
  ss1 : verdict;
  ss1_reason : string;
  ss1_convergence : convergence option;  (** [None] only when L is empty *)
  dup_exits : int;  (** duplication successors leaving L *)
  ss2 : verdict;
  ss2_reason : string;
  ss2_convergence : convergence option;  (** the dup-exit re-convergence run *)
}

let analyze ?(domains = 1) (spec : Spec.t) cfg =
  let module P = (val spec : Spec.S) in
  let module E = Explore.Make (P) in
  if cfg.bounds.Explore.max_nodes < 1 then invalid_arg "Converge.analyze: max_nodes must be >= 1";
  if cfg.recovery_nodes < 1 then invalid_arg "Converge.analyze: recovery_nodes must be >= 1";
  if cfg.state_cap < 1 then invalid_arg "Converge.analyze: state_cap must be >= 1";
  if cfg.max_starts < 1 then invalid_arg "Converge.analyze: max_starts must be >= 1";
  let lbounds = { cfg.bounds with Explore.por = false } in
  let rbounds =
    { lbounds with Explore.submit_budget = 0; max_nodes = cfg.recovery_nodes }
  in
  (* 1. The legitimate set. *)
  let lreach = E.reachable_set ~domains lbounds in
  let legit = Array.of_list lreach.E.configs in
  let legit_closed = not lreach.E.truncated in
  (* Full-configuration hashing; legitimacy lives on the counter-free
     projection, which we key as the configuration with zeroed counters. *)
  let module Ckey = struct
    type t = E.config

    let equal (a : t) (b : t) =
      a.E.sid = b.E.sid && a.E.rid = b.E.rid && a.E.submitted = b.E.submitted
      && a.E.delivered = b.E.delivered && Pvec.equal a.E.tr b.E.tr && Pvec.equal a.E.rt b.E.rt

    let hash (c : t) =
      Hashtbl.hash (c.E.sid, c.E.rid, c.E.submitted, c.E.delivered, Pvec.hash c.E.tr, Pvec.hash c.E.rt)
  end in
  let module Ctbl = Hashtbl.Make (Ckey) in
  let proj (c : E.config) = { c with E.submitted = 0; delivered = 0 } in
  let lset = Ctbl.create (Array.length legit * 2) in
  Array.iter (fun c -> Ctbl.replace lset (proj c) ()) legit;
  let legitimate c = Ctbl.mem lset (proj c) in
  (* 2. Observed station states (first-occurrence order in the
     deterministic BFS configuration list) and the observed channel
     alphabet (value order). *)
  let collect_states id_of state_of =
    let seen = Hashtbl.create 64 in
    let out = ref [] and total = ref 0 in
    Array.iter
      (fun c ->
        let id = id_of c in
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.replace seen id ();
          incr total;
          if !total <= cfg.state_cap then out := (state_of c, id) :: !out
        end)
      legit;
    (List.rev !out, !total)
  in
  let senders, n_senders = collect_states (fun c -> c.E.sid) (fun c -> c.E.sender) in
  let receivers, n_receivers = collect_states (fun c -> c.E.rid) (fun c -> c.E.receiver) in
  let states_clamped = n_senders > cfg.state_cap || n_receivers > cfg.state_cap in
  let alphabet =
    let module Iset = Set.Make (Int) in
    let add_channel pkts acc = List.fold_left (fun acc (v, _) -> Iset.add v acc) acc pkts in
    let vs =
      Array.fold_left
        (fun acc c -> add_channel (E.packets_tr c) (add_channel (E.packets_rt c) acc))
        Iset.empty legit
    in
    Iset.elements vs
  in
  let alphabet_ids = List.map (fun v -> Pvec.Index.id E.pkts v) alphabet in
  (* 3. Corrupted starts: observed station products x channel multisets
     of cardinality <= capacity over the observed alphabet.  Enumeration
     order (senders, receivers, forward then reverse multisets, each
     depth-first by value order) is deterministic; the clamp keeps a
     deterministic prefix. *)
  let multisets cap =
    let ids = Array.of_list alphabet_ids in
    let out = ref [] in
    let rec go i v size =
      out := v :: !out;
      if size < cap then
        for j = i to Array.length ids - 1 do
          go j (Pvec.add v ids.(j)) (size + 1)
        done
    in
    go 0 Pvec.empty 0;
    List.rev !out
  in
  let msets_tr = multisets lbounds.Explore.capacity_tr in
  let msets_rt = multisets lbounds.Explore.capacity_rt in
  let starts_enumerated =
    List.length senders * List.length receivers * List.length msets_tr * List.length msets_rt
  in
  let seeds =
    let out = ref [] and count = ref 0 in
    (try
       List.iter
         (fun (s, sid) ->
           List.iter
             (fun (r, rid) ->
               List.iter
                 (fun tr ->
                   List.iter
                     (fun rt ->
                       if !count >= cfg.max_starts then raise Exit;
                       incr count;
                       out :=
                         { E.sender = s; sid; receiver = r; rid; tr; rt; submitted = 0; delivered = 0 }
                         :: !out)
                     msets_rt)
                 msets_tr)
             receivers)
         senders
     with Exit -> ());
    List.rev !out
  in
  let starts_truncated = starts_enumerated > List.length seeds in
  let pp_config (c : E.config) =
    let pp_chan ppf pkts =
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
        (fun ppf (v, n) -> if n = 1 then Format.fprintf ppf "%d" v else Format.fprintf ppf "%dx%d" v n)
        ppf pkts
    in
    Format.asprintf "sender=%a receiver=%a tr=[%a] rt=[%a]" P.pp_sender c.E.sender P.pp_receiver
      c.E.receiver pp_chan (E.packets_tr c) pp_chan (E.packets_rt c)
  in
  (* One multi-seed convergence measurement: forward recovery sweep from
     the seeds, then distance-to-L by a backward BFS from the legitimate
     configurations over the explored graph.  Distances are relative to
     the explored subgraph — sound as convergence witnesses, upper
     bounds as distances; divergence is sound only when the sweep was
     not truncated. *)
  let measure seeds =
    let n_seeds = List.length seeds in
    let rreach = E.from_configs ~domains ~seeds rbounds in
    let v = Array.of_list rreach.E.configs in
    let n = Array.length v in
    let idx = Ctbl.create (n * 2) in
    Array.iteri (fun i c -> Ctbl.replace idx c i) v;
    let preds = Array.make n [] in
    let inl = Array.make n false in
    Array.iteri
      (fun i c ->
        inl.(i) <- legitimate c;
        E.iter_successors rbounds c (fun _a c' ->
            match Ctbl.find_opt idx c' with
            | Some j -> preds.(j) <- i :: preds.(j)
            | None -> () (* cut by truncation *)))
      v;
    let dist = Array.make n max_int in
    let q = Queue.create () in
    Array.iteri
      (fun i flag ->
        if flag then begin
          dist.(i) <- 0;
          Queue.add i q
        end)
      inl;
    while not (Queue.is_empty q) do
      let j = Queue.pop q in
      List.iter
        (fun i ->
          if dist.(i) = max_int then begin
            dist.(i) <- dist.(j) + 1;
            Queue.add i q
          end)
        preds.(j)
    done;
    (* Seeds occupy the first [min n_seeds n] slots of the BFS list, in
       enumeration order. *)
    let n_seeded = min n_seeds n in
    let converged = ref 0 and divergent = ref 0 in
    let bound = ref 0 and argmax = ref (-1) and first_div = ref (-1) in
    for i = 0 to n_seeded - 1 do
      if dist.(i) = max_int then begin
        incr divergent;
        if !first_div < 0 then first_div := i
      end
      else begin
        incr converged;
        if dist.(i) > !bound then begin
          bound := dist.(i);
          argmax := i
        end
      end
    done;
    let witness =
      if !argmax < 0 then []
      else begin
        let steps = ref [] in
        let i = ref !argmax in
        (try
           while dist.(!i) > 0 do
             let next = ref None in
             E.iter_successors rbounds v.(!i) (fun a c' ->
                 match !next with
                 | Some _ -> ()
                 | None -> (
                     match Ctbl.find_opt idx c' with
                     | Some j when dist.(j) = dist.(!i) - 1 -> next := Some (a, j)
                     | _ -> ()));
             match !next with
             | Some (a, j) ->
                 steps :=
                   (match a with Some a -> Action.to_string a | None -> "tick") :: !steps;
                 i := j
             | None -> raise Exit (* unreachable for finite distances *)
           done
         with Exit -> ());
        List.rev !steps
      end
    in
    let stuck i =
      let any = ref false in
      E.iter_successors rbounds v.(i) (fun _ _ -> any := true);
      not !any
    in
    {
      seeds_analyzed = n_seeded;
      explored = n;
      sweep_truncated = rreach.E.truncated;
      converged = !converged;
      divergent = !divergent;
      bound = !bound;
      witness_start = (if !argmax >= 0 then Some (pp_config v.(!argmax)) else None);
      witness;
      divergent_start = (if !first_div >= 0 then Some (pp_config v.(!first_div)) else None);
      divergent_stuck = (if !first_div >= 0 then stuck !first_div else false);
    }
  in
  (* 4. SS1: closure + convergence of every corrupted start. *)
  let ss1_conv = if seeds = [] then None else Some (measure seeds) in
  let ss1, ss1_reason =
    match ss1_conv with
    | None -> (Unknown, "no corrupted starts enumerable (empty legitimate set)")
    | Some cv ->
        if not legit_closed then
          ( Fail,
            Printf.sprintf
              "legitimate set did not close within %d nodes (station state grows without \
               bound); %d of %d corrupted starts diverge from the explored set%s"
              lbounds.Explore.max_nodes cv.divergent cv.seeds_analyzed
              (if cv.divergent_stuck then ", the first of them with no recovery move at all"
               else "") )
        else if cv.divergent > 0 && not cv.sweep_truncated then
          ( Fail,
            Printf.sprintf "%d of %d corrupted starts cannot reach the legitimate set"
              cv.divergent cv.seeds_analyzed )
        else if cv.divergent > 0 then
          ( Unknown,
            Printf.sprintf
              "%d corrupted starts unconverged within the %d-node recovery budget" cv.divergent
              cfg.recovery_nodes )
        else if starts_truncated || states_clamped then
          ( Unknown,
            Printf.sprintf
              "all %d analyzed corrupted starts converge (max distance %d) but the corrupted \
               product was clamped (%d enumerable)"
              cv.seeds_analyzed cv.bound starts_enumerated )
        else
          ( Pass,
            Printf.sprintf
              "closed legitimate set of %d configurations; all %d corrupted starts converge \
               within %d moves"
              (Array.length legit) cv.seeds_analyzed cv.bound )
  in
  (* 5. SS2: convergence preserved under duplication.  A duplication
     move redelivers an in-transit packet without consuming it; applied
     inside L it can exit L (the extra receipt is not part of any
     legitimate run).  SS2 requires every such exit to re-converge
     autonomously.  Duplications only add edges to the recovery
     relation, and added edges can only shorten distances — so given
     SS1, the one new obligation is exactly the re-convergence of the
     exit states. *)
  let dup_exit_seeds =
    if ss1 <> Pass then []
    else begin
      let seen = Ctbl.create 256 in
      let out = ref [] in
      Array.iter
        (fun c ->
          let consider c' =
            if not (legitimate c') then begin
              let key = proj c' in
              if not (Ctbl.mem seen key) then begin
                Ctbl.replace seen key ();
                out := key :: !out
              end
            end
          in
          List.iter
            (fun (v, _) ->
              let r', rid' = E.step_data c.E.receiver c.E.rid v in
              if rid' <> c.E.rid then consider { c with E.receiver = r'; rid = rid' })
            (E.packets_tr c);
          List.iter
            (fun (v, _) ->
              let s', sid' = E.step_ack c.E.sender c.E.sid v in
              if sid' <> c.E.sid then consider { c with E.sender = s'; sid = sid' })
            (E.packets_rt c))
        legit;
      List.rev !out
    end
  in
  let ss2_conv = if dup_exit_seeds = [] then None else Some (measure dup_exit_seeds) in
  let ss2, ss2_reason =
    match ss1 with
    | Fail -> (Fail, "fault-free convergence already fails (SS1)")
    | Unknown -> (Unknown, "SS1 undetermined, duplication analysis not attempted")
    | Pass -> (
        match ss2_conv with
        | None ->
            (Pass, "the legitimate set is closed under duplicate delivery (no exit states)")
        | Some cv ->
            if cv.divergent > 0 && not cv.sweep_truncated then
              ( Fail,
                Printf.sprintf
                  "%d of %d duplication exits cannot re-enter the legitimate set" cv.divergent
                  cv.seeds_analyzed )
            else if cv.divergent > 0 then
              ( Unknown,
                Printf.sprintf
                  "%d duplication exits unconverged within the %d-node recovery budget"
                  cv.divergent cfg.recovery_nodes )
            else
              ( Pass,
                Printf.sprintf
                  "all %d duplication exits re-converge within %d moves" cv.seeds_analyzed
                  cv.bound ))
  in
  {
    protocol = P.name;
    capacity_tr = lbounds.Explore.capacity_tr;
    capacity_rt = lbounds.Explore.capacity_rt;
    submit_budget = lbounds.Explore.submit_budget;
    legit_budget = lbounds.Explore.max_nodes;
    recovery_budget = cfg.recovery_nodes;
    legit_configs = Array.length legit;
    legit_closed;
    sender_states = n_senders;
    receiver_states = n_receivers;
    states_clamped;
    alphabet;
    starts_enumerated;
    starts_truncated;
    ss1;
    ss1_reason;
    ss1_convergence = ss1_conv;
    dup_exits = List.length dup_exit_seeds;
    ss2;
    ss2_reason;
    ss2_convergence = ss2_conv;
  }

let convergence_bound r =
  match (r.ss1, r.ss1_convergence) with Pass, Some cv -> Some cv.bound | _ -> None

let ss2_bound r =
  match (r.ss2, r.ss2_convergence) with
  | Pass, Some cv -> Some cv.bound
  | Pass, None -> Some 0
  | _ -> None

let conv_to_json cv =
  Json.Obj
    [
      ("seeds", Json.Int cv.seeds_analyzed);
      ("explored", Json.Int cv.explored);
      ("truncated", Json.Bool cv.sweep_truncated);
      ("converged", Json.Int cv.converged);
      ("divergent", Json.Int cv.divergent);
      ("bound", Json.Int cv.bound);
      ("witness_start", Json.opt (fun s -> Json.String s) cv.witness_start);
      ("witness", Json.List (List.map (fun s -> Json.String s) cv.witness));
      ("divergent_start", Json.opt (fun s -> Json.String s) cv.divergent_start);
      ("divergent_stuck", Json.Bool cv.divergent_stuck);
    ]

(* Provenance note: unlike the lint certificate, this record carries no
   engine_domains field — stabilization reports are byte-identical at
   any domain count, and the CI gate diffs them without normalization. *)
let to_json r =
  Json.Obj
    [
      ("protocol", Json.String r.protocol);
      ("capacity_tr", Json.Int r.capacity_tr);
      ("capacity_rt", Json.Int r.capacity_rt);
      ("submit_budget", Json.Int r.submit_budget);
      ("legit_budget", Json.Int r.legit_budget);
      ("recovery_budget", Json.Int r.recovery_budget);
      ("legitimate_configs", Json.Int r.legit_configs);
      ("legitimate_closed", Json.Bool r.legit_closed);
      ("sender_states", Json.Int r.sender_states);
      ("receiver_states", Json.Int r.receiver_states);
      ("states_clamped", Json.Bool r.states_clamped);
      ("alphabet", Json.List (List.map (fun v -> Json.Int v) r.alphabet));
      ("corrupted_starts", Json.Int r.starts_enumerated);
      ("starts_truncated", Json.Bool r.starts_truncated);
      ("ss1", Json.String (verdict_to_string r.ss1));
      ("ss1_reason", Json.String r.ss1_reason);
      ("ss1_convergence", Json.opt conv_to_json r.ss1_convergence);
      ("convergence_bound", Json.opt (fun b -> Json.Int b) (convergence_bound r));
      ("dup_exits", Json.Int r.dup_exits);
      ("ss2", Json.String (verdict_to_string r.ss2));
      ("ss2_reason", Json.String r.ss2_reason);
      ("ss2_convergence", Json.opt conv_to_json r.ss2_convergence);
      ("ss2_bound", Json.opt (fun b -> Json.Int b) (ss2_bound r));
    ]

let pp ppf r =
  Format.fprintf ppf "@[<v>%s: stabilization over capacity %d/%d, %d submits@," r.protocol
    r.capacity_tr r.capacity_rt r.submit_budget;
  Format.fprintf ppf "legitimate set: %d configurations (%s)@," r.legit_configs
    (if r.legit_closed then "closed" else "NOT closed within budget");
  Format.fprintf ppf "corrupted starts: %d enumerated (%d sender x %d receiver states%s)%s@,"
    r.starts_enumerated r.sender_states r.receiver_states
    (if r.states_clamped then ", clamped" else "")
    (if r.starts_truncated then " [truncated]" else "");
  (match r.ss1_convergence with
  | Some cv ->
      Format.fprintf ppf "recovery sweep: %d configurations%s; %d converged, %d divergent@,"
        cv.explored
        (if cv.sweep_truncated then " [truncated]" else "")
        cv.converged cv.divergent
  | None -> ());
  Format.fprintf ppf "SS1 %s: %s@," (verdict_to_string r.ss1) r.ss1_reason;
  (match (r.ss1, r.ss1_convergence) with
  | Pass, Some cv ->
      (match cv.witness_start with
      | Some s -> Format.fprintf ppf "worst corrupted start (distance %d): %s@," cv.bound s
      | None -> ());
      if cv.witness <> [] then begin
        Format.fprintf ppf "recovery witness:@,";
        List.iteri (fun i step -> Format.fprintf ppf "  %2d. %s@," (i + 1) step) cv.witness
      end
  | _, Some cv -> (
      match cv.divergent_start with
      | Some s ->
          Format.fprintf ppf "divergent corrupted start%s: %s@,"
            (if cv.divergent_stuck then " (stuck: no recovery move)" else "")
            s
      | None -> ())
  | _, None -> ());
  Format.fprintf ppf "SS2 %s: %s" (verdict_to_string r.ss2) r.ss2_reason
