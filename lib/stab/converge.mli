(** Self-stabilization analysis: legitimate set, corrupted-start
    convergence distances, and the SS1/SS2 obligations (DESIGN 5.15).

    The legitimate set L is the reachable set of the bounded system; a
    corrupted start is any product of an observed sender state, an
    observed receiver state and arbitrary channel multisets over the
    observed packet alphabet within the capacity bounds (the
    transient-fault model of arXiv 2006.05901 restricted to the
    protocol's own state space).  Convergence is autonomous: the
    recovery relation has a zero submission budget.

    - {b SS1} (closure + convergence): L must close within the node
      budget and every corrupted start must reach L; the certified bound
      is the worst distance, with a distance-decreasing witness trace.
    - {b SS2} (fault resilience, after arXiv 1011.3632): a duplicate
      delivery — a station step on an in-transit packet that is not
      consumed — applied inside L may exit L; every such exit must
      re-converge.  Duplication edges only shorten recovery distances,
      so given SS1 the exits are the single new obligation.

    Every field of a {!report}, including witness traces, is
    byte-identical at any [domains] count. *)

type cfg = {
  bounds : Nfc_mcheck.Explore.bounds;
      (** legitimate-set sweep bounds; [por] is forced off and
          [submit_budget] zeroed for the recovery sweeps *)
  state_cap : int;  (** per-side clamp on station states entering products *)
  max_starts : int;  (** clamp on enumerated corrupted starts *)
  recovery_nodes : int;  (** node budget for each recovery sweep *)
}

val default_cfg : cfg

type verdict = Pass | Fail | Unknown

val verdict_to_string : verdict -> string

(** Result of one multi-seed convergence measurement (the SS1
    corrupted-start run, and the SS2 duplication-exit run). *)
type convergence = {
  seeds_analyzed : int;
  explored : int;  (** recovery sweep size (seeds + their closure) *)
  sweep_truncated : bool;
  converged : int;
  divergent : int;  (** seeds with no path into L within the budget *)
  bound : int;  (** max distance-to-L over converged seeds (0 if none) *)
  witness_start : string option;  (** the max-distance seed, printed *)
  witness : string list;  (** a distance-decreasing move sequence into L *)
  divergent_start : string option;  (** first divergent seed, printed *)
  divergent_stuck : bool;  (** that seed has no recovery moves at all *)
}

type report = {
  protocol : string;
  capacity_tr : int;
  capacity_rt : int;
  submit_budget : int;
  legit_budget : int;
  recovery_budget : int;
  legit_configs : int;
  legit_closed : bool;  (** the legitimate sweep completed (not truncated) *)
  sender_states : int;
  receiver_states : int;
  states_clamped : bool;
  alphabet : int list;  (** packet values observable in legitimate channels *)
  starts_enumerated : int;  (** full corrupted product size *)
  starts_truncated : bool;
  ss1 : verdict;
  ss1_reason : string;
  ss1_convergence : convergence option;  (** [None] only when L is empty *)
  dup_exits : int;  (** duplication successors leaving L *)
  ss2 : verdict;
  ss2_reason : string;
  ss2_convergence : convergence option;  (** the dup-exit re-convergence run *)
}

(** Run the full analysis.  [domains] selects the parallel exploration
    engine for both the legitimate and the recovery sweeps; the report
    is byte-identical at any value. *)
val analyze : ?domains:int -> Nfc_protocol.Spec.t -> cfg -> report

(** The certified SS1 convergence bound — [Some] exactly when SS1 passed. *)
val convergence_bound : report -> int option

(** The certified SS2 re-convergence bound — [Some] exactly when SS2
    passed ([Some 0] when L is closed under duplication). *)
val ss2_bound : report -> int option

(** Machine-readable report.  Deliberately carries no engine-domains
    provenance: the CI determinism gate byte-diffs two runs without
    normalization. *)
val to_json : report -> Nfc_util.Json.t

val pp : Format.formatter -> report -> unit
