(** ω-extended packet-count vectors — the abstract channel domain of the
    coverability engine.

    An {!t} is a {!Nfc_mcheck.Pvec.t} whose per-packet counts may also be
    ω ("arbitrarily many copies of this packet are in transit").  The
    order is the pointwise count order with [n <= ω] for every finite
    [n]; it is exactly the simulation order of the non-FIFO channel under
    packet loss (PL2: any sub-multiset of an in-transit multiset is a
    possible channel content), which is what makes reachable sets
    downward-closed and coverability the right question
    ({!Cover}, DESIGN §5.8).

    Vectors are immutable and canonical (trailing zeros trimmed), so
    [equal] and [hash] are cheap int-array scans, like {!Nfc_mcheck.Pvec}.
    Indices are the dense packet ids of the engine's
    {!Nfc_mcheck.Pvec.Index} — an [Opvec.t] is only meaningful against the
    interner of the engine instance that produced it. *)

type t

(** The ω count.  Exposed for tests; never a meaningful finite count
    (it is [max_int], far above any reachable multiplicity). *)
val omega : int

(** ω-saturating sum on non-negative counts: [sat_add a ω = ω], and
    finite overflow also saturates to ω (an upper bound may only ever
    round up — results always stay in [0,ω]).  Shared
    with {!Nfc_specint}'s counter-abstraction intervals so spec-level
    widening uses exactly this module's ω encoding. *)
val sat_add : int -> int -> int

(** ω-saturating product; finite overflow also saturates to ω (an upper
    bound may only ever round up). *)
val sat_mul : int -> int -> int

val empty : t

(** Inject a concrete channel vector (all counts finite). *)
val of_pvec : Nfc_mcheck.Pvec.t -> t

(** Build from raw counts (entries may be {!omega}); negative counts are
    invalid.  Exposed for the law tests' generators. *)
val of_array : int array -> t

(** [count v id]: the multiplicity of [id], {!omega} when ω. *)
val count : t -> int -> int

val is_omega : t -> int -> bool

(** Number of ω coordinates. *)
val omega_count : t -> int

(** [add v id]: one more copy; ω absorbs ([add] at an ω coordinate is the
    identity). *)
val add : t -> int -> t

(** [remove_one v id]: one copy fewer, [None] when the count is 0.  An ω
    coordinate stays ω: removing one of "arbitrarily many" leaves
    arbitrarily many. *)
val remove_one : t -> int -> t option

(** Force coordinate [id] to ω. *)
val set_omega : t -> int -> t

(** Pointwise order: [le a b] iff every count of [a] is at most the
    corresponding count of [b] (ω only below ω). *)
val le : t -> t -> bool

val equal : t -> t -> bool
val hash : t -> int

(** Pointwise maximum — the least upper bound of the {!le} order. *)
val join : t -> t -> t

(** The Karp–Miller widening: [accelerate ~prev v] (for [le prev v] and
    [not (equal prev v)]) sets every coordinate where [v] strictly
    exceeds [prev] to ω — the pumping argument made a domain operator:
    the move sequence [prev → … → v] is repeatable (strong monotonicity),
    so those coordinates grow without bound. *)
val accelerate : prev:t -> t -> t

(** Ids with a positive (or ω) count, ascending. *)
val support : t -> int list

(** [fold f v acc] over (id, count) pairs with positive count, in id
    order; ω coordinates pass {!omega}. *)
val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

(** Prints as a [{id:count}] multiset with [ω] for ω counts, ids decoded
    through [packet] when given (e.g. [Pvec.Index.packet pkts]). *)
val pp : ?packet:(int -> int) -> Format.formatter -> t -> unit
