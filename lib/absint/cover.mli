(** Karp–Miller coverability over the protocol × non-FIFO-channel system —
    the budget-free analysis tier behind [nfc lint --complete] and
    [nfc cover].

    The bounded engine ({!Nfc_mcheck.Explore}) proves "no phantom within
    N explored nodes".  This engine answers the unbounded question for the
    channel dimensions: it explores with channel contents abstracted to
    {!Opvec} ω-vectors, {e accelerates} any configuration that strictly
    dominates an ancestor with the same station control (the dominated
    coordinates pump to ω — the repeatable-path argument of the
    Karp–Miller tree), and prunes configurations covered by an already
    retained one.  Because packet loss (PL2) makes reachable sets
    downward-closed and all moves are strongly monotone in the channel
    counts at unbounded capacity, the resulting cover set decides
    coverability questions — reachability of a phantom delivery, the
    exact reachable packet alphabet, existence of a stuck semi-valid
    control — for {e every} channel capacity and node budget at once
    (DESIGN §5.8 gives the WSTS argument).

    What keeps the fixpoint finite is the station control: channels are
    handled by Dickson's lemma, but stations that accumulate unbounded
    owed-work under ω inputs need the per-protocol saturation hooks
    ({!Nfc_protocol.Spec.S.cover_norm_sender}).  Protocols without hooks
    and genuinely unbounded station state (flood, afek3) hit the node cap
    and report [converged = false] — the documented downgrade path.

    A [Make] instantiation deliberately shares the engine instance [E] of
    the bounded run: interners, packet index, and transition memo tables
    are reused, so the cover pays no protocol calls for (state, input)
    pairs the bounded sweep already computed. *)

type stats = {
  converged : bool;
      (** the fixpoint was reached; [false] = node cap hit, results are
          a sound but incomplete prefix *)
  cover_size : int;  (** maximal (uncovered) elements retained *)
  iterations : int;  (** configurations expanded by the fixpoint loop *)
  accelerations : int;  (** ω-acceleration lemma instances applied *)
  accel_samples : string list;
      (** up to 8 rendered acceleration instances, earliest first *)
  omega_configs : int;  (** retained elements with at least one ω count *)
  pruned_covered : int;  (** generated configurations covered by the set *)
  phantom_coverable : bool;
      (** a phantom delivery (delivered > submitted) is coverable — by
          control-exactness of the Karp–Miller tree this means genuinely
          reachable at some capacity *)
  alphabet_tr : int list;  (** packets coverable in transit t->r *)
  alphabet_rt : int list;
  stuck_controls : int;
      (** distinct semi-valid station controls whose polls are silent and
          state-stable: by lossiness (drop everything in transit) each is
          reachable with empty channels, i.e. a genuinely stuck
          configuration *)
  stuck_witness : string option;
}

val pp_stats : Format.formatter -> stats -> unit

(** The stats as a JSON value — the [/v1/cover] service payload. *)
val stats_to_json : stats -> Nfc_util.Json.t

module Make (P : Nfc_protocol.Spec.S) (E : module type of Nfc_mcheck.Explore.Make (P)) : sig
  (** Run the coverability fixpoint under the given submission budget.
      [max_nodes] (default 200_000) caps the Karp–Miller tree as a
      divergence backstop. *)
  val run : ?max_nodes:int -> submit_budget:int -> unit -> stats
end
