(* ω-extended count vectors.  Representation: a canonical int array
   (trailing zeros trimmed) with ω encoded as [max_int]; the numeric
   order/max on counts then coincide with the ω-extended order/join, so
   [le]/[join]/[accelerate] are plain array scans. *)

let omega = max_int

(* ω-saturating arithmetic on counts, shared with the spec-level abstract
   interpreter (Nfc_specint) so its interval widening provably lands in
   the same ω-order this module's [le]/[join] use.  Arguments must be
   non-negative or ω. *)
let sat_add a b =
  if a = omega || b = omega then omega
  else
    let s = a + b in
    (* Two non-negative finite counts wrap negative exactly on native-int
       overflow; an upper bound may only round up, so saturate to ω. *)
    if s < 0 then omega else s

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a = omega || b = omega then omega
  else if a > omega / b then omega  (* overflow saturates, like ω *)
  else a * b

type t = { counts : int array }

let trim a =
  let len = ref (Array.length a) in
  while !len > 0 && a.(!len - 1) = 0 do
    decr len
  done;
  if !len = Array.length a then a else Array.sub a 0 !len

let empty = { counts = [||] }

let of_array a =
  Array.iter (fun c -> if c < 0 then invalid_arg "Opvec.of_array: negative count") a;
  { counts = trim (Array.copy a) }

(* Pvec arrays are already canonical and all-finite. *)
let of_pvec v = { counts = Nfc_mcheck.Pvec.to_array v }

let count t id = if id < Array.length t.counts then t.counts.(id) else 0
let is_omega t id = count t id = omega

let omega_count t =
  Array.fold_left (fun n c -> if c = omega then n + 1 else n) 0 t.counts

let grown t id =
  let len = max (id + 1) (Array.length t.counts) in
  let counts = Array.make len 0 in
  Array.blit t.counts 0 counts 0 (Array.length t.counts);
  counts

let add t id =
  let c = count t id in
  if c = omega then t
  else
    let counts = grown t id in
    counts.(id) <- c + 1;
    { counts }

let remove_one t id =
  match count t id with
  | 0 -> None
  | c when c = omega -> Some t
  | c ->
      let counts = Array.copy t.counts in
      counts.(id) <- c - 1;
      Some { counts = trim counts }

let set_omega t id =
  if is_omega t id then t
  else begin
    let counts = grown t id in
    counts.(id) <- omega;
    { counts }
  end

let le a b =
  (* Canonical trimming means a longer array has a positive top count. *)
  Array.length a.counts <= Array.length b.counts
  && (let ok = ref true in
      Array.iteri (fun i c -> if c > b.counts.(i) then ok := false) a.counts;
      !ok)

let equal a b =
  Array.length a.counts = Array.length b.counts
  && (let ok = ref true in
      Array.iteri (fun i c -> if c <> b.counts.(i) then ok := false) a.counts;
      !ok)

let hash t =
  let h = ref 17 in
  Array.iter (fun c -> h := (!h * 1000003) + c) t.counts;
  !h land max_int

let join a b =
  let short, long = if Array.length a.counts <= Array.length b.counts then (a, b) else (b, a) in
  let counts = Array.copy long.counts in
  Array.iteri (fun i c -> if c > counts.(i) then counts.(i) <- c) short.counts;
  { counts }

let accelerate ~prev t =
  (* Callers guarantee [le prev t]; coordinates that strictly grew along
     the repeatable path pump to ω. *)
  let counts = Array.copy t.counts in
  let changed = ref false in
  Array.iteri
    (fun i c ->
      if c <> omega && c > count prev i then begin
        counts.(i) <- omega;
        changed := true
      end)
    t.counts;
  if !changed then { counts } else t

let support t =
  List.rev
    (snd
       (Array.fold_left
          (fun (i, acc) c -> (i + 1, if c > 0 then i :: acc else acc))
          (0, []) t.counts))

let fold f t acc =
  let acc = ref acc in
  Array.iteri (fun id c -> if c > 0 then acc := f id c !acc) t.counts;
  !acc

let pp ?(packet = fun id -> id) ppf t =
  let items =
    fold
      (fun id c acc ->
        (if c = omega then Printf.sprintf "%d:ω" (packet id)
         else Printf.sprintf "%d:%d" (packet id) c)
        :: acc)
      t []
  in
  Format.fprintf ppf "{%s}" (String.concat ", " (List.rev items))
