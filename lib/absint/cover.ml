(* Karp–Miller coverability with ω-acceleration (see cover.mli and
   DESIGN §5.8).

   Soundness of the three analysis moves, all resting on strong
   monotonicity of the composed system in the channel counts (at
   unbounded capacity every submit/poll/send is channel-independent and a
   delivery needs only count >= 1, so c <= d and c -> c' imply d -> d'
   with c' <= d'):

   - acceleration: a successor strictly dominating a same-control
     ancestor witnesses a repeatable move sequence, so the grown
     coordinates are unbounded — set them to ω;
   - subsumption: a configuration covered by a retained one has no
     behaviour the coverer lacks — prune it;
   - drop elision: a post-drop configuration is <= its parent, hence
     covered by it — never generate drop moves (loss is instead read
     back through downward closure: every cover element also stands for
     all its sub-multisets).

   ω appears only in the channels; station controls in the tree are
   reached by genuine move sequences, which is what lets the phantom,
   alphabet, and stuck answers transfer back to concrete reachability. *)

module Spec = Nfc_protocol.Spec
module Pvec = Nfc_mcheck.Pvec
module Iset = Set.Make (Int)

type stats = {
  converged : bool;
  cover_size : int;
  iterations : int;
  accelerations : int;
  accel_samples : string list;
  omega_configs : int;
  pruned_covered : int;
  phantom_coverable : bool;
  alphabet_tr : int list;
  alphabet_rt : int list;
  stuck_controls : int;
  stuck_witness : string option;
}

let pp_stats ppf s =
  let alpha l = "{" ^ String.concat ", " (List.map string_of_int l) ^ "}" in
  Format.fprintf ppf
    "@[<v>%s: %d cover element(s), %d with ω, after %d iteration(s);@ %d acceleration(s), %d \
     covered configuration(s) pruned;@ phantom delivery %s; alphabet t->r %s, r->t %s; %d stuck \
     control(s)%s@]"
    (if s.converged then "fixpoint converged" else "fixpoint DIVERGED (node cap)")
    s.cover_size s.omega_configs s.iterations s.accelerations s.pruned_covered
    (if s.phantom_coverable then "COVERABLE" else "not coverable")
    (alpha s.alphabet_tr) (alpha s.alphabet_rt) s.stuck_controls
    (match s.stuck_witness with None -> "" | Some w -> ": " ^ w)

let stats_to_json s =
  let module J = Nfc_util.Json in
  let alpha l = J.List (List.map (fun v -> J.Int v) l) in
  J.Obj
    [
      ("converged", J.Bool s.converged);
      ("cover_size", J.Int s.cover_size);
      ("iterations", J.Int s.iterations);
      ("accelerations", J.Int s.accelerations);
      ("omega_configs", J.Int s.omega_configs);
      ("pruned_covered", J.Int s.pruned_covered);
      ("phantom_coverable", J.Bool s.phantom_coverable);
      ("alphabet_tr", alpha s.alphabet_tr);
      ("alphabet_rt", alpha s.alphabet_rt);
      ("stuck_controls", J.Int s.stuck_controls);
      ("stuck_witness", J.opt (fun w -> J.String w) s.stuck_witness);
      ("accel_samples", J.List (List.map (fun a -> J.String a) s.accel_samples));
    ]

(* Acceleration walks stop after this many parent hops: for converging
   protocols the tree is shallow and the walk is complete; for diverging
   ones (which hit the node cap anyway) the cap keeps the run from going
   quadratic in the cap. *)
let max_walk_hops = 512

module Make (P : Spec.S) (E : module type of Nfc_mcheck.Explore.Make (P)) = struct
  type cfg = {
    sender : P.sender;
    sid : int;
    receiver : P.receiver;
    rid : int;
    tr : Opvec.t;
    rt : Opvec.t;
    submitted : int;
    delivered : int;
  }

  let run ?(max_nodes = 200_000) ~submit_budget () =
    (* Saturation hooks, memoised on the raw post-state's interned id so
       each distinct state is normalised (and the result interned) once. *)
    let norm_s =
      match P.cover_norm_sender with
      | None -> fun s sid -> (s, sid)
      | Some f ->
          let memo : (int, P.sender * int) Hashtbl.t = Hashtbl.create 256 in
          fun s sid ->
            (match Hashtbl.find_opt memo sid with
            | Some v -> v
            | None ->
                let s' = f ~budget:submit_budget s in
                let v = (s', E.intern_sender s') in
                Hashtbl.add memo sid v;
                v)
    in
    let norm_r =
      match P.cover_norm_receiver with
      | None -> fun r rid -> (r, rid)
      | Some f ->
          let memo : (int, P.receiver * int) Hashtbl.t = Hashtbl.create 256 in
          fun r rid ->
            (match Hashtbl.find_opt memo rid with
            | Some v -> v
            | None ->
                let r' = f ~budget:submit_budget r in
                let v = (r', E.intern_receiver r') in
                Hashtbl.add memo rid v;
                v)
    in
    let initial =
      let s, sid = norm_s E.initial.E.sender E.initial.E.sid in
      let r, rid = norm_r E.initial.E.receiver E.initial.E.rid in
      {
        sender = s;
        sid;
        receiver = r;
        rid;
        tr = Opvec.empty;
        rt = Opvec.empty;
        submitted = 0;
        delivered = 0;
      }
    in
    (* The Karp–Miller tree: configurations plus parent links for the
       ancestor walks of the acceleration rule. *)
    let nodes = ref (Array.make 1024 initial) in
    let parents = ref (Array.make 1024 (-1)) in
    let n_nodes = ref 0 in
    let add_node c parent =
      if !n_nodes >= Array.length !nodes then begin
        let bigger = Array.make (2 * Array.length !nodes) c in
        Array.blit !nodes 0 bigger 0 !n_nodes;
        nodes := bigger;
        let bigger = Array.make (2 * Array.length !parents) (-1) in
        Array.blit !parents 0 bigger 0 !n_nodes;
        parents := bigger
      end;
      !nodes.(!n_nodes) <- c;
      !parents.(!n_nodes) <- parent;
      incr n_nodes;
      !n_nodes - 1
    in
    (* Subsumption store: station control -> maximal antichain of channel
       pairs.  Pruning only ever happens within a control, so every
       coverable control keeps at least one representative. *)
    let store : (int * int * int * int, (Opvec.t * Opvec.t) list) Hashtbl.t =
      Hashtbl.create 1024
    in
    let reps : (int * int * int * int, P.sender * P.receiver) Hashtbl.t = Hashtbl.create 1024 in
    let key c = (c.sid, c.rid, c.submitted, c.delivered) in
    let covered c =
      match Hashtbl.find_opt store (key c) with
      | None -> false
      | Some l -> List.exists (fun (tr, rt) -> Opvec.le c.tr tr && Opvec.le c.rt rt) l
    in
    let insert c =
      let k = key c in
      let l = match Hashtbl.find_opt store k with Some l -> l | None -> [] in
      let l = List.filter (fun (tr, rt) -> not (Opvec.le tr c.tr && Opvec.le rt c.rt)) l in
      Hashtbl.replace store k ((c.tr, c.rt) :: l);
      if not (Hashtbl.mem reps k) then Hashtbl.add reps k (c.sender, c.receiver)
    in
    let phantom = ref false in
    let accelerations = ref 0 in
    let samples = ref [] in
    let pruned = ref 0 in
    let iterations = ref 0 in
    let truncated = ref false in
    let queue : int Queue.t = Queue.create () in
    let render_sample sub del v0 v1 prefix =
      List.filter_map
        (fun id ->
          if Opvec.is_omega v1 id && not (Opvec.is_omega v0 id) then
            Some
              (Printf.sprintf "%s packet %d ↦ ω at (sub=%d, del=%d)" prefix
                 (Pvec.Index.packet E.pkts id) sub del)
          else None)
        (Opvec.support v1)
    in
    let push_cfg parent c =
      (* Accelerate against every strictly dominated same-control
         ancestor, re-walking until no rule applies (a fresh ω can expose
         further dominations). *)
      let tr = ref c.tr and rt = ref c.rt in
      let k = key c in
      let changed = ref true in
      while !changed do
        changed := false;
        let i = ref parent in
        let hops = ref 0 in
        while !i >= 0 && !hops < max_walk_hops do
          incr hops;
          let a = !nodes.(!i) in
          if
            key a = k
            && Opvec.le a.tr !tr && Opvec.le a.rt !rt
            && not (Opvec.equal a.tr !tr && Opvec.equal a.rt !rt)
          then begin
            let tr' = Opvec.accelerate ~prev:a.tr !tr in
            let rt' = Opvec.accelerate ~prev:a.rt !rt in
            if not (Opvec.equal tr' !tr && Opvec.equal rt' !rt) then begin
              incr accelerations;
              if List.length !samples < 8 then
                samples :=
                  !samples
                  @ render_sample c.submitted c.delivered !tr tr' "t→r"
                  @ render_sample c.submitted c.delivered !rt rt' "r→t";
              tr := tr';
              rt := rt';
              changed := true
            end
          end;
          i := !parents.(!i)
        done
      done;
      let c = { c with tr = !tr; rt = !rt } in
      if covered c then incr pruned
      else if !n_nodes >= max_nodes then truncated := true
      else begin
        insert c;
        Queue.push (add_node c parent) queue
      end
    in
    let expand idx =
      let c = !nodes.(idx) in
      incr iterations;
      (* User submission. *)
      if c.submitted < submit_budget then begin
        let s', sid' = E.step_submit c.sender c.sid in
        let s', sid' = norm_s s' sid' in
        push_cfg idx { c with sender = s'; sid = sid'; submitted = c.submitted + 1 }
      end;
      (* Sender poll: capacity is unbounded here, every emission lands. *)
      (let emit, s', sid' = E.step_sender_poll c.sender c.sid in
       let s', sid' = norm_s s' sid' in
       match emit with
       | Some pkt ->
           push_cfg idx
             { c with sender = s'; sid = sid'; tr = Opvec.add c.tr (Pvec.Index.id E.pkts pkt) }
       | None -> if sid' <> c.sid then push_cfg idx { c with sender = s'; sid = sid' });
      (* Receiver poll.  A delivery past the submission count is the DL1
         phantom: record it as coverable but do not expand it — the gate
         keeps [delivered <= submitted] and the control space finite. *)
      (let emit, r', rid' = E.step_receiver_poll c.receiver c.rid in
       let r', rid' = norm_r r' rid' in
       match emit with
       | Some Spec.Rdeliver ->
           if c.delivered < c.submitted then
             push_cfg idx { c with receiver = r'; rid = rid'; delivered = c.delivered + 1 }
           else phantom := true
       | Some (Spec.Rsend pkt) ->
           push_cfg idx
             { c with receiver = r'; rid = rid'; rt = Opvec.add c.rt (Pvec.Index.id E.pkts pkt) }
       | None -> if rid' <> c.rid then push_cfg idx { c with receiver = r'; rid = rid' });
      (* Adversarial delivery of any coverable in-transit packet (ω
         coordinates stay ω: one of arbitrarily many).  No drop moves —
         see the header comment. *)
      Pvec.Index.iter_by_value E.pkts (fun id ->
          match Opvec.remove_one c.tr id with
          | Some tr' ->
              let pkt = Pvec.Index.packet E.pkts id in
              let r', rid' = E.step_data c.receiver c.rid pkt in
              let r', rid' = norm_r r' rid' in
              push_cfg idx { c with receiver = r'; rid = rid'; tr = tr' }
          | None -> ());
      Pvec.Index.iter_by_value E.pkts (fun id ->
          match Opvec.remove_one c.rt id with
          | Some rt' ->
              let pkt = Pvec.Index.packet E.pkts id in
              let s', sid' = E.step_ack c.sender c.sid pkt in
              let s', sid' = norm_s s' sid' in
              push_cfg idx { c with sender = s'; sid = sid'; rt = rt' }
          | None -> ())
    in
    insert initial;
    Queue.push (add_node initial (-1)) queue;
    while (not (Queue.is_empty queue)) && not !truncated do
      expand (Queue.pop queue)
    done;
    let converged = not !truncated in
    let cover_size = Hashtbl.fold (fun _ l n -> n + List.length l) store 0 in
    let omega_configs =
      Hashtbl.fold
        (fun _ l n ->
          n
          + List.length
              (List.filter
                 (fun (tr, rt) -> Opvec.omega_count tr > 0 || Opvec.omega_count rt > 0)
                 l))
        store 0
    in
    let alpha_of select =
      Hashtbl.fold
        (fun _ l acc ->
          List.fold_left
            (fun acc entry ->
              List.fold_left
                (fun acc id -> Iset.add (Pvec.Index.packet E.pkts id) acc)
                acc
                (Opvec.support (select entry)))
            acc l)
        store Iset.empty
    in
    (* Stuck semi-valid controls: polls silent and state-stable.  By
       downward closure the empty-channel variant of any cover element is
       reachable (drop everything), and then no move but a further submit
       is enabled — the complete form of the bounded Q1 scan. *)
    let stuck = ref 0 in
    let stuck_witness = ref None in
    Hashtbl.iter
      (fun (sid, rid, sub, del) (s, r) ->
        if sub > del then begin
          let semit, _, sid' = E.step_sender_poll s sid in
          let remit, _, rid' = E.step_receiver_poll r rid in
          if semit = None && sid' = sid && remit = None && rid' = rid then begin
            incr stuck;
            if !stuck_witness = None then
              stuck_witness :=
                Some
                  (Format.asprintf "sender %a, receiver %a, %d message(s) pending" P.pp_sender
                     s P.pp_receiver r (sub - del))
          end
        end)
      reps;
    {
      converged;
      cover_size;
      iterations = !iterations;
      accelerations = !accelerations;
      accel_samples = !samples;
      omega_configs;
      pruned_covered = !pruned;
      phantom_coverable = !phantom;
      alphabet_tr = Iset.elements (alpha_of fst);
      alphabet_rt = Iset.elements (alpha_of snd);
      stuck_controls = !stuck;
      stuck_witness = !stuck_witness;
    }
end
