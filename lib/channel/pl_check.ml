module M = Nfc_util.Multiset.Int
open Nfc_automata

type mode = Strict | Relaxed

type t = {
  mode : mode;
  mutable tr : M.t;
  mutable rt : M.t;
  mutable violation : string option;
}

let create ?(mode = Strict) () = { mode; tr = M.empty; rt = M.empty; violation = None }

let get t dir = match dir with Action.T_to_r -> t.tr | Action.R_to_t -> t.rt

let set t dir m =
  match dir with Action.T_to_r -> t.tr <- m | Action.R_to_t -> t.rt <- m

let fail t a reason =
  if t.violation = None then
    t.violation <- Some (Printf.sprintf "%s: %s" (Action.to_string a) reason);
  t.violation

let on_action t a =
  match t.violation with
  | Some _ as v -> v
  | None -> (
      match a with
      | Action.Send_pkt (dir, p) ->
          set t dir (M.add p (get t dir));
          None
      | Action.Receive_pkt (dir, p) -> (
          match t.mode with
          | Strict -> (
              match M.remove_one p (get t dir) with
              | Some m ->
                  set t dir m;
                  None
              | None -> fail t a "received packet with no in-transit copy (PL1)")
          | Relaxed ->
              (* PL1' for duplicating channels: a delivery (duplicate or
                 not) must match a copy in the send-minus-drop multiset,
                 but does not consume it — the channel may redeliver the
                 same copy any number of times. *)
              if M.mem p (get t dir) then None
              else fail t a "received packet with no in-transit copy (PL1')")
      | Action.Drop_pkt (dir, p) -> (
          (* Drops — including capacity overwrites — consume the copy in
             either mode: an overwritten packet is gone for good. *)
          match M.remove_one p (get t dir) with
          | Some m ->
              set t dir m;
              None
          | None ->
              fail t a
                (match t.mode with
                | Strict -> "dropped packet not in transit (PL1)"
                | Relaxed -> "dropped packet not in transit (PL1')"))
      | Action.Send_msg _ | Action.Receive_msg _ -> None)

let violated t = t.violation
let in_transit t dir = get t dir
