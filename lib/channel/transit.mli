(** The state of one unidirectional physical channel.

    A non-FIFO channel is semantically a multiset of packets in transit;
    this structure additionally tags every copy with its send order so that
    FIFO policies, targeted adversaries ("deliver the oldest copy of packet
    p") and the PL1 property (each receive consumes a unique previous send)
    are all expressible.  All operations are amortised O(1) except the
    snapshot accessors.

    Mutability is deliberate: channels sit inside the discrete-event
    simulator's hot loop.  The model checker uses immutable
    {!Nfc_util.Multiset.Int} states instead. *)

type t

val create : unit -> t

(** [send t p] puts one copy of packet [p] in transit; returns its tag
    (tags are consecutive, in send order). *)
val send : t -> int -> int

(** Deliver the oldest in-transit copy regardless of identity (FIFO). *)
val deliver_oldest : t -> (int * int) option
(** [(tag, packet)], or [None] if the channel is empty. *)

(** [deliver_pkt t p] delivers the oldest in-transit copy of [p];
    [None] if no copy is in transit. *)
val deliver_pkt : t -> int -> int option
(** Returns the delivered tag. *)

(** [deliver_tag t tag] delivers that exact copy if still in transit. *)
val deliver_tag : t -> int -> int option
(** Returns the packet. *)

(** [deliver_random t rng] delivers a uniformly random in-transit copy. *)
val deliver_random : t -> Nfc_util.Rng.t -> (int * int) option

(** [redeliver_random t rng] delivers a {e copy} of a uniformly random
    in-transit packet without consuming the original (a duplicating
    channel's redelivery).  Delivery counters record it; the in-transit
    multiset is unchanged. *)
val redeliver_random : t -> Nfc_util.Rng.t -> (int * int) option

val drop_oldest : t -> (int * int) option
val drop_pkt : t -> int -> int option
val drop_tag : t -> int -> int option
val drop_random : t -> Nfc_util.Rng.t -> (int * int) option

(** Number of copies currently in transit. *)
val in_transit : t -> int

(** In-transit copies of packet [p]. *)
val count : t -> int -> int

(** Distinct packets with at least one copy in transit, ascending. *)
val support : t -> int list

(** In-transit content as an immutable multiset snapshot. *)
val snapshot : t -> Nfc_util.Multiset.Int.t

val sent_total : t -> int
val delivered_total : t -> int
val dropped_total : t -> int

(** Cumulative per-packet counters. *)
val sent_count : t -> int -> int

val delivered_count : t -> int -> int

(** Number of distinct packet values ever sent on this channel — the header
    census of Section 2.3. *)
val distinct_sent : t -> int

(** All distinct packet values ever sent, ascending. *)
val sent_support : t -> int list
