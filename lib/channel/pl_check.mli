(** Online checker for the physical-layer safety property (PL1 / PL1').

    Feed it every action of an execution as it happens; it maintains the
    in-transit multiset per direction and reports the first violation
    (a receive or drop with no matching in-transit copy).  Equivalent to
    {!Nfc_automata.Props.pl1} on the full trace, but O(log h) per action.

    [Relaxed] mode checks the PL1' obligation of duplicating channels
    (arXiv 2006.05901's fault model): a delivery must still {e match} an
    in-transit copy, but does not consume it — the same copy may be
    redelivered any number of times.  The tracked multiset is then the
    send-minus-drop content; drops (including capacity overwrites) consume
    in either mode. *)

type mode = Strict | Relaxed

type t

val create : ?mode:mode -> unit -> t
(** Default mode is [Strict] (the paper's PL1). *)

(** Returns the violation description the first time PL1 breaks; later
    calls after a violation keep returning it. *)
val on_action : t -> Nfc_automata.Action.t -> string option

val violated : t -> string option

(** Current in-transit multiset for a direction (for assertions in tests). *)
val in_transit : t -> Nfc_automata.Action.dir -> Nfc_util.Multiset.Int.t
