(** Channel behaviours (who decides which in-transit packet moves, when).

    A policy reacts to two hooks driven by the simulator: [on_send], fired
    right after a packet enters the channel, and [on_poll], fired once per
    scheduler round.  Each hook returns the channel events that occurred
    (deliveries / drops), already applied to the transit state.  PL1 holds
    structurally (only in-transit copies can be delivered); PL2-style
    liveness is a property of the specific policy.

    The stock policies:

    - {!fifo_reliable} — immediate in-order delivery (the "perfect" channel
      used inside boundness extensions);
    - {!fifo_lossy} — drops each packet with probability [loss] at send
      time, delivers the rest in order: the classic alternating-bit channel;
    - {!uniform_reorder} — each poll delivers (or drops) uniformly random
      in-transit copies: a maximally non-FIFO but fair channel;
    - {!probabilistic} — the paper's Section 5 channel (PL2p): a packet is
      delivered immediately with probability [1-q] and otherwise delayed
      (or, with [lose = true], deleted); delayed packets are released
      uniformly at random at rate [release] per poll. *)

type event = Delivered of int * int  (** (tag, packet) *) | Dropped of int * int

type t = {
  name : string;
  duplicative : bool;
      (** true iff the policy may redeliver an in-transit copy without
          consuming it; executions then satisfy only the relaxed PL1'
          obligation checked by {!Pl_check} in [Relaxed] mode. *)
  on_send : Nfc_util.Rng.t -> Transit.t -> tag:int -> pkt:int -> event list;
  on_poll : Nfc_util.Rng.t -> Transit.t -> event list;
}

val fifo_reliable : t
val fifo_lossy : loss:float -> t

(** [uniform_reorder ~deliver ~drop] — per poll, delivers one uniformly
    random in-transit copy with probability [deliver] and independently
    drops one with probability [drop]. *)
val uniform_reorder : deliver:float -> drop:float -> t

(** The probabilistic physical layer of Section 5.  [q] is the error
    probability of (PL2p).  [release] (default 0.25) is the per-poll
    probability that one delayed packet is released; [lose = true] turns
    delay into deletion (used for worst-case variants). *)
val probabilistic : ?release:float -> ?lose:bool -> q:float -> unit -> t

(** [fifo_delayed ~latency ?loss ()] — a pipe with propagation delay:
    every surviving packet is delivered in order exactly [latency] polls
    after it was sent ([loss] drops at send time, default 0).  The only
    stock policy with a round-trip time, used to exhibit why pipelined
    protocols (Go-Back-N) beat stop-and-wait designs. *)
val fifo_delayed : latency:int -> ?loss:float -> unit -> t

(** [gilbert_elliott ()] — two-state burst-loss channel (Gilbert–Elliott):
    in the Good state packets are delivered immediately with loss
    [good_loss] (default 0.01); in the Bad state they are dropped with
    probability [bad_loss] (default 0.7, survivors delivered immediately);
    the state flips Good→Bad with probability [p_gb] (default 0.05) and
    Bad→Good with [p_bg] (default 0.25) per send.  Delivery is FIFO.
    The classic bursty-wireless model, used for failure-injection tests.
    Stateful: create one per channel. *)
val gilbert_elliott :
  ?good_loss:float -> ?bad_loss:float -> ?p_gb:float -> ?p_bg:float -> unit -> t

(** A channel that never moves anything: packets accumulate.  The raw
    material of the lower-bound adversaries, which drive the transit
    directly. *)
val silent : t

(** [duplicating ?dup base] — the duplication fault of the
    self-stabilization channel model (arXiv 2006.05901): per poll, with
    probability [dup] (default 0.2), a copy of a uniformly random
    in-transit packet is redelivered {e without being consumed}, then the
    [base] policy runs.  Violates strict PL1 by design; every duplicate
    still matches an in-transit copy (PL1'). *)
val duplicating : ?dup:float -> t -> t

(** [capacity_bound ~cap base] — per-direction transit bound [cap >= 1]
    with overwrite-oldest omission: whenever a send would leave more than
    [cap] copies in transit, the oldest copies are dropped (recorded as
    drops) before [base]'s send hook runs.  Composable with any stock
    policy or with {!duplicating}. *)
val capacity_bound : cap:int -> t -> t

(** Parse the CLI/service channel-spec syntax
    ([reliable | lossy:P | reorder:DELIVER:DROP | prob:Q | delayed:L[:P]
    | duplicating:DUP[:BASE] | capacity:CAP[:BASE] | silent]) into a
    policy {e factory} — policies can carry per-channel mutable state, so
    each direction instantiates its own.  The fault wrappers recurse on
    the rest of the spec ([capacity:2:duplicating:0.3:lossy:0.1]); an
    omitted BASE defaults to [reorder:0.9:0.0].  Shared by
    [nfc simulate -c] and the [/v1/simulate] endpoint. *)
val parse_factory : string -> (unit -> t, string) result
