type event = Delivered of int * int | Dropped of int * int

type t = {
  name : string;
  duplicative : bool;
      (* true iff the policy may redeliver a copy without consuming it, in
         which case executions satisfy only the relaxed PL1' obligation *)
  on_send : Nfc_util.Rng.t -> Transit.t -> tag:int -> pkt:int -> event list;
  on_poll : Nfc_util.Rng.t -> Transit.t -> event list;
}

let no_send _rng _transit ~tag:_ ~pkt:_ = []
let no_poll _rng _transit = []

let silent = { name = "silent"; duplicative = false; on_send = no_send; on_poll = no_poll }

let fifo_reliable =
  let on_send _rng transit ~tag ~pkt =
    match Transit.deliver_tag transit tag with
    | Some _ -> [ Delivered (tag, pkt) ]
    | None -> []
  in
  { name = "fifo-reliable"; duplicative = false; on_send; on_poll = no_poll }

let fifo_lossy ~loss =
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Policy.fifo_lossy: loss must lie in [0,1)";
  let on_send rng transit ~tag ~pkt =
    if Nfc_util.Rng.bool rng loss then
      match Transit.drop_tag transit tag with
      | Some _ -> [ Dropped (tag, pkt) ]
      | None -> []
    else
      match Transit.deliver_oldest transit with
      | Some (tag', pkt') -> [ Delivered (tag', pkt') ]
      | None -> []
  in
  (* Nothing lingers: every packet is delivered or dropped at send time, so
     polling is a no-op. *)
  { name = Printf.sprintf "fifo-lossy(%.2f)" loss; duplicative = false; on_send; on_poll = no_poll }

let uniform_reorder ~deliver ~drop =
  if deliver < 0.0 || deliver > 1.0 || drop < 0.0 || drop > 1.0 then
    invalid_arg "Policy.uniform_reorder: probabilities must lie in [0,1]";
  let on_poll rng transit =
    let events = ref [] in
    if Nfc_util.Rng.bool rng deliver then begin
      match Transit.deliver_random transit rng with
      | Some (tag, pkt) -> events := Delivered (tag, pkt) :: !events
      | None -> ()
    end;
    if Nfc_util.Rng.bool rng drop then begin
      match Transit.drop_random transit rng with
      | Some (tag, pkt) -> events := Dropped (tag, pkt) :: !events
      | None -> ()
    end;
    List.rev !events
  in
  {
    name = Printf.sprintf "uniform-reorder(d=%.2f,x=%.2f)" deliver drop;
    duplicative = false;
    on_send = no_send;
    on_poll;
  }

let fifo_delayed ~latency ?(loss = 0.0) () =
  if latency < 0 then invalid_arg "Policy.fifo_delayed: latency must be >= 0";
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Policy.fifo_delayed: loss must lie in [0,1)";
  (* The policy carries its own clock and release schedule; a fresh policy
     value must be created per channel. *)
  let clock = ref 0 in
  let due : (int * int) Queue.t = Queue.create () (* (release_at, tag) *) in
  let on_send rng transit ~tag ~pkt =
    if loss > 0.0 && Nfc_util.Rng.bool rng loss then
      match Transit.drop_tag transit tag with
      | Some _ -> [ Dropped (tag, pkt) ]
      | None -> []
    else begin
      Queue.push (!clock + latency, tag) due;
      []
    end
  in
  let on_poll _rng transit =
    incr clock;
    let events = ref [] in
    let rec release () =
      match Queue.peek_opt due with
      | Some (at, tag) when at <= !clock -> (
          ignore (Queue.pop due);
          match Transit.deliver_tag transit tag with
          | Some pkt ->
              events := Delivered (tag, pkt) :: !events;
              release ()
          | None -> release ())
      | _ -> ()
    in
    release ();
    List.rev !events
  in
  { name = Printf.sprintf "fifo-delayed(L=%d,x=%.2f)" latency loss; duplicative = false; on_send; on_poll }

let gilbert_elliott ?(good_loss = 0.01) ?(bad_loss = 0.7) ?(p_gb = 0.05) ?(p_bg = 0.25) () =
  let check name v lo hi =
    if v < lo || v > hi then
      invalid_arg (Printf.sprintf "Policy.gilbert_elliott: %s must lie in [%g,%g]" name lo hi)
  in
  check "good_loss" good_loss 0.0 0.99;
  check "bad_loss" bad_loss 0.0 0.99;
  check "p_gb" p_gb 0.0 1.0;
  check "p_bg" p_bg 0.0 1.0;
  let bad = ref false in
  let on_send rng transit ~tag ~pkt =
    (* State transition, then per-state loss; survivors delivered in order
       immediately (the model is about loss bursts, not delay). *)
    if !bad then begin
      if Nfc_util.Rng.bool rng p_bg then bad := false
    end
    else if Nfc_util.Rng.bool rng p_gb then bad := true;
    let loss = if !bad then bad_loss else good_loss in
    if Nfc_util.Rng.bool rng loss then
      match Transit.drop_tag transit tag with
      | Some _ -> [ Dropped (tag, pkt) ]
      | None -> []
    else
      match Transit.deliver_oldest transit with
      | Some (tag', pkt') -> [ Delivered (tag', pkt') ]
      | None -> []
  in
  {
    name = Printf.sprintf "gilbert-elliott(g=%.2f,b=%.2f)" good_loss bad_loss;
    duplicative = false;
    on_send;
    on_poll = no_poll;
  }

let probabilistic ?(release = 0.25) ?(lose = false) ~q () =
  if q < 0.0 || q > 1.0 then invalid_arg "Policy.probabilistic: q must lie in [0,1]";
  if release <= 0.0 || release > 1.0 then
    invalid_arg "Policy.probabilistic: release must lie in (0,1]";
  let on_send rng transit ~tag ~pkt =
    if Nfc_util.Rng.bool rng (1.0 -. q) then
      match Transit.deliver_tag transit tag with
      | Some _ -> [ Delivered (tag, pkt) ]
      | None -> []
    else if lose then
      match Transit.drop_tag transit tag with
      | Some _ -> [ Dropped (tag, pkt) ]
      | None -> []
    else [] (* delayed: stays in transit until a later poll releases it *)
  in
  let on_poll rng transit =
    if (not lose) && Nfc_util.Rng.bool rng release then
      match Transit.deliver_random transit rng with
      | Some (tag, pkt) -> [ Delivered (tag, pkt) ]
      | None -> []
    else []
  in
  {
    name = Printf.sprintf "probabilistic(q=%.2f%s)" q (if lose then ",lossy" else "");
    duplicative = false;
    on_send;
    on_poll;
  }

(* The self-stabilization fault wrappers (arXiv 2006.05901's channel model):
   duplication and bounded capacity compose *around* any stock policy, so
   [capacity:2:duplicating:0.3:reorder:0.9:0.1] is one channel. *)

let duplicating ?(dup = 0.2) base =
  if dup < 0.0 || dup > 1.0 then
    invalid_arg "Policy.duplicating: dup must lie in [0,1]";
  let on_poll rng transit =
    (* With probability [dup], redeliver a copy of a random in-transit
       packet without consuming it — the original stays available for its
       own (later) delivery or drop.  Such an execution violates strict PL1
       (two receives, one send) but satisfies PL1': the duplicate matches a
       copy that is still in transit. *)
    let dups =
      if Nfc_util.Rng.bool rng dup then
        match Transit.redeliver_random transit rng with
        | Some (tag, pkt) -> [ Delivered (tag, pkt) ]
        | None -> []
      else []
    in
    dups @ base.on_poll rng transit
  in
  {
    name = Printf.sprintf "duplicating(p=%.2f)+%s" dup base.name;
    duplicative = true;
    on_send = base.on_send;
    on_poll;
  }

let capacity_bound ~cap base =
  if cap < 1 then invalid_arg "Policy.capacity_bound: cap must be >= 1";
  let overflow transit =
    (* Overwrite-oldest omission: a full channel loses its oldest copy to
       make room for the newcomer.  The overwrite is recorded as a drop, so
       PL1/PL1' accounting stays exact. *)
    let events = ref [] in
    while Transit.in_transit transit > cap do
      match Transit.drop_oldest transit with
      | Some (tag, pkt) -> events := Dropped (tag, pkt) :: !events
      | None -> assert false (* in_transit > cap >= 1 *)
    done;
    List.rev !events
  in
  let on_send rng transit ~tag ~pkt =
    let overwritten = overflow transit in
    (* The newcomer is the youngest copy, so it survived the overwrite;
       stock policies tolerate a base tag that was overwritten earlier
       (deliver_tag/drop_tag return None on dead tags). *)
    overwritten @ base.on_send rng transit ~tag ~pkt
  in
  {
    name = Printf.sprintf "capacity(%d)+%s" cap base.name;
    duplicative = base.duplicative;
    on_send;
    on_poll = base.on_poll;
  }

(* CLI/service channel-spec syntax — one parser for [nfc simulate -c] and
   the [/v1/simulate] endpoint, so the two can never drift.  Returns a
   {e factory}: policies can carry per-channel mutable state
   ([fifo_delayed]'s clock), so each direction instantiates its own. *)
let rec parse_factory s =
  let fail () =
    Error
      (Printf.sprintf
         "unknown channel %S (reliable | lossy:P | reorder:DELIVER:DROP | prob:Q | \
          delayed:L[:P] | duplicating:DUP[:BASE] | capacity:CAP[:BASE] | silent)"
         s)
  in
  (* The fault wrappers recurse on the rest of the spec: an empty rest means
     the default base channel (a fair non-FIFO reorder). *)
  let wrapped ~kind rest wrap =
    let base_spec =
      match rest with [] -> "reorder:0.9:0.0" | _ -> String.concat ":" rest
    in
    match parse_factory base_spec with
    | Ok base -> Ok (fun () -> wrap (base ()))
    | Error e ->
        Error (Printf.sprintf "%s: in base channel %S: %s" kind base_spec e)
  in
  match String.split_on_char ':' s with
  | [ "reliable" ] -> Ok (fun () -> fifo_reliable)
  | [ "silent" ] -> Ok (fun () -> silent)
  | [ "lossy"; p ] -> (
      match float_of_string_opt p with
      | Some loss when loss >= 0.0 && loss < 1.0 -> Ok (fun () -> fifo_lossy ~loss)
      | _ -> Error "lossy takes lossy:P with 0 <= P < 1")
  | [ "reorder"; d; x ] -> (
      match (float_of_string_opt d, float_of_string_opt x) with
      | Some deliver, Some drop -> Ok (fun () -> uniform_reorder ~deliver ~drop)
      | _ -> Error "reorder takes reorder:DELIVER:DROP")
  | [ "delayed"; l ] -> (
      match int_of_string_opt l with
      | Some latency when latency >= 0 -> Ok (fun () -> fifo_delayed ~latency ())
      | _ -> Error "delayed takes delayed:LATENCY[:LOSS]")
  | [ "delayed"; l; p ] -> (
      match (int_of_string_opt l, float_of_string_opt p) with
      | Some latency, Some loss when latency >= 0 && loss >= 0.0 && loss < 1.0 ->
          Ok (fun () -> fifo_delayed ~latency ~loss ())
      | _ -> Error "delayed takes delayed:LATENCY[:LOSS]")
  | [ "prob"; q ] -> (
      match float_of_string_opt q with
      | Some q when q >= 0.0 && q <= 1.0 -> Ok (fun () -> probabilistic ~q ())
      | _ -> Error "prob takes prob:Q with 0 <= Q <= 1")
  | "duplicating" :: p :: rest -> (
      match float_of_string_opt p with
      | Some dup when dup >= 0.0 && dup <= 1.0 ->
          wrapped ~kind:"duplicating" rest (fun base -> duplicating ~dup base)
      | _ -> Error "duplicating takes duplicating:DUP[:BASE] with 0 <= DUP <= 1")
  | "capacity" :: c :: rest -> (
      match int_of_string_opt c with
      | Some cap when cap >= 1 ->
          wrapped ~kind:"capacity" rest (fun base -> capacity_bound ~cap base)
      | _ -> Error "capacity takes capacity:CAP[:BASE] with CAP >= 1")
  | _ -> fail ()
