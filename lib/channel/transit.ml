(* Tag queues use lazy deletion: a tag stays in its queues after the copy is
   consumed and is skipped when popped.  [all] is the ground truth. *)
type t = {
  all : (int, int) Hashtbl.t; (* tag -> packet, in-transit copies only *)
  global_fifo : int Queue.t; (* tags in send order (lazy) *)
  per_pkt : (int, int Queue.t) Hashtbl.t; (* packet -> tags in send order (lazy) *)
  counts : (int, int) Hashtbl.t; (* packet -> in-transit count *)
  sent_per : (int, int) Hashtbl.t;
  delivered_per : (int, int) Hashtbl.t;
  dropped_per : (int, int) Hashtbl.t;
  mutable next_tag : int;
  mutable live : int;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

let create () =
  {
    all = Hashtbl.create 64;
    global_fifo = Queue.create ();
    per_pkt = Hashtbl.create 16;
    counts = Hashtbl.create 16;
    sent_per = Hashtbl.create 16;
    delivered_per = Hashtbl.create 16;
    dropped_per = Hashtbl.create 16;
    next_tag = 0;
    live = 0;
    sent = 0;
    delivered = 0;
    dropped = 0;
  }

let bump tbl key delta =
  let v = match Hashtbl.find_opt tbl key with None -> 0 | Some v -> v in
  let v' = v + delta in
  if v' = 0 then Hashtbl.remove tbl key else Hashtbl.replace tbl key v'

let get tbl key = match Hashtbl.find_opt tbl key with None -> 0 | Some v -> v

let send t p =
  let tag = t.next_tag in
  t.next_tag <- tag + 1;
  Hashtbl.replace t.all tag p;
  Queue.push tag t.global_fifo;
  let q =
    match Hashtbl.find_opt t.per_pkt p with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace t.per_pkt p q;
        q
  in
  Queue.push tag q;
  bump t.counts p 1;
  bump t.sent_per p 1;
  t.sent <- t.sent + 1;
  t.live <- t.live + 1;
  tag

(* Remove the copy with this tag; the caller already knows it is live. *)
let consume t tag ~delivered =
  let p = Hashtbl.find t.all tag in
  Hashtbl.remove t.all tag;
  bump t.counts p (-1);
  t.live <- t.live - 1;
  if delivered then begin
    t.delivered <- t.delivered + 1;
    bump t.delivered_per p 1
  end
  else begin
    t.dropped <- t.dropped + 1;
    bump t.dropped_per p 1
  end;
  p

let rec pop_live t q =
  match Queue.take_opt q with
  | None -> None
  | Some tag -> if Hashtbl.mem t.all tag then Some tag else pop_live t q

let take_oldest t ~delivered =
  match pop_live t t.global_fifo with
  | None -> None
  | Some tag -> Some (tag, consume t tag ~delivered)

let deliver_oldest t = take_oldest t ~delivered:true
let drop_oldest t = take_oldest t ~delivered:false

let take_pkt t p ~delivered =
  match Hashtbl.find_opt t.per_pkt p with
  | None -> None
  | Some q -> (
      match pop_live t q with
      | None -> None
      | Some tag ->
          let _ = consume t tag ~delivered in
          Some tag)

let deliver_pkt t p = take_pkt t p ~delivered:true
let drop_pkt t p = take_pkt t p ~delivered:false

let take_tag t tag ~delivered =
  if Hashtbl.mem t.all tag then Some (consume t tag ~delivered) else None

let deliver_tag t tag = take_tag t tag ~delivered:true
let drop_tag t tag = take_tag t tag ~delivered:false

let pick_random t rng =
  if t.live = 0 then None
  else begin
    (* Uniform over in-transit copies: walk the per-packet counts. *)
    let target = Nfc_util.Rng.int rng t.live in
    let chosen = ref None in
    let seen = ref 0 in
    (try
       Hashtbl.iter
         (fun p c ->
           if !seen + c > target then begin
             chosen := Some p;
             raise Exit
           end
           else seen := !seen + c)
         t.counts
     with Exit -> ());
    !chosen
  end

let deliver_random t rng =
  match pick_random t rng with
  | None -> None
  | Some p -> ( match deliver_pkt t p with None -> None | Some tag -> Some (tag, p))

let drop_random t rng =
  match pick_random t rng with
  | None -> None
  | Some p -> ( match drop_pkt t p with None -> None | Some tag -> Some (tag, p))

(* Deliver a *copy* of a uniformly random in-transit packet without
   consuming the original — a duplicating channel's redelivery.  Delivery
   counters record it; [all]/[counts]/[live] are untouched, so the relaxed
   PL1' obligation (membership without consumption) keeps holding while
   strict PL1 does not. *)
let redeliver_random t rng =
  match pick_random t rng with
  | None -> None
  | Some p ->
      let tag = ref (-1) in
      (try
         Hashtbl.iter
           (fun tg pkt ->
             if pkt = p then begin
               tag := tg;
               raise Exit
             end)
           t.all
       with Exit -> ());
      if !tag < 0 then None
      else begin
        t.delivered <- t.delivered + 1;
        bump t.delivered_per p 1;
        Some (!tag, p)
      end

let in_transit t = t.live
let count t p = get t.counts p

let support t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.counts [] |> List.sort compare

let snapshot t =
  let module M = Nfc_util.Multiset.Int in
  Hashtbl.fold (fun p c acc -> M.add ~count:c p acc) t.counts M.empty

let sent_total t = t.sent
let delivered_total t = t.delivered
let dropped_total t = t.dropped
let sent_count t p = get t.sent_per p
let delivered_count t p = get t.delivered_per p
let distinct_sent t = Hashtbl.length t.sent_per

let sent_support t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.sent_per [] |> List.sort compare
