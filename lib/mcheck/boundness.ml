module M = Nfc_util.Multiset.Int
module Spec = Nfc_protocol.Spec

type probe_bounds = { max_nodes : int; max_cost : int }

let default_probe_bounds = { max_nodes = 50_000; max_cost = 1_000 }

type report = {
  protocol : string;
  k_t : int;
  k_r : int;
  state_product : int;
  configs_explored : int;
  semi_valid_configs : int;
  boundness : int option;
  probes_exhausted : int;
  probes_skipped : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%s: k_t=%d k_r=%d (product %d); %d configs, %d semi-valid;@ measured boundness %s \
     (%d probes exhausted%s)@]"
    r.protocol r.k_t r.k_r r.state_product r.configs_explored r.semi_valid_configs
    (match r.boundness with None -> "unbounded?" | Some b -> string_of_int b)
    r.probes_exhausted
    (if r.probes_skipped > 0 then Printf.sprintf ", %d skipped" r.probes_skipped else "")

module Make (P : Spec.S) = struct
  type config = {
    sender : P.sender;
    receiver : P.receiver;
    tr : M.t;
    rt : M.t;
    submitted : int;
    delivered : int;
  }

  let compare_config a b =
    let c = compare (a.submitted, a.delivered) (b.submitted, b.delivered) in
    if c <> 0 then c
    else
      let c = P.compare_sender a.sender b.sender in
      if c <> 0 then c
      else
        let c = P.compare_receiver a.receiver b.receiver in
        if c <> 0 then c
        else
          let c = M.compare a.tr b.tr in
          if c <> 0 then c else M.compare a.rt b.rt

  module Cset = Set.Make (struct
    type t = config

    let compare = compare_config
  end)

  (* Reachability under full adversarial channel semantics; mirrors
     {!Explore} but keeps the configurations. *)
  let reachable (bounds : Explore.bounds) =
    let initial =
      {
        sender = P.sender_init;
        receiver = P.receiver_init;
        tr = M.empty;
        rt = M.empty;
        submitted = 0;
        delivered = 0;
      }
    in
    let visited = ref Cset.empty in
    let n_visited = ref 0 in
    let queue = Queue.create () in
    let visit c =
      if (not (Cset.mem c !visited)) && !n_visited < bounds.Explore.max_nodes then begin
        visited := Cset.add c !visited;
        incr n_visited;
        Queue.push c queue
      end
    in
    visit initial;
    while not (Queue.is_empty queue) do
      let c = Queue.pop queue in
      if c.submitted < bounds.Explore.submit_budget then
        visit { c with sender = P.on_submit c.sender; submitted = c.submitted + 1 };
      (match P.sender_poll c.sender with
      | Some pkt, s' ->
          if M.cardinal c.tr < bounds.Explore.capacity_tr then
            visit { c with sender = s'; tr = M.add pkt c.tr }
      | None, s' -> if P.compare_sender s' c.sender <> 0 then visit { c with sender = s' });
      (match P.receiver_poll c.receiver with
      | Some Spec.Rdeliver, r' ->
          if c.delivered < c.submitted then
            visit { c with receiver = r'; delivered = c.delivered + 1 }
      | Some (Spec.Rsend pkt), r' ->
          if M.cardinal c.rt < bounds.Explore.capacity_rt then
            visit { c with receiver = r'; rt = M.add pkt c.rt }
      | None, r' ->
          if P.compare_receiver r' c.receiver <> 0 then visit { c with receiver = r' });
      List.iter
        (fun pkt ->
          match M.remove_one pkt c.tr with
          | Some tr' ->
              visit { c with tr = tr'; receiver = P.on_data c.receiver pkt };
              if bounds.Explore.allow_drop then visit { c with tr = tr' }
          | None -> ())
        (M.support c.tr);
      List.iter
        (fun pkt ->
          match M.remove_one pkt c.rt with
          | Some rt' ->
              visit { c with rt = rt'; sender = P.on_ack c.sender pkt };
              if bounds.Explore.allow_drop then visit { c with rt = rt' }
          | None -> ())
        (M.support c.rt)
    done;
    !visited

  (* The boundness extension from one configuration: old in-transit packets
     are frozen, every fresh packet may be delivered, only forward sends
     cost.  0-1 breadth-first search; returns the minimum number of
     send_pkt^{t->r} actions before a delivery, if found within budget. *)
  type probe_state = {
    psender : P.sender;
    preceiver : P.receiver;
    ptr : M.t;  (** fresh forward packets only *)
    prt : M.t;  (** fresh reverse packets only *)
  }

  let compare_probe a b =
    let c = P.compare_sender a.psender b.psender in
    if c <> 0 then c
    else
      let c = P.compare_receiver a.preceiver b.preceiver in
      if c <> 0 then c
      else
        let c = M.compare a.ptr b.ptr in
        if c <> 0 then c else M.compare a.prt b.prt

  module Pset = Set.Make (struct
    type t = probe_state

    let compare = compare_probe
  end)

  let probe (pb : probe_bounds) (c : config) =
    let start = { psender = c.sender; preceiver = c.receiver; ptr = M.empty; prt = M.empty } in
    (* Two-deque 0-1 BFS: states paired with their cost; visited marked on
       pop so the first pop has the minimal cost. *)
    let dq : (int * probe_state) Nfc_util.Deque.t ref = ref Nfc_util.Deque.empty in
    let push_front x = dq := Nfc_util.Deque.push_front x !dq in
    let push_back x = dq := Nfc_util.Deque.push_back x !dq in
    let visited = ref Pset.empty in
    let n_visited = ref 0 in
    let result = ref None in
    push_front (0, start);
    (try
       while not (Nfc_util.Deque.is_empty !dq) do
         if !n_visited >= pb.max_nodes then raise Exit;
         match Nfc_util.Deque.pop_front !dq with
         | None -> raise Exit
         | Some ((cost, st), rest) ->
             dq := rest;
             if cost > pb.max_cost then raise Exit;
             if not (Pset.mem st !visited) then begin
               visited := Pset.add st !visited;
               incr n_visited;
               (* Goal: a delivery is enabled. *)
               (match P.receiver_poll st.preceiver with
               | Some Spec.Rdeliver, _ ->
                   result := Some cost;
                   raise Exit
               | Some (Spec.Rsend pkt), r' ->
                   push_front (cost, { st with preceiver = r'; prt = M.add pkt st.prt })
               | None, r' ->
                   if P.compare_receiver r' st.preceiver <> 0 then
                     push_front (cost, { st with preceiver = r' }));
               (match P.sender_poll st.psender with
               | Some pkt, s' ->
                   push_back (cost + 1, { st with psender = s'; ptr = M.add pkt st.ptr })
               | None, s' ->
                   if P.compare_sender s' st.psender <> 0 then
                     push_front (cost, { st with psender = s' }));
               List.iter
                 (fun pkt ->
                   match M.remove_one pkt st.ptr with
                   | Some tr' ->
                       push_front
                         (cost, { st with ptr = tr'; preceiver = P.on_data st.preceiver pkt })
                   | None -> ())
                 (M.support st.ptr);
               List.iter
                 (fun pkt ->
                   match M.remove_one pkt st.prt with
                   | Some rt' ->
                       push_front
                         (cost, { st with prt = rt'; psender = P.on_ack st.psender pkt })
                   | None -> ())
                 (M.support st.prt)
             end
       done
     with Exit -> ());
    !result

  let measure ?max_probes ~(explore : Explore.bounds) ~(probe_bounds : probe_bounds) () =
    let configs = reachable explore in
    let module Sset = Set.Make (struct
      type t = P.sender

      let compare = P.compare_sender
    end) in
    let module Rset = Set.Make (struct
      type t = P.receiver

      let compare = P.compare_receiver
    end) in
    let senders = Cset.fold (fun c acc -> Sset.add c.sender acc) configs Sset.empty in
    let receivers = Cset.fold (fun c acc -> Rset.add c.receiver acc) configs Rset.empty in
    let semi_valid = Cset.filter (fun c -> c.submitted = c.delivered + 1) configs in
    let boundness = ref (Some 0) in
    let exhausted = ref 0 in
    let budget = ref (match max_probes with None -> max_int | Some n -> n) in
    let skipped = ref 0 in
    Cset.iter
      (fun c ->
        if !budget <= 0 then incr skipped
        else begin
          decr budget;
          match probe probe_bounds c with
          | Some cost -> (
              match !boundness with
              | Some b -> boundness := Some (max b cost)
              | None -> ())
          | None ->
              incr exhausted;
              boundness := None
        end)
      semi_valid;
    {
      protocol = P.name;
      k_t = Sset.cardinal senders;
      k_r = Rset.cardinal receivers;
      state_product = Sset.cardinal senders * Rset.cardinal receivers;
      configs_explored = Cset.cardinal configs;
      semi_valid_configs = Cset.cardinal semi_valid;
      boundness = !boundness;
      probes_exhausted = !exhausted;
      probes_skipped = !skipped;
    }
end

let measure ?max_probes (proto : Spec.t) ~(explore : Explore.bounds) ~(probe : probe_bounds) =
  let module P = (val proto) in
  let module B = Make (P) in
  B.measure ?max_probes ~explore ~probe_bounds:probe ()
