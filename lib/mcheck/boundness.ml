module Spec = Nfc_protocol.Spec
module Pool = Nfc_util.Pool

type probe_bounds = { max_nodes : int; max_cost : int }

let default_probe_bounds = { max_nodes = 50_000; max_cost = 1_000 }

type report = {
  protocol : string;
  k_t : int;
  k_r : int;
  state_product : int;
  configs_explored : int;
  semi_valid_configs : int;
  boundness : int option;
  probes_exhausted : int;
  probes_skipped : int;
  engine_domains : int;
  por : bool;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%s: k_t=%d k_r=%d (product %d); %d configs, %d semi-valid;@ measured boundness %s \
     (%d probes exhausted%s)@]"
    r.protocol r.k_t r.k_r r.state_product r.configs_explored r.semi_valid_configs
    (match r.boundness with None -> "unbounded?" | Some b -> string_of_int b)
    r.probes_exhausted
    (if r.probes_skipped > 0 then Printf.sprintf ", %d skipped" r.probes_skipped else "")

let to_json r =
  let module J = Nfc_util.Json in
  J.Obj
    [
      ("protocol", J.String r.protocol);
      ("k_t", J.Int r.k_t);
      ("k_r", J.Int r.k_r);
      ("state_product", J.Int r.state_product);
      ("configs_explored", J.Int r.configs_explored);
      ("semi_valid_configs", J.Int r.semi_valid_configs);
      ("boundness", J.opt (fun b -> J.Int b) r.boundness);
      ("probes_exhausted", J.Int r.probes_exhausted);
      ("probes_skipped", J.Int r.probes_skipped);
      ("engine_domains", J.Int r.engine_domains);
      ("por", J.Bool r.por);
    ]

module Make (P : Spec.S) = struct
  (* Reachability is the shared engine's, with delivery gated on a message
     actually pending ([deliver_valid_only]): boundness only measures from
     valid executions, never down phantom branches. *)
  module E = Explore.Make (P)

  let equal_sender a b = P.compare_sender a b = 0
  let equal_receiver a b = P.compare_receiver a b = 0

  module Smap = Map.Make (struct
    type t = P.sender

    let compare = P.compare_sender
  end)

  module Rmap = Map.Make (struct
    type t = P.receiver

    let compare = P.compare_receiver
  end)

  let fresh_intern_sender () =
    match P.hash_sender with
    | Some h -> Explore.intern_hashed h equal_sender
    | None ->
        let m = ref Smap.empty in
        let n = ref 0 in
        fun v ->
          (match Smap.find_opt v !m with
          | Some id -> id
          | None ->
              let id = !n in
              incr n;
              m := Smap.add v id !m;
              id)

  let fresh_intern_receiver () =
    match P.hash_receiver with
    | Some h -> Explore.intern_hashed h equal_receiver
    | None ->
        let m = ref Rmap.empty in
        let n = ref 0 in
        fun v ->
          (match Rmap.find_opt v !m with
          | Some id -> id
          | None ->
              let id = !n in
              incr n;
              m := Rmap.add v id !m;
              id)

  module Ptbl = Hashtbl.Make (struct
    type t = int * int * Pvec.t * Pvec.t

    let equal (s1, r1, tr1, rt1) (s2, r2, tr2, rt2) =
      s1 = s2 && r1 = r2 && Pvec.equal tr1 tr2 && Pvec.equal rt1 rt2

    let hash (s, r, tr, rt) =
      let h = (s * 1000003) lxor r in
      let h = (h * 1000003) lxor Pvec.hash tr in
      let h = (h * 1000003) lxor Pvec.hash rt in
      h land max_int
  end)

  (* A probe context: interners, packet index and transition memos shared
     by one worker's batch of probes.  Probes never share a context
     across domains; sharing within a worker makes each repeated
     (state, input) transition a small-int table probe (exactly the
     engine's memoization, rebuilt here because probe states live in
     their own id space).  Sharing cannot change results: each probe
     still has its own visited table, and vectors only ever see ids the
     probe itself added. *)
  type ctx = {
    intern_s : P.sender -> int;
    intern_r : P.receiver -> int;
    pkts : Pvec.Index.t;
    spoll_memo : (int, int option * P.sender * int) Hashtbl.t;
    rpoll_memo : (int, Spec.remit option * P.receiver * int) Hashtbl.t;
    ack_memo : (int * int, P.sender * int) Hashtbl.t;
    data_memo : (int * int, P.receiver * int) Hashtbl.t;
  }

  let make_ctx () =
    {
      intern_s = fresh_intern_sender ();
      intern_r = fresh_intern_receiver ();
      pkts = Pvec.Index.create ();
      spoll_memo = Hashtbl.create 256;
      rpoll_memo = Hashtbl.create 256;
      ack_memo = Hashtbl.create 512;
      data_memo = Hashtbl.create 512;
    }

  let memo tbl key f =
    match Hashtbl.find_opt tbl key with
    | Some v -> v
    | None ->
        let v = f () in
        Hashtbl.add tbl key v;
        v

  type pstate = {
    psender : P.sender;
    psid : int;
    preceiver : P.receiver;
    prid : int;
    ptr : Pvec.t;  (** fresh forward packets only *)
    prt : Pvec.t;  (** fresh reverse packets only *)
  }

  let spoll ctx st =
    memo ctx.spoll_memo st.psid (fun () ->
        let emit, s = P.sender_poll st.psender in
        (emit, s, ctx.intern_s s))

  let rpoll ctx st =
    memo ctx.rpoll_memo st.prid (fun () ->
        let emit, r = P.receiver_poll st.preceiver in
        (emit, r, ctx.intern_r r))

  let ack ctx st pkt =
    memo ctx.ack_memo (st.psid, pkt) (fun () ->
        let s = P.on_ack st.psender pkt in
        (s, ctx.intern_s s))

  let data ctx st pkt =
    memo ctx.data_memo (st.prid, pkt) (fun () ->
        let r = P.on_data st.preceiver pkt in
        (r, ctx.intern_r r))

  (* The boundness extension from one configuration: old in-transit packets
     are frozen, every fresh packet may be delivered, only forward sends
     cost.  0-1 breadth-first search; returns the minimum number of
     send_pkt^{t->r} actions before a delivery, if found within budget. *)
  let probe ctx (pb : probe_bounds) ~(sender : P.sender) ~(receiver : P.receiver) =
    let start =
      {
        psender = sender;
        psid = ctx.intern_s sender;
        preceiver = receiver;
        prid = ctx.intern_r receiver;
        ptr = Pvec.empty;
        prt = Pvec.empty;
      }
    in
    (* Two-ended 0-1 BFS: states paired with their cost; visited marked on
       pop so the first pop has the minimal cost. *)
    let dq : (int * pstate) Nfc_util.Deque.t ref = ref Nfc_util.Deque.empty in
    let push_front x = dq := Nfc_util.Deque.push_front x !dq in
    let push_back x = dq := Nfc_util.Deque.push_back x !dq in
    (* Scale with the per-probe node budget (cf. {!Explore}'s visited
       sizing) instead of a fixed 1024. *)
    let visited = Ptbl.create (max 1024 (min pb.max_nodes 1_048_576)) in
    let n_visited = ref 0 in
    let result = ref None in
    push_front (0, start);
    (try
       while not (Nfc_util.Deque.is_empty !dq) do
         if !n_visited >= pb.max_nodes then raise Exit;
         match Nfc_util.Deque.pop_front !dq with
         | None -> raise Exit
         | Some ((cost, st), rest) ->
             dq := rest;
             if cost > pb.max_cost then raise Exit;
             let key = (st.psid, st.prid, st.ptr, st.prt) in
             if not (Ptbl.mem visited key) then begin
               Ptbl.add visited key ();
               incr n_visited;
               (* Goal: a delivery is enabled. *)
               (let emit, r', prid' = rpoll ctx st in
                match emit with
                | Some Spec.Rdeliver ->
                    result := Some cost;
                    raise Exit
                | Some (Spec.Rsend pkt) ->
                    push_front
                      ( cost,
                        {
                          st with
                          preceiver = r';
                          prid = prid';
                          prt = Pvec.add st.prt (Pvec.Index.id ctx.pkts pkt);
                        } )
                | None ->
                    if prid' <> st.prid then
                      push_front (cost, { st with preceiver = r'; prid = prid' }));
               (let emit, s', psid' = spoll ctx st in
                match emit with
                | Some pkt ->
                    push_back
                      ( cost + 1,
                        {
                          st with
                          psender = s';
                          psid = psid';
                          ptr = Pvec.add st.ptr (Pvec.Index.id ctx.pkts pkt);
                        } )
                | None ->
                    if psid' <> st.psid then
                      push_front (cost, { st with psender = s'; psid = psid' }));
               Pvec.Index.iter_by_value ctx.pkts (fun id ->
                   match Pvec.remove_one st.ptr id with
                   | Some tr' ->
                       let pkt = Pvec.Index.packet ctx.pkts id in
                       let r', prid' = data ctx st pkt in
                       push_front (cost, { st with preceiver = r'; prid = prid'; ptr = tr' })
                   | None -> ());
               Pvec.Index.iter_by_value ctx.pkts (fun id ->
                   match Pvec.remove_one st.prt id with
                   | Some rt' ->
                       let pkt = Pvec.Index.packet ctx.pkts id in
                       let s', psid' = ack ctx st pkt in
                       push_front (cost, { st with psender = s'; psid = psid'; prt = rt' })
                   | None -> ())
             end
       done
     with Exit -> ());
    !result

  let take n xs =
    let rec go n acc = function
      | [] -> (List.rev acc, 0)
      | rest when n <= 0 -> (List.rev acc, List.length rest)
      | x :: rest -> go (n - 1) (x :: acc) rest
    in
    go n [] xs

  (* Split [xs] into [k] contiguous chunks (first chunks one longer on
     remainder).  Chunking is a performance knob only: probe results are
     aggregated commutatively, so chunk boundaries never change the
     report. *)
  let chunk k xs =
    let n = List.length xs in
    let k = max 1 (min k n) in
    let per = n / k and rem = n mod k in
    let rec go i xs acc =
      if i >= k then List.rev acc
      else
        let len = per + if i < rem then 1 else 0 in
        let taken, _ = take len xs in
        let rest =
          let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
          drop len xs
        in
        go (i + 1) rest (taken :: acc)
    in
    if n = 0 then [] else go 0 xs []

  (* Rank the distinct interned states of [configs] by their comparator,
     so configurations can then be ordered on integer keys alone. *)
  let rank_states get_id get_state cmp configs =
    let states = Hashtbl.create 64 in
    List.iter
      (fun c -> if not (Hashtbl.mem states (get_id c)) then Hashtbl.add states (get_id c) (get_state c))
      configs;
    let items = Hashtbl.fold (fun id st acc -> (id, st) :: acc) states [] in
    let sorted = List.sort (fun (_, a) (_, b) -> cmp a b) items in
    let ranks = Hashtbl.create 64 in
    List.iteri (fun rank (id, _) -> Hashtbl.replace ranks id rank) sorted;
    ranks

  let measure ?max_probes ?(jobs = 1) ?(domains = 1) ?checkpoint ?reach
      ~(explore : Explore.bounds) ~(probe_bounds : probe_bounds) () =
    (* A caller-supplied ungated exploration at the same bounds stands in
       for the gated pass exactly when it is phantom-free: then every
       delivery taken had a message pending, so the gated traversal would
       make the identical moves and visit the identical set.  A reach
       carrying a phantom is ignored and the gated pass runs. *)
    let reach =
      match reach with
      | Some r when r.E.first_phantom = None -> r
      | _ -> E.reachable_set ~deliver_valid_only:true ~domains ?checkpoint explore
    in
    let stats = reach.E.reach_stats in
    let semi_valid =
      List.filter (fun c -> c.E.submitted = c.E.delivered + 1) reach.E.configs
    in
    let n_semi = List.length semi_valid in
    let budget = match max_probes with None -> max_int | Some n -> n in
    (* Sample the first [max_probes] semi-valid configurations in the
       canonical configuration order ({!E.compare_config}) — the same
       subset the tree-based engine probed when it iterated its visited
       {e set}.  When every configuration is probed anyway, order is
       irrelevant (the aggregation is commutative) and the sort is
       skipped.  The sort itself runs on precomputed integer keys:
       comparator ranks for the states, decoded value-sorted association
       lists for the channels — the same total order at a fraction of the
       comparator calls. *)
    let sampled, skipped =
      if budget >= n_semi then (semi_valid, 0)
      else begin
        let srank = rank_states (fun c -> c.E.sid) (fun c -> c.E.sender) P.compare_sender semi_valid in
        let rrank =
          rank_states (fun c -> c.E.rid) (fun c -> c.E.receiver) P.compare_receiver semi_valid
        in
        let keyed =
          List.map
            (fun c ->
              ( ( c.E.submitted,
                  c.E.delivered,
                  Hashtbl.find srank c.E.sid,
                  Hashtbl.find rrank c.E.rid,
                  E.packets_tr c,
                  E.packets_rt c ),
                c ))
            semi_valid
        in
        let sorted = List.sort (fun (ka, _) (kb, _) -> Stdlib.compare ka kb) keyed in
        take budget (List.map snd sorted)
      end
    in
    let costs =
      List.concat
        (Pool.map ~jobs
           (fun chunk ->
             let ctx = make_ctx () in
             List.map
               (fun c -> probe ctx probe_bounds ~sender:c.E.sender ~receiver:c.E.receiver)
               chunk)
           (chunk (if jobs <= 0 then Pool.recommended () else jobs) sampled))
    in
    (* Max + count are order-independent, so neither chunking nor parallel
       completion order can change the report. *)
    let exhausted = List.length (List.filter Option.is_none costs) in
    let boundness =
      if exhausted > 0 then None
      else Some (List.fold_left (fun acc c -> max acc (Option.value c ~default:0)) 0 costs)
    in
    {
      protocol = P.name;
      k_t = stats.Explore.sender_states;
      k_r = stats.Explore.receiver_states;
      state_product = stats.Explore.sender_states * stats.Explore.receiver_states;
      configs_explored = stats.Explore.nodes;
      semi_valid_configs = n_semi;
      boundness;
      probes_exhausted = exhausted;
      probes_skipped = skipped;
      engine_domains = max 1 domains;
      por = explore.Explore.por;
    }
end

let measure ?max_probes ?jobs ?domains ?checkpoint (proto : Spec.t)
    ~(explore : Explore.bounds) ~(probe : probe_bounds) =
  let module P = (val proto) in
  let module B = Make (P) in
  B.measure ?max_probes ?jobs ?domains ?checkpoint ?reach:None ~explore ~probe_bounds:probe ()
