open Nfc_automata
module M = Nfc_util.Multiset.Int
module Spec = Nfc_protocol.Spec

type bounds = {
  capacity_tr : int;
  capacity_rt : int;
  submit_budget : int;
  max_nodes : int;
  allow_drop : bool;
}

let default_bounds =
  { capacity_tr = 3; capacity_rt = 3; submit_budget = 3; max_nodes = 200_000; allow_drop = true }

type stats = {
  nodes : int;
  sender_states : int;
  receiver_states : int;
  max_depth : int;
}

type outcome = Violation of Execution.t | No_violation of stats | Node_budget of stats
type wedge_outcome = Wedged of Execution.t * stats | No_wedge of stats

let pp_wedge_outcome ppf = function
  | Wedged (t, s) ->
      Format.fprintf ppf
        "@[<v>WEDGED after %d actions (no continuation delivers; %d configurations):@,%a@]"
        (List.length t) s.nodes Execution.pp t
  | No_wedge s ->
      Format.fprintf ppf "no wedge: every pending configuration can still deliver (%d configurations)"
        s.nodes

let pp_outcome ppf = function
  | Violation t ->
      Format.fprintf ppf "@[<v>VIOLATION (%d actions):@,%a@]" (List.length t) Execution.pp t
  | No_violation s ->
      Format.fprintf ppf "no violation in %d configurations (k_t=%d, k_r=%d, depth<=%d)"
        s.nodes s.sender_states s.receiver_states s.max_depth
  | Node_budget s ->
      Format.fprintf ppf
        "no violation within node budget (%d configurations, k_t=%d, k_r=%d, depth<=%d)"
        s.nodes s.sender_states s.receiver_states s.max_depth

module Make (P : Spec.S) = struct
  type config = {
    sender : P.sender;
    receiver : P.receiver;
    tr : M.t;
    rt : M.t;
    submitted : int;
    delivered : int;
  }

  module Cfg = struct
    type t = config

    let compare a b =
      let c = compare a.submitted b.submitted in
      if c <> 0 then c
      else
        let c = compare a.delivered b.delivered in
        if c <> 0 then c
        else
          let c = P.compare_sender a.sender b.sender in
          if c <> 0 then c
          else
            let c = P.compare_receiver a.receiver b.receiver in
            if c <> 0 then c
            else
              let c = M.compare a.tr b.tr in
              if c <> 0 then c else M.compare a.rt b.rt
  end

  module Cset = Set.Make (Cfg)

  let initial =
    {
      sender = P.sender_init;
      receiver = P.receiver_init;
      tr = M.empty;
      rt = M.empty;
      submitted = 0;
      delivered = 0;
    }

  (* Successors with the action that labels the move ([None] = silent). *)
  let successors bounds c =
    let moves = ref [] in
    let push act c' = moves := (act, c') :: !moves in
    (* User submission. *)
    if c.submitted < bounds.submit_budget then
      push (Some (Action.Send_msg c.submitted))
        { c with sender = P.on_submit c.sender; submitted = c.submitted + 1 };
    (* Sender poll: emission or silent tick. *)
    (match P.sender_poll c.sender with
    | Some pkt, s' ->
        if M.cardinal c.tr < bounds.capacity_tr then
          push
            (Some (Action.Send_pkt (Action.T_to_r, pkt)))
            { c with sender = s'; tr = M.add pkt c.tr }
    | None, s' -> if P.compare_sender s' c.sender <> 0 then push None { c with sender = s' });
    (* Receiver poll: delivery, reverse send, or silent tick. *)
    (match P.receiver_poll c.receiver with
    | Some Spec.Rdeliver, r' ->
        push
          (Some (Action.Receive_msg c.delivered))
          { c with receiver = r'; delivered = c.delivered + 1 }
    | Some (Spec.Rsend pkt), r' ->
        if M.cardinal c.rt < bounds.capacity_rt then
          push
            (Some (Action.Send_pkt (Action.R_to_t, pkt)))
            { c with receiver = r'; rt = M.add pkt c.rt }
    | None, r' -> if P.compare_receiver r' c.receiver <> 0 then push None { c with receiver = r' });
    (* Adversarial channel: deliver any in-transit packet, either direction. *)
    List.iter
      (fun pkt ->
        match M.remove_one pkt c.tr with
        | Some tr' ->
            push
              (Some (Action.Receive_pkt (Action.T_to_r, pkt)))
              { c with tr = tr'; receiver = P.on_data c.receiver pkt };
            if bounds.allow_drop then
              push (Some (Action.Drop_pkt (Action.T_to_r, pkt))) { c with tr = tr' }
        | None -> ())
      (M.support c.tr);
    List.iter
      (fun pkt ->
        match M.remove_one pkt c.rt with
        | Some rt' ->
            push
              (Some (Action.Receive_pkt (Action.R_to_t, pkt)))
              { c with rt = rt'; sender = P.on_ack c.sender pkt };
            if bounds.allow_drop then
              push (Some (Action.Drop_pkt (Action.R_to_t, pkt))) { c with rt = rt' }
        | None -> ())
      (M.support c.rt);
    List.rev !moves

  type reach = { configs : config list; truncated : bool; reach_stats : stats }

  (* The reachable set itself, in BFS order, for consumers that need the
     configurations and not just a counterexample search: the linter walks
     it to certify header budgets, probe input-enabledness and detect dead
     configurations. *)
  let reachable_set bounds =
    let module Sset = Set.Make (struct
      type t = P.sender

      let compare = P.compare_sender
    end) in
    let module Rset = Set.Make (struct
      type t = P.receiver

      let compare = P.compare_receiver
    end) in
    let visited = ref Cset.empty in
    let order = ref [] in
    let n_visited = ref 0 in
    let senders = ref Sset.empty in
    let receivers = ref Rset.empty in
    let max_depth = ref 0 in
    let truncated = ref false in
    let queue = Queue.create () in
    let visit cfg depth =
      if not (Cset.mem cfg !visited) then
        if !n_visited >= bounds.max_nodes then truncated := true
        else begin
          visited := Cset.add cfg !visited;
          incr n_visited;
          order := cfg :: !order;
          senders := Sset.add cfg.sender !senders;
          receivers := Rset.add cfg.receiver !receivers;
          max_depth := max !max_depth depth;
          Queue.push (cfg, depth) queue
        end
    in
    visit initial 0;
    while not (Queue.is_empty queue) do
      let cfg, depth = Queue.pop queue in
      List.iter (fun (_, cfg') -> visit cfg' (depth + 1)) (successors bounds cfg)
    done;
    {
      configs = List.rev !order;
      truncated = !truncated;
      reach_stats =
        {
          nodes = !n_visited;
          sender_states = Sset.cardinal !senders;
          receiver_states = Rset.cardinal !receivers;
          max_depth = !max_depth;
        };
    }

  type node = { cfg : config; parent : int; act : Action.t option; depth : int }

  let search ?(stop_at_phantom = true) bounds =
    let module Sset = Set.Make (struct
      type t = P.sender

      let compare = P.compare_sender
    end) in
    let module Rset = Set.Make (struct
      type t = P.receiver

      let compare = P.compare_receiver
    end) in
    let nodes : node array ref = ref (Array.make 1024 { cfg = initial; parent = -1; act = None; depth = 0 }) in
    let n_nodes = ref 0 in
    let add_node node =
      if !n_nodes >= Array.length !nodes then begin
        let bigger = Array.make (2 * Array.length !nodes) node in
        Array.blit !nodes 0 bigger 0 !n_nodes;
        nodes := bigger
      end;
      !nodes.(!n_nodes) <- node;
      incr n_nodes;
      !n_nodes - 1
    in
    let visited = ref Cset.empty in
    let n_visited = ref 0 in
    let senders = ref Sset.empty in
    let receivers = ref Rset.empty in
    let max_depth = ref 0 in
    let queue = Queue.create () in
    let visit cfg parent act depth =
      if not (Cset.mem cfg !visited) then begin
        visited := Cset.add cfg !visited;
        incr n_visited;
        senders := Sset.add cfg.sender !senders;
        receivers := Rset.add cfg.receiver !receivers;
        max_depth := max !max_depth depth;
        let idx = add_node { cfg; parent; act; depth } in
        Queue.push idx queue
      end
    in
    let path_to idx =
      let rec go idx acc =
        if idx < 0 then acc
        else
          let node = !nodes.(idx) in
          let acc = match node.act with None -> acc | Some a -> a :: acc in
          go node.parent acc
      in
      go idx []
    in
    visit initial (-1) None 0;
    let result = ref None in
    (try
       while not (Queue.is_empty queue) do
         if !n_visited >= bounds.max_nodes then raise Exit;
         let idx = Queue.pop queue in
         let node = !nodes.(idx) in
         List.iter
           (fun (act, cfg') ->
             (* Phantom delivery: more receive_msg than send_msg. *)
             if stop_at_phantom && cfg'.delivered > cfg'.submitted then begin
               let prefix = path_to idx in
               let final = match act with Some a -> [ a ] | None -> [] in
               result := Some (prefix @ final);
               raise Exit
             end;
             visit cfg' idx act (node.depth + 1))
           (successors bounds node.cfg)
       done
     with Exit -> ());
    let stats =
      {
        nodes = !n_visited;
        sender_states = Sset.cardinal !senders;
        receiver_states = Rset.cardinal !receivers;
        max_depth = !max_depth;
      }
    in
    match !result with
    | Some trace -> Violation trace
    | None -> if !n_visited >= bounds.max_nodes then Node_budget stats else No_violation stats

  (* Liveness: explore the graph fully (within budget), then propagate
     "can eventually deliver" backwards.  A semi-valid configuration not
     reached by the propagation is wedged.  Frontier (unexpanded) nodes
     are conservatively assumed able to deliver. *)
  let find_wedge_search bounds =
    let module Cmap = Map.Make (Cfg) in
    let nodes = ref [||] in
    let n_nodes = ref 0 in
    let index = ref Cmap.empty in
    let parents = ref [||] in
    let parent_act = ref [||] in
    let preds : int list array ref = ref [||] in
    let expanded = ref [||] in
    let delivery_enabled = ref [||] in
    let grow () =
      let len = max 1024 (2 * Array.length !nodes) in
      let resize a mk = 
        let bigger = Array.make len mk in
        Array.blit a 0 bigger 0 !n_nodes;
        bigger
      in
      nodes := resize !nodes initial;
      parents := resize !parents (-1);
      parent_act := resize !parent_act None;
      preds := resize !preds [];
      expanded := resize !expanded false;
      delivery_enabled := resize !delivery_enabled false
    in
    let add cfg parent act =
      match Cmap.find_opt cfg !index with
      | Some id ->
          if parent >= 0 then !preds.(id) <- parent :: !preds.(id);
          None
      | None ->
          if !n_nodes >= Array.length !nodes then grow ();
          let id = !n_nodes in
          incr n_nodes;
          !nodes.(id) <- cfg;
          !parents.(id) <- parent;
          !parent_act.(id) <- act;
          if parent >= 0 then !preds.(id) <- parent :: !preds.(id);
          index := Cmap.add cfg id !index;
          Some id
    in
    let queue = Queue.create () in
    (match add initial (-1) None with Some id -> Queue.push id queue | None -> ());
    (try
       while not (Queue.is_empty queue) do
         if !n_nodes >= bounds.max_nodes then raise Exit;
         let id = Queue.pop queue in
         !expanded.(id) <- true;
         List.iter
           (fun (act, cfg') ->
             (match act with
             | Some (Action.Receive_msg _) -> !delivery_enabled.(id) <- true
             | _ -> ());
             match add cfg' id act with
             | Some id' -> Queue.push id' queue
             | None -> ())
           (successors bounds !nodes.(id))
       done
     with Exit -> ());
    (* Backward propagation of "good" (can eventually deliver). *)
    let good = Array.make !n_nodes false in
    let work = Queue.create () in
    for id = 0 to !n_nodes - 1 do
      if !delivery_enabled.(id) || not !expanded.(id) then begin
        good.(id) <- true;
        Queue.push id work
      end
    done;
    while not (Queue.is_empty work) do
      let id = Queue.pop work in
      List.iter
        (fun p ->
          if not good.(p) then begin
            good.(p) <- true;
            Queue.push p work
          end)
        !preds.(id)
    done;
    (* Shortest wedged semi-valid configuration = first in BFS order. *)
    let wedged = ref None in
    (try
       for id = 0 to !n_nodes - 1 do
         let c = !nodes.(id) in
         if (not good.(id)) && c.submitted > c.delivered && !expanded.(id) then begin
           wedged := Some id;
           raise Exit
         end
       done
     with Exit -> ());
    let stats =
      {
        nodes = !n_nodes;
        sender_states = 0;
        receiver_states = 0;
        max_depth = 0;
      }
    in
    match !wedged with
    | None -> No_wedge stats
    | Some id ->
        let rec path id acc =
          if id < 0 then acc
          else
            let acc =
              match !parent_act.(id) with None -> acc | Some a -> a :: acc
            in
            path !parents.(id) acc
        in
        Wedged (path id [], stats)
end

let find_phantom (proto : Spec.t) bounds =
  let module P = (val proto) in
  let module E = Make (P) in
  E.search ~stop_at_phantom:true bounds

let reachable (proto : Spec.t) bounds =
  let module P = (val proto) in
  let module E = Make (P) in
  match E.search ~stop_at_phantom:false bounds with
  | Violation _ -> assert false
  | No_violation s | Node_budget s -> s

let find_wedge (proto : Spec.t) bounds =
  let module P = (val proto) in
  let module E = Make (P) in
  E.find_wedge_search bounds
