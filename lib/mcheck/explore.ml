open Nfc_automata
module Spec = Nfc_protocol.Spec

type bounds = {
  capacity_tr : int;
  capacity_rt : int;
  submit_budget : int;
  max_nodes : int;
  allow_drop : bool;
}

let default_bounds =
  { capacity_tr = 3; capacity_rt = 3; submit_budget = 3; max_nodes = 200_000; allow_drop = true }

let bounds_key b =
  Printf.sprintf "c%d:%d/s%d/n%d/d%b" b.capacity_tr b.capacity_rt b.submit_budget b.max_nodes
    b.allow_drop

type stats = {
  nodes : int;
  sender_states : int;
  receiver_states : int;
  max_depth : int;
}

type outcome = Violation of Execution.t | No_violation of stats | Node_budget of stats
type wedge_outcome = Wedged of Execution.t * stats | No_wedge of stats

let pp_wedge_outcome ppf = function
  | Wedged (t, s) ->
      Format.fprintf ppf
        "@[<v>WEDGED after %d actions (no continuation delivers; %d configurations):@,%a@]"
        (List.length t) s.nodes Execution.pp t
  | No_wedge s ->
      Format.fprintf ppf "no wedge: every pending configuration can still deliver (%d configurations)"
        s.nodes

let pp_outcome ppf = function
  | Violation t ->
      Format.fprintf ppf "@[<v>VIOLATION (%d actions):@,%a@]" (List.length t) Execution.pp t
  | No_violation s ->
      Format.fprintf ppf "no violation in %d configurations (k_t=%d, k_r=%d, depth<=%d)"
        s.nodes s.sender_states s.receiver_states s.max_depth
  | Node_budget s ->
      Format.fprintf ppf
        "no violation within node budget (%d configurations, k_t=%d, k_r=%d, depth<=%d)"
        s.nodes s.sender_states s.receiver_states s.max_depth

(* Generic state interner: dense ids in first-sight order.  With a hash
   hook the table is hash-bucketed and the comparator only breaks
   collisions; without one, a comparator-keyed balanced map stands in
   (always safe, O(log k) per lookup). *)
let intern_hashed (type a) (hash : a -> int) (equal : a -> a -> bool) : a -> int =
  let tbl : (int, (a * int) list) Hashtbl.t = Hashtbl.create 512 in
  let n = ref 0 in
  fun v ->
    let h = hash v in
    let bucket = match Hashtbl.find_opt tbl h with Some b -> b | None -> [] in
    match List.find_opt (fun (w, _) -> equal w v) bucket with
    | Some (_, id) -> id
    | None ->
        let id = !n in
        incr n;
        Hashtbl.replace tbl h ((v, id) :: bucket);
        id

module Make (P : Spec.S) = struct
  (* Each [Make] instantiation is one engine run with its own mutable
     intern tables; create engines inside the job that uses them and never
     share one across domains. *)

  module Smap = Map.Make (struct
    type t = P.sender

    let compare = P.compare_sender
  end)

  module Rmap = Map.Make (struct
    type t = P.receiver

    let compare = P.compare_receiver
  end)

  let intern_mapped (type a) (module M : Map.S with type key = a) : a -> int =
    let m = ref M.empty in
    let n = ref 0 in
    fun v ->
      match M.find_opt v !m with
      | Some id -> id
      | None ->
          let id = !n in
          incr n;
          m := M.add v id !m;
          id

  let intern_sender =
    match P.hash_sender with
    | Some h -> intern_hashed h (fun a b -> P.compare_sender a b = 0)
    | None -> intern_mapped (module Smap)

  let intern_receiver =
    match P.hash_receiver with
    | Some h -> intern_hashed h (fun a b -> P.compare_receiver a b = 0)
    | None -> intern_mapped (module Rmap)

  let pkts = Pvec.Index.create ()

  type config = {
    sender : P.sender;
    sid : int;
    receiver : P.receiver;
    rid : int;
    tr : Pvec.t;
    rt : Pvec.t;
    submitted : int;
    delivered : int;
  }

  (* Transition memo tables keyed on interned ids.  Spec transition
     functions are pure, so each distinct (state, input) pair is computed
     — and its result state interned — exactly once; afterwards a
     successor state costs one small-int table probe instead of a
     protocol call plus a structural hash.  (For instrumented specs that
     record exceptions, e.g. the linter's partiality probe, this means
     each distinct failing pair is recorded once rather than once per
     visit.) *)
  let memo tbl key f =
    match Hashtbl.find_opt tbl key with
    | Some v -> v
    | None ->
        let v = f () in
        Hashtbl.add tbl key v;
        v

  let submit_memo : (int, P.sender * int) Hashtbl.t = Hashtbl.create 256
  let spoll_memo : (int, int option * P.sender * int) Hashtbl.t = Hashtbl.create 256
  let rpoll_memo : (int, Spec.remit option * P.receiver * int) Hashtbl.t = Hashtbl.create 256
  let ack_memo : (int * int, P.sender * int) Hashtbl.t = Hashtbl.create 512
  let data_memo : (int * int, P.receiver * int) Hashtbl.t = Hashtbl.create 512

  (* The id-keyed steps are exposed (alongside the interners and the
     packet index) so sibling analyses over the same interned state space —
     the coverability engine of {!Nfc_absint.Cover} — share these memo
     tables instead of re-running protocol code. *)
  let step_submit s sid =
    memo submit_memo sid (fun () ->
        let s' = P.on_submit s in
        (s', intern_sender s'))

  let step_sender_poll s sid =
    memo spoll_memo sid (fun () ->
        let emit, s' = P.sender_poll s in
        (emit, s', intern_sender s'))

  let step_receiver_poll r rid =
    memo rpoll_memo rid (fun () ->
        let emit, r' = P.receiver_poll r in
        (emit, r', intern_receiver r'))

  let step_ack s sid pkt =
    memo ack_memo (sid, pkt) (fun () ->
        let s' = P.on_ack s pkt in
        (s', intern_sender s'))

  let step_data r rid pkt =
    memo data_memo (rid, pkt) (fun () ->
        let r' = P.on_data r pkt in
        (r', intern_receiver r'))

  let on_submit c = step_submit c.sender c.sid
  let sender_poll c = step_sender_poll c.sender c.sid
  let receiver_poll c = step_receiver_poll c.receiver c.rid
  let on_ack c pkt = step_ack c.sender c.sid pkt
  let on_data c pkt = step_data c.receiver c.rid pkt

  let initial =
    {
      sender = P.sender_init;
      sid = intern_sender P.sender_init;
      receiver = P.receiver_init;
      rid = intern_receiver P.receiver_init;
      tr = Pvec.empty;
      rt = Pvec.empty;
      submitted = 0;
      delivered = 0;
    }

  let assoc_of v =
    List.sort Stdlib.compare
      (Pvec.fold (fun id c acc -> (Pvec.Index.packet pkts id, c) :: acc) v [])

  let packets_tr c = assoc_of c.tr
  let packets_rt c = assoc_of c.rt

  (* The canonical comparator over configurations — the tree-based
     engine's visited-set order, kept for consumers that need a
     BFS-independent total order (boundness probes sample the first
     [max_probes] semi-valid configurations in this order). *)
  let compare_config a b =
    let c = compare a.submitted b.submitted in
    if c <> 0 then c
    else
      let c = compare a.delivered b.delivered in
      if c <> 0 then c
      else
        let c = P.compare_sender a.sender b.sender in
        if c <> 0 then c
        else
          let c = P.compare_receiver a.receiver b.receiver in
          if c <> 0 then c
          else
            (* Sorted (packet, count) association lists compare exactly as
               [Multiset.Int.compare] (bindings in key order) did. *)
            let c = Stdlib.compare (assoc_of a.tr) (assoc_of b.tr) in
            if c <> 0 then c else Stdlib.compare (assoc_of a.rt) (assoc_of b.rt)

  (* O(1) visited-set identity: interned state ids, packed counters, and
     canonical count vectors.  The interners already fell back to the
     comparators on hash collision, so id equality *is* comparator
     equality. *)
  module Ctbl = Hashtbl.Make (struct
    type t = config

    let equal a b =
      a.submitted = b.submitted && a.delivered = b.delivered && a.sid = b.sid
      && a.rid = b.rid && Pvec.equal a.tr b.tr && Pvec.equal a.rt b.rt

    let hash c =
      let h = (c.submitted * 31) + c.delivered in
      let h = (h * 1000003) lxor c.sid in
      let h = (h * 1000003) lxor c.rid in
      let h = (h * 1000003) lxor Pvec.hash c.tr in
      let h = (h * 1000003) lxor Pvec.hash c.rt in
      h land max_int
  end)

  (* Successors with the action that labels the move ([None] = silent).
     [deliver_valid_only] gates message delivery on a message actually
     pending — the boundness semantics, which never explores phantom
     branches.  Channel moves are enumerated in increasing packet-value
     order (see {!Pvec.Index.iter_by_value}), so BFS visits configurations
     in exactly the order the tree-based engine did.

     [iter_successors] is the allocation-free spine the breadth-first
     loops run on (one closure call per move, no list); [successors]
     reifies the same enumeration for consumers that want the list. *)
  let iter_successors ?(deliver_valid_only = false) bounds c push =
    (* User submission. *)
    if c.submitted < bounds.submit_budget then begin
      let s', sid' = on_submit c in
      push (Some (Action.Send_msg c.submitted))
        { c with sender = s'; sid = sid'; submitted = c.submitted + 1 }
    end;
    (* Sender poll: emission or silent tick. *)
    (let emit, s', sid' = sender_poll c in
     match emit with
     | Some pkt ->
         if Pvec.cardinal c.tr < bounds.capacity_tr then
           push
             (Some (Action.Send_pkt (Action.T_to_r, pkt)))
             { c with sender = s'; sid = sid'; tr = Pvec.add c.tr (Pvec.Index.id pkts pkt) }
     | None ->
         (* Interned-id equality is comparator equality, so this is the old
            [P.compare_sender s' c.sender <> 0] silent-tick test. *)
         if sid' <> c.sid then push None { c with sender = s'; sid = sid' });
    (* Receiver poll: delivery, reverse send, or silent tick. *)
    (let emit, r', rid' = receiver_poll c in
     match emit with
     | Some Spec.Rdeliver ->
         if (not deliver_valid_only) || c.delivered < c.submitted then
           push
             (Some (Action.Receive_msg c.delivered))
             { c with receiver = r'; rid = rid'; delivered = c.delivered + 1 }
     | Some (Spec.Rsend pkt) ->
         if Pvec.cardinal c.rt < bounds.capacity_rt then
           push
             (Some (Action.Send_pkt (Action.R_to_t, pkt)))
             { c with receiver = r'; rid = rid'; rt = Pvec.add c.rt (Pvec.Index.id pkts pkt) }
     | None -> if rid' <> c.rid then push None { c with receiver = r'; rid = rid' });
    (* Adversarial channel: deliver any in-transit packet, either direction. *)
    Pvec.Index.iter_by_value pkts (fun id ->
        match Pvec.remove_one c.tr id with
        | Some tr' ->
            let pkt = Pvec.Index.packet pkts id in
            let r', rid' = on_data c pkt in
            push
              (Some (Action.Receive_pkt (Action.T_to_r, pkt)))
              { c with receiver = r'; rid = rid'; tr = tr' };
            if bounds.allow_drop then
              push (Some (Action.Drop_pkt (Action.T_to_r, pkt))) { c with tr = tr' }
        | None -> ());
    Pvec.Index.iter_by_value pkts (fun id ->
        match Pvec.remove_one c.rt id with
        | Some rt' ->
            let pkt = Pvec.Index.packet pkts id in
            let s', sid' = on_ack c pkt in
            push
              (Some (Action.Receive_pkt (Action.R_to_t, pkt)))
              { c with sender = s'; sid = sid'; rt = rt' };
            if bounds.allow_drop then
              push (Some (Action.Drop_pkt (Action.R_to_t, pkt))) { c with rt = rt' }
        | None -> ())

  let successors ?deliver_valid_only bounds c =
    let moves = ref [] in
    iter_successors ?deliver_valid_only bounds c (fun act c' ->
        moves := (act, c') :: !moves);
    List.rev !moves

  type reach = {
    configs : config list;
    truncated : bool;
    reach_stats : stats;
    first_phantom : int option;
    phantom_in_budget : bool;
  }

  (* The reachable set itself, in BFS order, for consumers that need the
     configurations and not just a counterexample search: the linter walks
     it to certify header budgets, probe input-enabledness and detect dead
     configurations; boundness measurement reuses it with
     [~deliver_valid_only:true].

     The sweep also scans for phantom deliveries as it generates
     successors.  [first_phantom] is the action count of the first move
     (in BFS generation order — exactly the move {!search} stops at) that
     produces a configuration with [delivered > submitted], [None] when no
     expansion anywhere produced one.  [first_phantom = None] certifies
     that the ungated and delivery-gated successor graphs coincide on this
     exploration: every delivery taken had a message pending, so a gated
     traversal would make the identical moves — {!Boundness} exploits this
     to skip its own gated pass.  [phantom_in_budget] tells whether the
     phantom move was generated before the point where {!search} would
     have exhausted its node budget, i.e. whether [search] would have
     returned [Violation] rather than [Node_budget]. *)
  let reachable_set ?deliver_valid_only bounds =
    let visited = Ctbl.create 4096 in
    let senders = Hashtbl.create 256 in
    let receivers = Hashtbl.create 256 in
    let order = ref [] in
    let n_visited = ref 0 in
    let max_depth = ref 0 in
    let truncated = ref false in
    let first_phantom = ref None in
    let phantom_in_budget = ref false in
    let scan_in_budget = ref true in
    let queue : (config * int * int) Queue.t = Queue.create () in
    let visit cfg depth acts =
      if not (Ctbl.mem visited cfg) then
        if !n_visited >= bounds.max_nodes then truncated := true
        else begin
          Ctbl.add visited cfg ();
          incr n_visited;
          order := cfg :: !order;
          Hashtbl.replace senders cfg.sid ();
          Hashtbl.replace receivers cfg.rid ();
          if depth > !max_depth then max_depth := depth;
          Queue.push (cfg, depth, acts) queue
        end
    in
    visit initial 0 0;
    while not (Queue.is_empty queue) do
      let cfg, depth, acts = Queue.pop queue in
      (* [search] exits at the first dequeue past the node budget; phantoms
         generated beyond that point are real but budget-invisible. *)
      if !n_visited >= bounds.max_nodes then scan_in_budget := false;
      iter_successors ?deliver_valid_only bounds cfg (fun act cfg' ->
          let acts' = acts + (match act with Some _ -> 1 | None -> 0) in
          if !first_phantom = None && cfg'.delivered > cfg'.submitted then begin
            first_phantom := Some acts';
            phantom_in_budget := !scan_in_budget
          end;
          visit cfg' (depth + 1) acts')
    done;
    {
      configs = List.rev !order;
      truncated = !truncated;
      reach_stats =
        {
          nodes = !n_visited;
          sender_states = Hashtbl.length senders;
          receiver_states = Hashtbl.length receivers;
          max_depth = !max_depth;
        };
      first_phantom = !first_phantom;
      phantom_in_budget = !phantom_in_budget;
    }

  type node = { cfg : config; parent : int; act : Action.t option; depth : int }

  let search ?(stop_at_phantom = true) bounds =
    let nodes : node array ref =
      ref (Array.make 1024 { cfg = initial; parent = -1; act = None; depth = 0 })
    in
    let n_nodes = ref 0 in
    let add_node node =
      if !n_nodes >= Array.length !nodes then begin
        let bigger = Array.make (2 * Array.length !nodes) node in
        Array.blit !nodes 0 bigger 0 !n_nodes;
        nodes := bigger
      end;
      !nodes.(!n_nodes) <- node;
      incr n_nodes;
      !n_nodes - 1
    in
    let visited = Ctbl.create 4096 in
    let senders = Hashtbl.create 256 in
    let receivers = Hashtbl.create 256 in
    let n_visited = ref 0 in
    let max_depth = ref 0 in
    let queue = Queue.create () in
    let visit cfg parent act depth =
      if not (Ctbl.mem visited cfg) then begin
        Ctbl.add visited cfg ();
        incr n_visited;
        Hashtbl.replace senders cfg.sid ();
        Hashtbl.replace receivers cfg.rid ();
        if depth > !max_depth then max_depth := depth;
        let idx = add_node { cfg; parent; act; depth } in
        Queue.push idx queue
      end
    in
    let path_to idx =
      let rec go idx acc =
        if idx < 0 then acc
        else
          let node = !nodes.(idx) in
          let acc = match node.act with None -> acc | Some a -> a :: acc in
          go node.parent acc
      in
      go idx []
    in
    visit initial (-1) None 0;
    let result = ref None in
    (try
       while not (Queue.is_empty queue) do
         if !n_visited >= bounds.max_nodes then raise Exit;
         let idx = Queue.pop queue in
         let node = !nodes.(idx) in
         iter_successors bounds node.cfg (fun act cfg' ->
             (* Phantom delivery: more receive_msg than send_msg. *)
             if stop_at_phantom && cfg'.delivered > cfg'.submitted then begin
               let prefix = path_to idx in
               let final = match act with Some a -> [ a ] | None -> [] in
               result := Some (prefix @ final);
               raise Exit
             end;
             visit cfg' idx act (node.depth + 1))
       done
     with Exit -> ());
    let stats =
      {
        nodes = !n_visited;
        sender_states = Hashtbl.length senders;
        receiver_states = Hashtbl.length receivers;
        max_depth = !max_depth;
      }
    in
    match !result with
    | Some trace -> Violation trace
    | None -> if !n_visited >= bounds.max_nodes then Node_budget stats else No_violation stats

  (* Liveness: explore the graph fully (within budget), then propagate
     "can eventually deliver" backwards.  A semi-valid configuration not
     reached by the propagation is wedged.  Frontier (unexpanded) nodes
     are conservatively assumed able to deliver. *)
  let find_wedge_search bounds =
    let nodes = ref [||] in
    let n_nodes = ref 0 in
    let index = Ctbl.create 4096 in
    let parents = ref [||] in
    let parent_act = ref [||] in
    let preds : int list array ref = ref [||] in
    let expanded = ref [||] in
    let delivery_enabled = ref [||] in
    let grow () =
      let len = max 1024 (2 * Array.length !nodes) in
      let resize a mk =
        let bigger = Array.make len mk in
        Array.blit a 0 bigger 0 !n_nodes;
        bigger
      in
      nodes := resize !nodes initial;
      parents := resize !parents (-1);
      parent_act := resize !parent_act None;
      preds := resize !preds [];
      expanded := resize !expanded false;
      delivery_enabled := resize !delivery_enabled false
    in
    let add cfg parent act =
      match Ctbl.find_opt index cfg with
      | Some id ->
          if parent >= 0 then !preds.(id) <- parent :: !preds.(id);
          None
      | None ->
          if !n_nodes >= Array.length !nodes then grow ();
          let id = !n_nodes in
          incr n_nodes;
          !nodes.(id) <- cfg;
          !parents.(id) <- parent;
          !parent_act.(id) <- act;
          if parent >= 0 then !preds.(id) <- parent :: !preds.(id);
          Ctbl.add index cfg id;
          Some id
    in
    let queue = Queue.create () in
    (match add initial (-1) None with Some id -> Queue.push id queue | None -> ());
    (try
       while not (Queue.is_empty queue) do
         if !n_nodes >= bounds.max_nodes then raise Exit;
         let id = Queue.pop queue in
         !expanded.(id) <- true;
         iter_successors bounds !nodes.(id) (fun act cfg' ->
             (match act with
             | Some (Action.Receive_msg _) -> !delivery_enabled.(id) <- true
             | _ -> ());
             match add cfg' id act with
             | Some id' -> Queue.push id' queue
             | None -> ())
       done
     with Exit -> ());
    (* Backward propagation of "good" (can eventually deliver). *)
    let good = Array.make !n_nodes false in
    let work = Queue.create () in
    for id = 0 to !n_nodes - 1 do
      if !delivery_enabled.(id) || not !expanded.(id) then begin
        good.(id) <- true;
        Queue.push id work
      end
    done;
    while not (Queue.is_empty work) do
      let id = Queue.pop work in
      List.iter
        (fun p ->
          if not good.(p) then begin
            good.(p) <- true;
            Queue.push p work
          end)
        !preds.(id)
    done;
    (* Shortest wedged semi-valid configuration = first in BFS order. *)
    let wedged = ref None in
    (try
       for id = 0 to !n_nodes - 1 do
         let c = !nodes.(id) in
         if (not good.(id)) && c.submitted > c.delivered && !expanded.(id) then begin
           wedged := Some id;
           raise Exit
         end
       done
     with Exit -> ());
    let stats = { nodes = !n_nodes; sender_states = 0; receiver_states = 0; max_depth = 0 } in
    match !wedged with
    | None -> No_wedge stats
    | Some id ->
        let rec path id acc =
          if id < 0 then acc
          else
            let acc = match !parent_act.(id) with None -> acc | Some a -> a :: acc in
            path !parents.(id) acc
        in
        Wedged (path id [], stats)
end

let find_phantom (proto : Spec.t) bounds =
  let module P = (val proto) in
  let module E = Make (P) in
  E.search ~stop_at_phantom:true bounds

let reachable (proto : Spec.t) bounds =
  let module P = (val proto) in
  let module E = Make (P) in
  match E.search ~stop_at_phantom:false bounds with
  | Violation _ -> assert false
  | No_violation s | Node_budget s -> s

let find_wedge (proto : Spec.t) bounds =
  let module P = (val proto) in
  let module E = Make (P) in
  E.find_wedge_search bounds
