open Nfc_automata
module Spec = Nfc_protocol.Spec

type bounds = {
  capacity_tr : int;
  capacity_rt : int;
  submit_budget : int;
  max_nodes : int;
  allow_drop : bool;
  por : bool;
}

let default_bounds =
  {
    capacity_tr = 3;
    capacity_rt = 3;
    submit_budget = 3;
    max_nodes = 200_000;
    allow_drop = true;
    por = false;
  }

let bounds_key b =
  Printf.sprintf "c%d:%d/s%d/n%d/d%b/p%b" b.capacity_tr b.capacity_rt b.submit_budget
    b.max_nodes b.allow_drop b.por

type stats = {
  nodes : int;
  sender_states : int;
  receiver_states : int;
  max_depth : int;
}

type outcome = Violation of Execution.t | No_violation of stats | Node_budget of stats
type wedge_outcome = Wedged of Execution.t * stats | No_wedge of stats

let pp_wedge_outcome ppf = function
  | Wedged (t, s) ->
      Format.fprintf ppf
        "@[<v>WEDGED after %d actions (no continuation delivers; %d configurations):@,%a@]"
        (List.length t) s.nodes Execution.pp t
  | No_wedge s ->
      Format.fprintf ppf "no wedge: every pending configuration can still deliver (%d configurations)"
        s.nodes

let pp_outcome ppf = function
  | Violation t ->
      Format.fprintf ppf "@[<v>VIOLATION (%d actions):@,%a@]" (List.length t) Execution.pp t
  | No_violation s ->
      Format.fprintf ppf "no violation in %d configurations (k_t=%d, k_r=%d, depth<=%d)"
        s.nodes s.sender_states s.receiver_states s.max_depth
  | Node_budget s ->
      Format.fprintf ppf
        "no violation within node budget (%d configurations, k_t=%d, k_r=%d, depth<=%d)"
        s.nodes s.sender_states s.receiver_states s.max_depth

(* Generic state interner: dense ids in first-sight order.  With a hash
   hook the table is hash-bucketed and the comparator only breaks
   collisions; without one, a comparator-keyed balanced map stands in
   (always safe, O(log k) per lookup). *)
let intern_hashed (type a) (hash : a -> int) (equal : a -> a -> bool) : a -> int =
  let tbl : (int, (a * int) list) Hashtbl.t = Hashtbl.create 512 in
  let n = ref 0 in
  fun v ->
    let h = hash v in
    let bucket = match Hashtbl.find_opt tbl h with Some b -> b | None -> [] in
    match List.find_opt (fun (w, _) -> equal w v) bucket with
    | Some (_, id) -> id
    | None ->
        let id = !n in
        incr n;
        Hashtbl.replace tbl h ((v, id) :: bucket);
        id

(* Minimal growable array (OCaml 5.1 has no stdlib Dynarray): the node
   stores of the level-synchronised engine, where the frontier of level L
   is the contiguous slice appended while finalising level L-1. *)
module Vec = struct
  type 'a t = { mutable arr : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { arr = Array.make 1024 dummy; len = 0; dummy }

  let push t v =
    if t.len >= Array.length t.arr then begin
      let bigger = Array.make (2 * Array.length t.arr) t.dummy in
      Array.blit t.arr 0 bigger 0 t.len;
      t.arr <- bigger
    end;
    t.arr.(t.len) <- v;
    t.len <- t.len + 1

  let get t i = t.arr.(i)
  let length t = t.len
  let to_array t = Array.sub t.arr 0 t.len
end

module Make (P : Spec.S) = struct
  (* Each [Make] instantiation is one engine run with its own mutable
     intern tables; create engines inside the job that uses them and never
     share one across domains.  (The multi-domain exploration below is
     *internal* to a single entry-point call: workers synchronise on
     [engine_lock] and level barriers, and the instance is still
     single-caller.) *)

  module Smap = Map.Make (struct
    type t = P.sender

    let compare = P.compare_sender
  end)

  module Rmap = Map.Make (struct
    type t = P.receiver

    let compare = P.compare_receiver
  end)

  let intern_mapped (type a) (module M : Map.S with type key = a) : a -> int =
    let m = ref M.empty in
    let n = ref 0 in
    fun v ->
      match M.find_opt v !m with
      | Some id -> id
      | None ->
          let id = !n in
          incr n;
          m := M.add v id !m;
          id

  let intern_sender =
    match P.hash_sender with
    | Some h -> intern_hashed h (fun a b -> P.compare_sender a b = 0)
    | None -> intern_mapped (module Smap)

  let intern_receiver =
    match P.hash_receiver with
    | Some h -> intern_hashed h (fun a b -> P.compare_receiver a b = 0)
    | None -> intern_mapped (module Rmap)

  let pkts = Pvec.Index.create ()

  type config = {
    sender : P.sender;
    sid : int;
    receiver : P.receiver;
    rid : int;
    tr : Pvec.t;
    rt : Pvec.t;
    submitted : int;
    delivered : int;
  }

  (* Transition memo tables keyed on interned ids.  Spec transition
     functions are pure, so each distinct (state, input) pair is computed
     — and its result state interned — exactly once; afterwards a
     successor state costs one small-int table probe instead of a
     protocol call plus a structural hash.  (For instrumented specs that
     record exceptions, e.g. the linter's partiality probe, this means
     each distinct failing pair is recorded once rather than once per
     visit.)

     In multi-domain exploration these tables are the merged memo state:
     workers front them with per-domain caches ([worker_ctx]) and fill
     misses under [engine_lock], so a (state, input) pair still runs
     protocol code exactly once engine-wide and every domain's cache
     converges on the same entries at quiescence. *)
  let memo tbl key f =
    match Hashtbl.find_opt tbl key with
    | Some v -> v
    | None ->
        let v = f () in
        Hashtbl.add tbl key v;
        v

  let submit_memo : (int, P.sender * int) Hashtbl.t = Hashtbl.create 256
  let spoll_memo : (int, int option * P.sender * int) Hashtbl.t = Hashtbl.create 256
  let rpoll_memo : (int, Spec.remit option * P.receiver * int) Hashtbl.t = Hashtbl.create 256
  let ack_memo : (int * int, P.sender * int) Hashtbl.t = Hashtbl.create 512
  let data_memo : (int * int, P.receiver * int) Hashtbl.t = Hashtbl.create 512

  (* The id-keyed steps are exposed (alongside the interners and the
     packet index) so sibling analyses over the same interned state space —
     the coverability engine of {!Nfc_absint.Cover} — share these memo
     tables instead of re-running protocol code. *)
  let step_submit s sid =
    memo submit_memo sid (fun () ->
        let s' = P.on_submit s in
        (s', intern_sender s'))

  let step_sender_poll s sid =
    memo spoll_memo sid (fun () ->
        let emit, s' = P.sender_poll s in
        (emit, s', intern_sender s'))

  let step_receiver_poll r rid =
    memo rpoll_memo rid (fun () ->
        let emit, r' = P.receiver_poll r in
        (emit, r', intern_receiver r'))

  let step_ack s sid pkt =
    memo ack_memo (sid, pkt) (fun () ->
        let s' = P.on_ack s pkt in
        (s', intern_sender s'))

  let step_data r rid pkt =
    memo data_memo (rid, pkt) (fun () ->
        let r' = P.on_data r pkt in
        (r', intern_receiver r'))

  let on_submit c = step_submit c.sender c.sid
  let sender_poll c = step_sender_poll c.sender c.sid
  let receiver_poll c = step_receiver_poll c.receiver c.rid
  let on_ack c pkt = step_ack c.sender c.sid pkt
  let on_data c pkt = step_data c.receiver c.rid pkt

  let initial =
    {
      sender = P.sender_init;
      sid = intern_sender P.sender_init;
      receiver = P.receiver_init;
      rid = intern_receiver P.receiver_init;
      tr = Pvec.empty;
      rt = Pvec.empty;
      submitted = 0;
      delivered = 0;
    }

  let assoc_of v =
    List.sort Stdlib.compare
      (Pvec.fold (fun id c acc -> (Pvec.Index.packet pkts id, c) :: acc) v [])

  let packets_tr c = assoc_of c.tr
  let packets_rt c = assoc_of c.rt

  (* The canonical comparator over configurations — the tree-based
     engine's visited-set order, kept for consumers that need a
     BFS-independent total order (boundness probes sample the first
     [max_probes] semi-valid configurations in this order). *)
  let compare_config a b =
    let c = compare a.submitted b.submitted in
    if c <> 0 then c
    else
      let c = compare a.delivered b.delivered in
      if c <> 0 then c
      else
        let c = P.compare_sender a.sender b.sender in
        if c <> 0 then c
        else
          let c = P.compare_receiver a.receiver b.receiver in
          if c <> 0 then c
          else
            (* Sorted (packet, count) association lists compare exactly as
               [Multiset.Int.compare] (bindings in key order) did. *)
            let c = Stdlib.compare (assoc_of a.tr) (assoc_of b.tr) in
            if c <> 0 then c else Stdlib.compare (assoc_of a.rt) (assoc_of b.rt)

  (* O(1) visited-set identity: interned state ids, packed counters, and
     canonical count vectors.  The interners already fell back to the
     comparators on hash collision, so id equality *is* comparator
     equality. *)
  module Chash = struct
    type t = config

    let equal a b =
      a.submitted = b.submitted && a.delivered = b.delivered && a.sid = b.sid
      && a.rid = b.rid && Pvec.equal a.tr b.tr && Pvec.equal a.rt b.rt

    let hash c =
      let h = (c.submitted * 31) + c.delivered in
      let h = (h * 1000003) lxor c.sid in
      let h = (h * 1000003) lxor c.rid in
      let h = (h * 1000003) lxor Pvec.hash c.tr in
      let h = (h * 1000003) lxor Pvec.hash c.rt in
      h land max_int
  end

  module Ctbl = Hashtbl.Make (Chash)
  module Cshards = Shards.Make (Chash)

  module Pvtbl = Hashtbl.Make (struct
    type t = Pvec.t

    let equal = Pvec.equal
    let hash = Pvec.hash
  end)

  (* One lock serialises every mutation of engine-shared mutable state
     reachable from worker domains: the transition memo tables, the state
     interners, the packet index, and the channel-vector interner below.
     It is only ever taken on a worker-local cache miss, so at steady
     state (caches warm) the parallel phases run lock-free. *)
  let engine_lock = Mutex.create ()

  (* Dense ids for channel vectors — the [tr]/[rt] fields of the packed
     configuration key.  Assignment order is racy across runs (whichever
     worker misses first), but the ids never reach any output: they exist
     only inside packed visited-table keys, where only id *equality*
     (= vector equality) matters. *)
  let pvec_ids : int Pvtbl.t = Pvtbl.create 512
  let pvec_count = ref 0

  (* Successor enumeration is parameterised over how transition steps,
     packet interning, and alphabet iteration are performed: the
     sequential engine calls the memoised steps directly; parallel
     workers route every shared-state touch through per-domain caches and
     [engine_lock], and enumerate a level-start snapshot of the packet
     alphabet (fresh packets interned mid-level cannot occur in any
     current-level configuration's channels, so the snapshot enumerates
     exactly the moves the live index would). *)
  type step_ops = {
    o_submit : config -> P.sender * int;
    o_spoll : config -> int option * P.sender * int;
    o_rpoll : config -> Spec.remit option * P.receiver * int;
    o_ack : config -> int -> P.sender * int;
    o_data : config -> int -> P.receiver * int;
    o_pkt_id : int -> int;
    o_packet : int -> int;
    o_iter_ids : (int -> unit) -> unit;
  }

  let seq_ops =
    {
      o_submit = on_submit;
      o_spoll = sender_poll;
      o_rpoll = receiver_poll;
      o_ack = on_ack;
      o_data = on_data;
      o_pkt_id = (fun pkt -> Pvec.Index.id pkts pkt);
      o_packet = (fun id -> Pvec.Index.packet pkts id);
      o_iter_ids = (fun f -> Pvec.Index.iter_by_value pkts f);
    }

  (* Successors with the action that labels the move ([None] = silent).
     [deliver_valid_only] gates message delivery on a message actually
     pending — the boundness semantics, which never explores phantom
     branches.  Channel moves are enumerated in increasing packet-value
     order (see {!Pvec.Index.iter_by_value}), so BFS visits configurations
     in exactly the order the tree-based engine did.

     Partial-order reduction ([bounds.por]): over a multiset channel a
     drop commutes with every other move — Drop(d,p); m and m; Drop(d,p)
     reach the same configuration whenever both orders are enabled — and
     deferring a drop only grows the channel, so the only configurations
     a *lazy* dropper cannot reach are those an eager drop unlocked by
     freeing capacity.  Generating Drop moves only when the channel is at
     capacity therefore preserves exactly the station-state/counter
     projections (phantom reachability, packet alphabet, boundness probe
     verdicts); see DESIGN §5.13 for the argument and the Q1 caveat. *)
  let iter_successors_ops ops ?(deliver_valid_only = false) bounds c push =
    (* User submission. *)
    if c.submitted < bounds.submit_budget then begin
      let s', sid' = ops.o_submit c in
      push (Some (Action.Send_msg c.submitted))
        { c with sender = s'; sid = sid'; submitted = c.submitted + 1 }
    end;
    (* Sender poll: emission or silent tick. *)
    (let emit, s', sid' = ops.o_spoll c in
     match emit with
     | Some pkt ->
         if Pvec.cardinal c.tr < bounds.capacity_tr then
           push
             (Some (Action.Send_pkt (Action.T_to_r, pkt)))
             { c with sender = s'; sid = sid'; tr = Pvec.add c.tr (ops.o_pkt_id pkt) }
     | None ->
         (* Interned-id equality is comparator equality, so this is the old
            [P.compare_sender s' c.sender <> 0] silent-tick test. *)
         if sid' <> c.sid then push None { c with sender = s'; sid = sid' });
    (* Receiver poll: delivery, reverse send, or silent tick. *)
    (let emit, r', rid' = ops.o_rpoll c in
     match emit with
     | Some Spec.Rdeliver ->
         if (not deliver_valid_only) || c.delivered < c.submitted then
           push
             (Some (Action.Receive_msg c.delivered))
             { c with receiver = r'; rid = rid'; delivered = c.delivered + 1 }
     | Some (Spec.Rsend pkt) ->
         if Pvec.cardinal c.rt < bounds.capacity_rt then
           push
             (Some (Action.Send_pkt (Action.R_to_t, pkt)))
             { c with receiver = r'; rid = rid'; rt = Pvec.add c.rt (ops.o_pkt_id pkt) }
     | None -> if rid' <> c.rid then push None { c with receiver = r'; rid = rid' });
    (* Adversarial channel: deliver any in-transit packet, either direction.
       Drops are unconditional normally, lazy (at-capacity only) under POR. *)
    let drop_tr =
      bounds.allow_drop && ((not bounds.por) || Pvec.cardinal c.tr >= bounds.capacity_tr)
    in
    let drop_rt =
      bounds.allow_drop && ((not bounds.por) || Pvec.cardinal c.rt >= bounds.capacity_rt)
    in
    ops.o_iter_ids (fun id ->
        match Pvec.remove_one c.tr id with
        | Some tr' ->
            let pkt = ops.o_packet id in
            let r', rid' = ops.o_data c pkt in
            push
              (Some (Action.Receive_pkt (Action.T_to_r, pkt)))
              { c with receiver = r'; rid = rid'; tr = tr' };
            if drop_tr then
              push (Some (Action.Drop_pkt (Action.T_to_r, pkt))) { c with tr = tr' }
        | None -> ());
    ops.o_iter_ids (fun id ->
        match Pvec.remove_one c.rt id with
        | Some rt' ->
            let pkt = ops.o_packet id in
            let s', sid' = ops.o_ack c pkt in
            push
              (Some (Action.Receive_pkt (Action.R_to_t, pkt)))
              { c with sender = s'; sid = sid'; rt = rt' };
            if drop_rt then
              push (Some (Action.Drop_pkt (Action.R_to_t, pkt))) { c with rt = rt' }
        | None -> ())

  let iter_successors ?deliver_valid_only bounds c push =
    iter_successors_ops seq_ops ?deliver_valid_only bounds c push

  let successors ?deliver_valid_only bounds c =
    let moves = ref [] in
    iter_successors ?deliver_valid_only bounds c (fun act c' ->
        moves := (act, c') :: !moves);
    List.rev !moves

  (* Visited-table sizing: scale with the node budget (the table's true
     eventual population) instead of a fixed 4096, capped so absurd
     budgets don't pre-allocate gigabytes; [size_hint] overrides when the
     caller knows better (e.g. re-running a protocol whose reach is
     known). *)
  let visited_size ?size_hint bounds =
    match size_hint with
    | Some n -> max 16 n
    | None -> max 1024 (min bounds.max_nodes 1_048_576)

  (* Station-state tallies hold distinct *states*, not configurations:
     scale mildly with the visited size. *)
  let state_tbl_size sz = max 256 (min 4096 (sz / 64))

  let default_checkpoint () = ()

  type reach = {
    configs : config list;
    truncated : bool;
    reach_stats : stats;
    first_phantom : int option;
    phantom_in_budget : bool;
  }

  (* The reachable set itself, in BFS order, for consumers that need the
     configurations and not just a counterexample search: the linter walks
     it to certify header budgets, probe input-enabledness and detect dead
     configurations; boundness measurement reuses it with
     [~deliver_valid_only:true].

     The sweep also scans for phantom deliveries as it generates
     successors.  [first_phantom] is the action count of the first move
     (in BFS generation order — exactly the move {!search} stops at) that
     produces a configuration with [delivered > submitted], [None] when no
     expansion anywhere produced one.  [first_phantom = None] certifies
     that the ungated and delivery-gated successor graphs coincide on this
     exploration: every delivery taken had a message pending, so a gated
     traversal would make the identical moves — {!Boundness} exploits this
     to skip its own gated pass.  [phantom_in_budget] tells whether the
     phantom move was generated before the point where {!search} would
     have exhausted its node budget, i.e. whether [search] would have
     returned [Violation] rather than [Node_budget]. *)
  let seq_reachable_set ?deliver_valid_only ?(seeds = [ initial ]) ?size_hint ~checkpoint
      bounds =
    let sz = visited_size ?size_hint bounds in
    let visited = Ctbl.create sz in
    let senders = Hashtbl.create (state_tbl_size sz) in
    let receivers = Hashtbl.create (state_tbl_size sz) in
    let order = ref [] in
    let n_visited = ref 0 in
    let max_depth = ref 0 in
    let truncated = ref false in
    let first_phantom = ref None in
    let phantom_in_budget = ref false in
    let scan_in_budget = ref true in
    let ticks = ref 0 in
    let queue : (config * int * int) Queue.t = Queue.create () in
    let visit cfg depth acts =
      if not (Ctbl.mem visited cfg) then
        if !n_visited >= bounds.max_nodes then truncated := true
        else begin
          Ctbl.add visited cfg ();
          incr n_visited;
          order := cfg :: !order;
          Hashtbl.replace senders cfg.sid ();
          Hashtbl.replace receivers cfg.rid ();
          if depth > !max_depth then max_depth := depth;
          Queue.push (cfg, depth, acts) queue
        end
    in
    List.iter (fun c -> visit c 0 0) seeds;
    while not (Queue.is_empty queue) do
      let cfg, depth, acts = Queue.pop queue in
      incr ticks;
      if !ticks land 2047 = 0 then checkpoint ();
      (* [search] exits at the first dequeue past the node budget; phantoms
         generated beyond that point are real but budget-invisible. *)
      if !n_visited >= bounds.max_nodes then scan_in_budget := false;
      iter_successors ?deliver_valid_only bounds cfg (fun act cfg' ->
          let acts' = acts + (match act with Some _ -> 1 | None -> 0) in
          if !first_phantom = None && cfg'.delivered > cfg'.submitted then begin
            first_phantom := Some acts';
            phantom_in_budget := !scan_in_budget
          end;
          visit cfg' (depth + 1) acts')
    done;
    {
      configs = List.rev !order;
      truncated = !truncated;
      reach_stats =
        {
          nodes = !n_visited;
          sender_states = Hashtbl.length senders;
          receiver_states = Hashtbl.length receivers;
          max_depth = !max_depth;
        };
      first_phantom = !first_phantom;
      phantom_in_budget = !phantom_in_budget;
    }

  type node = { cfg : config; parent : int; act : Action.t option; depth : int }

  let seq_search ~stop_at_phantom ?size_hint ~checkpoint bounds =
    let nodes : node array ref =
      ref (Array.make 1024 { cfg = initial; parent = -1; act = None; depth = 0 })
    in
    let n_nodes = ref 0 in
    let add_node node =
      if !n_nodes >= Array.length !nodes then begin
        let bigger = Array.make (2 * Array.length !nodes) node in
        Array.blit !nodes 0 bigger 0 !n_nodes;
        nodes := bigger
      end;
      !nodes.(!n_nodes) <- node;
      incr n_nodes;
      !n_nodes - 1
    in
    let sz = visited_size ?size_hint bounds in
    let visited = Ctbl.create sz in
    let senders = Hashtbl.create (state_tbl_size sz) in
    let receivers = Hashtbl.create (state_tbl_size sz) in
    let n_visited = ref 0 in
    let max_depth = ref 0 in
    let ticks = ref 0 in
    let queue = Queue.create () in
    let visit cfg parent act depth =
      if not (Ctbl.mem visited cfg) then begin
        Ctbl.add visited cfg ();
        incr n_visited;
        Hashtbl.replace senders cfg.sid ();
        Hashtbl.replace receivers cfg.rid ();
        if depth > !max_depth then max_depth := depth;
        let idx = add_node { cfg; parent; act; depth } in
        Queue.push idx queue
      end
    in
    let path_to idx =
      let rec go idx acc =
        if idx < 0 then acc
        else
          let node = !nodes.(idx) in
          let acc = match node.act with None -> acc | Some a -> a :: acc in
          go node.parent acc
      in
      go idx []
    in
    visit initial (-1) None 0;
    let result = ref None in
    (try
       while not (Queue.is_empty queue) do
         if !n_visited >= bounds.max_nodes then raise Exit;
         let idx = Queue.pop queue in
         incr ticks;
         if !ticks land 2047 = 0 then checkpoint ();
         let node = !nodes.(idx) in
         iter_successors bounds node.cfg (fun act cfg' ->
             (* Phantom delivery: more receive_msg than send_msg. *)
             if stop_at_phantom && cfg'.delivered > cfg'.submitted then begin
               let prefix = path_to idx in
               let final = match act with Some a -> [ a ] | None -> [] in
               result := Some (prefix @ final);
               raise Exit
             end;
             visit cfg' idx act (node.depth + 1))
       done
     with Exit -> ());
    let stats =
      {
        nodes = !n_visited;
        sender_states = Hashtbl.length senders;
        receiver_states = Hashtbl.length receivers;
        max_depth = !max_depth;
      }
    in
    match !result with
    | Some trace -> Violation trace
    | None -> if !n_visited >= bounds.max_nodes then Node_budget stats else No_violation stats

  type replay_outcome =
    | Replay_refuted of Execution.t * config * stats
    | Replay_upheld of stats * bool

  (* Concrete replay of a state predicate, used by the refinement layer
     to decide whether an abstract witness is real.  BFS over the gated
     ([deliver_valid_only] defaults to [true], matching the boundness
     semantics the static tier certifies) successor graph, checking
     [monitor] on every configuration in BFS generation order — so a
     refutation comes with a shortest witness trace, and the result is
     independent of the parallel engine's domain count by construction
     (the replay is always sequential).  [Replay_upheld (_, truncated)]
     with [truncated = true] means the node budget was exhausted before
     the frontier drained: the predicate held on everything explored but
     is not certified. *)
  let replay_monitor ?(deliver_valid_only = true) ?size_hint
      ?(checkpoint = default_checkpoint) ~(monitor : config -> bool) bounds =
    let nodes : node array ref =
      ref (Array.make 1024 { cfg = initial; parent = -1; act = None; depth = 0 })
    in
    let n_nodes = ref 0 in
    let add_node node =
      if !n_nodes >= Array.length !nodes then begin
        let bigger = Array.make (2 * Array.length !nodes) node in
        Array.blit !nodes 0 bigger 0 !n_nodes;
        nodes := bigger
      end;
      !nodes.(!n_nodes) <- node;
      incr n_nodes;
      !n_nodes - 1
    in
    let sz = visited_size ?size_hint bounds in
    let visited = Ctbl.create sz in
    let senders = Hashtbl.create (state_tbl_size sz) in
    let receivers = Hashtbl.create (state_tbl_size sz) in
    let n_visited = ref 0 in
    let max_depth = ref 0 in
    let ticks = ref 0 in
    let truncated = ref false in
    let queue = Queue.create () in
    let visit cfg parent act depth =
      if not (Ctbl.mem visited cfg) then begin
        Ctbl.add visited cfg ();
        incr n_visited;
        Hashtbl.replace senders cfg.sid ();
        Hashtbl.replace receivers cfg.rid ();
        if depth > !max_depth then max_depth := depth;
        let idx = add_node { cfg; parent; act; depth } in
        Queue.push idx queue
      end
    in
    let path_to idx =
      let rec go idx acc =
        if idx < 0 then acc
        else
          let node = !nodes.(idx) in
          let acc = match node.act with None -> acc | Some a -> a :: acc in
          go node.parent acc
      in
      go idx []
    in
    let result = ref None in
    visit initial (-1) None 0;
    if not (monitor initial) then result := Some ([], initial);
    (try
       if Option.is_some !result then raise Exit;
       while not (Queue.is_empty queue) do
         if !n_visited >= bounds.max_nodes then begin
           truncated := true;
           raise Exit
         end;
         let idx = Queue.pop queue in
         incr ticks;
         if !ticks land 2047 = 0 then checkpoint ();
         let node = !nodes.(idx) in
         iter_successors ~deliver_valid_only bounds node.cfg (fun act cfg' ->
             if (not (Ctbl.mem visited cfg')) && not (monitor cfg') then begin
               let prefix = path_to idx in
               let final = match act with Some a -> [ a ] | None -> [] in
               result := Some (prefix @ final, cfg');
               raise Exit
             end;
             visit cfg' idx act (node.depth + 1))
       done
     with Exit -> ());
    let stats =
      {
        nodes = !n_visited;
        sender_states = Hashtbl.length senders;
        receiver_states = Hashtbl.length receivers;
        max_depth = !max_depth;
      }
    in
    match !result with
    | Some (trace, cfg) -> Replay_refuted (trace, cfg, stats)
    | None -> Replay_upheld (stats, !truncated)

  (* ------------------------------------------------------------------ *)
  (* Intra-search parallel core: level-synchronised BFS reproducing the
     sequential engine's results byte-for-byte at any domain count.

     Each level runs three phases.  Pass 1 (parallel, work-stealing over
     contiguous parent blocks) expands every frontier configuration
     against a read-only visited table and records candidate successors —
     in enumeration order — into block-indexed buffers, so concatenating
     the buffers in block order recovers exactly the order the sequential
     loop would have generated them ("rank order").  Pass 2 (parallel,
     ownership-striped) decides winners: each domain walks *all*
     candidates in rank order but inserts only those routing to its own
     shards, so every shard's insertions happen in rank order on a single
     domain and the surviving candidate for each new configuration is
     precisely the sequential first occurrence.  Pass 3 (sequential, on
     the calling domain) replays the budget, truncation, phantom and
     statistics bookkeeping over the rank-ordered candidates.

     Determinism: level membership is order-independent (a BFS level is a
     set), candidate rank reconstructs the sequential generation order
     within the level, and all result-bearing state is written in pass 3
     only.  Races that remain — which worker runs a block, shared-cache
     fill order, interner id assignment — affect no observable output. *)

  type worker_ctx = {
    wk_submit : (int, P.sender * int) Hashtbl.t;
    wk_spoll : (int, int option * P.sender * int) Hashtbl.t;
    wk_rpoll : (int, Spec.remit option * P.receiver * int) Hashtbl.t;
    wk_ack : (int * int, P.sender * int) Hashtbl.t;
    wk_data : (int * int, P.receiver * int) Hashtbl.t;
    wk_pkt : (int, int) Hashtbl.t;
    wk_pvec : int Pvtbl.t;
  }

  let make_worker () =
    {
      wk_submit = Hashtbl.create 64;
      wk_spoll = Hashtbl.create 64;
      wk_rpoll = Hashtbl.create 64;
      wk_ack = Hashtbl.create 128;
      wk_data = Hashtbl.create 128;
      wk_pkt = Hashtbl.create 32;
      wk_pvec = Pvtbl.create 256;
    }

  (* Memoise through a worker-local front cache, filling misses from the
     shared table under [engine_lock] (where [f] may also intern states —
     every shared-state mutation stays inside the critical section). *)
  let locked_memo local shared key f =
    match Hashtbl.find_opt local key with
    | Some v -> v
    | None ->
        let v =
          Mutex.protect engine_lock (fun () ->
              match Hashtbl.find_opt shared key with
              | Some v -> v
              | None ->
                  let v = f () in
                  Hashtbl.add shared key v;
                  v)
        in
        Hashtbl.add local key v;
        v

  let worker_pkt_id wk pkt =
    match Hashtbl.find_opt wk.wk_pkt pkt with
    | Some id -> id
    | None ->
        let id = Mutex.protect engine_lock (fun () -> Pvec.Index.id pkts pkt) in
        Hashtbl.add wk.wk_pkt pkt id;
        id

  let worker_pvec_id wk v =
    match Pvtbl.find_opt wk.wk_pvec v with
    | Some id -> id
    | None ->
        let id =
          Mutex.protect engine_lock (fun () ->
              match Pvtbl.find_opt pvec_ids v with
              | Some id -> id
              | None ->
                  let id = !pvec_count in
                  incr pvec_count;
                  Pvtbl.add pvec_ids v id;
                  id)
        in
        Pvtbl.add wk.wk_pvec v id;
        id

  let worker_ops wk ~ids_snap ~pkts_snap =
    {
      o_submit =
        (fun c ->
          locked_memo wk.wk_submit submit_memo c.sid (fun () ->
              let s' = P.on_submit c.sender in
              (s', intern_sender s')));
      o_spoll =
        (fun c ->
          locked_memo wk.wk_spoll spoll_memo c.sid (fun () ->
              let emit, s' = P.sender_poll c.sender in
              (emit, s', intern_sender s')));
      o_rpoll =
        (fun c ->
          locked_memo wk.wk_rpoll rpoll_memo c.rid (fun () ->
              let emit, r' = P.receiver_poll c.receiver in
              (emit, r', intern_receiver r')));
      o_ack =
        (fun c pkt ->
          locked_memo wk.wk_ack ack_memo (c.sid, pkt) (fun () ->
              let s' = P.on_ack c.sender pkt in
              (s', intern_sender s')));
      o_data =
        (fun c pkt ->
          locked_memo wk.wk_data data_memo (c.rid, pkt) (fun () ->
              let r' = P.on_data c.receiver pkt in
              (r', intern_receiver r')));
      o_pkt_id = worker_pkt_id wk;
      o_packet = (fun id -> pkts_snap.(id));
      o_iter_ids = (fun f -> Array.iter f ids_snap);
    }

  (* Bit-packed configuration keys: when the bounds and the protocol's
     declared state-encoding widths fit, a whole configuration packs into
     one non-negative int — (submitted, delivered, sender id, receiver id,
     interned tr vector, interned rt vector) — and the visited table
     becomes an open-addressed int set with no boxing.  Field overflow at
     runtime (an interner outgrowing its width) raises and the engine
     restarts the attempt with the boxed fallback; the restart is
     deterministic because whether any field ever overflows depends only
     on the (race-invariant) explored set, and the partial warm-up it
     leaves behind (memo entries, interned ids) is semantics-neutral. *)
  exception Packed_overflow

  type packing = {
    p_sub_bits : int;
    p_del_bits : int;
    p_s_bits : int;
    p_r_bits : int;
    p_tr_bits : int;
    p_rt_bits : int;
  }

  let bits_needed n =
    let rec go b v = if v = 0 then max 1 b else go (b + 1) (v lsr 1) in
    go 0 (max 0 n)

  let packing_for bounds =
    let sb = bits_needed bounds.submit_budget in
    (* [delivered] is unbounded on phantom branches; give it headroom and
       let runtime overflow fall back. *)
    let db = sb + 2 in
    let tr = 12 and rt = 12 in
    let rem = 62 - sb - db - tr - rt in
    (* Seed the state-id widths from the spec's own encoding-size hints
       (bits for the initial state, the best static proxy available),
       splitting the slack evenly; interners can outgrow them, which the
       runtime check catches. *)
    let hs = max 1 (P.sender_space_bits P.sender_init) in
    let hr = max 1 (P.receiver_space_bits P.receiver_init) in
    if rem < hs + hr then None
    else
      let s_bits = hs + ((rem - hs - hr) / 2) in
      let r_bits = rem - s_bits in
      Some
        {
          p_sub_bits = sb;
          p_del_bits = db;
          p_s_bits = s_bits;
          p_r_bits = r_bits;
          p_tr_bits = tr;
          p_rt_bits = rt;
        }

  let pack pk ~sid ~rid ~tr_id ~rt_id ~submitted ~delivered =
    let field v w = if v lsr w <> 0 then raise Packed_overflow else v in
    let k = field submitted pk.p_sub_bits in
    let k = (k lsl pk.p_del_bits) lor field delivered pk.p_del_bits in
    let k = (k lsl pk.p_s_bits) lor field sid pk.p_s_bits in
    let k = (k lsl pk.p_r_bits) lor field rid pk.p_r_bits in
    let k = (k lsl pk.p_tr_bits) lor field tr_id pk.p_tr_bits in
    (k lsl pk.p_rt_bits) lor field rt_id pk.p_rt_bits

  type vtable =
    | Vpacked of Shards.Packed.t * packing
    | Vboxed of Cshards.t

  let packed_key pk wk cfg =
    let tr_id = worker_pvec_id wk cfg.tr in
    let rt_id = worker_pvec_id wk cfg.rt in
    pack pk ~sid:cfg.sid ~rid:cfg.rid ~tr_id ~rt_id ~submitted:cfg.submitted
      ~delivered:cfg.delivered

  let vt_probe vt wk cfg =
    match vt with
    | Vpacked (tbl, pk) ->
        let key = packed_key pk wk cfg in
        (key, Shards.Packed.mem tbl key)
    | Vboxed tbl ->
        let h = Chash.hash cfg in
        (h, Cshards.mem tbl ~hash:h cfg)

  let vt_shard vt key =
    match vt with
    | Vpacked (tbl, _) -> Shards.Packed.shard_of_key tbl key
    | Vboxed tbl -> Cshards.shard_of tbl ~hash:key

  let vt_add_owned vt cd_key cfg =
    match vt with
    | Vpacked (tbl, _) -> Shards.Packed.add_owned tbl cd_key
    | Vboxed tbl -> Cshards.add_owned tbl ~hash:cd_key cfg

  let vt_seed vt wk cfg =
    let key, _ = vt_probe vt wk cfg in
    ignore (vt_add_owned vt key cfg)

  (* A candidate successor generated in pass 1.  Candidates are recorded
     when unseen *or* phantom (the sequential loop phantom-checks every
     generated successor, visited or not); seen non-phantom duplicates are
     dropped at generation since the sequential [visit] ignores them. *)
  type cand = {
    cd_parent : int;  (* global node index of the parent *)
    cd_act : Action.t option;
    cd_cfg : config;
    cd_key : int;  (* packed key, or [Chash.hash] in boxed mode *)
    cd_phantom : bool;
    cd_seen : bool;  (* visited-table hit at generation time *)
    mutable cd_new : bool;  (* pass 2: won the insertion race-free *)
  }

  let dummy_cand =
    {
      cd_parent = -1;
      cd_act = None;
      cd_cfg = initial;
      cd_key = 0;
      cd_phantom = false;
      cd_seen = true;
      cd_new = false;
    }

  (* Below this frontier width, the two [Frontier.run] barriers of a level
     cost more than the parallel expansion wins: run the level on the
     calling domain instead.  Same candidate enumeration (worker ops over
     the same snapshots), same first-occurrence insertion winners (a single
     domain walking all candidates in rank order decides exactly what the
     ownership stripes decide), so byte-identity at any domain count is
     preserved — certified by the d1-vs-d4 CI gate. *)
  let adaptive_threshold = 1024

  (* Expand frontier slice [lo, hi) of the node store: pass 1 and pass 2
     of the level.  Returns per-block candidate arrays; concatenated in
     block order they are the level's candidates in rank order. *)
  let expand_level pool wks vt ?deliver_valid_only bounds ~cfg_at ~lo ~hi ~insert =
    let n = hi - lo in
    let domains = Frontier.domains pool in
    let ids_snap = Pvec.Index.snapshot_by_value pkts in
    let pkts_snap = Pvec.Index.snapshot_packets pkts in
    let expand_block wk ops b_lo b_hi =
      let buf = Vec.create dummy_cand in
      for p = b_lo to b_hi - 1 do
        iter_successors_ops ops ?deliver_valid_only bounds (cfg_at p) (fun act cfg' ->
            let phantom = cfg'.delivered > cfg'.submitted in
            let key, seen = vt_probe vt wk cfg' in
            if phantom || not seen then
              Vec.push buf
                {
                  cd_parent = p;
                  cd_act = act;
                  cd_cfg = cfg';
                  cd_key = key;
                  cd_phantom = phantom;
                  cd_seen = seen;
                  cd_new = false;
                })
      done;
      Vec.to_array buf
    in
    if n < adaptive_threshold || domains <= 1 then begin
      (* Adaptive level split: no barriers, no stealing — one block,
         expanded and inserted in rank order on the calling domain. *)
      let wk = wks.(0) in
      let cands = expand_block wk (worker_ops wk ~ids_snap ~pkts_snap) lo hi in
      if insert then
        Array.iter
          (fun cd ->
            if not cd.cd_seen then cd.cd_new <- vt_add_owned vt cd.cd_key cd.cd_cfg)
          cands;
      [| cands |]
    end
    else begin
      let nblocks = min n (domains * 8) in
      let out = Array.make nblocks [||] in
      Frontier.run pool ~blocks:nblocks (fun ~worker ~block ->
          let wk = wks.(worker) in
          let ops = worker_ops wk ~ids_snap ~pkts_snap in
          let b_lo = lo + (n * block / nblocks) in
          let b_hi = lo + (n * (block + 1) / nblocks) in
          out.(block) <- expand_block wk ops b_lo b_hi);
      if insert then
        Frontier.run pool ~blocks:domains (fun ~worker:_ ~block:role ->
            Array.iter
              (fun cands ->
                Array.iter
                  (fun cd ->
                    if (not cd.cd_seen) && vt_shard vt cd.cd_key mod domains = role then
                      cd.cd_new <- vt_add_owned vt cd.cd_key cd.cd_cfg)
                  cands)
              out);
      out
    end

  let with_vtable ~size_hint bounds attempt =
    match packing_for bounds with
    | Some pk -> (
        try attempt (Vpacked (Shards.Packed.create ~size_hint (), pk))
        with Packed_overflow -> attempt (Vboxed (Cshards.create ~size_hint ())))
    | None -> attempt (Vboxed (Cshards.create ~size_hint ()))

  let parallel_reachable_set ?deliver_valid_only ?(seeds = [ initial ]) ~domains
      ~size_hint ~checkpoint bounds =
    let pool = Frontier.create ~domains in
    Fun.protect ~finally:(fun () -> Frontier.shutdown pool) @@ fun () ->
    let wks = Array.init domains (fun _ -> make_worker ()) in
    let attempt vt =
      let cfgs = Vec.create initial in
      let acts = Vec.create 0 in
      let senders = Hashtbl.create (state_tbl_size size_hint) in
      let receivers = Hashtbl.create (state_tbl_size size_hint) in
      let n_visited = ref 0 in
      let max_depth = ref 0 in
      let truncated = ref false in
      (* Seed in caller order, deduplicating through the visited table —
         the exact parallel image of the sequential seed loop, so the
         config list stays byte-deterministic at any domain count. *)
      List.iter
        (fun c ->
          let key, seen = vt_probe vt wks.(0) c in
          if not seen then
            if !n_visited >= bounds.max_nodes then truncated := true
            else begin
              ignore (vt_add_owned vt key c);
              Vec.push cfgs c;
              Vec.push acts 0;
              Hashtbl.replace senders c.sid ();
              Hashtbl.replace receivers c.rid ();
              incr n_visited
            end)
        seeds;
      let first_phantom = ref None in
      let phantom_in_budget = ref false in
      let level = ref 0 in
      let lo = ref 0 in
      let hi = ref (Vec.length cfgs) in
      while !lo < !hi do
        checkpoint ();
        (* Budget already exhausted: the remaining frontier is expanded
           scan-only (phantom/truncation detection), inserting nothing —
           the sequential queue drain past the budget. *)
        let scan_only = !n_visited >= bounds.max_nodes in
        let out =
          expand_level pool wks vt ?deliver_valid_only bounds ~cfg_at:(Vec.get cfgs)
            ~lo:!lo ~hi:!hi ~insert:(not scan_only)
        in
        let cur_parent = ref (-1) in
        let cur_in_budget = ref (!n_visited < bounds.max_nodes) in
        Array.iter
          (fun cands ->
            Array.iter
              (fun cd ->
                if cd.cd_parent <> !cur_parent then begin
                  (* Entering a parent group = the sequential dequeue of
                     that parent: re-latch the budget flag. *)
                  cur_parent := cd.cd_parent;
                  cur_in_budget := !n_visited < bounds.max_nodes
                end;
                let acts' =
                  Vec.get acts cd.cd_parent
                  + (match cd.cd_act with Some _ -> 1 | None -> 0)
                in
                if !first_phantom = None && cd.cd_phantom then begin
                  first_phantom := Some acts';
                  phantom_in_budget := !cur_in_budget
                end;
                let is_new = if scan_only then not cd.cd_seen else cd.cd_new in
                if is_new then
                  if !n_visited >= bounds.max_nodes then truncated := true
                  else begin
                    Vec.push cfgs cd.cd_cfg;
                    Vec.push acts acts';
                    Hashtbl.replace senders cd.cd_cfg.sid ();
                    Hashtbl.replace receivers cd.cd_cfg.rid ();
                    incr n_visited;
                    if !level + 1 > !max_depth then max_depth := !level + 1
                  end)
              cands)
          out;
        lo := !hi;
        hi := Vec.length cfgs;
        incr level
      done;
      let order = ref [] in
      for i = Vec.length cfgs - 1 downto 0 do
        order := Vec.get cfgs i :: !order
      done;
      {
        configs = !order;
        truncated = !truncated;
        reach_stats =
          {
            nodes = !n_visited;
            sender_states = Hashtbl.length senders;
            receiver_states = Hashtbl.length receivers;
            max_depth = !max_depth;
          };
        first_phantom = !first_phantom;
        phantom_in_budget = !phantom_in_budget;
      }
    in
    with_vtable ~size_hint bounds attempt

  let parallel_search ~stop_at_phantom ~domains ~size_hint ~checkpoint bounds =
    let pool = Frontier.create ~domains in
    Fun.protect ~finally:(fun () -> Frontier.shutdown pool) @@ fun () ->
    let wks = Array.init domains (fun _ -> make_worker ()) in
    let attempt vt =
      let cfgs = Vec.create initial in
      let parents = Vec.create (-1) in
      let pacts : Action.t option Vec.t = Vec.create None in
      let senders = Hashtbl.create (state_tbl_size size_hint) in
      let receivers = Hashtbl.create (state_tbl_size size_hint) in
      vt_seed vt wks.(0) initial;
      Vec.push cfgs initial;
      Vec.push parents (-1);
      Vec.push pacts None;
      Hashtbl.replace senders initial.sid ();
      Hashtbl.replace receivers initial.rid ();
      let n_visited = ref 1 in
      let max_depth = ref 0 in
      let result = ref None in
      let path_to idx =
        let rec go idx acc =
          if idx < 0 then acc
          else
            let acc = match Vec.get pacts idx with None -> acc | Some a -> a :: acc in
            go (Vec.get parents idx) acc
        in
        go idx []
      in
      let level = ref 0 in
      let lo = ref 0 in
      let hi = ref 1 in
      (try
         while !lo < !hi do
           checkpoint ();
           let out =
             expand_level pool wks vt bounds ~cfg_at:(Vec.get cfgs) ~lo:!lo ~hi:!hi
               ~insert:true
           in
           let cur_parent = ref (-1) in
           Array.iter
             (fun cands ->
               Array.iter
                 (fun cd ->
                   if cd.cd_parent <> !cur_parent then begin
                     cur_parent := cd.cd_parent;
                     (* The sequential engine budget-checks at every
                        dequeue, before expanding; candidates of parents
                        past the stop point were generated speculatively
                        and are discarded with the search. *)
                     if !n_visited >= bounds.max_nodes then raise Exit
                   end;
                   if stop_at_phantom && cd.cd_phantom then begin
                     let final = match cd.cd_act with Some a -> [ a ] | None -> [] in
                     result := Some (path_to cd.cd_parent @ final);
                     raise Exit
                   end;
                   if cd.cd_new then begin
                     (* [seq_search]'s visit appends unconditionally; the
                        budget stop is at dequeue time only. *)
                     Vec.push cfgs cd.cd_cfg;
                     Vec.push parents cd.cd_parent;
                     Vec.push pacts cd.cd_act;
                     Hashtbl.replace senders cd.cd_cfg.sid ();
                     Hashtbl.replace receivers cd.cd_cfg.rid ();
                     incr n_visited;
                     if !level + 1 > !max_depth then max_depth := !level + 1
                   end)
                 cands)
             out;
           lo := !hi;
           hi := Vec.length cfgs;
           incr level
         done
       with Exit -> ());
      let stats =
        {
          nodes = !n_visited;
          sender_states = Hashtbl.length senders;
          receiver_states = Hashtbl.length receivers;
          max_depth = !max_depth;
        }
      in
      match !result with
      | Some trace -> Violation trace
      | None ->
          if !n_visited >= bounds.max_nodes then Node_budget stats else No_violation stats
    in
    with_vtable ~size_hint bounds attempt

  (* ------------------------------------------------------------------ *)
  (* Public entry points: [domains <= 1] dispatches to the sequential
     loops (no per-candidate overhead, no pool); [domains >= 2] to the
     level-synchronised core, which reproduces their results exactly. *)

  let reachable_set ?deliver_valid_only ?(domains = 1) ?size_hint
      ?(checkpoint = default_checkpoint) bounds =
    if domains <= 1 || bounds.max_nodes < 1 then
      seq_reachable_set ?deliver_valid_only ?size_hint ~checkpoint bounds
    else
      parallel_reachable_set ?deliver_valid_only ~domains
        ~size_hint:(visited_size ?size_hint bounds) ~checkpoint bounds

  (* The corrupted-start entry point of the self-stabilization tier
     ({!Nfc_stab.Converge}): the same BFS sweep, seeded from an enumerated
     configuration list instead of [initial].  Seeds are visited at depth 0
     in caller order (deduplicated); everything else — rank-ordered
     finalisation, sharded visited table, phantom scan — is shared with
     {!reachable_set}, so the result is byte-deterministic at any
     [domains]. *)
  let from_configs ?deliver_valid_only ?(domains = 1) ?size_hint
      ?(checkpoint = default_checkpoint) ~seeds bounds =
    if domains <= 1 || bounds.max_nodes < 1 then
      seq_reachable_set ?deliver_valid_only ~seeds ?size_hint ~checkpoint bounds
    else
      parallel_reachable_set ?deliver_valid_only ~seeds ~domains
        ~size_hint:(visited_size ?size_hint bounds) ~checkpoint bounds

  let search ?(stop_at_phantom = true) ?(domains = 1) ?size_hint
      ?(checkpoint = default_checkpoint) bounds =
    if domains <= 1 || bounds.max_nodes < 1 then
      seq_search ~stop_at_phantom ?size_hint ~checkpoint bounds
    else
      parallel_search ~stop_at_phantom ~domains
        ~size_hint:(visited_size ?size_hint bounds) ~checkpoint bounds

  (* Liveness: explore the graph fully (within budget), then propagate
     "can eventually deliver" backwards.  A semi-valid configuration not
     reached by the propagation is wedged.  Frontier (unexpanded) nodes
     are conservatively assumed able to deliver.

     Runs POR-off regardless of [bounds.por]: lazy dropping preserves
     phantom reachability and all station-state projections, but *not*
     the wedged-configuration analysis — a wedge reachable only through
     an early (sub-capacity) drop would be missed, and conversely POR's
     sparser move relation could make a configuration look wedged whose
     escape is an early drop.  See DESIGN §5.13. *)
  let find_wedge_search ?size_hint ?(checkpoint = default_checkpoint) bounds =
    let bounds = { bounds with por = false } in
    let nodes = ref [||] in
    let n_nodes = ref 0 in
    let sz = visited_size ?size_hint bounds in
    let index = Ctbl.create sz in
    let parents = ref [||] in
    let parent_act = ref [||] in
    let preds : int list array ref = ref [||] in
    let expanded = ref [||] in
    let delivery_enabled = ref [||] in
    let grow () =
      let len = max 1024 (2 * Array.length !nodes) in
      let resize a mk =
        let bigger = Array.make len mk in
        Array.blit a 0 bigger 0 !n_nodes;
        bigger
      in
      nodes := resize !nodes initial;
      parents := resize !parents (-1);
      parent_act := resize !parent_act None;
      preds := resize !preds [];
      expanded := resize !expanded false;
      delivery_enabled := resize !delivery_enabled false
    in
    let add cfg parent act =
      match Ctbl.find_opt index cfg with
      | Some id ->
          if parent >= 0 then !preds.(id) <- parent :: !preds.(id);
          None
      | None ->
          if !n_nodes >= Array.length !nodes then grow ();
          let id = !n_nodes in
          incr n_nodes;
          !nodes.(id) <- cfg;
          !parents.(id) <- parent;
          !parent_act.(id) <- act;
          if parent >= 0 then !preds.(id) <- parent :: !preds.(id);
          Ctbl.add index cfg id;
          Some id
    in
    let ticks = ref 0 in
    let queue = Queue.create () in
    (match add initial (-1) None with Some id -> Queue.push id queue | None -> ());
    (try
       while not (Queue.is_empty queue) do
         if !n_nodes >= bounds.max_nodes then raise Exit;
         let id = Queue.pop queue in
         incr ticks;
         if !ticks land 2047 = 0 then checkpoint ();
         !expanded.(id) <- true;
         iter_successors bounds !nodes.(id) (fun act cfg' ->
             (match act with
             | Some (Action.Receive_msg _) -> !delivery_enabled.(id) <- true
             | _ -> ());
             match add cfg' id act with
             | Some id' -> Queue.push id' queue
             | None -> ())
       done
     with Exit -> ());
    (* Backward propagation of "good" (can eventually deliver). *)
    let good = Array.make !n_nodes false in
    let work = Queue.create () in
    for id = 0 to !n_nodes - 1 do
      if !delivery_enabled.(id) || not !expanded.(id) then begin
        good.(id) <- true;
        Queue.push id work
      end
    done;
    while not (Queue.is_empty work) do
      let id = Queue.pop work in
      List.iter
        (fun p ->
          if not good.(p) then begin
            good.(p) <- true;
            Queue.push p work
          end)
        !preds.(id)
    done;
    (* Shortest wedged semi-valid configuration = first in BFS order. *)
    let wedged = ref None in
    (try
       for id = 0 to !n_nodes - 1 do
         let c = !nodes.(id) in
         if (not good.(id)) && c.submitted > c.delivered && !expanded.(id) then begin
           wedged := Some id;
           raise Exit
         end
       done
     with Exit -> ());
    let stats = { nodes = !n_nodes; sender_states = 0; receiver_states = 0; max_depth = 0 } in
    match !wedged with
    | None -> No_wedge stats
    | Some id ->
        let rec path id acc =
          if id < 0 then acc
          else
            let acc = match !parent_act.(id) with None -> acc | Some a -> a :: acc in
            path !parents.(id) acc
        in
        Wedged (path id [], stats)
end

let find_phantom ?domains (proto : Spec.t) bounds =
  let module P = (val proto) in
  let module E = Make (P) in
  E.search ~stop_at_phantom:true ?domains bounds

let reachable ?domains (proto : Spec.t) bounds =
  let module P = (val proto) in
  let module E = Make (P) in
  match E.search ~stop_at_phantom:false ?domains bounds with
  | Violation _ -> assert false
  | No_violation s | Node_budget s -> s

let find_wedge (proto : Spec.t) bounds =
  let module P = (val proto) in
  let module E = Make (P) in
  E.find_wedge_search bounds
