(** The tree-based exploration engine the hashed {!Explore} engine
    replaced, retained as the differential-testing oracle and benchmark
    baseline.

    Semantics are identical to {!Explore} and the pre-hashed
    {!Boundness}: balanced-tree ([Set.Make]) visited sets keyed on the
    state comparators and [Multiset] channel contents.  Nothing in the
    production path uses this module — it exists so test/test_engine.ml
    can assert the hashed engine agrees on every statistic, verdict and
    measured boundness, and so bench/ can quantify the speedup. *)

(** Phantom-delivery search (old engine). *)
val find_phantom : Nfc_protocol.Spec.t -> Explore.bounds -> Explore.outcome

(** Full bounded exploration statistics (old engine, via [search]). *)
val reachable : Nfc_protocol.Spec.t -> Explore.bounds -> Explore.stats

(** Statistics and truncation flag of the old [reachable_set] — the
    benchmark's unit of comparison against the hashed engine's
    [reachable_set]. *)
val reachable_set_stats : Nfc_protocol.Spec.t -> Explore.bounds -> Explore.stats * bool

(** Boundness measurement (old gated reachability + tree-keyed probes);
    probes sample semi-valid configurations in visited-set order, exactly
    as {!Boundness.measure} does. *)
val measure_boundness :
  ?max_probes:int ->
  Nfc_protocol.Spec.t ->
  explore:Explore.bounds ->
  probe:Boundness.probe_bounds ->
  Boundness.report
