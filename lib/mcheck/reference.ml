(* The tree-based engine the hashed engine replaced, retained verbatim as
   the differential-testing oracle and benchmark baseline.

   Configurations carry their states and Multiset channels directly; the
   visited set is a balanced tree ordered by the state comparators, so
   every membership test walks O(log n) nodes each paying up to four
   multiset comparisons.  {!Explore} must agree with this module on every
   statistic, verdict and measured boundness — test/test_engine.ml checks
   that for the whole registry. *)

open Nfc_automata
module M = Nfc_util.Multiset.Int
module Spec = Nfc_protocol.Spec

module Make (P : Spec.S) = struct
  type config = {
    sender : P.sender;
    receiver : P.receiver;
    tr : M.t;
    rt : M.t;
    submitted : int;
    delivered : int;
  }

  module Cfg = struct
    type t = config

    let compare a b =
      let c = compare a.submitted b.submitted in
      if c <> 0 then c
      else
        let c = compare a.delivered b.delivered in
        if c <> 0 then c
        else
          let c = P.compare_sender a.sender b.sender in
          if c <> 0 then c
          else
            let c = P.compare_receiver a.receiver b.receiver in
            if c <> 0 then c
            else
              let c = M.compare a.tr b.tr in
              if c <> 0 then c else M.compare a.rt b.rt
  end

  module Cset = Set.Make (Cfg)

  let initial =
    {
      sender = P.sender_init;
      receiver = P.receiver_init;
      tr = M.empty;
      rt = M.empty;
      submitted = 0;
      delivered = 0;
    }

  let successors (bounds : Explore.bounds) c =
    let moves = ref [] in
    let push act c' = moves := (act, c') :: !moves in
    if c.submitted < bounds.Explore.submit_budget then
      push (Some (Action.Send_msg c.submitted))
        { c with sender = P.on_submit c.sender; submitted = c.submitted + 1 };
    (match P.sender_poll c.sender with
    | Some pkt, s' ->
        if M.cardinal c.tr < bounds.Explore.capacity_tr then
          push
            (Some (Action.Send_pkt (Action.T_to_r, pkt)))
            { c with sender = s'; tr = M.add pkt c.tr }
    | None, s' -> if P.compare_sender s' c.sender <> 0 then push None { c with sender = s' });
    (match P.receiver_poll c.receiver with
    | Some Spec.Rdeliver, r' ->
        push
          (Some (Action.Receive_msg c.delivered))
          { c with receiver = r'; delivered = c.delivered + 1 }
    | Some (Spec.Rsend pkt), r' ->
        if M.cardinal c.rt < bounds.Explore.capacity_rt then
          push
            (Some (Action.Send_pkt (Action.R_to_t, pkt)))
            { c with receiver = r'; rt = M.add pkt c.rt }
    | None, r' -> if P.compare_receiver r' c.receiver <> 0 then push None { c with receiver = r' });
    List.iter
      (fun pkt ->
        match M.remove_one pkt c.tr with
        | Some tr' ->
            push
              (Some (Action.Receive_pkt (Action.T_to_r, pkt)))
              { c with tr = tr'; receiver = P.on_data c.receiver pkt };
            (* Same lazy-drop POR gate as {!Explore.iter_successors}: under
               [por], drops are generated only at channel capacity. *)
            if
              bounds.Explore.allow_drop
              && ((not bounds.Explore.por) || M.cardinal c.tr >= bounds.Explore.capacity_tr)
            then push (Some (Action.Drop_pkt (Action.T_to_r, pkt))) { c with tr = tr' }
        | None -> ())
      (M.support c.tr);
    List.iter
      (fun pkt ->
        match M.remove_one pkt c.rt with
        | Some rt' ->
            push
              (Some (Action.Receive_pkt (Action.R_to_t, pkt)))
              { c with rt = rt'; sender = P.on_ack c.sender pkt };
            if
              bounds.Explore.allow_drop
              && ((not bounds.Explore.por) || M.cardinal c.rt >= bounds.Explore.capacity_rt)
            then push (Some (Action.Drop_pkt (Action.R_to_t, pkt))) { c with rt = rt' }
        | None -> ())
      (M.support c.rt);
    List.rev !moves

  type reach = { configs : config list; truncated : bool; reach_stats : Explore.stats }

  let reachable_set (bounds : Explore.bounds) =
    let module Sset = Set.Make (struct
      type t = P.sender

      let compare = P.compare_sender
    end) in
    let module Rset = Set.Make (struct
      type t = P.receiver

      let compare = P.compare_receiver
    end) in
    let visited = ref Cset.empty in
    let order = ref [] in
    let n_visited = ref 0 in
    let senders = ref Sset.empty in
    let receivers = ref Rset.empty in
    let max_depth = ref 0 in
    let truncated = ref false in
    let queue = Queue.create () in
    let visit cfg depth =
      if not (Cset.mem cfg !visited) then
        if !n_visited >= bounds.Explore.max_nodes then truncated := true
        else begin
          visited := Cset.add cfg !visited;
          incr n_visited;
          order := cfg :: !order;
          senders := Sset.add cfg.sender !senders;
          receivers := Rset.add cfg.receiver !receivers;
          max_depth := max !max_depth depth;
          Queue.push (cfg, depth) queue
        end
    in
    visit initial 0;
    while not (Queue.is_empty queue) do
      let cfg, depth = Queue.pop queue in
      List.iter (fun (_, cfg') -> visit cfg' (depth + 1)) (successors bounds cfg)
    done;
    {
      configs = List.rev !order;
      truncated = !truncated;
      reach_stats =
        {
          Explore.nodes = !n_visited;
          sender_states = Sset.cardinal !senders;
          receiver_states = Rset.cardinal !receivers;
          max_depth = !max_depth;
        };
    }

  let search ?(stop_at_phantom = true) (bounds : Explore.bounds) =
    let module Sset = Set.Make (struct
      type t = P.sender

      let compare = P.compare_sender
    end) in
    let module Rset = Set.Make (struct
      type t = P.receiver

      let compare = P.compare_receiver
    end) in
    let visited = ref Cset.empty in
    let n_visited = ref 0 in
    let senders = ref Sset.empty in
    let receivers = ref Rset.empty in
    let max_depth = ref 0 in
    let queue = Queue.create () in
    let nodes : (config * int * Action.t option * int) array ref = ref [||] in
    let n_nodes = ref 0 in
    let add_node entry =
      if !n_nodes >= Array.length !nodes then begin
        let len = max 1024 (2 * Array.length !nodes) in
        let bigger = Array.make len entry in
        Array.blit !nodes 0 bigger 0 !n_nodes;
        nodes := bigger
      end;
      !nodes.(!n_nodes) <- entry;
      incr n_nodes;
      !n_nodes - 1
    in
    let visit cfg parent act depth =
      if not (Cset.mem cfg !visited) then begin
        visited := Cset.add cfg !visited;
        incr n_visited;
        senders := Sset.add cfg.sender !senders;
        receivers := Rset.add cfg.receiver !receivers;
        max_depth := max !max_depth depth;
        let idx = add_node (cfg, parent, act, depth) in
        Queue.push idx queue
      end
    in
    let path_to idx =
      let rec go idx acc =
        if idx < 0 then acc
        else
          let _, parent, act, _ = !nodes.(idx) in
          let acc = match act with None -> acc | Some a -> a :: acc in
          go parent acc
      in
      go idx []
    in
    visit initial (-1) None 0;
    let result = ref None in
    (try
       while not (Queue.is_empty queue) do
         if !n_visited >= bounds.Explore.max_nodes then raise Exit;
         let idx = Queue.pop queue in
         let cfg, _, _, depth = !nodes.(idx) in
         List.iter
           (fun (act, cfg') ->
             if stop_at_phantom && cfg'.delivered > cfg'.submitted then begin
               let prefix = path_to idx in
               let final = match act with Some a -> [ a ] | None -> [] in
               result := Some (prefix @ final);
               raise Exit
             end;
             visit cfg' idx act (depth + 1))
           (successors bounds cfg)
       done
     with Exit -> ());
    let stats =
      {
        Explore.nodes = !n_visited;
        sender_states = Sset.cardinal !senders;
        receiver_states = Rset.cardinal !receivers;
        max_depth = !max_depth;
      }
    in
    match !result with
    | Some trace -> Explore.Violation trace
    | None ->
        if !n_visited >= bounds.Explore.max_nodes then Explore.Node_budget stats
        else Explore.No_violation stats

  (* ---- Boundness measurement (the old Boundness.Make, verbatim) ---- *)

  (* Reachability under gated delivery: a message may only be delivered
     when one is actually pending. *)
  let reachable_gated (bounds : Explore.bounds) =
    let visited = ref Cset.empty in
    let n_visited = ref 0 in
    let queue = Queue.create () in
    let visit c =
      if (not (Cset.mem c !visited)) && !n_visited < bounds.Explore.max_nodes then begin
        visited := Cset.add c !visited;
        incr n_visited;
        Queue.push c queue
      end
    in
    visit initial;
    while not (Queue.is_empty queue) do
      let c = Queue.pop queue in
      if c.submitted < bounds.Explore.submit_budget then
        visit { c with sender = P.on_submit c.sender; submitted = c.submitted + 1 };
      (match P.sender_poll c.sender with
      | Some pkt, s' ->
          if M.cardinal c.tr < bounds.Explore.capacity_tr then
            visit { c with sender = s'; tr = M.add pkt c.tr }
      | None, s' -> if P.compare_sender s' c.sender <> 0 then visit { c with sender = s' });
      (match P.receiver_poll c.receiver with
      | Some Spec.Rdeliver, r' ->
          if c.delivered < c.submitted then
            visit { c with receiver = r'; delivered = c.delivered + 1 }
      | Some (Spec.Rsend pkt), r' ->
          if M.cardinal c.rt < bounds.Explore.capacity_rt then
            visit { c with receiver = r'; rt = M.add pkt c.rt }
      | None, r' ->
          if P.compare_receiver r' c.receiver <> 0 then visit { c with receiver = r' });
      List.iter
        (fun pkt ->
          match M.remove_one pkt c.tr with
          | Some tr' ->
              visit { c with tr = tr'; receiver = P.on_data c.receiver pkt };
              if
                bounds.Explore.allow_drop
                && ((not bounds.Explore.por)
                   || M.cardinal c.tr >= bounds.Explore.capacity_tr)
              then visit { c with tr = tr' }
          | None -> ())
        (M.support c.tr);
      List.iter
        (fun pkt ->
          match M.remove_one pkt c.rt with
          | Some rt' ->
              visit { c with rt = rt'; sender = P.on_ack c.sender pkt };
              if
                bounds.Explore.allow_drop
                && ((not bounds.Explore.por)
                   || M.cardinal c.rt >= bounds.Explore.capacity_rt)
              then visit { c with rt = rt' }
          | None -> ())
        (M.support c.rt)
    done;
    !visited

  type probe_state = {
    psender : P.sender;
    preceiver : P.receiver;
    ptr : M.t;
    prt : M.t;
  }

  let compare_probe a b =
    let c = P.compare_sender a.psender b.psender in
    if c <> 0 then c
    else
      let c = P.compare_receiver a.preceiver b.preceiver in
      if c <> 0 then c
      else
        let c = M.compare a.ptr b.ptr in
        if c <> 0 then c else M.compare a.prt b.prt

  module Pset = Set.Make (struct
    type t = probe_state

    let compare = compare_probe
  end)

  let probe (pb : Boundness.probe_bounds) (c : config) =
    let start = { psender = c.sender; preceiver = c.receiver; ptr = M.empty; prt = M.empty } in
    let dq : (int * probe_state) Nfc_util.Deque.t ref = ref Nfc_util.Deque.empty in
    let push_front x = dq := Nfc_util.Deque.push_front x !dq in
    let push_back x = dq := Nfc_util.Deque.push_back x !dq in
    let visited = ref Pset.empty in
    let n_visited = ref 0 in
    let result = ref None in
    push_front (0, start);
    (try
       while not (Nfc_util.Deque.is_empty !dq) do
         if !n_visited >= pb.Boundness.max_nodes then raise Exit;
         match Nfc_util.Deque.pop_front !dq with
         | None -> raise Exit
         | Some ((cost, st), rest) ->
             dq := rest;
             if cost > pb.Boundness.max_cost then raise Exit;
             if not (Pset.mem st !visited) then begin
               visited := Pset.add st !visited;
               incr n_visited;
               (match P.receiver_poll st.preceiver with
               | Some Spec.Rdeliver, _ ->
                   result := Some cost;
                   raise Exit
               | Some (Spec.Rsend pkt), r' ->
                   push_front (cost, { st with preceiver = r'; prt = M.add pkt st.prt })
               | None, r' ->
                   if P.compare_receiver r' st.preceiver <> 0 then
                     push_front (cost, { st with preceiver = r' }));
               (match P.sender_poll st.psender with
               | Some pkt, s' ->
                   push_back (cost + 1, { st with psender = s'; ptr = M.add pkt st.ptr })
               | None, s' ->
                   if P.compare_sender s' st.psender <> 0 then
                     push_front (cost, { st with psender = s' }));
               List.iter
                 (fun pkt ->
                   match M.remove_one pkt st.ptr with
                   | Some tr' ->
                       push_front
                         (cost, { st with ptr = tr'; preceiver = P.on_data st.preceiver pkt })
                   | None -> ())
                 (M.support st.ptr);
               List.iter
                 (fun pkt ->
                   match M.remove_one pkt st.prt with
                   | Some rt' ->
                       push_front
                         (cost, { st with prt = rt'; psender = P.on_ack st.psender pkt })
                   | None -> ())
                 (M.support st.prt)
             end
       done
     with Exit -> ());
    !result

  let measure ?max_probes ~(explore : Explore.bounds) ~(probe_bounds : Boundness.probe_bounds)
      () =
    let configs = reachable_gated explore in
    let module Sset = Set.Make (struct
      type t = P.sender

      let compare = P.compare_sender
    end) in
    let module Rset = Set.Make (struct
      type t = P.receiver

      let compare = P.compare_receiver
    end) in
    let senders = Cset.fold (fun c acc -> Sset.add c.sender acc) configs Sset.empty in
    let receivers = Cset.fold (fun c acc -> Rset.add c.receiver acc) configs Rset.empty in
    let semi_valid = Cset.filter (fun c -> c.submitted = c.delivered + 1) configs in
    let boundness = ref (Some 0) in
    let exhausted = ref 0 in
    let budget = ref (match max_probes with None -> max_int | Some n -> n) in
    let skipped = ref 0 in
    Cset.iter
      (fun c ->
        if !budget <= 0 then incr skipped
        else begin
          decr budget;
          match probe probe_bounds c with
          | Some cost -> (
              match !boundness with
              | Some b -> boundness := Some (max b cost)
              | None -> ())
          | None ->
              incr exhausted;
              boundness := None
        end)
      semi_valid;
    {
      Boundness.protocol = P.name;
      k_t = Sset.cardinal senders;
      k_r = Rset.cardinal receivers;
      state_product = Sset.cardinal senders * Rset.cardinal receivers;
      configs_explored = Cset.cardinal configs;
      semi_valid_configs = Cset.cardinal semi_valid;
      boundness = !boundness;
      probes_exhausted = !exhausted;
      probes_skipped = !skipped;
      (* The tree-based oracle is sequential by construction. *)
      engine_domains = 1;
      por = explore.Explore.por;
    }
end

let find_phantom (proto : Spec.t) bounds =
  let module P = (val proto) in
  let module R = Make (P) in
  R.search ~stop_at_phantom:true bounds

let reachable (proto : Spec.t) bounds =
  let module P = (val proto) in
  let module R = Make (P) in
  match R.search ~stop_at_phantom:false bounds with
  | Explore.Violation _ -> assert false
  | Explore.No_violation s | Explore.Node_budget s -> s

let reachable_set_stats (proto : Spec.t) bounds =
  let module P = (val proto) in
  let module R = Make (P) in
  let reach = R.reachable_set bounds in
  (reach.R.reach_stats, reach.R.truncated)

let measure_boundness ?max_probes (proto : Spec.t) ~(explore : Explore.bounds)
    ~(probe : Boundness.probe_bounds) =
  let module P = (val proto) in
  let module R = Make (P) in
  R.measure ?max_probes ~explore ~probe_bounds:probe ()
