(* Sharded visited tables for the intra-search parallel BFS.

   A table is split into [shards] independent sub-tables; a configuration
   key lands in shard [hash land (shards - 1)].  The exploration runs in
   barrier-separated phases, and the phases obey an *ownership-striping*
   discipline that makes every operation lock-free:

   - generation phases only call [mem] (concurrent reads of a table no
     domain is mutating);
   - insertion phases partition the shards across domains — each shard is
     walked by exactly one domain, which processes that shard's candidate
     insertions in global candidate-rank order.

   Striping by ownership rather than by lock is what keeps the parallel
   search deterministic: a per-shard mutex would admit whichever domain
   arrived first, but insertion *order* decides which duplicate candidate
   becomes the visited node, so each shard's insertions must happen in
   rank order — i.e. on a single domain per phase.  The barrier between
   phases is the only synchronisation the table itself needs. *)

(* 63-bit avalanche mixer (splitmix-style, constants truncated to fit
   OCaml's tagged int).  Key distribution feeds both shard selection (low
   bits) and the in-shard probe sequence (high bits), so raw packed keys —
   which differ only in a few fields — must be scrambled first. *)
let mix k =
  let k = k lxor (k lsr 31) in
  let k = k * 0x2545F4914F6CDD1D land max_int in
  let k = k lxor (k lsr 29) in
  let k = k * 0x9E3779B97F4A7C1 land max_int in
  k lxor (k lsr 32)

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

(* Default shard count: enough strips that any realistic domain count
   partitions them evenly, few enough that per-shard tables stay dense. *)
let default_shards = 64

module Packed = struct
  type shard = {
    mutable slots : int array;  (* open addressing; -1 = empty *)
    mutable used : int;
    mutable mask : int;
  }

  type t = { shards : shard array; smask : int }

  let create ?(shards = default_shards) ~size_hint () =
    let shards = pow2_at_least (max 1 shards) 1 in
    let per = pow2_at_least (max 16 (size_hint / shards * 2)) 16 in
    {
      shards =
        Array.init shards (fun _ ->
            { slots = Array.make per (-1); used = 0; mask = per - 1 });
      smask = shards - 1;
    }

  let shard_count t = t.smask + 1
  let shard_of_key t key = mix key land t.smask

  let rec probe slots mask h key i =
    let j = (h + i) land mask in
    let v = slots.(j) in
    if v = key then j else if v = -1 then -j - 1 (* insertion point, encoded *)
    else probe slots mask h key (i + 1)

  let mem t key =
    let h = mix key in
    let s = t.shards.(h land t.smask) in
    probe s.slots s.mask (h lsr 6) key 0 >= 0

  let grow s h_of =
    let old = s.slots in
    let cap = 2 * Array.length old in
    s.slots <- Array.make cap (-1);
    s.mask <- cap - 1;
    Array.iter
      (fun key ->
        if key >= 0 then begin
          let at = probe s.slots s.mask (h_of key) key 0 in
          s.slots.(-at - 1) <- key
        end)
      old

  (* Insert-if-absent; caller owns this key's shard for the phase.
     Returns [true] when [key] was newly added. *)
  let add_owned t key =
    let h = mix key in
    let s = t.shards.(h land t.smask) in
    let at = probe s.slots s.mask (h lsr 6) key 0 in
    if at >= 0 then false
    else begin
      s.slots.(-at - 1) <- key;
      s.used <- s.used + 1;
      if 4 * s.used > 3 * (s.mask + 1) then grow s (fun k -> mix k lsr 6);
      true
    end

  let length t = Array.fold_left (fun acc s -> acc + s.used) 0 t.shards
end

module Make (H : Hashtbl.HashedType) = struct
  module T = Hashtbl.Make (H)

  type t = { shards : unit T.t array; smask : int }

  let create ?(shards = default_shards) ~size_hint () =
    let shards = pow2_at_least (max 1 shards) 1 in
    {
      shards = Array.init shards (fun _ -> T.create (max 16 (size_hint / shards * 2)));
      smask = shards - 1;
    }

  let shard_count t = t.smask + 1
  let shard_of t ~hash = mix hash land t.smask
  let mem t ~hash key = T.mem t.shards.(mix hash land t.smask) key

  let add_owned t ~hash key =
    let s = t.shards.(mix hash land t.smask) in
    if T.mem s key then false
    else begin
      T.add s key ();
      true
    end

  let length t = Array.fold_left (fun acc s -> acc + T.length s) 0 t.shards
end
