(** Interned packet-count vectors — the O(1)-amortised channel multiset of
    the hashed state-space engine.

    {!Index} interns a run's reachable packet alphabet into dense ids;
    vectors then count copies per id with the cardinal cached, trailing
    zeros trimmed (canonical representation), and cheap structural
    equality/hash — replacing {!Nfc_util.Multiset}'s balanced-map walks on
    the engine's hot path.  Vectors are immutable; an [Index.t] is mutable
    and belongs to exactly one engine instance (never share one across
    domains). *)

module Index : sig
  type t

  val create : unit -> t

  (** [id t packet] interns [packet], assigning the next dense id on first
      sight. *)
  val id : t -> int -> int

  (** [packet t id] decodes an id back to its packet value. *)
  val packet : t -> int -> int

  (** Number of distinct packets interned so far. *)
  val size : t -> int

  (** Iterate all interned ids in increasing {e packet-value} order — the
      enumeration order of [Multiset.support], so the hashed engine visits
      configurations in exactly the tree-based engine's BFS order. *)
  val iter_by_value : t -> (int -> unit) -> unit

  (** Immutable snapshot of the value-ordered id view.  Parallel
      exploration phases enumerate a level-start snapshot so concurrent
      interning of fresh packets (which no pre-snapshot configuration can
      carry) never perturbs move enumeration. *)
  val snapshot_by_value : t -> int array

  (** Immutable id-indexed decode snapshot ([(snapshot_packets t).(id)] is
      the packet value of [id]).  Taken at the same barrier as
      {!snapshot_by_value}: pre-snapshot configurations only mention
      pre-snapshot ids, so the prefix copy decodes every id a parallel
      phase can encounter without racing the growable internals. *)
  val snapshot_packets : t -> int array
end

type t

val empty : t
val cardinal : t -> int

(** [count v id] is the multiplicity of [id] ([0] when never added). *)
val count : t -> int -> int

(** [add v id] adds one copy. *)
val add : t -> int -> t

(** [remove_one v id] removes one copy, or [None] if no copy is present. *)
val remove_one : t -> int -> t option

val equal : t -> t -> bool
val hash : t -> int

(** [fold f v acc] over (id, positive count) pairs in id order. *)
val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

(** The raw count array (a fresh copy; index = interned id, trailing zeros
    trimmed).  The escape hatch for abstract domains built over the same
    interned alphabet ({!Nfc_absint.Opvec} lifts these counts to ω). *)
val to_array : t -> int array
