(** Work-stealing frontier for the level-synchronized parallel BFS.

    A pool of [domains - 1] spawned worker domains plus the calling
    domain (worker 0).  Each {!run} executes one barrier-delimited phase:
    block indices [0 .. blocks-1] are dealt into per-domain deques as
    contiguous ranges; workers drain their own deque bottom-first and
    batch-steal half a victim's remainder when dry; {!run} returns once
    every block has executed (phases never spawn blocks mid-flight).

    Determinism contract: tasks write results only into block-indexed
    slots.  Which worker runs a block and in what order blocks finish is
    racy by design — callers reassemble in block-index order, so the
    race never reaches a result.  A task needing exclusivity (visited
    insertion) keys it off the block index: blocks partition the shard
    space, and a stolen block carries its exclusive shard slice with it.

    The first exception a task raises is captured and re-raised from
    {!run} on the calling domain (remaining blocks of that worker are
    abandoned; other workers finish theirs). *)

type t

val create : domains:int -> t

(** Number of workers, including the calling domain. *)
val domains : t -> int

(** [run t ~blocks task] executes [task ~worker ~block] for every
    [block < blocks], on [domains t] workers, returning at the phase
    barrier.  [worker] is the executing worker's index — valid as an
    index into per-worker scratch state, nothing more. *)
val run : t -> blocks:int -> (worker:int -> block:int -> unit) -> unit

(** Join the spawned domains.  The pool must not be used afterwards. *)
val shutdown : t -> unit
