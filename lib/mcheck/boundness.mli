(** Measuring protocol boundness (Section 2.3 and Theorem 2.1).

    A protocol is k-bounded when from every semi-valid execution (one
    message pending) there is an extension that completes the delivery
    using at most k [send_pkt^{t->r}] actions, without delivering any
    packet that was already in transit.

    [probe] computes that minimum for one reachable configuration by
    uniform-cost search: old in-transit packets are frozen (per the
    definition), fresh packets may be delivered at will, and only forward
    sends cost 1.  [measure] takes the maximum over reachable
    one-message-pending configurations and reports it next to the
    k_t * k_r state-product bound of Theorem 2.1 — the measured boundness
    must never exceed the product for finite-control protocols. *)

type probe_bounds = {
  max_nodes : int;  (** visited-set limit per probe *)
  max_cost : int;  (** give up beyond this many forward sends *)
}

val default_probe_bounds : probe_bounds

type report = {
  protocol : string;
  k_t : int;  (** distinct sender states in the explored region *)
  k_r : int;
  state_product : int;  (** k_t * k_r, Theorem 2.1's bound *)
  configs_explored : int;
  semi_valid_configs : int;  (** configurations with one message pending *)
  boundness : int option;
      (** max over semi-valid configs of the min forward-sends to finish;
          [None] if some probe exhausted its budget (protocol looks
          unbounded from there) *)
  probes_exhausted : int;
  probes_skipped : int;
      (** semi-valid configurations not probed because [max_probes] ran
          out; when positive, [boundness] is a lower bound over the probed
          sample rather than the explored maximum *)
  engine_domains : int;
      (** intra-search domain count the exploration ran with (1 =
          sequential); results are domain-count-invariant, recorded for
          provenance *)
  por : bool;  (** whether the exploration used lazy-drop POR *)
}

val pp_report : Format.formatter -> report -> unit

(** The report as a JSON value — the [/v1/boundness] service payload. *)
val to_json : report -> Nfc_util.Json.t

(** The measurement engine behind {!measure}, exposed so callers that
    already hold an exploration (the linter) can share it.  [E] is the
    engine instance the measurement runs on: instantiate [Make] once per
    protocol per domain and use [E] for any exploration whose result is
    passed back in. *)
module Make (P : Nfc_protocol.Spec.S) : sig
  module E : module type of Explore.Make (P)

  (** As the toplevel {!measure}, plus [reach]: an {e ungated}
      [E.reachable_set] at the same [explore] bounds.  When that reach is
      phantom-free ([first_phantom = None]) the gated exploration provably
      visits the identical set and is skipped — one BFS pass instead of
      two; a reach carrying a phantom is ignored and the gated pass runs
      as usual, so the report is the same either way. *)
  val measure :
    ?max_probes:int ->
    ?jobs:int ->
    ?domains:int ->
    ?checkpoint:(unit -> unit) ->
    ?reach:E.reach ->
    explore:Explore.bounds ->
    probe_bounds:probe_bounds ->
    unit ->
    report
end

(** Explore with [explore_bounds] (see {!Explore.bounds}), then probe every
    semi-valid configuration found — or only the first [max_probes] of
    them in the canonical configuration order (the tree-based engine's
    visited-set order), for callers (the linter) that need a bounded-cost
    sample rather than the exact explored maximum.

    [jobs] (default 1) fans the probes out over that many domains; each
    probe is self-contained, and the aggregation (max over costs, count of
    exhausted probes) is order-independent, so the report is identical at
    any job count.  [domains] (default 1) instead parallelises {e inside}
    the gated exploration ({!Explore.reachable_set}'s intra-search
    engine) — also result-invariant.  [checkpoint] is the cooperative
    cancellation hook threaded into the exploration. *)
val measure :
  ?max_probes:int ->
  ?jobs:int ->
  ?domains:int ->
  ?checkpoint:(unit -> unit) ->
  Nfc_protocol.Spec.t ->
  explore:Explore.bounds ->
  probe:probe_bounds ->
  report
