(** Explicit-state model checking of protocol x non-FIFO-channel systems.

    A configuration is (sender state, receiver state, forward multiset,
    reverse multiset, submitted, delivered).  Successors follow the
    semantics of Section 2: user submissions, automaton polls (including
    silent timer ticks), adversary-chosen deliveries of any in-transit
    packet, and (optionally) drops.  The exploration is a breadth-first
    search with a visited set, so returned counterexamples are
    shortest-in-moves.

    Channel capacities and a submission budget make the space finite for
    finite-control protocols; counter-based protocols are explored up to
    the node budget.

    Engine representation: sender/receiver states are interned into dense
    ids (hash-bucketed when the spec provides {!Nfc_protocol.Spec.S.hash_sender}
    hooks, comparator-keyed otherwise) and channel multisets are
    {!Pvec.t} count vectors over the interned packet alphabet.  The
    visited set is a [Hashtbl] over this packed encoding, making the
    membership test O(1) amortised instead of a balanced-tree walk with
    up to four multiset comparisons per node.  Channel moves are still
    enumerated in increasing packet-value order, so BFS order — and hence
    every counterexample, statistic, and report — is identical to the
    tree-based engine's (retained as {!Reference} for differential
    testing).

    [find_phantom] searches for the invalid executions at the heart of
    Theorems 3.1 and 4.1: a reachable configuration in which the receiver
    delivers an (n+1)-th message when only n were submitted (rm > sm, the
    DL1 violation).  It finds the alternating-bit and stop-and-wait
    counterexamples in milliseconds and proves small instances of
    bounded-header impossibility mechanically. *)

type bounds = {
  capacity_tr : int;  (** max packets in transit t->r *)
  capacity_rt : int;
  submit_budget : int;  (** total messages the user may submit *)
  max_nodes : int;  (** visited-set size limit *)
  allow_drop : bool;  (** may the channel delete packets? *)
  por : bool;
      (** lazy-drop partial-order reduction: generate [Drop_pkt] moves
          only when the channel is at capacity.  Drops over a multiset
          channel commute with every other move and deferring one only
          grows the channel, so the reduction preserves phantom
          reachability, the packet alphabet, and every station-state
          projection (hence boundness verdicts) — but {e not} the exact
          configuration count, nor the wedge (Q1) analysis, which
          {!Make.find_wedge_search} therefore runs POR-off. *)
}

val default_bounds : bounds

(** Canonical fingerprint of a bounds record — the memo key under which
    resident analyses ({!Nfc_serve.Cache}) share one exploration across
    requests.  Equal bounds, equal key; distinct bounds, distinct key. *)
val bounds_key : bounds -> string

type stats = {
  nodes : int;  (** distinct configurations visited *)
  sender_states : int;  (** distinct sender states seen *)
  receiver_states : int;
  max_depth : int;
}

type outcome =
  | Violation of Nfc_automata.Execution.t
      (** shortest action sequence ending in the phantom [Receive_msg] *)
  | No_violation of stats  (** full space explored, no violation *)
  | Node_budget of stats  (** search stopped at [max_nodes] *)

val pp_outcome : Format.formatter -> outcome -> unit

(** Search for a reachable DL1 violation (phantom delivery).  [domains]
    (default 1) selects the intra-search parallel engine; results are
    byte-identical at any domain count. *)
val find_phantom : ?domains:int -> Nfc_protocol.Spec.t -> bounds -> outcome

(** Explore the whole bounded space (no goal) and report statistics —
    in particular the k_t and k_r of Theorem 2.1. *)
val reachable : ?domains:int -> Nfc_protocol.Spec.t -> bounds -> stats

type wedge_outcome =
  | Wedged of Nfc_automata.Execution.t * stats
      (** shortest path into a configuration with a message pending from
          which {e no} reachable continuation ever delivers — a mechanical
          liveness (DL3) counterexample.  Conservative under truncation:
          unexpanded frontier configurations are assumed able to deliver. *)
  | No_wedge of stats

val pp_wedge_outcome : Format.formatter -> wedge_outcome -> unit

(** Search for a wedged configuration (backward fixpoint over the explored
    graph).  The alternating bit over a pure-reordering channel wedges —
    its other failure mode besides the phantom — while the
    sequence-number protocols never do within any explored space. *)
val find_wedge : Nfc_protocol.Spec.t -> bounds -> wedge_outcome

(** Generic dense-id interner: [intern_hashed hash equal] returns a
    closure assigning ids in first-sight order, hash-bucketed with
    [equal] breaking collisions — so id equality is exactly
    [equal]-equality.  Exposed for sibling analyses (boundness probes)
    that build their own packed visited sets. *)
val intern_hashed : ('a -> int) -> ('a -> 'a -> bool) -> 'a -> int

(** The per-protocol exploration engine, exposed so downstream static
    analyses (notably [Nfc_lint]) can work with typed configurations and
    the labelled successor relation rather than only the monomorphic
    search wrappers above.

    An instantiation owns mutable intern tables: create the engine inside
    the job that uses it and never share one instance across domains
    (per-protocol jobs each instantiate their own). *)
module Make (P : Nfc_protocol.Spec.S) : sig
  type config = {
    sender : P.sender;
    sid : int;  (** interned id of [sender] (comparator equality) *)
    receiver : P.receiver;
    rid : int;
    tr : Pvec.t;  (** packets in transit t->r, as interned counts *)
    rt : Pvec.t;
    submitted : int;
    delivered : int;
  }

  val initial : config

  (** The engine's packet alphabet interner: shared by any sibling
      analysis ({!Nfc_absint.Cover}) so ids and {!Pvec.t} layouts agree
      across the bounded and ω-accelerated explorations. *)
  val pkts : Pvec.Index.t

  (** The state interners (dense ids in first-sight order; id equality is
      comparator equality). *)
  val intern_sender : P.sender -> int

  val intern_receiver : P.receiver -> int

  (** Memoised single-step transitions keyed on interned ids: each
      distinct (state, input) pair runs protocol code once, engine-wide —
      including calls made by sibling analyses sharing this instance.
      [step_submit s sid] requires [sid = intern_sender s] (and so on);
      the returned int is the interned id of the post-state. *)
  val step_submit : P.sender -> int -> P.sender * int

  val step_sender_poll : P.sender -> int -> int option * P.sender * int

  val step_receiver_poll :
    P.receiver -> int -> Nfc_protocol.Spec.remit option * P.receiver * int

  val step_ack : P.sender -> int -> int -> P.sender * int
  val step_data : P.receiver -> int -> int -> P.receiver * int

  (** In-transit packets of a configuration as a (packet value, count)
      association list sorted by packet value — the decoded view of the
      interned vectors, for alphabet censuses and order-stable output. *)
  val packets_tr : config -> (int * int) list

  val packets_rt : config -> (int * int) list

  (** Total order on configurations matching the tree-based engine's
      visited-set order: (submitted, delivered), then the state
      comparators, then the channel multisets in key order.  Used where a
      BFS-independent order matters (boundness probe sampling). *)
  val compare_config : config -> config -> int

  (** Labelled successor relation under the given bounds ([None] labels a
      silent timer tick).  [deliver_valid_only] (default false) gates
      message delivery on [delivered < submitted] — the boundness
      semantics, which never explores phantom branches. *)
  val successors :
    ?deliver_valid_only:bool ->
    bounds ->
    config ->
    (Nfc_automata.Action.t option * config) list

  (** The same enumeration in continuation-passing style — the spine the
      breadth-first loops run on; no per-move allocation beyond the
      successor configuration itself. *)
  val iter_successors :
    ?deliver_valid_only:bool ->
    bounds ->
    config ->
    (Nfc_automata.Action.t option -> config -> unit) ->
    unit

  type reach = {
    configs : config list;  (** every visited configuration, in BFS order *)
    truncated : bool;  (** true iff [max_nodes] cut the exploration off *)
    reach_stats : stats;
    first_phantom : int option;
        (** action count of the first phantom-producing move in BFS
            generation order (= the trace length {!search} would report);
            [None] certifies no expansion anywhere produced
            [delivered > submitted], hence that the delivery-gated
            successor graph coincides with the ungated one on this
            exploration ({!Boundness} reuses the set on that strength) *)
    phantom_in_budget : bool;
        (** whether that first phantom move was generated before {!search}
            would have exhausted [max_nodes] — i.e. whether [search]
            returns [Violation] rather than [Node_budget] *)
  }

  (** The reachable set itself (not just its statistics).  One full
      breadth-first sweep serves three consumers: the configuration list
      (census, probing), the phantom scan (replacing a separate
      {!search} pass), and — when phantom-free — the boundness
      measurement's gated exploration.

      [domains] (default 1) runs the level-synchronised intra-search
      parallel core: bit-packed (or boxed-fallback) sharded visited
      table, work-stealing frontier, and a sequential rank-order
      finalisation that reproduces the sequential engine's
      configurations, statistics, truncation and phantom bookkeeping
      byte-for-byte at any domain count.  [size_hint] pre-sizes the
      visited table (default: scaled to [max_nodes]).  [checkpoint] is
      called periodically from the exploring domain (every level in
      parallel mode, every ~2k dequeues sequentially) — the cooperative
      cancellation hook; it may raise to abort the exploration. *)
  val reachable_set :
    ?deliver_valid_only:bool ->
    ?domains:int ->
    ?size_hint:int ->
    ?checkpoint:(unit -> unit) ->
    bounds ->
    reach

  (** Corrupted-start exploration (the self-stabilization tier's sweep):
      the same breadth-first machinery as {!reachable_set}, seeded from an
      enumerated configuration list instead of [initial].  Seeds are
      visited at depth 0 in caller order, deduplicated through the visited
      table; the returned [configs] list (seed order, then rank order per
      level) is byte-deterministic at any [domains] count.  A seed list
      longer than [max_nodes] truncates. *)
  val from_configs :
    ?deliver_valid_only:bool ->
    ?domains:int ->
    ?size_hint:int ->
    ?checkpoint:(unit -> unit) ->
    seeds:config list ->
    bounds ->
    reach

  (** BFS counterexample search; same [domains]/[size_hint]/[checkpoint]
      contract as {!reachable_set}. *)
  val search :
    ?stop_at_phantom:bool ->
    ?domains:int ->
    ?size_hint:int ->
    ?checkpoint:(unit -> unit) ->
    bounds ->
    outcome

  (** Wedge (stuck-configuration) search.  Always sequential and always
      POR-off (see {!type:bounds}): the lazy-drop reduction does not
      preserve the wedge analysis. *)
  val find_wedge_search :
    ?size_hint:int -> ?checkpoint:(unit -> unit) -> bounds -> wedge_outcome

  type replay_outcome =
    | Replay_refuted of Nfc_automata.Execution.t * config * stats
        (** shortest trace into a configuration violating the monitor,
            plus that configuration *)
    | Replay_upheld of stats * bool
        (** the monitor held on everything explored; the bool is [true]
            when [max_nodes] truncated the sweep (held-so-far, not
            certified) *)

  (** Concrete replay of a state predicate, the spuriousness check of the
      CEGAR layer ({!Nfc_refine}): BFS over the delivery-gated
      ([deliver_valid_only] defaults to [true] — the boundness semantics
      the static tier certifies) successor graph, evaluating [monitor] on
      every configuration in BFS generation order.  A refutation therefore
      carries a shortest witness trace.  Always sequential, so the result
      is domain-count-invariant by construction. *)
  val replay_monitor :
    ?deliver_valid_only:bool ->
    ?size_hint:int ->
    ?checkpoint:(unit -> unit) ->
    monitor:(config -> bool) ->
    bounds ->
    replay_outcome
end
