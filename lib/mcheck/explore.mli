(** Explicit-state model checking of protocol x non-FIFO-channel systems.

    A configuration is (sender state, receiver state, forward multiset,
    reverse multiset, submitted, delivered).  Successors follow the
    semantics of Section 2: user submissions, automaton polls (including
    silent timer ticks), adversary-chosen deliveries of any in-transit
    packet, and (optionally) drops.  The exploration is a breadth-first
    search with a visited set, so returned counterexamples are
    shortest-in-moves.

    Channel capacities and a submission budget make the space finite for
    finite-control protocols; counter-based protocols are explored up to
    the node budget.

    [find_phantom] searches for the invalid executions at the heart of
    Theorems 3.1 and 4.1: a reachable configuration in which the receiver
    delivers an (n+1)-th message when only n were submitted (rm > sm, the
    DL1 violation).  It finds the alternating-bit and stop-and-wait
    counterexamples in milliseconds and proves small instances of
    bounded-header impossibility mechanically. *)

type bounds = {
  capacity_tr : int;  (** max packets in transit t->r *)
  capacity_rt : int;
  submit_budget : int;  (** total messages the user may submit *)
  max_nodes : int;  (** visited-set size limit *)
  allow_drop : bool;  (** may the channel delete packets? *)
}

val default_bounds : bounds

type outcome =
  | Violation of Nfc_automata.Execution.t
      (** shortest action sequence ending in the phantom [Receive_msg] *)
  | No_violation of stats  (** full space explored, no violation *)
  | Node_budget of stats  (** search stopped at [max_nodes] *)

and stats = {
  nodes : int;  (** distinct configurations visited *)
  sender_states : int;  (** distinct sender states seen *)
  receiver_states : int;
  max_depth : int;
}

val pp_outcome : Format.formatter -> outcome -> unit

(** Search for a reachable DL1 violation (phantom delivery). *)
val find_phantom : Nfc_protocol.Spec.t -> bounds -> outcome

(** Explore the whole bounded space (no goal) and report statistics —
    in particular the k_t and k_r of Theorem 2.1. *)
val reachable : Nfc_protocol.Spec.t -> bounds -> stats

type wedge_outcome =
  | Wedged of Nfc_automata.Execution.t * stats
      (** shortest path into a configuration with a message pending from
          which {e no} reachable continuation ever delivers — a mechanical
          liveness (DL3) counterexample.  Conservative under truncation:
          unexpanded frontier configurations are assumed able to deliver. *)
  | No_wedge of stats

val pp_wedge_outcome : Format.formatter -> wedge_outcome -> unit

(** Search for a wedged configuration (backward fixpoint over the explored
    graph).  The alternating bit over a pure-reordering channel wedges —
    its other failure mode besides the phantom — while the
    sequence-number protocols never do within any explored space. *)
val find_wedge : Nfc_protocol.Spec.t -> bounds -> wedge_outcome

(** The per-protocol exploration engine, exposed so downstream static
    analyses (notably [Nfc_lint]) can work with typed configurations and
    the labelled successor relation rather than only the monomorphic
    search wrappers above. *)
module Make (P : Nfc_protocol.Spec.S) : sig
  type config = {
    sender : P.sender;
    receiver : P.receiver;
    tr : Nfc_util.Multiset.Int.t;  (** packets in transit t->r *)
    rt : Nfc_util.Multiset.Int.t;
    submitted : int;
    delivered : int;
  }

  val initial : config

  (** Labelled successor relation under the given bounds ([None] labels a
      silent timer tick). *)
  val successors :
    bounds -> config -> (Nfc_automata.Action.t option * config) list

  type reach = {
    configs : config list;  (** every visited configuration, in BFS order *)
    truncated : bool;  (** true iff [max_nodes] cut the exploration off *)
    reach_stats : stats;
  }

  (** The reachable set itself (not just its statistics). *)
  val reachable_set : bounds -> reach

  val search : ?stop_at_phantom:bool -> bounds -> outcome
  val find_wedge_search : bounds -> wedge_outcome
end
