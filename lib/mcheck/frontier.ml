(* Work-stealing frontier for the level-synchronized parallel BFS.

   A pool owns [domains - 1] spawned worker domains (the calling domain
   is worker 0).  Each {!run} is one barrier-delimited phase: the block
   indices [0 .. blocks-1] are dealt into per-domain deques as contiguous
   ranges, every worker drains its own deque bottom-first and steals a
   batch (half the victim's remainder) from another deque's top when its
   own runs dry, and {!run} returns only when every block has been
   executed.  Phases never create blocks mid-flight, so "all deques
   empty" is a sound termination test.

   Determinism contract: a task must write its results only into
   block-indexed slots.  Which worker executes a block, and in which
   order blocks complete, is racy by design; the caller reassembles
   results in block-index order, so the race is invisible.  Tasks that
   need exclusivity (the visited-table insertion phase) key it off the
   *block* index — blocks partition the shards, so whichever worker
   steals a block inherits its exclusive shard slice.

   The deques are mutex-protected rather than lock-free: steals happen at
   block granularity (hundreds of parents per block), so the lock is cold
   and the simplicity buys an obvious correctness argument. *)

type deque = {
  dm : Mutex.t;
  mutable items : int array;  (* live slice is [lo, hi) *)
  mutable lo : int;
  mutable hi : int;
}

type t = {
  domains : int;
  deques : deque array;
  m : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable gen : int;
  mutable remaining : int;
  mutable task : (worker:int -> block:int -> unit) option;
  mutable stop : bool;
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable handles : unit Domain.t list;
}

let pop_own d =
  Mutex.protect d.dm (fun () ->
      if d.hi > d.lo then begin
        d.hi <- d.hi - 1;
        Some d.items.(d.hi)
      end
      else None)

(* Steal the top half of [victim]'s remaining blocks: the first becomes
   the thief's next block, the rest seed the thief's (empty) deque so
   further thieves can re-steal them. *)
let steal_from victim thief =
  Mutex.protect victim.dm (fun () ->
      let n = victim.hi - victim.lo in
      if n <= 0 then None
      else begin
        let k = (n + 1) / 2 in
        let batch = Array.sub victim.items victim.lo k in
        victim.lo <- victim.lo + k;
        Mutex.protect thief.dm (fun () ->
            thief.items <- batch;
            thief.lo <- 1;
            thief.hi <- k);
        Some batch.(0)
      end)

let next_block t w =
  match pop_own t.deques.(w) with
  | Some b -> Some b
  | None ->
      let rec try_victim i =
        if i >= t.domains then None
        else
          let v = (w + i) mod t.domains in
          match steal_from t.deques.(v) t.deques.(w) with
          | Some b -> Some b
          | None -> try_victim (i + 1)
      in
      try_victim 1

let drain t w task =
  let rec go () =
    match next_block t w with
    | Some b ->
        task ~worker:w ~block:b;
        go ()
    | None -> ()
  in
  try go ()
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    Mutex.protect t.m (fun () ->
        if t.failure = None then t.failure <- Some (e, bt))

let worker_loop t w =
  let rec loop my_gen =
    Mutex.lock t.m;
    while t.gen = my_gen && not t.stop do
      Condition.wait t.work t.m
    done;
    if t.stop then Mutex.unlock t.m
    else begin
      let gen = t.gen in
      let task = Option.get t.task in
      Mutex.unlock t.m;
      drain t w task;
      Mutex.protect t.m (fun () ->
          t.remaining <- t.remaining - 1;
          if t.remaining = 0 then Condition.broadcast t.finished);
      loop gen
    end
  in
  loop 0

let create ~domains =
  let domains = max 1 domains in
  let t =
    {
      domains;
      deques =
        Array.init domains (fun _ -> { dm = Mutex.create (); items = [||]; lo = 0; hi = 0 });
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      gen = 0;
      remaining = 0;
      task = None;
      stop = false;
      failure = None;
      handles = [];
    }
  in
  t.handles <-
    List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let domains t = t.domains

let reraise_failure t =
  match t.failure with
  | Some (e, bt) ->
      t.failure <- None;
      Printexc.raise_with_backtrace e bt
  | None -> ()

let run t ~blocks task =
  if blocks > 0 then
    if t.domains = 1 then begin
      (try
         for b = 0 to blocks - 1 do
           task ~worker:0 ~block:b
         done
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         t.failure <- Some (e, bt));
      reraise_failure t
    end
    else begin
      (* Deal contiguous block ranges, one per domain (locality: blocks
         index contiguous parent ranges). *)
      Array.iteri
        (fun d dq ->
          let lo = blocks * d / t.domains and hi = blocks * (d + 1) / t.domains in
          Mutex.protect dq.dm (fun () ->
              dq.items <- Array.init (hi - lo) (fun i -> lo + i);
              dq.lo <- 0;
              dq.hi <- hi - lo))
        t.deques;
      Mutex.protect t.m (fun () ->
          t.task <- Some task;
          t.gen <- t.gen + 1;
          t.remaining <- t.domains - 1;
          Condition.broadcast t.work);
      drain t 0 task;
      Mutex.lock t.m;
      while t.remaining > 0 do
        Condition.wait t.finished t.m
      done;
      t.task <- None;
      Mutex.unlock t.m;
      reraise_failure t
    end

let shutdown t =
  Mutex.protect t.m (fun () ->
      t.stop <- true;
      Condition.broadcast t.work);
  List.iter Domain.join t.handles;
  t.handles <- []
