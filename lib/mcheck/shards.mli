(** Sharded visited tables for the intra-search parallel BFS.

    A table is [shards] independent sub-tables; a key lands in the shard
    selected by the low bits of its (mixed) hash.  Concurrency is by
    {e ownership striping}, not locks: barrier-separated exploration
    phases either only read ([mem], safe from any domain while no domain
    writes) or partition the shards across domains so each shard's
    insertions happen on exactly one domain, {e in global candidate-rank
    order}.  That ordering — not mutual exclusion — is what keeps the
    parallel search deterministic: insertion order decides which
    duplicate candidate becomes the visited node, so a shard must be
    driven by a single domain per phase.  See DESIGN §5.13. *)

(** Recommended shard count (a power of two; any realistic domain count
    partitions it evenly). *)
val default_shards : int

(** Open-addressing shards over bit-packed int63 configuration keys (all
    keys non-negative): membership is an integer probe sequence with no
    allocation or boxing. *)
module Packed : sig
  type t

  val create : ?shards:int -> size_hint:int -> unit -> t
  val shard_count : t -> int

  (** The shard a key routes to — the partition function insertion phases
      use to assign candidates to their owning domain. *)
  val shard_of_key : t -> int -> int

  val mem : t -> int -> bool

  (** Insert-if-absent; returns [true] when newly added.  The calling
      domain must own [shard_of_key t key] for the current phase. *)
  val add_owned : t -> int -> bool

  (** Total population (exact only between phases). *)
  val length : t -> int
end

(** Boxed fallback for configurations whose packed encoding overflows
    int63: the same sharding discipline over [Hashtbl.Make] shards. *)
module Make (H : Hashtbl.HashedType) : sig
  type t

  val create : ?shards:int -> size_hint:int -> unit -> t
  val shard_count : t -> int
  val shard_of : t -> hash:int -> int
  val mem : t -> hash:int -> H.t -> bool

  (** Insert-if-absent; the calling domain must own [shard_of t ~hash]
      for the current phase. *)
  val add_owned : t -> hash:int -> H.t -> bool

  val length : t -> int
end
