(* Interned packet-count vectors: the channel-multiset representation of
   the hashed state-space engine.

   An [Index.t] interns a run's reachable packet alphabet into dense ids
   in discovery order; a [t] is an immutable count-per-id vector with the
   cardinal cached and trailing zeros trimmed, so structurally equal
   vectors are the unique representation of a multiset and equality/hash
   are O(alphabet) int scans instead of balanced-map walks
   ({!Nfc_util.Multiset}).  The alphabet under lint/mcheck bounds is a
   handful of headers, so "O(alphabet)" is effectively O(1). *)

module Index = struct
  type t = {
    ids : (int, int) Hashtbl.t;  (* packet value -> dense id *)
    mutable packets : int array;  (* dense id -> packet value *)
    mutable by_value : int array;  (* ids sorted by packet value *)
    mutable n : int;
  }

  let create () =
    { ids = Hashtbl.create 32; packets = Array.make 8 0; by_value = [||]; n = 0 }

  let size t = t.n

  let id t packet =
    match Hashtbl.find_opt t.ids packet with
    | Some id -> id
    | None ->
        let id = t.n in
        Hashtbl.add t.ids packet id;
        if id >= Array.length t.packets then begin
          let bigger = Array.make (2 * Array.length t.packets) 0 in
          Array.blit t.packets 0 bigger 0 id;
          t.packets <- bigger
        end;
        t.packets.(id) <- packet;
        t.n <- id + 1;
        (* Keep the value-ordered view: sorted insertion, O(alphabet) on
           the rare event of a never-seen packet. *)
        let bv = Array.make t.n id in
        let rec place i j =
          (* i walks the old array, j the new; insert [id] before the
             first larger packet value. *)
          if i < Array.length t.by_value then
            if t.packets.(t.by_value.(i)) < packet then begin
              bv.(j) <- t.by_value.(i);
              place (i + 1) (j + 1)
            end
            else begin
              bv.(j) <- id;
              Array.blit t.by_value i bv (j + 1) (Array.length t.by_value - i)
            end
          else bv.(j) <- id
        in
        place 0 0;
        t.by_value <- bv;
        id

  let packet t id = t.packets.(id)

  (* Interned ids in increasing packet-value order: lets the engine
     enumerate channel moves in exactly the order the Multiset-backed
     engine did (its [support] was value-sorted), preserving BFS order. *)
  let iter_by_value t f = Array.iter f t.by_value

  (* An immutable snapshot of the value-ordered view, for exploration
     phases that must keep enumerating a fixed alphabet while another
     domain may be interning fresh packets.  Ids interned after the
     snapshot name packets no pre-snapshot configuration can carry, so
     enumerating the snapshot visits exactly the moves [iter_by_value]
     would have. *)
  let snapshot_by_value t = Array.copy t.by_value

  (* The matching decode snapshot (index = id, value = packet) for the
     same phases: reading [packet] while another domain interns would race
     on the growable [packets] array, but every id a pre-snapshot
     configuration can mention is below the snapshot size, so a prefix
     copy taken at the barrier decodes them all. *)
  let snapshot_packets t = Array.sub t.packets 0 t.n
end

type t = { counts : int array; card : int }

let empty = { counts = [||]; card = 0 }
let cardinal t = t.card
let count t id = if id < Array.length t.counts then t.counts.(id) else 0

let add t id =
  let len = max (id + 1) (Array.length t.counts) in
  let counts = Array.make len 0 in
  Array.blit t.counts 0 counts 0 (Array.length t.counts);
  counts.(id) <- counts.(id) + 1;
  { counts; card = t.card + 1 }

let remove_one t id =
  if count t id = 0 then None
  else begin
    (* Trim trailing zeros so the representation stays canonical. *)
    let len = ref (Array.length t.counts) in
    if id = !len - 1 && t.counts.(id) = 1 then begin
      decr len;
      while !len > 0 && t.counts.(!len - 1) = 0 do
        decr len
      done
    end;
    let counts = Array.sub t.counts 0 !len in
    if id < !len then counts.(id) <- counts.(id) - 1;
    Some { counts; card = t.card - 1 }
  end

let equal a b =
  a.card = b.card
  && Array.length a.counts = Array.length b.counts
  && (let ok = ref true in
      Array.iteri (fun i c -> if c <> b.counts.(i) then ok := false) a.counts;
      !ok)

let hash t =
  let h = ref (t.card + 1) in
  Array.iter (fun c -> h := (!h * 1000003) + c) t.counts;
  !h land max_int

let fold f t acc =
  let acc = ref acc in
  Array.iteri (fun id c -> if c > 0 then acc := f id c !acc) t.counts;
  !acc

let to_array t = Array.copy t.counts
