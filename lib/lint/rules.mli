(** The rule catalogue of the static protocol verifier.

    Each rule certifies one of the paper's static invariants over a
    [Nfc_protocol.Spec.S] implementation.  The catalogue is the single
    source of truth for rule identifiers, their one-line meanings and the
    paper results they anchor to; the CLI help and the README table are
    both derived from it. *)

type meta = {
  id : string;  (** stable identifier: H1, E1, B1, T1, Q1, S1, C1, A1, P1 *)
  title : string;
  anchor : string;  (** the paper result the rule certifies *)
  summary : string;  (** one-line meaning *)
}

val all : meta list
val find : string -> meta option

(** ["H1 | E1 | ..."] — for CLI docs. *)
val doc : string
