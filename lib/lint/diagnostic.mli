(** Lint diagnostics.

    Every finding the static verifier produces carries the rule that fired
    (H1, E1, B1, T1, Q1 — see {!Rules}), a severity, the protocol it fired
    on, a one-line message and, when available, a concrete witness (a
    packet list, a configuration pretty-print, an exception text).
    Diagnostics render both as text and as JSON objects for the
    [nfc lint --json] stream. *)

type severity = Error | Warning | Info

type t = {
  rule : string;  (** rule identifier, e.g. ["H1"] *)
  severity : severity;
  protocol : string;
  message : string;
  witness : string option;
}

val make :
  rule:string ->
  severity:severity ->
  protocol:string ->
  ?witness:string ->
  string ->
  t

val severity_to_string : severity -> string
val is_error : t -> bool
val is_warning : t -> bool
val pp : Format.formatter -> t -> unit
val to_json : t -> Nfc_util.Json.t
