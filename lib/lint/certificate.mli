(** Per-protocol certificates emitted by the verifier.

    The certificate records what the bounded exploration actually
    established: the observed packet alphabet (the header census of
    Section 2.3), the distinct reachable sender/receiver state counts
    whose product is Theorem 2.1's boundness ceiling, and the boundness
    measured by {!Nfc_mcheck.Boundness} on the same bounds.  For every
    honest protocol [measured_boundness <= state_product] — a mechanical
    confirmation of Theorem 2.1; the B1 rule fires when it fails. *)

type t = {
  protocol : string;
  declared_header_bound : int option;
  alphabet_tr : int list;  (** distinct packets observed t->r *)
  alphabet_rt : int list;  (** distinct packets observed r->t *)
  k_t : int;  (** distinct reachable sender states *)
  k_r : int;  (** distinct reachable receiver states *)
  state_product : int;  (** k_t * k_r, the Theorem 2.1 certificate *)
  measured_boundness : int option;
      (** from {!Nfc_mcheck.Boundness.measure} on the same bounds; [None]
          when a probe exhausted its budget *)
  probes_exhausted : int;
  configs_explored : int;
  truncated : bool;  (** the node budget cut the exploration off *)
}

(** Total distinct packets, both directions combined (Section 2.3's |P|). *)
val alphabet_size : t -> int

val pp : Format.formatter -> t -> unit
val to_json : t -> Nfc_util.Json.t
