(** Per-protocol certificates emitted by the verifier.

    The certificate records what the bounded exploration actually
    established: the observed packet alphabet (the header census of
    Section 2.3), the distinct reachable sender/receiver state counts
    whose product is Theorem 2.1's boundness ceiling, and the boundness
    measured by {!Nfc_mcheck.Boundness} on the same bounds.  For every
    honest protocol [measured_boundness <= state_product] — a mechanical
    confirmation of Theorem 2.1; the B1 rule fires when it fails.

    Since the coverability tier ({!Nfc_absint.Cover}) each certificate
    also carries a {!strength}: [Bounded n] means the verdicts hold
    within an [n]-node exploration; [Complete] means the converged cover
    fixpoint corroborated them, so they hold for {e every} node budget
    and channel capacity (at the certificate's submission budget). *)

(** [Bounded n]: verdicts relative to an [n]-node exploration.
    [Complete]: budget-free — corroborated by a converged coverability
    fixpoint over the ω-abstracted channel (still relative to the
    certificate's submission budget).
    [Static]: proved at the spec level by the abstract interpreter
    ({!Nfc_specint}) with zero exploration — valid for every node
    budget, channel capacity and submission budget. *)
type strength = Bounded of int | Complete | Static

(** What the cover fixpoint did, for audit: convergence, retained
    maximal elements, iterations, ω-acceleration lemma instances (with up
    to 8 rendered samples), and how many retained elements carry an ω. *)
type cover_summary = {
  cover_converged : bool;
  cover_size : int;
  cover_iterations : int;
  cover_accelerations : int;
  cover_omega_configs : int;
  accel_samples : string list;
}

type t = {
  protocol : string;
  declared_header_bound : int option;
  alphabet_tr : int list;  (** distinct packets observed t->r *)
  alphabet_rt : int list;  (** distinct packets observed r->t *)
  k_t : int;  (** distinct reachable sender states *)
  k_r : int;  (** distinct reachable receiver states *)
  state_product : int;  (** k_t * k_r, the Theorem 2.1 certificate *)
  measured_boundness : int option;
      (** from {!Nfc_mcheck.Boundness.measure} on the same bounds; [None]
          when a probe exhausted its budget *)
  probes_exhausted : int;
  configs_explored : int;
  truncated : bool;  (** the node budget cut the exploration off *)
  strength : strength;
      (** weakest of the per-rule strengths: [Complete] only when the
          cover converged and corroborated every upgradable rule *)
  rule_strengths : (string * strength) list;
      (** per-rule strength for the upgradable rules (H1, T1, Q1) *)
  cover : cover_summary option;  (** present when the cover tier ran *)
  engine_domains : int;
      (** intra-search domain count the exploration ran with; verdicts
          are domain-count-invariant, recorded for provenance *)
  por : bool;  (** whether the exploration used lazy-drop POR *)
  refine_rounds : int option;
      (** CEGAR provenance: abstraction-refinement rounds the static tier
          ran before these strengths were assigned.  [None] when no
          refinement was requested, [Some 0] when requested but the
          one-shot fixpoint already sufficed *)
  stabilization : string option;
      (** self-stabilization provenance: compact SS1/SS2 verdict summary
          (e.g. ["ss1=pass(bound=8) ss2=pass(bound=0)"]) when the
          stabilization tier ran, [None] otherwise *)
}

(** ["static"], ["complete"] or ["bounded(N)"]. *)
val strength_to_string : strength -> string

(** The weaker of two strengths ([Bounded] below [Complete] below
    [Static], smaller budgets below larger ones) — for summary footers. *)
val weakest : strength -> strength -> strength

(** Total distinct packets, both directions combined (Section 2.3's |P|). *)
val alphabet_size : t -> int

val pp : Format.formatter -> t -> unit
val to_json : t -> Nfc_util.Json.t
