module Json = Nfc_util.Json

let count p results =
  List.fold_left
    (fun acc (r : Engine.result) ->
      acc + List.length (List.filter p r.diagnostics))
    0 results

let n_errors = count Diagnostic.is_error
let n_warnings = count Diagnostic.is_warning

let pp_result ppf (r : Engine.result) =
  Format.fprintf ppf "@[<v>== %s ==@," r.protocol;
  List.iter (fun d -> Format.fprintf ppf "%a@," Diagnostic.pp d) r.diagnostics;
  Format.fprintf ppf "%a@]" Certificate.pp r.certificate

let print results =
  List.iter (fun r -> Format.printf "%a@.@." pp_result r) results;
  let table =
    Nfc_util.Table.create ~title:"nfc lint summary"
      ~columns:
        [
          ("protocol", Nfc_util.Table.Left);
          ("errors", Nfc_util.Table.Right);
          ("warnings", Nfc_util.Table.Right);
          ("|P|", Nfc_util.Table.Right);
          ("declared", Nfc_util.Table.Right);
          ("k_t*k_r", Nfc_util.Table.Right);
          ("boundness", Nfc_util.Table.Right);
          ("strength", Nfc_util.Table.Left);
        ]
  in
  List.iter
    (fun (r : Engine.result) ->
      let c = r.certificate in
      Nfc_util.Table.add_row table
        [
          r.protocol;
          Nfc_util.Table.cell_int (n_errors [ r ]);
          Nfc_util.Table.cell_int (n_warnings [ r ]);
          Nfc_util.Table.cell_int (Certificate.alphabet_size c);
          (match c.Certificate.declared_header_bound with
          | Some k -> string_of_int k
          | None -> "unbounded");
          Nfc_util.Table.cell_int c.Certificate.state_product;
          (match c.Certificate.measured_boundness with
          | Some b -> string_of_int b
          | None -> "?");
          Certificate.strength_to_string c.Certificate.strength;
        ])
    results;
  Nfc_util.Table.print table;
  (* The footer states the weakest strength in the run: the whole report
     is only as budget-free as its weakest certificate. *)
  match results with
  | [] -> ()
  | r0 :: rest ->
      let weakest =
        List.fold_left
          (fun acc (r : Engine.result) ->
            Certificate.weakest acc r.certificate.Certificate.strength)
          r0.certificate.Certificate.strength rest
      in
      Format.printf "weakest certificate strength: %s@."
        (Certificate.strength_to_string weakest)

let jsonl results =
  String.concat ""
    (List.map
       (fun (r : Engine.result) ->
         Json.to_string
           (Json.Obj
              [
                ("protocol", Json.String r.protocol);
                ("diagnostics", Json.List (List.map Diagnostic.to_json r.diagnostics));
                ("certificate", Certificate.to_json r.certificate);
              ])
         ^ "\n")
       results)

let exit_code ~strict results =
  if n_errors results > 0 then 1
  else if strict && n_warnings results > 0 then 1
  else 0
