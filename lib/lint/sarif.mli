(** SARIF 2.1.0 export of a lint run ([nfc lint --sarif FILE]).

    One SARIF [run] per invocation, one [result] per diagnostic; severity
    maps Error/Warning/Info to error/warning/note, and each result
    carries the protocol as a logical location of kind ["module"] (the
    analysis target is a protocol module, not a source file).  The rule
    catalogue ({!Rules.all}) becomes the driver's [rules] array.  The
    JSONL report is unchanged by this export. *)

val of_results : Engine.result list -> Nfc_util.Json.t

(** The driver's rule catalogue rendered as SARIF
    [reportingDescriptor]s — exported so sibling emitters (the PDL
    checker / spec-level analyzer SARIF in {!Nfc_specint}) reuse one
    catalogue instead of forking it. *)
val rules_to_json : unit -> Nfc_util.Json.t

(** Wrap a [results] array in the standard one-run SARIF envelope with
    the given driver [name] and this repo's rule catalogue. *)
val envelope : name:string -> Nfc_util.Json.t list -> Nfc_util.Json.t

(** [Json.to_string] of {!of_results} — the exact file contents. *)
val to_string : Engine.result list -> string
