type severity = Error | Warning | Info

type t = {
  rule : string;
  severity : severity;
  protocol : string;
  message : string;
  witness : string option;
}

let make ~rule ~severity ~protocol ?witness message =
  { rule; severity; protocol; message; witness }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let is_error d = d.severity = Error
let is_warning d = d.severity = Warning

let pp ppf d =
  Format.fprintf ppf "@[<v2>%s %s [%s]: %s%a@]"
    (severity_to_string d.severity)
    d.rule d.protocol d.message
    (fun ppf -> function
      | None -> ()
      | Some w -> Format.fprintf ppf "@,witness: %s" w)
    d.witness

let to_json d =
  Nfc_util.Json.Obj
    [
      ("rule", Nfc_util.Json.String d.rule);
      ("severity", Nfc_util.Json.String (severity_to_string d.severity));
      ("protocol", Nfc_util.Json.String d.protocol);
      ("message", Nfc_util.Json.String d.message);
      ("witness", Nfc_util.Json.opt (fun w -> Nfc_util.Json.String w) d.witness);
    ]
