(** Rendering lint results and deciding the exit code.

    Text mode prints one block per protocol (its diagnostics, then its
    certificate) followed by a summary table; JSON mode emits one object
    per protocol (JSONL, same shape as [nfc fuzz --json]). *)

val n_errors : Engine.result list -> int
val n_warnings : Engine.result list -> int
val pp_result : Format.formatter -> Engine.result -> unit

(** The whole text report: per-protocol blocks plus the summary table. *)
val print : Engine.result list -> unit

(** One JSON object per line per protocol:
    [{"protocol":..,"diagnostics":[..],"certificate":{..}}]. *)
val jsonl : Engine.result list -> string

(** [0] clean, [1] findings: any error, or any warning under [strict].
    (Exit code [2] — internal error — is the CLI's, for escaped
    exceptions.) *)
val exit_code : strict:bool -> Engine.result list -> int
