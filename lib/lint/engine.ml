type result = {
  protocol : string;
  diagnostics : Diagnostic.t list;
  certificate : Certificate.t;
}

let run cfg proto =
  let module P = (val proto : Nfc_protocol.Spec.S) in
  let module C = Checks.Make (P) in
  let diagnostics, certificate = C.analyze cfg in
  { protocol = P.name; diagnostics; certificate }

let run_registry cfg = List.map (run cfg) (Nfc_protocol.Registry.defaults ())
