type result = {
  protocol : string;
  diagnostics : Diagnostic.t list;
  certificate : Certificate.t;
}

let run cfg proto =
  let module P = (val proto : Nfc_protocol.Spec.S) in
  let module C = Checks.Make (P) in
  let diagnostics, certificate = C.analyze cfg in
  { protocol = P.name; diagnostics; certificate }

(* Each protocol's analysis instantiates its own engine (interners,
   visited tables) inside [run], so per-protocol jobs are independent and
   the fan-out is safe; results come back in registry order at any job
   count. *)
let run_registry ?(jobs = 1) cfg =
  Nfc_util.Pool.map ~jobs (run cfg) (Nfc_protocol.Registry.defaults ())
