module Spec = Nfc_protocol.Spec
module Explore = Nfc_mcheck.Explore
module Boundness = Nfc_mcheck.Boundness
module Iset = Set.Make (Int)

type config = {
  bounds : Explore.bounds;
  probe : Boundness.probe_bounds;
  max_probes : int;
  fault_packets : int list;
  max_probe_states : int;
  max_witnesses : int;
  complete : bool;
  cover_max_nodes : int;
  engine_domains : int;
  checkpoint : unit -> unit;
}

let default_config =
  {
    bounds =
      {
        Explore.capacity_tr = 2;
        capacity_rt = 2;
        submit_budget = 3;
        max_nodes = 15_000;
        allow_drop = true;
        por = false;
      };
    (* Tighter than {!Boundness.default_probe_bounds}: flooding protocols
       make each exhausted probe pay its full node budget, and the linter
       probes a sample, so small budgets keep registry-wide runs in
       seconds while the certificate stays sound (an exhausted probe
       yields [boundness = None], never an understated bound). *)
    probe = { Boundness.max_nodes = 1_500; max_cost = 100 };
    max_probes = 400;
    (* A negative value and a far-out-of-alphabet value: a legal non-FIFO
       channel never invents packets, but input-enabledness (Section 2.1)
       requires the automata to absorb them anyway. *)
    fault_packets = [ -1; 1_000_003 ];
    max_probe_states = 2_000;
    max_witnesses = 3;
    complete = false;
    (* The cover's node cap is a divergence backstop, not an exploration
       budget: converging protocols finish orders of magnitude below it,
       and only the hook-less flooding protocols ever hit it. *)
    cover_max_nodes = 200_000;
    engine_domains = 1;
    checkpoint = (fun () -> ());
  }

let take n l =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go n [] l

module Make (P : Spec.S) = struct
  module Sset = Set.Make (struct
    type t = P.sender

    let compare = P.compare_sender
  end)

  module Rset = Set.Make (struct
    type t = P.receiver

    let compare = P.compare_receiver
  end)

  let spf = Printf.sprintf

  (* Closure of one station's state space under its inputs and poll, used
     by Q1: when finite within [cap], states in the closure the composed
     system never reaches are dead automaton code (under these bounds). *)
  let closure ~cap ~init ~mem ~add ~empty ~moves =
    try
      let seen = ref (add init empty) in
      let n = ref 1 in
      let queue = Queue.create () in
      Queue.push init queue;
      let complete = ref true in
      while not (Queue.is_empty queue) do
        let s = Queue.pop queue in
        List.iter
          (fun s' ->
            if not (mem s' !seen) then
              if !n >= cap then complete := false
              else begin
                seen := add s' !seen;
                incr n;
                Queue.push s' queue
              end)
          (moves s)
      done;
      if !complete then Some !seen else None
    with _ -> None

  let analyze cfg =
    let diags = ref [] in
    let emit ~rule ~severity ?witness message =
      diags :=
        Diagnostic.make ~rule ~severity ~protocol:P.name ?witness message :: !diags
    in
    (* ------------------------------------------------ instrumentation *)
    let partial = ref [] in
    let n_partial = ref 0 in
    let record op packet state_text e =
      incr n_partial;
      if List.length !partial < 64 then
        partial := (op, packet, state_text, Printexc.to_string e) :: !partial
    in
    let module G = struct
      include P

      let on_ack s p =
        try P.on_ack s p
        with e ->
          record "on_ack" (Some p) (Format.asprintf "%a" P.pp_sender s) e;
          s

      let on_data r p =
        try P.on_data r p
        with e ->
          record "on_data" (Some p) (Format.asprintf "%a" P.pp_receiver r) e;
          r
    end in
    let module B = Boundness.Make (G) in
    let module E = B.E in
    let reach =
      E.reachable_set ~domains:cfg.engine_domains ~checkpoint:cfg.checkpoint cfg.bounds
    in
    (* --------------------------- alphabet census and state collection *)
    let atr = ref Iset.empty in
    let art = ref Iset.empty in
    let sender_by_id : (int, P.sender) Hashtbl.t = Hashtbl.create 64 in
    let receiver_by_id : (int, P.receiver) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (c : E.config) ->
        (* Interned-id equality is comparator equality, so deduping on the
           id visits each distinct station state — and poll-probes it —
           exactly once instead of once per configuration. *)
        if not (Hashtbl.mem sender_by_id c.E.sid) then begin
          Hashtbl.add sender_by_id c.E.sid c.E.sender;
          (* Poll probes catch emissions the capacity bound suppressed. *)
          match G.sender_poll c.E.sender with
          | Some p, _ -> atr := Iset.add p !atr
          | None, _ -> ()
          | exception e ->
              record "sender_poll" None (Format.asprintf "%a" P.pp_sender c.E.sender) e
        end;
        if not (Hashtbl.mem receiver_by_id c.E.rid) then begin
          Hashtbl.add receiver_by_id c.E.rid c.E.receiver;
          match G.receiver_poll c.E.receiver with
          | Some (Spec.Rsend p), _ -> art := Iset.add p !art
          | (Some Spec.Rdeliver | None), _ -> ()
          | exception e ->
              record "receiver_poll" None
                (Format.asprintf "%a" P.pp_receiver c.E.receiver) e
        end;
        List.iter (fun (p, _) -> atr := Iset.add p !atr) (E.packets_tr c);
        List.iter (fun (p, _) -> art := Iset.add p !art) (E.packets_rt c))
      reach.E.configs;
    let senders =
      ref (Sset.of_list (Hashtbl.fold (fun _ s acc -> s :: acc) sender_by_id []))
    in
    let receivers =
      ref (Rset.of_list (Hashtbl.fold (fun _ r acc -> r :: acc) receiver_by_id []))
    in
    let k_t = Sset.cardinal !senders in
    let k_r = Rset.cardinal !receivers in
    let product = k_t * k_r in
    let alpha = Iset.union !atr !art in
    let n_alpha = Iset.cardinal alpha in
    let alpha_text =
      "{" ^ String.concat ", " (List.map string_of_int (Iset.elements alpha)) ^ "}"
    in
    (* ------------------------------------------- H1: header budget *)
    (match P.header_bound with
    | Some k when n_alpha > k ->
        emit ~rule:"H1" ~severity:Diagnostic.Error
          ~witness:("reachable alphabet " ^ alpha_text)
          (spf "declares header_bound = %d but %d distinct packets are reachable" k
             n_alpha)
    | Some k ->
        emit ~rule:"H1" ~severity:Diagnostic.Info
          (spf "header budget certified: %d distinct reachable packets within the declared %d"
             n_alpha k)
    | None when not reach.E.truncated ->
        emit ~rule:"H1" ~severity:Diagnostic.Warning
          ~witness:("reachable alphabet " ^ alpha_text)
          (spf
             "declares unbounded headers, yet the fully explored space uses a finite alphabet of %d"
             n_alpha)
    | None ->
        emit ~rule:"H1" ~severity:Diagnostic.Info
          (spf "unbounded headers declared; %d distinct packets in the truncated explored space"
             n_alpha));
    (* --------------------------------------- E1: input-enabledness *)
    let probe_pkts = Iset.elements alpha @ cfg.fault_packets in
    List.iter
      (fun s ->
        List.iter (fun p -> ignore (G.on_ack s p)) probe_pkts;
        (match G.sender_poll s with
        | _ -> ()
        | exception e ->
            record "sender_poll" None (Format.asprintf "%a" P.pp_sender s) e);
        try ignore (P.on_submit s)
        with e -> record "on_submit" None (Format.asprintf "%a" P.pp_sender s) e)
      (take cfg.max_probe_states (Sset.elements !senders));
    List.iter
      (fun r ->
        List.iter (fun p -> ignore (G.on_data r p)) probe_pkts;
        match G.receiver_poll r with
        | _ -> ()
        | exception e ->
            record "receiver_poll" None (Format.asprintf "%a" P.pp_receiver r) e)
      (take cfg.max_probe_states (Rset.elements !receivers));
    let seen_ops = Hashtbl.create 8 in
    let shown = ref 0 in
    List.iter
      (fun (op, packet, state_text, exn_text) ->
        let key = (op, packet) in
        if (not (Hashtbl.mem seen_ops key)) && !shown < cfg.max_witnesses then begin
          Hashtbl.add seen_ops key ();
          incr shown;
          let pkt_text =
            match packet with None -> "" | Some p -> spf " on packet %d" p
          in
          emit ~rule:"E1" ~severity:Diagnostic.Error
            ~witness:(spf "%s%s in state %s raised %s" op pkt_text state_text exn_text)
            (spf "%s is partial: the automaton is not input-enabled (%d failure(s) total)"
               op !n_partial)
        end)
      (List.rev !partial);
    (* ------------------------------- B1: Theorem 2.1 certificate *)
    (* The ungated reach above is reused whenever it is phantom-free (the
       registry protocols) — the gated pass then provably visits the same
       set, so boundness costs probes, not a second exploration. *)
    let breport =
      B.measure ~max_probes:cfg.max_probes ~domains:cfg.engine_domains
        ~checkpoint:cfg.checkpoint ~reach ~explore:cfg.bounds ~probe_bounds:cfg.probe ()
    in
    (match breport.Boundness.boundness with
    | Some b when b > product ->
        emit ~rule:"B1" ~severity:Diagnostic.Error
          ~witness:(spf "measured boundness %d > k_t*k_r = %d*%d = %d" b k_t k_r product)
          "measured boundness exceeds the Theorem 2.1 state-product certificate"
    | Some b ->
        emit ~rule:"B1" ~severity:Diagnostic.Info
          (spf "Theorem 2.1 certificate: boundness <= k_t*k_r = %d*%d = %d (measured %d)"
             k_t k_r product b)
    | None ->
        emit ~rule:"B1" ~severity:Diagnostic.Info
          (spf
             "Theorem 2.1 certificate: boundness <= k_t*k_r = %d (measurement inconclusive, %d probes exhausted)"
             product breport.Boundness.probes_exhausted));
    (* -------------------------- T1: impossibility consistency *)
    (* The reach's phantom scan stands in for a dedicated
       [E.search ~stop_at_phantom:true] pass: [first_phantom] is the very
       move that search stops at (same BFS generation order), and
       [phantom_in_budget] / the node count reproduce its
       [Violation] / [Node_budget] / [No_violation] trichotomy. *)
    (match P.header_bound with
    | Some k when cfg.bounds.Explore.submit_budget > k -> (
        match reach.E.first_phantom with
        | Some len when reach.E.phantom_in_budget ->
            emit ~rule:"T1" ~severity:Diagnostic.Info
              ~witness:(spf "phantom delivery after %d actions" len)
              (spf
                 "impossibility confirmed: %d headers under a %d-submit budget forces a DL1 violation (Theorems 3.1/4.1)"
                 k cfg.bounds.Explore.submit_budget)
        | _ when reach.E.reach_stats.Explore.nodes >= cfg.bounds.Explore.max_nodes -> ()
        | _ when breport.Boundness.boundness <> None ->
            emit ~rule:"T1" ~severity:Diagnostic.Warning
              (spf
                 "declares %d headers under a %d-submit budget yet measures bounded with no DL1 violation in the fully explored space — the configuration Theorems 3.1/4.1 prove impossible; widen the bounds"
                 k cfg.bounds.Explore.submit_budget)
        | _ -> ())
    | _ -> ());
    (* ----------------------- Q1: quiescence / dead configurations *)
    let dead = ref 0 in
    let dead_witness = ref None in
    List.iter
      (fun (c : E.config) ->
        if c.E.submitted > c.E.delivered then begin
          let progress =
            List.exists
              (fun (act, _) ->
                match act with
                | Some (Nfc_automata.Action.Send_msg _) -> false
                | _ -> true)
              (E.successors cfg.bounds c)
          in
          if not progress then begin
            incr dead;
            if !dead_witness = None then
              dead_witness :=
                Some
                  (Format.asprintf "sender %a, receiver %a, %d message(s) pending"
                     P.pp_sender c.E.sender P.pp_receiver c.E.receiver
                     (c.E.submitted - c.E.delivered))
          end
        end)
      reach.E.configs;
    (* Warning, not error: for bounded-header registry protocols a stuck
       configuration is the expected liveness failure mode (the
       alternating bit wedges on a stale ack — the repo's wedge tests
       prove it), exactly as the paper predicts bounded protocols must
       fail somewhere.  [--strict] escalates. *)
    if !dead > 0 then
      emit ~rule:"Q1" ~severity:Diagnostic.Warning ?witness:!dead_witness
        (spf
           "%d reachable configuration(s) stuck with a message pending: no local action enabled, nothing in transit"
           !dead);
    (* Dead automaton states: only decidable when the station's input
       closure is finite within the cap (counter-carrying protocols are
       not; the closure then returns None and the check stays silent). *)
    let ack_alpha = Iset.elements !art @ cfg.fault_packets in
    let data_alpha = Iset.elements !atr @ cfg.fault_packets in
    (match
       closure ~cap:cfg.max_probe_states ~init:P.sender_init ~mem:Sset.mem
         ~add:Sset.add ~empty:Sset.empty ~moves:(fun s ->
           (G.on_submit s :: snd (G.sender_poll s)
            :: List.map (fun p -> G.on_ack s p) ack_alpha))
     with
    | Some closed when Sset.cardinal (Sset.diff closed !senders) > 0 ->
        emit ~rule:"Q1" ~severity:Diagnostic.Info
          (spf "%d sender state(s) in the input closure are never reached by the composed system"
             (Sset.cardinal (Sset.diff closed !senders)))
    | _ -> ());
    (match
       closure ~cap:cfg.max_probe_states ~init:P.receiver_init ~mem:Rset.mem
         ~add:Rset.add ~empty:Rset.empty ~moves:(fun r ->
           (snd (G.receiver_poll r) :: List.map (fun p -> G.on_data r p) data_alpha))
     with
    | Some closed when Rset.cardinal (Rset.diff closed !receivers) > 0 ->
        emit ~rule:"Q1" ~severity:Diagnostic.Info
          (spf "%d receiver state(s) in the input closure are never reached by the composed system"
             (Rset.cardinal (Rset.diff closed !receivers)))
    | _ -> ());
    (* ----------------------------------------- S1: spec sanitizer *)
    (* Probes the spec-to-engine contract (comparator reflexivity,
       hash/comparator coherence, step purity) on the instrumented spec,
       so partiality stays E1's finding and never aborts S1. *)
    let module S = Sanitize.Make (G) in
    List.iter
      (fun (f : Sanitize.finding) ->
        emit ~rule:"S1" ~severity:Diagnostic.Error ?witness:f.Sanitize.witness
          (spf "[%s] %s" f.Sanitize.kind f.Sanitize.message))
      (S.run ~max_states:cfg.max_probe_states ~fault_packets:cfg.fault_packets ());
    (* --------------------- C1: budget-free cover tier (--complete) *)
    (* The bounded verdicts above remain THE verdicts; a converged cover
       fixpoint can only *upgrade* their strength when it corroborates
       them.  Divergence (the hook-less flooding protocols) downgrades
       explicitly; a converged cover that *disagrees* with a bounded
       verdict is itself a warning — one of the two analyses is wrong,
       and both are shipped in this repo.  Unsound saturation hooks can
       therefore never change a verdict, only mislabel its strength. *)
    let bounded = Certificate.Bounded cfg.bounds.Explore.max_nodes in
    let rule_strengths = ref [ ("H1", bounded); ("T1", bounded); ("Q1", bounded) ] in
    let set_strength rule s =
      rule_strengths := List.map (fun (r, s0) -> (r, if r = rule then s else s0)) !rule_strengths
    in
    let cover_summary = ref None in
    if cfg.complete then begin
      let module Cv = Nfc_absint.Cover.Make (G) (E) in
      let st =
        Cv.run ~max_nodes:cfg.cover_max_nodes
          ~submit_budget:cfg.bounds.Explore.submit_budget ()
      in
      cover_summary :=
        Some
          {
            Certificate.cover_converged = st.Nfc_absint.Cover.converged;
            cover_size = st.Nfc_absint.Cover.cover_size;
            cover_iterations = st.Nfc_absint.Cover.iterations;
            cover_accelerations = st.Nfc_absint.Cover.accelerations;
            cover_omega_configs = st.Nfc_absint.Cover.omega_configs;
            accel_samples = st.Nfc_absint.Cover.accel_samples;
          };
      if not st.Nfc_absint.Cover.converged then
        emit ~rule:"C1" ~severity:Diagnostic.Info
          (spf
             "cover fixpoint diverged within %d nodes (station state unbounded under ω \
              inputs, no saturation hook) — certificate stays bounded(%d)"
             cfg.cover_max_nodes cfg.bounds.Explore.max_nodes)
      else begin
        let corroborate rule agrees bounded_text cover_text =
          if agrees then set_strength rule Certificate.Complete
          else
            emit ~rule:"C1" ~severity:Diagnostic.Warning
              (spf
                 "converged cover contradicts the bounded %s verdict (bounded: %s; cover: \
                  %s) — one analysis is wrong, strength stays bounded"
                 rule bounded_text cover_text)
        in
        let cover_tr = Iset.of_list st.Nfc_absint.Cover.alphabet_tr in
        let cover_rt = Iset.of_list st.Nfc_absint.Cover.alphabet_rt in
        let alpha_set s = "{" ^ String.concat ", " (List.map string_of_int (Iset.elements s)) ^ "}" in
        corroborate "H1"
          (Iset.equal cover_tr !atr && Iset.equal cover_rt !art)
          (spf "alphabet %s / %s" (alpha_set !atr) (alpha_set !art))
          (spf "alphabet %s / %s" (alpha_set cover_tr) (alpha_set cover_rt));
        corroborate "T1"
          (st.Nfc_absint.Cover.phantom_coverable = (reach.E.first_phantom <> None))
          (if reach.E.first_phantom <> None then "phantom reachable" else "no phantom")
          (if st.Nfc_absint.Cover.phantom_coverable then "phantom coverable"
           else "phantom not coverable");
        corroborate "Q1"
          ((st.Nfc_absint.Cover.stuck_controls > 0) = (!dead > 0))
          (spf "%d stuck configuration(s)" !dead)
          (spf "%d stuck control(s)" st.Nfc_absint.Cover.stuck_controls);
        if List.for_all (fun (_, s) -> s = Certificate.Complete) !rule_strengths then
          emit ~rule:"C1" ~severity:Diagnostic.Info
            (spf
               "complete certification: cover fixpoint converged (%d element(s), %d \
                acceleration(s)) and corroborates H1/T1/Q1 for every node budget and \
                channel capacity at submit budget %d"
               st.Nfc_absint.Cover.cover_size st.Nfc_absint.Cover.accelerations
               cfg.bounds.Explore.submit_budget)
      end
    end;
    let strength =
      List.fold_left
        (fun acc (_, s) -> Certificate.weakest acc s)
        Certificate.Complete !rule_strengths
    in
    let certificate =
      {
        Certificate.protocol = P.name;
        declared_header_bound = P.header_bound;
        alphabet_tr = Iset.elements !atr;
        alphabet_rt = Iset.elements !art;
        k_t;
        k_r;
        state_product = product;
        measured_boundness = breport.Boundness.boundness;
        probes_exhausted = breport.Boundness.probes_exhausted;
        configs_explored = reach.E.reach_stats.Explore.nodes;
        truncated = reach.E.truncated;
        strength = (if cfg.complete then strength else bounded);
        rule_strengths = !rule_strengths;
        cover = !cover_summary;
        engine_domains = max 1 cfg.engine_domains;
        por = cfg.bounds.Explore.por;
        refine_rounds = None;
        stabilization = None;
      }
    in
    (List.rev !diags, certificate)
end
