(** S1 — spec sanitizer: the engine-soundness contract checks.

    Every analysis in the repo trusts three obligations a
    {!Nfc_protocol.Spec.S} implementation cannot have checked by the type
    system: comparator reflexivity, hash/comparator coherence
    (compare-equal states must hash equally, or the hash-bucketed
    interner splits one logical state into several ids — corrupting
    k_t/k_r, memo tables, and every count built on interned ids), and
    step-function purity (the memo tables replay the first result
    forever, so an impure transition silently diverges from the spec).

    [Make (P).run] probes all three over a capped joint closure of the
    two station state spaces, driven by the fault packets plus every
    emission discovered along the way.  Partiality is deliberately NOT a
    finding here — that is E1's job; callers pass the instrumented,
    totalised spec. *)

type finding = {
  kind : string;  (** e.g. ["hash-receiver"], ["on_ack-impure"] — one finding per kind *)
  message : string;
  witness : string option;
}

val pp_finding : Format.formatter -> finding -> unit

module Make (P : Nfc_protocol.Spec.S) : sig
  (** [run ~fault_packets ()] returns the contract violations found
      within a [max_states]-capped (default 500) closure per station. *)
  val run : ?max_states:int -> fault_packets:int list -> unit -> finding list
end
