(** Running the verifier over one protocol or the whole registry. *)

type result = {
  protocol : string;
  diagnostics : Diagnostic.t list;
  certificate : Certificate.t;
}

val run : Checks.config -> Nfc_protocol.Spec.t -> result

(** Every protocol in {!Nfc_protocol.Registry}, in registry order. *)
val run_registry : Checks.config -> result list
