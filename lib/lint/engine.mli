(** Running the verifier over one protocol or the whole registry. *)

type result = {
  protocol : string;
  diagnostics : Diagnostic.t list;
  certificate : Certificate.t;
}

val run : Checks.config -> Nfc_protocol.Spec.t -> result

(** Every protocol in {!Nfc_protocol.Registry}, in registry order.
    [jobs] (default 1) fans the per-protocol analyses out over that many
    domains ([0] = one per core); results are identical — and identically
    ordered — at any job count. *)
val run_registry : ?jobs:int -> Checks.config -> result list
