(** The per-protocol static analysis.

    [Make (P).analyze cfg] runs every rule of {!Rules} against [P] over a
    bounded exploration of the composed (sender x receiver x channel)
    system and returns the diagnostics plus the protocol's
    {!Certificate.t}.

    The exploration drives an {e instrumented, totalised} copy of [P]:
    exceptions escaping [on_ack]/[on_data] do not abort the analysis but
    become E1 findings with the reachable state and offending packet as
    witness (the move is treated as a self-loop).  On top of the
    trajectory coverage, E1 systematically probes every distinct reachable
    station state against the observed packet alphabet extended with
    [fault_packets] (out-of-alphabet values a non-FIFO channel could never
    produce but an input-enabled automaton must still absorb). *)

type config = {
  bounds : Nfc_mcheck.Explore.bounds;  (** exploration bounds, all rules *)
  probe : Nfc_mcheck.Boundness.probe_bounds;  (** B1 boundness measurement *)
  max_probes : int;  (** cap on semi-valid configs probed for B1 *)
  fault_packets : int list;  (** extra out-of-alphabet packets for E1 *)
  max_probe_states : int;  (** cap on states probed / closed over *)
  max_witnesses : int;  (** cap on witnesses per rule *)
  complete : bool;
      (** run the budget-free cover tier ({!Nfc_absint.Cover}) and
          upgrade corroborated H1/T1/Q1 verdicts to
          {!Certificate.Complete} strength *)
  cover_max_nodes : int;  (** divergence backstop for the cover fixpoint *)
  engine_domains : int;
      (** intra-search domain count for the exploration (1 = sequential);
          diagnostics and certificates are byte-identical at any count *)
  checkpoint : unit -> unit;
      (** cooperative cancellation hook, called periodically from the
          exploration (every level in parallel mode, every ~2k dequeues
          sequentially); may raise to abort the analysis *)
}

val default_config : config

module Make (P : Nfc_protocol.Spec.S) : sig
  val analyze : config -> Diagnostic.t list * Certificate.t
end
