(** The self-stabilization tier of the verifier (rules SS1/SS2).

    Runs {!Nfc_stab.Converge.analyze} at its own bounds — the corrupted
    product is exponential in channel capacity, so the tier uses the
    capacity the protocol is designed to tolerate, not the lint
    exploration bounds — and folds the verdicts into a lint result. *)

(** The per-verdict severity mapping: pass → Info, unknown → Warning,
    fail → Error. *)
val severity_of : Nfc_stab.Converge.verdict -> Diagnostic.severity

(** Compact certificate provenance, e.g.
    ["ss1=pass(bound=8) ss2=pass(bound=0)"]. *)
val summary : Nfc_stab.Converge.report -> string

(** The SS1 and SS2 diagnostics for a report (witnesses attached: the
    recovery trace on pass, the divergent corrupted start on fail). *)
val diagnostics : Nfc_stab.Converge.report -> Diagnostic.t list

(** Analyze [spec] ([cfg] defaults to
    {!Nfc_stab.Converge.default_cfg}) and merge the tier into the
    result: SS1/SS2 diagnostics appended, [stabilization] certificate
    provenance set. *)
val apply :
  ?domains:int ->
  ?cfg:Nfc_stab.Converge.cfg ->
  Nfc_protocol.Spec.t ->
  Engine.result ->
  Engine.result
