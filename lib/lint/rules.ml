type meta = { id : string; title : string; anchor : string; summary : string }

let all =
  [
    {
      id = "H1";
      title = "header-budget certification";
      anchor = "Section 2.3 (headers = |P|)";
      summary =
        "the reachable packet alphabet must fit the declared header_bound";
    };
    {
      id = "E1";
      title = "input-enabledness";
      anchor = "Section 2.1 (I/O automata are input-enabled)";
      summary =
        "on_ack/on_data/polls must be total over reachable states x packets";
    };
    {
      id = "B1";
      title = "Theorem 2.1 boundness certificate";
      anchor = "Theorem 2.1 (boundness <= k_t * k_r)";
      summary =
        "measured boundness must not exceed the reachable state product";
    };
    {
      id = "T1";
      title = "impossibility consistency";
      anchor = "Theorems 3.1 / 4.1 (n headers for n messages)";
      summary =
        "fewer headers than submitted messages cannot be bounded and safe";
    };
    {
      id = "Q1";
      title = "quiescence / dead configurations";
      anchor = "DL3 liveness (Section 2.2)";
      summary =
        "no reachable configuration may be stuck with a message pending";
    };
    {
      id = "S1";
      title = "spec sanitizer";
      anchor = "Section 2.1 (the spec-to-engine contract)";
      summary =
        "comparators reflexive, hash hooks coherent, step functions pure";
    };
    {
      id = "C1";
      title = "cover convergence";
      anchor = "Karp-Miller coverability over the lossy channel (DESIGN 5.8)";
      summary =
        "whether the budget-free cover fixpoint converged and corroborated H1/T1/Q1";
    };
    {
      id = "A1";
      title = "static certification tier";
      anchor = "spec-level abstract interpretation (DESIGN 5.12)";
      summary =
        "whether the spec-level fixpoint discharged H1/B1/E1 symbolically, with zero exploration";
    };
    {
      id = "P1";
      title = "PDL checker diagnostic";
      anchor = "protocol definition language static checks (DESIGN 5.11)";
      summary =
        "a located parse/type/range/exhaustiveness finding in a .nfc spec file";
    };
    {
      id = "SS1";
      title = "self-stabilization convergence";
      anchor = "legitimate-set closure + corrupted-start convergence (DESIGN 5.15)";
      summary =
        "every corrupted start must reach the closed legitimate set, with the \
         max-distance witness trace";
    };
    {
      id = "SS2";
      title = "duplication fault-resilience";
      anchor = "stabilization under duplicating channels, after arXiv 1011.3632 (DESIGN 5.15)";
      summary =
        "duplicate-delivery exits from the legitimate set must re-converge autonomously";
    };
    {
      id = "R1";
      title = "refinement refutation";
      anchor = "CEGAR over the spec-level fixpoint (DESIGN 5.14)";
      summary =
        "a candidate slot invariant concretely refuted during abstraction \
         refinement, with a located witness trace";
    };
  ]

let find id = List.find_opt (fun m -> m.id = id) all
let doc = String.concat " | " (List.map (fun m -> m.id) all)
