(* SARIF 2.1.0 rendering of a lint run — one run, one result per
   diagnostic, protocols as logical locations (there are no files to
   anchor to: the analysis target is a protocol module).  Kept to the
   minimal schema subset GitHub code scanning and the generic SARIF
   viewers accept; the JSONL report is unchanged and remains the
   machine-readable certificate channel. *)

module Json = Nfc_util.Json

let level_of = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Info -> "note"

let rule_to_json (m : Rules.meta) =
  Json.Obj
    [
      ("id", Json.String m.Rules.id);
      ("name", Json.String m.Rules.title);
      ("shortDescription", Json.Obj [ ("text", Json.String m.Rules.summary) ]);
      ("fullDescription", Json.Obj [ ("text", Json.String m.Rules.anchor) ]);
    ]

let result_to_json (protocol : string) (d : Diagnostic.t) =
  let text =
    match d.Diagnostic.witness with
    | Some w -> d.Diagnostic.message ^ " (witness: " ^ w ^ ")"
    | None -> d.Diagnostic.message
  in
  Json.Obj
    [
      ("ruleId", Json.String d.Diagnostic.rule);
      ("level", Json.String (level_of d.Diagnostic.severity));
      ("message", Json.Obj [ ("text", Json.String text) ]);
      ( "locations",
        Json.List
          [
            Json.Obj
              [
                ( "logicalLocations",
                  Json.List
                    [
                      Json.Obj
                        [
                          ("name", Json.String protocol);
                          ("kind", Json.String "module");
                        ];
                    ] );
              ];
          ] );
    ]

let rules_to_json () = Json.List (List.map rule_to_json Rules.all)

let envelope ~name results =
  Json.Obj
    [
      ("version", Json.String "2.1.0");
      ("$schema", Json.String "https://json.schemastore.org/sarif-2.1.0.json");
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.String name);
                            ("version", Json.String "1.0.0");
                            ( "informationUri",
                              Json.String
                                "https://dl.acm.org/doi/10.1145/72981.72986" );
                            ("rules", rules_to_json ());
                          ] );
                    ] );
                ("results", Json.List results);
              ];
          ] );
    ]

let of_results (results : Engine.result list) =
  envelope ~name:"nfc lint"
    (List.concat_map
       (fun (r : Engine.result) ->
         List.map (result_to_json r.Engine.protocol) r.Engine.diagnostics)
       results)

let to_string results = Json.to_string (of_results results)
