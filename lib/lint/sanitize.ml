(* S1 — spec sanitizer.  The engines' soundness rests on contract
   obligations the type system cannot see: comparators must be
   reflexive, hash hooks must be coherent with their comparator
   (compare-equal states must hash equally, or the hash-bucketed interner
   splits one logical state into several ids and every k_t/k_r count and
   memo table built on ids is silently wrong), and transition functions
   must be pure (the memo tables replay the first result forever).  This
   module probes all three over a small joint closure of the two station
   state spaces, before any engine result is trusted. *)

module Spec = Nfc_protocol.Spec

type finding = { kind : string; message : string; witness : string option }

let pp_finding ppf f =
  Format.fprintf ppf "%s: %s%s" f.kind f.message
    (match f.witness with None -> "" | Some w -> " [" ^ w ^ "]")

module Make (P : Spec.S) = struct
  module Smap = Map.Make (struct
    type t = P.sender

    let compare = P.compare_sender
  end)

  module Rmap = Map.Make (struct
    type t = P.receiver

    let compare = P.compare_receiver
  end)

  let spf = Printf.sprintf

  let run ?(max_states = 500) ~fault_packets () =
    let findings = ref [] in
    let seen_kinds = Hashtbl.create 8 in
    (* One finding per defect kind: a broken comparator fires on nearly
       every state, and the first witness is the useful one. *)
    let emit kind ?witness message =
      if not (Hashtbl.mem seen_kinds kind) then begin
        Hashtbl.add seen_kinds kind ();
        findings := { kind; message; witness } :: !findings
      end
    in
    (* The input alphabet for the closure: the fault packets plus every
       emission discovered along the way (both directions — an
       input-enabled automaton must absorb anything, so over-feeding is
       harmless and keeps the two closures from needing a fixpoint). *)
    let alphabet = ref fault_packets in
    let note_packet p = if not (List.mem p !alphabet) then alphabet := p :: !alphabet in
    (* Guarded calls: partiality is E1's finding, not S1's (the caller
       passes the instrumented, totalised spec anyway). *)
    let guard f = try Some (f ()) with _ -> None in
    let pure_pair kind cmp show a b =
      match (a, b) with
      | Some x, Some y ->
          if cmp x y <> 0 then
            emit (kind ^ "-impure")
              ~witness:(spf "first %s, second %s" (show x) (show y))
              (spf "%s returned different states for the same input (impure step function)"
                 kind);
          Some x
      | _ -> None
    in
    let show_s s = Format.asprintf "%a" P.pp_sender s in
    let show_r r = Format.asprintf "%a" P.pp_receiver r in
    (* --------------------------------------------------- sender closure *)
    let smap = ref Smap.empty in
    let n_s = ref 0 in
    let squeue = Queue.create () in
    let visit_sender s =
      if P.compare_sender s s <> 0 then
        emit "comparator-sender" ~witness:(show_s s)
          "compare_sender is not reflexive (compare s s <> 0)";
      match Smap.find_opt s !smap with
      | Some (rep, h0) ->
          (* A compare-equal state was already interned: the exact spot a
             hash-bucketed interner would need [hash s = h0]. *)
          (match (P.hash_sender, h0) with
          | Some h, Some h0 when h s <> h0 ->
              emit "hash-sender"
                ~witness:
                  (spf "states %s and %s compare equal but hash %d <> %d" (show_s rep)
                     (show_s s) h0 (h s))
                "hash_sender is incoherent with compare_sender: compare-equal states hash \
                 differently, so the interner splits one logical state into several"
          | _ -> ())
      | None ->
          if !n_s < max_states then begin
            incr n_s;
            smap := Smap.add s (s, Option.map (fun h -> h s) P.hash_sender) !smap;
            Queue.push s squeue
          end
    in
    let expand_sender s =
      (match
         pure_pair "on_submit" P.compare_sender show_s
           (guard (fun () -> P.on_submit s))
           (guard (fun () -> P.on_submit s))
       with
      | Some s' -> visit_sender s'
      | None -> ());
      (match
         (guard (fun () -> P.sender_poll s), guard (fun () -> P.sender_poll s))
       with
      | Some (e1, s1), Some (e2, s2) ->
          if e1 <> e2 || P.compare_sender s1 s2 <> 0 then
            emit "sender_poll-impure"
              ~witness:(spf "state %s" (show_s s))
              "sender_poll returned different (emission, state) pairs for the same state \
               (impure step function)";
          (match e1 with Some p -> note_packet p | None -> ());
          visit_sender s1
      | _ -> ());
      List.iter
        (fun p ->
          match
            pure_pair "on_ack" P.compare_sender show_s
              (guard (fun () -> P.on_ack s p))
              (guard (fun () -> P.on_ack s p))
          with
          | Some s' -> visit_sender s'
          | None -> ())
        !alphabet
    in
    (* ------------------------------------------------- receiver closure *)
    let rmap = ref Rmap.empty in
    let n_r = ref 0 in
    let rqueue = Queue.create () in
    let visit_receiver r =
      if P.compare_receiver r r <> 0 then
        emit "comparator-receiver" ~witness:(show_r r)
          "compare_receiver is not reflexive (compare r r <> 0)";
      match Rmap.find_opt r !rmap with
      | Some (rep, h0) ->
          (match (P.hash_receiver, h0) with
          | Some h, Some h0 when h r <> h0 ->
              emit "hash-receiver"
                ~witness:
                  (spf "states %s and %s compare equal but hash %d <> %d" (show_r rep)
                     (show_r r) h0 (h r))
                "hash_receiver is incoherent with compare_receiver: compare-equal states \
                 hash differently, so the interner splits one logical state into several"
          | _ -> ())
      | None ->
          if !n_r < max_states then begin
            incr n_r;
            rmap := Rmap.add r (r, Option.map (fun h -> h r) P.hash_receiver) !rmap;
            Queue.push r rqueue
          end
    in
    let expand_receiver r =
      (match
         (guard (fun () -> P.receiver_poll r), guard (fun () -> P.receiver_poll r))
       with
      | Some (e1, r1), Some (e2, r2) ->
          if e1 <> e2 || P.compare_receiver r1 r2 <> 0 then
            emit "receiver_poll-impure"
              ~witness:(spf "state %s" (show_r r))
              "receiver_poll returned different (emission, state) pairs for the same \
               state (impure step function)";
          (match e1 with Some (Spec.Rsend p) -> note_packet p | _ -> ());
          visit_receiver r1
      | _ -> ());
      List.iter
        (fun p ->
          match
            pure_pair "on_data" P.compare_receiver show_r
              (guard (fun () -> P.on_data r p))
              (guard (fun () -> P.on_data r p))
          with
          | Some r' -> visit_receiver r'
          | None -> ())
        !alphabet
    in
    visit_sender P.sender_init;
    visit_receiver P.receiver_init;
    (* Alternate so sender emissions reach the receiver probes (and vice
       versa) within one pass over the shared alphabet. *)
    while not (Queue.is_empty squeue && Queue.is_empty rqueue) do
      if not (Queue.is_empty squeue) then expand_sender (Queue.pop squeue);
      if not (Queue.is_empty rqueue) then expand_receiver (Queue.pop rqueue)
    done;
    List.rev !findings
end
