(** The self-stabilization tier of the verifier: run {!Nfc_stab.Converge}
    and fold its SS1/SS2 verdicts into a lint result as diagnostics plus
    [stabilization] certificate provenance.

    The tier runs at its own bounds ({!Nfc_stab.Converge.default_cfg}, or
    the caller's [cfg]) rather than the lint exploration bounds: the
    corrupted product is exponential in channel capacity, and the
    stabilization claim is relative to the capacity the protocol was
    designed to tolerate, not to whatever budget the linter explores
    reachability under. *)

module Converge = Nfc_stab.Converge

let severity_of = function
  | Converge.Pass -> Diagnostic.Info
  | Converge.Unknown -> Diagnostic.Warning
  | Converge.Fail -> Diagnostic.Error

(* "ss1=pass(bound=8) ss2=pass(bound=0)" — the certificate provenance
   string; bounds only appear on passes, where they are certified. *)
let summary (r : Converge.report) =
  let part rule verdict bound =
    match (verdict, bound) with
    | Converge.Pass, Some b -> Printf.sprintf "%s=pass(bound=%d)" rule b
    | v, _ -> Printf.sprintf "%s=%s" rule (Converge.verdict_to_string v)
  in
  part "ss1" r.Converge.ss1 (Converge.convergence_bound r)
  ^ " "
  ^ part "ss2" r.Converge.ss2 (Converge.ss2_bound r)

let diagnostics (r : Converge.report) =
  let protocol = r.Converge.protocol in
  let ss1_witness =
    match (r.Converge.ss1, r.Converge.ss1_convergence) with
    | Converge.Pass, Some cv ->
        Option.map
          (fun start -> String.concat " -> " (start :: cv.Converge.witness))
          cv.Converge.witness_start
    | _, Some cv -> cv.Converge.divergent_start
    | _, None -> None
  in
  let ss2_witness =
    match r.Converge.ss2_convergence with
    | Some cv -> (
        match r.Converge.ss2 with
        | Converge.Pass -> cv.Converge.witness_start
        | _ -> cv.Converge.divergent_start)
    | None -> None
  in
  [
    Diagnostic.make ~rule:"SS1" ~severity:(severity_of r.Converge.ss1) ~protocol
      ?witness:ss1_witness r.Converge.ss1_reason;
    Diagnostic.make ~rule:"SS2" ~severity:(severity_of r.Converge.ss2) ~protocol
      ?witness:ss2_witness r.Converge.ss2_reason;
  ]

(** Analyze [spec] and merge the tier into [result] (diagnostics
    appended, [stabilization] provenance set). *)
let apply ?domains ?(cfg = Converge.default_cfg) spec (result : Engine.result) =
  let r = Converge.analyze ?domains spec cfg in
  {
    result with
    Engine.diagnostics = result.Engine.diagnostics @ diagnostics r;
    certificate = { result.Engine.certificate with Certificate.stabilization = Some (summary r) };
  }
