module Json = Nfc_util.Json

type t = {
  protocol : string;
  declared_header_bound : int option;
  alphabet_tr : int list;
  alphabet_rt : int list;
  k_t : int;
  k_r : int;
  state_product : int;
  measured_boundness : int option;
  probes_exhausted : int;
  configs_explored : int;
  truncated : bool;
}

let alphabet_size c =
  let module Iset = Set.Make (Int) in
  Iset.cardinal (Iset.of_list (c.alphabet_tr @ c.alphabet_rt))

let pp ppf c =
  Format.fprintf ppf
    "@[<v>%s: |P|=%d (declared %s); k_t=%d k_r=%d => boundness <= %d;@ measured boundness %s \
     over %d configs%s@]"
    c.protocol (alphabet_size c)
    (match c.declared_header_bound with
    | Some k -> string_of_int k
    | None -> "unbounded")
    c.k_t c.k_r c.state_product
    (match c.measured_boundness with
    | Some b -> string_of_int b
    | None -> "unbounded?")
    c.configs_explored
    (if c.truncated then " (truncated)" else "")

let to_json c =
  Json.Obj
    [
      ("protocol", Json.String c.protocol);
      ("declared_header_bound", Json.opt (fun k -> Json.Int k) c.declared_header_bound);
      ("alphabet_tr", Json.List (List.map (fun p -> Json.Int p) c.alphabet_tr));
      ("alphabet_rt", Json.List (List.map (fun p -> Json.Int p) c.alphabet_rt));
      ("alphabet_size", Json.Int (alphabet_size c));
      ("k_t", Json.Int c.k_t);
      ("k_r", Json.Int c.k_r);
      ("state_product", Json.Int c.state_product);
      ("measured_boundness", Json.opt (fun b -> Json.Int b) c.measured_boundness);
      ("probes_exhausted", Json.Int c.probes_exhausted);
      ("configs_explored", Json.Int c.configs_explored);
      ("truncated", Json.Bool c.truncated);
    ]
