module Json = Nfc_util.Json

type strength = Bounded of int | Complete | Static

type cover_summary = {
  cover_converged : bool;
  cover_size : int;
  cover_iterations : int;
  cover_accelerations : int;
  cover_omega_configs : int;
  accel_samples : string list;
}

type t = {
  protocol : string;
  declared_header_bound : int option;
  alphabet_tr : int list;
  alphabet_rt : int list;
  k_t : int;
  k_r : int;
  state_product : int;
  measured_boundness : int option;
  probes_exhausted : int;
  configs_explored : int;
  truncated : bool;
  strength : strength;
  rule_strengths : (string * strength) list;
  cover : cover_summary option;
  engine_domains : int;
  por : bool;
  refine_rounds : int option;
      (* CEGAR provenance: how many abstraction-refinement rounds the
         static tier ran before these strengths were assigned.  [None]
         when no refinement was requested, [Some 0] when requested but
         the one-shot fixpoint already sufficed. *)
  stabilization : string option;
      (* Self-stabilization provenance ([Nfc_stab] via the SS1/SS2
         tier): a compact "ss1=pass(bound=8) ss2=pass(bound=0)" summary
         of the convergence verdicts the diagnostics were drawn from.
         [None] when the stabilization tier was not requested. *)
}

let strength_to_string = function
  | Static -> "static"
  | Complete -> "complete"
  | Bounded n -> Printf.sprintf "bounded(%d)" n

(* Static sits above Complete: a spec-level proof holds for every node
   budget, channel capacity AND submit budget, where Complete is still
   relative to the certificate's submission budget. *)
let weakest a b =
  match (a, b) with
  | Static, s | s, Static -> s
  | Complete, s | s, Complete -> s
  | Bounded m, Bounded n -> Bounded (min m n)

let alphabet_size c =
  let module Iset = Set.Make (Int) in
  Iset.cardinal (Iset.of_list (c.alphabet_tr @ c.alphabet_rt))

let pp ppf c =
  Format.fprintf ppf
    "@[<v>%s: |P|=%d (declared %s); k_t=%d k_r=%d => boundness <= %d;@ measured boundness %s \
     over %d configs%s;@ strength %s%s@]"
    c.protocol (alphabet_size c)
    (match c.declared_header_bound with
    | Some k -> string_of_int k
    | None -> "unbounded")
    c.k_t c.k_r c.state_product
    (match c.measured_boundness with
    | Some b -> string_of_int b
    | None -> "unbounded?")
    c.configs_explored
    (if c.truncated then " (truncated)" else "")
    (strength_to_string c.strength)
    (match c.cover with
    | None -> ""
    | Some cv ->
        Printf.sprintf " (cover %s: %d element(s), %d ω, %d acceleration(s))"
          (if cv.cover_converged then "converged" else "diverged")
          cv.cover_size cv.cover_omega_configs cv.cover_accelerations)

let cover_to_json cv =
  Json.Obj
    [
      ("converged", Json.Bool cv.cover_converged);
      ("size", Json.Int cv.cover_size);
      ("iterations", Json.Int cv.cover_iterations);
      ("accelerations", Json.Int cv.cover_accelerations);
      ("omega_configs", Json.Int cv.cover_omega_configs);
      ("accel_samples", Json.List (List.map (fun s -> Json.String s) cv.accel_samples));
    ]

let to_json c =
  Json.Obj
    [
      ("protocol", Json.String c.protocol);
      ("declared_header_bound", Json.opt (fun k -> Json.Int k) c.declared_header_bound);
      ("alphabet_tr", Json.List (List.map (fun p -> Json.Int p) c.alphabet_tr));
      ("alphabet_rt", Json.List (List.map (fun p -> Json.Int p) c.alphabet_rt));
      ("alphabet_size", Json.Int (alphabet_size c));
      ("k_t", Json.Int c.k_t);
      ("k_r", Json.Int c.k_r);
      ("state_product", Json.Int c.state_product);
      ("measured_boundness", Json.opt (fun b -> Json.Int b) c.measured_boundness);
      ("probes_exhausted", Json.Int c.probes_exhausted);
      ("configs_explored", Json.Int c.configs_explored);
      ("truncated", Json.Bool c.truncated);
      (* Every record carries its strength: "static" (spec-level proof,
         zero exploration), "complete" (cover fixpoint corroborated) or
         "bounded" with the node budget the verdicts are relative to. *)
      ( "strength",
        Json.String
          (match c.strength with
          | Static -> "static"
          | Complete -> "complete"
          | Bounded _ -> "bounded") );
      ( "budget",
        match c.strength with Static | Complete -> Json.Null | Bounded n -> Json.Int n );
      ( "rule_strengths",
        Json.Obj
          (List.map
             (fun (rule, s) ->
               ( rule,
                 Json.String
                   (match s with
                   | Static -> "static"
                   | Complete -> "complete"
                   | Bounded _ -> "bounded") ))
             c.rule_strengths) );
      ("cover", Json.opt cover_to_json c.cover);
      (* Engine provenance: results are domain-count-invariant and POR
         preserves the certified verdicts, but records say how they were
         produced so differential gates can assert the invariance. *)
      ("engine_domains", Json.Int c.engine_domains);
      ("por", Json.Bool c.por);
      ("refine_rounds", Json.opt (fun n -> Json.Int n) c.refine_rounds);
      ("stabilization", Json.opt (fun s -> Json.String s) c.stabilization);
    ]
