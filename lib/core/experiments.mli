(** Experiment drivers: one per paper object (see DESIGN.md §4).

    Every driver prints an aligned table (predicted column next to the
    measured one) and returns the structured rows so tests can assert the
    shapes.  All are deterministic given [seed].

    [quick] trades coverage for speed (used by tests and the bench
    harness's smoke mode); the defaults regenerate the full tables. *)

(** E-F1 — the architecture of Figure 1, rendered. *)
val figure_1 : unit -> string

type t21_row = {
  protocol : string;
  k_t : int;
  k_r : int;
  product : int;
  boundness : int option;
      (** [None] when some reachable semi-valid configuration has no valid
          extension at all — the protocol already wedged itself, which only
          unsafe-on-non-FIFO protocols (alternating bit with a large enough
          exploration) do.  Theorem 2.1 presupposes a correct protocol, so
          such rows are reported as n/a rather than as counterexamples. *)
  within_bound : bool;  (** measured boundness <= k_t * k_r (true when n/a) *)
}

(** E-T21 — Theorem 2.1: measured boundness vs the k_t*k_r state product,
    for the finite-control protocols. *)
val t21 : ?quick:bool -> unit -> t21_row list

type t31_pyramid_row = {
  k : int;
  i : int;
  copies : int;  (** (k-i)! f(k+1)^{k+1-i}, saturating *)
}

(** E-T31a — the proof's bookkeeping: in-transit copies the adversary
    maintains at stage i against a k-header, f-bounded protocol. *)
val t31_pyramid : ?f:(int -> int) -> ks:int list -> unit -> t31_pyramid_row list

type t31_row = {
  protocol : string;
  headers : string;  (** "4" or "unbounded" *)
  outcome : string;  (** violated at epoch e / survived / blocked *)
  headers_used : int;  (** distinct forward packets actually sent *)
  messages : int;  (** messages delivered when the attack ended *)
  violated : bool;
}

(** E-T31b — the executable adversary of Theorem 3.1 against every
    protocol. *)
val t31 : ?quick:bool -> ?seed:int -> unit -> t31_row list

(** E-T31c — the staged construction of the Claim
    ({!Adversary_m.attack_staged}): per protocol, how the tracked packet
    set P_i grows and where it tops out. *)
val t31_staged : ?quick:bool -> unit -> Adversary_m.staged_outcome list

type t41_row = {
  protocol : string;
  l : int;  (** backlog actually built *)
  bound : int;  (** floor(l/k) *)
  cost : int option;  (** measured max packets to deliver under the regime *)
  frozen : bool;
}

(** E-T41 — Theorem 4.1: delivery cost vs backlog, frozen and relaxed
    regimes, for Flood / Afek3 / Stenning. *)
val t41 : ?quick:bool -> unit -> t41_row list

type t51_growth_row = {
  q : float;
  measured_rate : float;
  lower : float;  (** 1 + q - eps_n *)
  ideal : float;  (** 1 + q *)
  total_sent_median : float;
}

(** E-T51a — the dominant-packet recurrence of the proof, per q. *)
val t51_growth : ?quick:bool -> ?seed:int -> qs:float list -> unit -> t51_growth_row list

type t51_sweep_row = {
  protocol : string;
  q : float;
  n : int;
  packets_median : float;
  completion : float;
}

(** E-T51b — end-to-end packet counts over the probabilistic channel, with
    the fitted per-message growth factor per protocol. *)
val t51_sweep :
  ?quick:bool ->
  ?seed:int ->
  q:float ->
  unit ->
  t51_sweep_row list * (string * Nfc_util.Fit.growth) list

type lmf_row = {
  base : int;  (** constant flood threshold = the protocol's boundness knob *)
  boundness_proxy : int;  (** 2 * base: data + ack threshold per epoch *)
  messages_survived : int;  (** deliveries before the adversary's phantom *)
  predicted_ceiling : int;  (** k * H per [LMF88] *)
}

(** E-LMF — the predecessor bound the paper strengthens ([LMF88]): against
    constant-threshold (hence constant-bounded) Flood variants, a
    one-copy-per-epoch adversary produces a phantom after Theta(k) messages
    with the fixed 4-header alphabet — messages grow linearly with the
    boundness, never past k*H. *)
val lmf : ?quick:bool -> unit -> lmf_row list

type t51_safety_row = { ratio : float; violation_rate : float }

(** E-T51c — Flood's threshold-ratio safety waterline at a given q. *)
val t51_safety : ?quick:bool -> ?seed:int -> q:float -> unit -> t51_safety_row list

type ss_row = {
  ss_protocol : string;
  legit_configs : int;  (** size of the legitimate (reachable) set *)
  legit_closed : bool;  (** the legitimate sweep completed within budget *)
  corrupted_starts : int;  (** transient-fault adversary's product size *)
  ss1 : string;  (** corrupted-start convergence verdict *)
  ss1_bound : int option;  (** certified worst-case recovery distance *)
  ss2 : string;  (** duplication fault-resilience verdict *)
}

(** E-SS — the transient-fault adversary ({!Nfc_stab.Converge}): corrupt
    every station state and channel multiset, then demand autonomous
    convergence back to the legitimate set (SS1) and re-convergence from
    duplication exits (SS2).  The stabilizing ARQ passes with a finite
    bound at its design capacity; the classical protocols fail from
    explicit divergent corruptions. *)
val ss : ?quick:bool -> unit -> ss_row list

(** E-TRANS lives in {!Nfc_transport.Experiment} (the transport library
    sits above this one); [run_all] includes it.

    Run everything and print all tables (the paper's full evaluation).
    Returns the number of experiment groups executed. *)
val run_all : ?quick:bool -> ?seed:int -> unit -> int
