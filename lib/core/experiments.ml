module Table = Nfc_util.Table
module Policy = Nfc_channel.Policy

let figure_1 () = Nfc_automata.Composition.figure_1 ()

(* ------------------------------------------------------------- E-T21 *)

type t21_row = {
  protocol : string;
  k_t : int;
  k_r : int;
  product : int;
  boundness : int option;
  within_bound : bool;
}

let t21 ?(quick = false) () =
  let explore =
    if quick then
      { Nfc_mcheck.Explore.capacity_tr = 2; capacity_rt = 2; submit_budget = 2;
        max_nodes = 10_000; allow_drop = true; por = false }
    else
      { Nfc_mcheck.Explore.capacity_tr = 2; capacity_rt = 2; submit_budget = 3;
        max_nodes = 60_000; allow_drop = true; por = false }
  in
  let probe = Nfc_mcheck.Boundness.default_probe_bounds in
  let protocols =
    [
      Nfc_protocol.Stop_and_wait.make ~timeout:2 ();
      Nfc_protocol.Alternating_bit.make ~timeout:2 ();
      Nfc_protocol.Stenning.make ~timeout:2 ();
    ]
  in
  let rows =
    List.map
      (fun proto ->
        let r = Nfc_mcheck.Boundness.measure proto ~explore ~probe in
        {
          protocol = r.Nfc_mcheck.Boundness.protocol;
          k_t = r.k_t;
          k_r = r.k_r;
          product = r.state_product;
          boundness = r.boundness;
          within_bound =
            (match r.boundness with None -> true | Some b -> b <= r.state_product);
        })
      protocols
  in
  let table =
    Table.create
      ~title:
        "E-T21  Theorem 2.1: measured boundness vs automaton state product (k_t x k_r)"
      ~columns:
        [
          ("protocol", Table.Left);
          ("k_t", Table.Right);
          ("k_r", Table.Right);
          ("k_t*k_r", Table.Right);
          ("measured boundness", Table.Right);
          ("<= product", Table.Left);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.protocol;
          Table.cell_int r.k_t;
          Table.cell_int r.k_r;
          Table.cell_int r.product;
          (match r.boundness with
          | None -> "no extension (wedged)"
          | Some b -> Table.cell_int b);
          (match r.boundness with
          | None -> "n/a: Thm 2.1 presupposes a correct protocol"
          | Some _ -> if r.within_bound then "yes" else "NO");
        ])
    rows;
  Table.print table;
  rows

(* ------------------------------------------------------------ E-T31a *)

type t31_pyramid_row = { k : int; i : int; copies : int }

let t31_pyramid ?(f = fun _ -> 2) ~ks () =
  let rows =
    List.concat_map
      (fun k -> List.init k (fun i -> { k; i; copies = Bounds.t31_copies ~k ~i ~f }))
      ks
  in
  let table =
    Table.create
      ~title:
        "E-T31a  Theorem 3.1 bookkeeping: copies (k-i)!*f(k+1)^(k+1-i) the adversary \
         holds at stage i (f = const 2; saturating arithmetic)"
      ~columns:[ ("k", Table.Right); ("i", Table.Right); ("copies in transit", Table.Right) ]
  in
  List.iter
    (fun r ->
      Table.add_row table [ Table.cell_int r.k; Table.cell_int r.i; Table.cell_int r.copies ])
    rows;
  Table.print table;
  rows

(* ------------------------------------------------------------ E-T31b *)

type t31_row = {
  protocol : string;
  headers : string;
  outcome : string;
  headers_used : int;
  messages : int;
  violated : bool;
}

let t31 ?(quick = false) ?seed:_ () =
  let max_messages = if quick then 6 else 10 in
  let probe_nodes = if quick then 100_000 else 400_000 in
  let protocols =
    [
      Nfc_protocol.Stop_and_wait.make ();
      Nfc_protocol.Alternating_bit.make ();
      Nfc_protocol.Flood.make ~base:1 ~ratio:2.0 ();
      Nfc_protocol.Flood.make ~base:2 ~ratio:1.5 ();
      Nfc_protocol.Afek3.make ();
      Nfc_protocol.Stenning.make ();
    ]
  in
  let rows =
    List.map
      (fun proto ->
        let name = Nfc_protocol.Spec.name proto in
        let headers =
          match Nfc_protocol.Spec.header_bound proto with
          | Some k -> string_of_int k
          | None -> "unbounded"
        in
        match Adversary_m.attack ~max_messages ~probe_nodes proto with
        | Adversary_m.Violation v ->
            {
              protocol = name;
              headers;
              outcome = Printf.sprintf "DL1 violated after %d messages" v.at_epoch;
              headers_used = v.headers_tr;
              messages = v.at_epoch;
              violated = true;
            }
        | Adversary_m.Survived s ->
            {
              protocol = name;
              headers;
              outcome = "survived (headers grew with n)";
              headers_used = s.headers_tr;
              messages = s.messages;
              violated = false;
            }
        | Adversary_m.Stuck s ->
            {
              protocol = name;
              headers;
              outcome = Printf.sprintf "blocked at epoch %d (refused progress)" s.epoch;
              headers_used = 0;
              messages = s.epoch;
              violated = false;
            })
      protocols
  in
  let table =
    Table.create
      ~title:
        "E-T31b  Theorem 3.1 adversary: bounded headers are violated, unbounded headers \
         survive, Afek3 survives by blocking"
      ~columns:
        [
          ("protocol", Table.Left);
          ("header bound", Table.Right);
          ("attack outcome", Table.Left);
          ("fwd headers used", Table.Right);
          ("messages", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.protocol;
          r.headers;
          r.outcome;
          Table.cell_int r.headers_used;
          Table.cell_int r.messages;
        ])
    rows;
  Table.print table;
  rows

(* ------------------------------------------------------------- E-T41 *)

type t41_row = {
  protocol : string;
  l : int;
  bound : int;
  cost : int option;
  frozen : bool;
}

let t41 ?(quick = false) () =
  let ls = if quick then [ 8; 32 ] else [ 8; 16; 32; 64; 128; 256 ] in
  let cases =
    [
      ("flood", (fun () -> Nfc_protocol.Flood.make ~base:2 ~ratio:1.3 ()), `One_per_epoch);
      ("afek3", (fun () -> Nfc_protocol.Afek3.make ()), `All_in_first);
      ("stenning", (fun () -> Nfc_protocol.Stenning.make ()), `Chunked);
    ]
  in
  let rows = ref [] in
  List.iter
    (fun frozen ->
      List.iter
        (fun (_, mk, style) ->
          List.iter
            (fun l ->
              let per_epoch =
                match style with `One_per_epoch -> 1 | `All_in_first -> l | `Chunked -> 8
              in
              let m = Adversary_p.measure ~l ~per_epoch ~frozen (mk ()) in
              rows :=
                {
                  protocol = m.Adversary_p.protocol;
                  l = m.backlog;
                  bound = m.bound;
                  cost = m.cost;
                  frozen;
                }
                :: !rows)
            ls)
        cases)
    [ false; true ];
  let rows = List.rev !rows in
  (* The backlog builder can saturate (the protocol refuses further
     accumulation); drop the resulting duplicate rows. *)
  let rows =
    List.fold_left
      (fun acc r ->
        if List.exists (fun r' -> r'.protocol = r.protocol && r'.l = r.l && r'.frozen = r.frozen) acc
        then acc
        else r :: acc)
      [] rows
    |> List.rev
  in
  let table =
    Table.create
      ~title:
        "E-T41  Theorem 4.1: packets to deliver a message vs backlog l (bound: floor(l/k); \
         relaxed regime releases old packets, frozen regime is the paper's definition)"
      ~columns:
        [
          ("protocol", Table.Left);
          ("regime", Table.Left);
          ("backlog l", Table.Right);
          ("floor(l/k)", Table.Right);
          ("measured cost", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.protocol;
          (if r.frozen then "frozen" else "relaxed");
          Table.cell_int r.l;
          Table.cell_int r.bound;
          (match r.cost with None -> "no completion" | Some c -> Table.cell_int c);
        ])
    rows;
  Table.print table;
  rows

(* ------------------------------------------------------------ E-T51a *)

type t51_growth_row = {
  q : float;
  measured_rate : float;
  lower : float;
  ideal : float;
  total_sent_median : float;
}

let t51_growth ?(quick = false) ?(seed = 42) ~qs () =
  let n = if quick then 60 else 200 in
  let trials = if quick then 10 else 50 in
  let m0 = 20 in
  let rows =
    List.map
      (fun q ->
        let rates, totals = Prob_experiment.dominant_growth_summary ~seed ~q ~n ~m0 ~trials in
        {
          q;
          measured_rate = rates.Nfc_stats.Summary.mean;
          lower = Bounds.t51_rate ~q n;
          ideal = 1.0 +. q;
          total_sent_median = totals.Nfc_stats.Summary.median;
        })
      qs
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E-T51a  Theorem 5.1 core process: dominant-packet stock growth per message \
            (n=%d epochs, %d trials; bound: 1+q-eps_n, eps_n = 1/sqrt n)"
           n trials)
      ~columns:
        [
          ("q", Table.Right);
          ("measured rate", Table.Right);
          ("1+q-eps_n", Table.Right);
          ("1+q", Table.Right);
          ("median packets sent", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Table.cell_float ~decimals:2 r.q;
          Table.cell_float ~decimals:4 r.measured_rate;
          Table.cell_float ~decimals:4 r.lower;
          Table.cell_float ~decimals:4 r.ideal;
          Table.cell_sci r.total_sent_median;
        ])
    rows;
  Table.print table;
  rows

(* ------------------------------------------------------------ E-T51b *)

type t51_sweep_row = {
  protocol : string;
  q : float;
  n : int;
  packets_median : float;
  completion : float;
}

let t51_sweep ?(quick = false) ?(seed = 7) ~q () =
  let trials = if quick then 3 else 10 in
  let cases =
    [
      ("flood", Nfc_protocol.Flood.make (), if quick then [ 4; 8 ] else [ 4; 6; 8; 10; 12; 14 ]);
      ("afek3", Nfc_protocol.Afek3.make (), if quick then [ 8; 32 ] else [ 4; 8; 16; 32; 64 ]);
      ( "stenning",
        Nfc_protocol.Stenning.make (),
        if quick then [ 8; 32 ] else [ 4; 8; 16; 32; 64 ] );
    ]
  in
  let rows = ref [] in
  let fits = ref [] in
  List.iter
    (fun (name, proto, ns) ->
      let swept = Prob_experiment.sweep proto ~q ~ns ~trials ~seed in
      List.iter
        (fun (n, s, ok) ->
          rows :=
            { protocol = name; q; n; packets_median = s.Nfc_stats.Summary.median; completion = ok }
            :: !rows)
        swept;
      fits := (name, Prob_experiment.growth_rate swept) :: !fits)
    cases;
  let rows = List.rev !rows and fits = List.rev !fits in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E-T51b  Theorem 5.1 end to end: packets to deliver n messages over the \
            probabilistic channel (q=%.2f, %d trials/point)"
           q trials)
      ~columns:
        [
          ("protocol", Table.Left);
          ("n", Table.Right);
          ("median packets", Table.Right);
          ("completion", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.protocol;
          Table.cell_int r.n;
          Table.cell_float ~decimals:0 r.packets_median;
          Table.cell_float ~decimals:2 r.completion;
        ])
    rows;
  Table.print table;
  let fit_table =
    Table.create ~title:"        fitted per-message growth factor (rate^n)"
      ~columns:[ ("protocol", Table.Left); ("growth rate", Table.Right); ("log-R2", Table.Right) ]
  in
  List.iter
    (fun (name, g) ->
      Table.add_row fit_table
        [
          name;
          Table.cell_float ~decimals:3 g.Nfc_util.Fit.rate;
          Table.cell_float ~decimals:3 g.Nfc_util.Fit.log_r2;
        ])
    fits;
  Table.print fit_table;
  (rows, fits)

(* ------------------------------------------------------------ E-T31c *)

let t31_staged ?(quick = false) () =
  let reps = if quick then 8 else 16 in
  let max_messages = if quick then 5 else 8 in
  let probe_nodes = if quick then 40_000 else 150_000 in
  let table =
    Table.create
      ~title:
        "E-T31c  the Claim of Theorem 3.1, staged: tracked set P_i grows one packet per          stage; bounded-header protocols run out of fresh values"
      ~columns:
        [
          ("protocol", Table.Left);
          ("stages", Table.Right);
          ("|P_i| growth", Table.Left);
          ("outcome", Table.Left);
        ]
  in
  let rows =
    List.map
      (fun proto ->
        let o = Adversary_m.attack_staged ~reps ~max_messages ~probe_nodes proto in
        let growth =
          String.concat ">"
            (List.map (fun s -> string_of_int (List.length s.Adversary_m.tracked)) o.stages)
        in
        let outcome =
          match o.result with
          | Adversary_m.Violation v -> Printf.sprintf "violated after %d" v.at_epoch
          | Adversary_m.Survived s -> Printf.sprintf "survived; %d fwd headers" s.headers_tr
          | Adversary_m.Stuck s -> Printf.sprintf "blocked at %d" s.epoch
        in
        Table.add_row table
          [ Nfc_protocol.Spec.name proto; Table.cell_int (List.length o.stages); growth; outcome ];
        o)
      [
        Nfc_protocol.Stop_and_wait.make ();
        Nfc_protocol.Alternating_bit.make ();
        Nfc_protocol.Flood.make ~base:1 ~ratio:2.0 ();
        Nfc_protocol.Stenning.make ();
      ]
  in
  Table.print table;
  rows

(* ------------------------------------------------------------- E-LMF *)

type lmf_row = {
  base : int;
  boundness_proxy : int;
  messages_survived : int;
  predicted_ceiling : int;
}

let lmf ?(quick = false) () =
  let bases = if quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8; 16 ] in
  let headers = 4 in
  let rows =
    List.map
      (fun base ->
        (* Constant thresholds: ratio 1.0 makes Flood k-bounded with
           k ~ 2*base packets per message.  The adversary delays exactly
           one copy per epoch — the minimal stock growth of the [LMF88]
           argument. *)
        let proto = Nfc_protocol.Flood.make ~base ~ratio:1.0 () in
        let max_messages = (8 * base) + 16 in
        let survived =
          match
            Adversary_m.attack ~farm:(fun _ -> 1) ~max_messages ~probe_nodes:200_000 proto
          with
          | Adversary_m.Violation v -> v.at_epoch
          | Adversary_m.Survived s -> s.messages
          | Adversary_m.Stuck s -> s.epoch
        in
        {
          base;
          boundness_proxy = 2 * base;
          messages_survived = survived;
          predicted_ceiling = Bounds.lmf88_max_messages ~k:(2 * base) ~headers;
        })
      bases
  in
  let table =
    Table.create
      ~title:
        "E-LMF  [LMF88] predecessor bound: constant-bounded Flood variants die within          O(k*H) messages (H = 4 headers; adversary delays one copy per epoch)"
      ~columns:
        [
          ("threshold (base)", Table.Right);
          ("boundness k ~ 2*base", Table.Right);
          ("messages before phantom", Table.Right);
          ("k*H ceiling", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Table.cell_int r.base;
          Table.cell_int r.boundness_proxy;
          Table.cell_int r.messages_survived;
          Table.cell_int r.predicted_ceiling;
        ])
    rows;
  Table.print table;
  rows

(* ------------------------------------------------------------ E-T51c *)

type t51_safety_row = { ratio : float; violation_rate : float }

let t51_safety ?(quick = false) ?(seed = 3) ~q () =
  let trials = if quick then 5 else 30 in
  let n = 8 in
  let ratios = if quick then [ 1.0; 1.5; 2.0 ] else [ 1.0; 1.1; 1.2; 1.3; 1.5; 1.75; 2.0 ] in
  let swept = Prob_experiment.safety_sweep ~q ~ratios ~n ~trials ~seed in
  let rows = List.map (fun (ratio, violation_rate) -> { ratio; violation_rate }) swept in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E-T51c  Flood threshold ratio vs DL1 violation rate (q=%.2f, n=%d, %d trials): \
            bounded headers must outpace the stale flood or die"
           q n trials)
      ~columns:[ ("threshold ratio", Table.Right); ("violation rate", Table.Right) ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ Table.cell_float ~decimals:2 r.ratio; Table.cell_float ~decimals:2 r.violation_rate ])
    rows;
  Table.print table;
  rows

(* -------------------------------------------------------------- E-SS *)

type ss_row = {
  ss_protocol : string;
  legit_configs : int;
  legit_closed : bool;
  corrupted_starts : int;
  ss1 : string;
  ss1_bound : int option;
  ss2 : string;
}

let ss ?(quick = false) () =
  let module C = Nfc_stab.Converge in
  let cfg_at cap =
    (* The corrupted product is exponential in capacity, so the clamps
       scale with it or the cap-2 run truncates to Unknown. *)
    {
      C.default_cfg with
      C.bounds = { C.default_cfg.C.bounds with Nfc_mcheck.Explore.capacity_tr = cap; capacity_rt = cap };
      C.max_starts = C.default_cfg.C.max_starts * cap * cap;
      recovery_nodes = C.default_cfg.C.recovery_nodes * cap * cap;
    }
  in
  let cases =
    (* One self-stabilizing design per capacity next to the classical
       protocols it improves on: the transient-fault adversary hands the
       system an arbitrary corrupted configuration and then goes silent. *)
    if quick then [ (Nfc_protocol.Stab_arq.make (), 1); (Nfc_protocol.Alternating_bit.make (), 1) ]
    else
      [
        (Nfc_protocol.Stab_arq.make (), 1);
        (Nfc_protocol.Stab_arq.make ~cap:2 (), 2);
        (Nfc_protocol.Alternating_bit.make (), 1);
        (Nfc_protocol.Stop_and_wait.make (), 1);
      ]
  in
  let rows =
    List.map
      (fun (spec, cap) ->
        let r = C.analyze spec (cfg_at cap) in
        {
          ss_protocol = r.C.protocol;
          legit_configs = r.C.legit_configs;
          legit_closed = r.C.legit_closed;
          corrupted_starts = r.C.starts_enumerated;
          ss1 = C.verdict_to_string r.C.ss1;
          ss1_bound = C.convergence_bound r;
          ss2 = C.verdict_to_string r.C.ss2;
        })
      cases
  in
  let table =
    Table.create
      ~title:
        "E-SS  Self-stabilization: the transient-fault adversary corrupts every station         state and channel multiset; SS1 demands autonomous convergence to the             legitimate set, SS2 re-convergence from duplication exits"
      ~columns:
        [
          ("protocol", Table.Left);
          ("legitimate |L|", Table.Right);
          ("closed", Table.Left);
          ("corrupted starts", Table.Right);
          ("SS1", Table.Left);
          ("bound", Table.Right);
          ("SS2", Table.Left);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.ss_protocol;
          Table.cell_int r.legit_configs;
          (if r.legit_closed then "yes" else "no");
          Table.cell_int r.corrupted_starts;
          r.ss1;
          (match r.ss1_bound with Some b -> Table.cell_int b | None -> "-");
          r.ss2;
        ])
    rows;
  Table.print table;
  rows

let run_all ?(quick = false) ?(seed = 42) () =
  print_endline (figure_1 ());
  print_newline ();
  ignore (t21 ~quick ());
  print_newline ();
  ignore (t31_pyramid ~ks:[ 2; 3; 4; 5 ] ());
  print_newline ();
  ignore (t31 ~quick ());
  print_newline ();
  ignore (t31_staged ~quick ());
  print_newline ();
  ignore (lmf ~quick ());
  print_newline ();
  ignore (t41 ~quick ());
  print_newline ();
  ignore (t51_growth ~quick ~seed ~qs:[ 0.1; 0.3; 0.5 ] ());
  print_newline ();
  ignore (t51_sweep ~quick ~seed ~q:0.3 ());
  print_newline ();
  ignore (t51_safety ~quick ~seed ~q:0.6 ());
  print_newline ();
  ignore (ss ~quick ());
  print_newline ();
  ignore (Nfc_transport.Experiment.run ~quick ~seed ());
  10
