(* Wiring: one listening socket, an accept thread, one thread per
   connection (cheap blocking I/O; hundreds of mostly-idle keep-alive
   connections), and the {!Workers} domain group doing the actual
   verification work.  Threads wait on sockets, domains burn CPU — the
   two pools never compete for the same resource. *)

type cfg = {
  host : string;
  port : int;  (* 0 = ephemeral; [port t] reports the bound one *)
  jobs : int;
  queue_depth : int;
  result_ttl : float;
}

let default_cfg =
  { host = "127.0.0.1"; port = 8080; jobs = 2; queue_depth = 64; result_ttl = 300.0 }

type t = {
  fd : Unix.file_descr;
  bound_port : int;
  workers : Workers.t;
  queue : Jobs.job Queue.t;
  telemetry : Telemetry.t;
  stop_flag : bool Atomic.t;
  accept_thread : Thread.t;
}

let port t = t.bound_port

(* One keep-alive loop per connection.  A malformed request answers 400
   and closes; an escaping handler exception already became a 500 inside
   {!Router.dispatch}; nothing a client sends reaches the daemon. *)
let serve_conn ~routes ~telemetry ~stop_flag client =
  let c = Http.conn client in
  let rec loop () =
    match Http.read_request c with
    | Error Http.Eof -> ()
    | Error (Http.Bad_request msg) ->
        Http.write_response client ~keep_alive:false (Router.json_error 400 msg)
    | Error Http.Too_large ->
        Http.write_response client ~keep_alive:false
          (Router.json_error 413 "request head or body too large")
    | Ok req ->
        let started = Unix.gettimeofday () in
        let resp = Router.dispatch routes req in
        let keep = Http.wants_keep_alive req && not (Atomic.get stop_flag) in
        Http.write_response client ~keep_alive:keep resp;
        let path = Telemetry.path_label req.Http.path in
        Telemetry.inc telemetry "nfc_http_requests_total"
          [
            ("method", req.Http.meth);
            ("path", path);
            ("status", string_of_int resp.Http.status);
          ];
        Telemetry.observe telemetry "nfc_http_request_seconds" [ ("path", path) ]
          (Unix.gettimeofday () -. started);
        if keep then loop ()
  in
  (try loop () with _ -> ());
  try Unix.close client with Unix.Unix_error _ -> ()

let start cfg =
  (* A client hanging up mid-response must cost us an EPIPE, not the
     process. *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  Printexc.record_backtrace true;
  let telemetry = Telemetry.create () in
  let cache =
    Cache.create
      ~on_lookup:(fun ~hit ->
        Telemetry.inc telemetry "nfc_cache_requests_total"
          [ ("result", (if hit then "hit" else "miss")) ])
      ()
  in
  let table = Jobs.create ~ttl:cfg.result_ttl () in
  let queue = Queue.create ~capacity:cfg.queue_depth in
  let workers = Workers.start ~jobs:cfg.jobs ~queue ~table ~telemetry in
  let ctx =
    {
      Handlers.table;
      queue;
      cache;
      telemetry;
      n_workers = Workers.n_workers workers;
      n_running = (fun () -> Workers.n_running workers);
    }
  in
  let routes = Handlers.routes ctx in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
  Unix.listen fd 512;
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let stop_flag = Atomic.make false in
  let accept_loop () =
    let rec go () =
      match Unix.accept fd with
      | client, _ ->
          if Atomic.get stop_flag then
            (* The wake-up connection from [stop] (or a late client):
               drop it and exit. *)
            try Unix.close client with Unix.Unix_error _ -> ()
          else begin
            ignore (Thread.create (serve_conn ~routes ~telemetry ~stop_flag) client);
            go ()
          end
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          if Atomic.get stop_flag then () else go ()
      | exception Unix.Unix_error (_, _, _) ->
          (* Anything else on a listening socket is terminal for the
             loop. *)
          ()
    in
    go ()
  in
  let accept_thread = Thread.create accept_loop () in
  { fd; bound_port; workers; queue; telemetry; stop_flag; accept_thread }

let stop t =
  Atomic.set t.stop_flag true;
  (* A blocked [accept] does not wake when another thread closes the
     listener, so bounce it with a throwaway self-connection; the loop
     then observes the flag and exits.  In-flight connections drain
     (keep-alive is refused once the flag is set), and the workers
     finish what they already popped. *)
  (try
     let wake = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     let addr =
       match Unix.getsockname t.fd with
       | Unix.ADDR_INET (a, p) ->
           Unix.ADDR_INET
             ((if a = Unix.inet_addr_any then Unix.inet_addr_loopback else a), p)
       | other -> other
     in
     (try Unix.connect wake addr with Unix.Unix_error _ -> ());
     try Unix.close wake with Unix.Unix_error _ -> ()
   with Unix.Unix_error _ -> ());
  Thread.join t.accept_thread;
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  Workers.stop t.workers

let run_forever cfg =
  let t = start cfg in
  Printf.printf "nfc serve: listening on %s:%d (%d worker domains, queue depth %d)\n%!"
    cfg.host t.bound_port (Workers.n_workers t.workers) (Queue.capacity t.queue);
  let stop_requested = Atomic.make false in
  let on_signal _ = Atomic.set stop_requested true in
  List.iter
    (fun s -> Sys.set_signal s (Sys.Signal_handle on_signal))
    [ Sys.sigint; Sys.sigterm ];
  while not (Atomic.get stop_requested) do
    Thread.delay 0.2
  done;
  Printf.eprintf "nfc serve: shutting down\n%!";
  stop t
