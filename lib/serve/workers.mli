(** The worker scheduler: a persistent {!Nfc_util.Pool} domain group
    draining the admission queue.

    A raising compute closure fails its job (exception text + worker
    backtrace stored on the job) but never the worker; cancellation is
    honoured before the closure starts and probed cooperatively while it
    runs. *)

type t

val start :
  jobs:int ->
  queue:Jobs.job Queue.t ->
  table:Jobs.table ->
  telemetry:Telemetry.t ->
  t

val n_workers : t -> int

(** Jobs currently executing (the [nfc_jobs_running] gauge). *)
val n_running : t -> int

(** Close the queue and join the domains; jobs already popped finish
    first. *)
val stop : t -> unit
