(** The [nfc serve] daemon: accept thread + per-connection threads over
    {!Handlers}, verification work on the {!Workers} domain group.

    [start] returns once the socket is bound and the workers are up, so
    the end-to-end tests run the service in-process on an ephemeral port
    ([port = 0], then {!port}). *)

type cfg = {
  host : string;
  port : int;  (** 0 picks an ephemeral port — see {!port} *)
  jobs : int;  (** worker domains; 0 = one per core *)
  queue_depth : int;  (** admission queue capacity (the 429 threshold) *)
  result_ttl : float;  (** seconds terminal jobs stay pollable *)
}

(** 127.0.0.1:8080, 2 worker domains, queue depth 64, 300 s TTL. *)
val default_cfg : cfg

type t

val start : cfg -> t

(** The actually-bound port (differs from [cfg.port] when that was 0). *)
val port : t -> int

(** Close the listener, drain in-flight connections' keep-alive loops,
    join the worker domains. *)
val stop : t -> unit

(** [start], then block until SIGINT/SIGTERM, then [stop] — the CLI
    entrypoint. *)
val run_forever : cfg -> unit
