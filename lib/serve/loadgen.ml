(* The load generator behind [nfc loadgen] and the service benchmark.

   Each request is one client session on its own keep-alive connection:
   POST the endpoint, then — if admitted — poll the job until it reaches
   a terminal state.  [concurrency] threads drain a shared request
   counter, so up to that many sessions are in flight at once.

   The accounting mirrors the service's acceptance contract: every
   request must end as completed, failed, cancelled, rejected (429) or a
   transport error — [check stats] holds exactly when nothing was
   dropped on the floor. *)

module J = Nfc_util.Json

type cfg = {
  host : string;
  port : int;
  requests : int;
  concurrency : int;
  endpoint : string;  (* "lint", "simulate", ... *)
  body : string;  (* JSON request body *)
  poll_interval : float;
}

let default_cfg =
  {
    host = "127.0.0.1";
    port = 8080;
    requests = 500;
    concurrency = 100;
    endpoint = "lint";
    body = {|{"protocol":"stop-and-wait"}|};
    poll_interval = 0.002;
  }

type stats = {
  requests : int;
  accepted : int;
  completed : int;
  failed : int;
  cancelled : int;
  rejected : int;  (* 429 at admission *)
  transport_errors : int;
  elapsed : float;
  throughput : float;  (* terminal outcomes per second, 429s included *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;  (* submit -> terminal latency of completed jobs *)
}

type outcome =
  | Completed of float
  | Failed_job of float
  | Cancelled_job of float
  | Rejected
  | Transport of string

let connect host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Ok fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printexc.to_string e)

let field k body =
  match J.of_string body with
  | Ok j -> (match J.member k j with Some (J.String s) -> Some s | _ -> None)
  | Error _ -> None

(* One full client session.  The poll loop reuses the submit
   connection — the keep-alive path is exactly what it exercises. *)
let run_one cfg =
  match connect cfg.host cfg.port with
  | Error msg -> Transport msg
  | Ok fd ->
      let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
      Fun.protect ~finally (fun () ->
          let c = Http.conn fd in
          let t0 = Unix.gettimeofday () in
          match
            Http.call c ~meth:"POST" ~target:("/v1/" ^ cfg.endpoint)
              ~body:cfg.body ()
          with
          | Error msg -> Transport msg
          | Ok (429, _, _) -> Rejected
          | Ok (202, _, body) -> (
              match field "id" body with
              | None -> Transport ("202 without job id: " ^ body)
              | Some id ->
                  let target = "/v1/jobs/" ^ id in
                  let rec poll () =
                    match Http.call c ~meth:"GET" ~target () with
                    | Error msg -> Transport msg
                    | Ok (200, _, body) -> (
                        let dt = Unix.gettimeofday () -. t0 in
                        match field "state" body with
                        | Some "done" -> Completed dt
                        | Some "failed" -> Failed_job dt
                        | Some "cancelled" -> Cancelled_job dt
                        | Some ("queued" | "running") ->
                            Thread.delay cfg.poll_interval;
                            poll ()
                        | _ -> Transport ("unexpected job status: " ^ body))
                    | Ok (status, _, body) ->
                        Transport (Printf.sprintf "poll %d: %s" status body)
                  in
                  poll ())
          | Ok (status, _, body) ->
              Transport (Printf.sprintf "submit %d: %s" status body))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (Float.round (p *. float_of_int (n - 1)))))

let run ?(log = fun _ -> ()) (cfg : cfg) =
  let next = Atomic.make 0 in
  let mutex = Mutex.create () in
  let outcomes = ref [] in
  let record o =
    Mutex.lock mutex;
    outcomes := o :: !outcomes;
    Mutex.unlock mutex
  in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < cfg.requests then begin
        record (run_one cfg);
        go ()
      end
    in
    go ()
  in
  let started = Unix.gettimeofday () in
  let threads =
    List.init (max 1 cfg.concurrency) (fun _ -> Thread.create worker ())
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. started in
  let outcomes = !outcomes in
  let count p = List.length (List.filter p outcomes) in
  let completed_lat =
    List.filter_map (function Completed dt -> Some dt | _ -> None) outcomes
  in
  let sorted = Array.of_list (List.sort compare completed_lat) in
  List.iter
    (function Transport msg -> log ("transport error: " ^ msg) | _ -> ())
    outcomes;
  let ms x = 1000.0 *. x in
  {
    requests = cfg.requests;
    accepted =
      count (function Completed _ | Failed_job _ | Cancelled_job _ -> true | _ -> false);
    completed = count (function Completed _ -> true | _ -> false);
    failed = count (function Failed_job _ -> true | _ -> false);
    cancelled = count (function Cancelled_job _ -> true | _ -> false);
    rejected = count (function Rejected -> true | _ -> false);
    transport_errors = count (function Transport _ -> true | _ -> false);
    elapsed;
    throughput = (if elapsed > 0.0 then float_of_int cfg.requests /. elapsed else 0.0);
    p50_ms = ms (percentile sorted 0.50);
    p95_ms = ms (percentile sorted 0.95);
    p99_ms = ms (percentile sorted 0.99);
    max_ms = (match Array.length sorted with 0 -> 0.0 | n -> ms sorted.(n - 1));
  }

(* Zero dropped jobs: every request reached a terminal job state or was
   told 429 — the acceptance criterion of the service. *)
let check s = s.accepted + s.rejected = s.requests && s.transport_errors = 0

let json s =
  J.Obj
    [
      ("requests", J.Int s.requests);
      ("accepted", J.Int s.accepted);
      ("completed", J.Int s.completed);
      ("failed", J.Int s.failed);
      ("cancelled", J.Int s.cancelled);
      ("rejected", J.Int s.rejected);
      ("transport_errors", J.Int s.transport_errors);
      ("elapsed_s", J.Float s.elapsed);
      ("throughput_rps", J.Float s.throughput);
      ("p50_ms", J.Float s.p50_ms);
      ("p95_ms", J.Float s.p95_ms);
      ("p99_ms", J.Float s.p99_ms);
      ("max_ms", J.Float s.max_ms);
    ]

let pp ppf s =
  Format.fprintf ppf
    "@[<v>requests    %d@,\
     accepted    %d (completed %d, failed %d, cancelled %d)@,\
     rejected    %d (429)@,\
     transport   %d errors@,\
     elapsed     %.3f s (%.1f req/s)@,\
     latency     p50 %.1f ms | p95 %.1f ms | p99 %.1f ms | max %.1f ms@,\
     dropped     %s@]"
    s.requests s.accepted s.completed s.failed s.cancelled s.rejected
    s.transport_errors s.elapsed s.throughput s.p50_ms s.p95_ms s.p99_ms s.max_ms
    (if check s then "none (every request terminal or 429)" else "SOME — contract violated")
