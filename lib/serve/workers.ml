(* The worker scheduler: [jobs] domains (a {!Nfc_util.Pool.spawn_group})
   all draining the admission queue until it is closed.

   Per job: refuse it if cancellation arrived while it queued, otherwise
   run its compute closure with a cancellation probe; an escaping
   exception fails the job with the exception text and worker backtrace
   but never the worker — the domain logs the failure into the job table
   and moves on to the next pop.  Budgets are enforced upstream: the
   handlers clamp every request's exploration/iteration budgets before
   the job is admitted, so no compute closure can run unbounded. *)

type t = {
  queue : Jobs.job Queue.t;
  group : Nfc_util.Pool.group;
  n_workers : int;
  running : int Atomic.t;
}

let start ~jobs ~queue ~table ~telemetry =
  let n = if jobs <= 0 then Nfc_util.Pool.recommended () else jobs in
  let running = Atomic.make 0 in
  let body _i =
    let rec loop () =
      match Queue.pop queue with
      | None -> ()
      | Some (job : Jobs.job) ->
          let kind = [ ("kind", job.Jobs.kind) ] in
          (if not (Jobs.mark_running table job) then
             Telemetry.inc telemetry "nfc_jobs_completed_total"
               (kind @ [ ("state", "cancelled") ])
           else begin
             let started = Unix.gettimeofday () in
             Telemetry.observe telemetry "nfc_job_queue_wait_seconds" []
               (started -. job.Jobs.submitted_at);
             Atomic.incr running;
             let state =
               match job.Jobs.compute ~cancelled:(fun () -> Atomic.get job.Jobs.cancel_flag) with
               | result -> Jobs.mark_done table job result
               | exception Jobs.Cancelled_job ->
                   Jobs.mark_cancelled table job;
                   Jobs.Cancelled
               | exception e ->
                   let bt = Printexc.get_raw_backtrace () in
                   let bt_text = Printexc.raw_backtrace_to_string bt in
                   Jobs.mark_failed table job
                     (Printexc.to_string e
                     ^ if bt_text = "" then "" else "\n" ^ bt_text);
                   Jobs.Failed
             in
             Atomic.decr running;
             Telemetry.observe telemetry "nfc_job_run_seconds" kind
               (Unix.gettimeofday () -. started);
             Telemetry.inc telemetry "nfc_jobs_completed_total"
               (kind @ [ ("state", Jobs.state_name state) ])
           end);
          loop ()
    in
    loop ()
  in
  { queue; group = Nfc_util.Pool.spawn_group ~jobs:n body; n_workers = n; running }

let n_workers t = t.n_workers
let n_running t = Atomic.get t.running

(* Close the queue (wakes every blocked pop) and wait for the domains to
   drain what they already hold. *)
let stop t =
  Queue.close t.queue;
  Nfc_util.Pool.join_group t.group
