(* HTTP/1.1 message framing over blocking Unix file descriptors: request
   line + headers + Content-Length body, keep-alive by default.  This is
   the only wire-format code in the repo — the server loop, the loadgen
   client and the end-to-end tests all parse and serialize through here,
   so a framing bug cannot hide on one side of a test. *)

type request = {
  meth : string;
  target : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

type response = { status : int; headers : (string * string) list; body : string }

type error = Eof | Bad_request of string | Too_large

(* ------------------------------------------------------------- buffers *)

(* One [conn] per socket: bytes read past the current message stay in
   [pending] for the next keep-alive request on the same connection. *)
type conn = { fd : Unix.file_descr; pending : Buffer.t }

let conn fd = { fd; pending = Buffer.create 1024 }

let max_head_bytes = 16 * 1024

(* Scratch is per-call in a threaded server: allocate fresh. *)
let read_some c =
  let scratch = Bytes.create 4096 in
  match Unix.read c.fd scratch 0 (Bytes.length scratch) with
  | 0 -> false
  | n ->
      Buffer.add_subbytes c.pending scratch 0 n;
      true
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> false

let find_sub hay sub from =
  let nh = String.length hay and ns = String.length sub in
  let rec go i = if i + ns > nh then None else if String.sub hay i ns = sub then Some i else go (i + 1) in
  go from

(* Take [n] bytes off the front of [pending], reading as needed. *)
let take_exact c n =
  let rec fill () =
    if Buffer.length c.pending >= n then true
    else if read_some c then fill ()
    else false
  in
  if not (fill ()) then None
  else begin
    let all = Buffer.contents c.pending in
    let head = String.sub all 0 n in
    Buffer.clear c.pending;
    Buffer.add_substring c.pending all n (String.length all - n);
    Some head
  end

(* ------------------------------------------------------------- parsing *)

let lowercase = String.lowercase_ascii

let trim = String.trim

let parse_headers lines =
  List.filter_map
    (fun line ->
      match String.index_opt line ':' with
      | None -> None
      | Some i ->
          Some (lowercase (trim (String.sub line 0 i)), trim (String.sub line (i + 1) (String.length line - i - 1))))
    lines

let header key headers = List.assoc_opt (lowercase key) headers

let split_crlf s =
  String.split_on_char '\n' s
  |> List.map (fun l ->
         let n = String.length l in
         if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)

(* Read one request; [Ok None]-like clean EOF is the [Eof] error so the
   server's keep-alive loop can end quietly. *)
let read_request ?(max_body = 8 * 1024 * 1024) c =
  let rec head_loop () =
    match find_sub (Buffer.contents c.pending) "\r\n\r\n" 0 with
    | Some i -> Ok i
    | None ->
        if Buffer.length c.pending > max_head_bytes then Error Too_large
        else if read_some c then head_loop ()
        else if Buffer.length c.pending = 0 then Error Eof
        else Error (Bad_request "truncated request head")
  in
  match head_loop () with
  | Error _ as e -> e
  | Ok head_end -> (
      let all = Buffer.contents c.pending in
      let head = String.sub all 0 head_end in
      Buffer.clear c.pending;
      Buffer.add_substring c.pending all (head_end + 4) (String.length all - head_end - 4);
      match split_crlf head with
      | [] -> Error (Bad_request "empty request")
      | request_line :: header_lines -> (
          match String.split_on_char ' ' request_line with
          | [ meth; target; version ]
            when version = "HTTP/1.1" || version = "HTTP/1.0" -> (
              let headers = parse_headers header_lines in
              let path =
                match String.index_opt target '?' with
                | None -> target
                | Some i -> String.sub target 0 i
              in
              let length =
                match header "content-length" headers with
                | None -> Ok 0
                | Some v -> (
                    match int_of_string_opt (trim v) with
                    | Some l when l >= 0 -> Ok l
                    | _ -> Error (Bad_request "bad Content-Length"))
              in
              match length with
              | Error _ as e -> e
              | Ok l when l > max_body -> Error Too_large
              | Ok l -> (
                  match take_exact c l with
                  | None -> Error (Bad_request "truncated body")
                  | Some body -> Ok { meth; target; path; headers; body }))
          | _ -> Error (Bad_request "malformed request line")))

(* ----------------------------------------------------------- rendering *)

let status_reason = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | s -> if s >= 200 && s < 300 then "OK" else "Error"

let response ?(headers = []) ?(content_type = "application/json") ~status body =
  { status; headers = ("content-type", content_type) :: headers; body }

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let write_response fd ~keep_alive r =
  let buf = Buffer.create (String.length r.body + 256) in
  Buffer.add_string buf (Printf.sprintf "HTTP/1.1 %d %s\r\n" r.status (status_reason r.status));
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v)) r.headers;
  Buffer.add_string buf (Printf.sprintf "content-length: %d\r\n" (String.length r.body));
  Buffer.add_string buf
    (if keep_alive then "connection: keep-alive\r\n" else "connection: close\r\n");
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf r.body;
  write_all fd (Buffer.contents buf)

let wants_keep_alive (req : request) =
  match header "connection" req.headers with
  | Some v -> lowercase (trim v) <> "close"
  | None -> true

(* -------------------------------------------------------------- client *)

let write_request fd ~meth ~target ?(headers = []) ?(body = "") () =
  let buf = Buffer.create (String.length body + 256) in
  Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
  Buffer.add_string buf "host: nfc\r\n";
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v)) headers;
  if body <> "" || meth = "POST" then begin
    Buffer.add_string buf "content-type: application/json\r\n";
    Buffer.add_string buf (Printf.sprintf "content-length: %d\r\n" (String.length body))
  end;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf body;
  write_all fd (Buffer.contents buf)

let read_response ?(max_body = 64 * 1024 * 1024) c =
  let rec head_loop () =
    match find_sub (Buffer.contents c.pending) "\r\n\r\n" 0 with
    | Some i -> Ok i
    | None ->
        if read_some c then head_loop ()
        else Error "connection closed before response head"
  in
  match head_loop () with
  | Error _ as e -> e
  | Ok head_end -> (
      let all = Buffer.contents c.pending in
      let head = String.sub all 0 head_end in
      Buffer.clear c.pending;
      Buffer.add_substring c.pending all (head_end + 4) (String.length all - head_end - 4);
      match split_crlf head with
      | status_line :: header_lines -> (
          let headers = parse_headers header_lines in
          match String.split_on_char ' ' status_line with
          | _http :: code :: _ -> (
              match int_of_string_opt code with
              | None -> Error "malformed status line"
              | Some status -> (
                  let length =
                    match header "content-length" headers with
                    | None -> Some 0
                    | Some v -> int_of_string_opt (trim v)
                  in
                  match length with
                  | None -> Error "bad Content-Length"
                  | Some l when l > max_body -> Error "response too large"
                  | Some l -> (
                      match take_exact c l with
                      | None -> Error "truncated response body"
                      | Some body -> Ok (status, headers, body))))
          | _ -> Error "malformed status line")
      | [] -> Error "empty response head")

(* One round trip on an already-connected client [conn]. *)
let call c ~meth ~target ?headers ?body () =
  match write_request c.fd ~meth ~target ?headers ?body () with
  | () -> read_response c
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
