(** The job table: admitted requests become pollable jobs.

    States move strictly forward — [queued -> running -> done | failed],
    with [cancelled] reachable from [queued] (immediately effective) and
    from [running] (cooperative, when the compute closure polls its
    cancellation flag).  Terminal jobs are retained for [ttl] seconds so
    clients can collect results, then evicted by the sweep that runs on
    every submission. *)

type state = Queued | Running | Done | Failed | Cancelled

val state_name : state -> string
val terminal : state -> bool

type job = {
  id : string;
  kind : string;  (** endpoint name: ["lint"], ["simulate"], … *)
  protocol : string;
  submitted_at : float;
  mutable started_at : float option;
  mutable finished_at : float option;
  mutable state : state;
  mutable result : string option;  (** rendered JSON document, when [Done] *)
  mutable error : string option;
  cancel_flag : bool Atomic.t;
  compute : cancelled:(unit -> bool) -> string;
      (** runs on a worker domain; returns the rendered JSON result, or
          raises to fail the job *)
}

type table

(** [create ~ttl ()] — [now] is injectable for the TTL-eviction tests. *)
val create : ?now:(unit -> float) -> ttl:float -> unit -> table

(** Register a new [Queued] job (sweeping expired terminal jobs first).
    The caller must still enqueue it with {!Queue.try_push} — and mark it
    cancelled if admission fails. *)
val submit :
  table ->
  kind:string ->
  protocol:string ->
  compute:(cancelled:(unit -> bool) -> string) ->
  job

val find : table -> string -> job option

(** Undo a registration whose queue admission failed (the client got a
    429 and the job id never escaped). *)
val remove : table -> job -> unit

(** Raised by a compute closure that observed its [cancelled] probe; the
    worker marks the job cancelled rather than failed. *)
exception Cancelled_job

(** Evict expired terminal jobs; returns how many were removed. *)
val sweep : table -> int

(** Worker-side transitions.  [mark_running] returns [false] — marking
    the job cancelled — when cancellation was requested while it sat in
    the queue, so the compute closure never runs. *)
val mark_running : table -> job -> bool

(** Returns the terminal state actually reached: [Done], or [Cancelled]
    when cancellation was requested while the job ran (the result is
    still stored — the work was done anyway). *)
val mark_done : table -> job -> string -> state
val mark_failed : table -> job -> string -> unit
val mark_cancelled : table -> job -> unit

type cancel_outcome = Cancelled_queued | Cancelling_running | Already_terminal | Not_found

val request_cancel : table -> string -> cancel_outcome

(** Atomic [(state, result, error)] snapshot — the raw-result endpoint
    must not observe a state/result torn pair. *)
val peek : table -> job -> state * string option * string option

(** (queued, running, done, failed, cancelled) — the health payload. *)
val counts : table -> int * int * int * int * int

(** Status snapshot, taken under the table lock so a poll never observes
    a half-written transition.  The stored result document is spliced in
    verbatim ({!Nfc_util.Json.Raw}). *)
val json : table -> job -> Nfc_util.Json.t
