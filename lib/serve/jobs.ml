(* The job table: every request admitted past the queue becomes a job
   with an id the client polls.  States move strictly forward:

     queued -> running -> done | failed
     queued -> cancelled              (cancel before a worker picks it up)
     running -> cancelled             (cooperative: the compute closure
                                      observed [cancelled ()] and bailed)

   Terminal jobs are retained for [ttl] seconds past completion so
   clients can collect results, then evicted by the sweep that runs on
   every submission — a service under load cleans itself up, an idle one
   holds at most the tail of the last burst. *)

type state = Queued | Running | Done | Failed | Cancelled

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

let terminal = function Done | Failed | Cancelled -> true | Queued | Running -> false

type job = {
  id : string;
  kind : string;
  protocol : string;
  submitted_at : float;
  mutable started_at : float option;
  mutable finished_at : float option;
  mutable state : state;
  mutable result : string option;  (* rendered JSON document *)
  mutable error : string option;
  cancel_flag : bool Atomic.t;
  compute : cancelled:(unit -> bool) -> string;
}

type table = {
  mutex : Mutex.t;
  tbl : (string, job) Hashtbl.t;
  mutable next_id : int;
  ttl : float;
  now : unit -> float;
}

let create ?(now = Unix.gettimeofday) ~ttl () =
  { mutex = Mutex.create (); tbl = Hashtbl.create 256; next_id = 1; ttl; now }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let sweep_locked t =
  let now = t.now () in
  let dead =
    Hashtbl.fold
      (fun id j acc ->
        match (terminal j.state, j.finished_at) with
        | true, Some fin when now -. fin > t.ttl -> id :: acc
        | _ -> acc)
      t.tbl []
  in
  List.iter (Hashtbl.remove t.tbl) dead;
  List.length dead

let sweep t = locked t (fun () -> sweep_locked t)

let submit t ~kind ~protocol ~compute =
  locked t (fun () ->
      ignore (sweep_locked t);
      let id = Printf.sprintf "j%d" t.next_id in
      t.next_id <- t.next_id + 1;
      let job =
        {
          id;
          kind;
          protocol;
          submitted_at = t.now ();
          started_at = None;
          finished_at = None;
          state = Queued;
          result = None;
          error = None;
          cancel_flag = Atomic.make false;
          compute;
        }
      in
      Hashtbl.replace t.tbl id job;
      job)

let find t id = locked t (fun () -> Hashtbl.find_opt t.tbl id)

(* For jobs refused at the admission queue: the client saw 429, no job id
   ever escaped, so the registration is simply undone. *)
let remove t job = locked t (fun () -> Hashtbl.remove t.tbl job.id)

exception Cancelled_job

(* Worker-side transitions.  [mark_running] refuses a job whose
   cancellation was requested while it sat in the queue — the worker then
   never runs the compute closure at all. *)
let mark_running t job =
  locked t (fun () ->
      if Atomic.get job.cancel_flag || job.state <> Queued then begin
        if job.state = Queued then begin
          job.state <- Cancelled;
          job.finished_at <- Some (t.now ())
        end;
        false
      end
      else begin
        job.state <- Running;
        job.started_at <- Some (t.now ());
        true
      end)

let mark_done t job result =
  locked t (fun () ->
      job.state <- (if Atomic.get job.cancel_flag then Cancelled else Done);
      job.result <- Some result;
      job.finished_at <- Some (t.now ());
      job.state)

let mark_failed t job err =
  locked t (fun () ->
      job.state <- Failed;
      job.error <- Some err;
      job.finished_at <- Some (t.now ()))

let mark_cancelled t job =
  locked t (fun () ->
      job.state <- Cancelled;
      job.finished_at <- Some (t.now ()))

type cancel_outcome = Cancelled_queued | Cancelling_running | Already_terminal | Not_found

let request_cancel t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl id with
      | None -> Not_found
      | Some job ->
          Atomic.set job.cancel_flag true;
          (match job.state with
          | Queued ->
              (* The queue still holds it; {!Workers} filters it out and
                 [mark_running] would refuse it regardless. *)
              job.state <- Cancelled;
              job.finished_at <- Some (t.now ());
              Cancelled_queued
          | Running -> Cancelling_running
          | Done | Failed | Cancelled -> Already_terminal))

(* Atomic view of (state, result, error) for the raw-result endpoint. *)
let peek t job = locked t (fun () -> (job.state, job.result, job.error))

let counts t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ j (q, r, d, f, c) ->
          match j.state with
          | Queued -> (q + 1, r, d, f, c)
          | Running -> (q, r + 1, d, f, c)
          | Done -> (q, r, d + 1, f, c)
          | Failed -> (q, r, d, f + 1, c)
          | Cancelled -> (q, r, d, f, c + 1))
        t.tbl (0, 0, 0, 0, 0))

(* Snapshot under the lock: the poll endpoint must never observe a
   half-written transition (state done, result not yet set). *)
let json t job =
  let module J = Nfc_util.Json in
  locked t (fun () ->
      let ms = function None -> J.Null | Some at -> J.Float ((at -. job.submitted_at) *. 1000.) in
      J.Obj
        (List.concat
           [
             [
               ("id", J.String job.id);
               ("kind", J.String job.kind);
               ("protocol", J.String job.protocol);
               ("state", J.String (state_name job.state));
               ("queued_ms", ms job.started_at);
               ("total_ms", ms job.finished_at);
             ];
             (match job.result with Some r -> [ ("result", J.Raw r) ] | None -> []);
             (match job.error with Some e -> [ ("error", J.String e) ] | None -> []);
           ]))
