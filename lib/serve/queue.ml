(* Bounded admission queue: the service's backpressure point.

   [try_push] never blocks — a full queue is an immediate [false], which
   the handlers turn into 429 + Retry-After.  Rejecting at admission
   keeps the job table and worker pool sized by configuration, not by
   client enthusiasm: every accepted job is guaranteed a slot to wait in,
   so accepted work is never dropped.

   Workers block in [pop] on a condition variable; [close] wakes them all
   for shutdown.  Ring buffer rather than a linked queue: fixed capacity
   is the point, and it sidesteps shadowing [Stdlib.Queue] inside this
   very module. *)

type 'a t = {
  ring : 'a option array;
  mutable head : int;  (* next pop *)
  mutable count : int;
  mutable closed : bool;
  mutex : Mutex.t;
  nonempty : Condition.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Queue.create: capacity must be >= 1";
  {
    ring = Array.make capacity None;
    head = 0;
    count = 0;
    closed = false;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
  }

let capacity q = Array.length q.ring

let depth q =
  Mutex.lock q.mutex;
  let d = q.count in
  Mutex.unlock q.mutex;
  d

let try_push q v =
  Mutex.lock q.mutex;
  let ok =
    if q.closed || q.count = Array.length q.ring then false
    else begin
      q.ring.((q.head + q.count) mod Array.length q.ring) <- Some v;
      q.count <- q.count + 1;
      Condition.signal q.nonempty;
      true
    end
  in
  Mutex.unlock q.mutex;
  ok

let pop q =
  Mutex.lock q.mutex;
  while q.count = 0 && not q.closed do
    Condition.wait q.nonempty q.mutex
  done;
  let v =
    if q.count = 0 then None
    else begin
      let v = q.ring.(q.head) in
      q.ring.(q.head) <- None;
      q.head <- (q.head + 1) mod Array.length q.ring;
      q.count <- q.count - 1;
      v
    end
  in
  Mutex.unlock q.mutex;
  v

(* [filter] keeps only elements satisfying [p] — the cancellation path
   for still-queued jobs.  Preserves order. *)
let filter q p =
  Mutex.lock q.mutex;
  let kept = ref [] in
  for i = 0 to q.count - 1 do
    match q.ring.((q.head + i) mod Array.length q.ring) with
    | Some v when p v -> kept := v :: !kept
    | _ -> ()
  done;
  Array.fill q.ring 0 (Array.length q.ring) None;
  q.head <- 0;
  let kept = List.rev !kept in
  List.iteri (fun i v -> q.ring.(i) <- Some v) kept;
  q.count <- List.length kept;
  Mutex.unlock q.mutex

let close q =
  Mutex.lock q.mutex;
  q.closed <- true;
  Condition.broadcast q.nonempty;
  Mutex.unlock q.mutex
