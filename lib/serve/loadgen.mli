(** The load generator behind [nfc loadgen] and the service benchmark:
    [concurrency] client threads drive [requests] sessions (POST, then
    poll the job to a terminal state on the same keep-alive connection)
    and report throughput and submit-to-terminal latency percentiles. *)

type cfg = {
  host : string;
  port : int;
  requests : int;
  concurrency : int;  (** client threads = max sessions in flight *)
  endpoint : string;  (** ["lint"], ["simulate"], ["fuzz"], … *)
  body : string;  (** JSON request body *)
  poll_interval : float;  (** seconds between status polls *)
}

(** 500 requests, 100 threads, [/v1/lint] on stop-and-wait. *)
val default_cfg : cfg

type stats = {
  requests : int;
  accepted : int;  (** reached a terminal job state *)
  completed : int;
  failed : int;
  cancelled : int;
  rejected : int;  (** 429 at admission *)
  transport_errors : int;
  elapsed : float;
  throughput : float;  (** requests resolved per second *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;  (** submit → terminal latency of completed jobs *)
}

(** [log] receives one line per transport error. *)
val run : ?log:(string -> unit) -> cfg -> stats

(** Zero dropped jobs: accepted + rejected = requests, no transport
    errors — the service's acceptance contract. *)
val check : stats -> bool

val json : stats -> Nfc_util.Json.t
val pp : Format.formatter -> stats -> unit
