(* The HTTP endpoints.

   Every POST endpoint decodes a JSON body (absent body = all defaults,
   but [protocol] is always required), clamps the exploration and
   iteration budgets so no request can park a worker domain on an
   unbounded analysis, registers a job and offers it to the admission
   queue: 202 with the job id on acceptance, 429 + [Retry-After] (and
   the registration undone) when the queue is full.

   Parameter names and defaults mirror the CLI flags of the
   corresponding [nfc] subcommand, and each compute closure runs the
   same code path the CLI runs — via {!Cache} for the memoizable
   analyses — so a served result is byte-identical to the CLI's output
   at the same parameters. *)

module J = Nfc_util.Json

type ctx = {
  table : Jobs.table;
  queue : Jobs.job Queue.t;
  cache : Cache.t;
  telemetry : Telemetry.t;
  n_workers : int;
  n_running : unit -> int;
}

let ( let* ) r k = match r with Ok v -> k v | Error _ as e -> e

let parse_body (req : Http.request) =
  if String.trim req.Http.body = "" then Ok (J.Obj [])
  else
    match J.of_string req.Http.body with
    | Ok j -> Ok j
    | Error msg -> Error ("invalid JSON body: " ^ msg)

(* Protocol resolution for job submissions.  Three name spaces:

   - registry names ("altbit", "gbn:4", ...) resolve as on the CLI;
   - "pdl:<digest>" handles resolve to protocols previously submitted
     via POST /v1/protocols — returned with their handle so the analysis
     caches key by content digest, never by the spec's self-declared
     name (which could collide with a builtin's resident context);
   - "file:PATH" is refused: the CLI loader reads the server's
     filesystem, which a network client must not be able to do. *)
let protocol_of ctx body =
  let* name = J.get_string "protocol" body in
  if String.length name >= 4 && String.sub name 0 4 = "pdl:" then
    match Cache.find_spec ctx.cache name with
    | Some proto -> Ok (proto, Some name)
    | None ->
        Error
          (Printf.sprintf
             "unknown protocol handle %S (submit the spec via POST /v1/protocols first)"
             name)
  else if String.length name >= 5 && String.sub name 0 5 = "file:" then
    Error "file: protocol sources are not served; POST the spec to /v1/protocols instead"
  else
    let* proto = Nfc_protocol.Registry.parse name in
    Ok (proto, None)

(* Clamp instead of reject: a client asking for a bigger budget than the
   service grants still gets a well-defined (smaller) analysis, and the
   job record names the actual parameters via the cache key. *)
let get_clamped ~lo ~hi ?default k body =
  let* v = J.get_int ?default k body in
  Ok (max lo (min hi v))

let chomp s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\n' then String.sub s 0 (n - 1) else s

let json_response ?headers status j =
  Http.response ?headers ~status (J.to_string j ^ "\n")

(* Register + offer to the bounded queue.  Acceptance is the only path
   that leaks a job id; rejection undoes the registration, so "every
   request resolves to a terminal job state or a 429" holds by
   construction. *)
let submit ctx ~kind ~protocol ~compute =
  let job = Jobs.submit ctx.table ~kind ~protocol ~compute in
  if Queue.try_push ctx.queue job then begin
    Telemetry.inc ctx.telemetry "nfc_jobs_submitted_total" [ ("kind", kind) ];
    json_response 202
      (J.Obj [ ("id", J.String job.Jobs.id); ("state", J.String "queued") ])
  end
  else begin
    Jobs.remove ctx.table job;
    Telemetry.inc ctx.telemetry "nfc_jobs_rejected_total" [ ("kind", kind) ];
    json_response 429
      ~headers:[ ("retry-after", "1") ]
      (J.Obj
         [
           ("error", J.String "admission queue full; retry later");
           ( "queue_capacity",
             J.Int (Queue.capacity ctx.queue) );
         ])
  end

let or_400 = function Ok resp -> resp | Error msg -> Router.json_error 400 msg

let check_cancelled cancelled = if cancelled () then raise Jobs.Cancelled_job

(* ------------------------------------------------------------ endpoints *)

let lint ctx : Router.handler =
 fun ~params:_ req ->
  or_400
    (let* body = parse_body req in
     let* proto, key = protocol_of ctx body in
     let* capacity = get_clamped ~lo:1 ~hi:8 ~default:2 "capacity" body in
     let* submits = get_clamped ~lo:0 ~hi:16 ~default:3 "submits" body in
     let* nodes = get_clamped ~lo:1 ~hi:2_000_000 ~default:100_000 "nodes" body in
     let* complete = J.get_bool ~default:false "complete" body in
     let* cover_nodes =
       get_clamped ~lo:1 ~hi:2_000_000 ~default:200_000 "cover_nodes" body
     in
     let* engine_domains = get_clamped ~lo:1 ~hi:8 ~default:1 "engine_domains" body in
     let* por = J.get_bool ~default:false "por" body in
     let* stab = J.get_bool ~default:false "stab" body in
     let cfg =
       {
         Nfc_lint.Checks.default_config with
         Nfc_lint.Checks.bounds =
           {
             Nfc_mcheck.Explore.capacity_tr = capacity;
             capacity_rt = capacity;
             submit_budget = submits;
             max_nodes = nodes;
             allow_drop = true;
             por;
           };
         complete;
         cover_max_nodes = cover_nodes;
         engine_domains;
       }
     in
     Ok
       (submit ctx ~kind:"lint" ~protocol:(Nfc_protocol.Spec.name proto)
          ~compute:(fun ~cancelled ->
            check_cancelled cancelled;
            (* The checkpoint rides into the exploration's B1/T1/Q1
               budget checks, so a cancel lands mid-BFS instead of
               waiting for the whole analysis.  Set here, not in [cfg]:
               each job must poll its own cancellation token. *)
            let cfg =
              {
                cfg with
                Nfc_lint.Checks.checkpoint = (fun () -> check_cancelled cancelled);
              }
            in
            let result = Cache.lint ?key ctx.cache proto cfg in
            (* The stabilization tier rides outside the cache (it is not
               part of the cache key) and runs at its own bounds — see
               [Nfc_lint.Stab_tier]. *)
            let result =
              if stab then Nfc_lint.Stab_tier.apply ~domains:engine_domains proto result
              else result
            in
            (* One line of [nfc lint --json], sans the newline. *)
            chomp (Nfc_lint.Report.jsonl [ result ]))))

let simulate ctx : Router.handler =
 fun ~params:_ req ->
  or_400
    (let* body = parse_body req in
     let* proto, _key = protocol_of ctx body in
     let* spec = J.get_string ~default:"reorder:0.8:0.05" "channel" body in
     let* factory = Nfc_channel.Policy.parse_factory spec in
     let* n = get_clamped ~lo:1 ~hi:10_000 ~default:10 "messages" body in
     let* pace = get_clamped ~lo:0 ~hi:1_000 ~default:3 "pace" body in
     let* seed = J.get_int ~default:1 "seed" body in
     let* max_rounds =
       get_clamped ~lo:1 ~hi:5_000_000 ~default:500_000 "max_rounds" body
     in
     Ok
       (submit ctx ~kind:"simulate" ~protocol:(Nfc_protocol.Spec.name proto)
          ~compute:(fun ~cancelled ->
            check_cancelled cancelled;
            let result =
              Nfc_sim.Harness.run proto
                {
                  Nfc_sim.Harness.default_config with
                  policy_tr = factory ();
                  policy_rt = factory ();
                  n_messages = n;
                  submit_every = pace;
                  seed;
                  record_trace = false;
                  max_rounds;
                  stall_rounds = Some 100_000;
                }
            in
            Nfc_sim.Metrics.to_json result.Nfc_sim.Harness.metrics)))

let fuzz ctx : Router.handler =
 fun ~params:_ req ->
  or_400
    (let* body = parse_body req in
     let* proto, _key = protocol_of ctx body in
     let* iterations =
       get_clamped ~lo:1 ~hi:1_000_000 ~default:50_000 "iterations" body
     in
     let* steps = get_clamped ~lo:1 ~hi:1_000 ~default:80 "steps" body in
     let* submits = get_clamped ~lo:1 ~hi:16 ~default:4 "submits" body in
     let* seed = J.get_int ~default:1 "seed" body in
     let* shrink = J.get_bool ~default:false "shrink" body in
     let* batches = get_clamped ~lo:1 ~hi:64 ~default:1 "batches" body in
     let cfg =
       {
         Nfc_fuzz.Campaign.default_cfg with
         Nfc_fuzz.Campaign.iterations;
         seed;
         shrink;
         batches;
         gen = { Nfc_fuzz.Gen.default_cfg with Nfc_fuzz.Gen.steps; submits };
       }
     in
     Ok
       (submit ctx ~kind:"fuzz" ~protocol:(Nfc_protocol.Spec.name proto)
          ~compute:(fun ~cancelled ->
            check_cancelled cancelled;
            Nfc_fuzz.Campaign.to_json (Nfc_fuzz.Campaign.run proto cfg))))

let boundness ctx : Router.handler =
 fun ~params:_ req ->
  or_400
    (let* body = parse_body req in
     let* proto, key = protocol_of ctx body in
     let* nodes = get_clamped ~lo:1 ~hi:2_000_000 ~default:30_000 "nodes" body in
     let* capacity = get_clamped ~lo:1 ~hi:8 ~default:2 "capacity" body in
     let* submits = get_clamped ~lo:0 ~hi:16 ~default:2 "submits" body in
     let* engine_domains = get_clamped ~lo:1 ~hi:8 ~default:1 "engine_domains" body in
     let* por = J.get_bool ~default:false "por" body in
     let explore =
       {
         Nfc_mcheck.Explore.capacity_tr = capacity;
         capacity_rt = capacity;
         submit_budget = submits;
         max_nodes = nodes;
         allow_drop = true;
         por;
       }
     in
     Ok
       (submit ctx ~kind:"boundness" ~protocol:(Nfc_protocol.Spec.name proto)
          ~compute:(fun ~cancelled ->
            check_cancelled cancelled;
            let report =
              Cache.boundness ?key ctx.cache proto ~domains:engine_domains
                ~checkpoint:(fun () -> check_cancelled cancelled)
                ~explore ~probe:Nfc_mcheck.Boundness.default_probe_bounds
            in
            J.to_string (Nfc_mcheck.Boundness.to_json report))))

let cover ctx : Router.handler =
 fun ~params:_ req ->
  or_400
    (let* body = parse_body req in
     let* proto, key = protocol_of ctx body in
     let* submits = get_clamped ~lo:0 ~hi:16 ~default:3 "submits" body in
     let* nodes =
       get_clamped ~lo:1 ~hi:2_000_000 ~default:200_000 "nodes" body
     in
     Ok
       (submit ctx ~kind:"cover" ~protocol:(Nfc_protocol.Spec.name proto)
          ~compute:(fun ~cancelled ->
            check_cancelled cancelled;
            let stats =
              Cache.cover ?key ctx.cache proto ~submit_budget:submits ~max_nodes:nodes
            in
            J.to_string (Nfc_absint.Cover.stats_to_json stats))))

(* ------------------------------------------------- submitted protocols *)

(* Big enough for any protocol in the paper's class, small enough that a
   hostile client cannot park megabytes in the spec store. *)
let max_spec_bytes = 64 * 1024

(* POST /v1/protocols — validate, compile and register a PDL definition.
   The body is either the raw .nfc text or a JSON envelope
   [{"spec": "..."}] (detected by a leading '{': PDL source always starts
   with a keyword or a comment).  The handle is derived from the source
   digest, so submission is idempotent: the same text always maps to the
   same handle, answered 201 on first registration and 200 after. *)
let protocol_submit ctx : Router.handler =
 fun ~params:_ req ->
  let body = req.Http.body in
  if String.length body > max_spec_bytes then begin
    Telemetry.inc ctx.telemetry "nfc_protocol_submissions_total"
      [ ("outcome", "too_large") ];
    Router.json_error 413
      (Printf.sprintf "spec too large (%d bytes; limit %d)" (String.length body)
         max_spec_bytes)
  end
  else
    let source =
      (* The JSON envelope may also carry ["refine": N] — the CEGAR
         round budget; raw-text submissions get the one-shot analysis. *)
      let t = String.trim body in
      if String.length t > 0 && t.[0] = '{' then
        match J.of_string body with
        | Ok j -> (
            match J.get_string "spec" j with
            | Error e -> Error e
            | Ok src -> (
                match get_clamped ~lo:0 ~hi:8 ~default:0 "refine" j with
                | Error e -> Error e
                | Ok refine -> Ok (src, refine)))
        | Error msg -> Error ("invalid JSON body: " ^ msg)
      else Ok (body, 0)
    in
    match source with
    | Error msg -> Router.json_error 400 msg
    | Ok (src, refine) -> (
        match Nfc_pdl.Pdl.compile_string src with
        | Error diags ->
            Telemetry.inc ctx.telemetry "nfc_protocol_submissions_total"
              [ ("outcome", "compile_error") ];
            json_response 400
              (J.Obj
                 [
                   ("error", J.String "spec does not compile");
                   ("diagnostics", Nfc_pdl.Pdl.diags_to_json diags);
                 ])
        | Ok c ->
            (* Compile-time static gate: the spec-level abstract
               interpreter runs in microseconds, so every submission is
               symbolically certified before registration.  A Fail
               finding (the symbolic packet alphabet escapes the declared
               families) refuses the spec outright — a client would
               otherwise store a protocol whose certificates can never be
               upgraded; Pass/Unknown findings ride along in the 201
               response as the "static" report.  With ["refine": N] the
               CEGAR loop runs first, so a concretely refuted candidate
               invariant (a located R1 fail) also refuses the spec, and
               both the 422 and the success response carry the per-round
               "refine" log. *)
            let rep, refined =
              if refine > 0 then
                let res =
                  Nfc_refine.Refine.run ~rounds:refine c.Nfc_pdl.Pdl.checked
                in
                (res.Nfc_refine.Refine.report, Some res)
              else (Nfc_specint.Specint.analyze c.Nfc_pdl.Pdl.checked, None)
            in
            let refine_json =
              match refined with
              | Some res -> [ ("refine", Nfc_refine.Refine.to_json res) ]
              | None -> []
            in
            let failed =
              List.filter
                (fun (f : Nfc_specint.Specint.finding) ->
                  f.Nfc_specint.Specint.verdict = Nfc_specint.Specint.Fail)
                rep.Nfc_specint.Specint.findings
            in
            if failed <> [] then begin
              Telemetry.inc ctx.telemetry "nfc_protocol_submissions_total"
                [ ("outcome", "static_refused") ];
              json_response 422
                (J.Obj
                   ([
                      ( "error",
                        J.String
                          "spec refused by the static certification gate" );
                     ( "findings",
                       J.List
                         (List.map
                            (fun (f : Nfc_specint.Specint.finding) ->
                              J.Obj
                                [
                                  ("rule", J.String f.Nfc_specint.Specint.rule);
                                  ( "message",
                                    J.String f.Nfc_specint.Specint.message );
                                ])
                             failed) );
                      ("static", Nfc_specint.Specint.to_json rep);
                    ]
                   @ refine_json))
            end
            else
              let handle = "pdl:" ^ c.Nfc_pdl.Pdl.digest in
              let status, outcome =
                match Cache.register_spec ctx.cache ~handle c.Nfc_pdl.Pdl.spec with
                | `New -> (201, "created")
                | `Cached -> (200, "cached")
              in
              Telemetry.inc ctx.telemetry "nfc_protocol_submissions_total"
                [ ("outcome", outcome) ];
              json_response status
                (J.Obj
                   ([
                      ("handle", J.String handle);
                      ("protocol", J.String (Nfc_protocol.Spec.name c.Nfc_pdl.Pdl.spec));
                      ("digest", J.String c.Nfc_pdl.Pdl.digest);
                      ("warnings", Nfc_pdl.Pdl.diags_to_json c.Nfc_pdl.Pdl.warnings);
                      ("static", Nfc_specint.Specint.to_json rep);
                    ]
                   @ refine_json)))

let protocol_list ctx : Router.handler =
 fun ~params:_ _req ->
  json_response 200
    (J.Obj
       [
         ( "builtin",
           J.List
             (List.map
                (fun (e : Nfc_protocol.Registry.entry) ->
                  J.String e.Nfc_protocol.Registry.key)
                Nfc_protocol.Registry.all) );
         ( "submitted",
           J.List (List.map (fun h -> J.String h) (Cache.spec_handles ctx.cache)) );
       ])

(* ----------------------------------------------------------- job status *)

let job_get ctx : Router.handler =
 fun ~params _req ->
  let id = List.assoc "id" params in
  match Jobs.find ctx.table id with
  | None -> Router.json_error 404 (Printf.sprintf "no such job: %s" id)
  | Some job -> json_response 200 (Jobs.json ctx.table job)

(* The stored result document, verbatim — the byte-identity endpoint the
   end-to-end test and the CI smoke compare against CLI output. *)
let job_result ctx : Router.handler =
 fun ~params _req ->
  let id = List.assoc "id" params in
  match Jobs.find ctx.table id with
  | None -> Router.json_error 404 (Printf.sprintf "no such job: %s" id)
  | Some job -> (
      match Jobs.peek ctx.table job with
      | _, Some doc, _ -> Http.response ~status:200 (doc ^ "\n")
      | Jobs.Failed, None, err ->
          Router.json_error 500 (Option.value err ~default:"job failed")
      | state, None, _ ->
          Router.json_error 409
            (Printf.sprintf "job %s is %s; no result yet" id
               (Jobs.state_name state)))

let job_cancel ctx : Router.handler =
 fun ~params _req ->
  let id = List.assoc "id" params in
  match Jobs.request_cancel ctx.table id with
  | Jobs.Not_found -> Router.json_error 404 (Printf.sprintf "no such job: %s" id)
  | Jobs.Cancelled_queued ->
      (* Pull it out of the admission queue too, so a worker never even
         pops it. *)
      Queue.filter ctx.queue (fun (j : Jobs.job) -> j.Jobs.id <> id);
      json_response 200
        (J.Obj [ ("id", J.String id); ("state", J.String "cancelled") ])
  | Jobs.Cancelling_running ->
      json_response 202
        (J.Obj [ ("id", J.String id); ("state", J.String "cancelling") ])
  | Jobs.Already_terminal ->
      let state =
        match Jobs.find ctx.table id with
        | Some job ->
            let s, _, _ = Jobs.peek ctx.table job in
            Jobs.state_name s
        | None -> "gone"
      in
      json_response 200 (J.Obj [ ("id", J.String id); ("state", J.String state) ])

(* ------------------------------------------------------ health, metrics *)

let healthz ctx : Router.handler =
 fun ~params:_ _req ->
  let q, r, d, f, c = Jobs.counts ctx.table in
  json_response 200
    (J.Obj
       [
         ("status", J.String "ok");
         ("workers", J.Int ctx.n_workers);
         ("running", J.Int (ctx.n_running ()));
         ("queue_depth", J.Int (Queue.depth ctx.queue));
         ("queue_capacity", J.Int (Queue.capacity ctx.queue));
         ( "jobs",
           J.Obj
             [
               ("queued", J.Int q);
               ("running", J.Int r);
               ("done", J.Int d);
               ("failed", J.Int f);
               ("cancelled", J.Int c);
             ] );
         ( "resident_protocols",
           J.List (List.map (fun p -> J.String p) (Cache.protocols ctx.cache)) );
       ])

let metrics ctx : Router.handler =
 fun ~params:_ _req ->
  let gauges =
    [
      ("nfc_queue_depth", float_of_int (Queue.depth ctx.queue));
      ("nfc_queue_capacity", float_of_int (Queue.capacity ctx.queue));
      ("nfc_jobs_running", float_of_int (ctx.n_running ()));
      ("nfc_workers", float_of_int ctx.n_workers);
      ("nfc_protocols_resident", float_of_int (Cache.spec_count ctx.cache));
    ]
  in
  Http.response ~content_type:"text/plain; version=0.0.4" ~status:200
    (Telemetry.render ctx.telemetry ~gauges)

let routes ctx =
  [
    Router.route "POST" "/v1/lint" (lint ctx);
    Router.route "POST" "/v1/simulate" (simulate ctx);
    Router.route "POST" "/v1/fuzz" (fuzz ctx);
    Router.route "POST" "/v1/boundness" (boundness ctx);
    Router.route "POST" "/v1/cover" (cover ctx);
    Router.route "POST" "/v1/protocols" (protocol_submit ctx);
    Router.route "GET" "/v1/protocols" (protocol_list ctx);
    Router.route "GET" "/v1/jobs/:id" (job_get ctx);
    Router.route "GET" "/v1/jobs/:id/result" (job_result ctx);
    Router.route "DELETE" "/v1/jobs/:id" (job_cancel ctx);
    Router.route "GET" "/healthz" (healthz ctx);
    Router.route "GET" "/metrics" (metrics ctx);
  ]
