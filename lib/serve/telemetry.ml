(* Service telemetry in Prometheus text exposition format.

   A tiny generic core — mutex-protected counter and histogram maps keyed
   by (metric, rendered labels) — under a fixed catalogue of metric
   names, so /metrics always emits well-formed HELP/TYPE blocks and a
   typo'd metric name fails at the call site in tests rather than
   producing a silently unscrapeable series.  Gauges are sampled at
   render time from the server (queue depth is the queue's, not a shadow
   copy that could drift). *)

(* Latency buckets in seconds: sub-millisecond cache hits through
   multi-second cold analyses. *)
let buckets =
  [| 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 30.0 |]

type hist = { counts : int array; mutable sum : float; mutable total : int }

type t = {
  mutex : Mutex.t;
  counters : (string * string, float ref) Hashtbl.t;
  hists : (string * string, hist) Hashtbl.t;
  started_at : float;
}

let create () =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 64;
    hists = Hashtbl.create 16;
    started_at = Unix.gettimeofday ();
  }

(* The catalogue: every metric this service may emit.  [`Counter] and
   [`Histogram] series appear once touched; gauges are always present. *)
let catalogue =
  [
    ("nfc_http_requests_total", `Counter, "HTTP requests served, by method, path pattern and status");
    ("nfc_http_request_seconds", `Histogram, "Wall-clock seconds spent serving an HTTP request");
    ("nfc_jobs_submitted_total", `Counter, "Jobs admitted into the queue, by kind");
    ("nfc_jobs_completed_total", `Counter, "Jobs reaching a terminal state, by kind and state");
    ("nfc_jobs_rejected_total", `Counter, "Submissions refused with 429 (queue full)");
    ("nfc_job_queue_wait_seconds", `Histogram, "Seconds a job waited in the queue before a worker picked it up");
    ("nfc_job_run_seconds", `Histogram, "Seconds a worker spent computing a job, by kind");
    ("nfc_cache_requests_total", `Counter, "Analysis-cache lookups, by outcome (hit|miss)");
    ( "nfc_protocol_submissions_total",
      `Counter,
      "POST /v1/protocols submissions, by outcome (created|cached|compile_error|too_large)" );
    ("nfc_protocols_resident", `Gauge, "User-submitted protocols currently registered");
    ("nfc_queue_depth", `Gauge, "Jobs currently waiting in the admission queue");
    ("nfc_queue_capacity", `Gauge, "Admission queue capacity");
    ("nfc_jobs_running", `Gauge, "Jobs currently executing on worker domains");
    ("nfc_workers", `Gauge, "Worker domains");
    ("nfc_uptime_seconds", `Gauge, "Seconds since the service started");
  ]

let known name = List.exists (fun (n, _, _) -> n = name) catalogue

let escape_label v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)
      ^ "}"

let inc ?(by = 1.) t name labels =
  assert (known name);
  let key = (name, render_labels labels) in
  Mutex.lock t.mutex;
  (match Hashtbl.find_opt t.counters key with
  | Some r -> r := !r +. by
  | None -> Hashtbl.replace t.counters key (ref by));
  Mutex.unlock t.mutex

let observe t name labels v =
  assert (known name);
  let key = (name, render_labels labels) in
  Mutex.lock t.mutex;
  let h =
    match Hashtbl.find_opt t.hists key with
    | Some h -> h
    | None ->
        let h = { counts = Array.make (Array.length buckets) 0; sum = 0.; total = 0 } in
        Hashtbl.replace t.hists key h;
        h
  in
  Array.iteri (fun i le -> if v <= le then h.counts.(i) <- h.counts.(i) + 1) buckets;
  h.sum <- h.sum +. v;
  h.total <- h.total + 1;
  Mutex.unlock t.mutex

(* Bound the path-label cardinality: job polls all collapse onto the
   route pattern, not one series per job id. *)
let path_label path =
  match String.split_on_char '/' path |> List.filter (fun s -> s <> "") with
  | [ "v1"; "jobs"; _ ] -> "/v1/jobs/:id"
  | [ "v1"; "jobs"; _; "result" ] -> "/v1/jobs/:id/result"
  | _ -> path

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render t ~gauges =
  let buf = Buffer.create 4096 in
  let uptime = Unix.gettimeofday () -. t.started_at in
  let gauges = ("nfc_uptime_seconds", uptime) :: gauges in
  Mutex.lock t.mutex;
  List.iter
    (fun (name, kind, help) ->
      let series =
        match kind with
        | `Gauge -> List.filter (fun (n, _) -> n = name) gauges <> []
        | `Counter -> Hashtbl.fold (fun (n, _) _ acc -> acc || n = name) t.counters false
        | `Histogram -> Hashtbl.fold (fun (n, _) _ acc -> acc || n = name) t.hists false
      in
      if series then begin
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" name
             (match kind with `Gauge -> "gauge" | `Counter -> "counter" | `Histogram -> "histogram"));
        match kind with
        | `Gauge ->
            List.iter
              (fun (n, v) ->
                if n = name then Buffer.add_string buf (Printf.sprintf "%s %s\n" name (float_str v)))
              gauges
        | `Counter ->
            let rows =
              Hashtbl.fold
                (fun (n, lbl) r acc -> if n = name then (lbl, !r) :: acc else acc)
                t.counters []
            in
            List.iter
              (fun (lbl, v) -> Buffer.add_string buf (Printf.sprintf "%s%s %s\n" name lbl (float_str v)))
              (List.sort compare rows)
        | `Histogram ->
            let rows =
              Hashtbl.fold
                (fun (n, lbl) h acc -> if n = name then (lbl, h) :: acc else acc)
                t.hists []
            in
            List.iter
              (fun (lbl, h) ->
                (* Splice [le] into the possibly-empty label set. *)
                let with_le le =
                  let le = Printf.sprintf "le=\"%s\"" le in
                  if lbl = "" then "{" ^ le ^ "}"
                  else String.sub lbl 0 (String.length lbl - 1) ^ "," ^ le ^ "}"
                in
                Array.iteri
                  (fun i b ->
                    Buffer.add_string buf
                      (Printf.sprintf "%s_bucket%s %d\n" name (with_le (float_str b)) h.counts.(i)))
                  buckets;
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" name (with_le "+Inf") h.total);
                Buffer.add_string buf (Printf.sprintf "%s_sum%s %s\n" name lbl (float_str h.sum));
                Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" name lbl h.total))
              (List.sort compare rows)
      end)
    catalogue;
  Mutex.unlock t.mutex;
  Buffer.contents buf
