(* Method + path-pattern dispatch.  Patterns are slash-separated literals
   with [:name] segments binding path parameters ("/v1/jobs/:id"); a
   matched route's handler receives the bindings.  Unknown path -> 404,
   known path with the wrong method -> 405 (with [allow]), so clients can
   tell a typo from a misuse. *)

type handler = params:(string * string) list -> Http.request -> Http.response

type route = { meth : string; segments : string list; handler : handler }

let split_path p =
  String.split_on_char '/' p |> List.filter (fun s -> s <> "")

let route meth pattern handler = { meth; segments = split_path pattern; handler }

let match_segments pattern actual =
  let rec go acc pattern actual =
    match (pattern, actual) with
    | [], [] -> Some (List.rev acc)
    | p :: ps, a :: asegs when String.length p > 0 && p.[0] = ':' ->
        go ((String.sub p 1 (String.length p - 1), a) :: acc) ps asegs
    | p :: ps, a :: asegs when p = a -> go acc ps asegs
    | _ -> None
  in
  go [] pattern actual

let json_error status msg =
  Http.response ~status
    (Nfc_util.Json.to_string (Nfc_util.Json.Obj [ ("error", Nfc_util.Json.String msg) ]))

let dispatch routes (req : Http.request) =
  let actual = split_path req.path in
  let matching = List.filter (fun r -> match_segments r.segments actual <> None) routes in
  match List.find_opt (fun r -> r.meth = req.meth) matching with
  | Some r -> (
      let params = Option.get (match_segments r.segments actual) in
      match r.handler ~params req with
      | resp -> resp
      | exception e ->
          json_error 500 (Printf.sprintf "internal error: %s" (Printexc.to_string e)))
  | None when matching <> [] ->
      let allow = String.concat ", " (List.map (fun r -> r.meth) matching) in
      { (json_error 405 "method not allowed") with
        Http.headers =
          ("allow", allow) :: (json_error 405 "").Http.headers }
  | None -> json_error 404 (Printf.sprintf "no such endpoint: %s" req.path)
