(** Service telemetry, exposed at [/metrics] in Prometheus text format.

    A mutex-protected registry under a fixed catalogue of metric names
    (counters, histograms, render-time gauges) — an unknown name is an
    assertion failure at the call site, never a silently unscrapeable
    series. *)

type t

val create : unit -> t

(** Histogram bucket upper bounds, in seconds. *)
val buckets : float array

(** [inc t name labels] adds [by] (default 1) to a counter series. *)
val inc : ?by:float -> t -> string -> (string * string) list -> unit

(** [observe t name labels seconds] records a histogram observation. *)
val observe : t -> string -> (string * string) list -> float -> unit

(** Collapse high-cardinality paths onto their route pattern
    ([/v1/jobs/j42] → [/v1/jobs/:id]) before using them as label values. *)
val path_label : string -> string

(** The full exposition.  [gauges] are sampled by the caller at scrape
    time (queue depth, running jobs, …); [nfc_uptime_seconds] is added
    automatically. *)
val render : t -> gauges:(string * float) list -> string
