(** Bounded admission queue — the service's backpressure point.

    Admission never blocks: a full queue rejects immediately and the
    handler answers 429 with [Retry-After].  Every {e accepted} job has a
    slot until a worker pops it, so accepted work is never dropped —
    the acceptance contract "every request resolves to a terminal job
    state or a 429" rests on this module. *)

type 'a t

(** [create ~capacity] — fixed capacity, [>= 1]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int

(** Current number of queued elements (the [/metrics] queue-depth gauge). *)
val depth : 'a t -> int

(** [false] when full or closed — never blocks. *)
val try_push : 'a t -> 'a -> bool

(** Block until an element is available; [None] once the queue is closed
    and drained — the workers' shutdown signal. *)
val pop : 'a t -> 'a option

(** Drop queued elements failing the predicate (job cancellation). *)
val filter : 'a t -> ('a -> bool) -> unit

(** Wake every blocked [pop]; subsequent pushes are rejected. *)
val close : 'a t -> unit
