(** HTTP/1.1 framing over blocking Unix file descriptors.

    Request line + headers + [Content-Length] body; no chunked encoding
    (every peer is this module).  Server loop, loadgen client and the
    end-to-end tests all go through here, so the wire format has exactly
    one implementation. *)

type request = {
  meth : string;  (** verbatim, e.g. ["POST"] *)
  target : string;  (** raw request target, query string included *)
  path : string;  (** [target] up to the first [?] *)
  headers : (string * string) list;  (** keys lowercased, values trimmed *)
  body : string;
}

type response = { status : int; headers : (string * string) list; body : string }

type error =
  | Eof  (** clean close before the next request — end the keep-alive loop *)
  | Bad_request of string  (** respond 400 *)
  | Too_large  (** head or body over the cap — respond 413 *)

(** A buffered connection; bytes read past one message wait for the next
    (keep-alive) message on the same socket. *)
type conn

val conn : Unix.file_descr -> conn

(** Read one request.  [max_body] (default 8 MiB) caps the declared
    [Content-Length]; the head is capped at 16 KiB. *)
val read_request : ?max_body:int -> conn -> (request, error) result

(** Case-insensitive header lookup (keys are stored lowercased). *)
val header : string -> (string * string) list -> string option

val status_reason : int -> string

(** [response ~status body] with [content-type: application/json] unless
    overridden. *)
val response :
  ?headers:(string * string) list -> ?content_type:string -> status:int -> string -> response

(** Serialize and send; appends [content-length] and [connection] headers. *)
val write_response : Unix.file_descr -> keep_alive:bool -> response -> unit

(** HTTP/1.1 defaults to keep-alive; [connection: close] opts out. *)
val wants_keep_alive : request -> bool

(** {1 Client side} — used by [nfc loadgen], the smoke script's peers and
    the end-to-end tests. *)

(** One round trip on a connected [conn]: write the request, read the
    response as [(status, headers, body)]. *)
val call :
  conn ->
  meth:string ->
  target:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  unit ->
  (int * (string * string) list * string, string) result
