(* The shared read-only analysis cache — why a resident verifier beats
   one-shot CLI runs.

   Each protocol gets one resident context, created on first use and
   kept for the life of the daemon:

   - [B = Boundness.Make (P)] owns the protocol's exploration engine
     [B.E]: state interners, the packet-alphabet index and the
     per-(state, input) transition memos persist across requests, so a
     transition computed for request 1 is never recomputed for request
     500.
   - [C = Cover.Make (P) (B.E)] shares that engine instance, so the
     Karp–Miller fixpoint reuses the same interned ids and memos.
   - Ungated reachable sets are memoized per {!Explore.bounds_key}; a
     boundness request at bounds the context has already explored skips
     its BFS entirely (and [B.measure ~reach] skips the gated pass when
     the reach is phantom-free).
   - Converged covers and full reports (lint results, boundness reports,
     cover stats) are memoized per parameter fingerprint.

   Identity with the CLI: every analysis here is deterministic in its
   parameters and runs the {e same} code the CLI runs ([Engine.run],
   [Boundness.measure], [Cover.run]) — a memo hit returns the value an
   identical cold run would have produced, so served lint verdicts are
   byte-identical to [nfc lint] output on the same protocol and bounds
   (the end-to-end test and the CI smoke assert exactly this).

   Concurrency: engine instances are mutable and single-domain, so each
   context carries a lock serialising its analyses; requests for
   {e different} protocols proceed in parallel on different workers, and
   memo hits only hold the lock for the lookup. *)

module Explore = Nfc_mcheck.Explore
module Boundness = Nfc_mcheck.Boundness
module Cover = Nfc_absint.Cover

type entry = {
  lock : Mutex.t;
  mutable lint_memo : (string * Nfc_lint.Engine.result) list;
  mutable bound_memo : (string * Boundness.report) list;
  mutable cover_memo : (string * Cover.stats) list;
  bound_run :
    domains:int ->
    checkpoint:(unit -> unit) ->
    Explore.bounds ->
    Boundness.probe_bounds ->
    Boundness.report;
  cover_run : submit_budget:int -> max_nodes:int -> Cover.stats;
}

type t = {
  mutex : Mutex.t;
  entries : (string, entry) Hashtbl.t;
  specs : (string, Nfc_protocol.Spec.t) Hashtbl.t;
      (* user-submitted PDL protocols, keyed by their "pdl:<digest>" handle *)
  on_lookup : hit:bool -> unit;
}

let create ?(on_lookup = fun ~hit:_ -> ()) () =
  {
    mutex = Mutex.create ();
    entries = Hashtbl.create 16;
    specs = Hashtbl.create 16;
    on_lookup;
  }

let make_entry proto =
  let module P = (val proto : Nfc_protocol.Spec.S) in
  let module B = Boundness.Make (P) in
  let module C = Cover.Make (P) (B.E) in
  let reach_memo : (string, B.E.reach) Hashtbl.t = Hashtbl.create 4 in
  (* Keyed by bounds alone, NOT by domain count: the intra-search engine
     is byte-deterministic at any count, so a reach computed at
     [domains=4] is the one a sequential run would have produced. *)
  let reach ~domains ~checkpoint bounds =
    let key = Explore.bounds_key bounds in
    match Hashtbl.find_opt reach_memo key with
    | Some r -> r
    | None ->
        let r = B.E.reachable_set ~domains ~checkpoint bounds in
        Hashtbl.add reach_memo key r;
        r
  in
  {
    lock = Mutex.create ();
    lint_memo = [];
    bound_memo = [];
    cover_memo = [];
    bound_run =
      (fun ~domains ~checkpoint explore probe ->
        B.measure ~domains ~checkpoint
          ~reach:(reach ~domains ~checkpoint explore)
          ~explore ~probe_bounds:probe ());
    cover_run = (fun ~submit_budget ~max_nodes -> C.run ~max_nodes ~submit_budget ());
  }

(* Contexts are keyed by the protocol's canonical name, so aliases
   ("altbit", "alternating-bit") and equal-parameter constructions share
   one resident engine.  User-submitted PDL protocols pass [?key] — their
   content-digest handle — instead: a submitted spec that happens to be
   *named* "stop-and-wait" must not poison the builtin's resident context
   (nor be poisoned by it). *)
let entry ?key t proto =
  let name = match key with Some k -> k | None -> Nfc_protocol.Spec.name proto in
  Mutex.lock t.mutex;
  let e =
    match Hashtbl.find_opt t.entries name with
    | Some e -> e
    | None ->
        let e = make_entry proto in
        Hashtbl.add t.entries name e;
        e
  in
  Mutex.unlock t.mutex;
  e

(* ------------------------------------------- user-submitted protocols *)

let register_spec t ~handle spec =
  Mutex.lock t.mutex;
  let outcome =
    if Hashtbl.mem t.specs handle then `Cached
    else begin
      Hashtbl.add t.specs handle spec;
      `New
    end
  in
  Mutex.unlock t.mutex;
  outcome

let find_spec t handle =
  Mutex.lock t.mutex;
  let r = Hashtbl.find_opt t.specs handle in
  Mutex.unlock t.mutex;
  r

let spec_handles t =
  Mutex.lock t.mutex;
  let hs = Hashtbl.fold (fun k _ acc -> k :: acc) t.specs [] in
  Mutex.unlock t.mutex;
  List.sort compare hs

let spec_count t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.specs in
  Mutex.unlock t.mutex;
  n

let protocols t =
  Mutex.lock t.mutex;
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) t.entries [] in
  Mutex.unlock t.mutex;
  List.sort compare names

(* Memoize [compute] under [e.lock].  The lock spans the computation on
   purpose: two concurrent first requests for the same (protocol, key)
   must not race the shared engine — the second waits and then hits. *)
let memoized t e get set key compute =
  Mutex.lock e.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock e.lock)
    (fun () ->
      match List.assoc_opt key (get ()) with
      | Some v ->
          t.on_lookup ~hit:true;
          v
      | None ->
          t.on_lookup ~hit:false;
          let v = compute () in
          set ((key, v) :: get ());
          v)

(* [engine_domains] is in the key even though verdicts are
   domain-invariant: it appears verbatim in the emitted certificate, so a
   hit across counts would report the wrong provenance.  [checkpoint] is
   excluded — it can only abort a computation, never change its value
   (an aborted compute is not memoized at all). *)
let lint_key (cfg : Nfc_lint.Checks.config) =
  Printf.sprintf "%s/p%d:%d/mp%d/f%s/ms%d/w%d/c%b/cn%d/d%d"
    (Explore.bounds_key cfg.bounds)
    cfg.probe.Boundness.max_nodes cfg.probe.Boundness.max_cost cfg.max_probes
    (String.concat "," (List.map string_of_int cfg.fault_packets))
    cfg.max_probe_states cfg.max_witnesses cfg.complete cfg.cover_max_nodes
    cfg.engine_domains

let lint ?key t proto cfg =
  let e = entry ?key t proto in
  memoized t e
    (fun () -> e.lint_memo)
    (fun m -> e.lint_memo <- m)
    (lint_key cfg)
    (fun () -> Nfc_lint.Engine.run cfg proto)

let boundness ?key t proto ~domains ~checkpoint ~explore ~probe =
  let e = entry ?key t proto in
  let key =
    Printf.sprintf "%s/p%d:%d/d%d" (Explore.bounds_key explore)
      probe.Boundness.max_nodes probe.Boundness.max_cost domains
  in
  memoized t e
    (fun () -> e.bound_memo)
    (fun m -> e.bound_memo <- m)
    key
    (fun () -> e.bound_run ~domains ~checkpoint explore probe)

let cover ?key t proto ~submit_budget ~max_nodes =
  let e = entry ?key t proto in
  let key = Printf.sprintf "s%d/n%d" submit_budget max_nodes in
  memoized t e
    (fun () -> e.cover_memo)
    (fun m -> e.cover_memo <- m)
    key
    (fun () -> e.cover_run ~submit_budget ~max_nodes)
