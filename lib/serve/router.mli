(** Method + path-pattern request dispatch for {!Server}. *)

type handler = params:(string * string) list -> Http.request -> Http.response

type route

(** [route "GET" "/v1/jobs/:id" h] — [:name] segments bind path
    parameters, delivered to [h] as [~params]. *)
val route : string -> string -> handler -> route

(** First route whose pattern and method both match wins.  Pattern match
    without a method match is 405 (with an [allow] header); no pattern
    match is 404; an escaping handler exception is a 500 with the
    exception text — a bad request must never tear down the connection
    loop, let alone the daemon. *)
val dispatch : route list -> Http.request -> Http.response

(** [json_error status msg] — [{"error": msg}] with the given status. *)
val json_error : int -> string -> Http.response
