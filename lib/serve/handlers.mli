(** The HTTP endpoints behind {!Server}.

    POST [/v1/lint], [/v1/simulate], [/v1/fuzz], [/v1/boundness] and
    [/v1/cover] decode a JSON body whose field names and defaults mirror
    the corresponding [nfc] subcommand's flags ([protocol] is required),
    clamp every budget, and submit a job: 202 with the job id, or 429
    with [Retry-After] when the admission queue is full.

    GET [/v1/jobs/:id] polls status; GET [/v1/jobs/:id/result] serves the
    stored result document verbatim (the byte-identity endpoint);
    DELETE [/v1/jobs/:id] cancels.  GET [/healthz] and GET [/metrics]
    report service state, the latter in Prometheus text format. *)

type ctx = {
  table : Jobs.table;
  queue : Jobs.job Queue.t;
  cache : Cache.t;
  telemetry : Telemetry.t;
  n_workers : int;
  n_running : unit -> int;  (** sampled at scrape time *)
}

val routes : ctx -> Router.route list
