(** The shared read-only analysis cache behind the service handlers.

    One resident context per protocol: the exploration engine (state
    interners, packet index, transition memos) and its sibling
    Karp–Miller engine persist across requests, with reachable sets,
    converged covers and whole reports memoized per parameter
    fingerprint — the amortization that makes a resident verifier faster
    than per-invocation CLI runs.

    Every cached analysis runs the same deterministic code path as the
    CLI ({!Nfc_lint.Engine.run}, {!Nfc_mcheck.Boundness.measure},
    {!Nfc_absint.Cover.Make}), so a memo hit returns exactly the value a
    cold run would have produced: served lint verdicts are byte-identical
    to [nfc lint] CLI output at the same parameters.

    Thread-safe: per-protocol locks serialise analyses on one protocol
    (the first request computes while duplicates wait, then hit);
    different protocols proceed in parallel. *)

type t

(** [on_lookup] fires per memoized lookup (telemetry). *)
val create : ?on_lookup:(hit:bool -> unit) -> unit -> t

(** Canonical names of the protocols with resident contexts so far. *)
val protocols : t -> string list

(** The full lint analysis — the value behind one line of
    [nfc lint --json]. *)
val lint : t -> Nfc_protocol.Spec.t -> Nfc_lint.Checks.config -> Nfc_lint.Engine.result

val boundness :
  t ->
  Nfc_protocol.Spec.t ->
  explore:Nfc_mcheck.Explore.bounds ->
  probe:Nfc_mcheck.Boundness.probe_bounds ->
  Nfc_mcheck.Boundness.report

val cover :
  t -> Nfc_protocol.Spec.t -> submit_budget:int -> max_nodes:int -> Nfc_absint.Cover.stats
