(** The shared read-only analysis cache behind the service handlers.

    One resident context per protocol: the exploration engine (state
    interners, packet index, transition memos) and its sibling
    Karp–Miller engine persist across requests, with reachable sets,
    converged covers and whole reports memoized per parameter
    fingerprint — the amortization that makes a resident verifier faster
    than per-invocation CLI runs.

    Every cached analysis runs the same deterministic code path as the
    CLI ({!Nfc_lint.Engine.run}, {!Nfc_mcheck.Boundness.measure},
    {!Nfc_absint.Cover.Make}), so a memo hit returns exactly the value a
    cold run would have produced: served lint verdicts are byte-identical
    to [nfc lint] CLI output at the same parameters.

    Thread-safe: per-protocol locks serialise analyses on one protocol
    (the first request computes while duplicates wait, then hit);
    different protocols proceed in parallel. *)

type t

(** [on_lookup] fires per memoized lookup (telemetry). *)
val create : ?on_lookup:(hit:bool -> unit) -> unit -> t

(** Canonical names of the protocols with resident contexts so far. *)
val protocols : t -> string list

(** Store a user-submitted compiled protocol under its content-digest
    handle ("pdl:<md5hex>").  [`Cached] means the handle was already
    registered (idempotent resubmission). *)
val register_spec : t -> handle:string -> Nfc_protocol.Spec.t -> [ `New | `Cached ]

(** Resolve a previously registered handle. *)
val find_spec : t -> string -> Nfc_protocol.Spec.t option

(** All registered handles, sorted. *)
val spec_handles : t -> string list

(** Number of registered user protocols (the resident-protocols gauge). *)
val spec_count : t -> int

(** The full lint analysis — the value behind one line of
    [nfc lint --json].  [?key] overrides the resident-context key (used
    for user-submitted protocols, keyed by handle rather than by their
    self-declared name). *)
val lint :
  ?key:string -> t -> Nfc_protocol.Spec.t -> Nfc_lint.Checks.config -> Nfc_lint.Engine.result

(** [domains] is the intra-search parallelism for a cache miss (memo keys
    include it because the report records it as provenance); [checkpoint]
    is the requester's cancellation hook, called from inside the
    exploration on a miss and never on a hit. *)
val boundness :
  ?key:string ->
  t ->
  Nfc_protocol.Spec.t ->
  domains:int ->
  checkpoint:(unit -> unit) ->
  explore:Nfc_mcheck.Explore.bounds ->
  probe:Nfc_mcheck.Boundness.probe_bounds ->
  Nfc_mcheck.Boundness.report

val cover :
  ?key:string ->
  t ->
  Nfc_protocol.Spec.t ->
  submit_budget:int ->
  max_nodes:int ->
  Nfc_absint.Cover.stats
