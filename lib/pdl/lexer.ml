(* Hand-rolled lexer: tokens with 1-based line/column spans, [//]
   comments, double-quoted strings with escapes.  Never raises — the one
   failure mode is a located [Diag.t]. *)

type tok =
  | Tint of int
  | Tident of string  (* identifiers and keywords alike *)
  | Tstring of string
  | Tsym of string
  | Teof

type token = { tok : tok; span : Diag.span }

let keywords =
  [
    "protocol"; "describe"; "const"; "packets"; "sender"; "receiver"; "var";
    "counter"; "queue"; "saturate"; "bool"; "on"; "poll"; "when"; "submit";
    "send"; "from"; "deliver"; "push"; "true"; "false"; "budget";
  ]

let is_keyword s = List.mem s keywords

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(* Two-character symbols first so ".." beats "." (which is not a token at
   all) and "<=" beats "<". *)
let sym2 = [ ".."; "->"; "&&"; "||"; "=="; "!="; "<="; ">="; "+="; "-=" ]

let sym1 = [ "{"; "}"; "("; ")"; ":"; ";"; "="; "<"; ">"; "+"; "-"; "*"; "!" ]

let tokenize (src : string) : (token list, Diag.t) result =
  let n = String.length src in
  let pos = ref 0 in
  let line = ref 1 in
  let col = ref 1 in
  let here () = Diag.pos ~line:!line ~col:!col in
  let advance () =
    (if !pos < n then
       match src.[!pos] with
       | '\n' ->
           incr line;
           col := 1
       | _ -> incr col);
    incr pos
  in
  let acc = ref [] in
  let err = ref None in
  let fail first msg = err := Some (Diag.error (Diag.span first (here ())) msg) in
  let push first tok = acc := { tok; span = Diag.span first (here ()) } :: !acc in
  while !err = None && !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && !pos + 1 < n && src.[!pos + 1] = '/' then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if is_ident_start c then begin
      let first = here () in
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        advance ()
      done;
      push first (Tident (String.sub src start (!pos - start)))
    end
    else if is_digit c then begin
      let first = here () in
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        advance ()
      done;
      let text = String.sub src start (!pos - start) in
      match int_of_string_opt text with
      | Some v -> push first (Tint v)
      | None -> fail first (Printf.sprintf "integer literal %s is out of range" text)
    end
    else if c = '"' then begin
      let first = here () in
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !err = None && !pos < n do
        match src.[!pos] with
        | '"' ->
            advance ();
            closed := true
        | '\n' -> fail first "unterminated string literal"
        | '\\' ->
            advance ();
            if !pos >= n then fail first "unterminated string literal"
            else begin
              (match src.[!pos] with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | c -> fail first (Printf.sprintf "unknown escape \\%c in string" c));
              if !err = None then advance ()
            end
        | c ->
            Buffer.add_char buf c;
            advance ()
      done;
      if !err = None then
        if !closed then push first (Tstring (Buffer.contents buf))
        else fail first "unterminated string literal"
    end
    else begin
      let first = here () in
      let two = if !pos + 2 <= n then String.sub src !pos 2 else "" in
      if List.mem two sym2 then begin
        advance ();
        advance ();
        push first (Tsym two)
      end
      else
        let one = String.make 1 c in
        if List.mem one sym1 then begin
          advance ();
          push first (Tsym one)
        end
        else fail first (Printf.sprintf "unexpected character %C" c)
    end
  done;
  match !err with
  | Some d -> Error d
  | None ->
      let eof = { tok = Teof; span = Diag.point (here ()) } in
      Ok (List.rev (eof :: !acc))
