(* Located abstract syntax for the protocol definition language.

   The grammar (see the README's "Protocol definition language" section)
   describes one protocol as a pair of guarded-command automata over a
   typed packet alphabet:

     protocol "name" {
       describe "one line"
       const ident = expr
       packets { family [ (binder : lo .. hi) ] ... }
       sender   { decls... clauses... }
       receiver { decls... clauses... }
     }

   Declarations are range-typed variables, saturating counters, and
   packet queues; clauses are [on] input handlers (first match wins,
   unmatched inputs are absorbed — input-enabledness by construction) and
   [poll] locally-controlled actions.

   [print] is the canonical pretty-printer: a deterministic rendering
   such that parse . print . parse = parse . print (the QCheck fixpoint
   property), used to normalise specs for display and tests. *)

type span = Diag.span

type unop = Neg | Not

type binop = Add | Sub | Mul | Eq | Ne | Lt | Le | Gt | Ge | And | Or

type expr =
  | Int of int * span
  | Bool of bool * span
  | Ident of string * span  (* const, variable, counter, binder, or budget *)
  | Unop of unop * expr * span
  | Binop of binop * expr * expr * span

type ty = Tbool of span | Trange of expr * expr * span

type decl =
  | Dvar of { name : string; ty : ty; init : expr; span : span }
  | Dcounter of { name : string; init : expr; saturate : expr option; span : span }
  | Dqueue of { name : string; saturate : expr option; span : span }

type trigger =
  | Tsubmit of span
  | Tpacket of { family : string; binder : string option; span : span }

type emit =
  | Esend of { family : string; arg : expr option; span : span }
  | Esend_from of { queue : string; span : span }
  | Edeliver of span

type action =
  | Aset of { target : string; op : [ `Assign | `Add | `Sub ]; value : expr; span : span }
  | Apush of { queue : string; family : string; arg : expr option; span : span }

type clause =
  | Con of { trigger : trigger; guard : expr option; actions : action list; span : span }
  | Cpoll of { guard : expr option; emit : emit option; actions : action list; span : span }

type station = { decls : decl list; clauses : clause list; sspan : span }

type family = { fname : string; param : (string * expr * expr) option; fspan : span }

type spec = {
  name : string;
  describe : string option;
  consts : (string * expr * span) list;
  families : family list;
  sender : station;
  receiver : station;
  span : span;
}

let expr_span = function
  | Int (_, s) | Bool (_, s) | Ident (_, s) | Unop (_, _, s) | Binop (_, _, _, s) -> s

let decl_span = function
  | Dvar { span; _ } | Dcounter { span; _ } | Dqueue { span; _ } -> span

let decl_name = function
  | Dvar { name; _ } | Dcounter { name; _ } | Dqueue { name; _ } -> name

let clause_span = function Con { span; _ } | Cpoll { span; _ } -> span

(* --------------------------------------------------- canonical printing *)

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

(* Binding strength, loosest first; matches the parser's levels. *)
let prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul -> 5

let rec print_expr buf ~level e =
  match e with
  | Int (n, _) ->
      if n < 0 then begin
        (* A negative literal re-lexes as unary minus; parenthesise when a
           tighter context would otherwise capture it. *)
        if level > 5 then Buffer.add_char buf '(';
        Buffer.add_string buf (string_of_int n);
        if level > 5 then Buffer.add_char buf ')'
      end
      else Buffer.add_string buf (string_of_int n)
  | Bool (b, _) -> Buffer.add_string buf (if b then "true" else "false")
  | Ident (x, _) -> Buffer.add_string buf x
  | Unop (op, a, _) ->
      if level > 6 then Buffer.add_char buf '(';
      Buffer.add_string buf (match op with Neg -> "-" | Not -> "!");
      print_expr buf ~level:6 a;
      if level > 6 then Buffer.add_char buf ')'
  | Binop (op, a, b, _) ->
      let p = prec op in
      if level > p then Buffer.add_char buf '(';
      (* Left-associative operators let the left child sit at the
         operator's own level; comparisons are non-chaining in the
         grammar, so a comparison child must be parenthesised on either
         side.  The right child always binds strictly tighter. *)
      let left_level =
        match op with Eq | Ne | Lt | Le | Gt | Ge -> p + 1 | _ -> p
      in
      print_expr buf ~level:left_level a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (binop_name op);
      Buffer.add_char buf ' ';
      print_expr buf ~level:(p + 1) b;
      if level > p then Buffer.add_char buf ')'

let expr_to_string e =
  let buf = Buffer.create 32 in
  print_expr buf ~level:0 e;
  Buffer.contents buf

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print_ty buf = function
  | Tbool _ -> Buffer.add_string buf "bool"
  | Trange (lo, hi, _) ->
      print_expr buf ~level:0 lo;
      Buffer.add_string buf " .. ";
      print_expr buf ~level:0 hi

let print_decl buf ind d =
  Buffer.add_string buf ind;
  (match d with
  | Dvar { name; ty; init; _ } ->
      Buffer.add_string buf ("var " ^ name ^ " : ");
      print_ty buf ty;
      Buffer.add_string buf " = ";
      print_expr buf ~level:0 init
  | Dcounter { name; init; saturate; _ } ->
      Buffer.add_string buf ("counter " ^ name ^ " = ");
      print_expr buf ~level:0 init;
      (match saturate with
      | None -> ()
      | Some e ->
          Buffer.add_string buf " saturate ";
          print_expr buf ~level:0 e)
  | Dqueue { name; saturate; _ } -> (
      Buffer.add_string buf ("queue " ^ name);
      match saturate with
      | None -> ()
      | Some e ->
          Buffer.add_string buf " saturate ";
          print_expr buf ~level:0 e));
  Buffer.add_char buf '\n'

let print_actions buf actions =
  Buffer.add_string buf " { ";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_string buf "; ";
      match a with
      | Aset { target; op; value; _ } ->
          Buffer.add_string buf target;
          Buffer.add_string buf
            (match op with `Assign -> " = " | `Add -> " += " | `Sub -> " -= ");
          print_expr buf ~level:0 value
      | Apush { queue; family; arg; _ } -> (
          Buffer.add_string buf ("push " ^ queue ^ " " ^ family);
          match arg with
          | None -> ()
          | Some e ->
              Buffer.add_char buf '(';
              print_expr buf ~level:0 e;
              Buffer.add_char buf ')'))
    actions;
  Buffer.add_string buf " }"

let print_guard buf = function
  | None -> ()
  | Some g ->
      Buffer.add_string buf " when ";
      print_expr buf ~level:0 g

let print_clause buf ind c =
  Buffer.add_string buf ind;
  (match c with
  | Con { trigger; guard; actions; _ } ->
      Buffer.add_string buf "on ";
      (match trigger with
      | Tsubmit _ -> Buffer.add_string buf "submit"
      | Tpacket { family; binder; _ } -> (
          Buffer.add_string buf family;
          match binder with
          | None -> ()
          | Some b -> Buffer.add_string buf ("(" ^ b ^ ")")));
      print_guard buf guard;
      if actions <> [] then print_actions buf actions
  | Cpoll { guard; emit; actions; _ } ->
      Buffer.add_string buf "poll";
      print_guard buf guard;
      (match emit with
      | None -> ()
      | Some (Esend { family; arg; _ }) -> (
          Buffer.add_string buf (" -> send " ^ family);
          match arg with
          | None -> ()
          | Some e ->
              Buffer.add_char buf '(';
              print_expr buf ~level:0 e;
              Buffer.add_char buf ')')
      | Some (Esend_from { queue; _ }) -> Buffer.add_string buf (" -> send from " ^ queue)
      | Some (Edeliver _) -> Buffer.add_string buf " -> deliver");
      if actions <> [] then print_actions buf actions);
  Buffer.add_char buf '\n'

let print_station buf keyword st =
  Buffer.add_string buf ("  " ^ keyword ^ " {\n");
  List.iter (print_decl buf "    ") st.decls;
  List.iter (print_clause buf "    ") st.clauses;
  Buffer.add_string buf "  }\n"

(* The canonical form: describe, consts, packets, sender, receiver —
   declaration order preserved inside each section. *)
let print spec =
  let buf = Buffer.create 512 in
  Buffer.add_string buf ("protocol \"" ^ escape_string spec.name ^ "\" {\n");
  (match spec.describe with
  | None -> ()
  | Some d -> Buffer.add_string buf ("  describe \"" ^ escape_string d ^ "\"\n"));
  List.iter
    (fun (name, e, _) ->
      Buffer.add_string buf ("  const " ^ name ^ " = ");
      print_expr buf ~level:0 e;
      Buffer.add_char buf '\n')
    spec.consts;
  if spec.families <> [] then begin
    Buffer.add_string buf "  packets {";
    List.iter
      (fun f ->
        Buffer.add_string buf (" " ^ f.fname);
        match f.param with
        | None -> ()
        | Some (b, lo, hi) ->
            Buffer.add_string buf ("(" ^ b ^ " : ");
            print_expr buf ~level:0 lo;
            Buffer.add_string buf " .. ";
            print_expr buf ~level:0 hi;
            Buffer.add_char buf ')')
      spec.families;
    Buffer.add_string buf " }\n"
  end;
  print_station buf "sender" spec.sender;
  print_station buf "receiver" spec.receiver;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
