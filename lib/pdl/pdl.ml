(* Facade for the protocol definition language: one call from source text
   (or a file) to a compiled {!Nfc_protocol.Spec.t}, plus the registry
   hook that makes [file:PATH] protocol names work everywhere a builtin
   name does. *)

type compiled = {
  spec : Nfc_protocol.Spec.t;
  checked : Check.checked;
      (* the elaborated automaton the spec compiled from — the input of
         the spec-level abstract interpreter (Nfc_specint) *)
  digest : string;  (* MD5 hex of the source text; the service handle is "pdl:" ^ digest *)
  warnings : Diag.t list;
}

let digest_of_source src = Digest.to_hex (Digest.string src)

let parse_string (src : string) : (Ast.spec, Diag.t) result = Parser.parse src

(* Full pipeline: lex/parse (first error aborts), check (all errors
   reported), compile (total on checked specs). *)
let compile_string (src : string) : (compiled, Diag.t list) result =
  match Parser.parse src with
  | Error d -> Error [ d ]
  | Ok ast -> (
      match Check.run ast with
      | Error ds -> Error ds
      | Ok (checked, warnings) ->
          Ok
            { spec = Compile.to_spec checked; checked; digest = digest_of_source src;
              warnings })

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))

let compile_file (path : string) : (compiled, [ `File of string | `Diags of Diag.t list ]) result
    =
  match read_file path with
  | Error msg -> Error (`File msg)
  | Ok src -> (
      match compile_string src with Ok c -> Ok c | Error ds -> Error (`Diags ds))

(* Errors rendered compiler-style ("path:line:col: error: ...") for CLI
   surfaces; warnings are dropped here — callers that want them use
   [compile_file] directly. *)
let load_file (path : string) : (compiled, string) result =
  match compile_file path with
  | Ok c -> Ok c
  | Error (`File msg) -> Error msg
  | Error (`Diags ds) ->
      Error (String.concat "\n" (List.map (Diag.to_string ~file:path) ds))

let diags_to_json = Diag.list_to_json

(* Route [file:PATH] protocol names through the compiler.  Installed once
   at binary start-up; the indirection keeps nfc_protocol free of any
   dependency on this library. *)
let install_loader () =
  Nfc_protocol.Registry.set_loader (fun path ->
      match load_file path with Ok c -> Ok c.spec | Error msg -> Error msg)
