(* Static checking and elaboration: a parsed {!Ast.spec} becomes a
   [checked] spec — constants folded, packet families laid out over a
   contiguous integer alphabet, identifiers resolved to station slots,
   every expression typed — or a list of located errors.

   Beyond resolution and typing, two analyses run per clause:

   - Range containment (errors).  Interval analysis over the station's
     declared bounds, refined by the clause's guard conjuncts, proves that
     every assignment keeps a range variable inside its declared range and
     every counter non-negative, and that every emitted or pushed packet
     argument lies inside its family's parameter range.  What cannot be
     proved is rejected: compiled specs never take a state outside its
     declared space, which is what makes the derived state hooks
     (compare/hash/space-bits) sound by construction.

   - Guard exhaustiveness (warnings).  The bounded variables of a station
     span a small finite valuation space; enumerating it (with counters
     sampled at 0, 1, 2 and around compared literals, and queues at
     empty/non-empty) finds [on]/[poll] clauses whose guard no valuation
     satisfies, and clauses shadowed on every valuation by an earlier
     clause of the same trigger — both almost always spec bugs, neither
     affecting compilability. *)

(* Slot-resolved, const-folded expression. *)
type cexpr =
  | Cint of int
  | Cbool of bool
  | Cslot of int
  | Cbinder
  | Cbudget
  | Cun of Ast.unop * cexpr
  | Cbin of Ast.binop * cexpr * cexpr

type vkind =
  | Kbool of bool  (* initial value *)
  | Krange of int * int * int  (* lo, hi, initial *)
  | Kcounter of int * cexpr option  (* initial, saturate cap over budget *)
  | Kqueue of cexpr option  (* saturate length over budget *)

type slot = { sname : string; kind : vkind }

type cfamily = {
  cfname : string;
  base : int;  (* first packet value of the family *)
  plo : int;  (* parameter range (plo = phi = 0 for parameterless) *)
  phi : int;
  has_param : bool;
}

type cemit = CEsend of cfamily * cexpr option | CEsend_from of int | CEdeliver

type caction =
  | CAset of int * [ `Assign | `Add | `Sub ] * cexpr
  | CApush of int * cfamily * cexpr option

type ctrigger = CTsubmit | CTpacket of cfamily

type cclause = {
  trig : ctrigger option;  (* [None] = poll clause *)
  guard : cexpr option;
  emit : cemit option;
  acts : caction list;
  cspan : Diag.span;  (* the source clause, for located spec-level findings *)
}

type cstation = { slots : slot array; on_clauses : cclause list; poll_clauses : cclause list }

type checked = {
  cname : string;
  cdescribe : string;
  cfamilies : cfamily list;
  total_headers : int;
  csender : cstation;
  creceiver : cstation;
  cprotospan : Diag.span;  (* the protocol declaration, anchoring spec-level findings *)
}

(* Hard caps that keep a hostile spec from allocating absurd alphabets or
   valuation spaces; generous for any protocol in the paper's class. *)
let max_headers = 64
let max_range_span = 4096
let max_consts_abs = 1 lsl 30

exception Fail of Diag.t list

let fail span msg = raise (Fail [ Diag.error span msg ])

(* ------------------------------------------------------ constant folding *)

let rec fold_const consts (e : Ast.expr) : int =
  match e with
  | Ast.Int (n, _) -> n
  | Ast.Bool (_, sp) -> fail sp "expected an integer constant expression, found a boolean"
  | Ast.Ident (x, sp) -> (
      match List.assoc_opt x consts with
      | Some v -> v
      | None ->
          fail sp
            (Printf.sprintf "unknown constant %S (only consts may appear here)" x))
  | Ast.Unop (Ast.Neg, a, _) -> -fold_const consts a
  | Ast.Unop (Ast.Not, _, sp) -> fail sp "boolean operator in an integer constant expression"
  | Ast.Binop (op, a, b, sp) -> (
      let va = fold_const consts a and vb = fold_const consts b in
      let r =
        match op with
        | Ast.Add -> va + vb
        | Ast.Sub -> va - vb
        | Ast.Mul -> va * vb
        | _ -> fail sp "comparison or boolean operator in an integer constant expression"
      in
      if abs r > max_consts_abs then fail sp "constant expression overflows" else r)

(* ---------------------------------------------------------- typed resolve *)

type namespace = {
  consts : (string * int) list;
  slot_of : string -> int option;
  slots : slot array;
  binder : string option;  (* the packet binder in scope, if any *)
  binder_range : int * int;
  allow_budget : bool;
}

type ety = Ebool | Eint

let slot_type (s : slot) ~span =
  match s.kind with
  | Kbool _ -> Ebool
  | Krange _ | Kcounter _ -> Eint
  | Kqueue _ ->
      fail span
        (Printf.sprintf "queue %S cannot appear in an expression (queues are only \
                         pushed to and sent from)" s.sname)

let rec resolve ns (e : Ast.expr) : cexpr * ety =
  match e with
  | Ast.Int (n, _) -> (Cint n, Eint)
  | Ast.Bool (b, _) -> (Cbool b, Ebool)
  | Ast.Ident ("budget", sp) ->
      if ns.allow_budget then (Cbudget, Eint)
      else fail sp "\"budget\" is only available in saturate expressions"
  | Ast.Ident (x, sp) -> (
      if ns.binder = Some x then (Cbinder, Eint)
      else
        match ns.slot_of x with
        | Some i -> (Cslot i, slot_type ns.slots.(i) ~span:sp)
        | None -> (
            match List.assoc_opt x ns.consts with
            | Some v -> (Cint v, Eint)
            | None -> fail sp (Printf.sprintf "unknown identifier %S" x)))
  | Ast.Unop (Ast.Neg, a, _) ->
      let ca = resolve_ty ns a Eint in
      (Cun (Ast.Neg, ca), Eint)
  | Ast.Unop (Ast.Not, a, _) ->
      let ca = resolve_ty ns a Ebool in
      (Cun (Ast.Not, ca), Ebool)
  | Ast.Binop (op, a, b, _) -> (
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul ->
          (Cbin (op, resolve_ty ns a Eint, resolve_ty ns b Eint), Eint)
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          (Cbin (op, resolve_ty ns a Eint, resolve_ty ns b Eint), Ebool)
      | Ast.And | Ast.Or ->
          (Cbin (op, resolve_ty ns a Ebool, resolve_ty ns b Ebool), Ebool))

and resolve_ty ns e want =
  let ce, ty = resolve ns e in
  if ty = want then ce
  else
    fail (Ast.expr_span e)
      (Printf.sprintf "this expression is %s but %s was expected"
         (match ty with Ebool -> "boolean" | Eint -> "an integer")
         (match want with Ebool -> "boolean" | Eint -> "an integer"))

(* ------------------------------------------------------ interval analysis *)

(* Intervals with optional infinities; [None] = unbounded on that side. *)
type iv = { lo : int option; hi : int option }

let iv_point n = { lo = Some n; hi = Some n }
let iv_top = { lo = None; hi = None }

let iv_add a b =
  {
    lo = (match (a.lo, b.lo) with Some x, Some y -> Some (x + y) | _ -> None);
    hi = (match (a.hi, b.hi) with Some x, Some y -> Some (x + y) | _ -> None);
  }

let iv_neg a =
  { lo = Option.map (fun x -> -x) a.hi; hi = Option.map (fun x -> -x) a.lo }

let iv_sub a b = iv_add a (iv_neg b)

let iv_mul a b =
  match (a.lo, a.hi, b.lo, b.hi) with
  | Some al, Some ah, Some bl, Some bh ->
      let ps = [ al * bl; al * bh; ah * bl; ah * bh ] in
      { lo = Some (List.fold_left min (List.hd ps) ps); hi = Some (List.fold_left max (List.hd ps) ps) }
  | _ -> iv_top

(* The abstract state: one interval per int-valued slot (bools and queues
   are not tracked), plus the binder's interval. *)
type aenv = { ivs : iv array; binder_iv : iv }

let init_aenv (slots : slot array) ~binder_range =
  let ivs =
    Array.map
      (fun s ->
        match s.kind with
        | Krange (lo, hi, _) -> { lo = Some lo; hi = Some hi }
        | Kcounter _ -> { lo = Some 0; hi = None }
        | Kbool _ | Kqueue _ -> iv_top)
      slots
  in
  { ivs; binder_iv = { lo = Some (fst binder_range); hi = Some (snd binder_range) } }

let rec iv_of (a : aenv) (e : cexpr) : iv =
  match e with
  | Cint n -> iv_point n
  | Cbool _ -> iv_top
  | Cslot i -> a.ivs.(i)
  | Cbinder -> a.binder_iv
  | Cbudget -> { lo = Some 0; hi = None }
  | Cun (Ast.Neg, x) -> iv_neg (iv_of a x)
  | Cun (Ast.Not, _) -> iv_top
  | Cbin (Ast.Add, x, y) -> iv_add (iv_of a x) (iv_of a y)
  | Cbin (Ast.Sub, x, y) -> iv_sub (iv_of a x) (iv_of a y)
  | Cbin (Ast.Mul, x, y) -> iv_mul (iv_of a x) (iv_of a y)
  | Cbin (_, _, _) -> iv_top

let iv_meet a b =
  {
    lo = (match (a.lo, b.lo) with Some x, Some y -> Some (max x y) | x, None -> x | None, y -> y);
    hi = (match (a.hi, b.hi) with Some x, Some y -> Some (min x y) | x, None -> x | None, y -> y);
  }

(* Refine the abstract state by a guard: walk top-level conjuncts and
   narrow any [slot OP rigid] / [rigid OP slot] / [binder OP rigid]
   comparison whose other side has a known constant interval.  Sound
   because only conjuncts refine (a disjunct proves nothing on its own). *)
let refine (a : aenv) (g : cexpr) : aenv =
  let rigid_value e = match iv_of a e with { lo = Some x; hi = Some y } when x = y -> Some x | _ -> None in
  let narrow iv op v ~flipped =
    (* slot OP v, or (flipped) v OP slot *)
    let op =
      if not flipped then op
      else
        match op with
        | Ast.Lt -> Ast.Gt
        | Ast.Le -> Ast.Ge
        | Ast.Gt -> Ast.Lt
        | Ast.Ge -> Ast.Le
        | o -> o
    in
    match op with
    | Ast.Eq -> iv_meet iv (iv_point v)
    | Ast.Lt -> iv_meet iv { lo = None; hi = Some (v - 1) }
    | Ast.Le -> iv_meet iv { lo = None; hi = Some v }
    | Ast.Gt -> iv_meet iv { lo = Some (v + 1); hi = None }
    | Ast.Ge -> iv_meet iv { lo = Some v; hi = None }
    | _ -> iv
  in
  let a = { a with ivs = Array.copy a.ivs } in
  let apply lhs op rhs ~flipped acc =
    match (lhs, rigid_value rhs) with
    | Cslot i, Some v ->
        acc.ivs.(i) <- narrow acc.ivs.(i) op v ~flipped;
        acc
    | Cbinder, Some v -> { acc with binder_iv = narrow acc.binder_iv op v ~flipped }
    | _ -> acc
  in
  let rec go acc e =
    match e with
    | Cbin (Ast.And, x, y) -> go (go acc x) y
    | Cbin ((Ast.Eq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, x, y) ->
        apply y op x ~flipped:true (apply x op y ~flipped:false acc)
    | _ -> acc
  in
  go a g

let iv_within iv ~lo ~hi =
  match (iv.lo, iv.hi) with Some l, Some h -> l >= lo && h <= hi | _ -> false

let iv_nonneg iv = match iv.lo with Some l -> l >= 0 | None -> false

(* ------------------------------------------------- clause-level checking *)

type clause_ctx = {
  ns : namespace;
  station : string;  (* "sender" | "receiver" *)
}

let check_packet_arg ctx aenv (fam : cfamily) (arg : cexpr option) span =
  match (fam.has_param, arg) with
  | false, Some _ ->
      fail span (Printf.sprintf "packet family %S takes no parameter" fam.cfname)
  | true, None ->
      fail span (Printf.sprintf "packet family %S requires a parameter" fam.cfname)
  | false, None -> ()
  | true, Some ce ->
      ignore ctx;
      let iv = iv_of aenv ce in
      if not (iv_within iv ~lo:fam.plo ~hi:fam.phi) then
        fail span
          (Printf.sprintf
             "cannot prove this value stays within %S's parameter range %d .. %d"
             fam.cfname fam.plo fam.phi)

let check_actions ctx (aenv : aenv) (acts : (caction * Diag.span) list) =
  (* Sequential abstract execution mirroring the interpreter's scratch
     copy: each action reads the post-state of the previous ones. *)
  let a = ref { aenv with ivs = Array.copy aenv.ivs } in
  List.iter
    (fun (act, span) ->
      match act with
      | CAset (i, op, ce) -> (
          let s = ctx.ns.slots.(i) in
          match s.kind with
          | Kbool _ -> ()  (* typing already ensured a boolean rhs for Assign *)
          | Krange (lo, hi, _) ->
              let cur = !a.ivs.(i) in
              let v = iv_of !a ce in
              let next =
                match op with
                | `Assign -> v
                | `Add -> iv_add cur v
                | `Sub -> iv_sub cur v
              in
              if not (iv_within next ~lo ~hi) then
                fail span
                  (Printf.sprintf
                     "cannot prove %S stays within its declared range %d .. %d \
                      (guard the clause, e.g. \"when %s > %d\")"
                     s.sname lo hi s.sname lo);
              !a.ivs.(i) <- next
          | Kcounter _ ->
              let cur = !a.ivs.(i) in
              let v = iv_of !a ce in
              let next =
                match op with
                | `Assign -> v
                | `Add -> iv_add cur v
                | `Sub -> iv_sub cur v
              in
              if not (iv_nonneg next) then
                fail span
                  (Printf.sprintf
                     "cannot prove counter %S stays non-negative (guard the clause, \
                      e.g. \"when %s > 0\")"
                     s.sname s.sname);
              !a.ivs.(i) <- next
          | Kqueue _ -> assert false (* resolution rejects queue targets *))
      | CApush (_, fam, arg) ->
          check_packet_arg ctx !a fam arg span)
    acts;
  ()

(* -------------------------------------------- guard exhaustiveness sweep *)

(* Concrete valuation: ints for every slot (bools 0/1, queues by length),
   plus the binder. *)
let rec ceval (vals : int array) ~binder (e : cexpr) : int =
  match e with
  | Cint n -> n
  | Cbool b -> if b then 1 else 0
  | Cslot i -> vals.(i)
  | Cbinder -> binder
  | Cbudget -> 0
  | Cun (Ast.Neg, x) -> -ceval vals ~binder x
  | Cun (Ast.Not, x) -> if ceval vals ~binder x = 0 then 1 else 0
  | Cbin (op, x, y) -> (
      let a = ceval vals ~binder x and b = ceval vals ~binder y in
      match op with
      | Ast.Add -> a + b
      | Ast.Sub -> a - b
      | Ast.Mul -> a * b
      | Ast.Eq -> if a = b then 1 else 0
      | Ast.Ne -> if a <> b then 1 else 0
      | Ast.Lt -> if a < b then 1 else 0
      | Ast.Le -> if a <= b then 1 else 0
      | Ast.Gt -> if a > b then 1 else 0
      | Ast.Ge -> if a >= b then 1 else 0
      | Ast.And -> if a <> 0 && b <> 0 then 1 else 0
      | Ast.Or -> if a <> 0 || b <> 0 then 1 else 0)

(* Integer literals appearing in a station's guards, for counter sampling:
   a guard like [pending == 5] must see a valuation around 5. *)
let rec literals (e : cexpr) acc =
  match e with
  | Cint n -> if n >= 0 && n <= 64 then n :: acc else acc
  | Cun (_, x) -> literals x acc
  | Cbin (_, x, y) -> literals x (literals y acc)
  | _ -> acc

let sample_domain (slots : slot array) (clauses : cclause list) : int list array option =
  let lits =
    List.concat_map
      (fun c -> match c.guard with Some g -> literals g [] | None -> [])
      clauses
  in
  let counter_samples =
    List.sort_uniq compare
      (0 :: 1 :: 2 :: List.concat_map (fun n -> [ max 0 (n - 1); n; n + 1 ]) lits)
  in
  let doms =
    Array.map
      (fun s ->
        match s.kind with
        | Kbool _ -> [ 0; 1 ]
        | Krange (lo, hi, _) ->
            if hi - lo <= 8 then List.init (hi - lo + 1) (fun i -> lo + i)
            else List.sort_uniq compare [ lo; lo + 1; (lo + hi) / 2; hi - 1; hi ]
        | Kcounter _ -> counter_samples
        | Kqueue _ -> [ 0; 1 ] (* queue length proxy: empty / non-empty *))
      slots
  in
  let total = Array.fold_left (fun acc d -> acc * List.length d) 1 doms in
  if total > 20_000 || total <= 0 then None else Some doms

(* All valuations of [doms], visited via an odometer. *)
let iter_valuations (doms : int list array) (f : int array -> unit) =
  let n = Array.length doms in
  let doms = Array.map Array.of_list doms in
  let idx = Array.make n 0 in
  let vals = Array.make n 0 in
  let rec fill i = if i < n then (vals.(i) <- doms.(i).(idx.(i)); fill (i + 1)) in
  let rec tick i =
    if i < 0 then false
    else if idx.(i) + 1 < Array.length doms.(i) then (idx.(i) <- idx.(i) + 1; true)
    else (idx.(i) <- 0; tick (i - 1))
  in
  let continue_ = ref true in
  while !continue_ do
    fill 0;
    f vals;
    continue_ := tick (n - 1)
  done

(* A poll clause's effective guard includes the implicit non-empty test a
   [send from q] emit carries. *)
let effective_guard c vals ~binder =
  let g = match c.guard with None -> true | Some g -> ceval vals ~binder g <> 0 in
  match c.emit with
  | Some (CEsend_from q) -> g && vals.(q) > 0
  | _ -> g

let binder_samples (fam : cfamily) =
  if fam.phi - fam.plo <= 8 then List.init (fam.phi - fam.plo + 1) (fun i -> fam.plo + i)
  else [ fam.plo; fam.plo + 1; (fam.plo + fam.phi) / 2; fam.phi - 1; fam.phi ]

(* For each clause, over the sampled valuation space: can its guard fire
   at all, and can it fire where no earlier same-trigger clause does? *)
let exhaustiveness_warnings (station : string) (slots : slot array)
    (clauses : (cclause * Diag.span) list) : Diag.t list =
  match sample_domain slots (List.map fst clauses) with
  | None -> []  (* valuation space too large; skip the sweep *)
  | Some doms ->
      let warnings = ref [] in
      let groups =
        (* on-clauses grouped by trigger family (or submit); polls as one group *)
        let key c =
          match c.trig with
          | None -> "poll"
          | Some CTsubmit -> "on submit"
          | Some (CTpacket f) -> "on " ^ f.cfname
        in
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun (c, sp) ->
            let k = key c in
            Hashtbl.replace tbl k ((c, sp) :: Option.value (Hashtbl.find_opt tbl k) ~default:[]))
          clauses;
        Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl []
      in
      List.iter
        (fun (gname, group) ->
          let n = List.length group in
          let sat = Array.make n false in
          let fresh = Array.make n false in
          let binders =
            match (List.hd group |> fst).trig with
            | Some (CTpacket f) -> binder_samples f
            | _ -> [ 0 ]
          in
          iter_valuations doms (fun vals ->
              List.iter
                (fun b ->
                  let fired = ref false in
                  List.iteri
                    (fun i (c, _) ->
                      if effective_guard c vals ~binder:b then begin
                        sat.(i) <- true;
                        if not !fired then fresh.(i) <- true;
                        fired := true
                      end)
                    group)
                binders);
          List.iteri
            (fun i (_, sp) ->
              if not sat.(i) then
                warnings :=
                  Diag.warning sp
                    (Printf.sprintf
                       "%s: no reachable valuation satisfies this %S guard (clause can \
                        never fire)"
                       station gname)
                  :: !warnings
              else if not fresh.(i) then
                warnings :=
                  Diag.warning sp
                    (Printf.sprintf
                       "%s: this %S clause is shadowed by an earlier clause on every \
                        valuation (first match wins)"
                       station gname)
                  :: !warnings)
            group)
        groups;
      List.rev !warnings

(* --------------------------------------------------------------- station *)

let check_station ~station ~(ns_base : string -> bool) consts families (st : Ast.station) :
    cstation * Diag.t list =
  (* Declarations -> slots.  Saturate expressions resolve in a namespace
     of consts + budget only — no station variables — so they can be
     checked right here, before the slot array exists. *)
  let sat_ns =
    {
      consts;
      slot_of = (fun _ -> None);
      slots = [||];
      binder = None;
      binder_range = (0, 0);
      allow_budget = true;
    }
  in
  let resolve_sat = Option.map (fun e -> resolve_ty sat_ns e Eint) in
  let slots = ref [] in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun d ->
      let name = Ast.decl_name d in
      let span = Ast.decl_span d in
      if Hashtbl.mem seen name then
        fail span (Printf.sprintf "duplicate declaration of %S in the %s" name station);
      if ns_base name then
        fail span (Printf.sprintf "%S is already a constant or packet family name" name);
      Hashtbl.add seen name ();
      let kind =
        match d with
        | Ast.Dvar { ty = Ast.Tbool _; init; _ } -> (
            match init with
            | Ast.Bool (b, _) -> Kbool b
            | e -> fail (Ast.expr_span e) "a bool variable's initial value must be true or false")
        | Ast.Dvar { ty = Ast.Trange (lo, hi, tspan); init; _ } ->
            let lo = fold_const consts lo and hi = fold_const consts hi in
            if lo > hi then fail tspan (Printf.sprintf "empty range %d .. %d" lo hi);
            if hi - lo > max_range_span then
              fail tspan (Printf.sprintf "range wider than %d values" max_range_span);
            let init = fold_const consts init in
            if init < lo || init > hi then
              fail (Ast.decl_span d)
                (Printf.sprintf "initial value %d outside the declared range %d .. %d" init
                   lo hi);
            Krange (lo, hi, init)
        | Ast.Dcounter { init; saturate; _ } ->
            let init = fold_const consts init in
            if init < 0 then
              fail (Ast.decl_span d) (Printf.sprintf "counter initial value %d is negative" init);
            Kcounter (init, resolve_sat saturate)
        | Ast.Dqueue { saturate; _ } -> Kqueue (resolve_sat saturate)
      in
      slots := { sname = name; kind } :: !slots)
    st.Ast.decls;
  let slots = Array.of_list (List.rev !slots) in
  let slot_of name =
    let r = ref None in
    Array.iteri (fun i s -> if s.sname = name && !r = None then r := Some i) slots;
    !r
  in
  let family_of name span =
    match List.find_opt (fun f -> f.cfname = name) families with
    | Some f -> f
    | None -> fail span (Printf.sprintf "unknown packet family %S" name)
  in
  (* Clauses. *)
  let on_clauses = ref [] in
  let poll_clauses = ref [] in
  let all_with_spans = ref [] in
  List.iter
    (fun cl ->
      let mk_ns ~binder ~binder_range =
        { consts; slot_of; slots; binder; binder_range; allow_budget = false }
      in
      match cl with
      | Ast.Con { trigger; guard; actions; span } ->
          let trig, binder, binder_range =
            match trigger with
            | Ast.Tsubmit sp ->
                if station <> "sender" then
                  fail sp "\"on submit\" is only meaningful in the sender";
                (CTsubmit, None, (0, 0))
            | Ast.Tpacket { family; binder; span = fsp } ->
                let fam = family_of family fsp in
                (match binder with
                | Some b when not fam.has_param ->
                    fail fsp
                      (Printf.sprintf "packet family %S has no parameter to bind to %S"
                         family b)
                | Some b when slot_of b <> None || ns_base b ->
                    fail fsp (Printf.sprintf "binder %S shadows an existing name" b)
                | _ -> ());
                (CTpacket fam, binder, (fam.plo, fam.phi))
          in
          let ns = mk_ns ~binder ~binder_range in
          let cguard = Option.map (fun g -> resolve_ty ns g Ebool) guard in
          let cacts =
            List.map
              (fun a ->
                match a with
                | Ast.Aset { target; op; value; span } -> (
                    match slot_of target with
                    | None -> fail span (Printf.sprintf "unknown variable %S" target)
                    | Some i -> (
                        match (slots.(i).kind, op) with
                        | Kqueue _, _ ->
                            fail span
                              (Printf.sprintf "%S is a queue; use \"push %s fam(...)\""
                                 target target)
                        | Kbool _, `Assign -> ((CAset (i, op, resolve_ty ns value Ebool)), span)
                        | Kbool _, _ ->
                            fail span (Printf.sprintf "+=/-= need an integer variable, %S is bool" target)
                        | (Krange _ | Kcounter _), _ ->
                            ((CAset (i, op, resolve_ty ns value Eint)), span)))
                | Ast.Apush { queue; family; arg; span } -> (
                    match slot_of queue with
                    | Some i when (match slots.(i).kind with Kqueue _ -> true | _ -> false) ->
                        let fam = family_of family span in
                        let carg = Option.map (fun e -> resolve_ty ns e Eint) arg in
                        ((CApush (i, fam, carg)), span)
                    | Some _ -> fail span (Printf.sprintf "%S is not a queue" queue)
                    | None -> fail span (Printf.sprintf "unknown queue %S" queue)))
              actions
          in
          (* Interval pass: initial bounds, guard-refined. *)
          let a0 = init_aenv slots ~binder_range in
          let a1 = match cguard with Some g -> refine a0 g | None -> a0 in
          let ctx = { ns; station } in
          check_actions ctx a1 cacts;
          let c =
            { trig = Some trig; guard = cguard; emit = None; acts = List.map fst cacts;
              cspan = span }
          in
          on_clauses := c :: !on_clauses;
          all_with_spans := (c, span) :: !all_with_spans
      | Ast.Cpoll { guard; emit; actions; span } ->
          let ns = mk_ns ~binder:None ~binder_range:(0, 0) in
          let cguard = Option.map (fun g -> resolve_ty ns g Ebool) guard in
          let a0 = init_aenv slots ~binder_range:(0, 0) in
          let a1 = match cguard with Some g -> refine a0 g | None -> a0 in
          let cemit =
            match emit with
            | None -> None  (* quiet poll: no emission, actions only *)
            | Some (Ast.Edeliver sp) ->
                if station <> "receiver" then
                  fail sp "\"deliver\" is only meaningful in the receiver";
                Some CEdeliver
            | Some (Ast.Esend { family; arg; span = esp }) ->
                let fam = family_of family esp in
                let carg = Option.map (fun e -> resolve_ty ns e Eint) arg in
                let ctx = { ns; station } in
                check_packet_arg ctx a1 fam carg esp;
                Some (CEsend (fam, carg))
            | Some (Ast.Esend_from { queue; span = qsp }) -> (
                match slot_of queue with
                | Some i when (match slots.(i).kind with Kqueue _ -> true | _ -> false) ->
                    Some (CEsend_from i)
                | Some _ -> fail qsp (Printf.sprintf "%S is not a queue" queue)
                | None -> fail qsp (Printf.sprintf "unknown queue %S" queue))
          in
          let cacts =
            List.map
              (fun a ->
                match a with
                | Ast.Aset { target; op; value; span } -> (
                    match slot_of target with
                    | None -> fail span (Printf.sprintf "unknown variable %S" target)
                    | Some i -> (
                        match (slots.(i).kind, op) with
                        | Kqueue _, _ ->
                            fail span
                              (Printf.sprintf "%S is a queue; use \"push %s fam(...)\""
                                 target target)
                        | Kbool _, `Assign -> ((CAset (i, op, resolve_ty ns value Ebool)), span)
                        | Kbool _, _ ->
                            fail span (Printf.sprintf "+=/-= need an integer variable, %S is bool" target)
                        | (Krange _ | Kcounter _), _ ->
                            ((CAset (i, op, resolve_ty ns value Eint)), span)))
                | Ast.Apush { queue; family; arg; span } -> (
                    match slot_of queue with
                    | Some i when (match slots.(i).kind with Kqueue _ -> true | _ -> false) ->
                        let fam = family_of family span in
                        let carg = Option.map (fun e -> resolve_ty ns e Eint) arg in
                        ((CApush (i, fam, carg)), span)
                    | Some _ -> fail span (Printf.sprintf "%S is not a queue" queue)
                    | None -> fail span (Printf.sprintf "unknown queue %S" queue)))
              actions
          in
          let ctx = { ns; station } in
          check_actions ctx a1 cacts;
          let c =
            { trig = None; guard = cguard; emit = cemit; acts = List.map fst cacts;
              cspan = span }
          in
          poll_clauses := c :: !poll_clauses;
          all_with_spans := (c, span) :: !all_with_spans)
    st.Ast.clauses;
  let warnings = exhaustiveness_warnings station slots (List.rev !all_with_spans) in
  ( { slots; on_clauses = List.rev !on_clauses; poll_clauses = List.rev !poll_clauses },
    warnings )

(* ------------------------------------------------------------------ spec *)

let run (spec : Ast.spec) : (checked * Diag.t list, Diag.t list) result =
  match
    (* Constants: ordered, no forward references. *)
    let consts =
      List.fold_left
        (fun acc (name, e, span) ->
          if List.mem_assoc name acc then
            fail span (Printf.sprintf "duplicate constant %S" name);
          if name = "budget" then fail span "\"budget\" is a reserved name";
          (name, fold_const acc e) :: acc)
        [] spec.Ast.consts
      |> List.rev
    in
    (* Packet families: contiguous value layout in declaration order. *)
    let families, total =
      List.fold_left
        (fun (acc, base) (f : Ast.family) ->
          if List.exists (fun g -> g.cfname = f.Ast.fname) acc then
            fail f.Ast.fspan (Printf.sprintf "duplicate packet family %S" f.Ast.fname);
          let plo, phi, has_param =
            match f.Ast.param with
            | None -> (0, 0, false)
            | Some (_, lo, hi) ->
                let lo = fold_const consts lo and hi = fold_const consts hi in
                if lo > hi then
                  fail f.Ast.fspan (Printf.sprintf "empty parameter range %d .. %d" lo hi);
                (lo, hi, true)
          in
          let size = phi - plo + 1 in
          if base + size > max_headers then
            fail f.Ast.fspan
              (Printf.sprintf "packet alphabet exceeds %d distinct values" max_headers);
          ({ cfname = f.Ast.fname; base; plo; phi; has_param } :: acc, base + size))
        ([], 0) spec.Ast.families
    in
    let families = List.rev families in
    let ns_base name =
      List.mem_assoc name consts || List.exists (fun f -> f.cfname = name) families
    in
    let csender, w1 = check_station ~station:"sender" ~ns_base consts families spec.Ast.sender in
    let creceiver, w2 =
      check_station ~station:"receiver" ~ns_base consts families spec.Ast.receiver
    in
    ( {
        cname = spec.Ast.name;
        cdescribe = Option.value spec.Ast.describe ~default:spec.Ast.name;
        cfamilies = families;
        total_headers = total;
        csender;
        creceiver;
        cprotospan = spec.Ast.span;
      },
      w1 @ w2 )
  with
  | result -> Ok result
  | exception Fail ds -> Error ds
