(* Located diagnostics for the protocol definition language.

   Every error or warning the lexer, parser, and checker can produce
   carries a source span (1-based line/column, inclusive start, exclusive
   end column), so CLI output, the service's JSON error documents, and
   the QCheck robustness suite can all assert that no failure is ever
   position-less. *)

type pos = { line : int; col : int }

type span = { first : pos; last : pos }

type severity = Error | Warning

type t = { severity : severity; span : span; message : string }

let pos ~line ~col = { line; col }

let span first last = { first; last }

let point p = { first = p; last = p }

let error span message = { severity = Error; span; message }

let warning span message = { severity = Warning; span; message }

let severity_name = function Error -> "error" | Warning -> "warning"

let pp ppf d =
  Format.fprintf ppf "%d:%d: %s: %s" d.span.first.line d.span.first.col
    (severity_name d.severity) d.message

(* "file:line:col: severity: message" — the compiler-style rendering the
   CLI prints, clickable in editors. *)
let to_string ?file d =
  let prefix = match file with None -> "" | Some f -> f ^ ":" in
  Format.asprintf "%s%a" prefix pp d

let to_json d =
  Nfc_util.Json.Obj
    [
      ("severity", Nfc_util.Json.String (severity_name d.severity));
      ("line", Nfc_util.Json.Int d.span.first.line);
      ("col", Nfc_util.Json.Int d.span.first.col);
      ("end_line", Nfc_util.Json.Int d.span.last.line);
      ("end_col", Nfc_util.Json.Int d.span.last.col);
      ("message", Nfc_util.Json.String d.message);
    ]

let list_to_json ds = Nfc_util.Json.List (List.map to_json ds)

let has_errors = List.exists (fun d -> d.severity = Error)
