(* Recursive-descent parser over the lexer's token stream.

   One grammar rule per function; the first syntax error aborts the parse
   with a located diagnostic (no recovery — a spec is a short document and
   the first error is almost always the real one).  Never raises past its
   entry point. *)

exception Fail of Diag.t

type state = { toks : Lexer.token array; mutable ix : int }

let peek st = st.toks.(st.ix)

let next st =
  let t = st.toks.(st.ix) in
  if st.ix < Array.length st.toks - 1 then st.ix <- st.ix + 1;
  t

let fail_at (t : Lexer.token) msg = raise (Fail (Diag.error t.Lexer.span msg))

let tok_name = function
  | Lexer.Tint n -> string_of_int n
  | Lexer.Tident s -> s
  | Lexer.Tstring _ -> "string literal"
  | Lexer.Tsym s -> Printf.sprintf "%S" s
  | Lexer.Teof -> "end of input"

let expect_sym st s =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Tsym x when x = s -> t
  | _ -> fail_at t (Printf.sprintf "expected %S, found %s" s (tok_name t.Lexer.tok))

let expect_ident st what =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Tident x when not (Lexer.is_keyword x) -> (x, t.Lexer.span)
  | Lexer.Tident x -> fail_at t (Printf.sprintf "%S is a keyword; expected %s" x what)
  | tok -> fail_at t (Printf.sprintf "expected %s, found %s" what (tok_name tok))

let expect_keyword st kw =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Tident x when x = kw -> t
  | tok -> fail_at t (Printf.sprintf "expected %S, found %s" kw (tok_name tok))

let expect_string st what =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Tstring s -> (s, t.Lexer.span)
  | tok -> fail_at t (Printf.sprintf "expected %s (a string literal), found %s" what (tok_name tok))

let at_sym st s =
  match (peek st).Lexer.tok with Lexer.Tsym x -> x = s | _ -> false

let at_keyword st kw =
  match (peek st).Lexer.tok with Lexer.Tident x -> x = kw | _ -> false

let eat_sym st s = if at_sym st s then ignore (next st)

let join (a : Diag.span) (b : Diag.span) = Diag.span a.Diag.first b.Diag.last

(* ------------------------------------------------------------ expressions *)

(* or < and < comparison < additive < multiplicative < unary < atom *)

let rec parse_or st =
  let lhs = parse_and st in
  if at_sym st "||" then begin
    ignore (next st);
    let rhs = parse_or_rest st lhs in
    rhs
  end
  else lhs

and parse_or_rest st lhs =
  let rhs = parse_and st in
  let e = Ast.Binop (Ast.Or, lhs, rhs, join (Ast.expr_span lhs) (Ast.expr_span rhs)) in
  if at_sym st "||" then begin
    ignore (next st);
    parse_or_rest st e
  end
  else e

and parse_and st =
  let lhs = parse_cmp st in
  if at_sym st "&&" then begin
    ignore (next st);
    parse_and_rest st lhs
  end
  else lhs

and parse_and_rest st lhs =
  let rhs = parse_cmp st in
  let e = Ast.Binop (Ast.And, lhs, rhs, join (Ast.expr_span lhs) (Ast.expr_span rhs)) in
  if at_sym st "&&" then begin
    ignore (next st);
    parse_and_rest st e
  end
  else e

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match (peek st).Lexer.tok with
    | Lexer.Tsym "==" -> Some Ast.Eq
    | Lexer.Tsym "!=" -> Some Ast.Ne
    | Lexer.Tsym "<" -> Some Ast.Lt
    | Lexer.Tsym "<=" -> Some Ast.Le
    | Lexer.Tsym ">" -> Some Ast.Gt
    | Lexer.Tsym ">=" -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      ignore (next st);
      let rhs = parse_add st in
      Ast.Binop (op, lhs, rhs, join (Ast.expr_span lhs) (Ast.expr_span rhs))

and parse_add st =
  let rec go lhs =
    match (peek st).Lexer.tok with
    | Lexer.Tsym "+" ->
        ignore (next st);
        let rhs = parse_mul st in
        go (Ast.Binop (Ast.Add, lhs, rhs, join (Ast.expr_span lhs) (Ast.expr_span rhs)))
    | Lexer.Tsym "-" ->
        ignore (next st);
        let rhs = parse_mul st in
        go (Ast.Binop (Ast.Sub, lhs, rhs, join (Ast.expr_span lhs) (Ast.expr_span rhs)))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match (peek st).Lexer.tok with
    | Lexer.Tsym "*" ->
        ignore (next st);
        let rhs = parse_unary st in
        go (Ast.Binop (Ast.Mul, lhs, rhs, join (Ast.expr_span lhs) (Ast.expr_span rhs)))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match (peek st).Lexer.tok with
  | Lexer.Tsym "-" ->
      let t = next st in
      let e = parse_unary st in
      Ast.Unop (Ast.Neg, e, join t.Lexer.span (Ast.expr_span e))
  | Lexer.Tsym "!" ->
      let t = next st in
      let e = parse_unary st in
      Ast.Unop (Ast.Not, e, join t.Lexer.span (Ast.expr_span e))
  | _ -> parse_atom st

and parse_atom st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.Tint n -> Ast.Int (n, t.Lexer.span)
  | Lexer.Tident "true" -> Ast.Bool (true, t.Lexer.span)
  | Lexer.Tident "false" -> Ast.Bool (false, t.Lexer.span)
  | Lexer.Tident "budget" -> Ast.Ident ("budget", t.Lexer.span)
  | Lexer.Tident x when not (Lexer.is_keyword x) -> Ast.Ident (x, t.Lexer.span)
  | Lexer.Tsym "(" ->
      let e = parse_or st in
      ignore (expect_sym st ")");
      e
  | tok -> fail_at t (Printf.sprintf "expected an expression, found %s" (tok_name tok))

let parse_expr = parse_or

(* --------------------------------------------------------------- clauses *)

let parse_actions st : Ast.action list =
  ignore (expect_sym st "{");
  let actions = ref [] in
  let parse_action () =
    if at_keyword st "push" then begin
      let t = next st in
      let queue, _ = expect_ident st "a queue name" in
      let family, fspan = expect_ident st "a packet family" in
      let arg =
        if at_sym st "(" then begin
          ignore (next st);
          let e = parse_expr st in
          ignore (expect_sym st ")");
          Some e
        end
        else None
      in
      actions :=
        Ast.Apush { queue; family; arg; span = join t.Lexer.span fspan } :: !actions
    end
    else begin
      let target, tspan = expect_ident st "a variable name" in
      let t = next st in
      let op =
        match t.Lexer.tok with
        | Lexer.Tsym "=" -> `Assign
        | Lexer.Tsym "+=" -> `Add
        | Lexer.Tsym "-=" -> `Sub
        | tok ->
            fail_at t
              (Printf.sprintf "expected \"=\", \"+=\" or \"-=\", found %s" (tok_name tok))
      in
      let value = parse_expr st in
      actions :=
        Ast.Aset { target; op; value; span = join tspan (Ast.expr_span value) } :: !actions
    end
  in
  if not (at_sym st "}") then begin
    parse_action ();
    while at_sym st ";" do
      ignore (next st);
      if not (at_sym st "}") then parse_action ()
    done
  end;
  ignore (expect_sym st "}");
  List.rev !actions

let parse_guard st = if at_keyword st "when" then (ignore (next st); Some (parse_expr st)) else None

let parse_emit st : Ast.emit =
  if at_keyword st "deliver" then
    let t = next st in
    Ast.Edeliver t.Lexer.span
  else if at_keyword st "send" then begin
    let t = next st in
    if at_keyword st "from" then begin
      ignore (next st);
      let queue, qspan = expect_ident st "a queue name" in
      Ast.Esend_from { queue; span = join t.Lexer.span qspan }
    end
    else
      let family, fspan = expect_ident st "a packet family" in
      let arg =
        if at_sym st "(" then begin
          ignore (next st);
          let e = parse_expr st in
          ignore (expect_sym st ")");
          Some e
        end
        else None
      in
      Ast.Esend { family; arg; span = join t.Lexer.span fspan }
  end
  else
    let t = peek st in
    fail_at t
      (Printf.sprintf "expected \"send\", \"send from\" or \"deliver\" after \"->\", found %s"
         (tok_name t.Lexer.tok))

let parse_clause st : Ast.clause =
  if at_keyword st "on" then begin
    let t0 = next st in
    let trigger =
      if at_keyword st "submit" then
        let t = next st in
        Ast.Tsubmit t.Lexer.span
      else
        let family, fspan = expect_ident st "a packet family or \"submit\"" in
        let binder =
          if at_sym st "(" then begin
            ignore (next st);
            let b, _ = expect_ident st "a binder name" in
            ignore (expect_sym st ")");
            Some b
          end
          else None
        in
        Ast.Tpacket { family; binder; span = fspan }
    in
    let guard = parse_guard st in
    let actions = if at_sym st "{" then parse_actions st else [] in
    let last =
      match actions with
      | [] -> (
          match guard with
          | Some g -> Ast.expr_span g
          | None -> ( match trigger with Ast.Tsubmit s -> s | Ast.Tpacket { span; _ } -> span))
      | _ -> st.toks.(max 0 (st.ix - 1)).Lexer.span
    in
    Ast.Con { trigger; guard; actions; span = join t0.Lexer.span last }
  end
  else begin
    let t0 = expect_keyword st "poll" in
    let guard = parse_guard st in
    let emit =
      if at_sym st "->" then begin
        ignore (next st);
        Some (parse_emit st)
      end
      else None
    in
    let actions = if at_sym st "{" then parse_actions st else [] in
    Ast.Cpoll
      { guard; emit; actions; span = join t0.Lexer.span st.toks.(max 0 (st.ix - 1)).Lexer.span }
  end

(* ---------------------------------------------------------- declarations *)

let parse_saturate st = if at_keyword st "saturate" then (ignore (next st); Some (parse_expr st)) else None

let parse_decl st : Ast.decl =
  if at_keyword st "var" then begin
    let t0 = next st in
    let name, _ = expect_ident st "a variable name" in
    ignore (expect_sym st ":");
    let ty =
      if at_keyword st "bool" then
        let t = next st in
        Ast.Tbool t.Lexer.span
      else begin
        let lo = parse_expr st in
        ignore (expect_sym st "..");
        let hi = parse_expr st in
        Ast.Trange (lo, hi, join (Ast.expr_span lo) (Ast.expr_span hi))
      end
    in
    ignore (expect_sym st "=");
    let init = parse_expr st in
    Ast.Dvar { name; ty; init; span = join t0.Lexer.span (Ast.expr_span init) }
  end
  else if at_keyword st "counter" then begin
    let t0 = next st in
    let name, _ = expect_ident st "a counter name" in
    ignore (expect_sym st "=");
    let init = parse_expr st in
    let saturate = parse_saturate st in
    let last =
      match saturate with Some e -> Ast.expr_span e | None -> Ast.expr_span init
    in
    Ast.Dcounter { name; init; saturate; span = join t0.Lexer.span last }
  end
  else begin
    let t0 = expect_keyword st "queue" in
    let name, nspan = expect_ident st "a queue name" in
    let saturate = parse_saturate st in
    let last = match saturate with Some e -> Ast.expr_span e | None -> nspan in
    Ast.Dqueue { name; saturate; span = join t0.Lexer.span last }
  end

let parse_station st : Ast.station =
  let t0 = expect_sym st "{" in
  let decls = ref [] in
  let clauses = ref [] in
  let rec go () =
    if at_sym st "}" then ()
    else if at_keyword st "var" || at_keyword st "counter" || at_keyword st "queue" then begin
      decls := parse_decl st :: !decls;
      go ()
    end
    else if at_keyword st "on" || at_keyword st "poll" then begin
      clauses := parse_clause st :: !clauses;
      go ()
    end
    else
      let t = peek st in
      fail_at t
        (Printf.sprintf
           "expected a declaration (var/counter/queue), a clause (on/poll) or \"}\", found %s"
           (tok_name t.Lexer.tok))
  in
  go ();
  let t1 = expect_sym st "}" in
  { Ast.decls = List.rev !decls; clauses = List.rev !clauses; sspan = join t0.Lexer.span t1.Lexer.span }

let parse_families st : Ast.family list =
  ignore (expect_sym st "{");
  let fams = ref [] in
  while not (at_sym st "}") do
    let fname, fspan = expect_ident st "a packet family name" in
    let param =
      if at_sym st "(" then begin
        ignore (next st);
        let b, _ = expect_ident st "a parameter name" in
        ignore (expect_sym st ":");
        let lo = parse_expr st in
        ignore (expect_sym st "..");
        let hi = parse_expr st in
        ignore (expect_sym st ")");
        Some (b, lo, hi)
      end
      else None
    in
    fams := { Ast.fname; param; fspan } :: !fams
  done;
  ignore (expect_sym st "}");
  List.rev !fams

(* ------------------------------------------------------------------ spec *)

let parse_spec st : Ast.spec =
  let t0 = expect_keyword st "protocol" in
  let name, _ = expect_string st "the protocol name" in
  ignore (expect_sym st "{");
  let describe = ref None in
  let consts = ref [] in
  let families = ref None in
  let sender = ref None in
  let receiver = ref None in
  let dup t what = fail_at t (Printf.sprintf "duplicate %s section" what) in
  let rec go () =
    if at_sym st "}" then ()
    else begin
      (if at_keyword st "describe" then begin
         let t = next st in
         if !describe <> None then dup t "describe";
         let s, _ = expect_string st "the description" in
         describe := Some s
       end
       else if at_keyword st "const" then begin
         ignore (next st);
         let name, nspan = expect_ident st "a constant name" in
         ignore (expect_sym st "=");
         let e = parse_expr st in
         consts := (name, e, nspan) :: !consts
       end
       else if at_keyword st "packets" then begin
         let t = next st in
         if !families <> None then dup t "packets";
         families := Some (parse_families st)
       end
       else if at_keyword st "sender" then begin
         let t = next st in
         if !sender <> None then dup t "sender";
         sender := Some (parse_station st)
       end
       else if at_keyword st "receiver" then begin
         let t = next st in
         if !receiver <> None then dup t "receiver";
         receiver := Some (parse_station st)
       end
       else
         let t = peek st in
         fail_at t
           (Printf.sprintf
              "expected describe, const, packets, sender, receiver or \"}\", found %s"
              (tok_name t.Lexer.tok)));
      go ()
    end
  in
  go ();
  let t1 = expect_sym st "}" in
  (match (peek st).Lexer.tok with
  | Lexer.Teof -> ()
  | tok -> fail_at (peek st) (Printf.sprintf "trailing input after the protocol: %s" (tok_name tok)));
  let missing what (t : Lexer.token) = fail_at t (Printf.sprintf "missing %s section" what) in
  let sender = match !sender with Some s -> s | None -> missing "sender" t1 in
  let receiver = match !receiver with Some r -> r | None -> missing "receiver" t1 in
  {
    Ast.name;
    describe = !describe;
    consts = List.rev !consts;
    families = Option.value !families ~default:[];
    sender;
    receiver;
    span = join t0.Lexer.span t1.Lexer.span;
  }

let parse (src : string) : (Ast.spec, Diag.t) result =
  match Lexer.tokenize src with
  | Error d -> Error d
  | Ok toks -> (
      let st = { toks = Array.of_list toks; ix = 0 } in
      match parse_spec st with s -> Ok s | exception Fail d -> Error d)
