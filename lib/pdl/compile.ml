(* Compilation of a checked spec to a {!Nfc_protocol.Spec.S} first-class
   module.

   Both stations are interpreted over a flat [value array] environment —
   one cell per declared variable/counter/queue — with every expression
   closure-converted once at compile time into an [env -> binder -> int]
   function (booleans as 0/1), so the per-transition cost is closure
   application, not AST traversal.

   The derived state hooks exist by construction:

   - [compare_*]/[hash_*] both go through the same normal form (queues
     flattened to lists), so S1 coherence — equal states hash equally —
     holds for every compilable spec.
   - [cover_norm_*] is assembled from the declared [saturate] clauses via
     {!Spec.saturate_counter}/{!Spec.saturate_deque}; a station with no
     saturating declaration gets [None] and is simply exact-checked.
   - [*_space_bits] charges [bits_for_int] per range/counter cell, one
     bit per bool, and two bits per queued packet — exactly the
     accounting the hand-written protocol modules use, which is what lets
     an interpreted spec reproduce their lint reports byte for byte. *)

open Nfc_protocol
module Deque = Nfc_util.Deque

type value = Vbool of bool | Vint of int | Vqueue of int Deque.t

type env = value array

let get_int (env : env) i =
  match env.(i) with
  | Vint n -> n
  | Vbool b -> if b then 1 else 0
  | Vqueue _ -> assert false (* checker bars queues from expressions *)

let get_queue (env : env) i =
  match env.(i) with Vqueue q -> q | _ -> assert false

(* expr -> (env -> binder -> int), booleans encoded as 0/1. *)
let rec comp (e : Check.cexpr) : env -> int -> int =
  match e with
  | Check.Cint n -> fun _ _ -> n
  | Check.Cbool b ->
      let v = if b then 1 else 0 in
      fun _ _ -> v
  | Check.Cslot i -> fun env _ -> get_int env i
  | Check.Cbinder -> fun _ b -> b
  | Check.Cbudget -> fun _ _ -> 0 (* never reached: budget only in saturate exprs *)
  | Check.Cun (Ast.Neg, x) ->
      let fx = comp x in
      fun env b -> -fx env b
  | Check.Cun (Ast.Not, x) ->
      let fx = comp x in
      fun env b -> 1 - fx env b
  | Check.Cbin (op, x, y) -> (
      let fx = comp x and fy = comp y in
      match op with
      | Ast.Add -> fun env b -> fx env b + fy env b
      | Ast.Sub -> fun env b -> fx env b - fy env b
      | Ast.Mul -> fun env b -> fx env b * fy env b
      | Ast.Eq -> fun env b -> if fx env b = fy env b then 1 else 0
      | Ast.Ne -> fun env b -> if fx env b <> fy env b then 1 else 0
      | Ast.Lt -> fun env b -> if fx env b < fy env b then 1 else 0
      | Ast.Le -> fun env b -> if fx env b <= fy env b then 1 else 0
      | Ast.Gt -> fun env b -> if fx env b > fy env b then 1 else 0
      | Ast.Ge -> fun env b -> if fx env b >= fy env b then 1 else 0
      | Ast.And -> fun env b -> if fx env b <> 0 && fy env b <> 0 then 1 else 0
      | Ast.Or -> fun env b -> if fx env b <> 0 || fy env b <> 0 then 1 else 0)

(* Saturate expressions close over the budget instead of a binder. *)
let rec comp_sat (e : Check.cexpr) : int -> int =
  match e with
  | Check.Cint n -> fun _ -> n
  | Check.Cbool b -> fun _ -> if b then 1 else 0
  | Check.Cbudget -> fun budget -> budget
  | Check.Cslot _ | Check.Cbinder -> fun _ -> 0 (* checker rejects these *)
  | Check.Cun (Ast.Neg, x) ->
      let fx = comp_sat x in
      fun bg -> -fx bg
  | Check.Cun (Ast.Not, x) ->
      let fx = comp_sat x in
      fun bg -> 1 - fx bg
  | Check.Cbin (op, x, y) -> (
      let fx = comp_sat x and fy = comp_sat y in
      match op with
      | Ast.Add -> fun bg -> fx bg + fy bg
      | Ast.Sub -> fun bg -> fx bg - fy bg
      | Ast.Mul -> fun bg -> fx bg * fy bg
      | _ -> fun _ -> 0 (* checker types saturate exprs as integers *))

let pkt_value (fam : Check.cfamily) (arg : (env -> int -> int) option) env binder =
  match arg with
  | None -> fam.Check.base
  | Some f -> fam.Check.base + (f env binder - fam.Check.plo)

type caction_c =
  | Set of int * (env -> int -> int)  (* int/counter cell *)
  | Set_bool of int * (env -> int -> int)
  | Add of int * (env -> int -> int)
  | Sub of int * (env -> int -> int)
  | Push of int * Check.cfamily * (env -> int -> int) option

let comp_action (slots : Check.slot array) (a : Check.caction) : caction_c =
  match a with
  | Check.CAset (i, op, e) -> (
      let f = comp e in
      match (op, slots.(i).Check.kind) with
      | `Assign, Check.Kbool _ -> Set_bool (i, f)
      | `Assign, _ -> Set (i, f)
      | `Add, _ -> Add (i, f)
      | `Sub, _ -> Sub (i, f))
  | Check.CApush (q, fam, arg) -> Push (q, fam, Option.map comp arg)

(* Actions run sequentially on a scratch copy of the environment; each
   action reads the effects of the previous ones. *)
let run_actions (acts : caction_c list) (env : env) (binder : int) : env =
  match acts with
  | [] -> env
  | _ ->
      let scratch = Array.copy env in
      List.iter
        (fun a ->
          match a with
          | Set (i, f) -> scratch.(i) <- Vint (f scratch binder)
          | Set_bool (i, f) -> scratch.(i) <- Vbool (f scratch binder <> 0)
          | Add (i, f) -> scratch.(i) <- Vint (get_int scratch i + f scratch binder)
          | Sub (i, f) -> scratch.(i) <- Vint (get_int scratch i - f scratch binder)
          | Push (q, fam, arg) ->
              scratch.(q) <- Vqueue (Deque.push_back (pkt_value fam arg scratch binder) (get_queue scratch q)))
        acts;
      scratch

type con_c = {
  ctrig : Check.ctrigger;
  cguard : (env -> int -> int) option;
  cacts : caction_c list;
}

type poll_c = {
  pguard : (env -> int -> int) option;
  pemit : Check.cemit option;
  pemit_send : (env -> int -> int) option;  (* compiled CEsend payload *)
  pacts : caction_c list;
}

type istation = {
  slots : Check.slot array;
  init : env;
  on_submit_c : con_c list;  (* sender-only *)
  on_packet_c : con_c list;
  poll_c : poll_c list;
  sat : (budget:int -> env -> env) option;
  bits : env -> int;
  pp : Format.formatter -> env -> unit;
}

let init_env (slots : Check.slot array) : env =
  Array.map
    (fun (s : Check.slot) ->
      match s.Check.kind with
      | Check.Kbool b -> Vbool b
      | Check.Krange (_, _, init) -> Vint init
      | Check.Kcounter (init, _) -> Vint init
      | Check.Kqueue _ -> Vqueue Deque.empty)
    slots

(* Normal form for compare/hash: queues flattened to lists so structural
   comparison and [Spec.structural_hash] agree on equal states (S1). *)
let normal_form (env : env) =
  Array.to_list
    (Array.map
       (fun v ->
         match v with
         | Vbool b -> `B b
         | Vint n -> `I n
         | Vqueue q -> `Q (Deque.to_list q))
       env)

let compile_station (cs : Check.cstation) : istation =
  let slots = cs.Check.slots in
  let comp_con (c : Check.cclause) =
    match c.Check.trig with
    | None -> assert false
    | Some t ->
        {
          ctrig = t;
          cguard = Option.map comp c.Check.guard;
          cacts = List.map (comp_action slots) c.Check.acts;
        }
  in
  let on_submit_c, on_packet_c =
    List.partition
      (fun c -> c.ctrig = Check.CTsubmit)
      (List.map comp_con cs.Check.on_clauses)
  in
  let poll_c =
    List.map
      (fun (c : Check.cclause) ->
        {
          pguard = Option.map comp c.Check.guard;
          pemit = c.Check.emit;
          pemit_send =
            (match c.Check.emit with
            | Some (Check.CEsend (_, Some e)) -> Some (comp e)
            | _ -> None);
          pacts = List.map (comp_action slots) c.Check.acts;
        })
      cs.Check.poll_clauses
  in
  (* Saturation: one pass over the saturating cells; [None] if the
     station declared none. *)
  let sat_cells =
    Array.to_list slots
    |> List.mapi (fun i (s : Check.slot) ->
           match s.Check.kind with
           | Check.Kcounter (_, Some e) -> Some (i, `Counter (comp_sat e))
           | Check.Kqueue (Some e) -> Some (i, `Queue (comp_sat e))
           | _ -> None)
    |> List.filter_map Fun.id
  in
  let sat =
    if sat_cells = [] then None
    else
      Some
        (fun ~budget (env : env) ->
          let out = Array.copy env in
          let changed = ref false in
          List.iter
            (fun (i, kind) ->
              match kind with
              | `Counter f ->
                  let cap = f budget in
                  let v = get_int out i in
                  let v' = Spec.saturate_counter ~cap v in
                  if v' <> v then begin
                    out.(i) <- Vint v';
                    changed := true
                  end
              | `Queue f ->
                  let max_len = f budget in
                  let q = get_queue out i in
                  let q' = Spec.saturate_deque ~max_len q in
                  if q' != q then begin
                    out.(i) <- Vqueue q';
                    changed := true
                  end)
            sat_cells;
          if !changed then out else env)
  in
  let bits env =
    Array.fold_left
      (fun acc v ->
        acc
        +
        match v with
        | Vbool _ -> 1
        | Vint n -> Spec.bits_for_int (abs n)
        | Vqueue q -> 2 * Deque.length q)
      0 env
  in
  let pp ppf env =
    Format.fprintf ppf "{";
    Array.iteri
      (fun i v ->
        if i > 0 then Format.fprintf ppf "; ";
        Format.fprintf ppf "%s=" slots.(i).Check.sname;
        match v with
        | Vbool b -> Format.fprintf ppf "%b" b
        | Vint n -> Format.fprintf ppf "%d" n
        | Vqueue q -> Format.fprintf ppf "%d" (Deque.length q))
      env;
    Format.fprintf ppf "}"
  in
  {
    slots;
    init = init_env slots;
    on_submit_c;
    on_packet_c;
    poll_c;
    sat;
    bits;
    pp;
  }

let guard_ok g env binder = match g with None -> true | Some f -> f env binder <> 0

(* First matching [on] clause for a received packet; identity when none
   matches (input-enabled absorption, so fault-model packets outside the
   declared alphabet perturb nothing). *)
let dispatch_packet (clauses : con_c list) (env : env) (p : int) : env =
  let rec go = function
    | [] -> env
    | c :: rest -> (
        match c.ctrig with
        | Check.CTsubmit -> go rest
        | Check.CTpacket fam ->
            let size = fam.Check.phi - fam.Check.plo + 1 in
            if p >= fam.Check.base && p < fam.Check.base + size then
              let binder = fam.Check.plo + (p - fam.Check.base) in
              if guard_ok c.cguard env binder then run_actions c.cacts env binder
              else go rest
            else go rest)
  in
  go clauses

let dispatch_submit (clauses : con_c list) (env : env) : env =
  let rec go = function
    | [] -> env
    | c :: rest ->
        if guard_ok c.cguard env 0 then run_actions c.cacts env 0 else go rest
  in
  go clauses

(* First poll clause whose guard (plus the implicit queue-non-empty test
   of [send from]) holds; the emitted value is computed on the PRE-state,
   actions then produce the post-state. *)
type poll_result = Pnone | Pquiet of env | Psend of int * env | Pdeliver of env

let dispatch_poll (clauses : poll_c list) (env : env) : poll_result =
  let rec go = function
    | [] -> Pnone
    | c :: rest -> (
        let implicit_ok =
          match c.pemit with
          | Some (Check.CEsend_from q) -> not (Deque.is_empty (get_queue env q))
          | _ -> true
        in
        if not (implicit_ok && guard_ok c.pguard env 0) then go rest
        else
          match c.pemit with
          | None -> Pquiet (run_actions c.pacts env 0)
          | Some Check.CEdeliver -> Pdeliver (run_actions c.pacts env 0)
          | Some (Check.CEsend (fam, _)) ->
              let v = pkt_value fam c.pemit_send env 0 in
              Psend (v, run_actions c.pacts env 0)
          | Some (Check.CEsend_from q) ->
              let queue = get_queue env q in
              let v, rest_q =
                match Deque.pop_front queue with
                | Some (v, r) -> (v, r)
                | None -> assert false (* implicit_ok checked non-empty *)
              in
              let env = Array.copy env in
              env.(q) <- Vqueue rest_q;
              let env' = run_actions c.pacts env 0 in
              Psend (v, env'))
  in
  go clauses

(* A compiled spec with its station slots still addressable.  The
   refinement layer replays abstract witnesses concretely and needs to
   evaluate per-slot monitors ("sender slot 2 stays <= 40") against the
   otherwise-opaque [sender]/[receiver] states; everything else is plain
   [Spec.S].  Queue slots project to their length, matching the count
   the interval domain tracks for [Aqueue] values. *)
module type SPEC_PROBED = sig
  include Spec.S

  val sender_slot : int -> sender -> int

  val receiver_slot : int -> receiver -> int
end

let slot_value (st : env) (i : int) : int =
  match st.(i) with
  | Vbool b -> if b then 1 else 0
  | Vint n -> n
  | Vqueue q -> List.length (Deque.to_list q)

let to_spec_probed (ck : Check.checked) : (module SPEC_PROBED) =
  let s = compile_station ck.Check.csender in
  let r = compile_station ck.Check.creceiver in
  let module M = struct
    let name = ck.Check.cname

    let describe = ck.Check.cdescribe

    let header_bound = Some ck.Check.total_headers

    type sender = env

    type receiver = env

    let sender_init = s.init

    let receiver_init = r.init

    let on_submit st = dispatch_submit s.on_submit_c st

    let on_ack st p = dispatch_packet s.on_packet_c st p

    let sender_poll st =
      match dispatch_poll s.poll_c st with
      | Pnone -> (None, st)
      | Pquiet st' -> (None, st')
      | Psend (p, st') -> (Some p, st')
      | Pdeliver _ -> assert false (* checker bars deliver in the sender *)

    let on_data st p = dispatch_packet r.on_packet_c st p

    let receiver_poll st =
      match dispatch_poll r.poll_c st with
      | Pnone -> (None, st)
      | Pquiet st' -> (None, st')
      | Psend (p, st') -> (Some (Spec.Rsend p), st')
      | Pdeliver st' -> (Some Spec.Rdeliver, st')

    let compare_sender a b = compare (normal_form a) (normal_form b)

    let compare_receiver a b = compare (normal_form a) (normal_form b)

    let hash_sender = Some (fun st -> Spec.structural_hash (normal_form st))

    let hash_receiver = Some (fun st -> Spec.structural_hash (normal_form st))

    let cover_norm_sender =
      Option.map (fun f -> fun ~budget st -> f ~budget st) s.sat

    let cover_norm_receiver =
      Option.map (fun f -> fun ~budget st -> f ~budget st) r.sat

    let pp_sender = s.pp

    let pp_receiver = r.pp

    let sender_space_bits st = s.bits st

    let receiver_space_bits st = r.bits st

    let sender_slot i st = slot_value st i

    let receiver_slot i st = slot_value st i
  end in
  (module M : SPEC_PROBED)

let to_spec (ck : Check.checked) : Spec.t =
  let (module P : SPEC_PROBED) = to_spec_probed ck in
  (module P : Spec.S)
