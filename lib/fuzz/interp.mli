(** Deterministic schedule interpreter.

    Runs a {!Schedule.t} against a protocol over the real channel state
    ({!Nfc_channel.Transit}, so PL1 holds by construction) with the online
    DL checker ({!Nfc_sim.Dl_check} semantics via {!Dl_check}) watching
    every action.  No randomness: the same schedule always produces the
    same execution, which is what makes corpus entries, mutants and shrunk
    counterexamples exactly replayable. *)

type outcome = {
  trace : Nfc_automata.Execution.t;  (** actions in order, stops at the violation *)
  violation : string option;  (** first DL1/DL2 violation, if any *)
  executed : int;  (** schedule steps actually interpreted *)
  submitted : int;
  delivered : int;
  coverage : string list;
      (** distinct (sender-state, receiver-state, transit-signature) keys,
          in first-visit order — the fuzzer's coverage signal, reusing the
          configuration identity idea of {!Nfc_mcheck.Explore} *)
}

(** [run proto sched] interprets the schedule from the initial
    configuration.  With [stop_at_violation] (default [true]) the run
    halts at the first violating action; [outcome.executed] then points
    one past the violating step, which {!Shrink} uses to truncate. *)
val run : ?stop_at_violation:bool -> Nfc_protocol.Spec.t -> Schedule.t -> outcome

(** [violates proto sched] = [(run proto sched).violation <> None]. *)
val violates : Nfc_protocol.Spec.t -> Schedule.t -> bool
