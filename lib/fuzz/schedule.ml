open Nfc_automata

type step =
  | Submit
  | Sender_poll
  | Receiver_poll
  | Deliver of Action.dir * int
  | Drop of Action.dir * int

type t = step array

let empty : t = [||]
let length = Array.length
let of_list = Array.of_list
let to_list = Array.to_list
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let submits t =
  Array.fold_left (fun acc s -> if s = Submit then acc + 1 else acc) 0 t

let dir_to_string = function Action.T_to_r -> "tr" | Action.R_to_t -> "rt"

let step_to_string = function
  | Submit -> "submit"
  | Sender_poll -> "sender_poll"
  | Receiver_poll -> "receiver_poll"
  | Deliver (d, i) -> Printf.sprintf "deliver %s %d" (dir_to_string d) i
  | Drop (d, i) -> Printf.sprintf "drop %s %d" (dir_to_string d) i

let render t =
  String.concat "\n" (List.map step_to_string (to_list t)) ^ "\n"

let parse_dir = function
  | "tr" -> Some Action.T_to_r
  | "rt" -> Some Action.R_to_t
  | _ -> None

let parse_step line =
  let parts = String.split_on_char ' ' (String.trim line) in
  let parts = List.filter (fun s -> s <> "") parts in
  match parts with
  | [] -> Ok None
  | comment :: _ when comment.[0] = '#' -> Ok None
  | [ "submit" ] -> Ok (Some Submit)
  | [ "sender_poll" ] -> Ok (Some Sender_poll)
  | [ "receiver_poll" ] -> Ok (Some Receiver_poll)
  | [ ("deliver" | "drop") as verb; d; i ] -> (
      match (parse_dir d, int_of_string_opt i) with
      | Some dir, Some idx when idx >= 0 ->
          Ok (Some (if verb = "deliver" then Deliver (dir, idx) else Drop (dir, idx)))
      | None, _ -> Error "bad direction (tr|rt)"
      | _, _ -> Error "bad copy index (non-negative integer)")
  | verb :: _ -> Error (Printf.sprintf "unknown step %S" verb)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go i acc = function
    | [] -> Ok (of_list (List.rev acc))
    | line :: rest -> (
        match parse_step line with
        | Ok None -> go (i + 1) acc rest
        | Ok (Some s) -> go (i + 1) (s :: acc) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" i msg))
  in
  go 1 [] lines

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (render t))

let load path =
  match open_in path with
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let n = in_channel_length ic in
          parse (really_input_string ic n))
  | exception Sys_error msg -> Error msg

let pp_step ppf s = Format.pp_print_string ppf (step_to_string s)

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_step)
    (to_list t)
