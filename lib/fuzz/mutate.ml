open Nfc_automata
module Rng = Nfc_util.Rng

type op = Splice | Duplicate_stale | Reorder_burst | Drop_burst | Truncate | Insert_polls

let all_ops = [ Splice; Duplicate_stale; Reorder_burst; Drop_burst; Truncate; Insert_polls ]

let op_name = function
  | Splice -> "splice"
  | Duplicate_stale -> "duplicate-stale"
  | Reorder_burst -> "reorder-burst"
  | Drop_burst -> "drop-burst"
  | Truncate -> "truncate"
  | Insert_polls -> "insert-polls"

(* Random [pos, pos+len) window inside [0, n). *)
let window rng n =
  let pos = Rng.int rng n in
  let len = 1 + Rng.int rng (max 1 (min 8 (n - pos))) in
  (pos, min len (n - pos))

let insert_at t pos segment =
  let before = Array.sub t 0 pos in
  let after = Array.sub t pos (Array.length t - pos) in
  Array.concat [ before; segment; after ]

let apply rng op (t : Schedule.t) : Schedule.t =
  let n = Schedule.length t in
  if n = 0 then t
  else
    match op with
    | Splice ->
        (* Copy one window of the schedule to another position: re-runs a
           phrase (e.g. a poll burst) in a different phase of the protocol. *)
        let pos, len = window rng n in
        let segment = Array.sub t pos len in
        insert_at t (Rng.int rng (n + 1)) segment
    | Duplicate_stale -> (
        (* Replay attack in miniature: repeat an earlier delivery later in
           the run, when the addressed copy is stale. *)
        let delivers =
          Array.to_list t
          |> List.mapi (fun i s -> (i, s))
          |> List.filter (fun (_, s) ->
                 match s with Schedule.Deliver _ -> true | _ -> false)
        in
        match Rng.pick rng delivers with
        | None -> insert_at t (Rng.int rng (n + 1)) [| Schedule.Deliver (Action.T_to_r, 0) |]
        | Some (i, step) ->
            let stale =
              match step with
              | Schedule.Deliver (d, _) -> Schedule.Deliver (d, 0)
              | s -> s
            in
            insert_at t (i + 1 + Rng.int rng (n - i)) [| stale |])
    | Reorder_burst ->
        let pos, len = window rng n in
        let t' = Array.copy t in
        let seg = Array.sub t pos len in
        Rng.shuffle rng seg;
        Array.blit seg 0 t' pos len;
        t'
    | Drop_burst ->
        let len = 1 + Rng.int rng 4 in
        let seg =
          Array.init len (fun _ ->
              Schedule.Drop
                ((if Rng.bool rng 0.5 then Action.T_to_r else Action.R_to_t), Rng.int rng 4))
        in
        insert_at t (Rng.int rng (n + 1)) seg
    | Truncate -> Array.sub t 0 (1 + Rng.int rng n)
    | Insert_polls ->
        let len = 1 + Rng.int rng 6 in
        let step =
          if Rng.bool rng 0.5 then Schedule.Sender_poll else Schedule.Receiver_poll
        in
        insert_at t (Rng.int rng (n + 1)) (Array.make len step)

let mutate rng t =
  let op =
    match
      Rng.pick_weighted rng
        [
          (2.0, Splice);
          (3.0, Duplicate_stale);
          (2.0, Reorder_burst);
          (1.0, Drop_burst);
          (1.0, Truncate);
          (2.0, Insert_polls);
        ]
    with
    | Some op -> op
    | None -> Splice
  in
  apply rng op t
