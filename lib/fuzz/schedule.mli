(** Serializable adversary schedules.

    A schedule is a finite sequence of channel-adversary and scheduler
    decisions — the fuzzing analogue of the hand-crafted adversaries behind
    the paper's Theorems 3.1 and 4.1.  Interpreting a schedule against a
    protocol ({!Interp}) is fully deterministic: no RNG is consulted, so
    any schedule (saved, mutated or shrunk) replays to the same execution.

    [Deliver (dir, i)] / [Drop (dir, i)] address the [i]-th oldest
    in-transit copy on channel [dir], with [i] taken modulo the number of
    live copies ([i = 0] is always the stalest copy — the one the paper's
    replay attack resurrects).  A deliver/drop on an empty channel and a
    submit/poll that enables nothing are interpreted as no-ops, so every
    step sequence is a valid schedule — mutation operators never have to
    repair anything. *)

open Nfc_automata

type step =
  | Submit  (** [send_msg]: the user hands the sender one message *)
  | Sender_poll  (** one locally-controlled turn at the transmitting station *)
  | Receiver_poll  (** one locally-controlled turn at the receiving station *)
  | Deliver of Action.dir * int
      (** deliver the [i mod live]-th oldest in-transit copy *)
  | Drop of Action.dir * int  (** drop the [i mod live]-th oldest in-transit copy *)

type t = step array

val empty : t
val length : t -> int
val of_list : step list -> t
val to_list : t -> step list
val equal : t -> t -> bool
val compare : t -> t -> int

(** Number of [Submit] steps. *)
val submits : t -> int

(** One step per line: [submit], [sender_poll], [receiver_poll],
    [deliver tr 0], [drop rt 2].  Blank lines and [#] comments are
    ignored by {!parse}. *)
val render : t -> string

val parse : string -> (t, string) result
val save : string -> t -> unit
val load : string -> (t, string) result
val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit
