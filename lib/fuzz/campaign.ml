module Rng = Nfc_util.Rng
module Json = Nfc_util.Json
module Pool = Nfc_util.Pool
module Spec = Nfc_protocol.Spec

type cfg = {
  iterations : int;
  time_budget : float option;
  seed : int;
  gen : Gen.cfg;
  mutate_ratio : float;
  shrink : bool;
  batches : int;
}

let default_cfg =
  {
    iterations = 50_000;
    time_budget = None;
    seed = 1;
    gen = Gen.default_cfg;
    mutate_ratio = 0.7;
    shrink = false;
    batches = 1;
  }

type finding = {
  schedule : Schedule.t;
  violation : string;
  found_at : int;
  batch : int;
  shrunk : Schedule.t option;
  trace : Nfc_automata.Execution.t;
}

type result = {
  protocol : string;
  runs : int;
  coverage : int;
  corpus : int;
  elapsed : float;
  finding : finding option;
}

(* The inner fuzz loop of one RNG stream: generate-or-mutate, run, feed
   coverage back, stop at the first violation.  [batch] only labels the
   finding; shrinking and logging stay with the caller so parallel batches
   do no redundant work and never write from a worker domain. *)
let run_batch (proto : Spec.t) cfg ~batch ~rng ~iterations =
  let corpus = Corpus.create () in
  let started = Sys.time () in
  let over_budget () =
    match cfg.time_budget with
    | None -> false
    | Some s -> Sys.time () -. started >= s
  in
  let finding = ref None in
  let runs = ref 0 in
  (try
     while !runs < iterations && not (over_budget ()) do
       incr runs;
       let sched =
         match Corpus.pick rng corpus with
         | Some seed_sched when Rng.bool rng cfg.mutate_ratio -> Mutate.mutate rng seed_sched
         | _ -> Gen.schedule rng cfg.gen
       in
       let out = Interp.run proto sched in
       ignore (Corpus.observe corpus sched ~coverage:out.Interp.coverage);
       match out.Interp.violation with
       | None -> ()
       | Some violation ->
           finding :=
             Some
               {
                 schedule = sched;
                 violation;
                 found_at = !runs;
                 batch;
                 shrunk = None;
                 trace = out.Interp.trace;
               };
           raise Exit
     done
   with Exit -> ());
  (!runs, corpus, !finding)

let shrink_finding ~log (proto : Spec.t) f =
  let minimal, trace = Shrink.minimize proto f.schedule in
  log
    (Printf.sprintf "%s: shrunk %d -> %d steps (%d actions)" (Spec.name proto)
       (Schedule.length f.schedule) (Schedule.length minimal) (List.length trace));
  { f with shrunk = Some minimal; trace }

let run ?(log = fun _ -> ()) ?(jobs = 1) (proto : Spec.t) cfg =
  if cfg.iterations < 1 then invalid_arg "Campaign.run: iterations must be >= 1";
  if cfg.batches < 1 then invalid_arg "Campaign.run: batches must be >= 1";
  if cfg.batches = 1 then begin
    (* The sequential campaign: one RNG stream, identical to the
       pre-batching behaviour run for run. *)
    let rng = Rng.of_int cfg.seed in
    let started = Sys.time () in
    let runs, corpus, found = run_batch proto cfg ~batch:0 ~rng ~iterations:cfg.iterations in
    let finding =
      match found with
      | None -> None
      | Some f ->
          log
            (Printf.sprintf "%s: violation after %d runs (%d coverage keys): %s"
               (Spec.name proto) runs (Corpus.coverage_size corpus) f.violation);
          Some (if cfg.shrink then shrink_finding ~log proto f else f)
    in
    {
      protocol = Spec.name proto;
      runs;
      coverage = Corpus.coverage_size corpus;
      corpus = Corpus.size corpus;
      elapsed = Sys.time () -. started;
      finding;
    }
  end
  else begin
    (* Batched campaign: the batch count fixes the RNG streams (batch i's
       generator is the i-th [Rng.split] of the root seed) and the
       iteration split, so which violations exist — and which batch finds
       one — depends only on (seed, batches), never on [jobs] or worker
       interleaving.  The reported finding is the one from the lowest
       batch index. *)
    let root = Rng.of_int cfg.seed in
    let per = cfg.iterations / cfg.batches in
    let rem = cfg.iterations mod cfg.batches in
    let specs =
      List.init cfg.batches (fun i ->
          (i, Rng.split root, per + if i < rem then 1 else 0))
    in
    let started = Sys.time () in
    let outs =
      Pool.map ~jobs
        (fun (i, rng, iterations) -> run_batch proto cfg ~batch:i ~rng ~iterations)
        specs
    in
    let corpus = Corpus.create () in
    List.iter (fun (_, c, _) -> Corpus.merge corpus c) outs;
    let runs = List.fold_left (fun acc (r, _, _) -> acc + r) 0 outs in
    let finding =
      match List.find_map (fun (_, _, f) -> f) outs with
      | None -> None
      | Some f ->
          log
            (Printf.sprintf "%s: violation in batch %d at run %d (%d coverage keys): %s"
               (Spec.name proto) f.batch f.found_at (Corpus.coverage_size corpus) f.violation);
          Some (if cfg.shrink then shrink_finding ~log proto f else f)
    in
    {
      protocol = Spec.name proto;
      runs;
      coverage = Corpus.coverage_size corpus;
      corpus = Corpus.size corpus;
      elapsed = Sys.time () -. started;
      finding;
    }
  end

let run_all ?log ?(jobs = 1) cfg =
  Pool.map ~jobs
    (fun entry -> run ?log (entry.Nfc_protocol.Registry.default ()) cfg)
    Nfc_protocol.Registry.all

let json r =
  Json.Obj
    [
         ("protocol", Json.String r.protocol);
         ("runs", Json.Int r.runs);
         ("coverage", Json.Int r.coverage);
         ("corpus", Json.Int r.corpus);
         ("elapsed_s", Json.Float r.elapsed);
         ( "finding",
           Json.opt
             (fun f ->
               Json.Obj
                 [
                   ("violation", Json.String f.violation);
                   ("found_at_run", Json.Int f.found_at);
                   ("batch", Json.Int f.batch);
                   ("schedule_steps", Json.Int (Schedule.length f.schedule));
                   ( "shrunk_steps",
                     Json.opt (fun s -> Json.Int (Schedule.length s)) f.shrunk );
                   ("trace_actions", Json.Int (List.length f.trace));
                 ])
             r.finding );
    ]

let to_json r = Json.to_string (json r)
let jsonl results = String.concat "\n" (List.map to_json results) ^ "\n"

let pp_result ppf r =
  match r.finding with
  | None ->
      Format.fprintf ppf "%-16s no violation in %d runs (%d configurations, %.2fs)" r.protocol
        r.runs r.coverage r.elapsed
  | Some f ->
      Format.fprintf ppf "%-16s VIOLATION at run %d (%d configurations, %.2fs): %s%s"
        r.protocol f.found_at r.coverage r.elapsed f.violation
        (match f.shrunk with
        | Some s -> Printf.sprintf " [shrunk to %d steps]" (Schedule.length s)
        | None -> "")
