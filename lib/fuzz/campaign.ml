module Rng = Nfc_util.Rng
module Json = Nfc_util.Json
module Spec = Nfc_protocol.Spec

type cfg = {
  iterations : int;
  time_budget : float option;
  seed : int;
  gen : Gen.cfg;
  mutate_ratio : float;
  shrink : bool;
}

let default_cfg =
  {
    iterations = 50_000;
    time_budget = None;
    seed = 1;
    gen = Gen.default_cfg;
    mutate_ratio = 0.7;
    shrink = false;
  }

type finding = {
  schedule : Schedule.t;
  violation : string;
  found_at : int;
  shrunk : Schedule.t option;
  trace : Nfc_automata.Execution.t;
}

type result = {
  protocol : string;
  runs : int;
  coverage : int;
  corpus : int;
  elapsed : float;
  finding : finding option;
}

let run ?(log = fun _ -> ()) (proto : Spec.t) cfg =
  if cfg.iterations < 1 then invalid_arg "Campaign.run: iterations must be >= 1";
  let rng = Rng.of_int cfg.seed in
  let corpus = Corpus.create () in
  let started = Sys.time () in
  let over_budget () =
    match cfg.time_budget with
    | None -> false
    | Some s -> Sys.time () -. started >= s
  in
  let finding = ref None in
  let runs = ref 0 in
  (try
     while !runs < cfg.iterations && not (over_budget ()) do
       incr runs;
       let sched =
         match Corpus.pick rng corpus with
         | Some seed_sched when Rng.bool rng cfg.mutate_ratio -> Mutate.mutate rng seed_sched
         | _ -> Gen.schedule rng cfg.gen
       in
       let out = Interp.run proto sched in
       ignore (Corpus.observe corpus sched ~coverage:out.Interp.coverage);
       match out.Interp.violation with
       | None -> ()
       | Some violation ->
           log
             (Printf.sprintf "%s: violation after %d runs (%d coverage keys): %s"
                (Spec.name proto) !runs (Corpus.coverage_size corpus) violation);
           let shrunk, trace =
             if cfg.shrink then begin
               let minimal, trace = Shrink.minimize proto sched in
               log
                 (Printf.sprintf "%s: shrunk %d -> %d steps (%d actions)" (Spec.name proto)
                    (Schedule.length sched) (Schedule.length minimal) (List.length trace));
               (Some minimal, trace)
             end
             else (None, out.Interp.trace)
           in
           finding := Some { schedule = sched; violation; found_at = !runs; shrunk; trace };
           raise Exit
     done
   with Exit -> ());
  {
    protocol = Spec.name proto;
    runs = !runs;
    coverage = Corpus.coverage_size corpus;
    corpus = Corpus.size corpus;
    elapsed = Sys.time () -. started;
    finding = !finding;
  }

let run_all ?log cfg =
  List.map
    (fun entry -> run ?log (entry.Nfc_protocol.Registry.default ()) cfg)
    Nfc_protocol.Registry.all

let to_json r =
  Json.to_string
    (Json.Obj
       [
         ("protocol", Json.String r.protocol);
         ("runs", Json.Int r.runs);
         ("coverage", Json.Int r.coverage);
         ("corpus", Json.Int r.corpus);
         ("elapsed_s", Json.Float r.elapsed);
         ( "finding",
           Json.opt
             (fun f ->
               Json.Obj
                 [
                   ("violation", Json.String f.violation);
                   ("found_at_run", Json.Int f.found_at);
                   ("schedule_steps", Json.Int (Schedule.length f.schedule));
                   ( "shrunk_steps",
                     Json.opt (fun s -> Json.Int (Schedule.length s)) f.shrunk );
                   ("trace_actions", Json.Int (List.length f.trace));
                 ])
             r.finding );
       ])

let jsonl results = String.concat "\n" (List.map to_json results) ^ "\n"

let pp_result ppf r =
  match r.finding with
  | None ->
      Format.fprintf ppf "%-16s no violation in %d runs (%d configurations, %.2fs)" r.protocol
        r.runs r.coverage r.elapsed
  | Some f ->
      Format.fprintf ppf "%-16s VIOLATION at run %d (%d configurations, %.2fs): %s%s"
        r.protocol f.found_at r.coverage r.elapsed f.violation
        (match f.shrunk with
        | Some s -> Printf.sprintf " [shrunk to %d steps]" (Schedule.length s)
        | None -> "")
