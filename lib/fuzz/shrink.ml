let remove_range t pos len =
  Array.append (Array.sub t 0 pos) (Array.sub t (pos + len) (Array.length t - pos - len))

(* One ddmin-style sweep: try removing chunks of halving sizes; keep any
   removal that preserves the violation.  When a chunk goes, the next chunk
   slides into its place, so the position only advances on failure. *)
let removal_pass proto t =
  let changed = ref false in
  let cur = ref t in
  let size = ref (max 1 (Array.length t / 2)) in
  while !size >= 1 do
    let pos = ref 0 in
    while !pos < Array.length !cur do
      let len = min !size (Array.length !cur - !pos) in
      let candidate = remove_range !cur !pos len in
      if Interp.violates proto candidate then begin
        cur := candidate;
        changed := true
      end
      else pos := !pos + !size
    done;
    size := if !size = 1 then 0 else !size / 2
  done;
  (!cur, !changed)

(* Canonicalize copy indices: a minimal counterexample should address the
   stalest copy it can.  Tries 0, idx/2, idx-1 in that order. *)
let lower_pass proto t =
  let changed = ref false in
  let cur = ref t in
  Array.iteri
    (fun i step ->
      let try_lower rebuild idx =
        List.iter
          (fun idx' ->
            if idx' < idx then begin
              let candidate = Array.copy !cur in
              candidate.(i) <- rebuild idx';
              if Interp.violates proto candidate then begin
                cur := candidate;
                changed := true;
                raise Exit
              end
            end)
          [ 0; idx / 2; idx - 1 ]
      in
      try
        match step with
        | Schedule.Deliver (d, idx) when idx > 0 ->
            try_lower (fun idx' -> Schedule.Deliver (d, idx')) idx
        | Schedule.Drop (d, idx) when idx > 0 ->
            try_lower (fun idx' -> Schedule.Drop (d, idx')) idx
        | _ -> ()
      with Exit -> ())
    t;
  (!cur, !changed)

let shrink ?(max_passes = 100) proto sched =
  let first = Interp.run proto sched in
  if first.Interp.violation = None then
    invalid_arg "Shrink.shrink: schedule does not violate";
  (* The violation fires at step [executed]; everything after it is dead
     weight. *)
  let cur = ref (Array.sub sched 0 first.Interp.executed) in
  let passes = ref 0 in
  let continue = ref true in
  while !continue && !passes < max_passes do
    incr passes;
    let t1, removed = removal_pass proto !cur in
    let t2, lowered = lower_pass proto t1 in
    cur := t2;
    continue := removed || lowered
  done;
  !cur

let minimize ?max_passes proto sched =
  let minimal = shrink ?max_passes proto sched in
  (minimal, (Interp.run proto minimal).Interp.trace)
