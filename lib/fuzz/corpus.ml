module Rng = Nfc_util.Rng

type t = {
  seen : (string, unit) Hashtbl.t;
  mutable entries : Schedule.t array;
  mutable n_entries : int;
}

let create () = { seen = Hashtbl.create 1024; entries = Array.make 16 Schedule.empty; n_entries = 0 }

let coverage_size t = Hashtbl.length t.seen
let size t = t.n_entries
let entries t = Array.to_list (Array.sub t.entries 0 t.n_entries)

let keep t sched =
  if t.n_entries >= Array.length t.entries then begin
    let bigger = Array.make (2 * Array.length t.entries) Schedule.empty in
    Array.blit t.entries 0 bigger 0 t.n_entries;
    t.entries <- bigger
  end;
  t.entries.(t.n_entries) <- sched;
  t.n_entries <- t.n_entries + 1

(* Count the run's new coverage keys; a schedule that reached any new
   configuration earns a corpus slot. *)
let observe t sched ~coverage =
  let fresh =
    List.fold_left
      (fun acc key ->
        if Hashtbl.mem t.seen key then acc
        else begin
          Hashtbl.add t.seen key ();
          acc + 1
        end)
      0 coverage
  in
  if fresh > 0 then keep t sched;
  fresh

let pick rng t =
  if t.n_entries = 0 then None else Some t.entries.(Rng.int rng t.n_entries)

(* Union [src] into [dst]: coverage keys are merged, and every schedule
   [src] kept stays a mutation seed.  Used to aggregate per-batch corpora
   after a parallel campaign; merge order is the caller's (batch-index)
   order, so the aggregate is independent of worker interleaving. *)
let merge dst src =
  Hashtbl.iter (fun key () -> if not (Hashtbl.mem dst.seen key) then Hashtbl.add dst.seen key ()) src.seen;
  Array.iter (fun sched -> keep dst sched) (Array.sub src.entries 0 src.n_entries)
