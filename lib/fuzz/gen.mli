(** Seeded random schedule generation.

    Purely a function of the RNG state and the configuration: the same seed
    yields the same schedule, so whole fuzzing campaigns replay bit-for-bit.

    Generation is biased toward the shapes the paper's lower-bound proofs
    use: bursts of sender polls (crossing retransmission timeouts piles
    duplicate copies into the channel) and "replay" phrases that make
    progress on fresh copies before resurrecting the stalest one. *)

type cfg = {
  steps : int;  (** schedule length *)
  submits : int;  (** [Submit] budget *)
  drop_bias : float;  (** relative weight of drop steps *)
  stale_bias : float;  (** relative weight of replay-attack phrases *)
}

(** 80 steps, 4 submits, light dropping, noticeable replay bias. *)
val default_cfg : cfg

val schedule : Nfc_util.Rng.t -> cfg -> Schedule.t
