(** Coverage-guided corpus.

    Coverage is keyed on the (sender-state, receiver-state,
    transit-signature) tuples reported by {!Interp} — the same
    configuration identity the model checker ({!Nfc_mcheck.Explore})
    deduplicates on.  A schedule whose run visits at least one
    never-seen configuration is kept as a mutation seed. *)

type t

val create : unit -> t

(** [observe t sched ~coverage] merges the run's coverage keys and returns
    how many were new; the schedule is kept iff that count is positive. *)
val observe : t -> Schedule.t -> coverage:string list -> int

(** Distinct configurations seen across all observed runs. *)
val coverage_size : t -> int

(** Number of kept schedules. *)
val size : t -> int

val entries : t -> Schedule.t list

(** Uniform-random kept schedule, [None] while empty. *)
val pick : Nfc_util.Rng.t -> t -> Schedule.t option

(** [merge dst src] unions [src]'s coverage keys into [dst] and appends
    every kept schedule — the batch-aggregation step of a parallel
    campaign.  Merging in a fixed (batch-index) order makes the aggregate
    independent of how batches interleaved at run time. *)
val merge : t -> t -> unit
