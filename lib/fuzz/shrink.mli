(** Delta-debugging trace minimizer.

    Given a schedule whose interpretation violates DL1/DL2, produce a
    smaller schedule that still violates: truncate at the violating step,
    then alternate chunk-removal sweeps (ddmin) with copy-index
    canonicalization until a full pass changes nothing.  The procedure is
    deterministic and runs to a fixpoint, so it is idempotent:
    [shrink p (shrink p s) = shrink p s]. *)

(** [shrink proto sched] — [sched] must violate ([Invalid_argument]
    otherwise).  The result still violates and is never longer than the
    input.  [max_passes] (default 100) bounds the outer fixpoint loop. *)
val shrink : ?max_passes:int -> Nfc_protocol.Spec.t -> Schedule.t -> Schedule.t

(** [minimize proto sched] also interprets the minimal schedule and returns
    its execution — the replayable counterexample. *)
val minimize :
  ?max_passes:int ->
  Nfc_protocol.Spec.t ->
  Schedule.t ->
  Schedule.t * Nfc_automata.Execution.t
