open Nfc_automata
module Rng = Nfc_util.Rng

type cfg = {
  steps : int;
  submits : int;
  drop_bias : float;
  stale_bias : float;
}

let default_cfg = { steps = 80; submits = 4; drop_bias = 0.05; stale_bias = 0.25 }

(* Copy indices are interpreted modulo the live count, so "0" is always the
   stalest copy and a large index stands in for "one of the fresher ones". *)
let index rng =
  if Rng.bool rng 0.5 then 0 else Rng.int rng 4

let dir rng = if Rng.bool rng 0.5 then Action.T_to_r else Action.R_to_t

let schedule rng cfg =
  if cfg.steps < 1 then invalid_arg "Gen.schedule: steps must be >= 1";
  if cfg.submits < 0 then invalid_arg "Gen.schedule: submits must be >= 0";
  let out = ref [] in
  let n = ref 0 in
  let submits_left = ref cfg.submits in
  let push s =
    out := s :: !out;
    incr n
  in
  (* Front-load a couple of submissions: the replay attack needs at least two
     messages before the stale copy can masquerade as a third. *)
  while !submits_left > cfg.submits / 2 && !n < cfg.steps do
    push Schedule.Submit;
    decr submits_left
  done;
  while !n < cfg.steps do
    let burst k step =
      for _ = 1 to min k (cfg.steps - !n) do
        push (step ())
      done
    in
    match
      Rng.pick_weighted rng
        [
          (1.0, `Submit);
          (3.0, `Sender_polls);
          (3.0, `Receiver_polls);
          (3.0, `Deliver);
          (cfg.drop_bias *. 10.0, `Drop);
          (cfg.stale_bias *. 10.0, `Replay);
        ]
    with
    | None | Some `Submit ->
        if !submits_left > 0 then begin
          push Schedule.Submit;
          decr submits_left
        end
        else push Schedule.Sender_poll
    | Some `Sender_polls ->
        (* Long enough runs cross retransmission timeouts, piling duplicate
           copies into the channel. *)
        burst (1 + Rng.int rng 6) (fun () -> Schedule.Sender_poll)
    | Some `Receiver_polls -> burst (1 + Rng.int rng 3) (fun () -> Schedule.Receiver_poll)
    | Some `Deliver -> push (Schedule.Deliver (dir rng, index rng))
    | Some `Drop -> push (Schedule.Drop (dir rng, index rng))
    | Some `Replay ->
        (* The paper's attack shape: let the protocol make progress (deliver
           fresh copies, poll both ends), then resurrect the stalest copy. *)
        burst (2 + Rng.int rng 3) (fun () ->
            match Rng.int rng 3 with
            | 0 -> Schedule.Deliver (dir rng, 3)
            | 1 -> Schedule.Sender_poll
            | _ -> Schedule.Receiver_poll);
        if !n < cfg.steps then push (Schedule.Deliver (Action.T_to_r, 0));
        if !n < cfg.steps then push Schedule.Receiver_poll
  done;
  Schedule.of_list (List.rev !out)
