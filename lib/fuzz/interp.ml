open Nfc_automata
module Transit = Nfc_channel.Transit
module Spec = Nfc_protocol.Spec
module Dl_check = Nfc_sim.Dl_check

type outcome = {
  trace : Execution.t;
  violation : string option;
  executed : int;
  submitted : int;
  delivered : int;
  coverage : string list;
}

(* Live copies in send order, so "index i" = i-th stalest copy.  Transit
   remains the ground truth (PL1 by construction); this is just the
   age-ordered view the schedule addresses copies through. *)
type lane = { transit : Transit.t; mutable live : int list (* tags, oldest first *) }

let lane () = { transit = Transit.create (); live = [] }

let lane_send l pkt =
  let tag = Transit.send l.transit pkt in
  l.live <- l.live @ [ tag ]

let lane_take l idx ~delivered =
  match l.live with
  | [] -> None
  | live ->
      let n = List.length live in
      let tag = List.nth live (idx mod n) in
      l.live <- List.filter (fun t -> t <> tag) live;
      let take = if delivered then Transit.deliver_tag else Transit.drop_tag in
      take l.transit tag

let signature l =
  Format.asprintf "%a" Nfc_util.Multiset.pp_int (Transit.snapshot l.transit)

let run ?(stop_at_violation = true) (proto : Spec.t) (sched : Schedule.t) =
  let module P = (val proto) in
  let sender = ref P.sender_init in
  let receiver = ref P.receiver_init in
  let tr = lane () in
  let rt = lane () in
  let dl = Dl_check.create () in
  let trace = ref [] in
  let record a =
    trace := a :: !trace;
    ignore (Dl_check.on_action dl a)
  in
  let submitted = ref 0 in
  let delivered = ref 0 in
  let seen = Hashtbl.create 256 in
  let coverage = ref [] in
  let mark () =
    let key =
      Format.asprintf "%a|%a|%s|%s" P.pp_sender !sender P.pp_receiver !receiver
        (signature tr) (signature rt)
    in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      coverage := key :: !coverage
    end
  in
  mark ();
  let exec (step : Schedule.step) =
    match step with
    | Schedule.Submit ->
        record (Action.Send_msg !submitted);
        incr submitted;
        sender := P.on_submit !sender
    | Schedule.Sender_poll -> (
        match P.sender_poll !sender with
        | None, s -> sender := s
        | Some pkt, s ->
            sender := s;
            record (Action.Send_pkt (Action.T_to_r, pkt));
            lane_send tr pkt)
    | Schedule.Receiver_poll -> (
        match P.receiver_poll !receiver with
        | None, r -> receiver := r
        | Some Spec.Rdeliver, r ->
            receiver := r;
            record (Action.Receive_msg !delivered);
            incr delivered
        | Some (Spec.Rsend pkt), r ->
            receiver := r;
            record (Action.Send_pkt (Action.R_to_t, pkt));
            lane_send rt pkt)
    | Schedule.Deliver (Action.T_to_r, i) -> (
        match lane_take tr i ~delivered:true with
        | None -> ()
        | Some pkt ->
            record (Action.Receive_pkt (Action.T_to_r, pkt));
            receiver := P.on_data !receiver pkt)
    | Schedule.Deliver (Action.R_to_t, i) -> (
        match lane_take rt i ~delivered:true with
        | None -> ()
        | Some pkt ->
            record (Action.Receive_pkt (Action.R_to_t, pkt));
            sender := P.on_ack !sender pkt)
    | Schedule.Drop (dir, i) -> (
        let l = match dir with Action.T_to_r -> tr | Action.R_to_t -> rt in
        match lane_take l i ~delivered:false with
        | None -> ()
        | Some pkt -> record (Action.Drop_pkt (dir, pkt)))
  in
  let executed = ref 0 in
  (try
     Array.iter
       (fun step ->
         exec step;
         incr executed;
         mark ();
         if stop_at_violation && Dl_check.violated dl <> None then raise Exit)
       sched
   with Exit -> ());
  {
    trace = List.rev !trace;
    violation = Dl_check.violated dl;
    executed = !executed;
    submitted = !submitted;
    delivered = !delivered;
    coverage = List.rev !coverage;
  }

let violates proto sched = (run proto sched).violation <> None
