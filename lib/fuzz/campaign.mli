(** Budgeted fuzzing campaigns.

    One campaign fuzzes one protocol: generate or mutate a schedule, run it
    ({!Interp}), feed the coverage back ({!Corpus}), stop at the first DL
    violation (optionally shrinking it) or when the budget runs out.  With
    [time_budget = None] a campaign is a pure function of its seed.

    With [batches > 1] the run budget is split across that many
    independent RNG streams (batch i's generator is the i-th {!Rng.split}
    of the root seed), each with its own corpus, merged afterwards in
    batch order.  The batch count — not the job count — fixes the random
    streams, so results depend only on (seed, batches) and a finding is
    reproducible from its [batch] index; [jobs] only decides how many
    domains execute the batches. *)

type cfg = {
  iterations : int;  (** run budget (split across batches) *)
  time_budget : float option;
      (** optional CPU-seconds cap, applied per batch (non-deterministic;
          CPU time is process-wide, so under parallelism it triggers
          early) *)
  seed : int;
  gen : Gen.cfg;
  mutate_ratio : float;  (** probability of mutating a corpus entry vs generating fresh *)
  shrink : bool;  (** minimize the finding with {!Shrink} *)
  batches : int;  (** independent RNG streams; 1 = the sequential campaign *)
}

(** 50k iterations, no time cap, seed 1, no shrinking, one batch. *)
val default_cfg : cfg

type finding = {
  schedule : Schedule.t;  (** the violating schedule as found *)
  violation : string;
  found_at : int;  (** 1-based run number within the finding batch *)
  batch : int;  (** 0-based batch index ([0] for sequential campaigns) *)
  shrunk : Schedule.t option;
  trace : Nfc_automata.Execution.t;
      (** execution of the shrunk schedule when shrinking, else of the
          original finding — replayable via [nfc replay] *)
}

type result = {
  protocol : string;
  runs : int;  (** total runs across batches *)
  coverage : int;  (** distinct configurations reached (union over batches) *)
  corpus : int;  (** schedules kept as mutation seeds *)
  elapsed : float;  (** CPU seconds (summed across domains when parallel) *)
  finding : finding option;
      (** the lowest-batch-index finding; shrinking and logging happen
          once, after the batches complete *)
}

(** [jobs] (default 1) fans batches out over that many domains ([0] = one
    per core); it never changes the result. *)
val run : ?log:(string -> unit) -> ?jobs:int -> Nfc_protocol.Spec.t -> cfg -> result

(** Fuzz every protocol in {!Nfc_protocol.Registry.all} (default
    parameters), in registry order.  [jobs] parallelises across
    protocols. *)
val run_all : ?log:(string -> unit) -> ?jobs:int -> cfg -> result list

(** The result as a JSON value — shared by the CLI's JSONL output and the
    [/v1/fuzz] service endpoint. *)
val json : result -> Nfc_util.Json.t

(** One compact JSON object per result; {!jsonl} joins them one per line. *)
val to_json : result -> string

val jsonl : result list -> string
val pp_result : Format.formatter -> result -> unit
