(** Budgeted fuzzing campaigns.

    One campaign fuzzes one protocol: generate or mutate a schedule, run it
    ({!Interp}), feed the coverage back ({!Corpus}), stop at the first DL
    violation (optionally shrinking it) or when the budget runs out.  With
    [time_budget = None] a campaign is a pure function of its seed. *)

type cfg = {
  iterations : int;  (** run budget *)
  time_budget : float option;  (** optional CPU-seconds cap (non-deterministic) *)
  seed : int;
  gen : Gen.cfg;
  mutate_ratio : float;  (** probability of mutating a corpus entry vs generating fresh *)
  shrink : bool;  (** minimize the finding with {!Shrink} *)
}

(** 50k iterations, no time cap, seed 1, no shrinking. *)
val default_cfg : cfg

type finding = {
  schedule : Schedule.t;  (** the violating schedule as found *)
  violation : string;
  found_at : int;  (** 1-based run number *)
  shrunk : Schedule.t option;
  trace : Nfc_automata.Execution.t;
      (** execution of the shrunk schedule when shrinking, else of the
          original finding — replayable via [nfc replay] *)
}

type result = {
  protocol : string;
  runs : int;
  coverage : int;  (** distinct configurations reached *)
  corpus : int;  (** schedules kept as mutation seeds *)
  elapsed : float;  (** CPU seconds *)
  finding : finding option;
}

val run : ?log:(string -> unit) -> Nfc_protocol.Spec.t -> cfg -> result

(** Fuzz every protocol in {!Nfc_protocol.Registry.all} (default
    parameters), in registry order. *)
val run_all : ?log:(string -> unit) -> cfg -> result list

(** One compact JSON object per result; {!jsonl} joins them one per line. *)
val to_json : result -> string

val jsonl : result list -> string
val pp_result : Format.formatter -> result -> unit
