(** Schedule mutation operators.

    Every operator maps a valid schedule to a valid schedule (schedules are
    valid by construction — see {!Schedule}), so the fuzz loop never has to
    repair or reject mutants.  [Duplicate_stale] is the operator tuned to
    the paper's replay attack: it repeats an earlier delivery later in the
    run, re-addressed to the stalest in-transit copy. *)

type op =
  | Splice  (** copy a window of steps to another position *)
  | Duplicate_stale  (** repeat an earlier delivery, aimed at the oldest copy *)
  | Reorder_burst  (** shuffle a window of steps *)
  | Drop_burst  (** insert a run of drops *)
  | Truncate  (** cut the schedule at a random point *)
  | Insert_polls  (** insert a run of sender/receiver polls *)

val all_ops : op list
val op_name : op -> string

(** [apply rng op t] — deterministic given the RNG state. *)
val apply : Nfc_util.Rng.t -> op -> Schedule.t -> Schedule.t

(** Apply one weighted-random operator. *)
val mutate : Nfc_util.Rng.t -> Schedule.t -> Schedule.t
