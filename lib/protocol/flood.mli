(** A counting/flooding protocol with four headers — our executable
    stand-in for the bounded-header protocol of [AFWZ88] (see DESIGN.md,
    "Substitutions").

    Both stations share a threshold schedule T(i) = ceil(base * ratio^i);
    message [i] is delivered only after T(i) copies of its bit arrive.
    Counting is the only defence a bounded-header protocol has against
    stale copies, and the price is unbounded counters and a packet count
    exponential in the message index — the blow-up Theorem 4.1
    quantifies. *)

(** [make ?base ?ratio ()] builds the protocol with threshold schedule
    [ceil (base *. ratio ** i)] (defaults: base 1, ratio 2.0).

    @raise Invalid_argument if [base < 1] or [ratio <= 1.0]. *)
val make : ?base:int -> ?ratio:float -> unit -> Spec.t
