(** Central catalogue of the protocol implementations.

    One place that knows every protocol, its constructor and its CLI
    spelling, so the CLI, the experiment drivers, the examples and the
    tests never drift apart. *)

type entry = {
  key : string;  (** canonical CLI name, e.g. "stenning" *)
  aliases : string list;  (** alternative spellings, e.g. ["sw"] *)
  summary : string;
  spec_doc : string;  (** parameter syntax, e.g. "flood[:BASE:RATIO]" *)
  default : unit -> Spec.t;  (** construct with default parameters *)
  parse : string list -> (Spec.t, string) result;
      (** construct from colon-separated parameters (excluding the key) *)
}

(** All protocols, in teaching order (weakest guarantees first). *)
val all : entry list

(** [find name] resolves a key or alias. *)
val find : string -> entry option

(** Install the compiler behind [file:PATH] protocol names.  The PDL
    library (which depends on this one) registers itself here at binary
    start-up; until then [parse "file:..."] returns a loader-not-installed
    error. *)
val set_loader : (string -> (Spec.t, string) result) -> unit

(** [suggest name] proposes the catalogue key or alias closest to a
    misspelt [name] (edit distance at most 3), if any. *)
val suggest : string -> string option

(** [parse "flood:2:1.5"] — full CLI-style parse: key[:params].  Also
    accepts [file:PATH] (compiled via the installed loader).  Unknown
    names come back with a "did you mean" suggestion when one is close. *)
val parse : string -> (Spec.t, string) result

(** The default instance of every protocol. *)
val defaults : unit -> Spec.t list

(** One-line "key | key | …" help string. *)
val doc : string
