(** A three-data-header protocol with echo accounting — our executable
    stand-in for the protocol of [Afe88] (a personal communication; see
    DESIGN.md, "Substitutions"), the protocol Theorem 4.1 proves optimal:
    the cost of delivering a message is linear in the number of packets
    delayed on the channel when it is sent.

    Packets: data of colour c in {0,1,2} is [c]; the echo of colour c is
    [3 + c].  Six distinct values; "three headers" refers, as in the
    paper, to the forward (t->r) alphabet.

    Mechanism.  Message f travels under colour c_f = f mod 3.  The
    receiver delivers on the {e first} receipt of the expected colour and
    echoes every data packet it receives.  The sender counts, per colour,
    packets sent and echoes received, and only opens epoch f once colour
    c_{f-2} (= c_{f+1} mod 3) is fully accounted (echoes = sends), i.e.
    the channel holds no copy of the colour the receiver is about to start
    trusting.  While blocked on that flush it periodically re-pings the
    previous epoch's colour to keep send-driven channels moving.

    Invariant (gives DL1/DL2 unconditionally): when the receiver starts
    expecting colour c, no stale copy of c is in transit, so the first c
    it sees is fresh.  Under packet {e loss} the flush never completes and
    the sender blocks — safety is kept, liveness is traded away, which
    Theorem 4.1 says is the best a 3-header protocol can do.  Under pure
    delay (including the probabilistic channel of Section 5 with
    [lose = false]) every echo eventually arrives and the protocol is
    live, at a per-message packet cost linear in the backlog — the
    tightness half of Theorem 4.1. *)

let data_pkt c = c
let echo_pkt c = 3 + c

let get3 (a, b, c) i = match i with 0 -> a | 1 -> b | _ -> c

let set3 (a, b, c) i v =
  match i with 0 -> (v, b, c) | 1 -> (a, v, c) | _ -> (a, b, v)

let bump3 t i = set3 t i (get3 t i + 1)

let make ?(retransmit = 2) ?(ping_every = 4) () : Spec.t =
  if retransmit < 1 then invalid_arg "Afek3.make: retransmit must be >= 1";
  if ping_every < 1 then invalid_arg "Afek3.make: ping_every must be >= 1";
  (module struct
    let name = "afek3"
    let describe = "3 data headers + echoes; cost linear in backlog (Afe88 stand-in)"
    let header_bound = Some 6

    type sender = {
      pending : int;
      sending : bool;  (** current epoch's message not yet known delivered *)
      epoch : int;  (** messages completed *)
      sent : int * int * int;  (** cumulative data sent per colour *)
      echo : int * int * int;  (** cumulative echoes received per colour *)
      echo_base : int;  (** echo count of the current colour at epoch start *)
      timer : int;  (** polls until next (re)transmission or ping *)
    }

    type receiver = {
      delivered : int;
      deliver_due : int;
      echo_due : int Nfc_util.Deque.t;  (** echoes owed, in receipt order *)
    }

    let sender_init =
      {
        pending = 0;
        sending = false;
        epoch = 0;
        sent = (0, 0, 0);
        echo = (0, 0, 0);
        echo_base = 0;
        timer = 0;
      }

    let receiver_init = { delivered = 0; deliver_due = 0; echo_due = Nfc_util.Deque.empty }
    let on_submit s = { s with pending = s.pending + 1 }
    let colour_of_epoch f = f mod 3

    (* The colour epoch f-2 used, which the receiver starts trusting during
       epoch f+... — must be drained before epoch f opens. *)
    let flush_colour f = (f + 1) mod 3

    let flushed s = get3 s.echo (flush_colour s.epoch) = get3 s.sent (flush_colour s.epoch)

    let on_ack s p =
      if p >= 3 && p <= 5 then { s with echo = bump3 s.echo (p - 3) } else s

    let sender_poll s =
      let c = colour_of_epoch s.epoch in
      if s.sending then
        if get3 s.echo c > s.echo_base then
          (* Fresh echo of the current colour: the receiver has delivered. *)
          (None, { s with sending = false; epoch = s.epoch + 1; timer = 0 })
        else if s.timer <= 0 then
          (Some (data_pkt c), { s with sent = bump3 s.sent c; timer = retransmit - 1 })
        else (None, { s with timer = s.timer - 1 })
      else if s.pending > 0 then
        if flushed s then
          let s =
            {
              s with
              pending = s.pending - 1;
              sending = true;
              echo_base = get3 s.echo c;
              sent = bump3 s.sent c;
              timer = retransmit - 1;
            }
          in
          (Some (data_pkt c), s)
        else if s.timer <= 0 && s.epoch > 0 then begin
          (* Blocked on the flush: re-ping the previous epoch's colour to
             keep send-driven channels moving.  Harmless to the receiver
             (already past that colour) and fully accounted by the flush of
             a later epoch. *)
          let pc = colour_of_epoch (s.epoch - 1) in
          (Some (data_pkt pc), { s with sent = bump3 s.sent pc; timer = ping_every - 1 })
        end
        else (None, { s with timer = max 0 (s.timer - 1) })
      else (None, s)

    let expecting r = (r.delivered + r.deliver_due) mod 3

    let on_data r p =
      if p >= 0 && p <= 2 then begin
        let r = { r with echo_due = Nfc_util.Deque.push_back (echo_pkt p) r.echo_due } in
        if p = expecting r then { r with deliver_due = r.deliver_due + 1 } else r
      end
      else r

    let receiver_poll r =
      if r.deliver_due > 0 then
        (Some Spec.Rdeliver, { r with delivered = r.delivered + 1; deliver_due = r.deliver_due - 1 })
      else
        match Nfc_util.Deque.pop_front r.echo_due with
        | Some (e, echo_due) -> (Some (Spec.Rsend e), { r with echo_due })
        | None -> (None, r)

    let compare_sender = Stdlib.compare

    let compare_receiver a b =
      Stdlib.compare
        (a.delivered, a.deliver_due, Nfc_util.Deque.to_list a.echo_due)
        (b.delivered, b.deliver_due, Nfc_util.Deque.to_list b.echo_due)

    let hash_sender = Some Spec.structural_hash

    let hash_receiver =
      Some
        (fun r ->
          Spec.structural_hash (r.delivered, r.deliver_due, Nfc_util.Deque.to_list r.echo_due))

    (* No cover saturation: the flush rule compares cumulative per-colour
       send and echo counters, so the sender's state space is genuinely
       unbounded (Theorem 4.1's cost is paid in counter growth) and no
       finite representative preserves the [flushed] predicate.  The
       coverability fixpoint diverges; the verifier reports the
       bounded-strength fallback. *)
    let cover_norm_sender = None
    let cover_norm_receiver = None

    let pp_sender ppf s =
      let a, b, c = s.sent and x, y, z = s.echo in
      Format.fprintf ppf "{pending=%d; sending=%b; epoch=%d; sent=(%d,%d,%d); echo=(%d,%d,%d)}"
        s.pending s.sending s.epoch a b c x y z

    let pp_receiver ppf r =
      Format.fprintf ppf "{delivered=%d; due=%d; echoes_owed=%d}" r.delivered r.deliver_due
        (Nfc_util.Deque.length r.echo_due)

    let sender_space_bits s =
      let sum3 (a, b, c) = Spec.bits_for_int a + Spec.bits_for_int b + Spec.bits_for_int c in
      Spec.bits_for_int s.pending + 1 + Spec.bits_for_int s.epoch + sum3 s.sent
      + sum3 s.echo + Spec.bits_for_int s.echo_base + Spec.bits_for_int s.timer

    let receiver_space_bits r =
      Spec.bits_for_int r.delivered + Spec.bits_for_int r.deliver_due
      + (3 * Nfc_util.Deque.length r.echo_due)
  end)
