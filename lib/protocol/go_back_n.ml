(** Go-Back-N: a pipelined sequence-number protocol.

    Stenning's protocol ({!Stenning}) keeps one message in flight;
    Go-Back-N keeps up to [window] of them, retransmitting from the lowest
    unacknowledged index on timeout.  Packets: data for message i is [2i],
    the cumulative acknowledgement "received everything below i" is
    [2i + 1].

    Resource profile: identical to Stenning in the paper's three measures
    (headers grow ~2n, space O(log n + W), safe and live over arbitrary
    non-FIFO lossy channels) but far fewer rounds on slow channels — the
    practical reason real data links pay for growing headers, included
    here so the benchmarks can show the *performance* side of the paper's
    "pay unbounded headers" conclusion.

    Safety argument (same as Stenning's): the receiver delivers data index
    i only when i is exactly the next expected index, and indices are never
    reused, so stale copies are re-acknowledged but never re-delivered. *)

let data_pkt i = 2 * i
let ack_pkt i = (2 * i) + 1

let make ?(window = 4) ?(timeout = 8) () : Spec.t =
  if window < 1 then invalid_arg "Go_back_n.make: window must be >= 1";
  if timeout < 1 then invalid_arg "Go_back_n.make: timeout must be >= 1";
  (module struct
    let name = Printf.sprintf "go-back-%d" window
    let describe = "pipelined sequence numbers; Stenning with a window"
    let header_bound = None

    type sender = {
      base : int;  (** lowest unacknowledged message index *)
      next : int;  (** next index to transmit (base <= next <= base+window) *)
      submitted : int;  (** total messages accepted from the user *)
      timer : int;  (** polls until retransmission sweep *)
      resend_from : int option;  (** in-progress retransmission cursor *)
    }

    type receiver = {
      expected : int;
      deliver_due : int;
      ack_due : int Nfc_util.Deque.t;
    }

    let sender_init = { base = 0; next = 0; submitted = 0; timer = 0; resend_from = None }
    let on_submit s = { s with submitted = s.submitted + 1 }

    let on_ack s p =
      if p land 1 = 1 then begin
        (* Cumulative ack: everything strictly below [i+1] received. *)
        let upto = ((p - 1) / 2) + 1 in
        if upto > s.base then
          let base = min upto s.next in
          { s with base; timer = timeout - 1; resend_from = None }
        else s
      end
      else s

    let sender_poll s =
      match s.resend_from with
      | Some i when i < s.next ->
          (* Retransmission sweep in progress: resend [i], advance cursor. *)
          let resend_from = if i + 1 < s.next then Some (i + 1) else None in
          (Some (data_pkt i), { s with resend_from; timer = timeout - 1 })
      | _ ->
          if s.next < s.submitted && s.next < s.base + window then
            (* Window open: transmit the next fresh message. *)
            (Some (data_pkt s.next), { s with next = s.next + 1; timer = timeout - 1 })
          else if s.base < s.next then
            if s.timer <= 0 then
              (* Timeout: go back to [base] and resend the whole window. *)
              let resend_from = if s.base + 1 < s.next then Some (s.base + 1) else None in
              (Some (data_pkt s.base), { s with resend_from; timer = timeout - 1 })
            else (None, { s with timer = s.timer - 1 })
          else (None, s)

    let receiver_init = { expected = 0; deliver_due = 0; ack_due = Nfc_util.Deque.empty }

    let on_data r p =
      if p land 1 = 0 then begin
        let i = p / 2 in
        if i = r.expected then
          {
            expected = r.expected + 1;
            deliver_due = r.deliver_due + 1;
            ack_due = Nfc_util.Deque.push_back (ack_pkt i) r.ack_due;
          }
        else if i < r.expected then
          (* Stale: re-ack the highest delivered index (cumulative). *)
          { r with ack_due = Nfc_util.Deque.push_back (ack_pkt (r.expected - 1)) r.ack_due }
        else r (* gap: wait for the retransmission sweep *)
      end
      else r

    let receiver_poll r =
      if r.deliver_due > 0 then
        (Some Spec.Rdeliver, { r with deliver_due = r.deliver_due - 1 })
      else
        match Nfc_util.Deque.pop_front r.ack_due with
        | Some (a, ack_due) -> (Some (Spec.Rsend a), { r with ack_due })
        | None -> (None, r)

    let compare_sender = Stdlib.compare

    let compare_receiver a b =
      Stdlib.compare
        (a.expected, a.deliver_due, Nfc_util.Deque.to_list a.ack_due)
        (b.expected, b.deliver_due, Nfc_util.Deque.to_list b.ack_due)

    let hash_sender = Some Spec.structural_hash

    let hash_receiver =
      Some
        (fun r ->
          Spec.structural_hash (r.expected, r.deliver_due, Nfc_util.Deque.to_list r.ack_due))

    (* Cover saturation: identical argument to {!Stenning} — [expected] is
       budget-bounded, pending deliveries cap at [budget + 2], and the
       cumulative re-ack queue collapses equal runs (stale data always
       re-acks [expected - 1], so the queue is runs by construction). *)
    let cover_norm_sender = None

    let cover_norm_receiver =
      Some
        (fun ~budget r ->
          {
            r with
            deliver_due = Spec.saturate_counter ~cap:(budget + 2) r.deliver_due;
            ack_due = Spec.saturate_deque ~max_len:(2 * (budget + 1)) r.ack_due;
          })

    let pp_sender ppf s =
      Format.fprintf ppf "{base=%d; next=%d; submitted=%d; timer=%d}" s.base s.next
        s.submitted s.timer

    let pp_receiver ppf r =
      Format.fprintf ppf "{expected=%d; due=%d; acks=%d}" r.expected r.deliver_due
        (Nfc_util.Deque.length r.ack_due)

    let sender_space_bits s =
      Spec.bits_for_int s.base + Spec.bits_for_int s.next + Spec.bits_for_int s.submitted
      + Spec.bits_for_int s.timer

    let receiver_space_bits r =
      Spec.bits_for_int r.expected
      + Spec.bits_for_int r.deliver_due
      + Nfc_util.Deque.fold (fun acc a -> acc + Spec.bits_for_int a) 0 r.ack_due
  end)
