(** Selective Repeat: pipelined sequence numbers with out-of-order
    buffering.

    Acks name exactly the index received (unlike {!Go_back_n}'s
    cumulative acks); the sender retransmits only unacked messages and the
    receiver buffers out-of-order arrivals inside its window.  The
    strongest unbounded-header protocol here: safe and live on arbitrary
    non-FIFO lossy channels, pipelined, and immune to Go-Back-N's
    retransmission storms under reordering. *)

(** [make ?window ?timeout ()] builds the protocol with a window of
    [window] messages (default 4) and a retransmission sweep every
    [timeout] polls (default 8).

    @raise Invalid_argument if [window < 1] or [timeout < 1]. *)
val make : ?window:int -> ?timeout:int -> unit -> Spec.t
