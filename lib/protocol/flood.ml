(** A counting/flooding protocol with four headers — our executable
    stand-in for the bounded-header protocol of [AFWZ88] (an unavailable
    manuscript; see DESIGN.md, "Substitutions").

    Packets: data with bit b is [b]; the acknowledgement for bit b is
    [2 + b].

    Mechanism.  Both stations share an a-priori threshold schedule
    T(i) = ceil(base * ratio^i).  To deliver message i (bit b = i mod 2)
    the sender floods copies of data packet b; the receiver delivers the
    i-th message only after receiving T(i) copies of bit b counted from
    the moment it started expecting bit b, then floods acknowledgements of
    b; the sender completes the epoch after T(i) fresh acknowledgements.
    Counting is the only defence a bounded-header protocol has against
    stale copies: a delivery is trusted because stale copies of b in
    transit are (with the schedule's margin) fewer than T(i).

    Resource profile, as the paper describes for [AFWZ88]:
    - headers: 4, constant;
    - space: unbounded counters (not bounded by any function of the number
      of messages — Theorem 3.1 proves this is forced);
    - packets: at least T(i) per message, i.e. {e exponential} in the
      number of messages delivered, even on a perfect channel.

    Safety is conditional — exactly as Theorem 3.1 predicts it must be:
    the protocol violates DL1 when an adversary accumulates at least T(i)
    stale copies of the expected bit, which the Theorem 3.1 adversary
    ({!Nfc_core.Adversary_m}) does.  Against the probabilistic channel of
    Section 5 with error probability q, a ratio with margin over
    1/(1 - q) makes violations vanishingly unlikely (Hoeffding), which the
    Theorem 5.1 experiment sweeps empirically. *)

let data_pkt b = b
let ack_pkt b = 2 + b

(* Threshold schedule, capped to keep arithmetic safe. *)
let threshold ~base ~ratio i =
  let cap = 1 lsl 40 in
  let t = float_of_int base *. (ratio ** float_of_int i) in
  if t >= float_of_int cap then cap else max 1 (int_of_float (ceil t))

let make ?(base = 1) ?(ratio = 2.0) () : Spec.t =
  if base < 1 then invalid_arg "Flood.make: base must be >= 1";
  if ratio < 1.0 then invalid_arg "Flood.make: ratio must be >= 1.0";
  (module struct
    let name = Printf.sprintf "flood(b=%d,r=%.2f)" base ratio
    let describe = "4 headers; exponential packet counts (AFWZ88 stand-in)"
    let header_bound = Some 4

    let t_sched i = threshold ~base ~ratio i

    type sender = {
      pending : int;
      sending : bool;  (** an epoch is open *)
      epoch : int;  (** messages completed *)
      ack_since : int;  (** fresh acks of the current bit this epoch *)
    }

    type receiver = {
      delivered : int;
      deliver_due : int;
      count_since : int;
          (** receipts of the currently expected bit since the expectation
              began *)
    }

    let sender_init = { pending = 0; sending = false; epoch = 0; ack_since = 0 }
    let receiver_init = { delivered = 0; deliver_due = 0; count_since = 0 }
    let on_submit s = { s with pending = s.pending + 1 }
    let sender_bit s = s.epoch land 1

    let on_ack s p =
      if s.sending && (p = 2 || p = 3) && p - 2 = sender_bit s then begin
        let ack_since = s.ack_since + 1 in
        if ack_since >= t_sched s.epoch then
          { s with sending = false; epoch = s.epoch + 1; ack_since = 0 }
        else { s with ack_since }
      end
      else s

    let sender_poll s =
      if s.sending then (Some (data_pkt (sender_bit s)), s)
      else if s.pending > 0 then
        let s = { s with pending = s.pending - 1; sending = true; ack_since = 0 } in
        (Some (data_pkt (sender_bit s)), s)
      else (None, s)

    let expecting r = (r.delivered + r.deliver_due) land 1
    let expecting_index r = r.delivered + r.deliver_due

    let on_data r p =
      if (p = 0 || p = 1) && p = expecting r then begin
        let c = r.count_since + 1 in
        if c >= t_sched (expecting_index r) then
          { r with deliver_due = r.deliver_due + 1; count_since = 0 }
        else { r with count_since = c }
      end
      else r

    let receiver_poll r =
      if r.deliver_due > 0 then
        (Some Spec.Rdeliver, { r with delivered = r.delivered + 1; deliver_due = r.deliver_due - 1 })
      else if r.delivered + r.deliver_due > 0 then
        (* Flood the acknowledgement of the last delivered message until the
           next delivery; the state is a fixed point, one ack per round. *)
        (Some (Spec.Rsend (ack_pkt ((r.delivered + r.deliver_due - 1) land 1))), r)
      else (None, r)

    let compare_sender = Stdlib.compare
    let compare_receiver = Stdlib.compare
    let hash_sender = Some Spec.structural_hash
    let hash_receiver = Some Spec.structural_hash

    (* No cover saturation: counting *is* the protocol.  [count_since]
       resets at each threshold T(i) and the thresholds grow, so the
       receiver's state space is genuinely unbounded under ω data — any
       cap would erase exactly the distinctions the delivery rule reads.
       The coverability fixpoint therefore diverges here and the verifier
       reports the documented bounded-strength fallback. *)
    let cover_norm_sender = None
    let cover_norm_receiver = None

    let pp_sender ppf s =
      Format.fprintf ppf "{pending=%d; sending=%b; epoch=%d; ack_since=%d}" s.pending
        s.sending s.epoch s.ack_since

    let pp_receiver ppf r =
      Format.fprintf ppf "{delivered=%d; due=%d; count_since=%d}" r.delivered r.deliver_due
        r.count_since

    let sender_space_bits s =
      Spec.bits_for_int s.pending + 1 + Spec.bits_for_int s.epoch
      + Spec.bits_for_int s.ack_since

    let receiver_space_bits r =
      Spec.bits_for_int r.delivered + Spec.bits_for_int r.deliver_due
      + Spec.bits_for_int r.count_since
  end)
