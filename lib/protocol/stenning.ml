(** Stenning's sequence-number protocol — the "naive protocol" of the
    paper's introduction, which delivers the i-th message using the i-th
    header in O(log n) space.

    Packets: data for message i is [2i]; the acknowledgement for message i
    is [2i + 1].  The header count grows linearly with the number of
    messages ([header_bound = None]); in exchange the protocol is safe and
    live over arbitrary non-FIFO lossy channels, and its space is the
    logarithm of the sequence number — exactly the trade-off the paper
    proves unavoidable (Theorem 3.1: with fewer than n headers, space
    cannot be bounded by any function of n).

    The sender transmits the current message's data packet, retransmitting
    every [timeout] polls, and advances when the matching ack arrives.  The
    receiver delivers data packet [2i] exactly when [i] is the next
    expected index, and (re-)acknowledges every data index at or below the
    expected one. *)

let data_pkt i = 2 * i
let ack_pkt i = (2 * i) + 1

let make ?(timeout = 4) () : Spec.t =
  if timeout < 1 then invalid_arg "Stenning.make: timeout must be >= 1";
  (module struct
    let name = "stenning"
    let describe = "unbounded headers (seq numbers); safe+live on any channel"
    let header_bound = None

    type sender = {
      seq : int;  (** index of the message currently in flight *)
      pending : int;
      inflight : bool;
      timer : int;
    }

    type receiver = {
      expected : int;  (** next message index to deliver *)
      deliver_due : int;
      ack_due : int Nfc_util.Deque.t;
    }

    let sender_init = { seq = 0; pending = 0; inflight = false; timer = 0 }
    let on_submit s = { s with pending = s.pending + 1 }

    let on_ack s p =
      if s.inflight && p = ack_pkt s.seq then
        { s with inflight = false; seq = s.seq + 1 }
      else s

    let sender_poll s =
      if s.inflight then
        if s.timer <= 0 then (Some (data_pkt s.seq), { s with timer = timeout - 1 })
        else (None, { s with timer = s.timer - 1 })
      else if s.pending > 0 then
        (Some (data_pkt s.seq), { s with pending = s.pending - 1; inflight = true; timer = timeout - 1 })
      else (None, s)

    let receiver_init = { expected = 0; deliver_due = 0; ack_due = Nfc_util.Deque.empty }

    let on_data r p =
      if p land 1 = 0 then begin
        let i = p / 2 in
        if i = r.expected then
          {
            expected = r.expected + 1;
            deliver_due = r.deliver_due + 1;
            ack_due = Nfc_util.Deque.push_back (ack_pkt i) r.ack_due;
          }
        else if i < r.expected then
          (* A stale copy or retransmission: re-acknowledge so the sender
             can make progress, never re-deliver. *)
          { r with ack_due = Nfc_util.Deque.push_back (ack_pkt i) r.ack_due }
        else r (* from the future: impossible with this sender; ignore *)
      end
      else r

    let receiver_poll r =
      if r.deliver_due > 0 then (Some Spec.Rdeliver, { r with deliver_due = r.deliver_due - 1 })
      else
        match Nfc_util.Deque.pop_front r.ack_due with
        | Some (a, ack_due) -> (Some (Spec.Rsend a), { r with ack_due })
        | None -> (None, r)

    let compare_sender = Stdlib.compare

    let compare_receiver a b =
      Stdlib.compare
        (a.expected, a.deliver_due, Nfc_util.Deque.to_list a.ack_due)
        (b.expected, b.deliver_due, Nfc_util.Deque.to_list b.ack_due)

    let hash_sender = Some Spec.structural_hash

    let hash_receiver =
      Some
        (fun r ->
          Spec.structural_hash (r.expected, r.deliver_due, Nfc_util.Deque.to_list r.ack_due))

    (* Cover saturation.  [expected] is bounded by the budget (the sender
       never issues an index above [submitted]); the owed-work fields
       saturate exactly as in {!Alternating_bit}: pending deliveries cap
       at [budget + 2] and the re-ack queue collapses equal runs, the
       extras being regenerable from ω data still in transit. *)
    let cover_norm_sender = None

    let cover_norm_receiver =
      Some
        (fun ~budget r ->
          {
            r with
            deliver_due = Spec.saturate_counter ~cap:(budget + 2) r.deliver_due;
            ack_due = Spec.saturate_deque ~max_len:(2 * (budget + 1)) r.ack_due;
          })

    let pp_sender ppf s =
      Format.fprintf ppf "{seq=%d; pending=%d; inflight=%b; timer=%d}" s.seq s.pending
        s.inflight s.timer

    let pp_receiver ppf r =
      Format.fprintf ppf "{expected=%d; deliver_due=%d; acks=%d}" r.expected r.deliver_due
        (Nfc_util.Deque.length r.ack_due)

    let sender_space_bits s =
      Spec.bits_for_int s.seq + Spec.bits_for_int s.pending + 1 + Spec.bits_for_int s.timer

    let receiver_space_bits r =
      Spec.bits_for_int r.expected
      + Spec.bits_for_int r.deliver_due
      + Nfc_util.Deque.fold (fun acc a -> acc + Spec.bits_for_int a) 0 r.ack_due
  end)
