(** A self-stabilizing ARQ in the style of Dolev, Hanemann, Schiller and
    Sharma's "Self-stabilizing end-to-end communication in (bounded
    capacity, omitting, duplicating and non-FIFO) dynamic networks"
    (arXiv 2006.05901), specialised to the paper's single-link model.

    The protocol is parameterised by the channel-capacity bound [cap] it
    is designed to tolerate.  Labels live in Z_K with [K = cap + 2];
    data with label l is packet [l], the acknowledgement for l is
    [K + l] — [2 K] headers total.

    Two ingredients make it stabilizing where the alternating bit is not:

    - {b Capacity-counting acceptance}: the receiver accepts a label only
      after [T = cap + 1] receipts — more receipts than stale copies a
      [cap]-bounded channel can hold, so ghost packets left by a
      transient fault (or reordered survivors of an old epoch) can never
      fake an acceptance by themselves.
    - {b Perpetual emission}: an idle sender keeps emitting its previous
      label as a keep-alive, and the receiver re-acknowledges its last
      accepted label on every poll.  Neither station is ever silent, so
      no product of corrupted station states is a dead end: the
      keep-alive stream washes out any disagreement (including corrupted
      candidate counts, which reset whenever the in-sync label is seen)
      and drives the pair back into a legitimate configuration.

    Over channels with more than [cap] packets in flight the counting
    argument fails and the protocol is as unsafe as any bounded-header
    protocol must be (Theorem 3.1) — [Nfc_stab] therefore analyses it at
    capacities <= [cap]. *)

let make ?(cap = 1) () : Spec.t =
  if cap < 1 then invalid_arg "Stab_arq.make: cap must be >= 1";
  let k = cap + 2 in
  (* Acceptance threshold: one more receipt than the channel can hold. *)
  let t_accept = cap + 1 in
  let data_pkt l = l in
  let ack_pkt l = k + l in
  (module struct
    let name = Printf.sprintf "stab-arq(cap=%d)" cap

    let describe =
      Printf.sprintf
        "%d headers; self-stabilizing ARQ (labels mod %d, %d-receipt acceptance)" (2 * k) k
        t_accept

    let header_bound = Some (2 * k)

    type sender = {
      label : int;  (** label of the message in progress (or next) *)
      pending : int;
      inflight : bool;
    }

    type receiver = {
      last : int;  (** last accepted label; re-acked on every poll *)
      cand : int;  (** candidate label being counted, [-1] if none *)
      cnt : int;  (** receipts of [cand] so far *)
      deliver_due : int;
    }

    let sender_init = { label = 0; pending = 0; inflight = false }

    let on_submit s = { s with pending = s.pending + 1 }

    let on_ack s p =
      if s.inflight && p = ack_pkt s.label then
        { s with label = (s.label + 1) mod k; inflight = false }
      else s

    (* The sender is never silent: in flight it retransmits, idle with
       backlog it starts the next message, otherwise it keeps emitting
       the previous label — a re-ackable keep-alive that repairs a
       corrupted receiver without risking a fresh acceptance from a
       legitimate start (the receiver already holds it as [last]). *)
    let sender_poll s =
      if s.inflight then (Some (data_pkt s.label), s)
      else if s.pending > 0 then
        (Some (data_pkt s.label), { s with pending = s.pending - 1; inflight = true })
      else (Some (data_pkt ((s.label + k - 1) mod k)), s)

    let receiver_init = { last = k - 1; cand = -1; cnt = 0; deliver_due = 0 }

    let on_data r p =
      if p < 0 || p >= k then r (* ack-range or garbage: ignore *)
      else if p = r.last then
        (* In-sync (re-)receipt: also discard any candidate count — a
           corrupted count must not survive confirmation of sync. *)
        { r with cand = -1; cnt = 0 }
      else if p = r.cand && r.cnt + 1 >= t_accept then
        { last = p; cand = -1; cnt = 0; deliver_due = r.deliver_due + 1 }
      else if p = r.cand then { r with cnt = r.cnt + 1 }
      else if t_accept <= 1 then { last = p; cand = -1; cnt = 0; deliver_due = r.deliver_due + 1 }
      else { r with cand = p; cnt = 1 }

    (* Deliver owed messages first; otherwise re-acknowledge the last
       accepted label — the receiver's half of perpetual emission. *)
    let receiver_poll r =
      if r.deliver_due > 0 then (Some Spec.Rdeliver, { r with deliver_due = r.deliver_due - 1 })
      else (Some (Spec.Rsend (ack_pkt r.last)), r)

    let compare_sender = Stdlib.compare
    let compare_receiver = Stdlib.compare
    let hash_sender = Some Spec.structural_hash
    let hash_receiver = Some Spec.structural_hash

    (* Cover saturation.  Under ω inputs the only unbounded station field
       is [deliver_due] (labels and counts are finite by construction;
       [pending] is bounded by the submission budget); deliveries are
       gated at [submitted + 1], so pending deliveries beyond
       [budget + 2] enable nothing new. *)
    let cover_norm_sender = None

    let cover_norm_receiver =
      Some
        (fun ~budget r ->
          { r with deliver_due = Spec.saturate_counter ~cap:(budget + 2) r.deliver_due })

    let pp_sender ppf s =
      Format.fprintf ppf "{label=%d; pending=%d; inflight=%b}" s.label s.pending s.inflight

    let pp_receiver ppf r =
      Format.fprintf ppf "{last=%d; cand=%d; cnt=%d; deliver_due=%d}" r.last r.cand r.cnt
        r.deliver_due

    let sender_space_bits s =
      Spec.bits_for_int (k - 1) + Spec.bits_for_int s.pending + 1

    let receiver_space_bits r =
      (2 * Spec.bits_for_int k) + Spec.bits_for_int t_accept + Spec.bits_for_int r.deliver_due
  end)
