(** Selective Repeat: pipelined sequence numbers with out-of-order
    buffering.

    Packets: data for message i is [2i]; the {e selective} acknowledgement
    for message i is [2i + 1] (acks name exactly the index received, unlike
    {!Go_back_n}'s cumulative acks).

    The sender keeps a window of up to [window] unacknowledged messages and
    retransmits only the ones not yet acked (oldest-first sweep every
    [timeout] polls).  The receiver buffers out-of-order arrivals inside
    its window and delivers in order.

    This is the strongest unbounded-header protocol here: safe and live on
    arbitrary non-FIFO lossy channels like {!Stenning}, pipelined like
    {!Go_back_n}, but immune to Go-Back-N's pathology under reordering
    (no cumulative retransmission storms).  It completes the repo's answer
    to "what do the n headers of Theorem 3.1 buy you": safety, then
    latency, then reordering-tolerance. *)

module Iset = Set.Make (Int)

let data_pkt i = 2 * i
let ack_pkt i = (2 * i) + 1

let make ?(window = 4) ?(timeout = 8) () : Spec.t =
  if window < 1 then invalid_arg "Selective_repeat.make: window must be >= 1";
  if timeout < 1 then invalid_arg "Selective_repeat.make: timeout must be >= 1";
  (module struct
    let name = Printf.sprintf "selective-repeat-%d" window
    let describe = "pipelined seq numbers + out-of-order buffering"
    let header_bound = None

    type sender = {
      base : int;  (** lowest unacknowledged index *)
      next : int;  (** next fresh index to transmit *)
      submitted : int;
      acked : Iset.t;  (** acked indices in [base, next) *)
      timer : int;
      sweep : int option;  (** retransmission cursor *)
    }

    type receiver = {
      expected : int;  (** next index to deliver *)
      buffered : Iset.t;  (** received indices > expected, within window *)
      deliver_due : int;
      ack_due : int Nfc_util.Deque.t;
    }

    let sender_init =
      { base = 0; next = 0; submitted = 0; acked = Iset.empty; timer = 0; sweep = None }

    let on_submit s = { s with submitted = s.submitted + 1 }

    (* Slide [base] over the acked prefix. *)
    let slide s =
      let rec go base acked =
        if Iset.mem base acked then go (base + 1) (Iset.remove base acked) else (base, acked)
      in
      let base, acked = go s.base s.acked in
      { s with base; acked }

    let on_ack s p =
      if p land 1 = 1 then begin
        let i = (p - 1) / 2 in
        if i >= s.base && i < s.next then
          slide { s with acked = Iset.add i s.acked; sweep = None }
        else s
      end
      else s

    (* Next unacked index at or after [from], strictly below [next]. *)
    let rec next_unacked s from =
      if from >= s.next then None
      else if Iset.mem from s.acked then next_unacked s (from + 1)
      else Some from

    let sender_poll s =
      match s.sweep with
      | Some cursor -> (
          match next_unacked s cursor with
          | Some i ->
              let sweep = if i + 1 < s.next then Some (i + 1) else None in
              (Some (data_pkt i), { s with sweep; timer = timeout - 1 })
          | None -> (None, { s with sweep = None }))
      | None ->
          if s.next < s.submitted && s.next < s.base + window then
            (Some (data_pkt s.next), { s with next = s.next + 1; timer = timeout - 1 })
          else if s.base < s.next then
            if s.timer <= 0 then
              match next_unacked s s.base with
              | Some i ->
                  let sweep = if i + 1 < s.next then Some (i + 1) else None in
                  (Some (data_pkt i), { s with sweep; timer = timeout - 1 })
              | None -> (None, s)
            else (None, { s with timer = s.timer - 1 })
          else (None, s)

    let receiver_init =
      { expected = 0; buffered = Iset.empty; deliver_due = 0; ack_due = Nfc_util.Deque.empty }

    (* Deliver the in-order prefix now available. *)
    let drain r =
      let rec go expected buffered due =
        if Iset.mem expected buffered then
          go (expected + 1) (Iset.remove expected buffered) (due + 1)
        else (expected, buffered, due)
      in
      let expected, buffered, deliver_due = go r.expected r.buffered r.deliver_due in
      { r with expected; buffered; deliver_due }

    let on_data r p =
      if p land 1 = 0 then begin
        let i = p / 2 in
        let r = { r with ack_due = Nfc_util.Deque.push_back (ack_pkt i) r.ack_due } in
        if i < r.expected then r (* stale: ack only *)
        else if i < r.expected + window then drain { r with buffered = Iset.add i r.buffered }
        else r (* beyond window: ack but do not buffer *)
      end
      else r

    let receiver_poll r =
      if r.deliver_due > 0 then
        (Some Spec.Rdeliver, { r with deliver_due = r.deliver_due - 1 })
      else
        match Nfc_util.Deque.pop_front r.ack_due with
        | Some (a, ack_due) -> (Some (Spec.Rsend a), { r with ack_due })
        | None -> (None, r)

    let compare_sender a b =
      Stdlib.compare
        (a.base, a.next, a.submitted, Iset.elements a.acked, a.timer, a.sweep)
        (b.base, b.next, b.submitted, Iset.elements b.acked, b.timer, b.sweep)

    let compare_receiver a b =
      Stdlib.compare
        (a.expected, Iset.elements a.buffered, a.deliver_due, Nfc_util.Deque.to_list a.ack_due)
        (b.expected, Iset.elements b.buffered, b.deliver_due, Nfc_util.Deque.to_list b.ack_due)

    (* Both comparators normalise (set elements, deque contents); hash the
       same normal forms so compare-equal states hash equally. *)
    let hash_sender =
      Some
        (fun s ->
          Spec.structural_hash
            (s.base, s.next, s.submitted, Iset.elements s.acked, s.timer, s.sweep))

    let hash_receiver =
      Some
        (fun r ->
          Spec.structural_hash
            (r.expected, Iset.elements r.buffered, r.deliver_due,
             Nfc_util.Deque.to_list r.ack_due))

    (* Cover saturation: [expected] and [buffered] are budget/window
       bounded; only the owed-work fields grow under ω data, and they
       saturate as in {!Stenning} (selective re-acks are regenerable — the
       receiver acks every data receipt). *)
    let cover_norm_sender = None

    let cover_norm_receiver =
      Some
        (fun ~budget r ->
          {
            r with
            deliver_due = Spec.saturate_counter ~cap:(budget + 2) r.deliver_due;
            ack_due = Spec.saturate_deque ~max_len:(2 * (budget + 1)) r.ack_due;
          })

    let pp_sender ppf s =
      Format.fprintf ppf "{base=%d; next=%d; submitted=%d; acked=%d}" s.base s.next
        s.submitted (Iset.cardinal s.acked)

    let pp_receiver ppf r =
      Format.fprintf ppf "{expected=%d; buffered=%d; due=%d}" r.expected
        (Iset.cardinal r.buffered) r.deliver_due

    let sender_space_bits s =
      Spec.bits_for_int s.base + Spec.bits_for_int s.next + Spec.bits_for_int s.submitted
      + (window + Spec.bits_for_int s.timer)

    let receiver_space_bits r =
      Spec.bits_for_int r.expected + window
      + Spec.bits_for_int r.deliver_due
      + Nfc_util.Deque.fold (fun acc a -> acc + Spec.bits_for_int a) 0 r.ack_due
  end)
