type entry = {
  key : string;
  aliases : string list;
  summary : string;
  spec_doc : string;
  default : unit -> Spec.t;
  parse : string list -> (Spec.t, string) result;
}

let no_params key = function
  | [] -> None
  | _ -> Some (Printf.sprintf "%s takes no parameters" key)

let int_param name v =
  match int_of_string_opt v with
  | Some i when i >= 1 -> Ok i
  | _ -> Error (Printf.sprintf "%s must be an integer >= 1" name)

let all =
  [
    {
      key = "stop-and-wait";
      aliases = [ "sw" ];
      summary = "no headers; duplicates messages on any loss";
      spec_doc = "stop-and-wait";
      default = (fun () -> Stop_and_wait.make ());
      parse =
        (fun params ->
          match no_params "stop-and-wait" params with
          | None -> Ok (Stop_and_wait.make ())
          | Some e -> Error e);
    };
    {
      key = "altbit";
      (* "broken-alternating-bit" names the same implementation: over a
         non-FIFO channel the protocol *is* the broken one (the paper's
         Section 1 observation), and the fuzzer/mcheck docs use that
         spelling when hunting its violation. *)
      aliases = [ "alternating-bit"; "broken-alternating-bit" ];
      summary = "4 headers; safe on FIFO, unsafe on non-FIFO";
      spec_doc = "altbit";
      default = (fun () -> Alternating_bit.make ());
      parse =
        (fun params ->
          match no_params "altbit" params with
          | None -> Ok (Alternating_bit.make ())
          | Some e -> Error e);
    };
    {
      key = "stab-arq";
      aliases = [ "stab_arq"; "stabilizing-arq" ];
      summary = "2(CAP+2) headers; self-stabilizing ARQ for CAP-bounded channels";
      spec_doc = "stab-arq[:CAP]";
      default = (fun () -> Stab_arq.make ());
      parse =
        (fun params ->
          match params with
          | [] -> Ok (Stab_arq.make ())
          | [ c ] -> Result.map (fun cap -> Stab_arq.make ~cap ()) (int_param "CAP" c)
          | _ -> Error "stab-arq takes stab-arq[:CAP]");
    };
    {
      key = "stenning";
      aliases = [];
      summary = "unbounded headers; safe+live on any channel";
      spec_doc = "stenning";
      default = (fun () -> Stenning.make ());
      parse =
        (fun params ->
          match no_params "stenning" params with
          | None -> Ok (Stenning.make ())
          | Some e -> Error e);
    };
    {
      key = "gbn";
      aliases = [ "go-back-n" ];
      summary = "pipelined sequence numbers, cumulative acks";
      spec_doc = "gbn[:WINDOW]";
      default = (fun () -> Go_back_n.make ());
      parse =
        (fun params ->
          match params with
          | [] -> Ok (Go_back_n.make ())
          | [ w ] -> Result.map (fun window -> Go_back_n.make ~window ()) (int_param "WINDOW" w)
          | _ -> Error "gbn takes gbn[:WINDOW]");
    };
    {
      key = "sr";
      aliases = [ "selective-repeat" ];
      summary = "pipelined sequence numbers, out-of-order buffering";
      spec_doc = "sr[:WINDOW]";
      default = (fun () -> Selective_repeat.make ());
      parse =
        (fun params ->
          match params with
          | [] -> Ok (Selective_repeat.make ())
          | [ w ] ->
              Result.map (fun window -> Selective_repeat.make ~window ()) (int_param "WINDOW" w)
          | _ -> Error "sr takes sr[:WINDOW]");
    };
    {
      key = "flood";
      aliases = [];
      summary = "4 headers, exponential packets (AFWZ88 stand-in)";
      spec_doc = "flood[:BASE:RATIO]";
      default = (fun () -> Flood.make ());
      parse =
        (fun params ->
          match params with
          | [] -> Ok (Flood.make ())
          | [ b; r ] -> (
              match (int_of_string_opt b, float_of_string_opt r) with
              | Some base, Some ratio when base >= 1 && ratio >= 1.0 ->
                  Ok (Flood.make ~base ~ratio ())
              | _ -> Error "flood takes flood:BASE:RATIO with BASE >= 1, RATIO >= 1.0")
          | _ -> Error "flood takes flood[:BASE:RATIO]");
    };
    {
      key = "afek3";
      aliases = [];
      summary = "3 data headers + echoes, linear in backlog (Afe88 stand-in)";
      spec_doc = "afek3";
      default = (fun () -> Afek3.make ());
      parse =
        (fun params ->
          match no_params "afek3" params with
          | None -> Ok (Afek3.make ())
          | Some e -> Error e);
    };
  ]

let find name =
  List.find_opt (fun e -> e.key = name || List.mem name e.aliases) all

(* [file:PATH] protocol sources are compiled by the PDL library, which
   depends on this one; the hook breaks the cycle.  The CLI binary
   installs the real loader at start-up. *)
let loader : (string -> (Spec.t, string) result) ref =
  ref (fun _ -> Error "file: protocol specs require the PDL loader (not installed)")

let set_loader f = loader := f

(* Damerau-free Levenshtein distance, small inputs only — enough to turn
   "unknown protocol" into a useful suggestion. *)
let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggest name =
  (* "file" is a pseudo-scheme, not an entry, but "fiel:spec.nfc" is as
     real a typo as any alias slip — keep it in the candidate pool. *)
  let candidates = "file" :: List.concat_map (fun e -> e.key :: e.aliases) all in
  let scored =
    List.filter_map
      (fun c ->
        let d = levenshtein (String.lowercase_ascii name) c in
        if d <= 3 then Some (d, c) else None)
      candidates
  in
  match List.sort compare scored with (_, best) :: _ -> Some best | [] -> None

let unknown name =
  match suggest name with
  | Some s -> Error (Printf.sprintf "unknown protocol %S (did you mean %S?)" name s)
  | None -> Error (Printf.sprintf "unknown protocol %S" name)

let parse s =
  match String.split_on_char ':' s with
  | [] -> Error "empty protocol name"
  | "file" :: rest ->
      let path = String.concat ":" rest in
      if path = "" then Error "file: needs a path, e.g. file:examples/specs/foo.nfc"
      else !loader path
  | key :: params -> (
      match find key with
      | Some e -> e.parse params
      | None -> unknown key)

let defaults () = List.map (fun e -> e.default ()) all

let doc = String.concat " | " (List.map (fun e -> e.spec_doc) all) ^ " | file:PATH"
