(** Go-Back-N: a pipelined sequence-number protocol.

    {!Stenning} with up to [window] messages in flight and cumulative
    acknowledgements ([2i + 1] acknowledges everything below [i]); on
    timeout the sender retransmits from the lowest unacknowledged index.
    Same resource profile as Stenning in the paper's three measures, far
    fewer rounds on slow channels — the performance side of "pay
    unbounded headers". *)

(** [make ?window ?timeout ()] builds the protocol with a sending window
    of [window] messages (default 4) and retransmission every [timeout]
    polls (default 8).

    @raise Invalid_argument if [window < 1] or [timeout < 1]. *)
val make : ?window:int -> ?timeout:int -> unit -> Spec.t
