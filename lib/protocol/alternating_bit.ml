(** The alternating bit protocol [BSW69], the paper's running example of a
    bounded-header protocol.

    Packets: data with bit b is [b] (0 or 1); the acknowledgement for bit b
    is [2 + b].  Four headers total.

    The sender transmits the current message under bit b, retransmitting
    every [timeout] polls, and flips the bit when the matching ack arrives.
    The receiver delivers a data packet exactly when its bit matches the
    expected bit, flips its expectation, and (re-)acknowledges the last bit
    received.

    The protocol is correct over lossy FIFO channels.  Over a non-FIFO
    channel it is unsafe: a delayed duplicate of an old bit-b packet
    arriving when the receiver again expects b is indistinguishable from a
    fresh message.  {!Nfc_mcheck} finds the violating execution; Theorem
    3.1 explains why no bounded-header protocol can avoid it. *)

let data_pkt b = b
let ack_pkt b = 2 + b

let make ?(timeout = 4) () : Spec.t =
  if timeout < 1 then invalid_arg "Alternating_bit.make: timeout must be >= 1";
  (module struct
    let name = "alternating-bit"
    let describe = "2 data + 2 ack headers; safe on FIFO, unsafe on non-FIFO"
    let header_bound = Some 4

    type sender = {
      bit : int;
      pending : int;
      inflight : bool;
      timer : int;
    }

    type receiver = {
      expected : int;  (** bit expected next *)
      deliver_due : int;
      ack_due : int Nfc_util.Deque.t;  (** acknowledgements owed, in order *)
    }

    let sender_init = { bit = 0; pending = 0; inflight = false; timer = 0 }

    let on_submit s = { s with pending = s.pending + 1 }

    let on_ack s p =
      if s.inflight && p = ack_pkt s.bit then
        { s with inflight = false; bit = 1 - s.bit }
      else s

    let sender_poll s =
      if s.inflight then
        if s.timer <= 0 then (Some (data_pkt s.bit), { s with timer = timeout - 1 })
        else (None, { s with timer = s.timer - 1 })
      else if s.pending > 0 then
        (Some (data_pkt s.bit), { s with pending = s.pending - 1; inflight = true; timer = timeout - 1 })
      else (None, s)

    let receiver_init = { expected = 0; deliver_due = 0; ack_due = Nfc_util.Deque.empty }

    let on_data r p =
      if p = 0 || p = 1 then
        let ack_due = Nfc_util.Deque.push_back (ack_pkt p) r.ack_due in
        if p = r.expected then
          { expected = 1 - r.expected; deliver_due = r.deliver_due + 1; ack_due }
        else { r with ack_due }
      else r

    let receiver_poll r =
      if r.deliver_due > 0 then (Some Spec.Rdeliver, { r with deliver_due = r.deliver_due - 1 })
      else
        match Nfc_util.Deque.pop_front r.ack_due with
        | Some (a, ack_due) -> (Some (Spec.Rsend a), { r with ack_due })
        | None -> (None, r)

    let compare_sender = Stdlib.compare

    let compare_receiver a b =
      Stdlib.compare
        (a.expected, a.deliver_due, Nfc_util.Deque.to_list a.ack_due)
        (b.expected, b.deliver_due, Nfc_util.Deque.to_list b.ack_due)

    let hash_sender = Some Spec.structural_hash

    (* Hash the comparator's normal form: two deques holding the same ack
       sequence may differ structurally. *)
    let hash_receiver =
      Some
        (fun r ->
          Spec.structural_hash (r.expected, r.deliver_due, Nfc_util.Deque.to_list r.ack_due))

    (* Cover saturation.  The sender is finite under a budget.  The
       receiver absorbs ω data packets into [deliver_due] and [ack_due];
       pending deliveries saturate at [budget + 2] (deliveries are gated
       at [submitted + 1]) and the owed-ack queue collapses runs of equal
       acks to two — the receiver re-acks every data receipt, so dropped
       duplicates are regenerable from the ω data still in transit. *)
    let cover_norm_sender = None

    let cover_norm_receiver =
      Some
        (fun ~budget r ->
          {
            r with
            deliver_due = Spec.saturate_counter ~cap:(budget + 2) r.deliver_due;
            ack_due = Spec.saturate_deque ~max_len:(2 * (budget + 1)) r.ack_due;
          })

    let pp_sender ppf s =
      Format.fprintf ppf "{bit=%d; pending=%d; inflight=%b; timer=%d}" s.bit s.pending
        s.inflight s.timer

    let pp_receiver ppf r =
      Format.fprintf ppf "{expected=%d; deliver_due=%d; acks=%d}" r.expected r.deliver_due
        (Nfc_util.Deque.length r.ack_due)

    let sender_space_bits s = 1 + Spec.bits_for_int s.pending + 1 + Spec.bits_for_int s.timer

    let receiver_space_bits r =
      1 + Spec.bits_for_int r.deliver_due + (2 * Nfc_util.Deque.length r.ack_due)
  end)
