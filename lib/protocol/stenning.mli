(** Stenning's sequence-number protocol — the "naive protocol" of the
    paper's introduction.

    Packets: data for message [i] is [2i], its ack [2i + 1]; the header
    count grows with the number of messages ([header_bound = None]).  In
    exchange the protocol is safe and live over arbitrary non-FIFO lossy
    channels in O(log n) space — the trade-off Theorem 3.1 proves
    unavoidable. *)

(** [make ?timeout ()] builds the protocol; the sender retransmits every
    [timeout] polls (default 4).

    @raise Invalid_argument if [timeout < 1]. *)
val make : ?timeout:int -> unit -> Spec.t
