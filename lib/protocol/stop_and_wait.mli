(** Header-free stop-and-wait, the baseline that motivates headers.

    Packets: [data = 0] forward, [ack = 1] reverse — a single header in
    each direction.  Correct on a perfect FIFO channel, duplicates
    deliveries as soon as one packet or ack is lost: with no header the
    receiver cannot tell a retransmission from the next message.  This is
    the observation opening the paper's Section 2.3. *)

(** [make ?timeout ()] builds the protocol; the sender retransmits every
    [timeout] polls (default 4).

    @raise Invalid_argument if [timeout < 1]. *)
val make : ?timeout:int -> unit -> Spec.t
