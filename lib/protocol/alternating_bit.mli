(** The alternating bit protocol [BSW69], the paper's running example of a
    bounded-header protocol.

    Packets: data with bit [b] is [b]; the ack for bit [b] is [2 + b] —
    four headers total.  Correct over lossy FIFO channels; over a non-FIFO
    channel a delayed duplicate of an old bit-b data packet is
    indistinguishable from a fresh message, exactly the failure Theorem
    3.1 proves unavoidable for bounded headers ({!Nfc_mcheck} finds the
    violating execution). *)

(** [make ?timeout ()] builds the protocol; the sender retransmits every
    [timeout] polls (default 4).

    @raise Invalid_argument if [timeout < 1]. *)
val make : ?timeout:int -> unit -> Spec.t
