(** Header-free stop-and-wait, the baseline that motivates headers.

    Packets: [data = 0] on the forward channel, [ack = 1] on the reverse
    channel.  The sender transmits one data packet per message and
    retransmits every [timeout] polls until an ack arrives; the receiver
    delivers every data packet and acknowledges it.

    With no header at all the receiver cannot tell a retransmission from
    the next message: the protocol satisfies DL1–DL3 on a perfect FIFO
    channel but duplicates deliveries as soon as a single packet or ack is
    lost (and the model checker finds the violation in a handful of
    steps).  This is the observation that opens the paper's Section 2.3:
    protocols must append information to distinguish packets. *)

let data = 0
let ack = 1

let make ?(timeout = 4) () : Spec.t =
  if timeout < 1 then invalid_arg "Stop_and_wait.make: timeout must be >= 1";
  (module struct
    let name = "stop-and-wait"
    let describe = "no headers; duplicates messages on any loss"
    let header_bound = Some 2

    type sender = {
      pending : int;  (** submitted messages not yet put in flight *)
      inflight : bool;  (** a data packet awaits acknowledgement *)
      timer : int;  (** polls until retransmission *)
    }

    type receiver = {
      deliver_due : int;  (** deliveries owed to the user *)
      ack_due : int;  (** acknowledgements owed *)
    }

    let sender_init = { pending = 0; inflight = false; timer = 0 }
    let receiver_init = { deliver_due = 0; ack_due = 0 }
    let on_submit s = { s with pending = s.pending + 1 }

    let on_ack s p = if p = ack && s.inflight then { s with inflight = false } else s

    let sender_poll s =
      if s.inflight then
        if s.timer <= 0 then (Some data, { s with timer = timeout - 1 })
        else (None, { s with timer = s.timer - 1 })
      else if s.pending > 0 then
        (Some data, { pending = s.pending - 1; inflight = true; timer = timeout - 1 })
      else (None, s)

    let on_data r p =
      if p = data then { deliver_due = r.deliver_due + 1; ack_due = r.ack_due + 1 } else r

    let receiver_poll r =
      if r.deliver_due > 0 then (Some Spec.Rdeliver, { r with deliver_due = r.deliver_due - 1 })
      else if r.ack_due > 0 then (Some (Spec.Rsend ack), { r with ack_due = r.ack_due - 1 })
      else (None, r)

    let compare_sender = Stdlib.compare
    let compare_receiver = Stdlib.compare
    let hash_sender = Some Spec.structural_hash
    let hash_receiver = Some Spec.structural_hash

    (* Cover saturation.  The sender is finite under a submission budget
       ([pending <= budget], [timer < timeout]).  The receiver's owed-work
       counters saturate: with deliveries gated at [submitted + 1], more
       than [budget + 2] pending deliveries add no behaviour, and acks
       beyond what the sender can ever consume are regenerable duplicates
       (every data receipt owes a fresh one). *)
    let cover_norm_sender = None

    let cover_norm_receiver =
      Some
        (fun ~budget r ->
          {
            deliver_due = Spec.saturate_counter ~cap:(budget + 2) r.deliver_due;
            ack_due = Spec.saturate_counter ~cap:(2 * (budget + 1)) r.ack_due;
          })

    let pp_sender ppf s =
      Format.fprintf ppf "{pending=%d; inflight=%b; timer=%d}" s.pending s.inflight s.timer

    let pp_receiver ppf r =
      Format.fprintf ppf "{deliver_due=%d; ack_due=%d}" r.deliver_due r.ack_due

    let sender_space_bits s = Spec.bits_for_int s.pending + 1 + Spec.bits_for_int s.timer
    let receiver_space_bits r = Spec.bits_for_int r.deliver_due + Spec.bits_for_int r.ack_due
  end)
