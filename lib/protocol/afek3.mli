(** A three-data-header protocol with echo accounting — our executable
    stand-in for the protocol of [Afe88] (see DESIGN.md,
    "Substitutions"), which Theorem 4.1 proves optimal.

    Message [f] travels under colour [f mod 3]; the receiver delivers on
    first receipt of the expected colour and echoes everything; the sender
    opens epoch [f] only once the colour about to be trusted is fully
    accounted (echoes = sends), so the channel holds no stale copy of it.
    Delivery cost is linear in the number of packets delayed on the
    channel — the Theorem 4.1 lower bound, achieved. *)

(** [make ?retransmit ?ping_every ()] builds the protocol; the sender
    retransmits the current colour every [retransmit] polls (default 2)
    and re-pings the previous epoch's colour every [ping_every] polls
    while blocked on the flush (default 4).

    @raise Invalid_argument if [retransmit < 1] or [ping_every < 1]. *)
val make : ?retransmit:int -> ?ping_every:int -> unit -> Spec.t
