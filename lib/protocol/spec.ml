(** The data link protocol interface (Section 2.3 of the paper).

    A protocol is a pair of I/O automata: [A^t] (the transmitting station)
    and [A^r] (the receiving station).  Their states are immutable values
    with total step functions, which makes them drivable by all three
    consumers: the discrete-event simulator, the explicit-state model
    checker, and the lower-bound adversaries (which must rewind and replay
    protocol states at will).

    Inputs are always accepted (I/O automata are input-enabled):
    [on_submit] is the [send_msg] input at the sender, [on_ack] is
    [receive_pkt^{r->t}], [on_data] is [receive_pkt^{t->r}].  Locally
    controlled actions are pulled: the harness gives each automaton one
    [poll] per scheduler round; the automaton returns its next
    locally-controlled action, if any is enabled, together with its
    post-state.  Returning [None] still returns a post-state, so protocols
    can implement poll-counted retransmission timers.

    Packets are bare [int]s.  Following the paper, messages are all
    identical, so a packet's value is pure header; a protocol's header
    consumption is the set of distinct ints it sends.  [header_bound] is
    [Some k] when the protocol guarantees at most [k] distinct values over
    both directions combined, [None] when the number of headers grows with
    the message count. *)

(** A receiver's locally-controlled action. *)
type remit =
  | Rsend of int  (** put packet [p] on the reverse channel *)
  | Rdeliver  (** [receive_msg]: hand the next message to the user *)

module type S = sig
  val name : string

  (** One-line description used by reports. *)
  val describe : string

  (** [Some k]: at most [k] distinct packet values ever, both directions
      combined; [None]: unbounded (grows with messages sent). *)
  val header_bound : int option

  type sender
  type receiver

  val sender_init : sender
  val receiver_init : receiver

  (** [send_msg] input: the user submits one (anonymous) message. *)
  val on_submit : sender -> sender

  (** [receive_pkt^{r->t}(p)] input at the sender. *)
  val on_ack : sender -> int -> sender

  (** One scheduler turn: the next enabled [send_pkt^{t->r}] if any. *)
  val sender_poll : sender -> int option * sender

  (** [receive_pkt^{t->r}(p)] input at the receiver. *)
  val on_data : receiver -> int -> receiver

  (** One scheduler turn: the next enabled locally-controlled receiver
      action ([send_pkt^{r->t}] or message delivery), if any. *)
  val receiver_poll : receiver -> remit option * receiver

  val compare_sender : sender -> sender -> int
  val compare_receiver : receiver -> receiver -> int

  (** Optional O(1) state hashes for the state-space engines' interners
      ({!Nfc_mcheck.Explore}).  A hook must be consistent with the
      corresponding comparator: compare-equal states must hash equally
      (beware comparators that normalise, e.g. through [Deque.to_list] —
      hash the same normal form).  [None] is always safe: the engines then
      fall back to a comparator-keyed intern table, paying O(log k) state
      comparisons per lookup instead of O(1). *)
  val hash_sender : (sender -> int) option

  val hash_receiver : (receiver -> int) option

  (** Optional saturation hooks for the ω-accelerated coverability engine
      ({!Nfc_absint.Cover}).  The engine lifts the channels to ω-counts;
      what keeps its control space finite is the {e station} state, and
      several protocols carry owed-work fields (pending deliveries, queued
      acknowledgements) that grow without bound as ω packets are absorbed.
      [cover_norm_sender]/[cover_norm_receiver] map a station state to a
      behaviourally saturated representative under the given submission
      budget: beyond the returned state, further growth of the saturated
      fields enables no composed-system behaviour that the representative
      cannot already produce (each protocol documents its argument at the
      hook).  [None] means no saturation is available — the cover then
      simply diverges for state-unbounded protocols and the verifier
      reports the honest downgrade.  Hooks must be idempotent and must
      commute with the comparators/hash hooks (saturated states are
      interned like any other).  Unsound hooks cannot corrupt verdicts —
      the verifier only {e upgrades certificate strength} when the cover
      agrees with the bounded exploration — but they can wrongly label a
      verdict complete; keep the arguments conservative. *)
  val cover_norm_sender : (budget:int -> sender -> sender) option

  val cover_norm_receiver : (budget:int -> receiver -> receiver) option

  val pp_sender : Format.formatter -> sender -> unit
  val pp_receiver : Format.formatter -> receiver -> unit

  (** Space proxy: bits needed to encode the current state (Theorem 2.1
      links boundness to state count, i.e. space). *)
  val sender_space_bits : sender -> int

  val receiver_space_bits : receiver -> int
end

type t = (module S)

let name (module P : S) = P.name
let header_bound (module P : S) = P.header_bound

(** The hash hook for states whose comparator is the structural
    [Stdlib.compare]: the polymorphic structural hash agrees with it. *)
let structural_hash : 'a -> int = Hashtbl.hash

(** Number of bits to represent a non-negative int (at least 1). *)
let bits_for_int n =
  if n < 0 then invalid_arg "Spec.bits_for_int: negative";
  let rec go acc n = if n = 0 then max 1 acc else go (acc + 1) (n lsr 1) in
  go 0 n

(** Building blocks for {!S.cover_norm_sender}/{!S.cover_norm_receiver}. *)

(** Saturate a monotone counter at [cap] (idempotent). *)
let saturate_counter ~cap n = if n > cap then cap else n

(** Saturate an owed-packet queue into a canonical bounded multiset:
    sort ascending (over a non-FIFO channel the emission *order* of owed
    packets is semantically void — the channel may deliver the emitted
    packets in any order anyway, so two queues with the same multiset of
    owed packets are behaviourally equivalent at unbounded capacity),
    collapse each value to at most two copies (a station owing the same
    packet twice behaves like one owing it many times — the extras are
    regenerable duplicates), then keep at most [max_len] entries (ack
    truncation is forced packet loss, which the lossy channel could
    inflict on the emitted packets regardless — and always leaves a
    non-empty queue non-empty, so poll-silence analyses are unaffected).
    Idempotent, and stable under the [Deque.to_list]-normalising
    comparators the protocols use.  Without the sort, ω inputs drive an
    ack queue through every arrival ordering and the cover-control space
    explodes combinatorially. *)
let saturate_deque ~max_len (d : int Nfc_util.Deque.t) : int Nfc_util.Deque.t =
  let sorted = List.sort Int.compare (Nfc_util.Deque.to_list d) in
  let squash =
    List.rev
      (List.fold_left
         (fun acc x ->
           match acc with a :: b :: _ when a = x && b = x -> acc | _ -> x :: acc)
         [] sorted)
  in
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  let capped = take max_len squash in
  if capped = Nfc_util.Deque.to_list d then d else Nfc_util.Deque.of_list capped
