(* SARIF 2.1.0 export for the PDL checker and the spec-level analyzer
   ([nfc pdl --sarif FILE]).  Unlike the lint export, these findings have
   real source files behind them, so every result carries a
   [physicalLocation] with the 1-based line/column span of the offending
   construct.  The rule catalogue and the envelope are shared with
   [Nfc_lint.Sarif] — one driver catalogue, two emitters. *)

module Diag = Nfc_pdl.Diag
module Json = Nfc_util.Json

(* One analyzed file: its checker diagnostics, and (under [--analyze])
   the static report whose located findings ride along. *)
type entry = {
  path : string;
  diags : Diag.t list;
  static_report : Specint.report option;
}

let location ~path (sp : Diag.span) =
  Json.Obj
    [
      ( "physicalLocation",
        Json.Obj
          [
            ("artifactLocation", Json.Obj [ ("uri", Json.String path) ]);
            ( "region",
              Json.Obj
                [
                  ("startLine", Json.Int sp.Diag.first.Diag.line);
                  ("startColumn", Json.Int sp.Diag.first.Diag.col);
                  ("endLine", Json.Int sp.Diag.last.Diag.line);
                  ("endColumn", Json.Int sp.Diag.last.Diag.col);
                ] );
          ] );
    ]

let diag_result ~path (d : Diag.t) =
  Json.Obj
    [
      ("ruleId", Json.String "P1");
      ( "level",
        Json.String
          (match d.Diag.severity with
          | Diag.Error -> "error"
          | Diag.Warning -> "warning") );
      ("message", Json.Obj [ ("text", Json.String d.Diag.message) ]);
      ("locations", Json.List [ location ~path d.Diag.span ]);
    ]

let finding_result ~path (f : Specint.finding) =
  let level =
    match f.Specint.verdict with
    | Specint.Fail -> "error"
    | Specint.Pass | Specint.Unknown -> "note"
  in
  let locations =
    match f.Specint.span with
    | Some sp -> [ location ~path sp ]
    | None -> []
  in
  Json.Obj
    ([
       ("ruleId", Json.String f.Specint.rule);
       ("level", Json.String level);
       ("message", Json.Obj [ ("text", Json.String f.Specint.message) ]);
     ]
    @ match locations with [] -> [] | _ -> [ ("locations", Json.List locations) ])

let of_entries (entries : entry list) : Json.t =
  let results =
    List.concat_map
      (fun e ->
        List.map (diag_result ~path:e.path) e.diags
        @
        match e.static_report with
        | None -> []
        | Some rep ->
            List.map (finding_result ~path:e.path) rep.Specint.findings)
      entries
  in
  Nfc_lint.Sarif.envelope ~name:"nfc pdl" results

let to_string entries = Json.to_string (of_entries entries)
