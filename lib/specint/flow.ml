(* The coupled two-station fixpoint over a checked PDL spec.

   Each station gets one abstract environment (Dom.env) over-approximating
   every state the concrete interpreter can reach, under ANY submission
   budget, node budget and channel capacity: submissions are always
   enabled, and the channel between the stations is abstracted by the two
   packet alphabets (every packet either station has ever been able to
   emit may arrive at the peer, arbitrarily reordered, duplicated by
   retransmission, or dropped — exactly the non-FIFO/PL2 regime, so the
   abstraction needs no queue of in-transit packets at all).

   First-match dispatch is over-approximated by firing every clause whose
   guard is feasible, ignoring the negation of earlier guards; a clause
   that is infeasible on this superset of reachable states is therefore
   dead in every concrete run (the Q1 dead-clause report is sound).
   Saturation hooks only shrink counter/queue values, so forcing the
   interval floor of saturating counters to 0 keeps the envs upper
   bounds. *)

module Check = Nfc_pdl.Check
module Opvec = Nfc_absint.Opvec
module Iset = Set.Make (Int)

(* Widening kicks in after this many rounds, so small finite loops (a
   timer counting to its bound, a guarded counter) settle to their exact
   interval before ω is considered. *)
let widen_delay = 6

(* Hard cap: with widening every slot changes O(1) times after the delay,
   so this is never reached; [converged = false] downgrades all verdicts
   to Unknown if it ever is. *)
let max_iterations = 200

type clause_kind = [ `On | `Poll ]

type station = {
  slots : Check.slot array;
  ceilings : Dom.itv array;  (* declared domains, the post-action clamp *)
  targets : Dom.itv array;
      (* per-slot widening targets: the declared domain by default, a
         refinement-installed split interval when the CEGAR loop
         re-runs the fixpoint on a partitioned slot ({!Dom.itv_split}).
         Targets only steer where widening jumps — {!Dom.itv_widen}
         rounds outward past the join, so any target is sound. *)
  saturating : bool array;   (* counter slots with a saturation hook *)
  clauses : (Check.cclause * clause_kind) array;
  mutable env : Dom.env;
  feasible : bool array;  (* clause ever enabled at the fixpoint *)
}

(* Provenance of a widening jump: the abstract witness the refinement
   loop replays.  [wspan] is the clause whose firing's join pushed the
   slot past its previous bound in iteration [witer] — the "sequence of
   clause firings" collapses to its last, deciding element, which is the
   one that names the pumping construct in the source. *)
type widen_event = {
  wstation : string;  (* "sender" | "receiver" *)
  wslot : int;
  wname : string;
  wspan : Nfc_pdl.Diag.span;
  witer : int;
  womega : bool;  (* true when the jump introduced an unbounded value *)
}

let make_station ?(targets = []) (cs : Check.cstation) : station =
  let slots = cs.Check.slots in
  let init =
    Array.map
      (fun (s : Check.slot) ->
        match s.Check.kind with
        | Check.Kbool b -> Dom.Abool (Dom.bv_of_bool b)
        | Check.Krange (_, _, init) -> Dom.Aint (Dom.point init)
        | Check.Kcounter (init, _) -> Dom.Aint (Dom.point init)
        | Check.Kqueue _ -> Dom.Aqueue Opvec.empty)
      slots
  in
  let ceilings =
    Array.map
      (fun (s : Check.slot) ->
        match s.Check.kind with
        | Check.Krange (lo, hi, _) -> { Dom.lo; hi }
        | _ -> { Dom.lo = 0; hi = Dom.omega })
      slots
  in
  let saturating =
    Array.map
      (fun (s : Check.slot) ->
        match s.Check.kind with Check.Kcounter (_, Some _) -> true | _ -> false)
      slots
  in
  let clauses =
    Array.of_list
      (List.map (fun c -> (c, `On)) cs.Check.on_clauses
      @ List.map (fun c -> (c, `Poll)) cs.Check.poll_clauses)
  in
  let widen_targets =
    Array.mapi
      (fun i dflt ->
        match List.assoc_opt i targets with Some iv -> iv | None -> dflt)
      ceilings
  in
  {
    slots;
    ceilings;
    targets = widen_targets;
    saturating;
    clauses;
    env = { Dom.vals = init; binder = Dom.itv_top };
    feasible = Array.make (Array.length clauses) false;
  }

(* ---- packets -------------------------------------------------------- *)

(* Concrete packet values a family emit can produce when its parameter
   ranges over [iv] (clamped to the declared parameter range — the
   checker guarantees containment, the clamp keeps us total). *)
let family_packets (fam : Check.cfamily) (iv : Dom.itv) : Iset.t =
  if not fam.Check.has_param then Iset.singleton fam.Check.base
  else
    let lo = max fam.Check.plo iv.Dom.lo and hi = min fam.Check.phi iv.Dom.hi in
    let rec go v acc =
      if v > hi then acc
      else go (v + 1) (Iset.add (fam.Check.base + (v - fam.Check.plo)) acc)
    in
    go lo Iset.empty

(* Parameter interval of the incoming packets of [fam] present in
   [alpha]; [None] when no packet of the family can arrive. *)
let binder_of_family (fam : Check.cfamily) (alpha : Iset.t) : Dom.itv option =
  let lo_pkt = fam.Check.base
  and hi_pkt = fam.Check.base + (fam.Check.phi - fam.Check.plo) in
  let params =
    Iset.filter (fun p -> p >= lo_pkt && p <= hi_pkt) alpha
    |> Iset.map (fun p -> fam.Check.plo + (p - fam.Check.base))
  in
  match (Iset.min_elt_opt params, Iset.max_elt_opt params) with
  | Some lo, Some hi -> Some { Dom.lo; hi }
  | _ -> None

(* ---- clause transfer ------------------------------------------------ *)

(* Post-action clamp: range/counter slots meet their declared domain
   (the checker proved containment, so the meet is never empty on
   feasible paths — an empty meet marks the path infeasible), and
   saturating counters keep a 0 floor (saturation may shrink them to any
   cap at any time). *)
let clamp (st : station) (e : Dom.env) : Dom.env option =
  let ok = ref true in
  let vals =
    Array.mapi
      (fun i v ->
        match v with
        | Dom.Aint iv -> (
            match Dom.itv_meet iv st.ceilings.(i) with
            | None ->
                ok := false;
                v
            | Some iv ->
                let iv =
                  if st.saturating.(i) && iv.Dom.lo > 0 then
                    { iv with Dom.lo = 0 }
                  else iv
                in
                Dom.Aint iv)
        | v -> v)
      e.Dom.vals
  in
  if !ok then Some { e with Dom.vals } else None

let apply_action (st : station) (e : Dom.env) (a : Check.caction) : Dom.env =
  match a with
  | Check.CAset (i, op, ce) ->
      let vals = Array.copy e.Dom.vals in
      (match st.slots.(i).Check.kind with
      | Check.Kbool _ -> vals.(i) <- Dom.Abool (Dom.as_bv (Dom.eval e ce))
      | Check.Krange _ | Check.Kcounter _ ->
          let v = Dom.as_itv (Dom.eval e ce) in
          let cur =
            match e.Dom.vals.(i) with Dom.Aint iv -> iv | _ -> Dom.itv_top
          in
          let next =
            match op with
            | `Assign -> v
            | `Add -> Dom.itv_add cur v
            | `Sub -> Dom.itv_sub cur v
          in
          vals.(i) <- Dom.Aint next
      | Check.Kqueue _ -> () (* checker rejects set on queues *));
      { e with Dom.vals }
  | Check.CApush (qi, fam, arg) ->
      let iv =
        match arg with
        | None -> Dom.point 0
        | Some ce -> Dom.as_itv (Dom.eval e ce)
      in
      let pkts = family_packets fam iv in
      let vals = Array.copy e.Dom.vals in
      (match e.Dom.vals.(qi) with
      | Dom.Aqueue q ->
          vals.(qi) <- Dom.Aqueue (Iset.fold (fun p q -> Opvec.add q p) pkts q)
      | _ -> ());
      { e with Dom.vals }

type fired = {
  post : Dom.env option;  (* post-action env, None when the path died *)
  emits : Iset.t;  (* packets the clause can put on the channel *)
}

(* Abstract one clause firing from [e] (already binder-equipped for
   on-packet clauses).  [None] = guard infeasible. *)
let fire (st : station) (e : Dom.env) (c : Check.cclause) : fired option =
  (* [send from q] carries an implicit non-empty test. *)
  let implicit_ok =
    match c.Check.emit with
    | Some (Check.CEsend_from q) -> (
        match e.Dom.vals.(q) with
        | Dom.Aqueue v -> Opvec.support v <> []
        | _ -> true)
    | _ -> true
  in
  if not implicit_ok then None
  else
    match Dom.refine_opt e c.Check.guard with
    | None -> None
    | Some e' ->
        (* Emitted values are computed on the refined PRE-action state,
           exactly like the interpreter. *)
        let emits =
          match c.Check.emit with
          | None | Some Check.CEdeliver -> Iset.empty
          | Some (Check.CEsend (fam, arg)) ->
              let iv =
                match arg with
                | None -> Dom.point 0
                | Some ce -> Dom.as_itv (Dom.eval e' ce)
              in
              family_packets fam iv
          | Some (Check.CEsend_from q) -> (
              match e'.Dom.vals.(q) with
              | Dom.Aqueue v -> Iset.of_list (Opvec.support v)
              | _ -> Iset.empty)
        in
        (* Popping one element only shrinks the queue, so the multiset
           upper bound carries over unchanged to the post-state. *)
        let post =
          clamp st (List.fold_left (apply_action st) e' c.Check.acts)
        in
        Some { post; emits }

(* ---- the fixpoint --------------------------------------------------- *)

type station_result = {
  env : Dom.env;
  slots : Check.slot array;
  dead : (Check.cclause * clause_kind) list;  (* never-feasible clauses *)
  state_bound : int;  (* |γ(env)| upper bound, ω when unbounded *)
  omega_slots : string list;  (* slots with an unbounded abstract value *)
}

type result = {
  sender : station_result;
  receiver : station_result;
  alphabet_tr : Iset.t;  (* sender → receiver packets *)
  alphabet_rt : Iset.t;  (* receiver → sender packets *)
  iterations : int;
  converged : bool;
  widened : widen_event list;
      (* first ω-introducing widening jump per slot, in discovery order *)
}

(* Is a slot value unbounded above (interval reaching ω, or a queue with
   an ω-accelerated count)? — the condition the widening witness
   records. *)
let aval_unbounded = function
  | Dom.Aint iv -> iv.Dom.hi = Dom.omega
  | Dom.Aqueue q -> Opvec.fold (fun _ c acc -> acc || c = Dom.omega) q false
  | Dom.Abool _ -> false

(* One chaotic-iteration round over a station: fire every clause against
   the current env (updated in place, so later clauses see earlier
   effects — still a sound over-approximation) and accumulate emitted
   packets.  Returns whether anything changed.  When [widen] is on and a
   join pushes a slot to an unbounded value, the first such jump per slot
   is recorded in [events] with the responsible clause's span — the
   abstract witness the refinement loop starts from. *)
let step ~widen ~name ~iter ~(events : widen_event list ref) (st : station)
    (incoming : Iset.t) (out : Iset.t ref) : bool =
  let changed = ref false in
  Array.iteri
    (fun idx (c, _kind) ->
      let starts =
        match c.Check.trig with
        | Some Check.CTsubmit | None -> [ { st.env with Dom.binder = Dom.itv_top } ]
        | Some (Check.CTpacket fam) -> (
            match binder_of_family fam incoming with
            | None -> []
            | Some b -> [ { st.env with Dom.binder = b } ])
      in
      List.iter
        (fun e ->
          match fire st e c with
          | None -> ()
          | Some f ->
              if not st.feasible.(idx) then begin
                st.feasible.(idx) <- true;
                changed := true
              end;
              if not (Iset.subset f.emits !out) then begin
                out := Iset.union f.emits !out;
                changed := true
              end;
              (match f.post with
              | None -> ()
              | Some post ->
                  let before = st.env in
                  let joined, c' =
                    Dom.join_env ~widen ~ceilings:st.targets ~into:st.env
                      { post with Dom.binder = Dom.itv_top }
                  in
                  if c' then begin
                    if widen then
                      Array.iteri
                        (fun i v ->
                          if
                            aval_unbounded v
                            && (not (aval_unbounded before.Dom.vals.(i)))
                            && not
                                 (List.exists
                                    (fun w ->
                                      w.wstation = name && w.wslot = i)
                                    !events)
                          then
                            events :=
                              {
                                wstation = name;
                                wslot = i;
                                wname = st.slots.(i).Check.sname;
                                wspan = c.Check.cspan;
                                witer = iter;
                                womega = true;
                              }
                              :: !events)
                        joined.Dom.vals;
                    st.env <- joined;
                    changed := true
                  end))
        starts)
    st.clauses;
  !changed

let measure (st : station) : int * string list =
  let omega_slots = ref [] in
  let bound =
    Array.to_list st.env.Dom.vals
    |> List.mapi (fun i v ->
           let m =
             match v with
             | Dom.Abool b -> Dom.bv_size b
             | Dom.Aint iv -> Dom.itv_size iv
             | Dom.Aqueue q ->
                 (* Queue states are sequences over the support with
                    length at most the total count: sum_{k<=len} |sup|^k. *)
                 let sup = List.length (Opvec.support q) in
                 let len =
                   Opvec.fold (fun _ c acc -> Opvec.sat_add c acc) q 0
                 in
                 if sup = 0 then 1
                 else if len = Dom.omega then Dom.omega
                 else
                   let rec geo k acc term =
                     if k > len then acc
                     else
                       let term = Opvec.sat_mul term sup in
                       geo (k + 1) (Opvec.sat_add acc term) term
                   in
                   geo 1 1 1
           in
           if m = Dom.omega then
             omega_slots := st.slots.(i).Check.sname :: !omega_slots;
           m)
    |> List.fold_left Opvec.sat_mul 1
  in
  (bound, List.rev !omega_slots)

let finish (st : station) : station_result =
  let dead =
    Array.to_list st.clauses
    |> List.filteri (fun i _ -> not st.feasible.(i))
  in
  let state_bound, omega_slots = measure st in
  { env = st.env; slots = st.slots; dead; state_bound; omega_slots }

(* [sender_targets]/[receiver_targets] are per-slot widening-target
   overrides, (slot index, interval) pairs — the refinement loop's
   disjunctive split intervals.  The default run widens counters straight
   to ω. *)
let run ?(sender_targets = []) ?(receiver_targets = []) (ck : Check.checked) :
    result =
  let s = make_station ~targets:sender_targets ck.Check.csender
  and r = make_station ~targets:receiver_targets ck.Check.creceiver in
  let alpha_tr = ref Iset.empty and alpha_rt = ref Iset.empty in
  let iterations = ref 0 and converged = ref false in
  let events = ref [] in
  while (not !converged) && !iterations < max_iterations do
    incr iterations;
    let widen = !iterations > widen_delay in
    let iter = !iterations in
    let c1 = step ~widen ~name:"sender" ~iter ~events s !alpha_rt alpha_tr in
    let c2 = step ~widen ~name:"receiver" ~iter ~events r !alpha_tr alpha_rt in
    if not (c1 || c2) then converged := true
  done;
  {
    sender = finish s;
    receiver = finish r;
    alphabet_tr = !alpha_tr;
    alphabet_rt = !alpha_rt;
    iterations = !iterations;
    converged = !converged;
    widened = List.rev !events;
  }
