(* Spec-level abstract interpretation: budget-free certificates straight
   from the PDL automaton.

   [analyze] runs the coupled fixpoint ({!Flow}) over a checked spec and
   renders its symbolic facts as lint-rule verdicts; [apply_to_lint]
   cross-validates them against an exploration-backed lint result and
   promotes the agreeing rules to the [Static] certificate strength —
   valid for EVERY node budget, channel capacity and submission budget,
   with zero exploration.  A static verdict may be Unknown; it must never
   contradict the bounded tier, and a contradiction blocks the upgrade
   and surfaces as an A1 warning instead. *)

module Check = Nfc_pdl.Check
module Diag = Nfc_pdl.Diag
module Json = Nfc_util.Json
module Iset = Flow.Iset

type verdict = Pass | Fail | Unknown

let verdict_name = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Unknown -> "unknown"

type finding = {
  rule : string;
  verdict : verdict;
  message : string;
  span : Diag.span option;
  why : string option;
      (* machine-readable imprecision provenance for Unknown or
         ω-parametric verdicts: which slot widened (and where), whether
         the iteration cap was hit, or which hook the rule is missing —
         exactly what the refinement loop consumes.  [None] on concrete
         verdicts. *)
}

type station_report = {
  station : string;  (* "sender" | "receiver" *)
  state_bound : int;  (* ω = Dom.omega when unbounded *)
  omega_slots : string list;
  dead_clauses : Diag.span list;
}

type report = {
  protocol : string;
  declared_headers : int;
  alphabet_tr : int list;
  alphabet_rt : int list;
  sender : station_report;
  receiver : station_report;
  product : int;  (* sat k_t * k_r *)
  findings : finding list;
  iterations : int;
  converged : bool;
}

let pp_count ppf n =
  if n = Dom.omega then Fmt.string ppf "ω" else Fmt.int ppf n

let count_str n = Fmt.str "%a" pp_count n

(* ---- verdicts ------------------------------------------------------- *)

let station_report name (sr : Flow.station_result) : station_report =
  {
    station = name;
    state_bound = sr.Flow.state_bound;
    omega_slots = sr.Flow.omega_slots;
    dead_clauses =
      List.map (fun ((c : Check.cclause), _) -> c.Check.cspan) sr.Flow.dead;
  }

(* One line of provenance per ω-widened slot: who widened, where, when. *)
let widened_why (f : Flow.result) =
  match f.Flow.widened with
  | [] -> None
  | evs ->
      Some
        ("widened slot: "
        ^ String.concat "; "
            (List.map
               (fun (w : Flow.widen_event) ->
                 Fmt.str "%s.%s to ω at iteration %d (clause at line %d)"
                   w.Flow.wstation w.Flow.wname w.Flow.witer
                   w.Flow.wspan.Diag.first.Diag.line)
               evs))

(* Render a completed fixpoint as a report.  [analyze] runs the default
   fixpoint; the refinement loop ({!Nfc_refine}) re-renders its own
   re-runs on partitioned slot domains through the same function, so
   promoted verdicts are byte-identical to what a one-shot run with the
   same facts would print. *)
let of_flow (ck : Check.checked) (f : Flow.result) : report =
  let proto_span = Some ck.Check.cprotospan in
  let alpha = Iset.union f.Flow.alphabet_tr f.Flow.alphabet_rt in
  let n_alpha = Iset.cardinal alpha in
  let declared = ck.Check.total_headers in
  let sender = station_report "sender" f.Flow.sender
  and receiver = station_report "receiver" f.Flow.receiver in
  let product =
    Nfc_absint.Opvec.sat_mul sender.state_bound receiver.state_bound
  in
  let dead =
    List.map (fun sp -> ("sender", sp)) sender.dead_clauses
    @ List.map (fun sp -> ("receiver", sp)) receiver.dead_clauses
  in
  let capped_why =
    Some
      (Fmt.str "capped iteration: %d round(s) without stabilising"
         f.Flow.iterations)
  in
  let findings =
    if not f.Flow.converged then
      [
        {
          rule = "H1";
          verdict = Unknown;
          message = "abstract fixpoint did not converge";
          span = proto_span;
          why = capped_why;
        };
        {
          rule = "E1";
          verdict = Pass;
          message =
            "input-enabled by construction: first-match dispatch absorbs \
             unmatched packets and every clause body is total";
          span = proto_span;
          why = None;
        };
        {
          rule = "B1";
          verdict = Unknown;
          message = "abstract fixpoint did not converge";
          span = proto_span;
          why = capped_why;
        };
      ]
    else
      [
        (if n_alpha <= declared then
           {
             rule = "H1";
             verdict = Pass;
             message =
               Fmt.str
                 "symbolic header budget: at most %d distinct reachable \
                  packets within the declared %d, for every budget"
                 n_alpha declared;
             span = proto_span;
             why = None;
           }
         else
           {
             rule = "H1";
             verdict = Fail;
             message =
               Fmt.str
                 "symbolic header budget exceeds the declared families: %d \
                  reachable packets > %d declared"
                 n_alpha declared;
             span = proto_span;
             why = None;
           });
        {
          rule = "E1";
          verdict = Pass;
          message =
            "input-enabled by construction: first-match dispatch absorbs \
             unmatched packets and every clause body is total";
          span = proto_span;
          why = None;
        };
        {
          rule = "B1";
          verdict = Pass;
          message =
            (if product <> Dom.omega then
               Fmt.str
                 "Theorem 2.1 symbolically: boundness <= k_t*k_r <= %d*%d = \
                  %d for every budget"
                 sender.state_bound receiver.state_bound product
             else
               Fmt.str
                 "Theorem 2.1 symbolically: boundness <= k_t*k_r with k_t <= \
                  %s, k_r <= %s (unbounded slots: %s); the inequality holds \
                  for every exploration of the compiled automaton"
                 (count_str sender.state_bound)
                 (count_str receiver.state_bound)
                 (String.concat ", "
                    (List.map (fun s -> "sender." ^ s) sender.omega_slots
                    @ List.map (fun s -> "receiver." ^ s) receiver.omega_slots)));
          span = proto_span;
          why = (if product <> Dom.omega then None else widened_why f);
        };
      ]
  in
  let findings =
    findings
    @ [
        {
          rule = "T1";
          verdict = Unknown;
          message =
            "impossibility consistency relates headers to the submission \
             budget; not decidable at the spec level";
          span = None;
          why =
            Some
              "missing hook: the submission budget is an exploration \
               parameter, unavailable at the spec level";
        };
      ]
    @ (match dead with
      | [] ->
          [
            {
              rule = "Q1";
              verdict = Unknown;
              message =
                "no statically dead clauses; quiescence itself needs \
                 exploration";
              span = None;
              why = Some "needs exploration: quiescence is a reachability property";
            };
          ]
      | _ ->
          {
            rule = "Q1";
            verdict = Unknown;
            message =
              Fmt.str
                "%d clause(s) are unreachable under every budget (guard \
                 infeasible on the abstract reachable set); quiescence \
                 itself needs exploration"
                (List.length dead);
            span = None;
            why = Some "needs exploration: quiescence is a reachability property";
          }
          :: List.map
               (fun (st, sp) ->
                 {
                   rule = "Q1";
                   verdict = Unknown;
                   message = Fmt.str "dead %s clause: never enabled" st;
                   span = Some sp;
                   why = None;
                 })
               dead)
  in
  {
    protocol = ck.Check.cname;
    declared_headers = declared;
    alphabet_tr = Iset.elements f.Flow.alphabet_tr;
    alphabet_rt = Iset.elements f.Flow.alphabet_rt;
    sender;
    receiver;
    product;
    findings;
    iterations = f.Flow.iterations;
    converged = f.Flow.converged;
  }

let analyze (ck : Check.checked) : report = of_flow ck (Flow.run ck)

let find_rule (r : report) rule =
  List.find_opt (fun f -> f.rule = rule) r.findings

(* ---- rendering ------------------------------------------------------ *)

let span_json (sp : Diag.span) =
  Json.Obj
    [
      ("line", Json.Int sp.Diag.first.Diag.line);
      ("col", Json.Int sp.Diag.first.Diag.col);
      ("end_line", Json.Int sp.Diag.last.Diag.line);
      ("end_col", Json.Int sp.Diag.last.Diag.col);
    ]

let count_json n = if n = Dom.omega then Json.String "omega" else Json.Int n

let station_json (s : station_report) =
  Json.Obj
    [
      ("station", Json.String s.station);
      ("state_bound", count_json s.state_bound);
      ( "omega_slots",
        Json.List (List.map (fun x -> Json.String x) s.omega_slots) );
      ("dead_clauses", Json.List (List.map span_json s.dead_clauses));
    ]

let finding_json (f : finding) =
  Json.Obj
    ([
       ("rule", Json.String f.rule);
       ("verdict", Json.String (verdict_name f.verdict));
       ("message", Json.String f.message);
     ]
    @ (match f.span with None -> [] | Some sp -> [ ("span", span_json sp) ])
    (* Why-Unknown provenance: JSON-only so the human report stays one
       line per rule; refinement tooling keys off this field. *)
    @ match f.why with None -> [] | Some w -> [ ("why", Json.String w) ])

let to_json (r : report) =
  Json.Obj
    [
      ("protocol", Json.String r.protocol);
      ("declared_headers", Json.Int r.declared_headers);
      ("alphabet_tr", Json.List (List.map (fun p -> Json.Int p) r.alphabet_tr));
      ("alphabet_rt", Json.List (List.map (fun p -> Json.Int p) r.alphabet_rt));
      ("sender", station_json r.sender);
      ("receiver", station_json r.receiver);
      ("state_product", count_json r.product);
      ("findings", Json.List (List.map finding_json r.findings));
      ("iterations", Json.Int r.iterations);
      ("converged", Json.Bool r.converged);
    ]

let pp ?file ppf (r : report) =
  let pp_loc ppf sp =
    match (file, sp) with
    | Some f, Some (s : Diag.span) ->
        Fmt.pf ppf " (%s:%d:%d)" f s.Diag.first.Diag.line s.Diag.first.Diag.col
    | None, Some (s : Diag.span) ->
        Fmt.pf ppf " (line %d, col %d)" s.Diag.first.Diag.line
          s.Diag.first.Diag.col
    | _, None -> ()
  in
  Fmt.pf ppf "static analysis: %s@." r.protocol;
  Fmt.pf ppf "  alphabet: %d packet(s) of %d declared (t->r {%s}, r->t {%s})@."
    (List.length r.alphabet_tr + List.length r.alphabet_rt)
    r.declared_headers
    (String.concat "," (List.map string_of_int r.alphabet_tr))
    (String.concat "," (List.map string_of_int r.alphabet_rt));
  Fmt.pf ppf "  states: k_t <= %a, k_r <= %a, product %a@." pp_count
    r.sender.state_bound pp_count r.receiver.state_bound pp_count r.product;
  (match r.sender.omega_slots @ r.receiver.omega_slots with
  | [] -> ()
  | _ ->
      Fmt.pf ppf "  unbounded slots: %s@."
        (String.concat ", "
           (List.map (fun s -> "sender." ^ s) r.sender.omega_slots
           @ List.map (fun s -> "receiver." ^ s) r.receiver.omega_slots)));
  Fmt.pf ppf "  fixpoint: %d iteration(s), %s@." r.iterations
    (if r.converged then "converged" else "NOT converged");
  List.iter
    (fun f ->
      Fmt.pf ppf "  %-3s %-7s %s%a@." f.rule
        (verdict_name f.verdict)
        f.message pp_loc f.span)
    r.findings

(* ---- cross-validation and the Static upgrade ------------------------ *)

module Lint = Nfc_lint

let static_rules = [ "H1"; "B1"; "E1" ]

type agreement = Agree | Contradict of string | Inapplicable

(* A static verdict must never contradict the exploration-backed result:
   the bounded run is a concrete witness generator, so any reachable
   fact it found must fit inside the abstract over-approximation. *)
let check_rule (rep : report) (r : Lint.Engine.result) rule : agreement =
  let c = r.Lint.Engine.certificate in
  let bounded_error =
    List.exists
      (fun (d : Lint.Diagnostic.t) ->
        d.Lint.Diagnostic.rule = rule
        && d.Lint.Diagnostic.severity = Lint.Diagnostic.Error)
      r.Lint.Engine.diagnostics
  in
  match find_rule rep rule with
  | None -> Inapplicable
  | Some f -> (
      match f.verdict with
      | Unknown -> Inapplicable
      | Fail ->
          if bounded_error then Agree (* both reject; nothing to upgrade *)
          else Contradict "static tier rejects, bounded tier accepts"
      | Pass ->
          if bounded_error then
            Contradict "bounded tier found a concrete violation"
          else (
            match rule with
            | "H1" ->
                let static_alpha =
                  Iset.union
                    (Iset.of_list rep.alphabet_tr)
                    (Iset.of_list rep.alphabet_rt)
                in
                let observed =
                  Iset.union
                    (Iset.of_list c.Lint.Certificate.alphabet_tr)
                    (Iset.of_list c.Lint.Certificate.alphabet_rt)
                in
                if Iset.subset observed static_alpha then Agree
                else
                  Contradict
                    (Fmt.str
                       "explored packets {%s} escape the symbolic alphabet \
                        {%s}"
                       (String.concat ","
                          (List.map string_of_int (Iset.elements observed)))
                       (String.concat ","
                          (List.map string_of_int (Iset.elements static_alpha))))
            | "B1" ->
                if
                  rep.product = Dom.omega
                  || Nfc_absint.Opvec.sat_mul c.Lint.Certificate.k_t
                       c.Lint.Certificate.k_r
                     <= rep.product
                then Agree
                else
                  Contradict
                    (Fmt.str
                       "explored state product %d*%d exceeds the symbolic \
                        bound %s"
                       c.Lint.Certificate.k_t c.Lint.Certificate.k_r
                       (count_str rep.product))
            | _ -> Agree))

(* Promote the agreeing rules of [rep] in [r] to the Static strength and
   append the A1 audit diagnostics.  Disagreements leave the strengths
   untouched and warn; a Fail static verdict that the bounded tier missed
   becomes an A1 error (the symbolic tier is sound, so the spec really
   does exceed its declaration somewhere past the explored frontier).

   [refine_rounds] and [refine_notes] carry the CEGAR loop's provenance
   when [rep] came out of {!Nfc_refine}: the round count is stored in the
   certificate (and its JSONL record), the notes become A1 Info
   diagnostics.  The A1 cross-validation itself is unchanged — a refined
   report is audited against the bounded exploration exactly like a
   one-shot one, so refinement can never smuggle in an unchecked
   upgrade. *)
let apply_to_lint ?refine_rounds ?(refine_notes = []) (rep : report)
    (r : Lint.Engine.result) : Lint.Engine.result =
  let upgrades = ref [] and diags = ref [] in
  List.iter
    (fun rule ->
      match check_rule rep r rule with
      | Inapplicable -> ()
      | Agree -> (
          match find_rule rep rule with
          | Some { verdict = Pass; _ } -> upgrades := rule :: !upgrades
          | Some { verdict = Fail; message; _ } ->
              diags :=
                Lint.Diagnostic.make ~rule:"A1"
                  ~severity:Lint.Diagnostic.Info ~protocol:r.Lint.Engine.protocol
                  (Fmt.str
                     "static tier corroborates the bounded %s rejection: %s"
                     rule message)
                :: !diags
          | _ -> ())
      | Contradict why ->
          diags :=
            Lint.Diagnostic.make ~rule:"A1" ~severity:Lint.Diagnostic.Warning
              ~protocol:r.Lint.Engine.protocol
              (Fmt.str
                 "static tier contradicts the bounded %s verdict (%s); one \
                  analysis is unsound, strength not upgraded"
                 rule why)
            :: !diags)
    static_rules;
  let upgrades = List.rev !upgrades in
  let c = r.Lint.Engine.certificate in
  let rule_strengths =
    (* Upgrade in place, then append the promoted rules the bounded
       certificate does not track (B1/E1), keeping a stable order. *)
    List.map
      (fun (rule, s) ->
        if List.mem rule upgrades then (rule, Lint.Certificate.Static)
        else (rule, s))
      c.Lint.Certificate.rule_strengths
    @ List.filter_map
        (fun rule ->
          if
            List.mem rule upgrades
            && not
                 (List.mem_assoc rule c.Lint.Certificate.rule_strengths)
          then Some (rule, Lint.Certificate.Static)
          else None)
        static_rules
  in
  let diags =
    if upgrades <> [] then
      Lint.Diagnostic.make ~rule:"A1" ~severity:Lint.Diagnostic.Info
        ~protocol:r.Lint.Engine.protocol
        (Fmt.str
           "static certification: %s discharged at the spec level (alphabet \
            <= %d of %d declared, k_t*k_r <= %s, 0 exploration nodes)"
           (String.concat "/" upgrades)
           (List.length rep.alphabet_tr + List.length rep.alphabet_rt)
           rep.declared_headers (count_str rep.product))
      :: !diags
    else !diags
  in
  (* [diags] is most-recent-first until the final [List.rev]; prepending
     the notes here lands them after the upgrade summary in the output. *)
  let diags =
    List.rev_map
      (fun note ->
        Lint.Diagnostic.make ~rule:"A1" ~severity:Lint.Diagnostic.Info
          ~protocol:r.Lint.Engine.protocol ("refinement: " ^ note))
      refine_notes
    @ diags
  in
  let strength =
    List.fold_left
      (fun acc (_, s) -> Lint.Certificate.weakest acc s)
      Lint.Certificate.Static rule_strengths
  in
  {
    r with
    Lint.Engine.diagnostics = r.Lint.Engine.diagnostics @ List.rev diags;
    certificate =
      { c with Lint.Certificate.rule_strengths; strength;
        refine_rounds };
  }
