(* The abstract domain of the spec-level interpreter: per-slot values are
   booleans with a may-be-true/may-be-false pair, integers as intervals
   whose upper bound may be ω (and lower bound -ω), and queues as
   ω-extended multiset upper bounds on the queued packet values
   ([Nfc_absint.Opvec], so the ω encoding and the join coincide with the
   coverability tier's channel domain).

   ω is [Opvec.omega] = [max_int]; -ω is its negation.  Both are plain
   ints, so the usual comparisons order them correctly; arithmetic goes
   through the saturating helpers below, which never wrap. *)

module Check = Nfc_pdl.Check
module Ast = Nfc_pdl.Ast
module Opvec = Nfc_absint.Opvec

let omega = Opvec.omega
let neg_omega = -Opvec.omega

(* ---- intervals ------------------------------------------------------ *)

(* Invariant: [lo <= hi]; [hi = omega] means unbounded above, [lo =
   neg_omega] unbounded below.  Empty intervals never exist as values —
   emptiness is signalled by [None] from the meet/refinement operators. *)
type itv = { lo : int; hi : int }

let point n = { lo = n; hi = n }
let itv_top = { lo = neg_omega; hi = omega }
let is_point iv = iv.lo = iv.hi && iv.lo <> omega && iv.lo <> neg_omega

(* Saturating scalar sums, rounding outward (toward the infinity of the
   bound being computed) so over-approximation is preserved. *)
let sadd_up a b =
  if a = omega || b = omega then omega
  else if a = neg_omega || b = neg_omega then neg_omega
  else if a > 0 && b > 0 && a > omega - b then omega
  else if a < 0 && b < 0 && a < neg_omega - b then neg_omega
  else a + b

(* Extended product with the convention 0 * ω = 0 (an empty range
   contributes nothing no matter how often it is scaled). *)
let smul a b =
  if a = 0 || b = 0 then 0
  else
    let pos = a > 0 = (b > 0) in
    let inf = a = omega || a = neg_omega || b = omega || b = neg_omega in
    if inf then if pos then omega else neg_omega
    else if abs a > (omega - 1) / abs b then if pos then omega else neg_omega
    else a * b

let itv_add a b = { lo = sadd_up a.lo b.lo; hi = sadd_up a.hi b.hi }
let itv_neg a = { lo = -a.hi; hi = -a.lo }
let itv_sub a b = itv_add a (itv_neg b)

let itv_mul a b =
  let c1 = smul a.lo b.lo
  and c2 = smul a.lo b.hi
  and c3 = smul a.hi b.lo
  and c4 = smul a.hi b.hi in
  { lo = min (min c1 c2) (min c3 c4); hi = max (max c1 c2) (max c3 c4) }

let itv_meet a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let itv_join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

(* Widening against the slot's [ceiling] (widening target): a growing
   bound jumps straight to the target's bound (ω for counters, the
   declared range end for range slots), so the chain stabilises after one
   jump per side.  The jump rounds OUTWARD past the join — a target
   tighter than the join (a refinement-installed split point that turned
   out too low) never truncates it, so the widened value over-approximates
   the join for EVERY target and soundness does not depend on the target
   being an invariant.  A too-low target merely degrades to exact
   iteration past the split point (bounded by the round cap). *)
let itv_widen ~ceiling ~prev next =
  {
    lo = (if next.lo < prev.lo then min ceiling.lo next.lo else next.lo);
    hi = (if next.hi > prev.hi then max ceiling.hi next.hi else next.hi);
  }

(* Disjunctive split of [iv] at [c]: the two halves [lo,c] / [c+1,hi] of
   the refinement partition.  [None] when [c] does not split the interior
   ([c] outside or at the top).  Refinement analyses the lower half as the
   widening target and lets the fixpoint prove the upper half
   unreachable. *)
let itv_split iv c =
  if c < iv.lo || c >= iv.hi then None
  else Some ({ iv with hi = c }, { iv with lo = sadd_up c 1 })

let itv_size iv =
  if iv.hi = omega || iv.lo = neg_omega then omega
  else Opvec.sat_add (iv.hi - iv.lo) 1

let pp_bound ppf n =
  if n = omega then Fmt.string ppf "ω"
  else if n = neg_omega then Fmt.string ppf "-ω"
  else Fmt.int ppf n

let pp_itv ppf iv =
  if is_point iv then pp_bound ppf iv.lo
  else Fmt.pf ppf "[%a,%a]" pp_bound iv.lo pp_bound iv.hi

(* ---- may-booleans --------------------------------------------------- *)

type bv = { can_t : bool; can_f : bool }

let bv_of_bool b = { can_t = b; can_f = not b }
let bv_top = { can_t = true; can_f = true }
let bv_join a b = { can_t = a.can_t || b.can_t; can_f = a.can_f || b.can_f }
let bv_not b = { can_t = b.can_f; can_f = b.can_t }
let bv_size b = (if b.can_t then 1 else 0) + if b.can_f then 1 else 0

let pp_bv ppf b =
  Fmt.string ppf
    (match (b.can_t, b.can_f) with
    | true, true -> "⊤"
    | true, false -> "true"
    | false, true -> "false"
    | false, false -> "⊥")

(* ---- abstract slot values and environments -------------------------- *)

type aval = Abool of bv | Aint of itv | Aqueue of Opvec.t

(* [binder] is the interval of the packet parameter bound by the active
   [on <family>(x)] clause; [itv_top] outside such clauses (the checker
   rejects stray binder references, so the value is never read there). *)
type env = { vals : aval array; binder : itv }

let aval_equal a b =
  match (a, b) with
  | Abool x, Abool y -> x = y
  | Aint x, Aint y -> x = y
  | Aqueue x, Aqueue y -> Opvec.equal x y
  | _ -> false

let env_equal a b =
  Array.length a.vals = Array.length b.vals
  && Array.for_all2 aval_equal a.vals b.vals

(* ---- expression evaluation ------------------------------------------ *)

type v = Vi of itv | Vb of bv

(* The checker types every expression, so the coercions below are total
   on checked specs; the fallbacks keep the evaluator defensive rather
   than partial. *)
let as_itv = function Vi iv -> iv | Vb _ -> itv_top
let as_bv = function Vb b -> b | Vi _ -> bv_top

let cmp_bv (op : Ast.binop) (a : itv) (b : itv) : bv =
  let overlap = a.lo <= b.hi && b.lo <= a.hi in
  match op with
  | Ast.Eq ->
      { can_t = overlap; can_f = not (is_point a && is_point b && a.lo = b.lo) }
  | Ast.Ne ->
      { can_t = not (is_point a && is_point b && a.lo = b.lo); can_f = overlap }
  | Ast.Lt -> { can_t = a.lo < b.hi; can_f = a.hi >= b.lo }
  | Ast.Le -> { can_t = a.lo <= b.hi; can_f = a.hi > b.lo }
  | Ast.Gt -> { can_t = a.hi > b.lo; can_f = a.lo <= b.hi }
  | Ast.Ge -> { can_t = a.hi >= b.lo; can_f = a.lo < b.hi }
  | _ -> bv_top

let rec eval (e : env) (c : Check.cexpr) : v =
  match c with
  | Check.Cint n -> Vi (point n)
  | Check.Cbool b -> Vb (bv_of_bool b)
  | Check.Cslot i -> (
      match e.vals.(i) with
      | Abool b -> Vb b
      | Aint iv -> Vi iv
      | Aqueue _ -> Vi itv_top (* checker rejects queue reads *))
  | Check.Cbinder -> Vi e.binder
  | Check.Cbudget -> Vi { lo = 0; hi = omega }
  | Check.Cun (Ast.Neg, x) -> Vi (itv_neg (as_itv (eval e x)))
  | Check.Cun (Ast.Not, x) -> Vb (bv_not (as_bv (eval e x)))
  | Check.Cbin (op, x, y) -> (
      match op with
      | Ast.Add -> Vi (itv_add (as_itv (eval e x)) (as_itv (eval e y)))
      | Ast.Sub -> Vi (itv_sub (as_itv (eval e x)) (as_itv (eval e y)))
      | Ast.Mul -> Vi (itv_mul (as_itv (eval e x)) (as_itv (eval e y)))
      | Ast.And ->
          let a = as_bv (eval e x) and b = as_bv (eval e y) in
          Vb { can_t = a.can_t && b.can_t; can_f = a.can_f || b.can_f }
      | Ast.Or ->
          let a = as_bv (eval e x) and b = as_bv (eval e y) in
          Vb { can_t = a.can_t || b.can_t; can_f = a.can_f && b.can_f }
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          Vb (cmp_bv op (as_itv (eval e x)) (as_itv (eval e y))))

(* ---- guard refinement ----------------------------------------------- *)

(* Narrow [iv] under [iv OP rigid] known true. *)
let narrow (op : Ast.binop) (iv : itv) (r : int) : itv option =
  match op with
  | Ast.Eq -> itv_meet iv (point r)
  | Ast.Lt -> itv_meet iv { lo = neg_omega; hi = sadd_up r (-1) }
  | Ast.Le -> itv_meet iv { lo = neg_omega; hi = r }
  | Ast.Gt -> itv_meet iv { lo = sadd_up r 1; hi = omega }
  | Ast.Ge -> itv_meet iv { lo = r; hi = omega }
  | _ -> Some iv (* Ne and non-comparisons: no narrowing *)

let flip = function
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le
  | op -> op

(* Refine [e] under guard [g] assumed true; [None] when the guard cannot
   hold on any state described by [e].  Conjuncts narrow slot and binder
   intervals against rigid (singleton) opposite sides, mirroring the
   checker's own refinement; everything else only feasibility-checks. *)
let rec refine (e : env) (g : Check.cexpr) : env option =
  let b = as_bv (eval e g) in
  if not b.can_t then None
  else
    match g with
    | Check.Cbin (Ast.And, x, y) ->
        Option.bind (refine e x) (fun e' -> refine e' y)
    | Check.Cslot i -> (
        match e.vals.(i) with
        | Abool _ ->
            let vals = Array.copy e.vals in
            vals.(i) <- Abool (bv_of_bool true);
            Some { e with vals }
        | _ -> Some e)
    | Check.Cun (Ast.Not, Check.Cslot i) -> (
        match e.vals.(i) with
        | Abool _ ->
            let vals = Array.copy e.vals in
            vals.(i) <- Abool (bv_of_bool false);
            Some { e with vals }
        | _ -> Some e)
    | Check.Cbin (((Ast.Eq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), l, r)
      -> (
        let narrow_side target rigid op =
          let riv = as_itv (eval e rigid) in
          if not (is_point riv) then Some e
          else
            match target with
            | Check.Cslot i -> (
                match e.vals.(i) with
                | Aint iv ->
                    Option.map
                      (fun iv' ->
                        let vals = Array.copy e.vals in
                        vals.(i) <- Aint iv';
                        { e with vals })
                      (narrow op iv riv.lo)
                | _ -> Some e)
            | Check.Cbinder ->
                Option.map
                  (fun b' -> { e with binder = b' })
                  (narrow op e.binder riv.lo)
            | _ -> Some e
        in
        match (l, r) with
        | (Check.Cslot _ | Check.Cbinder), _ -> narrow_side l r op
        | _, (Check.Cslot _ | Check.Cbinder) -> narrow_side r l (flip op)
        | _ -> Some e)
    | _ -> Some e

let refine_opt (e : env) (g : Check.cexpr option) : env option =
  match g with None -> Some e | Some g -> refine e g

(* ---- join / widening over environments ------------------------------ *)

(* [ceilings.(i)] is slot [i]'s widening target (declared range for
   [Krange], [0,ω] for counters); queues widen through
   [Opvec.accelerate].  Returns the joined env and whether it differs
   from [into]. *)
let join_env ~widen ~(ceilings : itv array) ~(into : env) (from : env) :
    env * bool =
  let changed = ref false in
  let vals =
    Array.mapi
      (fun i old ->
        let v =
          match (old, from.vals.(i)) with
          | Abool a, Abool b -> Abool (bv_join a b)
          | Aint a, Aint b ->
              let j = itv_join a b in
              let j =
                if widen && j <> a then itv_widen ~ceiling:ceilings.(i) ~prev:a j
                else j
              in
              Aint j
          | Aqueue a, Aqueue b ->
              let j = Opvec.join a b in
              let j =
                if widen && not (Opvec.equal j a) then Opvec.accelerate ~prev:a j
                else j
              in
              Aqueue j
          | a, _ -> a (* kinds are fixed per slot; unreachable *)
        in
        if not (aval_equal v old) then changed := true;
        v)
      into.vals
  in
  ({ into with vals }, !changed)
