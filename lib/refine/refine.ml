(* Counterexample-guided abstraction refinement around {!Nfc_specint}.

   The one-shot abstract interpreter widens free-running counters
   straight to ω, leaving B1 ω-parametric and downstream consumers with
   an Unknown-shaped certificate.  This loop turns those into located
   verdicts:

   1. Run the coupled fixpoint ({!Nfc_specint.Flow.run}).  If the state
      product is concrete, done.
   2. Otherwise take the abstract witness: the first recorded widening
      jump ({!Nfc_specint.Flow.widen_event}) — the clause firing whose
      join pushed a slot to ω, with its source span.
   3. Extract candidate invariants from the spec itself: every
      [And]-conjunct comparison against a constant that upper-bounds the
      slot ([x < c], [x <= c], [c >= x], ...) yields the candidate
      bound c (adjusted by the largest constant increment any clause
      applies to the slot, since guards are checked pre-action).
   4. Replay the candidate concretely on the runtime-compiled automaton:
      a bounded sequential BFS ({!Nfc_mcheck.Explore.Make.replay_monitor})
      checks [slot <= candidate] on every reachable configuration under
      the delivery-gated semantics.
      - A violation is REAL: the candidate is refuted by a
        span-carrying concrete trace, reported as an R1 [Fail] finding.
        The slot really pumps past its guard constant.
      - Upheld (or budget-truncated): the witness is treated as
        spurious at this bound; install the split interval [0, c] as
        the slot's widening target ({!Nfc_specint.Dom.itv_split} is the
        underlying partition) and re-run the fixpoint on the
        disjunctively refined control product.
   5. Repeat under a round cap.  A re-run that fails to stabilise
      uninstalls its target and degrades to the one-shot answer —
      refinement can tighten or locate, never flip a verdict unsoundly.

   Soundness does NOT rest on the replay: {!Nfc_specint.Dom.itv_widen}
   rounds outward past the join even when a target is installed, so any
   converged re-run is a genuine over-approximating fixpoint whatever
   targets steered it.  The replay only (a) filters candidates so we
   don't burn rounds on refuted invariants and (b) produces the concrete
   traces behind R1.  The replay itself is always sequential, so every
   refined verdict is byte-identical at any [--engine-domains] count. *)

module Ast = Nfc_pdl.Ast
module Check = Nfc_pdl.Check
module Compile = Nfc_pdl.Compile
module Diag = Nfc_pdl.Diag
module Explore = Nfc_mcheck.Explore
module Json = Nfc_util.Json
module Dom = Nfc_specint.Dom
module Flow = Nfc_specint.Flow
module Specint = Nfc_specint.Specint

(* Replay bounds: small capacities keep the gated BFS cheap (the replay
   is a falsification probe, not a verification pass), while the node
   budget is generous enough to reach the shallow pumping loops real
   specs exhibit. *)
let default_replay_bounds =
  {
    Explore.capacity_tr = 2;
    capacity_rt = 2;
    submit_budget = 3;
    max_nodes = 40_000;
    allow_drop = true;
    por = false;
  }

let default_rounds = 3

(* ---- candidate extraction ------------------------------------------- *)

let rec conjuncts (e : Check.cexpr) acc =
  match e with
  | Check.Cbin (Ast.And, a, b) -> conjuncts a (conjuncts b acc)
  | e -> e :: acc

(* Upper bound on slot [i] implied by one comparison conjunct, [None]
   when the conjunct says nothing about [i]'s maximum.  Elaboration has
   already constant-folded, so comparisons against literals appear as
   [Cint]. *)
let conjunct_upper i = function
  | Check.Cbin (Ast.Lt, Check.Cslot j, Check.Cint c) when j = i -> Some (c - 1)
  | Check.Cbin (Ast.Le, Check.Cslot j, Check.Cint c) when j = i -> Some c
  | Check.Cbin (Ast.Eq, Check.Cslot j, Check.Cint c) when j = i -> Some c
  | Check.Cbin (Ast.Eq, Check.Cint c, Check.Cslot j) when j = i -> Some c
  | Check.Cbin (Ast.Gt, Check.Cint c, Check.Cslot j) when j = i -> Some (c - 1)
  | Check.Cbin (Ast.Ge, Check.Cint c, Check.Cslot j) when j = i -> Some c
  | _ -> None

let station_clauses (cs : Check.cstation) =
  cs.Check.on_clauses @ cs.Check.poll_clauses

(* The largest constant a single clause firing can add to slot [i]
   (guards are evaluated pre-action, so a slot guarded by [x < c] can
   still reach [c - 1 + incr]).  [None] when some assignment to [i] is
   not a constant add/assign — then no guard constant bounds the slot
   and refinement abstains. *)
let max_step (cs : Check.cstation) i : int option =
  let ok = ref true and incr_max = ref 0 in
  List.iter
    (fun (c : Check.cclause) ->
      List.iter
        (fun a ->
          match a with
          | Check.CAset (j, _, _) when j <> i -> ()
          | Check.CAset (_, `Sub, _) -> () (* only shrinks the maximum *)
          | Check.CAset (_, `Add, Check.Cint k) ->
              if k > 0 then incr_max := max !incr_max k
          | Check.CAset (_, `Assign, Check.Cint _) -> ()
          | Check.CAset (_, (`Add | `Assign), _) -> ok := false
          | Check.CApush _ -> ())
        c.Check.acts)
    (station_clauses cs);
  if !ok then Some !incr_max else None

(* Direct constant assignments are reachable values in their own right. *)
let assign_consts (cs : Check.cstation) i =
  List.concat_map
    (fun (c : Check.cclause) ->
      List.filter_map
        (function
          | Check.CAset (j, `Assign, Check.Cint k) when j = i -> Some k
          | _ -> None)
        c.Check.acts)
    (station_clauses cs)

(* Candidate upper bounds for slot [i], ascending: each guard-derived
   bound plus the worst-case single-step increment, plus assigned
   constants.  Empty when the slot is unguarded or stepped by a
   non-constant amount. *)
let candidates (cs : Check.cstation) i : int list =
  match max_step cs i with
  | None -> []
  | Some step ->
      let from_guards =
        List.concat_map
          (fun (c : Check.cclause) ->
            match c.Check.guard with
            | None -> []
            | Some g ->
                List.filter_map (conjunct_upper i) (conjuncts g []))
          (station_clauses cs)
      in
      List.sort_uniq compare
        (List.map (fun b -> b + step) from_guards @ assign_consts cs i)

(* ---- the loop -------------------------------------------------------- *)

type round_action =
  | Promoted of int  (* candidate installed; fixpoint reconverged *)
  | Refuted of int * int  (* candidate, concrete witness trace length *)
  | Diverged of int  (* installed target failed to stabilise; uninstalled *)
  | No_candidates

type round = {
  index : int;
  station : string;  (* "sender" | "receiver" *)
  slot_name : string;
  action : round_action;
}

type refutation = {
  rstation : string;
  rslot : string;
  rbound : int;
  rtrace_len : int;
  rspan : Diag.span;
}

type result = {
  base : Specint.report;  (* the one-shot report refinement started from *)
  report : Specint.report;  (* final report, R1 findings appended *)
  rounds_used : int;
  promoted : bool;  (* ω-parametric product became concrete *)
  history : Specint.report list;
      (* report after the base run and after every accepted re-run, in
         order — each entry is a sound fixpoint in its own right, which
         is what the per-round soundness property tests *)
  rounds : round list;
  refuted : refutation list;
}

let r1_finding (r : refutation) : Specint.finding =
  {
    Specint.rule = "R1";
    verdict = Specint.Fail;
    message =
      Fmt.str
        "refinement: candidate invariant %s.%s <= %d concretely refuted by a \
         %d-action witness trace (pumping clause here); the slot exceeds its \
         guard-derived bound"
        r.rstation r.rslot r.rbound r.rtrace_len;
    span = Some r.rspan;
    why = None;
  }

let run ?(rounds = default_rounds) ?(replay_bounds = default_replay_bounds)
    (ck : Check.checked) : result =
  let (module P : Compile.SPEC_PROBED) = Compile.to_spec_probed ck in
  let module E = Explore.Make (P) in
  let slot_of w (cfg : E.config) =
    if w.Flow.wstation = "sender" then P.sender_slot w.Flow.wslot cfg.E.sender
    else P.receiver_slot w.Flow.wslot cfg.E.receiver
  in
  let base_flow = Flow.run ck in
  let base = Specint.of_flow ck base_flow in
  let targets_s = ref [] and targets_r = ref [] in
  let banned : (string * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let tried : (string * int, int list) Hashtbl.t = Hashtbl.create 8 in
  let history = ref [ base ] in
  let round_logs = ref [] in
  let refutations = ref [] in
  let current_flow = ref base_flow in
  let current = ref base in
  let rounds_used = ref 0 in
  let finished = ref false in
  let key w = (w.Flow.wstation, w.Flow.wslot) in
  let station_of w = if w.Flow.wstation = "sender" then ck.Check.csender else ck.Check.creceiver in
  let log w action =
    round_logs :=
      {
        index = !rounds_used;
        station = w.Flow.wstation;
        slot_name = w.Flow.wname;
        action;
      }
      :: !round_logs
  in
  while (not !finished) && !rounds_used < rounds do
    if !current.Specint.converged && !current.Specint.product <> Dom.omega then
      finished := true
    else
      (* The abstract witness: first ω-introducing widening jump whose
         slot is not already given up on. *)
      match
        List.find_opt
          (fun w -> not (Hashtbl.mem banned (key w)))
          !current_flow.Flow.widened
      with
      | None -> finished := true
      | Some w -> (
          incr rounds_used;
          let seen = Option.value ~default:[] (Hashtbl.find_opt tried (key w)) in
          let cands =
            List.filter (fun c -> not (List.mem c seen)) (candidates (station_of w) w.Flow.wslot)
          in
          match cands with
          | [] ->
              Hashtbl.replace banned (key w) ();
              log w No_candidates
          | c :: _ -> (
              Hashtbl.replace tried (key w) (c :: seen);
              let monitor cfg = slot_of w cfg <= c in
              match E.replay_monitor ~monitor replay_bounds with
              | E.Replay_refuted (trace, _cfg, _stats) ->
                  (* Real counterexample: the invariant candidate is
                     false, so there is nothing to install — record the
                     located refutation and (next round) escalate to the
                     next candidate if any. *)
                  refutations :=
                    {
                      rstation = w.Flow.wstation;
                      rslot = w.Flow.wname;
                      rbound = c;
                      rtrace_len = List.length trace;
                      rspan = w.Flow.wspan;
                    }
                    :: !refutations;
                  if
                    List.for_all (fun c' -> List.mem c' (c :: seen))
                      (candidates (station_of w) w.Flow.wslot)
                  then Hashtbl.replace banned (key w) ();
                  log w (Refuted (c, List.length trace))
              | E.Replay_upheld (_stats, _truncated) -> (
                  (* Spurious at this bound: partition the slot's domain
                     at the guard constant and re-run the fixpoint with
                     the bounded half as the widening target. *)
                  let install =
                    if w.Flow.wstation = "sender" then targets_s else targets_r
                  in
                  let saved = !install in
                  install := (w.Flow.wslot, { Dom.lo = 0; hi = c }) :: saved;
                  let f =
                    Flow.run ~sender_targets:!targets_s
                      ~receiver_targets:!targets_r ck
                  in
                  if f.Flow.converged then begin
                    current_flow := f;
                    current := Specint.of_flow ck f;
                    history := !current :: !history;
                    log w (Promoted c)
                  end
                  else begin
                    (* Degrade path: the target was too tight for
                       widening to stabilise within the iteration cap.
                       Uninstall and fall back to the last good run. *)
                    install := saved;
                    Hashtbl.replace banned (key w) ();
                    log w (Diverged c)
                  end)))
  done;
  let refuted = List.rev !refutations in
  let report =
    {
      !current with
      Specint.findings =
        !current.Specint.findings @ List.map r1_finding refuted;
    }
  in
  {
    base;
    report;
    rounds_used = !rounds_used;
    promoted =
      base.Specint.product = Dom.omega
      && report.Specint.product <> Dom.omega
      && report.Specint.converged;
    history = List.rev !history;
    rounds = List.rev !round_logs;
    refuted;
  }

(* ---- rendering ------------------------------------------------------- *)

let action_name = function
  | Promoted _ -> "promoted"
  | Refuted _ -> "refuted"
  | Diverged _ -> "diverged"
  | No_candidates -> "no_candidates"

let round_json (r : round) =
  Json.Obj
    ([
       ("round", Json.Int r.index);
       ("station", Json.String r.station);
       ("slot", Json.String r.slot_name);
       ("action", Json.String (action_name r.action));
     ]
    @
    match r.action with
    | Promoted c | Diverged c -> [ ("candidate", Json.Int c) ]
    | Refuted (c, len) ->
        [ ("candidate", Json.Int c); ("trace_len", Json.Int len) ]
    | No_candidates -> [])

let refutation_json (r : refutation) =
  Json.Obj
    [
      ("station", Json.String r.rstation);
      ("slot", Json.String r.rslot);
      ("bound", Json.Int r.rbound);
      ("trace_len", Json.Int r.rtrace_len);
      ("line", Json.Int r.rspan.Diag.first.Diag.line);
    ]

let to_json (res : result) =
  Json.Obj
    [
      ("rounds_used", Json.Int res.rounds_used);
      ("promoted", Json.Bool res.promoted);
      ( "base_product",
        if res.base.Specint.product = Dom.omega then Json.String "omega"
        else Json.Int res.base.Specint.product );
      ( "product",
        if res.report.Specint.product = Dom.omega then Json.String "omega"
        else Json.Int res.report.Specint.product );
      ("rounds", Json.List (List.map round_json res.rounds));
      ("refuted", Json.List (List.map refutation_json res.refuted));
    ]

(* One A1 Info note per round plus a summary — what [apply_to_lint]
   renders after the static-certification line. *)
let notes (res : result) : string list =
  let per_round =
    List.map
      (fun r ->
        match r.action with
        | Promoted c ->
            Fmt.str
              "round %d: split %s.%s at %d — fixpoint reconverged on the \
               partitioned domain"
              r.index r.station r.slot_name c
        | Refuted (c, len) ->
            Fmt.str
              "round %d: candidate %s.%s <= %d refuted by a %d-action \
               concrete trace"
              r.index r.station r.slot_name c len
        | Diverged c ->
            Fmt.str
              "round %d: split %s.%s at %d did not stabilise; degraded to \
               the unrefined answer"
              r.index r.station r.slot_name c
        | No_candidates ->
            Fmt.str
              "round %d: %s.%s has no guard-derived split candidate; left \
               at ω"
              r.index r.station r.slot_name)
      res.rounds
  in
  let summary =
    if res.promoted then
      [
        Fmt.str
          "B1 promoted from ω-parametric to concrete k_t*k_r = %d after %d \
           refinement round(s)"
          res.report.Specint.product res.rounds_used;
      ]
    else if res.rounds_used = 0 then []
    else
      [
        Fmt.str "%d refinement round(s); state product %s" res.rounds_used
          (if res.report.Specint.product = Dom.omega then "still ω"
           else Fmt.str "= %d" res.report.Specint.product);
      ]
  in
  per_round @ summary

let pp ppf (res : result) =
  Fmt.pf ppf "refinement: %d round(s), %s@." res.rounds_used
    (if res.promoted then "promoted"
     else if res.refuted <> [] then "refuted candidate(s)"
     else "no promotion");
  List.iter (fun n -> Fmt.pf ppf "  %s@." n) (notes res)
