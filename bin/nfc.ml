(* nfc — command-line driver for the non-FIFO channel testbed.

   Subcommands:
     nfc protocols                 list the available protocols
     nfc figure1                   print the paper's Figure 1
     nfc simulate ...              one harness run, metrics (and trace)
     nfc mcheck ...                search for a DL1 counterexample
     nfc fuzz ...                  coverage-guided schedule fuzzing (+ shrinking)
     nfc lint ...                  static protocol verification (H1/E1/B1/T1/Q1/S1/C1)
     nfc cover ...                 Karp-Miller cover set (budget-free coverability)
     nfc boundness ...             measure boundness vs k_t*k_r (Thm 2.1)
     nfc serve ...                 run the HTTP verification service
     nfc loadgen ...               drive a running service with concurrent jobs
     nfc experiment t21|t31|t41|t51|all   regenerate the paper's tables *)

open Cmdliner

(* ------------------------------------------------------- shared parsing *)

(* Protocol names resolve through the registry, so the CLI, the examples and
   the experiment drivers can never drift apart. *)
let protocol_doc = "Protocol: " ^ Nfc_protocol.Registry.doc

let parse_protocol s =
  match Nfc_protocol.Registry.parse s with
  | Ok p -> Ok p
  | Error msg -> Error (`Msg msg)

let protocol_conv =
  Arg.conv
    ( parse_protocol,
      fun ppf p -> Format.pp_print_string ppf (Nfc_protocol.Spec.name p) )

(* --spec FILE: compile a PDL definition and use it as the protocol —
   sugar for -p file:FILE, available on every protocol-taking command. *)
let spec_conv =
  let parse path =
    match Nfc_pdl.Pdl.load_file path with
    | Ok c -> Ok c.Nfc_pdl.Pdl.spec
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Nfc_protocol.Spec.name p))

let spec_arg =
  Arg.(
    value
    & opt (some spec_conv) None
    & info [ "spec" ] ~docv:"FILE"
        ~doc:
          "Compile FILE as a protocol definition (.nfc) and verify that instead of a \
           registry protocol.  Overrides $(b,-p); equivalent to -p file:FILE.")

let with_spec protocol =
  Term.(const (fun spec p -> Option.value spec ~default:p) $ spec_arg $ protocol)

let with_spec_opt protocol =
  Term.(
    const (fun spec p -> match spec with Some _ -> spec | None -> p)
    $ spec_arg $ protocol)

let channel_doc =
  "Channel: reliable | lossy:P | reorder:DELIVER:DROP | prob:Q | delayed:L[:P] | silent | \
   duplicating:DUP[:BASE] | capacity:CAP[:BASE]"

(* Policies can carry per-channel mutable state (fifo_delayed's clock), so
   the parser -- shared with the /v1/simulate endpoint via
   Nfc_channel.Policy.parse_factory -- yields a channel *factory*,
   instantiated once per direction. *)
let channel_conv =
  let parse s =
    match Nfc_channel.Policy.parse_factory s with
    | Ok factory -> Ok (s, factory)
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf (name, _) -> Format.pp_print_string ppf name)

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Worker domains for independent sub-tasks (0 = one per core). The default 1 \
           runs fully sequentially; any value produces identical output — parallelism \
           only changes wall-clock time.")
(* --jobs fans out independent sub-tasks (per-protocol lint runs, boundness
   probes); --engine-domains parallelises INSIDE one state-space search.
   They compose: lint --jobs 4 --engine-domains 2 runs four protocols at a
   time, each explored by two domains. *)
let engine_domains_arg =
  Arg.(
    value & opt int 1
    & info [ "engine-domains" ] ~docv:"D"
        ~doc:
          "Intra-search worker domains for a single exploration (0 = one per core). \
           Distinct from $(b,--jobs), which fans out independent sub-tasks: this \
           parallelises inside one state-space search with a work-stealing \
           level-synchronous BFS. Results are byte-identical at any value.")

let por_arg =
  Arg.(
    value & flag
    & info [ "por" ]
        ~doc:
          "Commutativity-based partial-order reduction: defer packet drops until the \
           channel is at capacity (drops commute with every other move over a \
           multiset channel). Preserves phantom reachability, packet alphabets and \
           boundness verdicts while exploring fewer configurations.")

let resolve_domains d = if d = 0 then Nfc_util.Pool.recommended () else max 1 d

let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Smaller, faster experiment variants")

(* ------------------------------------------------------------ protocols *)

let protocols_cmd =
  let run () =
    let table =
      Nfc_util.Table.create ~title:"Available data link protocols"
        ~columns:
          [
            ("name", Nfc_util.Table.Left);
            ("headers", Nfc_util.Table.Right);
            ("description", Nfc_util.Table.Left);
          ]
    in
    List.iter
      (fun proto ->
        let module P = (val proto : Nfc_protocol.Spec.S) in
        Nfc_util.Table.add_row table
          [
            P.name;
            (match P.header_bound with Some k -> string_of_int k | None -> "unbounded");
            P.describe;
          ])
      (Nfc_protocol.Registry.defaults ());
    Nfc_util.Table.print table
  in
  Cmd.v (Cmd.info "protocols" ~doc:"List the available protocols")
    Term.(const run $ const ())

(* -------------------------------------------------------------- figure1 *)

let figure1_cmd =
  let run () = print_endline (Nfc_core.Experiments.figure_1 ()) in
  Cmd.v (Cmd.info "figure1" ~doc:"Print the paper's Figure 1 (the data link layer)")
    Term.(const run $ const ())

(* ------------------------------------------------------------- simulate *)

let simulate_cmd =
  let protocol =
    Arg.(
      value
      & opt protocol_conv (Nfc_protocol.Stenning.make ())
      & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:protocol_doc)
  in
  let channel =
    Arg.(
      value
      & opt channel_conv
          ("reorder:0.8:0.05", fun () -> Nfc_channel.Policy.uniform_reorder ~deliver:0.8 ~drop:0.05)
      & info [ "c"; "channel" ] ~docv:"CHAN" ~doc:channel_doc)
  in
  let n = Arg.(value & opt int 10 & info [ "n"; "messages" ] ~docv:"N" ~doc:"Messages to send") in
  let pace =
    Arg.(value & opt int 3 & info [ "pace" ] ~docv:"K" ~doc:"Submit one message every K rounds (0 = all upfront)")
  in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"Print the full execution") in
  let max_rounds =
    Arg.(value & opt int 500_000 & info [ "max-rounds" ] ~docv:"R" ~doc:"Round budget")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the metrics as a single JSON object")
  in
  let run protocol (_, channel) n pace trace seed max_rounds json =
    let result =
      Nfc_sim.Harness.run protocol
        {
          Nfc_sim.Harness.default_config with
          policy_tr = channel ();
          policy_rt = channel ();
          n_messages = n;
          submit_every = pace;
          seed;
          record_trace = trace;
          max_rounds;
          stall_rounds = Some 100_000;
        }
    in
    (match result.Nfc_sim.Harness.trace with
    | Some t when trace && not json ->
        List.iteri (fun i a -> Format.printf "%4d. %a@." i Nfc_automata.Action.pp a) t
    | _ -> ());
    if json then print_endline (Nfc_sim.Metrics.to_json result.Nfc_sim.Harness.metrics)
    else Format.printf "%a@." Nfc_sim.Metrics.pp result.Nfc_sim.Harness.metrics;
    if result.Nfc_sim.Harness.metrics.Nfc_sim.Metrics.dl_violation <> None then exit 2
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one protocol over one channel and report the metrics")
    Term.(
      const run $ with_spec protocol $ channel $ n $ pace $ trace $ seed_arg
      $ max_rounds $ json)

(* --------------------------------------------------------------- mcheck *)

let mcheck_cmd =
  let protocol =
    Arg.(
      value
      & opt protocol_conv (Nfc_protocol.Alternating_bit.make ~timeout:2 ())
      & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:protocol_doc)
  in
  let capacity =
    Arg.(value & opt int 2 & info [ "capacity" ] ~docv:"C" ~doc:"Channel capacity per direction")
  in
  let submits =
    Arg.(value & opt int 3 & info [ "submits" ] ~docv:"S" ~doc:"User submission budget")
  in
  let nodes =
    Arg.(value & opt int 200_000 & info [ "nodes" ] ~docv:"N" ~doc:"Configuration budget")
  in
  let no_drop = Arg.(value & flag & info [ "no-drop" ] ~doc:"Forbid packet loss (pure reordering)") in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write the counterexample execution to FILE")
  in
  let wedge =
    Arg.(
      value & flag
      & info [ "wedge" ]
          ~doc:"Search for a liveness wedge (no continuation delivers) instead of a phantom")
  in
  let run protocol capacity submits nodes no_drop save wedge engine_domains por =
    let bounds =
      {
        Nfc_mcheck.Explore.capacity_tr = capacity;
        capacity_rt = capacity;
        submit_budget = submits;
        max_nodes = nodes;
        allow_drop = not no_drop;
        por;
      }
    in
    let domains = resolve_domains engine_domains in
    if wedge then begin
      let o = Nfc_mcheck.Explore.find_wedge protocol bounds in
      Format.printf "%a@." Nfc_mcheck.Explore.pp_wedge_outcome o;
      match (o, save) with
      | Nfc_mcheck.Explore.Wedged (trace, _), Some file ->
          Nfc_sim.Trace_io.save file trace;
          Format.printf "wedge witness written to %s@." file;
          exit 2
      | Nfc_mcheck.Explore.Wedged _, None -> exit 2
      | Nfc_mcheck.Explore.No_wedge _, _ -> exit 0
    end;
    let outcome = Nfc_mcheck.Explore.find_phantom ~domains protocol bounds in
    Format.printf "%a@." Nfc_mcheck.Explore.pp_outcome outcome;
    match outcome with
    | Nfc_mcheck.Explore.Violation trace ->
        (match save with
        | Some file ->
            Nfc_sim.Trace_io.save file trace;
            Format.printf "counterexample written to %s@." file
        | None -> ());
        exit 2
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "mcheck"
       ~doc:"Model-check a protocol over an adversarial non-FIFO channel (DL1 search)")
    Term.(
      const run $ with_spec protocol $ capacity $ submits $ nodes $ no_drop $ save
      $ wedge $ engine_domains_arg $ por_arg)

(* ----------------------------------------------------------------- stab *)

let stab_cmd =
  let protocol =
    Arg.(
      value
      & opt protocol_conv (Nfc_protocol.Stab_arq.make ())
      & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:protocol_doc)
  in
  let capacity =
    Arg.(value & opt int 1 & info [ "capacity" ] ~docv:"C" ~doc:"Channel capacity per direction")
  in
  let submits =
    Arg.(value & opt int 2 & info [ "submits" ] ~docv:"S" ~doc:"User submission budget")
  in
  let nodes =
    Arg.(
      value & opt int 100_000
      & info [ "nodes" ] ~docv:"N" ~doc:"Legitimate-set configuration budget")
  in
  let recovery_nodes =
    Arg.(
      value & opt int 300_000
      & info [ "recovery-nodes" ] ~docv:"N"
          ~doc:"Configuration budget for each corrupted-start recovery sweep")
  in
  let starts =
    Arg.(
      value & opt int 60_000
      & info [ "starts" ] ~docv:"N" ~doc:"Clamp on enumerated corrupted starts")
  in
  let states =
    Arg.(
      value & opt int 48
      & info [ "states" ] ~docv:"N"
          ~doc:"Per-side clamp on station states entering corrupted products")
  in
  let no_drop = Arg.(value & flag & info [ "no-drop" ] ~doc:"Forbid packet loss (pure reordering)") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable report") in
  let run protocol capacity submits nodes recovery_nodes starts states no_drop json
      engine_domains =
    let cfg =
      {
        Nfc_stab.Converge.bounds =
          {
            Nfc_mcheck.Explore.capacity_tr = capacity;
            capacity_rt = capacity;
            submit_budget = submits;
            max_nodes = nodes;
            allow_drop = not no_drop;
            por = false;
          };
        state_cap = states;
        max_starts = starts;
        recovery_nodes;
      }
    in
    let report =
      Nfc_stab.Converge.analyze ~domains:(resolve_domains engine_domains) protocol cfg
    in
    if json then print_endline (Nfc_util.Json.to_string (Nfc_stab.Converge.to_json report))
    else Format.printf "%a@." Nfc_stab.Converge.pp report;
    let worst =
      match (report.Nfc_stab.Converge.ss1, report.Nfc_stab.Converge.ss2) with
      | Nfc_stab.Converge.Fail, _ | _, Nfc_stab.Converge.Fail -> 2
      | Nfc_stab.Converge.Unknown, _ | _, Nfc_stab.Converge.Unknown -> 3
      | Nfc_stab.Converge.Pass, Nfc_stab.Converge.Pass -> 0
    in
    if worst <> 0 then exit worst
  in
  Cmd.v
    (Cmd.info "stab"
       ~doc:
         "Self-stabilization analysis: legitimate set, corrupted-start convergence (SS1) and \
          duplication resilience (SS2). Exit 0 = both pass, 2 = a failure, 3 = undetermined \
          within budget.")
    Term.(
      const run $ with_spec protocol $ capacity $ submits $ nodes $ recovery_nodes $ starts
      $ states $ no_drop $ json $ engine_domains_arg)

(* ------------------------------------------------------------ boundness *)

let boundness_cmd =
  let protocol =
    Arg.(
      value
      & opt protocol_conv (Nfc_protocol.Alternating_bit.make ~timeout:2 ())
      & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:protocol_doc)
  in
  let nodes =
    Arg.(value & opt int 30_000 & info [ "nodes" ] ~docv:"N" ~doc:"Configuration budget")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the report as a single JSON object")
  in
  let run protocol nodes jobs engine_domains por json =
    let report =
      Nfc_mcheck.Boundness.measure ~jobs ~domains:(resolve_domains engine_domains)
        protocol
        ~explore:
          {
            Nfc_mcheck.Explore.capacity_tr = 2;
            capacity_rt = 2;
            submit_budget = 2;
            max_nodes = nodes;
            allow_drop = true;
            por;
          }
        ~probe:Nfc_mcheck.Boundness.default_probe_bounds
    in
    if json then
      print_endline (Nfc_util.Json.to_string (Nfc_mcheck.Boundness.to_json report))
    else Format.printf "%a@." Nfc_mcheck.Boundness.pp_report report
  in
  Cmd.v
    (Cmd.info "boundness"
       ~doc:"Measure a protocol's boundness against Theorem 2.1's k_t*k_r state product")
    Term.(
      const run $ with_spec protocol $ nodes $ jobs_arg $ engine_domains_arg $ por_arg
      $ json)

(* ------------------------------------------------------------- theorems *)

let theorems_cmd =
  let which =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Optional theorem id substring")
  in
  let run which =
    match which with
    | None -> Format.printf "%a@." Nfc_core.Theory.pp_all ()
    | Some needle -> (
        let contains hay =
          let lh = String.lowercase_ascii hay and ln = String.lowercase_ascii needle in
          let nh = String.length lh and nn = String.length ln in
          let rec go i = i + nn <= nh && (String.sub lh i nn = ln || go (i + 1)) in
          go 0
        in
        match List.filter (fun t -> contains t.Nfc_core.Theory.id) Nfc_core.Theory.all with
        | [] ->
            Format.eprintf "no theorem matches %S@." needle;
            exit 1
        | ts -> List.iter (fun t -> Format.printf "%a@.@." Nfc_core.Theory.pp t) ts)
  in
  Cmd.v
    (Cmd.info "theorems"
       ~doc:"Print the paper's results with their executable reproductions")
    Term.(const run $ which)

(* --------------------------------------------------------------- replay *)

let replay_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Trace file") in
  let protocol =
    Arg.(
      value
      & opt (some protocol_conv) None
      & info [ "p"; "protocol" ] ~docv:"PROTO"
          ~doc:"Also check the execution conforms to this protocol's transitions")
  in
  let run file protocol =
    match Nfc_sim.Trace_io.load file with
    | Error msg ->
        Format.eprintf "cannot load %s: %s@." file msg;
        exit 1
    | Ok trace ->
        print_string (Nfc_sim.Trace_io.judge trace);
        (match protocol with
        | Some proto ->
            Format.printf "conformance (%s): %a@." (Nfc_protocol.Spec.name proto)
              Nfc_sim.Conformance.pp_verdict
              (Nfc_sim.Conformance.check proto trace)
        | None -> ());
        if Nfc_automata.Props.invalid_phantom trace <> None then exit 2
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-judge a stored execution against DL1/DL2/PL1 and the Definition-2 counters")
    Term.(const run $ file $ with_spec_opt protocol)

(* ----------------------------------------------------------------- fuzz *)

let fuzz_cmd =
  let open Nfc_fuzz in
  let protocol =
    Arg.(
      value
      & opt (some protocol_conv) None
      & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:protocol_doc)
  in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Fuzz every protocol in the registry")
  in
  let iterations =
    Arg.(
      value & opt int 50_000
      & info [ "iterations" ] ~docv:"N" ~doc:"Run budget (deterministic under --seed)")
  in
  let budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:"Optional CPU-time cap; ends the campaign early (non-deterministic)")
  in
  let steps =
    Arg.(value & opt int 80 & info [ "steps" ] ~docv:"K" ~doc:"Generated schedule length")
  in
  let submits =
    Arg.(value & opt int 4 & info [ "submits" ] ~docv:"S" ~doc:"Submission budget per schedule")
  in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ] ~doc:"Delta-debug the finding to a minimal schedule")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-trace" ] ~docv:"FILE"
          ~doc:"Write the counterexample execution to FILE (replay with: nfc replay FILE)")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object per protocol (JSONL)")
  in
  let batches =
    Arg.(
      value
      & opt (some int) None
      & info [ "batches" ] ~docv:"B"
          ~doc:
            "Split the run budget across B independent RNG streams (derived from --seed \
             by index).  Results depend only on (seed, batches), never on --jobs.  \
             Default: 1, or max(8, jobs) when --jobs parallelises a single-protocol \
             campaign.")
  in
  let run protocol all iterations budget steps submits shrink save json seed jobs batches =
    let batches =
      match batches with
      | Some b -> b
      | None ->
          if jobs = 1 || all then 1
          else max 8 (if jobs = 0 then Nfc_util.Pool.recommended () else jobs)
    in
    let cfg =
      {
        Campaign.default_cfg with
        iterations;
        time_budget = budget;
        seed;
        shrink;
        batches;
        gen = { Gen.default_cfg with steps; submits };
      }
    in
    let log = if json then fun _ -> () else fun msg -> Format.eprintf "%s@." msg in
    let results =
      if all then Campaign.run_all ~log ~jobs cfg
      else
        let proto =
          match protocol with Some p -> p | None -> Nfc_protocol.Alternating_bit.make ()
        in
        [ Campaign.run ~log ~jobs proto cfg ]
    in
    if json then print_string (Campaign.jsonl results)
    else begin
      List.iter (fun r -> Format.printf "%a@." Campaign.pp_result r) results;
      match results with
      | [ { Campaign.finding = Some f; _ } ] ->
          let sched = Option.value f.Campaign.shrunk ~default:f.Campaign.schedule in
          Format.printf "@.violating schedule (%d steps):@.%a@." (Schedule.length sched)
            Schedule.pp sched;
          Format.printf "@.execution (%d actions):@." (List.length f.Campaign.trace);
          List.iteri
            (fun i a -> Format.printf "  %2d. %a@." i Nfc_automata.Action.pp a)
            f.Campaign.trace
      | _ -> ()
    end;
    (match save with
    | None -> ()
    | Some file -> (
        match
          List.find_map (fun r -> r.Campaign.finding) results
        with
        | Some f ->
            Nfc_sim.Trace_io.save file f.Campaign.trace;
            if not json then Format.printf "@.counterexample written to %s@." file
        | None -> Format.eprintf "no violation found; nothing written to %s@." file));
    if List.exists (fun r -> r.Campaign.finding <> None) results then exit 2
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Coverage-guided adversarial schedule fuzzing (DL violation search with \
          trace shrinking)")
    Term.(
      const run $ with_spec_opt protocol $ all $ iterations $ budget $ steps $ submits
      $ shrink $ save $ json $ seed_arg $ jobs_arg $ batches)

(* ----------------------------------------------------------------- lint *)

let lint_cmd =
  let open Nfc_lint in
  let protocol =
    Arg.(
      value
      & opt (some protocol_conv) None
      & info [ "p"; "protocol" ] ~docv:"PROTO"
          ~doc:(protocol_doc ^ " (default: the whole registry)"))
  in
  let capacity =
    Arg.(value & opt int 2 & info [ "capacity" ] ~docv:"C" ~doc:"Channel capacity per direction")
  in
  let submits =
    Arg.(value & opt int 3 & info [ "submits" ] ~docv:"S" ~doc:"User submission budget")
  in
  let nodes =
    Arg.(
      value & opt int 100_000
      & info [ "nodes" ] ~docv:"N"
          ~doc:
            "Configuration budget per protocol (the hashed engine covers the default \
             100k in about the time the tree engine needed for 15k)")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Treat warnings as findings (exit 1)")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object per protocol (JSONL)")
  in
  let complete =
    Arg.(
      value & flag
      & info [ "complete" ]
          ~doc:
            "Also run the budget-free coverability tier (Karp-Miller ω-acceleration over \
             the lossy channel): converged covers upgrade corroborated H1/T1/Q1 verdicts \
             to 'complete' strength, valid for every node budget and channel capacity")
  in
  let cover_nodes =
    Arg.(
      value & opt int 200_000
      & info [ "cover-nodes" ] ~docv:"N"
          ~doc:"Divergence backstop for the --complete cover fixpoint")
  in
  let sarif =
    Arg.(
      value
      & opt (some string) None
      & info [ "sarif" ] ~docv:"FILE"
          ~doc:"Also write the diagnostics to FILE as SARIF 2.1.0 (JSONL is unchanged)")
  in
  (* lint keeps its own --spec instead of the shared [with_spec_opt]
     sugar: --static needs the checked PDL automaton, which the generic
     combinator discards when it converts down to a [Spec.t]. *)
  let spec_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:
            "Compile FILE as a protocol definition (.nfc) and verify that instead of a \
             registry protocol.  Overrides $(b,-p); equivalent to -p file:FILE.")
  in
  let static =
    Arg.(
      value & flag
      & info [ "static" ]
          ~doc:
            "Also run the spec-level abstract interpreter over the PDL automaton \
             (requires $(b,--spec)): verdicts it discharges symbolically (H1/B1/E1) and \
             that agree with the exploration are upgraded to 'static' strength — valid \
             for every node budget, channel capacity and submission budget, with zero \
             exploration.  A static/bounded contradiction blocks the upgrade and is \
             reported under rule A1.")
  in
  let stab =
    Arg.(
      value & flag
      & info [ "stab" ]
          ~doc:
            "Also run the self-stabilization tier (rules SS1/SS2): legitimate-set \
             closure, corrupted-start convergence and duplication resilience, at the \
             tier's own bounds (the $(b,nfc stab) defaults — the corrupted product is \
             exponential in capacity, so the tier does not inherit the lint bounds). \
             Verdicts land as diagnostics and as 'stabilization' certificate \
             provenance.")
  in
  let refine =
    Arg.(
      value & opt int 0
      & info [ "refine" ] ~docv:"N"
          ~doc:
            "Run up to N counterexample-guided refinement rounds when the static tier's \
             Theorem 2.1 product is ω-parametric (implies $(b,--static); requires \
             $(b,--spec)): abstract widening witnesses are replayed concretely on the \
             compiled automaton, spurious ones split the offending slot's interval at \
             the guard constant and re-run the fixpoint, real ones become located R1 \
             findings with a concrete trace.  Exhausting N degrades to the unrefined \
             answer — refinement never weakens soundness.")
  in
  let run spec_path protocol capacity submits nodes strict json complete cover_nodes
      sarif static stab refine jobs engine_domains por =
    let static = static || refine > 0 in
    let compiled =
      match spec_path with
      | None -> None
      | Some path -> (
          match Nfc_pdl.Pdl.load_file path with
          | Ok c -> Some c
          | Error msg ->
              Format.eprintf "lint: %s@." msg;
              exit 2)
    in
    let protocol =
      match compiled with
      | Some c -> Some c.Nfc_pdl.Pdl.spec
      | None -> protocol
    in
    (match (static, compiled) with
    | true, None ->
        Format.eprintf
          "lint: --static needs the PDL automaton; pass the spec with --spec FILE@.";
        exit 2
    | _ -> ());
    let cfg =
      {
        Checks.default_config with
        Checks.bounds =
          {
            Nfc_mcheck.Explore.capacity_tr = capacity;
            capacity_rt = capacity;
            submit_budget = submits;
            max_nodes = nodes;
            allow_drop = true;
            por;
          };
        complete;
        cover_max_nodes = cover_nodes;
        engine_domains = resolve_domains engine_domains;
      }
    in
    match
      match protocol with
      | Some p -> [ Engine.run cfg p ]
      | None -> Engine.run_registry ~jobs cfg
    with
    | results ->
        let results =
          match (static, compiled) with
          | true, Some c when refine > 0 ->
              let res = Nfc_refine.Refine.run ~rounds:refine c.Nfc_pdl.Pdl.checked in
              List.map
                (Nfc_specint.Specint.apply_to_lint
                   ~refine_rounds:res.Nfc_refine.Refine.rounds_used
                   ~refine_notes:(Nfc_refine.Refine.notes res)
                   res.Nfc_refine.Refine.report)
                results
          | true, Some c ->
              let rep = Nfc_specint.Specint.analyze c.Nfc_pdl.Pdl.checked in
              List.map (Nfc_specint.Specint.apply_to_lint rep) results
          | _ -> results
        in
        let results =
          if not stab then results
          else begin
            (* Pair each result with its spec: a single -p/--spec run is
               its own pair; a registry sweep zips with the registry,
               whose order run_registry preserves. *)
            let specs =
              match protocol with
              | Some p -> [ p ]
              | None -> Nfc_protocol.Registry.defaults ()
            in
            List.map2
              (fun spec r ->
                Stab_tier.apply ~domains:(resolve_domains engine_domains) spec r)
              specs results
          end
        in
        if json then print_string (Report.jsonl results) else Report.print results;
        (match sarif with
        | Some file ->
            let oc = open_out file in
            output_string oc (Sarif.to_string results);
            output_char oc '\n';
            close_out oc;
            if not json then Format.printf "SARIF report written to %s@." file
        | None -> ());
        exit (Report.exit_code ~strict results)
    | exception e ->
        Format.eprintf "lint: internal error: %s@." (Printexc.to_string e);
        exit 2
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         ("Statically verify protocol invariants (rules " ^ Nfc_lint.Rules.doc
        ^ "): header budgets, input-enabledness, Theorem 2.1 boundness certificates"))
    Term.(
      const run $ spec_path $ protocol $ capacity $ submits $ nodes $ strict $ json
      $ complete $ cover_nodes $ sarif $ static $ stab $ refine $ jobs_arg
      $ engine_domains_arg $ por_arg)

(* ---------------------------------------------------------------- cover *)

let cover_cmd =
  let protocol =
    Arg.(
      value
      & opt protocol_conv (Nfc_protocol.Alternating_bit.make ~timeout:2 ())
      & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:protocol_doc)
  in
  let positional =
    Arg.(
      value
      & pos 0 (some protocol_conv) None
      & info [] ~docv:"PROTO" ~doc:"Protocol (positional alternative to -p)")
  in
  let submits =
    Arg.(value & opt int 3 & info [ "submits" ] ~docv:"S" ~doc:"User submission budget")
  in
  let nodes =
    Arg.(
      value & opt int 200_000
      & info [ "nodes" ] ~docv:"N" ~doc:"Karp-Miller tree cap (divergence backstop)")
  in
  let run protocol positional submits nodes =
    let protocol = Option.value positional ~default:protocol in
    let module P = (val protocol : Nfc_protocol.Spec.S) in
    let module E = Nfc_mcheck.Explore.Make (P) in
    let module C = Nfc_absint.Cover.Make (P) (E) in
    let stats = C.run ~max_nodes:nodes ~submit_budget:submits () in
    Format.printf "== %s (submit budget %d) ==@.%a@." P.name submits
      Nfc_absint.Cover.pp_stats stats;
    List.iter
      (fun s -> Format.printf "  acceleration: %s@." s)
      stats.Nfc_absint.Cover.accel_samples;
    exit (if stats.Nfc_absint.Cover.converged then 0 else 1)
  in
  Cmd.v
    (Cmd.info "cover"
       ~doc:
         "Compute the Karp-Miller cover set of a protocol over the ω-abstracted non-FIFO \
          channel (budget-free coverability; exit 1 when the fixpoint diverges)")
    Term.(const run $ with_spec protocol $ positional $ submits $ nodes)

(* ----------------------------------------------------------- experiment *)

(* The single source of truth for experiment names: parsing, the usage
   text, and dispatch are all derived from this table. *)
let experiments : (string * string * (quick:bool -> seed:int -> unit)) list =
  [
    ( "t21",
      "Theorem 2.1 boundness table",
      fun ~quick ~seed:_ -> ignore (Nfc_core.Experiments.t21 ~quick ()) );
    ( "t31",
      "Theorem 3.1 header pyramid, blow-up, and staged runs",
      fun ~quick ~seed:_ ->
        ignore (Nfc_core.Experiments.t31_pyramid ~ks:[ 2; 3; 4; 5 ] ());
        print_newline ();
        ignore (Nfc_core.Experiments.t31 ~quick ());
        print_newline ();
        ignore (Nfc_core.Experiments.t31_staged ~quick ()) );
    ( "t41",
      "Theorem 4.1 delayed-packet cost",
      fun ~quick ~seed:_ -> ignore (Nfc_core.Experiments.t41 ~quick ()) );
    ( "t51",
      "Section 5 probabilistic growth, sweep, and safety",
      fun ~quick ~seed ->
        ignore (Nfc_core.Experiments.t51_growth ~quick ~seed ~qs:[ 0.1; 0.3; 0.5 ] ());
        print_newline ();
        ignore (Nfc_core.Experiments.t51_sweep ~quick ~seed ~q:0.3 ());
        print_newline ();
        ignore (Nfc_core.Experiments.t51_safety ~quick ~seed ~q:0.6 ()) );
    ( "lmf",
      "Last-message-first channel comparison",
      fun ~quick ~seed:_ -> ignore (Nfc_core.Experiments.lmf ~quick ()) );
    ( "ss",
      "Self-stabilization: corrupted-start convergence (SS1/SS2)",
      fun ~quick ~seed:_ -> ignore (Nfc_core.Experiments.ss ~quick ()) );
    ( "trans",
      "Transport-stack experiment",
      fun ~quick ~seed -> ignore (Nfc_transport.Experiment.run ~quick ~seed ()) );
    ( "f1",
      "Figure 1 channel taxonomy",
      fun ~quick:_ ~seed:_ -> print_endline (Nfc_core.Experiments.figure_1 ()) );
    ( "all",
      "Every experiment in sequence",
      fun ~quick ~seed -> ignore (Nfc_core.Experiments.run_all ~quick ~seed ()) );
  ]

let experiment_cmd =
  let names = List.map (fun (n, _, _) -> n) experiments in
  let which =
    let parse s =
      if List.exists (fun (n, _, _) -> n = s) experiments then Ok s
      else
        Error
          (`Msg
             (Printf.sprintf "unknown experiment %S (%s)" s (String.concat "|" names)))
    in
    Arg.(
      required
      & pos 0 (some (Arg.conv (parse, Format.pp_print_string))) None
      & info [] ~docv:"EXP"
          ~doc:
            ("Which experiment: "
            ^ String.concat ", "
                (List.map (fun (n, d, _) -> Printf.sprintf "%s (%s)" n d) experiments)))
  in
  let run which quick seed =
    let _, _, go = List.find (fun (n, _, _) -> n = which) experiments in
    go ~quick ~seed
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate the paper's evaluation (DESIGN.md section 4)")
    Term.(const run $ which $ quick_arg $ seed_arg)

(* ---------------------------------------------------------------- serve *)

let serve_cmd =
  let host =
    Arg.(
      value
      & opt string Nfc_serve.Server.default_cfg.Nfc_serve.Server.host
      & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind")
  in
  let port =
    Arg.(
      value
      & opt int Nfc_serve.Server.default_cfg.Nfc_serve.Server.port
      & info [ "port" ] ~docv:"PORT" ~doc:"Port to bind (0 = ephemeral)")
  in
  let queue_depth =
    Arg.(
      value
      & opt int Nfc_serve.Server.default_cfg.Nfc_serve.Server.queue_depth
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Admission queue capacity; a full queue answers 429 + Retry-After")
  in
  let result_ttl =
    Arg.(
      value
      & opt float Nfc_serve.Server.default_cfg.Nfc_serve.Server.result_ttl
      & info [ "result-ttl" ] ~docv:"SECONDS"
          ~doc:"How long terminal jobs stay pollable before eviction")
  in
  let run host port jobs queue_depth result_ttl =
    Nfc_serve.Server.run_forever
      { Nfc_serve.Server.host; port; jobs; queue_depth; result_ttl }
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the verification service: POST /v1/{lint,simulate,fuzz,boundness,cover} \
          submit jobs, GET /v1/jobs/ID polls them, GET /metrics is Prometheus")
    Term.(const run $ host $ port $ jobs_arg $ queue_depth $ result_ttl)

(* -------------------------------------------------------------- loadgen *)

let loadgen_cmd =
  let open Nfc_serve in
  let host =
    Arg.(
      value
      & opt string Loadgen.default_cfg.Loadgen.host
      & info [ "host" ] ~docv:"HOST" ~doc:"Service address")
  in
  let port =
    Arg.(
      value
      & opt int Loadgen.default_cfg.Loadgen.port
      & info [ "port" ] ~docv:"PORT" ~doc:"Service port")
  in
  let requests =
    Arg.(
      value
      & opt int Loadgen.default_cfg.Loadgen.requests
      & info [ "n"; "requests" ] ~docv:"N" ~doc:"Total requests to issue")
  in
  let concurrency =
    Arg.(
      value
      & opt int Loadgen.default_cfg.Loadgen.concurrency
      & info [ "concurrency" ] ~docv:"C"
          ~doc:"Client threads = sessions in flight at once")
  in
  let endpoint =
    Arg.(
      value
      & opt string Loadgen.default_cfg.Loadgen.endpoint
      & info [ "endpoint" ] ~docv:"NAME" ~doc:"Endpoint: lint | simulate | fuzz | boundness | cover")
  in
  let body =
    Arg.(
      value
      & opt string Loadgen.default_cfg.Loadgen.body
      & info [ "body" ] ~docv:"JSON" ~doc:"Request body")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the stats as a single JSON object")
  in
  let run host port requests concurrency endpoint body json =
    let stats =
      Loadgen.run
        ~log:(fun msg -> Format.eprintf "%s@." msg)
        { Loadgen.default_cfg with Loadgen.host; port; requests; concurrency; endpoint; body }
    in
    if json then print_endline (Nfc_util.Json.to_string (Loadgen.json stats))
    else Format.printf "%a@." Loadgen.pp stats;
    if not (Loadgen.check stats) then exit 2
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a running nfc serve with N concurrent job submissions and report \
          throughput and latency percentiles (exit 2 if any request was dropped)")
    Term.(const run $ host $ port $ requests $ concurrency $ endpoint $ body $ json)

(* ------------------------------------------------------------------ pdl *)

let pdl_cmd =
  (* [pos_all string], not [pos_all file]: a missing file must become a
     per-file error in the report (after the other files were still
     checked), not a cmdliner usage abort before any file is looked at. *)
  let files =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Protocol definition files (.nfc) to compile and check")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object per file (JSONL)")
  in
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:
            "Also run the spec-level abstract interpreter on each compiling file and \
             report its symbolic verdicts (reachable packet alphabet, Theorem 2.1 state \
             product, dead clauses with source spans) — no exploration, no budgets")
  in
  let sarif =
    Arg.(
      value
      & opt (some string) None
      & info [ "sarif" ] ~docv:"FILE"
          ~doc:
            "Also write the checker diagnostics (rule P1) and, under $(b,--analyze), the \
             static findings to FILE as SARIF 2.1.0 with source-file locations")
  in
  let refine =
    Arg.(
      value & opt int 0
      & info [ "refine" ] ~docv:"N"
          ~doc:
            "Run up to N counterexample-guided refinement rounds on each compiling file \
             (implies $(b,--analyze)): ω-parametric products are refined by splitting \
             widened slots at guard constants, with spurious/real witnesses decided by \
             a concrete replay; the reported findings include any located R1 \
             refutations and the JSON carries the per-round log")
  in
  let run files json analyze refine sarif =
    let analyze = analyze || refine > 0 in
    let worst = ref 0 in
    let count sev = worst := max !worst (match sev with Nfc_pdl.Diag.Error -> 2 | Nfc_pdl.Diag.Warning -> 1) in
    let entries = ref [] in
    List.iter
      (fun file ->
        (* The refined report doubles as the static report so SARIF and
           JSON carry the located R1 findings like any other finding. *)
        let static_report ck =
          if not analyze then (None, None)
          else if refine > 0 then
            let res = Nfc_refine.Refine.run ~rounds:refine ck in
            (Some res.Nfc_refine.Refine.report, Some res)
          else (Some (Nfc_specint.Specint.analyze ck), None)
        in
        let report ~ok ~name ~digest ~static:(static, refined) diags =
          List.iter (fun (d : Nfc_pdl.Diag.t) -> count d.Nfc_pdl.Diag.severity) diags;
          entries :=
            { Nfc_specint.Sarif.path = file; diags; static_report = static } :: !entries;
          if json then
            print_endline
              (Nfc_util.Json.to_string
                 (Nfc_util.Json.Obj
                    ([ ("file", Nfc_util.Json.String file); ("ok", Nfc_util.Json.Bool ok) ]
                    @ (match name with
                      | Some n -> [ ("protocol", Nfc_util.Json.String n) ]
                      | None -> [])
                    @ (match digest with
                      | Some d -> [ ("digest", Nfc_util.Json.String d) ]
                      | None -> [])
                    @ [ ("diagnostics", Nfc_pdl.Pdl.diags_to_json diags) ]
                    @ (match static with
                      | Some rep -> [ ("static", Nfc_specint.Specint.to_json rep) ]
                      | None -> [])
                    @
                    match refined with
                    | Some res -> [ ("refine", Nfc_refine.Refine.to_json res) ]
                    | None -> [])))
          else begin
            List.iter
              (fun d -> print_endline (Nfc_pdl.Diag.to_string ~file d))
              diags;
            if ok && diags = [] then
              Format.printf "%s: ok (%s)@." file
                (match name with Some n -> n | None -> "?");
            (match static with
            | Some rep -> Format.printf "%a" (Nfc_specint.Specint.pp ~file) rep
            | None -> ());
            match refined with
            | Some res -> Format.printf "%a" Nfc_refine.Refine.pp res
            | None -> ()
          end
        in
        match Nfc_pdl.Pdl.compile_file file with
        | Ok c ->
            report ~ok:true
              ~name:(Some (Nfc_protocol.Spec.name c.Nfc_pdl.Pdl.spec))
              ~digest:(Some c.Nfc_pdl.Pdl.digest)
              ~static:(static_report c.Nfc_pdl.Pdl.checked)
              c.Nfc_pdl.Pdl.warnings
        | Error (`Diags ds) -> report ~ok:false ~name:None ~digest:None ~static:(None, None) ds
        | Error (`File msg) ->
            (* Unreadable file: a synthetic whole-file error so the JSON,
               SARIF and exit-code paths treat it like any other error. *)
            let pos = { Nfc_pdl.Diag.line = 1; col = 1 } in
            let d =
              Nfc_pdl.Diag.error { Nfc_pdl.Diag.first = pos; last = pos } msg
            in
            report ~ok:false ~name:None ~digest:None ~static:(None, None) [ d ])
      files;
    (match sarif with
    | Some out ->
        let oc = open_out out in
        output_string oc (Nfc_specint.Sarif.to_string (List.rev !entries));
        output_char oc '\n';
        close_out oc;
        if not json then Format.printf "SARIF report written to %s@." out
    | None -> ());
    (* Exit with the worst severity seen across ALL files: 0 clean,
       1 warnings only, 2 errors — CI keeps the example specs pristine
       and scripts can distinguish broken from merely suspicious. *)
    exit !worst
  in
  Cmd.v
    (Cmd.info "pdl"
       ~doc:
         "Compile and statically check protocol definition files; every file is checked, \
          and the exit code is the maximum severity (0 clean, 1 warnings, 2 errors)")
    Term.(const run $ files $ json $ analyze $ refine $ sarif)

(* ----------------------------------------------------------------- main *)

let () =
  Nfc_pdl.Pdl.install_loader ();
  let doc = "Lower bounds for bounded data link protocols over non-FIFO channels (PODC'89), executable" in
  let info = Cmd.info "nfc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            protocols_cmd;
            figure1_cmd;
            simulate_cmd;
            mcheck_cmd;
            stab_cmd;
            fuzz_cmd;
            lint_cmd;
            cover_cmd;
            pdl_cmd;
            boundness_cmd;
            theorems_cmd;
            replay_cmd;
            serve_cmd;
            loadgen_cmd;
            experiment_cmd;
          ]))
