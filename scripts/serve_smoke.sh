#!/bin/sh
# End-to-end smoke of `nfc serve` against the real binary: boot on an
# ephemeral port, submit jobs over HTTP, compare the served lint verdict
# byte-for-byte with the CLI's, exercise the 429 backpressure path, check
# /metrics exposes the queue and latency series, and finish with a
# loadgen storm (exit 2 there means a dropped request).
set -eu

NFC=${NFC:-_build/default/bin/nfc.exe}
out=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$out"
}
trap cleanup EXIT

"$NFC" serve --port 0 --jobs 2 --queue-depth 2 >"$out/serve.log" 2>&1 &
pid=$!

# Wait for the bound-port announcement (port 0 = ephemeral).
port=""
i=0
while [ $i -lt 100 ]; do
  port=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$out/serve.log" | head -1)
  [ -n "$port" ] && break
  sleep 0.1
  i=$((i + 1))
done
if [ -z "$port" ]; then
  echo "serve-smoke: server did not come up"
  cat "$out/serve.log"
  exit 1
fi
base="http://127.0.0.1:$port"

curl -fsS "$base/healthz" >/dev/null

# Submit a lint job and poll it to a terminal state.
id=$(curl -fsS -X POST "$base/v1/lint" \
  -d '{"protocol":"stop-and-wait","nodes":20000}' |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
if [ -z "$id" ]; then
  echo "serve-smoke: submit returned no job id"
  exit 1
fi
state=""
i=0
while [ $i -lt 300 ]; do
  state=$(curl -fsS "$base/v1/jobs/$id" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
  case "$state" in done | failed | cancelled) break ;; esac
  sleep 0.1
  i=$((i + 1))
done
if [ "$state" != done ]; then
  echo "serve-smoke: lint job ended '$state'"
  exit 1
fi

# Byte-identity: the served result document is exactly the CLI's JSONL line.
curl -fsS "$base/v1/jobs/$id/result" >"$out/served.json"
"$NFC" lint -p stop-and-wait --nodes 20000 --json >"$out/cli.json" || true
if ! cmp -s "$out/served.json" "$out/cli.json"; then
  echo "serve-smoke: served lint verdict differs from CLI output"
  diff "$out/served.json" "$out/cli.json" || true
  exit 1
fi

# User-submitted protocol: POST the PDL spec source, lint through the
# returned content-digest handle, and compare byte-for-byte with the CLI
# compiling the same file via --spec.
handle=$(curl -fsS -X POST "$base/v1/protocols" \
  --data-binary @examples/specs/stop_and_wait.nfc |
  sed -n 's/.*"handle":"\([^"]*\)".*/\1/p')
if [ -z "$handle" ]; then
  echo "serve-smoke: protocol submission returned no handle"
  exit 1
fi
pid_id=$(curl -fsS -X POST "$base/v1/lint" \
  -d "{\"protocol\":\"$handle\",\"nodes\":20000}" |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
state=""
i=0
while [ $i -lt 300 ]; do
  state=$(curl -fsS "$base/v1/jobs/$pid_id" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
  case "$state" in done | failed | cancelled) break ;; esac
  sleep 0.1
  i=$((i + 1))
done
if [ "$state" != done ]; then
  echo "serve-smoke: pdl lint job ended '$state'"
  exit 1
fi
curl -fsS "$base/v1/jobs/$pid_id/result" >"$out/served-pdl.json"
"$NFC" lint --spec examples/specs/stop_and_wait.nfc --nodes 20000 --json >"$out/cli-pdl.json" || true
if ! cmp -s "$out/served-pdl.json" "$out/cli-pdl.json"; then
  echo "serve-smoke: served pdl lint verdict differs from CLI --spec output"
  diff "$out/served-pdl.json" "$out/cli-pdl.json" || true
  exit 1
fi

# Backpressure: flood the depth-2 queue with slow fuzz jobs; expect at
# least one 429 and nothing but 202/429 at admission.
i=1
: >"$out/codes"
while [ $i -le 12 ]; do
  curl -s -o /dev/null -w '%{http_code}\n' -X POST "$base/v1/fuzz" \
    -d "{\"protocol\":\"altbit\",\"iterations\":20000,\"seed\":$i}" >>"$out/codes"
  i=$((i + 1))
done
if ! grep -q '^429$' "$out/codes"; then
  echo "serve-smoke: queue overflow never answered 429"
  exit 1
fi
if grep -Evq '^(202|429)$' "$out/codes"; then
  echo "serve-smoke: unexpected submit status:"
  cat "$out/codes"
  exit 1
fi

# Metrics must expose the queue gauges, rejection counter and latency
# histogram.
curl -fsS "$base/metrics" >"$out/metrics"
for series in nfc_queue_depth nfc_queue_capacity nfc_jobs_rejected_total \
  nfc_http_request_seconds_bucket nfc_job_run_seconds \
  nfc_protocol_submissions_total nfc_protocols_resident; do
  if ! grep -q "$series" "$out/metrics"; then
    echo "serve-smoke: /metrics missing $series"
    exit 1
  fi
done

# Loadgen against the live server: exit 2 would mean a dropped request
# (neither terminal nor 429) — the acceptance contract.
"$NFC" loadgen --port "$port" -n 100 --concurrency 100 \
  --body '{"protocol":"stop-and-wait","nodes":3000}' >"$out/loadgen.txt"
cat "$out/loadgen.txt"

kill "$pid"
wait "$pid" 2>/dev/null || true
pid=""
echo "serve-smoke: ok (byte-identical verdicts incl. submitted PDL spec, 429 path, metrics, loadgen clean)"
